# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/net_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/dns_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/topology_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/cdn_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/measure_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/parallel_campaign_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/core_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/analysis_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/bench_env_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/tools_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/integration_tests[1]_include.cmake")
