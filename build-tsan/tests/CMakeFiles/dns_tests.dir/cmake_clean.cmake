file(REMOVE_RECURSE
  "CMakeFiles/dns_tests.dir/dns/dns0x20_test.cpp.o"
  "CMakeFiles/dns_tests.dir/dns/dns0x20_test.cpp.o.d"
  "CMakeFiles/dns_tests.dir/dns/edns_test.cpp.o"
  "CMakeFiles/dns_tests.dir/dns/edns_test.cpp.o.d"
  "CMakeFiles/dns_tests.dir/dns/fuzz_test.cpp.o"
  "CMakeFiles/dns_tests.dir/dns/fuzz_test.cpp.o.d"
  "CMakeFiles/dns_tests.dir/dns/message_test.cpp.o"
  "CMakeFiles/dns_tests.dir/dns/message_test.cpp.o.d"
  "CMakeFiles/dns_tests.dir/dns/name_test.cpp.o"
  "CMakeFiles/dns_tests.dir/dns/name_test.cpp.o.d"
  "CMakeFiles/dns_tests.dir/dns/resolver_test.cpp.o"
  "CMakeFiles/dns_tests.dir/dns/resolver_test.cpp.o.d"
  "CMakeFiles/dns_tests.dir/dns/reverse_test.cpp.o"
  "CMakeFiles/dns_tests.dir/dns/reverse_test.cpp.o.d"
  "CMakeFiles/dns_tests.dir/dns/rr_test.cpp.o"
  "CMakeFiles/dns_tests.dir/dns/rr_test.cpp.o.d"
  "CMakeFiles/dns_tests.dir/dns/tcp_test.cpp.o"
  "CMakeFiles/dns_tests.dir/dns/tcp_test.cpp.o.d"
  "CMakeFiles/dns_tests.dir/dns/udp_test.cpp.o"
  "CMakeFiles/dns_tests.dir/dns/udp_test.cpp.o.d"
  "CMakeFiles/dns_tests.dir/dns/zonefile_test.cpp.o"
  "CMakeFiles/dns_tests.dir/dns/zonefile_test.cpp.o.d"
  "dns_tests"
  "dns_tests.pdb"
  "dns_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
