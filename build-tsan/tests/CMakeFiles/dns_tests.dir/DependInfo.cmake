
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dns/dns0x20_test.cpp" "tests/CMakeFiles/dns_tests.dir/dns/dns0x20_test.cpp.o" "gcc" "tests/CMakeFiles/dns_tests.dir/dns/dns0x20_test.cpp.o.d"
  "/root/repo/tests/dns/edns_test.cpp" "tests/CMakeFiles/dns_tests.dir/dns/edns_test.cpp.o" "gcc" "tests/CMakeFiles/dns_tests.dir/dns/edns_test.cpp.o.d"
  "/root/repo/tests/dns/fuzz_test.cpp" "tests/CMakeFiles/dns_tests.dir/dns/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/dns_tests.dir/dns/fuzz_test.cpp.o.d"
  "/root/repo/tests/dns/message_test.cpp" "tests/CMakeFiles/dns_tests.dir/dns/message_test.cpp.o" "gcc" "tests/CMakeFiles/dns_tests.dir/dns/message_test.cpp.o.d"
  "/root/repo/tests/dns/name_test.cpp" "tests/CMakeFiles/dns_tests.dir/dns/name_test.cpp.o" "gcc" "tests/CMakeFiles/dns_tests.dir/dns/name_test.cpp.o.d"
  "/root/repo/tests/dns/resolver_test.cpp" "tests/CMakeFiles/dns_tests.dir/dns/resolver_test.cpp.o" "gcc" "tests/CMakeFiles/dns_tests.dir/dns/resolver_test.cpp.o.d"
  "/root/repo/tests/dns/reverse_test.cpp" "tests/CMakeFiles/dns_tests.dir/dns/reverse_test.cpp.o" "gcc" "tests/CMakeFiles/dns_tests.dir/dns/reverse_test.cpp.o.d"
  "/root/repo/tests/dns/rr_test.cpp" "tests/CMakeFiles/dns_tests.dir/dns/rr_test.cpp.o" "gcc" "tests/CMakeFiles/dns_tests.dir/dns/rr_test.cpp.o.d"
  "/root/repo/tests/dns/tcp_test.cpp" "tests/CMakeFiles/dns_tests.dir/dns/tcp_test.cpp.o" "gcc" "tests/CMakeFiles/dns_tests.dir/dns/tcp_test.cpp.o.d"
  "/root/repo/tests/dns/udp_test.cpp" "tests/CMakeFiles/dns_tests.dir/dns/udp_test.cpp.o" "gcc" "tests/CMakeFiles/dns_tests.dir/dns/udp_test.cpp.o.d"
  "/root/repo/tests/dns/zonefile_test.cpp" "tests/CMakeFiles/dns_tests.dir/dns/zonefile_test.cpp.o" "gcc" "tests/CMakeFiles/dns_tests.dir/dns/zonefile_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/analysis/CMakeFiles/drongo_analysis.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/drongo_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/measure/CMakeFiles/drongo_measure.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cdn/CMakeFiles/drongo_cdn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/topology/CMakeFiles/drongo_topology.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dns/CMakeFiles/drongo_dns.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/drongo_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
