
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/bytes_test.cpp" "tests/CMakeFiles/net_tests.dir/net/bytes_test.cpp.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/bytes_test.cpp.o.d"
  "/root/repo/tests/net/ip_test.cpp" "tests/CMakeFiles/net_tests.dir/net/ip_test.cpp.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/ip_test.cpp.o.d"
  "/root/repo/tests/net/prefix_test.cpp" "tests/CMakeFiles/net_tests.dir/net/prefix_test.cpp.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/prefix_test.cpp.o.d"
  "/root/repo/tests/net/rng_test.cpp" "tests/CMakeFiles/net_tests.dir/net/rng_test.cpp.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/rng_test.cpp.o.d"
  "/root/repo/tests/net/strings_test.cpp" "tests/CMakeFiles/net_tests.dir/net/strings_test.cpp.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/strings_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/analysis/CMakeFiles/drongo_analysis.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/drongo_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/measure/CMakeFiles/drongo_measure.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cdn/CMakeFiles/drongo_cdn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/topology/CMakeFiles/drongo_topology.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dns/CMakeFiles/drongo_dns.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/drongo_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
