# Empty compiler generated dependencies file for cdn_tests.
# This may be replaced when dependencies are built.
