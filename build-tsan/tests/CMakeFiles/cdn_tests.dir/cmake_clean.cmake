file(REMOVE_RECURSE
  "CMakeFiles/cdn_tests.dir/cdn/deploy_test.cpp.o"
  "CMakeFiles/cdn_tests.dir/cdn/deploy_test.cpp.o.d"
  "CMakeFiles/cdn_tests.dir/cdn/dns_servers_test.cpp.o"
  "CMakeFiles/cdn_tests.dir/cdn/dns_servers_test.cpp.o.d"
  "CMakeFiles/cdn_tests.dir/cdn/provider_test.cpp.o"
  "CMakeFiles/cdn_tests.dir/cdn/provider_test.cpp.o.d"
  "CMakeFiles/cdn_tests.dir/cdn/sites_test.cpp.o"
  "CMakeFiles/cdn_tests.dir/cdn/sites_test.cpp.o.d"
  "cdn_tests"
  "cdn_tests.pdb"
  "cdn_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdn_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
