
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/topology/as_gen_test.cpp" "tests/CMakeFiles/topology_tests.dir/topology/as_gen_test.cpp.o" "gcc" "tests/CMakeFiles/topology_tests.dir/topology/as_gen_test.cpp.o.d"
  "/root/repo/tests/topology/as_graph_test.cpp" "tests/CMakeFiles/topology_tests.dir/topology/as_graph_test.cpp.o" "gcc" "tests/CMakeFiles/topology_tests.dir/topology/as_graph_test.cpp.o.d"
  "/root/repo/tests/topology/geo_test.cpp" "tests/CMakeFiles/topology_tests.dir/topology/geo_test.cpp.o" "gcc" "tests/CMakeFiles/topology_tests.dir/topology/geo_test.cpp.o.d"
  "/root/repo/tests/topology/properties_test.cpp" "tests/CMakeFiles/topology_tests.dir/topology/properties_test.cpp.o" "gcc" "tests/CMakeFiles/topology_tests.dir/topology/properties_test.cpp.o.d"
  "/root/repo/tests/topology/routing_test.cpp" "tests/CMakeFiles/topology_tests.dir/topology/routing_test.cpp.o" "gcc" "tests/CMakeFiles/topology_tests.dir/topology/routing_test.cpp.o.d"
  "/root/repo/tests/topology/world_test.cpp" "tests/CMakeFiles/topology_tests.dir/topology/world_test.cpp.o" "gcc" "tests/CMakeFiles/topology_tests.dir/topology/world_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/analysis/CMakeFiles/drongo_analysis.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/drongo_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/measure/CMakeFiles/drongo_measure.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cdn/CMakeFiles/drongo_cdn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/topology/CMakeFiles/drongo_topology.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dns/CMakeFiles/drongo_dns.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/drongo_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
