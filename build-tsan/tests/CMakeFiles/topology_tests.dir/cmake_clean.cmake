file(REMOVE_RECURSE
  "CMakeFiles/topology_tests.dir/topology/as_gen_test.cpp.o"
  "CMakeFiles/topology_tests.dir/topology/as_gen_test.cpp.o.d"
  "CMakeFiles/topology_tests.dir/topology/as_graph_test.cpp.o"
  "CMakeFiles/topology_tests.dir/topology/as_graph_test.cpp.o.d"
  "CMakeFiles/topology_tests.dir/topology/geo_test.cpp.o"
  "CMakeFiles/topology_tests.dir/topology/geo_test.cpp.o.d"
  "CMakeFiles/topology_tests.dir/topology/properties_test.cpp.o"
  "CMakeFiles/topology_tests.dir/topology/properties_test.cpp.o.d"
  "CMakeFiles/topology_tests.dir/topology/routing_test.cpp.o"
  "CMakeFiles/topology_tests.dir/topology/routing_test.cpp.o.d"
  "CMakeFiles/topology_tests.dir/topology/world_test.cpp.o"
  "CMakeFiles/topology_tests.dir/topology/world_test.cpp.o.d"
  "topology_tests"
  "topology_tests.pdb"
  "topology_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
