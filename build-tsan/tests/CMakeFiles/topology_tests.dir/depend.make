# Empty dependencies file for topology_tests.
# This may be replaced when dependencies are built.
