file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/daemon_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/daemon_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/decision_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/decision_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/drongo_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/drongo_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/peer_share_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/peer_share_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/persistence_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/persistence_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/probe_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/probe_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/valley_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/valley_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/window_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/window_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/zone_params_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/zone_params_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
