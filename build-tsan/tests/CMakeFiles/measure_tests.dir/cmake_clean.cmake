file(REMOVE_RECURSE
  "CMakeFiles/measure_tests.dir/measure/hop_filter_test.cpp.o"
  "CMakeFiles/measure_tests.dir/measure/hop_filter_test.cpp.o.d"
  "CMakeFiles/measure_tests.dir/measure/schedule_test.cpp.o"
  "CMakeFiles/measure_tests.dir/measure/schedule_test.cpp.o.d"
  "CMakeFiles/measure_tests.dir/measure/stats_test.cpp.o"
  "CMakeFiles/measure_tests.dir/measure/stats_test.cpp.o.d"
  "CMakeFiles/measure_tests.dir/measure/trial_test.cpp.o"
  "CMakeFiles/measure_tests.dir/measure/trial_test.cpp.o.d"
  "measure_tests"
  "measure_tests.pdb"
  "measure_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
