# Empty dependencies file for measure_tests.
# This may be replaced when dependencies are built.
