# Empty dependencies file for bench_env_tests.
# This may be replaced when dependencies are built.
