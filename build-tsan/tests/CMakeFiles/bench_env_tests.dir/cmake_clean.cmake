file(REMOVE_RECURSE
  "CMakeFiles/bench_env_tests.dir/bench/bench_env_test.cpp.o"
  "CMakeFiles/bench_env_tests.dir/bench/bench_env_test.cpp.o.d"
  "bench_env_tests"
  "bench_env_tests.pdb"
  "bench_env_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_env_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
