file(REMOVE_RECURSE
  "CMakeFiles/parallel_campaign_tests.dir/measure/parallel_campaign_test.cpp.o"
  "CMakeFiles/parallel_campaign_tests.dir/measure/parallel_campaign_test.cpp.o.d"
  "parallel_campaign_tests"
  "parallel_campaign_tests.pdb"
  "parallel_campaign_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_campaign_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
