file(REMOVE_RECURSE
  "CMakeFiles/bench_headline_results.dir/bench_headline_results.cpp.o"
  "CMakeFiles/bench_headline_results.dir/bench_headline_results.cpp.o.d"
  "bench_headline_results"
  "bench_headline_results.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_headline_results.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
