# Empty dependencies file for bench_headline_results.
# This may be replaced when dependencies are built.
