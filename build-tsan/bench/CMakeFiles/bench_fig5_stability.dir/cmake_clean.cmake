file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_stability.dir/bench_fig5_stability.cpp.o"
  "CMakeFiles/bench_fig5_stability.dir/bench_fig5_stability.cpp.o.d"
  "bench_fig5_stability"
  "bench_fig5_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
