file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_provider_applied.dir/bench_fig11_provider_applied.cpp.o"
  "CMakeFiles/bench_fig11_provider_applied.dir/bench_fig11_provider_applied.cpp.o.d"
  "bench_fig11_provider_applied"
  "bench_fig11_provider_applied.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_provider_applied.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
