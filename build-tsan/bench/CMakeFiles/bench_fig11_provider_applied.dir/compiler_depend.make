# Empty compiler generated dependencies file for bench_fig11_provider_applied.
# This may be replaced when dependencies are built.
