# Empty compiler generated dependencies file for bench_fig9_affected_clients.
# This may be replaced when dependencies are built.
