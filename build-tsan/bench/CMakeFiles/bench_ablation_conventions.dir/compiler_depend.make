# Empty compiler generated dependencies file for bench_ablation_conventions.
# This may be replaced when dependencies are built.
