file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_conventions.dir/bench_ablation_conventions.cpp.o"
  "CMakeFiles/bench_ablation_conventions.dir/bench_ablation_conventions.cpp.o.d"
  "bench_ablation_conventions"
  "bench_ablation_conventions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_conventions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
