file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_valley_scatter.dir/bench_fig3_valley_scatter.cpp.o"
  "CMakeFiles/bench_fig3_valley_scatter.dir/bench_fig3_valley_scatter.cpp.o.d"
  "bench_fig3_valley_scatter"
  "bench_fig3_valley_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_valley_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
