# Empty dependencies file for bench_fig3_valley_scatter.
# This may be replaced when dependencies are built.
