# Empty dependencies file for bench_client_distribution.
# This may be replaced when dependencies are built.
