file(REMOVE_RECURSE
  "CMakeFiles/bench_client_distribution.dir/bench_client_distribution.cpp.o"
  "CMakeFiles/bench_client_distribution.dir/bench_client_distribution.cpp.o.d"
  "bench_client_distribution"
  "bench_client_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_client_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
