file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_provider_overall.dir/bench_fig10_provider_overall.cpp.o"
  "CMakeFiles/bench_fig10_provider_overall.dir/bench_fig10_provider_overall.cpp.o.d"
  "bench_fig10_provider_overall"
  "bench_fig10_provider_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_provider_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
