# Empty compiler generated dependencies file for bench_fig10_provider_overall.
# This may be replaced when dependencies are built.
