# Empty dependencies file for bench_fig8_assimilated_sweep.
# This may be replaced when dependencies are built.
