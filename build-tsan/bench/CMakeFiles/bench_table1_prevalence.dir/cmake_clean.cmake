file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_prevalence.dir/bench_table1_prevalence.cpp.o"
  "CMakeFiles/bench_table1_prevalence.dir/bench_table1_prevalence.cpp.o.d"
  "bench_table1_prevalence"
  "bench_table1_prevalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_prevalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
