# Empty compiler generated dependencies file for bench_table1_prevalence.
# This may be replaced when dependencies are built.
