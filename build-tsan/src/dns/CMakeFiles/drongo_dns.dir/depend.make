# Empty dependencies file for drongo_dns.
# This may be replaced when dependencies are built.
