file(REMOVE_RECURSE
  "libdrongo_dns.a"
)
