file(REMOVE_RECURSE
  "CMakeFiles/drongo_dns.dir/cache.cpp.o"
  "CMakeFiles/drongo_dns.dir/cache.cpp.o.d"
  "CMakeFiles/drongo_dns.dir/edns.cpp.o"
  "CMakeFiles/drongo_dns.dir/edns.cpp.o.d"
  "CMakeFiles/drongo_dns.dir/inmemory.cpp.o"
  "CMakeFiles/drongo_dns.dir/inmemory.cpp.o.d"
  "CMakeFiles/drongo_dns.dir/message.cpp.o"
  "CMakeFiles/drongo_dns.dir/message.cpp.o.d"
  "CMakeFiles/drongo_dns.dir/name.cpp.o"
  "CMakeFiles/drongo_dns.dir/name.cpp.o.d"
  "CMakeFiles/drongo_dns.dir/proxy.cpp.o"
  "CMakeFiles/drongo_dns.dir/proxy.cpp.o.d"
  "CMakeFiles/drongo_dns.dir/reverse.cpp.o"
  "CMakeFiles/drongo_dns.dir/reverse.cpp.o.d"
  "CMakeFiles/drongo_dns.dir/rr.cpp.o"
  "CMakeFiles/drongo_dns.dir/rr.cpp.o.d"
  "CMakeFiles/drongo_dns.dir/stub_resolver.cpp.o"
  "CMakeFiles/drongo_dns.dir/stub_resolver.cpp.o.d"
  "CMakeFiles/drongo_dns.dir/tcp.cpp.o"
  "CMakeFiles/drongo_dns.dir/tcp.cpp.o.d"
  "CMakeFiles/drongo_dns.dir/types.cpp.o"
  "CMakeFiles/drongo_dns.dir/types.cpp.o.d"
  "CMakeFiles/drongo_dns.dir/udp.cpp.o"
  "CMakeFiles/drongo_dns.dir/udp.cpp.o.d"
  "CMakeFiles/drongo_dns.dir/zonefile.cpp.o"
  "CMakeFiles/drongo_dns.dir/zonefile.cpp.o.d"
  "libdrongo_dns.a"
  "libdrongo_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drongo_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
