
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dns/cache.cpp" "src/dns/CMakeFiles/drongo_dns.dir/cache.cpp.o" "gcc" "src/dns/CMakeFiles/drongo_dns.dir/cache.cpp.o.d"
  "/root/repo/src/dns/edns.cpp" "src/dns/CMakeFiles/drongo_dns.dir/edns.cpp.o" "gcc" "src/dns/CMakeFiles/drongo_dns.dir/edns.cpp.o.d"
  "/root/repo/src/dns/inmemory.cpp" "src/dns/CMakeFiles/drongo_dns.dir/inmemory.cpp.o" "gcc" "src/dns/CMakeFiles/drongo_dns.dir/inmemory.cpp.o.d"
  "/root/repo/src/dns/message.cpp" "src/dns/CMakeFiles/drongo_dns.dir/message.cpp.o" "gcc" "src/dns/CMakeFiles/drongo_dns.dir/message.cpp.o.d"
  "/root/repo/src/dns/name.cpp" "src/dns/CMakeFiles/drongo_dns.dir/name.cpp.o" "gcc" "src/dns/CMakeFiles/drongo_dns.dir/name.cpp.o.d"
  "/root/repo/src/dns/proxy.cpp" "src/dns/CMakeFiles/drongo_dns.dir/proxy.cpp.o" "gcc" "src/dns/CMakeFiles/drongo_dns.dir/proxy.cpp.o.d"
  "/root/repo/src/dns/reverse.cpp" "src/dns/CMakeFiles/drongo_dns.dir/reverse.cpp.o" "gcc" "src/dns/CMakeFiles/drongo_dns.dir/reverse.cpp.o.d"
  "/root/repo/src/dns/rr.cpp" "src/dns/CMakeFiles/drongo_dns.dir/rr.cpp.o" "gcc" "src/dns/CMakeFiles/drongo_dns.dir/rr.cpp.o.d"
  "/root/repo/src/dns/stub_resolver.cpp" "src/dns/CMakeFiles/drongo_dns.dir/stub_resolver.cpp.o" "gcc" "src/dns/CMakeFiles/drongo_dns.dir/stub_resolver.cpp.o.d"
  "/root/repo/src/dns/tcp.cpp" "src/dns/CMakeFiles/drongo_dns.dir/tcp.cpp.o" "gcc" "src/dns/CMakeFiles/drongo_dns.dir/tcp.cpp.o.d"
  "/root/repo/src/dns/types.cpp" "src/dns/CMakeFiles/drongo_dns.dir/types.cpp.o" "gcc" "src/dns/CMakeFiles/drongo_dns.dir/types.cpp.o.d"
  "/root/repo/src/dns/udp.cpp" "src/dns/CMakeFiles/drongo_dns.dir/udp.cpp.o" "gcc" "src/dns/CMakeFiles/drongo_dns.dir/udp.cpp.o.d"
  "/root/repo/src/dns/zonefile.cpp" "src/dns/CMakeFiles/drongo_dns.dir/zonefile.cpp.o" "gcc" "src/dns/CMakeFiles/drongo_dns.dir/zonefile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/net/CMakeFiles/drongo_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
