# Empty compiler generated dependencies file for drongo_topology.
# This may be replaced when dependencies are built.
