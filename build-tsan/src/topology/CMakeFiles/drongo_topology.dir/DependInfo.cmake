
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/as_gen.cpp" "src/topology/CMakeFiles/drongo_topology.dir/as_gen.cpp.o" "gcc" "src/topology/CMakeFiles/drongo_topology.dir/as_gen.cpp.o.d"
  "/root/repo/src/topology/as_graph.cpp" "src/topology/CMakeFiles/drongo_topology.dir/as_graph.cpp.o" "gcc" "src/topology/CMakeFiles/drongo_topology.dir/as_graph.cpp.o.d"
  "/root/repo/src/topology/geo.cpp" "src/topology/CMakeFiles/drongo_topology.dir/geo.cpp.o" "gcc" "src/topology/CMakeFiles/drongo_topology.dir/geo.cpp.o.d"
  "/root/repo/src/topology/routing.cpp" "src/topology/CMakeFiles/drongo_topology.dir/routing.cpp.o" "gcc" "src/topology/CMakeFiles/drongo_topology.dir/routing.cpp.o.d"
  "/root/repo/src/topology/world.cpp" "src/topology/CMakeFiles/drongo_topology.dir/world.cpp.o" "gcc" "src/topology/CMakeFiles/drongo_topology.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/net/CMakeFiles/drongo_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
