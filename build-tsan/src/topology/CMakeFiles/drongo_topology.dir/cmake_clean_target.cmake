file(REMOVE_RECURSE
  "libdrongo_topology.a"
)
