file(REMOVE_RECURSE
  "CMakeFiles/drongo_topology.dir/as_gen.cpp.o"
  "CMakeFiles/drongo_topology.dir/as_gen.cpp.o.d"
  "CMakeFiles/drongo_topology.dir/as_graph.cpp.o"
  "CMakeFiles/drongo_topology.dir/as_graph.cpp.o.d"
  "CMakeFiles/drongo_topology.dir/geo.cpp.o"
  "CMakeFiles/drongo_topology.dir/geo.cpp.o.d"
  "CMakeFiles/drongo_topology.dir/routing.cpp.o"
  "CMakeFiles/drongo_topology.dir/routing.cpp.o.d"
  "CMakeFiles/drongo_topology.dir/world.cpp.o"
  "CMakeFiles/drongo_topology.dir/world.cpp.o.d"
  "libdrongo_topology.a"
  "libdrongo_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drongo_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
