file(REMOVE_RECURSE
  "CMakeFiles/drongo_analysis.dir/evaluation.cpp.o"
  "CMakeFiles/drongo_analysis.dir/evaluation.cpp.o.d"
  "CMakeFiles/drongo_analysis.dir/prevalence.cpp.o"
  "CMakeFiles/drongo_analysis.dir/prevalence.cpp.o.d"
  "CMakeFiles/drongo_analysis.dir/render.cpp.o"
  "CMakeFiles/drongo_analysis.dir/render.cpp.o.d"
  "CMakeFiles/drongo_analysis.dir/stability.cpp.o"
  "CMakeFiles/drongo_analysis.dir/stability.cpp.o.d"
  "libdrongo_analysis.a"
  "libdrongo_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drongo_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
