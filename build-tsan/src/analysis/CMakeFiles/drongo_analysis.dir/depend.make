# Empty dependencies file for drongo_analysis.
# This may be replaced when dependencies are built.
