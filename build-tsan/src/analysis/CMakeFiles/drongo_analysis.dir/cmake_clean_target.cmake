file(REMOVE_RECURSE
  "libdrongo_analysis.a"
)
