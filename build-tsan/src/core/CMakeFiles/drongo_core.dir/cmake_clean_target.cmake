file(REMOVE_RECURSE
  "libdrongo_core.a"
)
