
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/daemon.cpp" "src/core/CMakeFiles/drongo_core.dir/daemon.cpp.o" "gcc" "src/core/CMakeFiles/drongo_core.dir/daemon.cpp.o.d"
  "/root/repo/src/core/decision.cpp" "src/core/CMakeFiles/drongo_core.dir/decision.cpp.o" "gcc" "src/core/CMakeFiles/drongo_core.dir/decision.cpp.o.d"
  "/root/repo/src/core/drongo.cpp" "src/core/CMakeFiles/drongo_core.dir/drongo.cpp.o" "gcc" "src/core/CMakeFiles/drongo_core.dir/drongo.cpp.o.d"
  "/root/repo/src/core/peer_share.cpp" "src/core/CMakeFiles/drongo_core.dir/peer_share.cpp.o" "gcc" "src/core/CMakeFiles/drongo_core.dir/peer_share.cpp.o.d"
  "/root/repo/src/core/probe.cpp" "src/core/CMakeFiles/drongo_core.dir/probe.cpp.o" "gcc" "src/core/CMakeFiles/drongo_core.dir/probe.cpp.o.d"
  "/root/repo/src/core/valley.cpp" "src/core/CMakeFiles/drongo_core.dir/valley.cpp.o" "gcc" "src/core/CMakeFiles/drongo_core.dir/valley.cpp.o.d"
  "/root/repo/src/core/window.cpp" "src/core/CMakeFiles/drongo_core.dir/window.cpp.o" "gcc" "src/core/CMakeFiles/drongo_core.dir/window.cpp.o.d"
  "/root/repo/src/core/zone_params.cpp" "src/core/CMakeFiles/drongo_core.dir/zone_params.cpp.o" "gcc" "src/core/CMakeFiles/drongo_core.dir/zone_params.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/measure/CMakeFiles/drongo_measure.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cdn/CMakeFiles/drongo_cdn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/topology/CMakeFiles/drongo_topology.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dns/CMakeFiles/drongo_dns.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/drongo_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
