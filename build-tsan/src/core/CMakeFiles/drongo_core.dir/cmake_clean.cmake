file(REMOVE_RECURSE
  "CMakeFiles/drongo_core.dir/daemon.cpp.o"
  "CMakeFiles/drongo_core.dir/daemon.cpp.o.d"
  "CMakeFiles/drongo_core.dir/decision.cpp.o"
  "CMakeFiles/drongo_core.dir/decision.cpp.o.d"
  "CMakeFiles/drongo_core.dir/drongo.cpp.o"
  "CMakeFiles/drongo_core.dir/drongo.cpp.o.d"
  "CMakeFiles/drongo_core.dir/peer_share.cpp.o"
  "CMakeFiles/drongo_core.dir/peer_share.cpp.o.d"
  "CMakeFiles/drongo_core.dir/probe.cpp.o"
  "CMakeFiles/drongo_core.dir/probe.cpp.o.d"
  "CMakeFiles/drongo_core.dir/valley.cpp.o"
  "CMakeFiles/drongo_core.dir/valley.cpp.o.d"
  "CMakeFiles/drongo_core.dir/window.cpp.o"
  "CMakeFiles/drongo_core.dir/window.cpp.o.d"
  "CMakeFiles/drongo_core.dir/zone_params.cpp.o"
  "CMakeFiles/drongo_core.dir/zone_params.cpp.o.d"
  "libdrongo_core.a"
  "libdrongo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drongo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
