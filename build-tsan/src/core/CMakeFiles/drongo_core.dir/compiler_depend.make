# Empty compiler generated dependencies file for drongo_core.
# This may be replaced when dependencies are built.
