file(REMOVE_RECURSE
  "libdrongo_measure.a"
)
