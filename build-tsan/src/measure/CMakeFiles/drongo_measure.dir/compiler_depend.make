# Empty compiler generated dependencies file for drongo_measure.
# This may be replaced when dependencies are built.
