file(REMOVE_RECURSE
  "CMakeFiles/drongo_measure.dir/campaign.cpp.o"
  "CMakeFiles/drongo_measure.dir/campaign.cpp.o.d"
  "CMakeFiles/drongo_measure.dir/dataset.cpp.o"
  "CMakeFiles/drongo_measure.dir/dataset.cpp.o.d"
  "CMakeFiles/drongo_measure.dir/hop_filter.cpp.o"
  "CMakeFiles/drongo_measure.dir/hop_filter.cpp.o.d"
  "CMakeFiles/drongo_measure.dir/probes.cpp.o"
  "CMakeFiles/drongo_measure.dir/probes.cpp.o.d"
  "CMakeFiles/drongo_measure.dir/schedule.cpp.o"
  "CMakeFiles/drongo_measure.dir/schedule.cpp.o.d"
  "CMakeFiles/drongo_measure.dir/stats.cpp.o"
  "CMakeFiles/drongo_measure.dir/stats.cpp.o.d"
  "CMakeFiles/drongo_measure.dir/testbed.cpp.o"
  "CMakeFiles/drongo_measure.dir/testbed.cpp.o.d"
  "CMakeFiles/drongo_measure.dir/trial.cpp.o"
  "CMakeFiles/drongo_measure.dir/trial.cpp.o.d"
  "libdrongo_measure.a"
  "libdrongo_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drongo_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
