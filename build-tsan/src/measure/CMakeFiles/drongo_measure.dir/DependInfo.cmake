
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/measure/campaign.cpp" "src/measure/CMakeFiles/drongo_measure.dir/campaign.cpp.o" "gcc" "src/measure/CMakeFiles/drongo_measure.dir/campaign.cpp.o.d"
  "/root/repo/src/measure/dataset.cpp" "src/measure/CMakeFiles/drongo_measure.dir/dataset.cpp.o" "gcc" "src/measure/CMakeFiles/drongo_measure.dir/dataset.cpp.o.d"
  "/root/repo/src/measure/hop_filter.cpp" "src/measure/CMakeFiles/drongo_measure.dir/hop_filter.cpp.o" "gcc" "src/measure/CMakeFiles/drongo_measure.dir/hop_filter.cpp.o.d"
  "/root/repo/src/measure/probes.cpp" "src/measure/CMakeFiles/drongo_measure.dir/probes.cpp.o" "gcc" "src/measure/CMakeFiles/drongo_measure.dir/probes.cpp.o.d"
  "/root/repo/src/measure/schedule.cpp" "src/measure/CMakeFiles/drongo_measure.dir/schedule.cpp.o" "gcc" "src/measure/CMakeFiles/drongo_measure.dir/schedule.cpp.o.d"
  "/root/repo/src/measure/stats.cpp" "src/measure/CMakeFiles/drongo_measure.dir/stats.cpp.o" "gcc" "src/measure/CMakeFiles/drongo_measure.dir/stats.cpp.o.d"
  "/root/repo/src/measure/testbed.cpp" "src/measure/CMakeFiles/drongo_measure.dir/testbed.cpp.o" "gcc" "src/measure/CMakeFiles/drongo_measure.dir/testbed.cpp.o.d"
  "/root/repo/src/measure/trial.cpp" "src/measure/CMakeFiles/drongo_measure.dir/trial.cpp.o" "gcc" "src/measure/CMakeFiles/drongo_measure.dir/trial.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/cdn/CMakeFiles/drongo_cdn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/topology/CMakeFiles/drongo_topology.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dns/CMakeFiles/drongo_dns.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/drongo_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
