# Empty dependencies file for drongo_cdn.
# This may be replaced when dependencies are built.
