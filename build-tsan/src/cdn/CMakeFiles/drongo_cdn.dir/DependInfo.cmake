
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cdn/authoritative.cpp" "src/cdn/CMakeFiles/drongo_cdn.dir/authoritative.cpp.o" "gcc" "src/cdn/CMakeFiles/drongo_cdn.dir/authoritative.cpp.o.d"
  "/root/repo/src/cdn/deploy.cpp" "src/cdn/CMakeFiles/drongo_cdn.dir/deploy.cpp.o" "gcc" "src/cdn/CMakeFiles/drongo_cdn.dir/deploy.cpp.o.d"
  "/root/repo/src/cdn/profile.cpp" "src/cdn/CMakeFiles/drongo_cdn.dir/profile.cpp.o" "gcc" "src/cdn/CMakeFiles/drongo_cdn.dir/profile.cpp.o.d"
  "/root/repo/src/cdn/provider.cpp" "src/cdn/CMakeFiles/drongo_cdn.dir/provider.cpp.o" "gcc" "src/cdn/CMakeFiles/drongo_cdn.dir/provider.cpp.o.d"
  "/root/repo/src/cdn/resolver.cpp" "src/cdn/CMakeFiles/drongo_cdn.dir/resolver.cpp.o" "gcc" "src/cdn/CMakeFiles/drongo_cdn.dir/resolver.cpp.o.d"
  "/root/repo/src/cdn/reverse_dns.cpp" "src/cdn/CMakeFiles/drongo_cdn.dir/reverse_dns.cpp.o" "gcc" "src/cdn/CMakeFiles/drongo_cdn.dir/reverse_dns.cpp.o.d"
  "/root/repo/src/cdn/sites.cpp" "src/cdn/CMakeFiles/drongo_cdn.dir/sites.cpp.o" "gcc" "src/cdn/CMakeFiles/drongo_cdn.dir/sites.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/topology/CMakeFiles/drongo_topology.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dns/CMakeFiles/drongo_dns.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/drongo_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
