file(REMOVE_RECURSE
  "CMakeFiles/drongo_cdn.dir/authoritative.cpp.o"
  "CMakeFiles/drongo_cdn.dir/authoritative.cpp.o.d"
  "CMakeFiles/drongo_cdn.dir/deploy.cpp.o"
  "CMakeFiles/drongo_cdn.dir/deploy.cpp.o.d"
  "CMakeFiles/drongo_cdn.dir/profile.cpp.o"
  "CMakeFiles/drongo_cdn.dir/profile.cpp.o.d"
  "CMakeFiles/drongo_cdn.dir/provider.cpp.o"
  "CMakeFiles/drongo_cdn.dir/provider.cpp.o.d"
  "CMakeFiles/drongo_cdn.dir/resolver.cpp.o"
  "CMakeFiles/drongo_cdn.dir/resolver.cpp.o.d"
  "CMakeFiles/drongo_cdn.dir/reverse_dns.cpp.o"
  "CMakeFiles/drongo_cdn.dir/reverse_dns.cpp.o.d"
  "CMakeFiles/drongo_cdn.dir/sites.cpp.o"
  "CMakeFiles/drongo_cdn.dir/sites.cpp.o.d"
  "libdrongo_cdn.a"
  "libdrongo_cdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drongo_cdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
