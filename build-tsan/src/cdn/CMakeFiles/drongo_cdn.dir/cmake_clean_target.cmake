file(REMOVE_RECURSE
  "libdrongo_cdn.a"
)
