file(REMOVE_RECURSE
  "libdrongo_net.a"
)
