# Empty dependencies file for drongo_net.
# This may be replaced when dependencies are built.
