
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/bytes.cpp" "src/net/CMakeFiles/drongo_net.dir/bytes.cpp.o" "gcc" "src/net/CMakeFiles/drongo_net.dir/bytes.cpp.o.d"
  "/root/repo/src/net/ip.cpp" "src/net/CMakeFiles/drongo_net.dir/ip.cpp.o" "gcc" "src/net/CMakeFiles/drongo_net.dir/ip.cpp.o.d"
  "/root/repo/src/net/prefix.cpp" "src/net/CMakeFiles/drongo_net.dir/prefix.cpp.o" "gcc" "src/net/CMakeFiles/drongo_net.dir/prefix.cpp.o.d"
  "/root/repo/src/net/rng.cpp" "src/net/CMakeFiles/drongo_net.dir/rng.cpp.o" "gcc" "src/net/CMakeFiles/drongo_net.dir/rng.cpp.o.d"
  "/root/repo/src/net/strings.cpp" "src/net/CMakeFiles/drongo_net.dir/strings.cpp.o" "gcc" "src/net/CMakeFiles/drongo_net.dir/strings.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
