file(REMOVE_RECURSE
  "CMakeFiles/drongo_net.dir/bytes.cpp.o"
  "CMakeFiles/drongo_net.dir/bytes.cpp.o.d"
  "CMakeFiles/drongo_net.dir/ip.cpp.o"
  "CMakeFiles/drongo_net.dir/ip.cpp.o.d"
  "CMakeFiles/drongo_net.dir/prefix.cpp.o"
  "CMakeFiles/drongo_net.dir/prefix.cpp.o.d"
  "CMakeFiles/drongo_net.dir/rng.cpp.o"
  "CMakeFiles/drongo_net.dir/rng.cpp.o.d"
  "CMakeFiles/drongo_net.dir/strings.cpp.o"
  "CMakeFiles/drongo_net.dir/strings.cpp.o.d"
  "libdrongo_net.a"
  "libdrongo_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drongo_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
