# Empty compiler generated dependencies file for drongo_net.
# This may be replaced when dependencies are built.
