file(REMOVE_RECURSE
  "CMakeFiles/cdn_mapping_probe.dir/cdn_mapping_probe.cpp.o"
  "CMakeFiles/cdn_mapping_probe.dir/cdn_mapping_probe.cpp.o.d"
  "cdn_mapping_probe"
  "cdn_mapping_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdn_mapping_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
