# Empty dependencies file for cdn_mapping_probe.
# This may be replaced when dependencies are built.
