# Empty dependencies file for peer_sharing.
# This may be replaced when dependencies are built.
