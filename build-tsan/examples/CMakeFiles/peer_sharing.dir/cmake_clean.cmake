file(REMOVE_RECURSE
  "CMakeFiles/peer_sharing.dir/peer_sharing.cpp.o"
  "CMakeFiles/peer_sharing.dir/peer_sharing.cpp.o.d"
  "peer_sharing"
  "peer_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peer_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
