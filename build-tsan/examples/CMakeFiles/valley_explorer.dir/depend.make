# Empty dependencies file for valley_explorer.
# This may be replaced when dependencies are built.
