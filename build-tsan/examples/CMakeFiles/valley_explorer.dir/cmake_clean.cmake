file(REMOVE_RECURSE
  "CMakeFiles/valley_explorer.dir/valley_explorer.cpp.o"
  "CMakeFiles/valley_explorer.dir/valley_explorer.cpp.o.d"
  "valley_explorer"
  "valley_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/valley_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
