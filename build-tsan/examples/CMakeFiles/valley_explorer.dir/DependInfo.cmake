
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/valley_explorer.cpp" "examples/CMakeFiles/valley_explorer.dir/valley_explorer.cpp.o" "gcc" "examples/CMakeFiles/valley_explorer.dir/valley_explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/analysis/CMakeFiles/drongo_analysis.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/drongo_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/measure/CMakeFiles/drongo_measure.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cdn/CMakeFiles/drongo_cdn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/topology/CMakeFiles/drongo_topology.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dns/CMakeFiles/drongo_dns.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/drongo_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
