# Empty dependencies file for ldns_proxy.
# This may be replaced when dependencies are built.
