file(REMOVE_RECURSE
  "CMakeFiles/ldns_proxy.dir/ldns_proxy.cpp.o"
  "CMakeFiles/ldns_proxy.dir/ldns_proxy.cpp.o.d"
  "ldns_proxy"
  "ldns_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldns_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
