# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-tsan/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build-tsan/examples/quickstart" "42")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_valley_explorer "/root/repo/build-tsan/examples/valley_explorer" "8" "4" "7")
set_tests_properties(example_valley_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ldns_proxy "/root/repo/build-tsan/examples/ldns_proxy" "42")
set_tests_properties(example_ldns_proxy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_parameter_study "/root/repo/build-tsan/examples/parameter_study" "10" "7" "Google" "CubeCDN")
set_tests_properties(example_parameter_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cdn_mapping_probe "/root/repo/build-tsan/examples/cdn_mapping_probe" "42")
set_tests_properties(example_cdn_mapping_probe PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_peer_sharing "/root/repo/build-tsan/examples/peer_sharing" "3" "42")
set_tests_properties(example_peer_sharing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
