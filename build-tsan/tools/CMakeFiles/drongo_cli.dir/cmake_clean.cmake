file(REMOVE_RECURSE
  "CMakeFiles/drongo_cli.dir/cli.cpp.o"
  "CMakeFiles/drongo_cli.dir/cli.cpp.o.d"
  "libdrongo_cli.a"
  "libdrongo_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drongo_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
