# Empty dependencies file for drongo_cli.
# This may be replaced when dependencies are built.
