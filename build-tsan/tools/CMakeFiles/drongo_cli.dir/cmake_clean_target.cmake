file(REMOVE_RECURSE
  "libdrongo_cli.a"
)
