# Empty compiler generated dependencies file for drongo_sim.
# This may be replaced when dependencies are built.
