file(REMOVE_RECURSE
  "CMakeFiles/drongo_sim.dir/drongo_sim.cpp.o"
  "CMakeFiles/drongo_sim.dir/drongo_sim.cpp.o.d"
  "drongo_sim"
  "drongo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drongo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
