# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-tsan/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_help "/root/repo/build-tsan/tools/drongo_sim" "help")
set_tests_properties(cli_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_world "/root/repo/build-tsan/tools/drongo_sim" "world" "--clients" "4")
set_tests_properties(cli_world PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_trial "/root/repo/build-tsan/tools/drongo_sim" "trial" "--clients" "4" "--client" "1" "--provider" "3")
set_tests_properties(cli_trial PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_probe "/root/repo/build-tsan/tools/drongo_sim" "probe" "--seed" "7")
set_tests_properties(cli_probe PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_campaign_analyze "sh" "-c" "/root/repo/build-tsan/tools/drongo_sim campaign --clients 4 --trials 2 --out /root/repo/build-tsan/tools/smoke.dataset && /root/repo/build-tsan/tools/drongo_sim analyze --in /root/repo/build-tsan/tools/smoke.dataset")
set_tests_properties(cli_campaign_analyze PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_unknown_command "/root/repo/build-tsan/tools/drongo_sim" "wat")
set_tests_properties(cli_unknown_command PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
