#include "cdn/authoritative.hpp"

#include <algorithm>

#include "net/error.hpp"
#include "net/ipaddr.hpp"

namespace drongo::cdn {

CdnAuthoritative::CdnAuthoritative(CdnProvider* provider, std::uint32_t ttl_seconds)
    : provider_(provider), ttl_(ttl_seconds) {
  if (provider_ == nullptr) throw net::InvalidArgument("null CdnProvider");
}

dns::DnsName CdnAuthoritative::zone() const {
  return dns::DnsName::must_parse(provider_->profile().zone);
}

std::vector<dns::DnsName> CdnAuthoritative::content_names() const {
  std::vector<dns::DnsName> names;
  for (const auto& label : provider_->profile().content_labels) {
    names.push_back(dns::DnsName::must_parse(label + "." + provider_->profile().zone));
  }
  return names;
}

dns::Message CdnAuthoritative::handle(const dns::Message& query, net::Ipv4Addr source) {
  if (query.questions.size() != 1) {
    return dns::Message::make_response(query, dns::Rcode::kFormErr);
  }
  const dns::Question& q = query.questions[0];
  if (!q.name.is_subdomain_of(zone())) {
    return dns::Message::make_response(query, dns::Rcode::kRefused);
  }

  const auto& profile = provider_->profile();
  bool known_label = false;
  for (const auto& name : content_names()) {
    if (q.name == name) known_label = true;
  }
  if (!known_label) {
    return dns::Message::make_response(query, dns::Rcode::kNxDomain);
  }
  if (q.type != dns::RrType::kA) {
    // Valid name, no records of this type: NOERROR with empty answer.
    return dns::Message::make_response(query, dns::Rcode::kNoError,
                                       profile.mapping_granularity);
  }

  // Tailoring subnet: the ECS option, unless this provider restricts ECS
  // (Akamai-like, §2.2), in which case the resolver's own address is used —
  // which is exactly why such providers are unusable for assimilation.
  // Family-2 options tailor through the sim's v4-in-v6 embedding: the
  // effective v4 subnet drives replica selection and the reply scope is the
  // v4 mapping granularity re-expressed at the option's bit offset, so a
  // /56 announcement earns exactly the coverage a /24 one would.
  net::Prefix subnet(source, 24);
  int reply_scope = profile.mapping_granularity;
  if (!profile.ecs_restricted && query.edns && query.edns->client_subnet &&
      query.edns->client_subnet->is_representable()) {
    const net::IpPrefix announced = query.edns->client_subnet->source_prefix();
    if (const auto v4 = net::effective_v4_subnet(announced)) {
      subnet = *v4;
      if (announced.family() == net::IpFamily::kV6) {
        // Capped at the announced source length: a /48 announcement only
        // carries 48 bits of signal, so the answer must not claim /56
        // specificity — and a scope longer than the source could never be
        // served back to this client under the §7.3.1 containment rule.
        const int offset =
            net::is_embedded_v4(announced.network().v6()) ? 32 : 96;
        reply_scope = std::min(profile.mapping_granularity + offset,
                               announced.length());
      }
    } else if (announced.family() == net::IpFamily::kV6) {
      // A v6 subnet outside the sim's embedding carries no tailoring
      // signal: serve the resolver-source mapping but admit scope 0 so
      // caches never generalize it across unrelated v6 clients.
      reply_scope = 0;
    }
  }

  dns::Message response =
      dns::Message::make_response(query, dns::Rcode::kNoError, reply_scope);
  // The query id seeds the load-balancing rotation: per-query variation
  // without cross-query shared state, so concurrent campaigns stay
  // deterministic (ids come from each stub's own derived RNG stream).
  for (net::Ipv4Addr replica : provider_->select_replicas(subnet, query.header.id)) {
    response.answers.push_back(dns::ResourceRecord::a(q.name, replica, ttl_));
  }
  return response;
}

}  // namespace drongo::cdn
