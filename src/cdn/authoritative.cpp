#include "cdn/authoritative.hpp"

#include "net/error.hpp"

namespace drongo::cdn {

CdnAuthoritative::CdnAuthoritative(CdnProvider* provider, std::uint32_t ttl_seconds)
    : provider_(provider), ttl_(ttl_seconds) {
  if (provider_ == nullptr) throw net::InvalidArgument("null CdnProvider");
}

dns::DnsName CdnAuthoritative::zone() const {
  return dns::DnsName::must_parse(provider_->profile().zone);
}

std::vector<dns::DnsName> CdnAuthoritative::content_names() const {
  std::vector<dns::DnsName> names;
  for (const auto& label : provider_->profile().content_labels) {
    names.push_back(dns::DnsName::must_parse(label + "." + provider_->profile().zone));
  }
  return names;
}

dns::Message CdnAuthoritative::handle(const dns::Message& query, net::Ipv4Addr source) {
  if (query.questions.size() != 1) {
    return dns::Message::make_response(query, dns::Rcode::kFormErr);
  }
  const dns::Question& q = query.questions[0];
  if (!q.name.is_subdomain_of(zone())) {
    return dns::Message::make_response(query, dns::Rcode::kRefused);
  }

  const auto& profile = provider_->profile();
  bool known_label = false;
  for (const auto& name : content_names()) {
    if (q.name == name) known_label = true;
  }
  if (!known_label) {
    return dns::Message::make_response(query, dns::Rcode::kNxDomain);
  }
  if (q.type != dns::RrType::kA) {
    // Valid name, no records of this type: NOERROR with empty answer.
    return dns::Message::make_response(query, dns::Rcode::kNoError,
                                       profile.mapping_granularity);
  }

  // Tailoring subnet: the ECS option, unless this provider restricts ECS
  // (Akamai-like, §2.2), in which case the resolver's own address is used —
  // which is exactly why such providers are unusable for assimilation.
  net::Prefix subnet(source, 24);
  if (!profile.ecs_restricted && query.edns && query.edns->client_subnet &&
      query.edns->client_subnet->family == 1) {
    subnet = query.edns->client_subnet->source_prefix();
  }

  dns::Message response = dns::Message::make_response(
      query, dns::Rcode::kNoError, profile.mapping_granularity);
  // The query id seeds the load-balancing rotation: per-query variation
  // without cross-query shared state, so concurrent campaigns stay
  // deterministic (ids come from each stub's own derived RNG stream).
  for (net::Ipv4Addr replica : provider_->select_replicas(subnet, query.header.id)) {
    response.answers.push_back(dns::ResourceRecord::a(q.name, replica, ttl_));
  }
  return response;
}

}  // namespace drongo::cdn
