#include "cdn/provider.hpp"

#include <algorithm>
#include <cmath>

#include "net/error.hpp"

namespace drongo::cdn {

namespace {

/// SplitMix64-style stateless mixer for deterministic per-key randomness.
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

std::uint64_t hash3(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  return mix(a * 0x9E3779B97F4A7C15ULL ^ mix(b) ^ mix(c * 0xFF51AFD7ED558CCDULL + 1));
}

/// Uniform double in [0,1) from a hash.
double hash01(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Standard normal from two hash halves (Box-Muller).
double hash_normal(std::uint64_t h) {
  const double u1 = hash01(mix(h)) + 1e-12;
  const double u2 = hash01(mix(h ^ 0xDEADBEEFCAFEF00DULL));
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

}  // namespace

CdnProvider::CdnProvider(CdnProfile profile, topology::World* world,
                         std::size_t as_index, std::vector<CdnCluster> clusters,
                         std::vector<net::Ipv4Addr> vips)
    : profile_(std::move(profile)),
      world_(world),
      as_index_(as_index),
      clusters_(std::move(clusters)),
      vips_(std::move(vips)) {
  if (world_ == nullptr) throw net::InvalidArgument("null World");
  if (clusters_.empty()) throw net::InvalidArgument("CDN needs at least one cluster");
  if (profile_.anycast && vips_.empty()) {
    throw net::InvalidArgument("anycast profile requires VIPs");
  }
  by_weight_.resize(clusters_.size());
  for (std::size_t i = 0; i < clusters_.size(); ++i) by_weight_[i] = i;
  std::stable_sort(by_weight_.begin(), by_weight_.end(), [this](std::size_t a, std::size_t b) {
    return clusters_[a].weight > clusters_[b].weight;
  });
}

net::Prefix CdnProvider::mapping_key(const net::Prefix& subnet) const {
  const int g = std::min(profile_.mapping_granularity, subnet.length());
  return subnet.truncated(g);
}

bool CdnProvider::is_mapped(const net::Prefix& subnet) const {
  const net::Prefix key = mapping_key(subnet);
  const net::Prefix probe(key.network(), 24);
  const auto location = world_->subnet_location(probe);
  if (!location) return false;  // space the CDN cannot even geolocate

  // Eyeball space is what clients query from; CDNs map it near-completely.
  // Infrastructure space (where traceroute hops live) gets best-effort
  // coverage biased toward the CDN's build-out regions.
  const bool eyeball = world_->subnet_kind(probe) == topology::SubnetKind::kHost;
  double base = eyeball ? profile_.mapped_fraction_eyeball : profile_.mapped_fraction;

  double nearest_ms = 1e18;
  for (const auto& c : clusters_) {
    nearest_ms = std::min(nearest_ms, topology::propagation_ms(*location, c.location));
  }
  double factor = 1.0;
  if (nearest_ms > 40.0) factor = eyeball ? 0.97 : 0.7;
  if (nearest_ms > 90.0) factor = eyeball ? 0.93 : 0.45;
  const double u = hash01(hash3(profile_.seed, key.network().to_uint(), 0xA11CE));
  return u < base * factor;
}

double CdnProvider::estimate_ms(const topology::GeoPoint& subnet_location,
                                std::size_t cluster_index, const net::Prefix& key) const {
  const CdnCluster& c = clusters_[cluster_index];
  // Geographic inference: distance-derived RTT, blind to routing.
  const double geo_rtt = 2.0 * topology::propagation_ms(subnet_location, c.location) + 2.0;
  // Measurement: true routed RTT from the cluster to a representative
  // address of the subnet (routers answer pings; hosts are pinged directly).
  double blended = geo_rtt;
  if (profile_.routing_awareness > 0.0 && !c.replicas.empty()) {
    const net::Prefix probe(key.network(), 24);
    const std::uint32_t rep_suffix =
        world_->subnet_kind(probe) == topology::SubnetKind::kHost ? 10u : 1u;
    const net::Ipv4Addr representative(probe.network().to_uint() | rep_suffix);
    try {
      const double measured = world_->rtt_base_ms(c.replicas.front(), representative);
      blended = profile_.routing_awareness * measured +
                (1.0 - profile_.routing_awareness) * geo_rtt;
    } catch (const net::Error&) {
      // Unmeasurable subnet: fall back to pure geography.
    }
  }
  const double noise = std::exp(profile_.mapping_noise_sigma *
                                hash_normal(hash3(profile_.seed, key.network().to_uint(),
                                                  cluster_index + 17)));
  return blended * noise;
}

std::vector<std::size_t> CdnProvider::ranked_clusters(
    const topology::GeoPoint& subnet_location, const net::Prefix& key) const {
  std::vector<std::pair<double, std::size_t>> scored;
  scored.reserve(clusters_.size());
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    scored.emplace_back(estimate_ms(subnet_location, i, key), i);
  }
  std::sort(scored.begin(), scored.end());
  std::vector<std::size_t> ranked;
  ranked.reserve(scored.size());
  for (const auto& [ms, i] : scored) ranked.push_back(i);
  return ranked;
}

int CdnProvider::mapped_cluster(const net::Prefix& subnet) const {
  if (!is_mapped(subnet)) return -1;
  const net::Prefix key = mapping_key(subnet);
  const auto location = world_->subnet_location(net::Prefix(key.network(), 24));
  if (!location) return -1;
  const auto ranked = ranked_clusters(*location, key);
  std::size_t choice = 0;
  // Persistent mapping error: with probability error_rate the key is stuck
  // on a lower-ranked cluster (geometrically distributed displacement).
  const std::uint64_t h = hash3(profile_.seed, key.network().to_uint(), 0xE44);
  if (hash01(h) < profile_.mapping_error_rate) {
    std::size_t displacement = 1;
    std::uint64_t g = mix(h);
    while (hash01(g) < 0.5 && displacement + 1 < ranked.size()) {
      ++displacement;
      g = mix(g);
    }
    choice = std::min(displacement, ranked.size() - 1);
  }
  return static_cast<int>(ranked[choice]);
}

std::vector<net::Ipv4Addr> CdnProvider::replica_set_from(const CdnCluster& cluster,
                                                         std::uint64_t rotation) const {
  const std::size_t n = cluster.replicas.size();
  const auto want = static_cast<std::size_t>(
      std::min<int>(profile_.replica_set_size, static_cast<int>(n)));
  std::vector<net::Ipv4Addr> out;
  out.reserve(want);
  for (std::size_t k = 0; k < want; ++k) {
    out.push_back(cluster.replicas[(rotation + k) % n]);
  }
  return out;
}

std::vector<net::Ipv4Addr> CdnProvider::select_replicas(const net::Prefix& ecs_subnet) {
  return select_with_rotation(ecs_subnet, query_counter_++);
}

std::vector<net::Ipv4Addr> CdnProvider::select_replicas(const net::Prefix& ecs_subnet,
                                                        std::uint64_t nonce) const {
  // The rotation position is a hash of the query id: consecutive queries
  // (distinct ids) still land on different rotations, but the answer no
  // longer depends on how many queries other clients issued first.
  return select_with_rotation(ecs_subnet, mix(nonce ^ profile_.seed));
}

std::vector<net::Ipv4Addr> CdnProvider::select_with_rotation(const net::Prefix& ecs_subnet,
                                                             std::uint64_t rotation) const {
  const net::Prefix key = mapping_key(ecs_subnet);

  if (profile_.anycast) {
    // Subnets are assigned a stable starting VIP; the set still rotates a
    // little per query (divergence without latency consequence).
    const std::size_t n = vips_.size();
    const std::size_t start =
        static_cast<std::size_t>(hash3(profile_.seed, key.network().to_uint(), 0xCA)) % n;
    const auto want = static_cast<std::size_t>(
        std::min<int>(profile_.replica_set_size, static_cast<int>(n)));
    std::vector<net::Ipv4Addr> out;
    for (std::size_t k = 0; k < want; ++k) {
      out.push_back(vips_[(start + k + rotation % 2) % n]);
    }
    return out;
  }

  const int persistent = mapped_cluster(ecs_subnet);
  if (persistent < 0) {
    // Generic answer for unmapped space: any cluster, weighted by capacity,
    // different per query. This is the instability [47] observed — and the
    // risk a client takes when it assimilates a subnet the CDN never
    // measured: the next answer can come from the wrong continent.
    const std::uint64_t h = hash3(profile_.seed, key.network().to_uint(), rotation);
    double total = 0.0;
    for (const auto& c : clusters_) total += c.weight;
    double x = hash01(h) * total;
    std::size_t pick = 0;
    for (std::size_t i = 0; i < clusters_.size(); ++i) {
      x -= clusters_[i].weight;
      if (x <= 0.0) {
        pick = i;
        break;
      }
    }
    return replica_set_from(clusters_[pick], rotation);
  }

  std::size_t serve = static_cast<std::size_t>(persistent);
  // Transient load-balancing spill to the runner-up.
  const std::uint64_t spill_h =
      hash3(profile_.seed ^ 0x5B1LL, key.network().to_uint(), rotation);
  if (hash01(spill_h) < profile_.lb_spill_prob && clusters_.size() > 1) {
    const auto location = world_->subnet_location(net::Prefix(key.network(), 24));
    if (location) {
      const auto ranked = ranked_clusters(*location, key);
      serve = ranked[0] == serve ? ranked[1] : ranked[0];
    }
  }
  return replica_set_from(clusters_[serve], rotation);
}

}  // namespace drongo::cdn
