// Two-phase CDN deployment into a simulated world.
//
// Phase 1 (plan_cdn) runs BEFORE World construction: it adds the CDN's AS
// node — one PoP per cluster metro — and its interconnection (peering with
// tier-1s, regional peering with tier-2s, plus a transit uplink) to the AS
// graph. Phase 2 (deploy_cdn) runs after: it allocates replica hosts and
// builds the CdnProvider (and anycast VIPs when the profile asks for them).
#pragma once

#include <memory>
#include <vector>

#include "cdn/provider.hpp"
#include "net/rng.hpp"
#include "topology/as_gen.hpp"

namespace drongo::cdn {

/// Output of phase 1, input to phase 2.
struct CdnPlan {
  CdnProfile profile;
  std::size_t as_index = 0;
  /// Per cluster: the PoP of the CDN AS it lives at, and metro.
  std::vector<int> cluster_pops;
  std::vector<int> cluster_metros;
  std::vector<double> cluster_weights;
};

/// Adds the CDN's AS to the graph and plans cluster placement. Placement
/// samples metros by population weight times the profile's metro bias, so
/// regional CDNs (Alibaba, ChinaNetCenter, CubeCDN) concentrate where their
/// real counterparts do.
CdnPlan plan_cdn(topology::AsGraph& graph, const CdnProfile& profile, net::Rng& rng);

/// Allocates replica hosts at the planned PoPs and builds the provider.
CdnProvider deploy_cdn(topology::World& world, const CdnPlan& plan);

}  // namespace drongo::cdn
