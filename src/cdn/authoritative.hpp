// Authoritative DNS server fronting a CdnProvider.
#pragma once

#include "cdn/provider.hpp"
#include "dns/server.hpp"

namespace drongo::cdn {

/// Serves A records for the provider's content hostnames, tailoring answers
/// to the ECS subnet in the query (or, without ECS — and always, for
/// ECS-restricted profiles — to the /24 of the querying resolver).
///
/// Responses carry the provider's mapping granularity as the ECS SCOPE and
/// a short TTL, like real CDN authoritatives.
class CdnAuthoritative : public dns::DnsServer {
 public:
  /// `provider` is borrowed and must outlive the server.
  explicit CdnAuthoritative(CdnProvider* provider, std::uint32_t ttl_seconds = 30);

  dns::Message handle(const dns::Message& query, net::Ipv4Addr source) override;

  /// The zone this server is authoritative for.
  [[nodiscard]] dns::DnsName zone() const;

  /// Fully qualified content names served (label + zone).
  [[nodiscard]] std::vector<dns::DnsName> content_names() const;

 private:
  CdnProvider* provider_;
  std::uint32_t ttl_;
};

}  // namespace drongo::cdn
