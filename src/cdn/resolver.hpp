// Public recursive resolver (the simulated 8.8.8.8).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>

#include "cdn/codel.hpp"
#include "dns/serving_cache.hpp"
#include "dns/server.hpp"
#include "obs/metrics.hpp"

namespace drongo::cdn {

/// Serving-path knobs for PublicResolver: how the answer cache is sharded
/// and whether concurrent identical queries coalesce into one upstream
/// exchange. The defaults (cache off) reproduce the pristine pass-through
/// resolver every pre-serving experiment assumes.
struct ServingConfig {
  /// Master switch for the RFC 7871 scoped answer cache.
  bool enable_cache = false;
  /// Lock-striped shards for the cache (clamped to >= 1). One shard
  /// degenerates to the classic single-mutex cache.
  std::size_t shards = 1;
  /// Total cache capacity, divided evenly across shards.
  std::size_t max_entries = 4096;
  /// Singleflight: concurrent clients asking the same (qname, ECS subnet)
  /// share one upstream exchange instead of racing N identical ones.
  bool coalesce = false;
  /// Cache NXDOMAIN/NODATA answers (scope-zero, RFC 2308-style).
  bool negative_cache = true;
  /// TTL for cached negative answers.
  std::uint32_t negative_ttl_seconds = 30;
  /// CoDel-style admission control in front of the serving path: when
  /// enabled, arrivals whose virtual-queue sojourn violates the drop law
  /// are shed with SERVFAIL instead of degrading every queued query.
  CodelConfig overload;
};

/// An ECS-forwarding public recursive resolver, modelled on Google Public
/// DNS: queries are routed to the authoritative for the longest matching
/// zone suffix; if the client supplied no ECS option, the resolver inserts
/// one with the client's /24 (the "A Faster Internet" behaviour the paper
/// builds on). Positive answers are cached per RFC 7871 scope rules with a
/// caller-advanced simulated clock; NXDOMAIN/NODATA answers are cached
/// scope-zero. With coalescing enabled, concurrent misses on the same
/// (qname, ECS subnet) elect one leader to go upstream and share its answer.
///
/// Thread-safety: zone registration, `set_time_ms`, and `set_registry` are
/// setup-phase and single-threaded. `handle` may then be called
/// concurrently — the answer cache is shard-locked internally and the
/// upstream counters are atomic.
class PublicResolver : public dns::DnsServer {
 public:
  /// `transport` carries queries to authoritatives; borrowed.
  PublicResolver(dns::DnsTransport* transport, net::Ipv4Addr own_address,
                 bool enable_cache = false);
  PublicResolver(dns::DnsTransport* transport, net::Ipv4Addr own_address,
                 const ServingConfig& serving);

  /// Registers the authoritative server address for a zone.
  void register_zone(const dns::DnsName& zone, net::Ipv4Addr authoritative);

  dns::Message handle(const dns::Message& query, net::Ipv4Addr source) override;

  /// Advances the simulated clock used for cache TTLs.
  void set_time_ms(std::uint64_t now_ms) { now_ms_ = now_ms; }

  /// Attaches an obs registry (borrowed; nullptr detaches): cache events
  /// appear as `dns.cache.*`, upstream exchanges as `cdn.resolver.*`.
  void set_registry(obs::Registry* registry) {
    registry_ = registry;
    cache_.set_registry(registry);
    admission_.set_registry(registry);
  }

  [[nodiscard]] const ServingConfig& serving() const { return serving_; }
  [[nodiscard]] const dns::ShardedDnsCache& cache() const { return cache_; }
  [[nodiscard]] dns::CacheStats cache_stats() const { return cache_.stats(); }
  /// The CoDel admission controller (inert unless serving().overload.enabled).
  [[nodiscard]] const CodelQueue& admission() const { return admission_; }
  [[nodiscard]] std::uint64_t upstream_queries() const {
    return upstream_queries_.load(std::memory_order_relaxed);
  }
  /// Upstream exchanges that failed transiently and became SERVFAIL answers.
  [[nodiscard]] std::uint64_t upstream_failures() const {
    return upstream_failures_.load(std::memory_order_relaxed);
  }

 private:
  std::optional<net::Ipv4Addr> authoritative_for(const dns::DnsName& name) const;

  /// Full recursive resolution (zone routing, CNAME chase, caching). When
  /// `flight` is non-null this caller is the singleflight leader and the
  /// shareable outcome is published for every waiting follower. When
  /// `foreign_family` the client sent an ECS family the cache cannot
  /// represent: the answer is served but never cached, and the echoed
  /// option carries scope 0.
  dns::Message resolve_upstream(const dns::Message& query, const dns::Question& q,
                                const net::IpPrefix& ecs, bool client_sent_ecs,
                                bool foreign_family,
                                dns::ShardedDnsCache::Flight* flight);

  /// Synthesizes a client response from a cache entry or flight outcome
  /// (final addresses only; CNAME chains are not replayed).
  dns::Message answer_from(const dns::Message& query, const dns::Question& q,
                           dns::Rcode rcode,
                           const std::vector<net::Ipv4Addr>& addresses,
                           int scope_length, bool client_sent_ecs) const;

  dns::DnsTransport* transport_;
  net::Ipv4Addr address_;
  ServingConfig serving_;
  std::uint64_t now_ms_ = 0;
  std::map<dns::DnsName, net::Ipv4Addr> zones_;
  dns::ShardedDnsCache cache_;
  CodelQueue admission_;
  obs::Registry* registry_ = nullptr;  // borrowed; optional telemetry mirror
  std::atomic<std::uint64_t> upstream_queries_{0};
  std::atomic<std::uint64_t> upstream_failures_{0};
};

}  // namespace drongo::cdn
