// Public recursive resolver (the simulated 8.8.8.8).
#pragma once

#include <atomic>
#include <map>
#include <mutex>
#include <optional>

#include "dns/cache.hpp"
#include "dns/server.hpp"

namespace drongo::cdn {

/// An ECS-forwarding public recursive resolver, modelled on Google Public
/// DNS: queries are routed to the authoritative for the longest matching
/// zone suffix; if the client supplied no ECS option, the resolver inserts
/// one with the client's /24 (the "A Faster Internet" behaviour the paper
/// builds on). Positive answers are cached per RFC 7871 scope rules with a
/// caller-advanced simulated clock.
///
/// Thread-safety: zone registration and `set_time_ms` are setup-phase and
/// single-threaded. `handle` may then be called concurrently — the answer
/// cache is guarded internally and the upstream counter is atomic.
class PublicResolver : public dns::DnsServer {
 public:
  /// `transport` carries queries to authoritatives; borrowed.
  PublicResolver(dns::DnsTransport* transport, net::Ipv4Addr own_address,
                 bool enable_cache = false);

  /// Registers the authoritative server address for a zone.
  void register_zone(const dns::DnsName& zone, net::Ipv4Addr authoritative);

  dns::Message handle(const dns::Message& query, net::Ipv4Addr source) override;

  /// Advances the simulated clock used for cache TTLs.
  void set_time_ms(std::uint64_t now_ms) { now_ms_ = now_ms; }

  [[nodiscard]] const dns::DnsCache& cache() const { return cache_; }
  [[nodiscard]] std::uint64_t upstream_queries() const {
    return upstream_queries_.load(std::memory_order_relaxed);
  }
  /// Upstream exchanges that failed transiently and became SERVFAIL answers.
  [[nodiscard]] std::uint64_t upstream_failures() const {
    return upstream_failures_.load(std::memory_order_relaxed);
  }

 private:
  std::optional<net::Ipv4Addr> authoritative_for(const dns::DnsName& name) const;

  dns::DnsTransport* transport_;
  net::Ipv4Addr address_;
  bool caching_;
  std::uint64_t now_ms_ = 0;
  std::map<dns::DnsName, net::Ipv4Addr> zones_;
  mutable std::mutex cache_mutex_;  ///< guards cache_ when caching_ is on
  dns::DnsCache cache_;
  std::atomic<std::uint64_t> upstream_queries_{0};
  std::atomic<std::uint64_t> upstream_failures_{0};
};

}  // namespace drongo::cdn
