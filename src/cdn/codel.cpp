#include "cdn/codel.hpp"

#include <algorithm>
#include <cmath>

#include "net/error.hpp"

namespace drongo::cdn {

CodelQueue::CodelQueue(CodelConfig config) : config_(config) {
  if (config_.enabled) {
    if (!(config_.target_ms > 0.0)) {
      throw net::InvalidArgument("codel target_ms must be > 0");
    }
    if (!(config_.interval_ms > 0.0)) {
      throw net::InvalidArgument("codel interval_ms must be > 0");
    }
    if (!(config_.service_cost_ms > 0.0)) {
      throw net::InvalidArgument("codel service_cost_ms must be > 0");
    }
  }
}

CodelStats CodelQueue::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

double CodelQueue::max_sojourn_ms() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return max_sojourn_ms_;
}

double CodelQueue::sojourn_at(double now_ms) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return std::max(0.0, busy_until_ms_ - now_ms);
}

bool CodelQueue::offer(double now_ms) {
  if (!config_.enabled) return true;
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.offered;
  const double sojourn_ms = std::max(0.0, busy_until_ms_ - now_ms);
  max_sojourn_ms_ = std::max(max_sojourn_ms_, sojourn_ms);
  if (registry_ != nullptr) {
    registry_->add("cdn.serving.codel.offered");
    registry_->observe_ms("cdn.serving.codel.sojourn_ms", sojourn_ms);
  }

  bool drop = false;
  bool sloughed = false;
  if (sojourn_ms < config_.target_ms) {
    // Below target: all is forgiven. Leaving the dropping state resets the
    // schedule; the next episode starts from a fresh interval.
    above_target_ = false;
    dropping_ = false;
    drop_count_ = 0;
  } else if (!above_target_) {
    // First crossing: arm the interval timer, admit this one.
    above_target_ = true;
    first_above_ms_ = now_ms + config_.interval_ms;
  } else if (!dropping_) {
    if (now_ms >= first_above_ms_) {
      // Sojourn stayed above target for a whole interval: start shedding,
      // at an accelerating rate until the queue comes back under control.
      dropping_ = true;
      drop_count_ = 1;
      drop_next_ms_ =
          now_ms + config_.interval_ms / std::sqrt(static_cast<double>(drop_count_));
      drop = true;
    }
  } else if (sojourn_ms > 2.0 * config_.target_ms) {
    // Sloughing: dequeue-side CoDel relies on congestion-controlled senders
    // backing off after a drop; an admission controller facing an open-loop
    // query stream has no such sender, so while in the dropping state any
    // arrival that would wait more than 2x target is shed outright (the
    // server-side CoDel adaptation). This is what actually bounds sojourn
    // under sustained 2x overload.
    drop = true;
    sloughed = true;
  } else if (now_ms >= drop_next_ms_) {
    ++drop_count_;
    drop_next_ms_ =
        now_ms + config_.interval_ms / std::sqrt(static_cast<double>(drop_count_));
    drop = true;
  }

  if (drop) {
    ++stats_.dropped;
    if (sloughed) ++stats_.sloughed;
    if (registry_ != nullptr) {
      registry_->add("cdn.serving.codel.dropped");
      if (sloughed) registry_->add("cdn.serving.codel.sloughed");
    }
    return false;
  }
  ++stats_.admitted;
  if (registry_ != nullptr) registry_->add("cdn.serving.codel.admitted");
  busy_until_ms_ = std::max(busy_until_ms_, now_ms) + config_.service_cost_ms;
  return true;
}

}  // namespace drongo::cdn
