// Per-provider CDN profiles modelling the six CDNs from the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace drongo::cdn {

/// Static description of a CDN provider: footprint, mapping quality, and
/// serving policy. Values are chosen so each simulated provider reproduces
/// the qualitative behaviour the paper reports for its real counterpart
/// (§3.1.1, §3.2, §5.2); see DESIGN.md for the mapping rationale.
struct CdnProfile {
  std::string name;
  /// DNS zone apex, e.g. "googlecdn.sim"; content is served from
  /// subdomains (img.<zone>, static.<zone>, ...).
  std::string zone;
  /// Hostnames (labels under the zone) that carry content.
  std::vector<std::string> content_labels = {"img", "static", "media"};

  /// Number of replica clusters to deploy.
  int cluster_count = 20;
  /// Replica hosts per cluster.
  int replicas_per_cluster = 3;
  /// Addresses returned per DNS response (the CR-set / HR-set size).
  int replica_set_size = 2;

  /// Per-metro placement weight multipliers; empty = uniform by metro
  /// weight. Keys are metro indices into topology::world_metros().
  std::vector<std::pair<int, double>> metro_bias;

  /// ECS mapping granularity in prefix bits (24 = fine, 16 = coarse). Also
  /// returned as the ECS SCOPE.
  int mapping_granularity = 24;
  /// Lognormal sigma on the CDN's internal latency estimates: how wrong its
  /// measurements of the Internet are. Larger -> more (and deeper) valleys.
  double mapping_noise_sigma = 0.35;
  /// How much of the estimate comes from real routed-latency measurement
  /// (1.0) versus geographic/IP-geolocation inference (0.0). Geography is
  /// blind to routing inflation — low awareness is the paper's "CDNs'
  /// mapping of the Internet isn't perfect" failure mode.
  double routing_awareness = 0.5;
  /// Probability a subnet is mapped to a random nearby cluster instead of
  /// the estimated-best one (stale measurements, traffic engineering).
  double mapping_error_rate = 0.08;
  /// Fraction of INFRASTRUCTURE (router) subnet space the CDN has measured;
  /// unmapped subnets receive rotating generic answers (per [47], as cited
  /// in §3.2.2). Hop subnets live here, which is why some hops are
  /// unpredictable (Fig. 5a).
  double mapped_fraction = 0.8;
  /// Fraction of EYEBALL (end-host) subnet space measured. CDNs map the
  /// space their clients actually query from far more completely, so this
  /// is high for every provider.
  double mapped_fraction_eyeball = 0.97;
  /// Probability a query is diverted to the second-best cluster for load
  /// balancing (transient, per-query).
  double lb_spill_prob = 0.08;

  /// Anycast serving (CDNetworks): replica addresses are anycast VIPs whose
  /// effective latency is that of the nearest front, making DNS-level
  /// subnet choice nearly irrelevant.
  bool anycast = false;
  /// Number of anycast VIP groups when anycast is true.
  int anycast_vips = 4;

  /// Restricted ECS (Akamai-like): the authoritative ignores the ECS option
  /// entirely and maps by resolver source address. Such providers are
  /// filtered out by provider selection (§3.1.1) and serve as a negative
  /// control in tests.
  bool ecs_restricted = false;

  std::uint64_t seed = 1;
};

/// Index ranges in topology::world_metros(): [18,22] = Asia, 16 = Istanbul.
/// The factories below use them to shape footprints.

/// Google-like: huge, globally dispersed, fine-grained /24 mapping, modest
/// estimate noise but a large mapped space — deep valleys where estimates
/// go wrong (paper: 20.24% valleys, biggest per-query gains).
CdnProfile google_like();

/// Amazon CloudFront-like: ~50 PoPs, conservative and accurate mapping —
/// fewest valleys (14.02%).
CdnProfile cloudfront_like();

/// Alibaba-like: Asia-concentrated footprint; mapping outside the core
/// region is noisy — most prevalent valleys (33.68%, 75.83% of routes).
CdnProfile alibaba_like();

/// CDNetworks-like: global footprint served via anycast — valleys are
/// frequent but shallow (latency ratio near 1).
CdnProfile cdnetworks_like();

/// ChinaNetCenter-like: Asia-centred, high estimate noise — deep valleys
/// (27.42%).
CdnProfile chinanetcenter_like();

/// CubeCDN-like: small regional CDN centred on Turkey — high valley rate
/// within its region (38.58%).
CdnProfile cubecdn_like();

/// Akamai-like negative control with restricted ECS (§2.2): not usable by
/// Drongo; exercised by provider-selection tests.
CdnProfile akamai_like_restricted();

/// The paper's six-provider set, in Table 1 order.
std::vector<CdnProfile> paper_providers();

}  // namespace drongo::cdn
