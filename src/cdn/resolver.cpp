#include "cdn/resolver.hpp"

#include "net/error.hpp"

namespace drongo::cdn {

PublicResolver::PublicResolver(dns::DnsTransport* transport, net::Ipv4Addr own_address,
                               bool enable_cache)
    : transport_(transport), address_(own_address), caching_(enable_cache) {
  if (transport_ == nullptr) throw net::InvalidArgument("null transport");
}

void PublicResolver::register_zone(const dns::DnsName& zone, net::Ipv4Addr authoritative) {
  zones_[zone] = authoritative;
}

std::optional<net::Ipv4Addr> PublicResolver::authoritative_for(
    const dns::DnsName& name) const {
  // Longest-suffix match across registered zones.
  std::optional<net::Ipv4Addr> best;
  std::size_t best_labels = 0;
  for (const auto& [zone, server] : zones_) {
    if (name.is_subdomain_of(zone) && zone.label_count() >= best_labels) {
      best = server;
      best_labels = zone.label_count();
    }
  }
  return best;
}

dns::Message PublicResolver::handle(const dns::Message& query, net::Ipv4Addr source) {
  if (query.questions.size() != 1) {
    return dns::Message::make_response(query, dns::Rcode::kFormErr);
  }
  const dns::Question& q = query.questions[0];

  // Determine the ECS subnet to forward: the client's option if present,
  // else the client's /24 (Google Public DNS behaviour).
  net::Prefix ecs = net::Prefix(source, 24);
  bool client_sent_ecs = false;
  if (query.edns && query.edns->client_subnet && query.edns->client_subnet->family == 1) {
    ecs = query.edns->client_subnet->source_prefix();
    client_sent_ecs = true;
  }

  if (caching_ && q.type == dns::RrType::kA) {
    std::lock_guard lock(cache_mutex_);
    if (auto hit = cache_.lookup(q.name, ecs, now_ms_)) {
      // Cached entries hold final addresses only; intermediate CNAME chain
      // records are not replayed (stubs consume addresses).
      dns::Message response =
          dns::Message::make_response(query, dns::Rcode::kNoError, hit->scope.length());
      for (net::Ipv4Addr addr : hit->addresses) {
        response.answers.push_back(dns::ResourceRecord::a(q.name, addr, 30));
      }
      if (!client_sent_ecs) response.clear_client_subnet();
      return response;
    }
  }

  // Iterative resolution with CNAME chasing (bounded depth, as real
  // recursives do): each step queries the authoritative for the current
  // name; a CNAME without accompanying A records restarts at the target.
  dns::DnsName current = q.name;
  std::vector<dns::ResourceRecord> chain;
  dns::Message upstream_reply;
  bool resolved = false;
  for (int depth = 0; depth < 8; ++depth) {
    const auto authoritative = authoritative_for(current);
    if (!authoritative) {
      // A dangling chain (or unknown name) is SERVFAIL when mid-chase,
      // REFUSED when we never had anywhere to go.
      return dns::Message::make_response(
          query, depth == 0 ? dns::Rcode::kRefused : dns::Rcode::kServFail);
    }
    dns::Message upstream = dns::Message::make_query(query.header.id, current, ecs, q.type);
    ++upstream_queries_;
    try {
      upstream_reply = dns::Message::decode(
          transport_->exchange(address_, *authoritative, upstream.encode()));
    } catch (const net::TransientError&) {
      // The authoritative is down or the path is lossy: a recursive answers
      // SERVFAIL rather than leaving the client hanging, and the client's
      // retry policy takes it from there.
      upstream_failures_.fetch_add(1, std::memory_order_relaxed);
      return dns::Message::make_response(query, dns::Rcode::kServFail);
    }
    if (upstream_reply.header.rcode != dns::Rcode::kNoError) break;

    std::optional<dns::DnsName> target;
    for (const auto& rr : upstream_reply.answers) {
      if (rr.name == current) {
        if (const auto* cname = std::get_if<dns::CnameRdata>(&rr.rdata)) {
          target = cname->target;
        }
      }
    }
    if (!upstream_reply.answer_addresses().empty() || !target) {
      resolved = true;
      break;
    }
    // Chase: keep the chain for the client, restart at the target.
    for (const auto& rr : upstream_reply.answers) chain.push_back(rr);
    current = *target;
  }
  if (!resolved && upstream_reply.header.rcode == dns::Rcode::kNoError &&
      upstream_reply.answer_addresses().empty() && !chain.empty()) {
    // Chase depth exhausted: a CNAME loop.
    return dns::Message::make_response(query, dns::Rcode::kServFail);
  }

  std::optional<int> scope;
  if (upstream_reply.edns && upstream_reply.edns->client_subnet) {
    scope = upstream_reply.edns->client_subnet->scope_prefix_length;
  }
  dns::Message response =
      dns::Message::make_response(query, upstream_reply.header.rcode, scope);
  response.header.ra = true;
  response.answers = std::move(chain);
  for (const auto& rr : upstream_reply.answers) response.answers.push_back(rr);

  if (caching_ && q.type == dns::RrType::kA &&
      response.header.rcode == dns::Rcode::kNoError && !response.answers.empty()) {
    net::Prefix cache_scope = scope ? net::Prefix(ecs.network(), *scope) : ecs;
    std::uint32_t ttl = UINT32_MAX;
    for (const auto& rr : response.answers) ttl = std::min(ttl, rr.ttl);
    const auto addresses = response.answer_addresses();
    if (!addresses.empty()) {
      std::lock_guard lock(cache_mutex_);
      cache_.insert(q.name, cache_scope, addresses, ttl, now_ms_);
    }
  }

  // When the client sent no ECS, strip the option we added on its behalf
  // (the client never asked to see it).
  if (!client_sent_ecs) {
    response.clear_client_subnet();
  }
  return response;
}

}  // namespace drongo::cdn
