#include "cdn/resolver.hpp"

#include <algorithm>
#include <cmath>

#include "dns/faults.hpp"
#include "net/error.hpp"

namespace drongo::cdn {

namespace {

ServingConfig legacy_config(bool enable_cache) {
  ServingConfig serving;
  serving.enable_cache = enable_cache;
  return serving;
}

}  // namespace

PublicResolver::PublicResolver(dns::DnsTransport* transport, net::Ipv4Addr own_address,
                               bool enable_cache)
    : PublicResolver(transport, own_address, legacy_config(enable_cache)) {}

PublicResolver::PublicResolver(dns::DnsTransport* transport, net::Ipv4Addr own_address,
                               const ServingConfig& serving)
    : transport_(transport),
      address_(own_address),
      serving_(serving),
      cache_(serving.shards, serving.max_entries),
      admission_(serving.overload) {
  if (transport_ == nullptr) throw net::InvalidArgument("null transport");
}

void PublicResolver::register_zone(const dns::DnsName& zone, net::Ipv4Addr authoritative) {
  zones_[zone] = authoritative;
}

std::optional<net::Ipv4Addr> PublicResolver::authoritative_for(
    const dns::DnsName& name) const {
  // Longest-suffix match across registered zones.
  std::optional<net::Ipv4Addr> best;
  std::size_t best_labels = 0;
  for (const auto& [zone, server] : zones_) {
    if (name.is_subdomain_of(zone) && zone.label_count() >= best_labels) {
      best = server;
      best_labels = zone.label_count();
    }
  }
  return best;
}

dns::Message PublicResolver::answer_from(const dns::Message& query,
                                         const dns::Question& q, dns::Rcode rcode,
                                         const std::vector<net::Ipv4Addr>& addresses,
                                         int scope_length, bool client_sent_ecs) const {
  dns::Message response = dns::Message::make_response(query, rcode, scope_length);
  response.header.ra = true;
  for (net::Ipv4Addr addr : addresses) {
    response.answers.push_back(dns::ResourceRecord::a(q.name, addr, 30));
  }
  if (!client_sent_ecs) response.clear_client_subnet();
  return response;
}

dns::Message PublicResolver::handle(const dns::Message& query, net::Ipv4Addr source) {
  if (query.questions.size() != 1) {
    return dns::Message::make_response(query, dns::Rcode::kFormErr);
  }
  if (serving_.overload.enabled) {
    // Admission happens before any real work: a shed query costs the
    // resolver nothing, which is the whole point of shedding. The arrival
    // clock is the trial's simulated time when one is executing (the same
    // clock outage windows run on), else the caller-advanced cache clock.
    const double trial_hours = dns::ScopedFaultTime::current();
    const double arrival_ms = std::isnan(trial_hours)
                                  ? static_cast<double>(now_ms_)
                                  : trial_hours * 3'600'000.0;
    if (!admission_.offer(arrival_ms)) {
      return dns::Message::make_response(query, dns::Rcode::kServFail);
    }
  }
  const dns::Question& q = query.questions[0];

  // Determine the ECS subnet to forward: the client's option if present
  // (either family), else the client's /24 (Google Public DNS behaviour).
  net::IpPrefix ecs = net::Prefix(source, 24);
  bool client_sent_ecs = false;
  bool foreign_family = false;
  if (query.edns && query.edns->client_subnet) {
    const dns::ClientSubnet& cs = *query.edns->client_subnet;
    if (cs.is_representable()) {
      ecs = cs.source_prefix();
      client_sent_ecs = true;
    } else {
      // A family the cache cannot represent. The answer is still served
      // (tailored to the transport source /24), but it must never be
      // cached — under the old v4-only decode these queries collapsed to
      // the generic 0.0.0.0 scope and poisoned every uncovered client. The
      // client still sent ECS, so the option is echoed back (§7.1.2, with
      // scope forced to 0) rather than stripped.
      foreign_family = true;
      client_sent_ecs = true;
    }
  }

  const bool serving =
      serving_.enable_cache && q.type == dns::RrType::kA && !foreign_family;
  if (foreign_family && serving_.enable_cache && q.type == dns::RrType::kA) {
    cache_.note_foreign_family_drop(q.name);
  }
  if (!serving) {
    return resolve_upstream(query, q, ecs, client_sent_ecs, foreign_family,
                            /*flight=*/nullptr);
  }

  if (const auto hit = cache_.lookup(q.name, ecs, now_ms_)) {
    return answer_from(query, q, hit->rcode, hit->addresses, hit->scope.length(),
                       client_sent_ecs);
  }

  if (!serving_.coalesce) {
    return resolve_upstream(query, q, ecs, client_sent_ecs, foreign_family,
                            /*flight=*/nullptr);
  }

  auto flight = cache_.join(q.name, ecs);
  if (flight.leader()) {
    return resolve_upstream(query, q, ecs, client_sent_ecs, foreign_family, &flight);
  }
  const auto outcome = flight.wait();
  if (outcome.usable) {
    return answer_from(query, q, outcome.rcode, outcome.addresses,
                       outcome.scope_length, client_sent_ecs);
  }
  // The leader died before producing a shareable answer; resolve alone
  // rather than re-queueing (one failed flight must not cascade).
  return resolve_upstream(query, q, ecs, client_sent_ecs, foreign_family,
                          /*flight=*/nullptr);
}

dns::Message PublicResolver::resolve_upstream(const dns::Message& query,
                                              const dns::Question& q,
                                              const net::IpPrefix& ecs,
                                              bool client_sent_ecs,
                                              bool foreign_family,
                                              dns::ShardedDnsCache::Flight* flight) {
  // Shares the final answer with coalesced followers on every exit path.
  const auto publish = [&](dns::Rcode rcode, std::vector<net::Ipv4Addr> addresses,
                           int scope_length) {
    if (flight == nullptr) return;
    dns::ShardedDnsCache::FlightOutcome outcome;
    outcome.rcode = rcode;
    outcome.addresses = std::move(addresses);
    outcome.scope_length = scope_length;
    outcome.usable = true;
    flight->publish(std::move(outcome));
  };

  // Iterative resolution with CNAME chasing (bounded depth, as real
  // recursives do): each step queries the authoritative for the current
  // name; a CNAME without accompanying A records restarts at the target.
  dns::DnsName current = q.name;
  std::vector<dns::ResourceRecord> chain;
  dns::Message upstream_reply;
  bool resolved = false;
  for (int depth = 0; depth < 8; ++depth) {
    const auto authoritative = authoritative_for(current);
    if (!authoritative) {
      // A dangling chain (or unknown name) is SERVFAIL when mid-chase,
      // REFUSED when we never had anywhere to go.
      const auto rcode = depth == 0 ? dns::Rcode::kRefused : dns::Rcode::kServFail;
      publish(rcode, {}, 0);
      return dns::Message::make_response(query, rcode);
    }
    dns::Message upstream = dns::Message::make_query(query.header.id, current, ecs, q.type);
    ++upstream_queries_;
    if (registry_ != nullptr) registry_->add("cdn.resolver.upstream_queries");
    try {
      upstream_reply = dns::Message::decode(
          transport_->exchange(address_, *authoritative, upstream.encode()));
    } catch (const net::TransientError&) {
      // The authoritative is down or the path is lossy: a recursive answers
      // SERVFAIL rather than leaving the client hanging, and the client's
      // retry policy takes it from there. Followers share the SERVFAIL
      // (classic singleflight) instead of stampeding a failing server.
      upstream_failures_.fetch_add(1, std::memory_order_relaxed);
      if (registry_ != nullptr) registry_->add("cdn.resolver.upstream_failures");
      publish(dns::Rcode::kServFail, {}, 0);
      return dns::Message::make_response(query, dns::Rcode::kServFail);
    }
    if (upstream_reply.header.rcode != dns::Rcode::kNoError) break;

    std::optional<dns::DnsName> target;
    for (const auto& rr : upstream_reply.answers) {
      if (rr.name == current) {
        if (const auto* cname = std::get_if<dns::CnameRdata>(&rr.rdata)) {
          target = cname->target;
        }
      }
    }
    if (!upstream_reply.answer_addresses().empty() || !target) {
      resolved = true;
      break;
    }
    // Chase: keep the chain for the client, restart at the target.
    for (const auto& rr : upstream_reply.answers) chain.push_back(rr);
    current = *target;
  }
  if (!resolved && upstream_reply.header.rcode == dns::Rcode::kNoError &&
      upstream_reply.answer_addresses().empty() && !chain.empty()) {
    // Chase depth exhausted: a CNAME loop.
    publish(dns::Rcode::kServFail, {}, 0);
    return dns::Message::make_response(query, dns::Rcode::kServFail);
  }

  std::optional<int> scope;
  if (upstream_reply.edns && upstream_reply.edns->client_subnet) {
    // Only adopt the upstream scope when it speaks the family we asked in:
    // a mismatched-family scope length is meaningless for our ecs prefix
    // (decode already bounds it to its own family's bit width).
    const dns::ClientSubnet& upstream_ecs = *upstream_reply.edns->client_subnet;
    const std::uint16_t asked_family =
        ecs.family() == net::IpFamily::kV4 ? 1 : 2;
    if (upstream_ecs.family == asked_family &&
        upstream_ecs.scope_prefix_length <= net::family_bits(ecs.family())) {
      scope = upstream_ecs.scope_prefix_length;
    }
  }
  // RFC 7871 §7.1.2: an option in a family we did not use for tailoring is
  // echoed with scope 0, never with a scope derived from another family.
  dns::Message response = dns::Message::make_response(
      query, upstream_reply.header.rcode,
      foreign_family ? std::optional<int>(0) : scope);
  response.header.ra = true;
  response.answers = std::move(chain);
  for (const auto& rr : upstream_reply.answers) response.answers.push_back(rr);

  const auto addresses = response.answer_addresses();
  if (serving_.enable_cache && q.type == dns::RrType::kA && !foreign_family) {
    const net::IpPrefix cache_scope =
        scope ? net::IpPrefix(ecs.network(), *scope) : ecs;
    if (response.header.rcode == dns::Rcode::kNoError && !addresses.empty()) {
      std::uint32_t ttl = UINT32_MAX;
      for (const auto& rr : response.answers) ttl = std::min(ttl, rr.ttl);
      cache_.insert(q.name, cache_scope, addresses, ttl, now_ms_);
    } else if (serving_.negative_cache &&
               (response.header.rcode == dns::Rcode::kNxDomain ||
                (response.header.rcode == dns::Rcode::kNoError && addresses.empty()))) {
      // NXDOMAIN / NODATA: cached scope-zero in the asking family (a name
      // that does not exist does not exist for anyone, RFC 2308-style), so
      // the longest-match lookup still prefers any tailored positive entry.
      cache_.insert_negative(q.name, net::IpPrefix::zero(ecs.family()),
                             response.header.rcode, serving_.negative_ttl_seconds,
                             now_ms_);
    }
  }
  publish(response.header.rcode, addresses,
          foreign_family ? 0 : scope.value_or(ecs.length()));

  // When the client sent no ECS, strip the option we added on its behalf
  // (the client never asked to see it).
  if (!client_sent_ecs) {
    response.clear_client_subnet();
  }
  return response;
}

}  // namespace drongo::cdn
