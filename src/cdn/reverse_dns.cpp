#include "cdn/reverse_dns.hpp"

#include "dns/reverse.hpp"
#include "net/error.hpp"

namespace drongo::cdn {

ReverseDnsAuthoritative::ReverseDnsAuthoritative(const topology::World* world)
    : world_(world) {
  if (world_ == nullptr) throw net::InvalidArgument("null World");
}

dns::Message ReverseDnsAuthoritative::handle(const dns::Message& query,
                                             net::Ipv4Addr /*source*/) {
  if (query.questions.size() != 1) {
    return dns::Message::make_response(query, dns::Rcode::kFormErr);
  }
  const dns::Question& q = query.questions[0];
  if (!q.name.is_subdomain_of(dns::reverse_zone())) {
    return dns::Message::make_response(query, dns::Rcode::kRefused);
  }
  const auto address = dns::parse_reverse_pointer(q.name);
  if (!address) {
    return dns::Message::make_response(query, dns::Rcode::kNxDomain);
  }
  const std::string rdns = world_->rdns_of(*address);
  if (rdns.empty()) {
    // Unknown or private space: no PTR record exists.
    return dns::Message::make_response(query, dns::Rcode::kNxDomain);
  }
  dns::Message response = dns::Message::make_response(query, dns::Rcode::kNoError);
  if (q.type == dns::RrType::kPtr) {
    response.answers.push_back(
        dns::ResourceRecord::ptr(q.name, dns::DnsName::must_parse(rdns), 3600));
  }
  return response;
}

}  // namespace drongo::cdn
