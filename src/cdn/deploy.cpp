#include "cdn/deploy.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "net/error.hpp"
#include "net/strings.hpp"

namespace drongo::cdn {

namespace {

/// Metro sampling weight for this profile.
double metro_weight(const CdnProfile& profile, int metro_index) {
  double w = topology::world_metros()[static_cast<std::size_t>(metro_index)].weight;
  for (const auto& [index, multiplier] : profile.metro_bias) {
    if (index == metro_index) w *= multiplier;
  }
  return w;
}

int sample_metro(const CdnProfile& profile, net::Rng& rng) {
  const auto& metros = topology::world_metros();
  double total = 0.0;
  for (std::size_t i = 0; i < metros.size(); ++i) {
    total += metro_weight(profile, static_cast<int>(i));
  }
  double x = rng.uniform_real(0.0, total);
  for (std::size_t i = 0; i < metros.size(); ++i) {
    x -= metro_weight(profile, static_cast<int>(i));
    if (x <= 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(metros.size()) - 1;
}

}  // namespace

CdnPlan plan_cdn(topology::AsGraph& graph, const CdnProfile& profile, net::Rng& rng) {
  CdnPlan plan;
  plan.profile = profile;

  // Cluster metros: sampled with replacement (big metros host several
  // clusters), but the AS gets one PoP per distinct metro.
  std::map<int, int> metro_to_pop;
  topology::AsNode node;
  node.asn = net::Asn(20000 + static_cast<std::uint32_t>(profile.seed % 1000));
  node.tier = topology::AsTier::kTier2;
  node.domain = net::to_lower(profile.name) + "-cdn.net";
  // The address plan allows at most 16 PoPs per AS (two router /24s each);
  // once full, later clusters land at the nearest existing PoP's metro.
  constexpr std::size_t kMaxPops = 16;
  for (int c = 0; c < profile.cluster_count; ++c) {
    int metro = sample_metro(profile, rng);
    if (!metro_to_pop.contains(metro) && node.pops.size() >= kMaxPops) {
      const auto& wanted = topology::world_metros()[static_cast<std::size_t>(metro)];
      double best_km = 1e18;
      for (const auto& [m, pop] : metro_to_pop) {
        const double km = topology::distance_km(
            wanted.location, topology::world_metros()[static_cast<std::size_t>(m)].location);
        if (km < best_km) {
          best_km = km;
          metro = m;
        }
      }
    }
    auto [it, inserted] = metro_to_pop.try_emplace(metro, static_cast<int>(node.pops.size()));
    if (inserted) {
      topology::Pop pop;
      pop.metro_index = metro;
      const auto& m = topology::world_metros()[static_cast<std::size_t>(metro)];
      pop.location = {m.location.lat_deg + rng.uniform_real(-0.1, 0.1),
                      m.location.lon_deg + rng.uniform_real(-0.1, 0.1)};
      node.pops.push_back(pop);
    }
    plan.cluster_pops.push_back(it->second);
    plan.cluster_metros.push_back(metro);
    plan.cluster_weights.push_back(rng.uniform_real(1.0, 4.0));
  }
  plan.as_index = graph.add_node(std::move(node));

  // Interconnection: settlement-free peering with every tier-1 (content
  // networks peer openly), peering with tier-2s that share a metro, and two
  // transit uplinks for corners of the graph peering can't reach
  // valley-free.
  const auto& cdn_node = graph.node(plan.as_index);
  std::vector<std::size_t> tier1s;
  for (std::size_t v = 0; v < graph.node_count(); ++v) {
    if (v == plan.as_index) continue;
    const auto& other = graph.node(v);
    if (other.tier == topology::AsTier::kTier1) tier1s.push_back(v);
  }
  // One link per shared metro (content networks interconnect at every IX
  // they share with a carrier), falling back to the closest PoP pair.
  auto interconnect = [&](topology::LinkKind kind, std::size_t customer,
                          std::size_t provider_or_peer) {
    const auto& a = graph.node(customer);
    const auto& b = graph.node(provider_or_peer);
    bool any = false;
    int best_pa = 0;
    int best_pb = 0;
    double best_km = 1e18;
    for (std::size_t i = 0; i < a.pops.size(); ++i) {
      for (std::size_t j = 0; j < b.pops.size(); ++j) {
        const double km = topology::distance_km(a.pops[i].location, b.pops[j].location);
        if (km < best_km) {
          best_km = km;
          best_pa = static_cast<int>(i);
          best_pb = static_cast<int>(j);
        }
        if (a.pops[i].metro_index != b.pops[j].metro_index) continue;
        topology::AsLink link;
        link.a = customer;
        link.b = provider_or_peer;
        link.pop_a = static_cast<int>(i);
        link.pop_b = static_cast<int>(j);
        link.kind = kind;
        link.latency_ms =
            topology::propagation_ms(a.pops[i].location, b.pops[j].location) +
            rng.uniform_real(0.1, 0.5);
        graph.add_link(link);
        any = true;
      }
    }
    if (!any) {
      topology::AsLink link;
      link.a = customer;
      link.b = provider_or_peer;
      link.pop_a = best_pa;
      link.pop_b = best_pb;
      link.kind = kind;
      link.latency_ms =
          topology::propagation_ms(a.pops[static_cast<std::size_t>(best_pa)].location,
                                   b.pops[static_cast<std::size_t>(best_pb)].location) +
          rng.uniform_real(0.1, 0.5);
      graph.add_link(link);
    }
  };

  for (std::size_t t1 : tier1s) {
    interconnect(topology::LinkKind::kPeering, plan.as_index, t1);
  }
  std::vector<std::size_t> shuffled_t1 = tier1s;
  rng.shuffle(shuffled_t1);
  for (std::size_t k = 0; k < std::min<std::size_t>(2, shuffled_t1.size()); ++k) {
    interconnect(topology::LinkKind::kTransit, plan.as_index, shuffled_t1[k]);
  }
  for (std::size_t v = 0; v < graph.node_count(); ++v) {
    if (v == plan.as_index) continue;
    const auto& other = graph.node(v);
    if (other.tier != topology::AsTier::kTier2) continue;
    bool shared = false;
    for (const auto& pa : cdn_node.pops) {
      for (const auto& pb : other.pops) {
        if (pa.metro_index == pb.metro_index) shared = true;
      }
    }
    if (shared && rng.chance(0.85)) {
      interconnect(topology::LinkKind::kPeering, plan.as_index, v);
    }
  }
  return plan;
}

CdnProvider deploy_cdn(topology::World& world, const CdnPlan& plan) {
  std::vector<CdnCluster> clusters;
  clusters.reserve(plan.cluster_pops.size());
  const auto& node = world.graph().node(plan.as_index);
  for (std::size_t c = 0; c < plan.cluster_pops.size(); ++c) {
    CdnCluster cluster;
    cluster.pop_index = plan.cluster_pops[c];
    cluster.metro_index = plan.cluster_metros[c];
    cluster.location = node.pops[static_cast<std::size_t>(cluster.pop_index)].location;
    cluster.weight = plan.cluster_weights[c];
    for (int r = 0; r < plan.profile.replicas_per_cluster; ++r) {
      cluster.replicas.push_back(world.add_host(
          plan.as_index, topology::HostKind::kServer, cluster.pop_index));
    }
    clusters.push_back(std::move(cluster));
  }

  std::vector<net::Ipv4Addr> vips;
  if (plan.profile.anycast) {
    // Each VIP fronts one replica per cluster; measured latency is the
    // nearest front's.
    for (int v = 0; v < plan.profile.anycast_vips; ++v) {
      std::vector<net::Ipv4Addr> instances;
      for (const auto& cluster : clusters) {
        instances.push_back(
            cluster.replicas[static_cast<std::size_t>(v) % cluster.replicas.size()]);
      }
      vips.push_back(world.add_anycast(std::move(instances)));
    }
  }

  return CdnProvider(plan.profile, &world, plan.as_index, std::move(clusters),
                     std::move(vips));
}

}  // namespace drongo::cdn
