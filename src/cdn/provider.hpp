// CdnProvider: the ECS-driven replica mapping service of one CDN.
#pragma once

#include <cstdint>
#include <vector>

#include "cdn/profile.hpp"
#include "net/prefix.hpp"
#include "topology/world.hpp"

namespace drongo::cdn {

/// One replica cluster: a PoP of the CDN's AS plus the replica hosts there.
struct CdnCluster {
  int pop_index = 0;
  int metro_index = 0;
  topology::GeoPoint location;
  std::vector<net::Ipv4Addr> replicas;
  /// Relative capacity; generic (unmapped) answers rotate over the
  /// highest-capacity clusters.
  double weight = 1.0;
};

/// The replica-selection brain of one simulated CDN.
///
/// Mapping model (the mechanisms §2.1/§3.2 of the paper attribute bad
/// choices to):
///  - Subnets are keyed at `mapping_granularity` bits: everything inside
///    one key shares a mapping (coarse measurement).
///  - Each mapped key has a PERSISTENT cluster choice: the cluster with the
///    lowest CDN-estimated latency, where the estimate is geographic
///    distance distorted by deterministic per-(key,cluster) lognormal noise
///    (imperfect measurement), and with probability `mapping_error_rate`
///    the choice is displaced down the ranking (stale data / traffic
///    engineering). Persistence is what makes valley-prone subnets stable
///    over days (Fig. 5b).
///  - Keys the CDN never measured (`mapped_fraction`, biased toward the
///    provider's build-out regions) receive GENERIC answers rotating over
///    the largest clusters — unstable across queries (Fig. 5a).
///  - Per query, load balancing spills to the runner-up cluster with
///    probability `lb_spill_prob`, and the returned replica list is
///    rotated so the first replica varies (why Drongo must respect the
///    given order rather than cherry-pick).
///  - In anycast mode every returned address is a VIP whose measured
///    latency is that of the nearest front, so DNS-level choice barely
///    matters (CDNetworks' shallow valleys, Fig. 6).
class CdnProvider {
 public:
  /// `world` is borrowed. `vips` must be non-empty iff profile.anycast.
  CdnProvider(CdnProfile profile, topology::World* world, std::size_t as_index,
              std::vector<CdnCluster> clusters, std::vector<net::Ipv4Addr> vips);

  [[nodiscard]] const CdnProfile& profile() const { return profile_; }
  [[nodiscard]] const std::vector<CdnCluster>& clusters() const { return clusters_; }
  [[nodiscard]] std::size_t as_index() const { return as_index_; }
  [[nodiscard]] const std::vector<net::Ipv4Addr>& vips() const { return vips_; }

  /// The replica set the CDN recommends to `ecs_subnet`, in serving order.
  /// Advances the load-balancing rotation (deliberately stateful, like a
  /// real authoritative). Not thread-safe; campaign code uses the nonce
  /// overload below instead.
  std::vector<net::Ipv4Addr> select_replicas(const net::Prefix& ecs_subnet);

  /// Same selection model, but the load-balancing rotation is derived from
  /// `nonce` (the DNS query id) instead of a shared counter. Queries still
  /// see per-query rotation — ids are drawn from the querying stub's RNG —
  /// but the answer is a pure function of (subnet, nonce), independent of
  /// global query order. This is what makes N-thread campaigns byte-
  /// identical to serial runs. Const and safe to call concurrently.
  [[nodiscard]] std::vector<net::Ipv4Addr> select_replicas(const net::Prefix& ecs_subnet,
                                                           std::uint64_t nonce) const;

  /// The mapping key for a subnet (truncated to granularity).
  [[nodiscard]] net::Prefix mapping_key(const net::Prefix& subnet) const;

  /// Whether the CDN has measured (mapped) this subnet.
  [[nodiscard]] bool is_mapped(const net::Prefix& subnet) const;

  /// The persistent cluster index for a mapped subnet, pre-load-balancing;
  /// -1 for unmapped subnets. Exposed for tests and analysis.
  [[nodiscard]] int mapped_cluster(const net::Prefix& subnet) const;

  /// Queries served (load-balancing rotation position).
  [[nodiscard]] std::uint64_t query_count() const { return query_counter_; }

 private:
  /// CDN-internal latency estimate from a subnet location to a cluster:
  /// geography distorted by persistent noise. Ignores routing inflation —
  /// the gap between this estimate and real routed RTT is one of the two
  /// valley sources.
  [[nodiscard]] double estimate_ms(const topology::GeoPoint& subnet_location,
                                   std::size_t cluster_index,
                                   const net::Prefix& key) const;

  /// Clusters ranked by estimate for this key (mapped subnets only).
  [[nodiscard]] std::vector<std::size_t> ranked_clusters(
      const topology::GeoPoint& subnet_location, const net::Prefix& key) const;

  std::vector<net::Ipv4Addr> replica_set_from(const CdnCluster& cluster,
                                              std::uint64_t rotation) const;

  /// Shared selection body: both overloads reduce to this once a rotation
  /// position is fixed.
  [[nodiscard]] std::vector<net::Ipv4Addr> select_with_rotation(
      const net::Prefix& ecs_subnet, std::uint64_t rotation) const;

  CdnProfile profile_;
  topology::World* world_;
  std::size_t as_index_;
  std::vector<CdnCluster> clusters_;
  std::vector<net::Ipv4Addr> vips_;
  std::vector<std::size_t> by_weight_;  ///< cluster indices, heaviest first
  std::uint64_t query_counter_ = 0;
};

}  // namespace drongo::cdn
