// Content-provider sites fronted by CDNs via CNAME (paper §3.1.1).
//
// The paper scrapes URLs from Alexa-ranked sites and "when applicable,
// resolved CNAME domains to their respective CDN domains". This module is
// that layer: site hostnames whose DNS answers are CNAMEs into a CDN zone,
// served by a site authoritative, chased by the public resolver.
#pragma once

#include <vector>

#include "dns/server.hpp"
#include "net/rng.hpp"

namespace drongo::cdn {

/// One CDN-fronted web property.
struct Site {
  dns::DnsName host;        ///< e.g. www.shop7.sim
  dns::DnsName zone;        ///< e.g. shop7.sim
  dns::DnsName cdn_target;  ///< e.g. img.googlecdn.sim
};

/// Authoritative server for many small site zones: answers the site host
/// with a CNAME into the CDN, NXDOMAIN for other names in its zones, and
/// REFUSED outside them.
class SiteAuthoritative : public dns::DnsServer {
 public:
  void add_site(Site site);

  [[nodiscard]] const std::vector<Site>& sites() const { return sites_; }

  dns::Message handle(const dns::Message& query, net::Ipv4Addr source) override;

 private:
  std::vector<Site> sites_;
};

/// Builds `count` sites named shop<i>.sim, each CNAMEd to a CDN content
/// name drawn round-robin (deterministically shuffled) from
/// `cdn_content_names` (one inner vector per provider).
std::vector<Site> make_sites(int count,
                             const std::vector<std::vector<dns::DnsName>>& cdn_content_names,
                             net::Rng& rng);

}  // namespace drongo::cdn
