// Reverse-DNS authoritative: serves PTR records for the simulated Internet.
#pragma once

#include "dns/server.hpp"
#include "topology/world.hpp"

namespace drongo::cdn {

/// Authoritative for in-addr.arpa, answering PTR queries from the world's
/// address registry (router and host names). Traceroute-style tooling looks
/// hop names up here — through the real DNS path — instead of peeking at
/// the simulator.
class ReverseDnsAuthoritative : public dns::DnsServer {
 public:
  /// `world` is borrowed and must outlive the server.
  explicit ReverseDnsAuthoritative(const topology::World* world);

  dns::Message handle(const dns::Message& query, net::Ipv4Addr source) override;

 private:
  const topology::World* world_;
};

}  // namespace drongo::cdn
