#include "cdn/profile.hpp"

namespace drongo::cdn {

namespace {
/// Metro indices (see topology::world_metros()).
constexpr int kMumbai = 18;
constexpr int kSingapore = 19;
constexpr int kHongKong = 20;
constexpr int kTokyo = 21;
constexpr int kSeoul = 22;
constexpr int kIstanbul = 16;
constexpr int kFrankfurt = 10;
constexpr int kMadrid = 13;
}  // namespace

CdnProfile google_like() {
  CdnProfile p;
  p.name = "Google";
  p.zone = "googlecdn.sim";
  p.cluster_count = 42;
  p.replicas_per_cluster = 5;
  p.replica_set_size = 4;
  p.mapping_granularity = 24;
  p.mapping_noise_sigma = 0.15;
  p.routing_awareness = 0.85;
  p.mapping_error_rate = 0.05;
  p.mapped_fraction = 0.85;
  p.mapped_fraction_eyeball = 0.99;
  p.lb_spill_prob = 0.06;
  p.seed = 101;
  return p;
}

CdnProfile cloudfront_like() {
  CdnProfile p;
  p.name = "CloudFront";
  p.zone = "cloudfront.sim";
  p.cluster_count = 16;
  p.replicas_per_cluster = 4;
  p.replica_set_size = 3;
  p.mapping_granularity = 24;
  p.mapping_noise_sigma = 0.08;
  p.routing_awareness = 0.92;
  p.mapping_error_rate = 0.02;
  p.mapped_fraction = 0.92;
  p.mapped_fraction_eyeball = 0.995;
  p.lb_spill_prob = 0.03;
  p.seed = 102;
  return p;
}

CdnProfile alibaba_like() {
  CdnProfile p;
  p.name = "Alibaba";
  p.zone = "alicdn.sim";
  p.cluster_count = 26;
  p.replicas_per_cluster = 3;
  p.replica_set_size = 2;
  p.metro_bias = {{kMumbai, 3.0}, {kSingapore, 5.0}, {kHongKong, 8.0},
                  {kTokyo, 4.0}, {kSeoul, 4.0}};
  p.mapping_granularity = 24;
  p.mapping_noise_sigma = 0.6;
  p.routing_awareness = 0.3;
  p.mapping_error_rate = 0.16;
  p.mapped_fraction = 0.6;
  p.mapped_fraction_eyeball = 0.75;
  p.lb_spill_prob = 0.10;
  p.seed = 103;
  return p;
}

CdnProfile cdnetworks_like() {
  CdnProfile p;
  p.name = "CDNetworks";
  p.zone = "cdnetworks.sim";
  p.cluster_count = 24;
  p.replicas_per_cluster = 3;
  p.replica_set_size = 2;
  p.anycast = true;
  p.anycast_vips = 6;
  p.mapping_granularity = 20;
  p.mapping_noise_sigma = 0.5;
  p.routing_awareness = 0.4;
  p.mapping_error_rate = 0.10;
  p.mapped_fraction = 0.7;
  p.mapped_fraction_eyeball = 0.9;
  p.lb_spill_prob = 0.08;
  p.seed = 104;
  return p;
}

CdnProfile chinanetcenter_like() {
  CdnProfile p;
  p.name = "ChinaNetCtr";
  p.zone = "chinanetctr.sim";
  p.cluster_count = 22;
  p.replicas_per_cluster = 3;
  p.replica_set_size = 2;
  p.metro_bias = {{kMumbai, 2.0}, {kSingapore, 6.0}, {kHongKong, 9.0},
                  {kTokyo, 5.0}, {kSeoul, 5.0}};
  p.mapping_granularity = 24;
  p.mapping_noise_sigma = 0.6;
  p.routing_awareness = 0.35;
  p.mapping_error_rate = 0.12;
  p.mapped_fraction = 0.55;
  p.mapped_fraction_eyeball = 0.78;
  p.lb_spill_prob = 0.12;
  p.seed = 105;
  return p;
}

CdnProfile cubecdn_like() {
  CdnProfile p;
  p.name = "CubeCDN";
  p.zone = "cubecdn.sim";
  p.cluster_count = 7;
  p.replicas_per_cluster = 2;
  p.replica_set_size = 2;
  p.metro_bias = {{kIstanbul, 12.0}, {kFrankfurt, 2.0}, {kMadrid, 1.5}};
  p.mapping_granularity = 24;
  p.mapping_noise_sigma = 0.55;
  p.routing_awareness = 0.3;
  p.mapping_error_rate = 0.15;
  p.mapped_fraction = 0.5;
  p.mapped_fraction_eyeball = 0.75;
  p.lb_spill_prob = 0.08;
  p.seed = 106;
  return p;
}

CdnProfile akamai_like_restricted() {
  CdnProfile p;
  p.name = "Akamai";
  p.zone = "akamaicdn.sim";
  p.cluster_count = 40;
  p.replicas_per_cluster = 4;
  p.replica_set_size = 2;
  p.mapping_granularity = 24;
  p.mapping_noise_sigma = 0.3;
  p.routing_awareness = 0.7;
  p.mapping_error_rate = 0.05;
  p.mapped_fraction = 0.9;
  p.ecs_restricted = true;
  p.seed = 107;
  return p;
}

std::vector<CdnProfile> paper_providers() {
  return {google_like(),     cloudfront_like(),     alibaba_like(),
          cdnetworks_like(), chinanetcenter_like(), cubecdn_like()};
}

}  // namespace drongo::cdn
