// CoDel-style admission control for the serving path.
//
// When the fault fabric throttles upstreams, a resolver that keeps
// accepting queries degrades the worst way: every queued query waits
// behind every earlier one, sojourn time grows without bound, and by the
// time an answer comes out nobody wants it. CoDel's insight (Nichols &
// Jacobson, "Controlling Queue Delay") is to watch *sojourn time* — how
// long work sits before service — and, once it has stayed above a small
// target for a full interval, shed work at an increasing rate
// (interval / sqrt(drop_count)) until the queue drains back under target.
//
// The simulation has no real queue (handlers run synchronously), so the
// controller tracks a virtual one: each admitted query books
// `service_cost_ms` of simulated work onto a `busy_until` horizon, and a
// query's sojourn is how far ahead of its arrival that horizon stands.
// That fluid model reproduces exactly the overload dynamics the drop law
// exists to control, on the simulated clock, deterministically. One
// server-side adaptation rides on top: while in the dropping state, any
// arrival that would wait more than 2x target is shed outright
// ("sloughing") — an open-loop query stream has no congestion-controlled
// sender to back off after a drop, so the sqrt schedule alone cannot bound
// sojourn under sustained overload.
#pragma once

#include <cstdint>
#include <mutex>

#include "obs/metrics.hpp"
#include "obs/schema.hpp"

namespace drongo::cdn {

/// Knobs for the virtual-queue CoDel admission controller.
struct CodelConfig {
  /// Master switch; disabled means every query is admitted untouched.
  bool enabled = false;
  /// Acceptable standing sojourn (CoDel's `target`), simulated ms.
  double target_ms = 5.0;
  /// How long sojourn must stay above target before dropping starts, and
  /// the base of the drop-rate schedule (CoDel's `interval`), simulated ms.
  double interval_ms = 100.0;
  /// Simulated work each admitted query books onto the virtual queue.
  double service_cost_ms = 2.0;
};

/// What the admission controller did, as schema-generated counters.
struct CodelStats {
  DRONGO_OBS_CODEL_COUNTERS(DRONGO_OBS_DECLARE_FIELD)
};

/// The controller. `offer(now_ms)` decides one arrival's fate.
///
/// Thread-safety: offer() serializes on an internal mutex. Outcomes are
/// deterministic for a given nondecreasing arrival sequence — which a
/// single driving thread (the bench, a serial campaign) produces; under
/// concurrent drivers the arrival order, and therefore which individual
/// queries shed, follows the interleaving (totals still obey the drop law).
class CodelQueue {
 public:
  explicit CodelQueue(CodelConfig config);

  /// One arrival at simulated time `now_ms`. Returns true when admitted
  /// (its service cost is booked) and false when shed. Always true when
  /// the controller is disabled.
  bool offer(double now_ms);

  [[nodiscard]] const CodelConfig& config() const { return config_; }
  [[nodiscard]] CodelStats stats() const;
  /// Largest sojourn any arrival observed, simulated ms.
  [[nodiscard]] double max_sojourn_ms() const;
  /// The sojourn the next arrival at `now_ms` would observe.
  [[nodiscard]] double sojourn_at(double now_ms) const;

  /// Attaches an obs registry (borrowed; nullptr detaches): every offer is
  /// mirrored as `cdn.serving.codel.*` and sojourns feed the
  /// `cdn.serving.codel.sojourn_ms` histogram (simulated ms, so the
  /// telemetry is as deterministic as the arrival sequence).
  void set_registry(obs::Registry* registry) {
    const std::lock_guard<std::mutex> lock(mutex_);
    registry_ = registry;
  }

 private:
  obs::Registry* registry_ = nullptr;  // borrowed; optional telemetry mirror
  CodelConfig config_;
  mutable std::mutex mutex_;
  double busy_until_ms_ = 0.0;   ///< virtual-queue horizon
  double first_above_ms_ = 0.0;  ///< when sojourn first crossed target (0 = below)
  bool above_target_ = false;
  bool dropping_ = false;
  std::uint64_t drop_count_ = 0;
  double drop_next_ms_ = 0.0;
  double max_sojourn_ms_ = 0.0;
  CodelStats stats_;
};

}  // namespace drongo::cdn
