#include "cdn/sites.hpp"

#include "net/error.hpp"

namespace drongo::cdn {

void SiteAuthoritative::add_site(Site site) {
  sites_.push_back(std::move(site));
}

dns::Message SiteAuthoritative::handle(const dns::Message& query, net::Ipv4Addr /*source*/) {
  if (query.questions.size() != 1) {
    return dns::Message::make_response(query, dns::Rcode::kFormErr);
  }
  const dns::Question& q = query.questions[0];
  const Site* in_zone = nullptr;
  for (const auto& site : sites_) {
    if (q.name.is_subdomain_of(site.zone)) in_zone = &site;
    if (q.name == site.host) {
      // Site content is not ECS-tailored at this level — scope 0 means the
      // CNAME may be cached for everyone; tailoring happens at the CDN.
      dns::Message response = dns::Message::make_response(query, dns::Rcode::kNoError,
                                                          /*ecs_scope=*/0);
      response.answers.push_back(
          dns::ResourceRecord::cname(q.name, site.cdn_target, 300));
      return response;
    }
  }
  return dns::Message::make_response(
      query, in_zone != nullptr ? dns::Rcode::kNxDomain : dns::Rcode::kRefused);
}

std::vector<Site> make_sites(int count,
                             const std::vector<std::vector<dns::DnsName>>& cdn_content_names,
                             net::Rng& rng) {
  if (cdn_content_names.empty()) {
    throw net::InvalidArgument("make_sites needs at least one provider");
  }
  std::vector<Site> sites;
  sites.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const auto& provider_names =
        cdn_content_names[rng.index(cdn_content_names.size())];
    if (provider_names.empty()) {
      throw net::InvalidArgument("provider without content names");
    }
    Site site;
    site.zone = dns::DnsName::must_parse("shop" + std::to_string(i) + ".sim");
    site.host = dns::DnsName::must_parse("www.shop" + std::to_string(i) + ".sim");
    site.cdn_target = provider_names[rng.index(provider_names.size())];
    sites.push_back(std::move(site));
  }
  return sites;
}

}  // namespace drongo::cdn
