// Plain-text rendering of tables and curves for the bench binaries.
#pragma once

#include <string>
#include <vector>

#include "measure/stats.hpp"

namespace drongo::analysis {

/// Fixed-precision number formatting ("12.34").
std::string fmt(double value, int precision = 2);

/// Renders an aligned text table with a header row.
std::string render_table(const std::string& title,
                         const std::vector<std::string>& headers,
                         const std::vector<std::vector<std::string>>& rows);

/// Renders an (x, y) series as two aligned columns.
std::string render_series(const std::string& title, const std::string& x_label,
                          const std::string& y_label,
                          const std::vector<std::pair<double, double>>& points,
                          int precision = 3);

/// Renders a horizontal ASCII box-and-whisker on a [lo, hi] axis.
std::string render_box(const std::string& label, const measure::BoxStats& box,
                       double axis_low, double axis_high, int width = 60);

}  // namespace drongo::analysis
