// The §5 Drongo evaluation: train/test campaigns and parameter sweeps
// behind Figures 7, 8, 9, 10, 11 and the headline numbers.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/decision.hpp"
#include "measure/stats.hpp"
#include "measure/testbed.hpp"
#include "measure/trial.hpp"

namespace drongo::analysis {

/// Campaign shape (paper: 10 trials per client-provider pair over a month;
/// trials 0-4 train, 5-9 test).
struct EvaluationConfig {
  int training_trials = 5;
  int test_trials = 5;
  double spacing_hours = 72.0;  ///< a month / 10 trials
  core::RatioConvention convention = core::RatioConvention::deployment();
  /// Worker threads for the measurement campaign (0 = hardware
  /// concurrency, 1 = serial). Results are identical for any value.
  int threads = 1;
};

/// One Drongo decision applied to one test trial.
struct EvalSample {
  std::string provider;
  std::size_t client_index = 0;
  bool assimilated = false;
  /// Achieved latency ratio for the query: first-HR(chosen subnet) over
  /// first-CR when assimilated; exactly 1.0 otherwise (the client got what
  /// it would have gotten anyway).
  double ratio = 1.0;
};

/// Collects a RIPE-style campaign once, then evaluates Drongo's decision
/// rule over it for any (vf, vt) without re-measuring — the sweep in §5.1
/// is hundreds of parameter points over one fixed dataset.
class Evaluation {
 public:
  /// Runs the campaign: (training + test) trials for every client-provider
  /// pair, domain pinned per pair. The testbed is borrowed.
  Evaluation(measure::Testbed* testbed, std::uint64_t seed,
             EvaluationConfig config = {});

  [[nodiscard]] const EvaluationConfig& config() const { return config_; }

  /// Applies Drongo with the given parameters to every test trial.
  [[nodiscard]] std::vector<EvalSample> evaluate(double min_valley_frequency,
                                                 double valley_threshold) const;

  // ---- Figure-level summaries --------------------------------------------

  /// Mean ratio over ALL samples (Figure 7's y value at one (vf, vt)).
  [[nodiscard]] double overall_mean_ratio(double vf, double vt) const;

  /// Mean ratio over assimilated samples only (Figure 8); 1.0 when none.
  [[nodiscard]] double assimilated_mean_ratio(double vf, double vt) const;

  /// Fraction of clients with at least one assimilated query (Figure 9).
  [[nodiscard]] double fraction_clients_affected(double vf, double vt) const;

  /// Per-provider mean ratio over all samples (Figure 10 at one (vf, vt)).
  [[nodiscard]] std::map<std::string, double> per_provider_mean_ratio(double vf,
                                                                      double vt) const;

  /// Per-provider ratio distribution over assimilated samples (Figure 11).
  [[nodiscard]] std::map<std::string, measure::BoxStats> per_provider_assimilated_box(
      double vf, double vt) const;

  /// Providers in campaign order.
  [[nodiscard]] const std::vector<std::string>& providers() const { return providers_; }

  /// Number of clients in the campaign.
  [[nodiscard]] std::size_t client_count() const { return client_count_; }

  /// Access to the raw campaign records of one client-provider pair
  /// (training first, then test).
  [[nodiscard]] const std::vector<measure::TrialRecord>& records(
      std::size_t client_index, std::size_t provider_index) const;

 private:
  EvaluationConfig config_;
  std::size_t client_count_ = 0;
  std::vector<std::string> providers_;
  /// [client][provider] -> trials in time order.
  std::vector<std::vector<std::vector<measure::TrialRecord>>> campaign_;
};

/// Per-client view of an evaluation: who actually benefits?
struct ClientOutcome {
  std::size_t client_index = 0;
  double mean_ratio = 1.0;        ///< across all the client's test queries
  std::size_t assimilated = 0;    ///< queries Drongo changed
  std::size_t queries = 0;
};

/// Aggregates evaluate() samples per client; clients sorted by mean ratio
/// (biggest winners first). The paper's "69.93% of clients affected" and
/// "affected requests improve 24.89% median" are slices of this view.
std::vector<ClientOutcome> per_client_outcomes(const std::vector<EvalSample>& samples,
                                               std::size_t client_count);

/// Grid sweep over (vf, vt) returning Figure-7/8/9 curves.
struct SweepPoint {
  double vf = 0.0;
  double vt = 0.0;
  double overall_ratio = 1.0;
  double assimilated_ratio = 1.0;
  double clients_affected = 0.0;
};
std::vector<SweepPoint> parameter_sweep(const Evaluation& evaluation,
                                        const std::vector<double>& vf_values,
                                        const std::vector<double>& vt_values);

/// The best (minimum overall ratio) point of a sweep.
SweepPoint best_point(const std::vector<SweepPoint>& sweep);

/// Per-provider optimal vf (Figure 10): for each provider, the vf whose
/// best-over-vt mean ratio is lowest; returns (vf*, vt*, ratio curve vs vt).
struct ProviderOptimum {
  std::string provider;
  double best_vf = 1.0;
  double best_vt = 0.95;
  double best_ratio = 1.0;
  /// Mean ratio vs vt at best_vf (the provider's Figure-10 curve).
  std::vector<std::pair<double, double>> curve;
};
std::vector<ProviderOptimum> per_provider_optimum(const Evaluation& evaluation,
                                                  const std::vector<double>& vf_values,
                                                  const std::vector<double>& vt_values);

}  // namespace drongo::analysis
