#include "analysis/prevalence.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace drongo::analysis {

namespace {

/// Stable provider ordering: first appearance in the record stream.
std::vector<std::string> provider_order(const std::vector<measure::TrialRecord>& records) {
  std::vector<std::string> order;
  for (const auto& r : records) {
    if (std::find(order.begin(), order.end(), r.provider) == order.end()) {
      order.push_back(r.provider);
    }
  }
  return order;
}

/// The measurement value of one replica under a Figure-4 mode.
double value_of(const measure::ReplicaMeasurement& m, MeasureMode mode) {
  switch (mode) {
    case MeasureMode::kPing: return m.rtt_ms;
    case MeasureMode::kDownloadFirst: return m.download_first_ms;
    case MeasureMode::kDownloadCached: return m.download_cached_ms;
  }
  return m.rtt_ms;
}

/// min CRM under a mode.
double min_cr(const measure::TrialRecord& trial, MeasureMode mode) {
  double best = 1e300;
  for (const auto& m : trial.cr) best = std::min(best, value_of(m, mode));
  return best;
}

/// median HRM under a mode.
double median_hr(const measure::HopRecord& hop, MeasureMode mode) {
  std::vector<double> values;
  values.reserve(hop.hr.size());
  for (const auto& m : hop.hr) values.push_back(value_of(m, mode));
  return measure::median(std::move(values));
}

}  // namespace

std::vector<DivergenceRow> figure2(const std::vector<measure::TrialRecord>& records) {
  struct Acc {
    double usable_hops = 0.0;
    double divergence = 0.0;
    std::size_t routes = 0;
  };
  std::map<std::string, Acc> acc;

  for (const auto& trial : records) {
    std::set<net::Ipv4Addr> client_replicas;
    for (const auto& m : trial.cr) client_replicas.insert(m.replica);
    const auto usable = trial.usable();
    std::size_t divergent = 0;
    for (const auto* hop : usable) {
      const bool has_new = std::any_of(
          hop->hr.begin(), hop->hr.end(), [&](const measure::ReplicaMeasurement& m) {
            return !client_replicas.contains(m.replica);
          });
      if (has_new) ++divergent;
    }
    Acc& a = acc[trial.provider];
    a.usable_hops += static_cast<double>(usable.size());
    if (!usable.empty()) {
      a.divergence += static_cast<double>(divergent) / static_cast<double>(usable.size());
    }
    ++a.routes;
  }

  std::vector<DivergenceRow> rows;
  for (const auto& provider : provider_order(records)) {
    const Acc& a = acc[provider];
    DivergenceRow row;
    row.provider = provider;
    row.routes = a.routes;
    if (a.routes > 0) {
      row.mean_usable_route_length = a.usable_hops / static_cast<double>(a.routes);
      row.mean_divergence = a.divergence / static_cast<double>(a.routes);
    }
    rows.push_back(row);
  }
  return rows;
}

Figure3 figure3(const std::vector<measure::TrialRecord>& records) {
  Figure3 fig;
  std::map<std::string, std::pair<std::size_t, std::size_t>> counts;  // valleys, total
  for (const auto& trial : records) {
    if (trial.cr.empty()) continue;
    const double crm = trial.min_crm();
    for (const auto* hop : trial.usable()) {
      for (const auto& m : hop->hr) {
        fig.points.push_back({trial.provider, crm, m.rtt_ms});
        auto& [valleys, total] = counts[trial.provider];
        ++total;
        if (m.rtt_ms < crm) ++valleys;
      }
    }
  }
  double sum = 0.0;
  for (const auto& provider : provider_order(records)) {
    const auto& [valleys, total] = counts[provider];
    ValleyShare share;
    share.provider = provider;
    share.points = total;
    share.valley_percent =
        total == 0 ? 0.0 : 100.0 * static_cast<double>(valleys) / static_cast<double>(total);
    sum += share.valley_percent;
    fig.shares.push_back(share);
  }
  if (!fig.shares.empty()) {
    fig.average_valley_percent = sum / static_cast<double>(fig.shares.size());
  }
  return fig;
}

std::vector<Table1Row> table1(const std::vector<measure::TrialRecord>& records,
                              double valley_threshold) {
  const core::RatioConvention convention = core::RatioConvention::planetlab();
  struct Acc {
    std::size_t hrm_valleys = 0;      // per-HRM basis (col 2)
    std::size_t hrm_total = 0;
    double route_valley_fraction = 0.0;  // col 3 accumulator
    std::size_t routes_with_usable = 0;
    std::size_t routes_with_valley = 0;  // col 4
    std::size_t routes = 0;
    // col 5: per hop-client pair valley counts.
    std::map<std::pair<std::size_t, net::Prefix>, std::pair<std::size_t, std::size_t>>
        pair_counts;  // (client, subnet) -> (valleys, trials)
  };
  std::map<std::string, Acc> acc;

  for (const auto& trial : records) {
    if (trial.cr.empty()) continue;
    Acc& a = acc[trial.provider];
    ++a.routes;
    const double min_crm = trial.min_crm();
    const auto usable = trial.usable();
    std::size_t hop_valleys = 0;
    for (const auto* hop : usable) {
      for (const auto& m : hop->hr) {
        ++a.hrm_total;
        if (m.rtt_ms < min_crm * valley_threshold) ++a.hrm_valleys;
      }
      const auto ratio = core::latency_ratio(trial, *hop, convention);
      if (!ratio) continue;
      const bool valley = core::is_valley(*ratio, valley_threshold);
      if (valley) ++hop_valleys;
      auto& [v, n] = a.pair_counts[{trial.client_index, hop->subnet}];
      ++n;
      if (valley) ++v;
    }
    if (!usable.empty()) {
      ++a.routes_with_usable;
      a.route_valley_fraction +=
          static_cast<double>(hop_valleys) / static_cast<double>(usable.size());
      if (hop_valleys > 0) ++a.routes_with_valley;
    }
  }

  std::vector<Table1Row> rows;
  for (const auto& provider : provider_order(records)) {
    const Acc& a = acc[provider];
    Table1Row row;
    row.provider = provider;
    if (a.hrm_total > 0) {
      row.pct_valleys_overall =
          100.0 * static_cast<double>(a.hrm_valleys) / static_cast<double>(a.hrm_total);
    }
    if (a.routes_with_usable > 0) {
      row.avg_pct_valleys_per_route =
          100.0 * a.route_valley_fraction / static_cast<double>(a.routes_with_usable);
    }
    if (a.routes > 0) {
      row.pct_routes_with_valley = 100.0 * static_cast<double>(a.routes_with_valley) /
                                   static_cast<double>(a.routes);
    }
    std::size_t persistent = 0;
    for (const auto& [key, vn] : a.pair_counts) {
      const auto& [v, n] = vn;
      if (n > 0 && static_cast<double>(v) / static_cast<double>(n) > 0.5) ++persistent;
    }
    if (!a.pair_counts.empty()) {
      row.pct_pairs_vf_above_half = 100.0 * static_cast<double>(persistent) /
                                    static_cast<double>(a.pair_counts.size());
    }
    rows.push_back(row);
  }
  return rows;
}

std::vector<Figure4Series> figure4(const std::vector<measure::TrialRecord>& records,
                                   MeasureMode mode, double valley_threshold) {
  // (provider, client, subnet) -> (valleys, trials)
  std::map<std::string,
           std::map<std::pair<std::size_t, net::Prefix>, std::pair<std::size_t, std::size_t>>>
      pair_counts;
  for (const auto& trial : records) {
    if (trial.cr.empty()) continue;
    const double crm = min_cr(trial, mode);
    if (crm <= 0.0) continue;  // mode not measured in this dataset
    for (const auto* hop : trial.usable()) {
      if (hop->hr.empty()) continue;
      const double hrm = median_hr(*hop, mode);
      auto& [v, n] = pair_counts[trial.provider][{trial.client_index, hop->subnet}];
      ++n;
      if (hrm / crm < valley_threshold) ++v;
    }
  }

  std::vector<Figure4Series> series;
  for (const auto& provider : provider_order(records)) {
    Figure4Series s;
    s.provider = provider;
    std::vector<double> frequencies;
    std::size_t always = 0;
    for (const auto& [key, vn] : pair_counts[provider]) {
      const auto& [v, n] = vn;
      const double vf = static_cast<double>(v) / static_cast<double>(n);
      frequencies.push_back(vf);
      if (v == n) ++always;
    }
    if (!frequencies.empty()) {
      s.fraction_always_valley =
          static_cast<double>(always) / static_cast<double>(frequencies.size());
    }
    s.cdf = measure::cdf(std::move(frequencies));
    series.push_back(std::move(s));
  }
  return series;
}

std::vector<Figure6Row> figure6(const std::vector<measure::TrialRecord>& records,
                                double valley_threshold) {
  const core::RatioConvention convention = core::RatioConvention::planetlab();
  std::map<std::string, std::vector<double>> ratios;
  for (const auto& trial : records) {
    for (const auto* hop : trial.usable()) {
      const auto ratio = core::latency_ratio(trial, *hop, convention);
      if (ratio && core::is_valley(*ratio, valley_threshold)) {
        ratios[trial.provider].push_back(*ratio);
      }
    }
  }
  std::vector<Figure6Row> rows;
  for (const auto& provider : provider_order(records)) {
    rows.push_back({provider, measure::box_stats(ratios[provider])});
  }
  return rows;
}

}  // namespace drongo::analysis
