#include "analysis/evaluation.hpp"

#include <algorithm>
#include <set>

#include "measure/campaign.hpp"
#include "net/error.hpp"

namespace drongo::analysis {

Evaluation::Evaluation(measure::Testbed* testbed, std::uint64_t seed,
                       EvaluationConfig config)
    : config_(config) {
  if (testbed == nullptr) throw net::InvalidArgument("null Testbed");
  measure::TrialRunner runner(testbed, seed);
  client_count_ = testbed->clients().size();
  const std::size_t providers = testbed->provider_count();
  for (std::size_t p = 0; p < providers; ++p) {
    providers_.push_back(testbed->profile(p).name);
  }

  // Build the campaign as an explicit task list and execute it through the
  // parallel runner: trial t of pair (c, p) is the same derived-stream
  // trial regardless of thread count, so the scatter below fills
  // campaign_[c][p] with identical records at any parallelism.
  const int total = config_.training_trials + config_.test_trials;
  std::vector<measure::CampaignTask> tasks;
  tasks.reserve(client_count_ * providers * static_cast<std::size_t>(total));
  for (std::size_t c = 0; c < client_count_; ++c) {
    for (std::size_t p = 0; p < providers; ++p) {
      for (int t = 0; t < total; ++t) {
        // Domain pinned per (client, provider) so windows accumulate.
        tasks.push_back({c, p, static_cast<std::uint64_t>(t),
                         t * config_.spacing_hours,
                         /*label_index=*/c % 3});
      }
    }
  }
  measure::ParallelCampaignRunner parallel(&runner, {.threads = config_.threads});
  auto records = parallel.run(tasks);

  campaign_.resize(client_count_);
  for (auto& per_client : campaign_) per_client.resize(providers);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    campaign_[tasks[i].client_index][tasks[i].provider_index].push_back(
        std::move(records[i]));
  }
}

const std::vector<measure::TrialRecord>& Evaluation::records(
    std::size_t client_index, std::size_t provider_index) const {
  return campaign_.at(client_index).at(provider_index);
}

std::vector<EvalSample> Evaluation::evaluate(double min_valley_frequency,
                                             double valley_threshold) const {
  std::vector<EvalSample> samples;
  samples.reserve(client_count_ * providers_.size() *
                  static_cast<std::size_t>(config_.test_trials));

  for (std::size_t c = 0; c < client_count_; ++c) {
    for (std::size_t p = 0; p < providers_.size(); ++p) {
      const auto& trials = campaign_[c][p];
      core::DrongoParams params;
      params.valley_threshold = valley_threshold;
      params.min_valley_frequency = min_valley_frequency;
      params.window_size = static_cast<std::size_t>(config_.training_trials);
      params.convention = config_.convention;
      // Deterministic tie-breaking per (client, provider) so sweeps are
      // reproducible point to point.
      core::DecisionEngine engine(params, (c + 1) * 1000003ULL + p);
      for (int t = 0; t < config_.training_trials; ++t) {
        engine.observe(trials[static_cast<std::size_t>(t)]);
      }

      for (std::size_t t = static_cast<std::size_t>(config_.training_trials);
           t < trials.size(); ++t) {
        const auto& trial = trials[t];
        EvalSample sample;
        sample.provider = providers_[p];
        sample.client_index = c;
        const auto chosen = engine.choose(trial.domain);
        if (chosen) {
          // Drongo would issue the test query with this subnet; the test
          // trial holds the HR-set that subnet received at test time. If
          // the subnet didn't appear in the test trial's routes (path
          // change), the assimilated answer is unknowable from the record
          // and the query is counted as unaffected.
          const measure::HopRecord* hop = nullptr;
          for (const auto& h : trial.hops) {
            if (h.subnet == *chosen) {
              hop = &h;
              break;
            }
          }
          if (hop != nullptr && !hop->hr.empty() && !trial.cr.empty()) {
            const auto ratio = core::latency_ratio(trial, *hop, config_.convention);
            if (ratio) {
              sample.assimilated = true;
              sample.ratio = *ratio;
            }
          }
        }
        samples.push_back(sample);
      }
    }
  }
  return samples;
}

double Evaluation::overall_mean_ratio(double vf, double vt) const {
  const auto samples = evaluate(vf, vt);
  if (samples.empty()) return 1.0;
  double sum = 0.0;
  for (const auto& s : samples) sum += s.ratio;
  return sum / static_cast<double>(samples.size());
}

double Evaluation::assimilated_mean_ratio(double vf, double vt) const {
  const auto samples = evaluate(vf, vt);
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& s : samples) {
    if (s.assimilated) {
      sum += s.ratio;
      ++n;
    }
  }
  return n == 0 ? 1.0 : sum / static_cast<double>(n);
}

double Evaluation::fraction_clients_affected(double vf, double vt) const {
  const auto samples = evaluate(vf, vt);
  std::set<std::size_t> affected;
  for (const auto& s : samples) {
    if (s.assimilated) affected.insert(s.client_index);
  }
  return client_count_ == 0
             ? 0.0
             : static_cast<double>(affected.size()) / static_cast<double>(client_count_);
}

std::map<std::string, double> Evaluation::per_provider_mean_ratio(double vf,
                                                                  double vt) const {
  const auto samples = evaluate(vf, vt);
  std::map<std::string, std::pair<double, std::size_t>> acc;
  for (const auto& s : samples) {
    auto& [sum, n] = acc[s.provider];
    sum += s.ratio;
    ++n;
  }
  std::map<std::string, double> out;
  for (const auto& [provider, sum_n] : acc) {
    out[provider] = sum_n.first / static_cast<double>(sum_n.second);
  }
  return out;
}

std::map<std::string, measure::BoxStats> Evaluation::per_provider_assimilated_box(
    double vf, double vt) const {
  const auto samples = evaluate(vf, vt);
  std::map<std::string, std::vector<double>> ratios;
  for (const auto& s : samples) {
    if (s.assimilated) ratios[s.provider].push_back(s.ratio);
  }
  std::map<std::string, measure::BoxStats> out;
  for (auto& [provider, values] : ratios) {
    out[provider] = measure::box_stats(std::move(values));
  }
  return out;
}

std::vector<ClientOutcome> per_client_outcomes(const std::vector<EvalSample>& samples,
                                               std::size_t client_count) {
  std::vector<ClientOutcome> outcomes(client_count);
  for (std::size_t c = 0; c < client_count; ++c) outcomes[c].client_index = c;
  std::vector<double> sums(client_count, 0.0);
  for (const auto& sample : samples) {
    if (sample.client_index >= client_count) continue;
    ClientOutcome& outcome = outcomes[sample.client_index];
    sums[sample.client_index] += sample.ratio;
    ++outcome.queries;
    if (sample.assimilated) ++outcome.assimilated;
  }
  for (std::size_t c = 0; c < client_count; ++c) {
    if (outcomes[c].queries > 0) {
      outcomes[c].mean_ratio = sums[c] / static_cast<double>(outcomes[c].queries);
    }
  }
  std::sort(outcomes.begin(), outcomes.end(),
            [](const ClientOutcome& a, const ClientOutcome& b) {
              return a.mean_ratio < b.mean_ratio;
            });
  return outcomes;
}

std::vector<SweepPoint> parameter_sweep(const Evaluation& evaluation,
                                        const std::vector<double>& vf_values,
                                        const std::vector<double>& vt_values) {
  std::vector<SweepPoint> sweep;
  sweep.reserve(vf_values.size() * vt_values.size());
  for (double vf : vf_values) {
    for (double vt : vt_values) {
      const auto samples = evaluation.evaluate(vf, vt);
      SweepPoint point;
      point.vf = vf;
      point.vt = vt;
      double sum = 0.0;
      double assim_sum = 0.0;
      std::size_t assim_n = 0;
      std::set<std::size_t> affected;
      for (const auto& s : samples) {
        sum += s.ratio;
        if (s.assimilated) {
          assim_sum += s.ratio;
          ++assim_n;
          affected.insert(s.client_index);
        }
      }
      point.overall_ratio = samples.empty() ? 1.0 : sum / static_cast<double>(samples.size());
      point.assimilated_ratio = assim_n == 0 ? 1.0 : assim_sum / static_cast<double>(assim_n);
      point.clients_affected =
          evaluation.client_count() == 0
              ? 0.0
              : static_cast<double>(affected.size()) /
                    static_cast<double>(evaluation.client_count());
      sweep.push_back(point);
    }
  }
  return sweep;
}

SweepPoint best_point(const std::vector<SweepPoint>& sweep) {
  if (sweep.empty()) throw net::InvalidArgument("empty sweep");
  return *std::min_element(sweep.begin(), sweep.end(),
                           [](const SweepPoint& a, const SweepPoint& b) {
                             return a.overall_ratio < b.overall_ratio;
                           });
}

std::vector<ProviderOptimum> per_provider_optimum(const Evaluation& evaluation,
                                                  const std::vector<double>& vf_values,
                                                  const std::vector<double>& vt_values) {
  // provider -> vf -> (vt -> mean ratio)
  std::map<std::string, std::map<double, std::vector<std::pair<double, double>>>> curves;
  for (double vf : vf_values) {
    for (double vt : vt_values) {
      const auto per_provider = evaluation.per_provider_mean_ratio(vf, vt);
      for (const auto& [provider, ratio] : per_provider) {
        curves[provider][vf].emplace_back(vt, ratio);
      }
    }
  }
  std::vector<ProviderOptimum> out;
  for (const auto& provider : evaluation.providers()) {
    ProviderOptimum opt;
    opt.provider = provider;
    double best = 1e300;
    for (const auto& [vf, curve] : curves[provider]) {
      for (const auto& [vt, ratio] : curve) {
        if (ratio < best) {
          best = ratio;
          opt.best_vf = vf;
          opt.best_vt = vt;
          opt.best_ratio = ratio;
        }
      }
    }
    opt.curve = curves[provider][opt.best_vf];
    out.push_back(std::move(opt));
  }
  return out;
}

}  // namespace drongo::analysis
