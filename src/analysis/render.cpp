#include "analysis/render.hpp"

#include <algorithm>
#include <cstdio>

namespace drongo::analysis {

std::string fmt(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string render_table(const std::string& title,
                         const std::vector<std::string>& headers,
                         const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(headers.size());
  for (std::size_t i = 0; i < headers.size(); ++i) widths[i] = headers[i].size();
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      line += cell;
      line.append(widths[i] - cell.size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string out;
  if (!title.empty()) out += "== " + title + " ==\n";
  out += render_row(headers);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out += std::string(total > 2 ? total - 2 : total, '-') + "\n";
  for (const auto& row : rows) out += render_row(row);
  return out;
}

std::string render_series(const std::string& title, const std::string& x_label,
                          const std::string& y_label,
                          const std::vector<std::pair<double, double>>& points,
                          int precision) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(points.size());
  for (const auto& [x, y] : points) {
    rows.push_back({fmt(x, precision), fmt(y, precision)});
  }
  return render_table(title, {x_label, y_label}, rows);
}

std::string render_box(const std::string& label, const measure::BoxStats& box,
                       double axis_low, double axis_high, int width) {
  std::string axis(static_cast<std::size_t>(width), ' ');
  auto col = [&](double v) {
    const double t = (v - axis_low) / (axis_high - axis_low);
    const int c = static_cast<int>(t * (width - 1));
    return std::clamp(c, 0, width - 1);
  };
  const int wl = col(box.whisker_low);
  const int p25 = col(box.p25);
  const int med = col(box.median);
  const int p75 = col(box.p75);
  const int wh = col(box.whisker_high);
  for (int i = wl; i <= wh; ++i) axis[static_cast<std::size_t>(i)] = '-';
  for (int i = p25; i <= p75; ++i) axis[static_cast<std::size_t>(i)] = '=';
  axis[static_cast<std::size_t>(wl)] = '|';
  axis[static_cast<std::size_t>(wh)] = '|';
  axis[static_cast<std::size_t>(med)] = 'M';
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%-14s", label.c_str());
  return std::string(buffer) + "[" + axis + "]  med=" + fmt(box.median) + " iqr=[" +
         fmt(box.p25) + "," + fmt(box.p75) + "] n=" + std::to_string(box.count) + "\n";
}

}  // namespace drongo::analysis
