// Valley prevalence analyses: Figure 2, Figure 3, Table 1, Figure 6 (§3).
#pragma once

#include <string>
#include <vector>

#include "core/valley.hpp"
#include "measure/stats.hpp"
#include "measure/trial.hpp"

namespace drongo::analysis {

/// Figure 2: mean divergence and mean usable route length per CDN.
/// Divergence = fraction of usable hops recommended at least one replica
/// not recommended to the client in the same trial.
struct DivergenceRow {
  std::string provider;
  double mean_usable_route_length = 0.0;
  double mean_divergence = 0.0;
  std::size_t routes = 0;
};
std::vector<DivergenceRow> figure2(const std::vector<measure::TrialRecord>& records);

/// Figure 3: every HRM against the minimum CRM of its trial. Points below
/// the diagonal are valley occurrences; the share of such points is the
/// "% Valleys Overall" column of Table 1.
struct ScatterPoint {
  std::string provider;
  double min_crm_ms = 0.0;
  double hrm_ms = 0.0;
};
struct ValleyShare {
  std::string provider;
  double valley_percent = 0.0;
  std::size_t points = 0;
};
struct Figure3 {
  std::vector<ScatterPoint> points;
  std::vector<ValleyShare> shares;
  double average_valley_percent = 0.0;
};
Figure3 figure3(const std::vector<measure::TrialRecord>& records);

/// Table 1, per provider. Columns 3-5 use the paper's conservative
/// convention: minimum CRM of the trial, MEDIAN HRM per hop.
struct Table1Row {
  std::string provider;
  double pct_valleys_overall = 0.0;        ///< per-HRM basis (Fig. 3)
  double avg_pct_valleys_per_route = 0.0;  ///< among usable hops of a route
  double pct_routes_with_valley = 0.0;
  double pct_pairs_vf_above_half = 0.0;    ///< hop-client pairs, vf > 0.5
};
std::vector<Table1Row> table1(const std::vector<measure::TrialRecord>& records,
                              double valley_threshold = 1.0);

/// Figure 4: CDF over hop-client pairs of valley frequency, under one of
/// the three subnet-response measurements.
enum class MeasureMode : std::uint8_t {
  kPing,            ///< Fig. 4a: 3-ping average
  kDownloadFirst,   ///< Fig. 4b: first-attempt total download time
  kDownloadCached,  ///< Fig. 4c: repeat (cache-primed) download time
};
struct Figure4Series {
  std::string provider;
  std::vector<measure::CdfPoint> cdf;  ///< CDF of per-pair valley frequency
  double fraction_always_valley = 0.0; ///< pairs with vf == 1.0
};
std::vector<Figure4Series> figure4(const std::vector<measure::TrialRecord>& records,
                                   MeasureMode mode, double valley_threshold = 1.0);

/// Figure 6: distribution (box stats) of the lower-bound latency ratio over
/// all valley occurrences, per provider.
struct Figure6Row {
  std::string provider;
  measure::BoxStats box;
};
std::vector<Figure6Row> figure6(const std::vector<measure::TrialRecord>& records,
                                double valley_threshold = 1.0);

}  // namespace drongo::analysis
