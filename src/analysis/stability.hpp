// Valley predictability over time: Figure 5 (§3.2.2).
#pragma once

#include <string>
#include <vector>

#include "core/valley.hpp"
#include "measure/trial.hpp"

namespace drongo::analysis {

/// One binned point of a Figure-5 curve.
struct StabilityPoint {
  double distance_hours = 0.0;          ///< bin centre
  double mean_ratio_difference = 0.0;   ///< mean |median ratio(w1) - median ratio(w2)|
  std::size_t samples = 0;
};

/// One curve: a window size, its drift-vs-distance points.
struct StabilitySeries {
  int window_size = 1;
  std::vector<StabilityPoint> points;
};

struct StabilityConfig {
  std::vector<int> window_sizes = {1, 5, 10, 15};
  /// Restrict to hop-client pairs with at least one valley across all
  /// trials (Figure 5b). False reproduces Figure 5a.
  bool valley_pairs_only = false;
  double valley_threshold = 1.0;
  double bin_hours = 4.0;
  core::RatioConvention convention = core::RatioConvention::planetlab();
};

/// Computes the Figure-5 analysis: for every hop-client pair, slide windows
/// of each size over its trial-ordered latency ratios, take each window's
/// MEDIAN ratio, and compare every pair of windows; the |difference| is
/// plotted against the time distance between window centres, averaged in
/// bins. A flat curve = past windows predict future ones.
std::vector<StabilitySeries> figure5(const std::vector<measure::TrialRecord>& records,
                                     const StabilityConfig& config = {});

}  // namespace drongo::analysis
