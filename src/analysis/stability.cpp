#include "analysis/stability.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "measure/stats.hpp"

namespace drongo::analysis {

namespace {

/// The trial-ordered ratio series of one hop-client pair.
struct PairSeries {
  std::vector<double> times_hours;
  std::vector<double> ratios;
  bool has_valley = false;
};

using PairKey = std::tuple<std::string, std::size_t, net::Prefix>;  // provider, client, subnet

std::map<PairKey, PairSeries> build_series(const std::vector<measure::TrialRecord>& records,
                                           const StabilityConfig& config) {
  std::map<PairKey, PairSeries> series;
  for (const auto& trial : records) {
    for (const auto* hop : trial.usable()) {
      const auto ratio = core::latency_ratio(trial, *hop, config.convention);
      if (!ratio) continue;
      PairSeries& s = series[{trial.provider, trial.client_index, hop->subnet}];
      s.times_hours.push_back(trial.time_hours);
      s.ratios.push_back(*ratio);
      if (core::is_valley(*ratio, config.valley_threshold)) s.has_valley = true;
    }
  }
  // Order each pair's samples by time (campaigns already emit in time
  // order, but don't rely on it).
  for (auto& [key, s] : series) {
    std::vector<std::size_t> index(s.ratios.size());
    for (std::size_t i = 0; i < index.size(); ++i) index[i] = i;
    std::sort(index.begin(), index.end(),
              [&](std::size_t a, std::size_t b) { return s.times_hours[a] < s.times_hours[b]; });
    PairSeries sorted;
    sorted.has_valley = s.has_valley;
    for (std::size_t i : index) {
      sorted.times_hours.push_back(s.times_hours[i]);
      sorted.ratios.push_back(s.ratios[i]);
    }
    s = std::move(sorted);
  }
  return series;
}

}  // namespace

std::vector<StabilitySeries> figure5(const std::vector<measure::TrialRecord>& records,
                                     const StabilityConfig& config) {
  const auto series = build_series(records, config);

  std::vector<StabilitySeries> out;
  for (int window : config.window_sizes) {
    // bin index -> (sum of diffs, count)
    std::map<std::size_t, std::pair<double, std::size_t>> bins;
    for (const auto& [key, s] : series) {
      if (config.valley_pairs_only && !s.has_valley) continue;
      const std::size_t n = s.ratios.size();
      if (n < static_cast<std::size_t>(window)) continue;
      const std::size_t windows = n - static_cast<std::size_t>(window) + 1;
      // Window medians and centre times.
      std::vector<double> med(windows);
      std::vector<double> centre(windows);
      for (std::size_t w = 0; w < windows; ++w) {
        std::vector<double> slice(s.ratios.begin() + static_cast<std::ptrdiff_t>(w),
                                  s.ratios.begin() + static_cast<std::ptrdiff_t>(w + static_cast<std::size_t>(window)));
        med[w] = measure::median(std::move(slice));
        double t = 0.0;
        for (std::size_t k = w; k < w + static_cast<std::size_t>(window); ++k) {
          t += s.times_hours[k];
        }
        centre[w] = t / window;
      }
      for (std::size_t i = 0; i < windows; ++i) {
        for (std::size_t j = i + 1; j < windows; ++j) {
          const double distance = centre[j] - centre[i];
          if (distance <= 0.0) continue;
          const auto bin = static_cast<std::size_t>(distance / config.bin_hours);
          auto& [sum, count] = bins[bin];
          sum += std::abs(med[j] - med[i]);
          ++count;
        }
      }
    }
    StabilitySeries result;
    result.window_size = window;
    for (const auto& [bin, sum_count] : bins) {
      const auto& [sum, count] = sum_count;
      StabilityPoint p;
      p.distance_hours = (static_cast<double>(bin) + 0.5) * config.bin_hours;
      p.mean_ratio_difference = sum / static_cast<double>(count);
      p.samples = count;
      result.points.push_back(p);
    }
    out.push_back(std::move(result));
  }
  return out;
}

}  // namespace drongo::analysis
