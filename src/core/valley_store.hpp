// Crowd-shared valley knowledge base (the paper's §7 "crowd-sourced
// Drongo" direction, one step past peer_share's same-subnet pooling).
//
// peer_share trains every member engine with every published trial — full
// fidelity, but the pool must hold borrowed engine pointers and the win is
// bounded by one subnet's population. This store flips the data flow:
// clients *contribute* their trials into a shared knowledge base keyed by a
// routing-similarity cluster, and any client in the cluster *consults* it at
// resolution time when its own training windows are not yet conclusive. One
// training window's worth of measurements then amortizes across every
// routing-congruent client, whether or not they share a subnet.
//
// Clusters come from routing_cluster_key(): clients whose valley-free BGP
// paths toward the provider landmarks traverse the same first transit ASes
// see (nearly) the same path inflation, so a valley observed by one is
// predictive for the others (PAPERS.md: routing-aware partitioning for
// server ranking).
//
// Determinism is load-bearing: per-(cluster, domain, subnet) knowledge is a
// commutative integer aggregate {observations, valleys, ratio_ticks} — pure
// sums, no windows, no ordering — so any interleaving of contribute() calls
// from any number of threads produces the same store state, and choose() is
// a pure function of that state (no RNG tie-breaks; the radix trie's
// canonical walk order breaks ties). Campaign telemetry with the store on is
// therefore byte-identical at --threads 1 and 8.
//
// Concurrency: clusters are striped over independently locked shards (FNV-1a
// of the cluster key, the same deterministic striping the serving cache
// uses), so contributors in different clusters never contend.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/valley.hpp"
#include "measure/trial.hpp"
#include "net/lpm.hpp"
#include "net/prefix.hpp"
#include "obs/metrics.hpp"
#include "obs/schema.hpp"

namespace drongo::topology {
class World;
}

namespace drongo::core {

/// Counter block generated from the shared X-macro schema, mirrored as
/// `core.valley_store.<field>`. All fields are commutative sums.
struct ValleyStoreStats {
  DRONGO_OBS_VALLEY_STORE_COUNTERS(DRONGO_OBS_DECLARE_FIELD)

  ValleyStoreStats& operator+=(const ValleyStoreStats& other) {
#define DRONGO_VALLEY_STORE_FOLD(field) field += other.field;
    DRONGO_OBS_VALLEY_STORE_COUNTERS(DRONGO_VALLEY_STORE_FOLD)
#undef DRONGO_VALLEY_STORE_FOLD
    return *this;
  }
};

/// Shared-knowledge analogues of DrongoParams: the same vt/vf semantics,
/// with `min_observations` playing window_size's "sufficient data" role
/// (the store has no per-client windows — evidence is pooled).
struct ValleyStoreParams {
  double valley_threshold = 0.95;     ///< vt: ratio must be below this to count
  double min_valley_frequency = 1.0;  ///< vf: required valley fraction
  std::size_t min_observations = 5;   ///< pooled ratios needed to qualify
  RatioConvention convention = RatioConvention::deployment();
};

/// The routing-similarity cluster key for `client`: for each landmark AS
/// (in practice, the provider ASes the client measures against) the first
/// `depth` transit ASNs of the client's valley-free BGP path toward it,
/// concatenated. Clients mapping to the same key route their CDN traffic
/// through the same upstream ASes, so their valley observations transfer.
/// Throws net::InvalidArgument when the client has no AS or depth < 1.
/// (`world` is non-const only because routing tables build lazily; the
/// routing cache is internally synchronized.)
std::string routing_cluster_key(topology::World& world, net::Ipv4Addr client,
                                const std::vector<std::size_t>& landmark_as_indices,
                                int depth = 2);

/// Parses a DRONGO_VALLEY_SHARE value: "" / unset / "0" / "false" / "off"
/// disable sharing, "1" / "true" / "on" enable it. Anything else throws
/// net::InvalidArgument loudly — a typo must not silently run a different
/// scenario (same contract as parse_thread_count).
bool parse_valley_share(const char* value);

/// parse_valley_share over the DRONGO_VALLEY_SHARE environment variable.
bool valley_share_from_env();

class ValleyStore {
 public:
  explicit ValleyStore(ValleyStoreParams params = {}, std::size_t stripes = 8);
  ~ValleyStore();

  ValleyStore(const ValleyStore&) = delete;
  ValleyStore& operator=(const ValleyStore&) = delete;

  /// Ingests one trial contributed by a member of `cluster`: every usable
  /// hop with a computable latency ratio adds one observation (and one
  /// valley when the ratio is below vt) to the (cluster, domain, subnet)
  /// aggregate. Failed trials are ignored, mirroring DecisionEngine.
  /// Thread-safe; contribution order never affects the resulting state.
  void contribute(const std::string& cluster, const measure::TrialRecord& trial);

  /// The cluster's best assimilation subnet for `domain`, or nullopt when
  /// no subnet has both `min_observations` pooled ratios and a valley
  /// frequency of at least vf. Highest valley frequency wins; ties go to
  /// the first subnet in the trie's canonical walk order (deterministic, no
  /// RNG — unlike DecisionEngine, whose windows are client-private).
  std::optional<net::Prefix> choose(const std::string& cluster,
                                    const std::string& domain);

  /// A pooled subnet's standing, for introspection and benches.
  struct Candidate {
    net::Prefix subnet;
    std::uint64_t observations = 0;
    std::uint64_t valleys = 0;
    double valley_frequency = 0.0;
    double mean_ratio = 0.0;
    bool qualified = false;
  };

  /// All pooled subnets for (cluster, domain) in canonical trie order.
  [[nodiscard]] std::vector<Candidate> candidates(const std::string& cluster,
                                                  const std::string& domain) const;

  /// Attaches an obs registry (borrowed; nullptr detaches): every stat bump
  /// is mirrored as `core.valley_store.<field>`. Setup-phase only, like
  /// ShardedDnsCache::set_registry.
  void set_registry(obs::Registry* registry);

  /// Aggregated counters over all stripes. Takes every stripe lock briefly.
  [[nodiscard]] ValleyStoreStats stats() const;
  [[nodiscard]] std::size_t cluster_count() const;
  /// Total (cluster, domain, subnet) aggregates currently pooled.
  [[nodiscard]] std::size_t tracked_subnets() const;

  [[nodiscard]] const ValleyStoreParams& params() const { return params_; }

 private:
  /// Pure commutative sums: merging contributions in any order yields the
  /// same aggregate. `ratio_ticks` is the ratio quantized to millionths so
  /// the mean stays exactly representable (doubles would drift with
  /// summation order).
  struct Aggregate {
    std::uint64_t observations = 0;
    std::uint64_t valleys = 0;
    std::uint64_t ratio_ticks = 0;  ///< sum of round(ratio * 1e6)
  };

  struct Stripe;

  Stripe& stripe_of(const std::string& cluster) const;
  void bump(std::uint64_t ValleyStoreStats::* field, const char* name,
            ValleyStoreStats& stats, std::uint64_t delta = 1);

  ValleyStoreParams params_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  obs::Registry* registry_ = nullptr;  // borrowed; optional telemetry mirror
};

}  // namespace drongo::core
