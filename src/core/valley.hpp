// Latency valleys: the paper's central observable (§2.3).
#pragma once

#include <optional>

#include "measure/trial.hpp"

namespace drongo::core {

/// How to collapse a replica set to one latency number.
///
/// The paper uses two conventions:
///  - PlanetLab analysis (§3.2): CRM = MINIMUM over the CR-set (best case
///    for the baseline), HRM = MEDIAN over the HR-set (conservative for
///    Drongo) — a deliberate lower bound on the gains.
///  - RIPE/system evaluation (§5): FIRST replica of each set, mirroring
///    what a real client does and respecting CDN serving order.
enum class CrmPick : std::uint8_t { kMin, kFirst };
enum class HrmPick : std::uint8_t { kMedian, kFirst, kMin };

struct RatioConvention {
  CrmPick crm = CrmPick::kFirst;
  HrmPick hrm = HrmPick::kFirst;

  /// §3.2 lower-bound convention.
  static RatioConvention planetlab() { return {CrmPick::kMin, HrmPick::kMedian}; }
  /// §5 deployment convention.
  static RatioConvention deployment() { return {CrmPick::kFirst, HrmPick::kFirst}; }
};

/// The client-replica measurement under a convention; nullopt when the
/// trial has no CR measurements.
std::optional<double> crm_value(const measure::TrialRecord& trial, CrmPick pick);

/// The hop-replica measurement under a convention; nullopt when the hop has
/// no HR measurements.
std::optional<double> hrm_value(const measure::HopRecord& hop, HrmPick pick);

/// HRM/CRM for one hop of one trial; nullopt when either side is missing.
std::optional<double> latency_ratio(const measure::TrialRecord& trial,
                                    const measure::HopRecord& hop,
                                    RatioConvention convention);

/// The valley predicate: HRM/CRM < vt <= 1 (§2.3).
constexpr bool is_valley(double ratio, double valley_threshold) {
  return ratio < valley_threshold;
}

}  // namespace drongo::core
