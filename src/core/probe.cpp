#include "core/probe.hpp"

#include <map>
#include <set>

#include "net/error.hpp"

namespace drongo::core {

EcsProber::EcsProber(std::vector<net::Prefix> probe_subnets, int queries_per_subnet)
    : probe_subnets_(std::move(probe_subnets)), queries_per_subnet_(queries_per_subnet) {
  if (probe_subnets_.size() < 2) {
    throw net::InvalidArgument("ECS probing needs at least two subnets");
  }
  if (queries_per_subnet_ < 1) {
    throw net::InvalidArgument("queries_per_subnet must be positive");
  }
}

EcsProbeResult EcsProber::probe(dns::StubResolver& stub, const dns::DnsName& domain) const {
  EcsProbeResult result;
  result.domain = domain;

  // Per announced subnet, the set of replicas ever returned. Load balancing
  // rotates within a serving cluster, so sets (not sequences) are compared.
  std::map<net::Prefix, std::set<net::Ipv4Addr>> answers;
  bool any_scope = false;
  for (const auto& subnet : probe_subnets_) {
    for (int q = 0; q < queries_per_subnet_; ++q) {
      dns::ResolutionResult r;
      try {
        r = stub.resolve(domain, subnet);
      } catch (const net::Error&) {
        continue;  // unreachable server: treated as unresolvable below
      }
      if (!r.ok()) continue;
      result.resolvable = true;
      if (r.ecs_scope && r.ecs_scope->length() > 0) any_scope = true;
      for (auto addr : r.addresses) answers[subnet].insert(addr);
    }
  }
  if (!result.resolvable) return result;
  result.ecs_honored = any_scope;

  std::set<std::set<net::Ipv4Addr>> distinct;
  for (const auto& [subnet, replicas] : answers) {
    distinct.insert(replicas);
  }
  result.distinct_answers = distinct.size();

  // Unrestricted ECS: some pair of announced subnets received fully
  // DISJOINT replica sets. Mere set inequality is not enough — a restricted
  // provider keyed on the resolver source still varies its answers through
  // load balancing, but everything it returns comes from one serving pool,
  // so all subnets' sets overlap. Distinct subnets steered to distinct
  // clusters share nothing.
  bool disjoint_pair = false;
  for (auto a = answers.begin(); a != answers.end() && !disjoint_pair; ++a) {
    for (auto b = std::next(a); b != answers.end() && !disjoint_pair; ++b) {
      bool overlap = false;
      for (auto addr : a->second) {
        if (b->second.contains(addr)) overlap = true;
      }
      if (!overlap && !a->second.empty() && !b->second.empty()) disjoint_pair = true;
    }
  }
  result.ecs_unrestricted = disjoint_pair;
  return result;
}

std::vector<dns::DnsName> EcsProber::usable_domains(
    dns::StubResolver& stub, const std::vector<dns::DnsName>& domains) const {
  std::vector<dns::DnsName> usable;
  for (const auto& domain : domains) {
    const auto result = probe(stub, domain);
    if (result.resolvable && result.ecs_unrestricted) {
      usable.push_back(domain);
    }
  }
  return usable;
}

}  // namespace drongo::core
