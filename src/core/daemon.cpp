#include "core/daemon.hpp"

#include <algorithm>
#include <limits>

#include "net/error.hpp"

namespace drongo::core {

DrongoDaemon::DrongoDaemon(measure::TrialRunner* runner, std::size_t client_index,
                           DaemonConfig config, std::uint64_t seed)
    : runner_(runner),
      client_index_(client_index),
      config_(config),
      rng_(seed),
      engine_(config.params, seed ^ 0xDA3) {
  if (runner_ == nullptr) throw net::InvalidArgument("null TrialRunner");
  if (config_.horizon_trials < 1) throw net::InvalidArgument("horizon must be >= 1");
}

void DrongoDaemon::schedule_more(const WatchedDomain& domain, double from_hours) {
  const auto times =
      measure::sporadic_trial_times(config_.horizon_trials, rng_, from_hours,
                                    config_.schedule);
  for (double when : times) {
    queue_.push_back({when, domain});
  }
  std::sort(queue_.begin(), queue_.end(),
            [](const Pending& a, const Pending& b) { return a.when_hours < b.when_hours; });
}

void DrongoDaemon::watch(const WatchedDomain& domain, double now_hours) {
  // Guard against duplicate registrations: a second watch() for the same
  // domain would double-schedule its trials (and keep doubling the cadence
  // every time the horizon tops up).
  if (std::find(watched_.begin(), watched_.end(), domain) != watched_.end()) return;
  watched_.push_back(domain);
  schedule_more(domain, std::max(now_hours, clock_hours_));
}

int DrongoDaemon::advance_to(double now_hours) {
  if (now_hours < clock_hours_) {
    throw net::InvalidArgument("daemon clock cannot move backwards");
  }
  clock_hours_ = now_hours;
  int executed = 0;
  while (!queue_.empty() && queue_.front().when_hours <= clock_hours_) {
    const Pending pending = queue_.front();
    queue_.erase(queue_.begin());
    const auto trial = runner_->run(client_index_, pending.domain.provider_index,
                                    pending.when_hours, pending.domain.label_index);
    engine_.observe(trial);
    ++trials_run_;
    ++executed;
    // Keep the horizon topped up: when a domain's queue drains below the
    // horizon, extend its schedule from the last executed point.
    const auto remaining = std::count_if(
        queue_.begin(), queue_.end(), [&](const Pending& p) {
          return p.domain.provider_index == pending.domain.provider_index &&
                 p.domain.label_index == pending.domain.label_index;
        });
    if (remaining < config_.horizon_trials / 2) {
      // Continue the domain's schedule from the trial just executed, so a
      // long advance_to (a machine left running) keeps a steady sporadic
      // cadence across the whole interval.
      schedule_more(pending.domain, pending.when_hours);
    }
  }
  return executed;
}

double DrongoDaemon::next_wakeup_hours() const {
  return queue_.empty() ? std::numeric_limits<double>::infinity()
                        : queue_.front().when_hours;
}

std::optional<net::Prefix> DrongoDaemon::select_subnet(const dns::DnsName& domain,
                                                       const net::Prefix&) {
  return engine_.choose(domain.to_string());
}

}  // namespace drongo::core
