// Training windows: bounded per-subnet measurement history (§4.1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace drongo::core {

/// A sliding window of latency ratios observed for one (domain, subnet)
/// pair. Drongo keeps storage tiny: the paper finds a window of 5 captures
/// nearly all the predictive power (Fig. 5b), so that is the default.
class TrainingWindow {
 public:
  explicit TrainingWindow(std::size_t capacity = 5);

  /// Records the latency ratio from one trial.
  void add(double ratio);

  /// Records that a trial that should have fed this window produced no
  /// ratio (hop resolution failed, measurements missing). Misses never
  /// enter the ratio history — a degraded trial must not dilute or fake
  /// valley evidence — they are tracked so operators can see how much of a
  /// window's training signal a lossy network ate.
  void add_miss() { ++misses_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

  [[nodiscard]] std::size_t size() const { return ratios_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Drongo only acts on full windows ("sufficient data", §4).
  [[nodiscard]] bool full() const { return ratios_.size() >= capacity_; }

  /// Valley frequency at threshold vt: fraction of window trials whose
  /// ratio is a valley (ratio < vt). Zero for an empty window.
  [[nodiscard]] double valley_frequency(double valley_threshold) const;

  /// True when at least one window trial is a valley at vt — the Fig. 5b
  /// stability precondition.
  [[nodiscard]] bool any_valley(double valley_threshold) const;

  [[nodiscard]] const std::deque<double>& ratios() const { return ratios_; }

 private:
  std::size_t capacity_;
  std::deque<double> ratios_;
  std::uint64_t misses_ = 0;
};

}  // namespace drongo::core
