#include "core/drongo.hpp"

#include "net/error.hpp"

namespace drongo::core {

DrongoClient::DrongoClient(DrongoParams params, std::uint64_t seed)
    : engine_(params, seed) {}

std::vector<measure::TrialRecord> DrongoClient::train(measure::TrialRunner& runner,
                                                      std::size_t client_index,
                                                      std::size_t provider_index,
                                                      int trials, double spacing_hours,
                                                      double start_time_hours,
                                                      std::size_t label_index) {
  std::vector<measure::TrialRecord> records;
  records.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    records.push_back(runner.run(client_index, provider_index,
                                 start_time_hours + t * spacing_hours, label_index));
    observe(records.back());
  }
  return records;
}

std::optional<net::Prefix> DrongoClient::choose_subnet(const std::string& domain) {
  if (auto own = engine_.choose(domain)) return own;
  if (store_ == nullptr) return std::nullopt;
  auto shared = store_->choose(cluster_, domain);
  if (shared) {
    ++shared_assimilations_;
    if (registry_ != nullptr) registry_->add("core.drongo.shared_assimilations");
  }
  return shared;
}

dns::ResolutionResult DrongoClient::resolve(dns::StubResolver& stub,
                                            const dns::DnsName& domain) {
  const auto note = [this](const char* name) {
    if (registry_ != nullptr) registry_->add(name);
  };
  ++total_;
  note("core.drongo.queries");
  if (const auto subnet = choose_subnet(domain.to_string())) {
    ++assimilated_;
    note("core.drongo.assimilated");
    // Assimilation is an optimization, never a dependency: when the
    // assimilated resolution cannot produce an answer (retries exhausted or
    // the server kept failing), fall back to an ordinary own-subnet
    // resolution — the client ends up exactly where it would be without
    // Drongo. A fallback failure then propagates: the network is down for
    // everyone.
    try {
      const auto result = stub.resolve(domain, *subnet);
      if (!result.server_failure()) return result;
    } catch (const net::TransientError&) {
    }
    ++assimilation_fallbacks_;
    note("core.drongo.assimilation_fallbacks");
  }
  return stub.resolve_with_own_subnet(domain);
}

void DrongoClient::enable_gwtw(int k) {
  if (k < 0) throw net::InvalidArgument("gwtw k must be >= 0");
  gwtw_k_ = k;
  if (k >= 2) {
    RaceConfig config;
    config.k = k;
    racer_ = std::make_unique<ReplicaRacer>(config);
    racer_->set_registry(registry_);
  } else {
    racer_.reset();
  }
}

RacedResolution DrongoClient::resolve_racing(dns::StubResolver& stub,
                                             const dns::DnsName& domain,
                                             topology::World& world, net::Rng& rng) {
  RacedResolution out;
  out.resolution = resolve(stub, domain);
  if (out.resolution.addresses.empty()) return out;
  out.chosen = out.resolution.addresses.front();
  if (racer_ != nullptr && out.resolution.addresses.size() > 1) {
    out.race = racer_->race(world, stub.client_address(), out.resolution.addresses, rng);
    out.chosen = out.race->winner();
  }
  return out;
}

std::optional<net::Prefix> DrongoClient::select_subnet(const dns::DnsName& domain,
                                                       const net::Prefix& /*client*/) {
  ++total_;
  if (registry_ != nullptr) registry_->add("core.drongo.queries");
  auto choice = choose_subnet(domain.to_string());
  if (choice) {
    ++assimilated_;
    if (registry_ != nullptr) registry_->add("core.drongo.assimilated");
  }
  return choice;
}

}  // namespace drongo::core
