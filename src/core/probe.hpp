// Provider selection (§3.1.1): detecting unrestricted ECS support.
#pragma once

#include <string>
#include <vector>

#include "dns/stub_resolver.hpp"
#include "net/prefix.hpp"

namespace drongo::core {

/// Verdict for one probed domain.
struct EcsProbeResult {
  dns::DnsName domain;
  bool resolvable = false;
  /// The server echoed an ECS option with a non-zero scope: it understands
  /// and uses ECS.
  bool ecs_honored = false;
  /// Announcing different foreign subnets changed the answer: the provider
  /// implements ECS in its UNRESTRICTED form (usable for assimilation).
  /// Akamai-style providers that only accept ECS from whitelisted resolvers
  /// fail this even when ecs_honored appears true.
  bool ecs_unrestricted = false;
  /// Distinct replica sets observed across the probe subnets.
  std::size_t distinct_answers = 0;
};

/// Probes domains for unrestricted ECS the way the paper selects its six
/// providers: resolve each domain repeatedly while announcing a spread of
/// foreign subnets, and call ECS unrestricted when the answers actually
/// track the announced subnet.
///
/// `probe_subnets` should be geographically spread /24s (the caller knows
/// its world); at least two are required. `queries_per_subnet` must be
/// large enough to exhaust one cluster's load-balancing rotation (default
/// 4), or a restricted provider's rotating pool could masquerade as
/// subnet-dependent answers.
class EcsProber {
 public:
  explicit EcsProber(std::vector<net::Prefix> probe_subnets, int queries_per_subnet = 4);

  EcsProbeResult probe(dns::StubResolver& stub, const dns::DnsName& domain) const;

  /// Probes many domains and returns only those usable by Drongo
  /// (resolvable + unrestricted ECS), in input order — the paper's
  /// "remaining URLs" after the §3.1.1 filter.
  std::vector<dns::DnsName> usable_domains(dns::StubResolver& stub,
                                           const std::vector<dns::DnsName>& domains) const;

 private:
  std::vector<net::Prefix> probe_subnets_;
  int queries_per_subnet_;
};

}  // namespace drongo::core
