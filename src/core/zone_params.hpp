// Per-provider Drongo parameters (§5.2).
//
// The paper's aggregate gain rises from 5.18% to 5.85% when each provider
// runs its own optimal (vf, vt). This selector deploys that: one decision
// engine per configured zone, a default engine for everything else.
#pragma once

#include <map>
#include <memory>

#include "core/decision.hpp"
#include "dns/proxy.hpp"

namespace drongo::core {

/// A SubnetSelector that routes each domain to the decision engine of the
/// most specific configured zone (falling back to a default engine), so
/// different CDNs run under different (vf, vt) parameters simultaneously.
class ZoneParamsSelector : public dns::SubnetSelector {
 public:
  explicit ZoneParamsSelector(DrongoParams default_params = {}, std::uint64_t seed = 5);

  /// Configures a zone (e.g. "googlecdn.sim") with its own parameters.
  /// Replaces any previous engine (and its windows) for that zone.
  void set_zone_params(const dns::DnsName& zone, DrongoParams params);

  /// Feeds a trial to the engine owning the trial's domain.
  void observe(const measure::TrialRecord& trial);

  /// The engine that owns `domain`: the most specific configured zone's, or
  /// the default.
  [[nodiscard]] DecisionEngine& engine_for(const dns::DnsName& domain);

  std::optional<net::Prefix> select_subnet(const dns::DnsName& domain,
                                           const net::Prefix& client_subnet) override;

  [[nodiscard]] std::size_t zone_count() const { return zones_.size(); }

 private:
  DecisionEngine default_engine_;
  std::map<dns::DnsName, std::unique_ptr<DecisionEngine>> zones_;
  std::uint64_t next_seed_;
};

}  // namespace drongo::core
