#include "core/valley.hpp"

#include <algorithm>

#include "measure/stats.hpp"

namespace drongo::core {

std::optional<double> crm_value(const measure::TrialRecord& trial, CrmPick pick) {
  if (trial.cr.empty()) return std::nullopt;
  switch (pick) {
    case CrmPick::kMin:
      return trial.min_crm();
    case CrmPick::kFirst:
      return trial.cr.front().rtt_ms;
  }
  return std::nullopt;
}

std::optional<double> hrm_value(const measure::HopRecord& hop, HrmPick pick) {
  if (hop.hr.empty()) return std::nullopt;
  switch (pick) {
    case HrmPick::kFirst:
      return hop.hr.front().rtt_ms;
    case HrmPick::kMin: {
      double best = hop.hr.front().rtt_ms;
      for (const auto& m : hop.hr) best = std::min(best, m.rtt_ms);
      return best;
    }
    case HrmPick::kMedian: {
      std::vector<double> values;
      values.reserve(hop.hr.size());
      for (const auto& m : hop.hr) values.push_back(m.rtt_ms);
      return measure::median(std::move(values));
    }
  }
  return std::nullopt;
}

std::optional<double> latency_ratio(const measure::TrialRecord& trial,
                                    const measure::HopRecord& hop,
                                    RatioConvention convention) {
  const auto crm = crm_value(trial, convention.crm);
  const auto hrm = hrm_value(hop, convention.hrm);
  if (!crm || !hrm || *crm <= 0.0) return std::nullopt;
  return *hrm / *crm;
}

}  // namespace drongo::core
