// DrongoClient: the complete client-side system (§4).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/decision.hpp"
#include "core/race.hpp"
#include "core/valley_store.hpp"
#include "dns/proxy.hpp"
#include "dns/stub_resolver.hpp"
#include "measure/trial.hpp"

namespace drongo::core {

/// A resolution plus the race that (optionally) picked its replica.
struct RacedResolution {
  dns::ResolutionResult resolution;
  /// Present when GWTW was enabled and the answer had contestants to race.
  std::optional<RaceResult> race;
  /// The replica to connect to: the race winner when a race ran, else the
  /// answer's first address; empty when the resolution produced none.
  std::optional<net::Ipv4Addr> chosen;
};

/// The deployable Drongo system for one client machine.
///
/// Drongo sits on top of the client's DNS path: it collects trials during
/// idle time (train/observe), and at resolution time reshapes the outgoing
/// ECS option toward a qualified valley-prone subnet — never touching the
/// CDN's answer, never reordering replicas, never measuring on the fly
/// (§2.4: past measurements predictively choose the assimilation subnet).
///
/// It implements dns::SubnetSelector, so it plugs directly into an
/// LdnsProxy to become the machine's default resolver.
class DrongoClient : public dns::SubnetSelector {
 public:
  explicit DrongoClient(DrongoParams params = {}, std::uint64_t seed = 7);

  /// Idle-time data collection: runs `trials` trials against (client,
  /// provider) spaced `spacing_hours` apart and feeds them to the decision
  /// engine. The domain is pinned (`label_index` into the provider's
  /// content names) so the window accumulates on one name, as a deployed
  /// Drongo does per domain. Returns the trial records.
  std::vector<measure::TrialRecord> train(measure::TrialRunner& runner,
                                          std::size_t client_index,
                                          std::size_t provider_index, int trials,
                                          double spacing_hours,
                                          double start_time_hours = 0.0,
                                          std::size_t label_index = 0);

  /// Feeds one externally collected trial.
  void observe(const measure::TrialRecord& trial) {
    engine_.observe(trial);
    if (store_ != nullptr) store_->contribute(cluster_, trial);
  }

  /// Joins the crowd-shared valley store as a member of `cluster` (see
  /// core::routing_cluster_key). The store is borrowed and must outlive the
  /// client; nullptr leaves. While joined, every observed trial is also
  /// contributed to the cluster's pooled knowledge, and resolutions fall
  /// back to the cluster's choice when this client's own windows are not
  /// yet conclusive — own evidence always outranks crowd evidence.
  void share_via(ValleyStore* store, std::string cluster) {
    store_ = store;
    cluster_ = std::move(cluster);
  }

  /// Resolution with assimilation: uses the qualified subnet when one
  /// exists, else the client's own /24. Takes the FIRST replica of the
  /// answer — always respecting the CDN's serving order.
  dns::ResolutionResult resolve(dns::StubResolver& stub, const dns::DnsName& domain);

  /// Enables Go-With-The-Winner mode: resolve_racing then races the first
  /// `k` replicas of every answer and commits to the fastest. k < 2
  /// disables racing (resolve_racing keeps the first replica); negative k
  /// throws net::InvalidArgument. Setup-phase: call before resolving.
  void enable_gwtw(int k);

  /// Like resolve(), then — when GWTW is enabled and the answer has more
  /// than one address — races the leading replicas over `world` with RTT
  /// draws from `rng` and commits to the winner. The rival strategy to
  /// valley assimilation: measure at resolution time instead of ahead of it.
  RacedResolution resolve_racing(dns::StubResolver& stub, const dns::DnsName& domain,
                                 topology::World& world, net::Rng& rng);

  /// The racer behind GWTW mode, or nullptr while disabled.
  [[nodiscard]] const ReplicaRacer* racer() const { return racer_.get(); }

  /// SubnetSelector hook for LdnsProxy deployment.
  std::optional<net::Prefix> select_subnet(const dns::DnsName& domain,
                                           const net::Prefix& client_subnet) override;

  [[nodiscard]] DecisionEngine& engine() { return engine_; }
  [[nodiscard]] const DecisionEngine& engine() const { return engine_; }

  /// How many resolutions used an assimilated subnet vs the client's own.
  [[nodiscard]] std::uint64_t assimilated_queries() const { return assimilated_; }
  [[nodiscard]] std::uint64_t total_queries() const { return total_; }
  /// Assimilated resolutions that failed and fell back to the client's own
  /// subnet (resolve() only; the proxy path degrades inside the stub).
  [[nodiscard]] std::uint64_t assimilation_fallbacks() const {
    return assimilation_fallbacks_;
  }

  /// Resolutions whose subnet came from the crowd-shared store because this
  /// client's own engine had no qualified subnet yet.
  [[nodiscard]] std::uint64_t shared_assimilations() const {
    return shared_assimilations_;
  }

  /// Attaches an obs registry to the client AND its decision engine
  /// (borrowed; nullptr detaches). Resolutions tally `core.drongo.*`:
  /// total/assimilated queries and assimilation fallbacks.
  void set_registry(obs::Registry* registry) {
    registry_ = registry;
    engine_.set_registry(registry);
    if (racer_ != nullptr) racer_->set_registry(registry);
  }

 private:
  /// Engine choice first, crowd knowledge second. Tallies the shared-hit
  /// counters when the crowd supplies the subnet.
  std::optional<net::Prefix> choose_subnet(const std::string& domain);

  DecisionEngine engine_;
  std::unique_ptr<ReplicaRacer> racer_;  ///< non-null while GWTW is enabled
  int gwtw_k_ = 0;
  ValleyStore* store_ = nullptr;  // borrowed; optional crowd knowledge
  std::string cluster_;           ///< this client's routing-similarity cluster
  std::uint64_t assimilated_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t assimilation_fallbacks_ = 0;
  std::uint64_t shared_assimilations_ = 0;
  obs::Registry* registry_ = nullptr;  // borrowed; optional telemetry
};

}  // namespace drongo::core
