#include "core/window.hpp"

#include "net/error.hpp"

namespace drongo::core {

TrainingWindow::TrainingWindow(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw net::InvalidArgument("window capacity must be positive");
}

void TrainingWindow::add(double ratio) {
  ratios_.push_back(ratio);
  while (ratios_.size() > capacity_) ratios_.pop_front();
}

double TrainingWindow::valley_frequency(double valley_threshold) const {
  if (ratios_.empty()) return 0.0;
  std::size_t valleys = 0;
  for (double r : ratios_) {
    if (r < valley_threshold) ++valleys;
  }
  return static_cast<double>(valleys) / static_cast<double>(ratios_.size());
}

bool TrainingWindow::any_valley(double valley_threshold) const {
  for (double r : ratios_) {
    if (r < valley_threshold) return true;
  }
  return false;
}

}  // namespace drongo::core
