// Drongo's decision engine (§4.3).
#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/valley.hpp"
#include "core/window.hpp"
#include "net/prefix.hpp"
#include "net/rng.hpp"
#include "obs/metrics.hpp"

namespace drongo::core {

/// The two tunables the paper sweeps in §5.1 plus the window size of §4.1.
/// Defaults are the experimentally optimal values (vf = 1.0, vt = 0.95,
/// window 5) under which Drongo reaches its peak aggregate gain.
struct DrongoParams {
  double valley_threshold = 0.95;     ///< vt: ratio must be below this to count
  double min_valley_frequency = 1.0;  ///< vf: required fraction of window trials
  std::size_t window_size = 5;
  RatioConvention convention = RatioConvention::deployment();
};

/// Decides, per domain, whether — and with which hop subnet — to perform
/// subnet assimilation.
///
/// Feed it trial records (collected during idle time); ask it for a subnet
/// at resolution time. Rules, per §4.3:
///  - only subnets with a FULL training window qualify ("sufficient data");
///  - a subnet qualifies when its window valley frequency (at vt) is at
///    least the vf parameter;
///  - among qualified subnets the highest valley frequency wins; ties are
///    broken uniformly at random;
///  - no qualified subnet -> resolve with the client's own subnet.
class DecisionEngine {
 public:
  explicit DecisionEngine(DrongoParams params = {}, std::uint64_t seed = 99);

  [[nodiscard]] const DrongoParams& params() const { return params_; }

  /// Ingests one trial: updates the (domain, hop-subnet) windows with the
  /// trial's latency ratios under the configured convention.
  void observe(const measure::TrialRecord& trial);

  /// The assimilation choice for `domain` right now, or nullopt for "use
  /// the client's own subnet".
  std::optional<net::Prefix> choose(const std::string& domain);

  /// A qualified or candidate subnet's state, for introspection.
  struct Candidate {
    net::Prefix subnet;
    double valley_frequency = 0.0;
    std::size_t observations = 0;
    bool qualified = false;
  };

  /// All tracked subnets for a domain with their current standing.
  [[nodiscard]] std::vector<Candidate> candidates(const std::string& domain) const;

  /// Number of (domain, subnet) windows currently tracked.
  [[nodiscard]] std::size_t tracked_windows() const;

  /// Failed trials fed to observe() and ignored (no measurements to learn
  /// from). Nonzero here with healthy windows is graceful degradation
  /// working as intended.
  [[nodiscard]] std::uint64_t skipped_trials() const { return skipped_trials_; }

  /// Persists the training state (all windows) in a line-oriented text
  /// format. A deployed Drongo survives restarts without re-measuring: the
  /// paper's 5-trial windows span days, far longer than a process lifetime.
  void save(std::ostream& out) const;

  /// Restores state written by save(), REPLACING current windows. Ratios
  /// beyond the configured window size are truncated to the most recent.
  /// Throws net::ParseError on malformed input.
  void load(std::istream& in);

  /// Attaches an obs registry (borrowed; nullptr detaches). observe() then
  /// tallies `core.engine.*`: trials observed/skipped, ratios ingested,
  /// valleys observed (ratio below vt), window misses; choose() tallies its
  /// verdicts and updates the `core.engine.tracked_windows` gauge.
  void set_registry(obs::Registry* registry) { registry_ = registry; }

 private:
  DrongoParams params_;
  net::Rng rng_;
  std::uint64_t skipped_trials_ = 0;
  obs::Registry* registry_ = nullptr;  // borrowed; optional telemetry
  /// domain (canonical) -> subnet -> window.
  std::map<std::string, std::map<net::Prefix, TrainingWindow>> windows_;
};

}  // namespace drongo::core
