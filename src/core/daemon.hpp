// DrongoDaemon: the long-running client process (§4 + §4.2 together).
//
// A deployed Drongo is not a one-shot trainer: it sits on the machine,
// schedules idle-time trials sporadically across all the domains it serves,
// persists its windows across restarts, and answers the proxy's selector
// queries at any moment from whatever it has learned so far. This class is
// that process, driven by an explicit simulated clock so it is fully
// testable.
//
// Naming note: despite the word, this is NOT the network daemon. The
// socket-facing DNS server is `dns::DaemonServer` (src/dns/daemon_server.hpp,
// run by tools/drongo_daemond.cpp); `core::DrongoDaemon` here is the
// client-side trial scheduler from the paper's pipeline and owns no socket.
// Grep-friendly rule: `DaemonServer` listens, `DrongoDaemon` schedules.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "core/drongo.hpp"
#include "measure/schedule.hpp"
#include "measure/trial.hpp"

namespace drongo::core {

/// One domain the daemon maintains: a (provider, content label) the client
/// actually uses.
struct WatchedDomain {
  std::size_t provider_index = 0;
  std::size_t label_index = 0;

  friend bool operator==(const WatchedDomain&, const WatchedDomain&) = default;
};

struct DaemonConfig {
  DrongoParams params;
  measure::SporadicScheduleConfig schedule;
  /// How many future trials to keep scheduled per domain.
  int horizon_trials = 8;
};

/// Clock-driven trial scheduler + decision engine for one client machine.
class DrongoDaemon : public dns::SubnetSelector {
 public:
  /// `runner` is borrowed and must outlive the daemon.
  DrongoDaemon(measure::TrialRunner* runner, std::size_t client_index,
               DaemonConfig config = {}, std::uint64_t seed = 17);

  /// Registers a domain for background maintenance; trials for it are
  /// scheduled from `now_hours` on. Watching an already-watched domain is
  /// a no-op — a re-registration must not double-schedule its trials.
  void watch(const WatchedDomain& domain, double now_hours = 0.0);

  /// Domains currently under background maintenance.
  [[nodiscard]] std::size_t watched_count() const { return watched_.size(); }

  /// Advances the daemon's clock to `now_hours`, executing every trial
  /// whose scheduled time has arrived (the "idle time" work). Returns the
  /// number of trials run.
  int advance_to(double now_hours);

  /// Next scheduled trial time across all watched domains; +inf when
  /// nothing is scheduled.
  [[nodiscard]] double next_wakeup_hours() const;

  /// The selector the LDNS proxy calls.
  std::optional<net::Prefix> select_subnet(const dns::DnsName& domain,
                                           const net::Prefix& client_subnet) override;

  [[nodiscard]] DecisionEngine& engine() { return engine_; }
  [[nodiscard]] std::uint64_t trials_run() const { return trials_run_; }

  /// Persistence: engine windows only (schedules are rebuilt on restart —
  /// a real daemon reschedules around current idle time anyway).
  void save(std::ostream& out) const { engine_.save(out); }
  void load(std::istream& in) { engine_.load(in); }

 private:
  struct Pending {
    double when_hours;
    WatchedDomain domain;
  };

  void schedule_more(const WatchedDomain& domain, double from_hours);

  measure::TrialRunner* runner_;
  std::size_t client_index_;
  DaemonConfig config_;
  net::Rng rng_;
  DecisionEngine engine_;
  std::vector<WatchedDomain> watched_;  // registration order, no duplicates
  std::vector<Pending> queue_;          // kept sorted by when_hours
  double clock_hours_ = 0.0;
  std::uint64_t trials_run_ = 0;
};

}  // namespace drongo::core
