#include "core/valley_store.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "net/error.hpp"
#include "net/strings.hpp"
#include "topology/world.hpp"

namespace drongo::core {

namespace {

constexpr double kRatioTick = 1e6;

std::uint64_t stripe_hash(const std::string& key) {
  // FNV-1a: deterministic across runs and platforms, unlike std::hash.
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::string routing_cluster_key(topology::World& world, net::Ipv4Addr client,
                                const std::vector<std::size_t>& landmark_as_indices,
                                int depth) {
  if (depth < 1) {
    throw net::InvalidArgument("routing cluster depth must be >= 1, got " +
                               std::to_string(depth));
  }
  const auto src = world.as_index_of(client);
  if (!src) {
    throw net::InvalidArgument("client address outside every AS block: " +
                               client.to_string());
  }
  std::string key;
  for (const std::size_t landmark : landmark_as_indices) {
    const auto path = world.routing().as_path(*src, landmark);
    key += '|';
    // Skip path[0] (the client's own AS): the cluster captures HOW traffic
    // leaves toward the landmark, so clients in different stub ASes behind
    // the same transit chain still pool their observations.
    const std::size_t take =
        std::min(path.size(), static_cast<std::size_t>(depth) + 1);
    for (std::size_t i = 1; i < take; ++i) {
      key += world.graph().node(path[i]).asn.to_string();
      key += ',';
    }
  }
  return key;
}

bool parse_valley_share(const char* value) {
  if (value == nullptr || value[0] == '\0') return false;
  const std::string v = net::to_lower(value);
  if (v == "0" || v == "false" || v == "off") return false;
  if (v == "1" || v == "true" || v == "on") return true;
  throw net::InvalidArgument(
      "DRONGO_VALLEY_SHARE must be one of 0/false/off/1/true/on, got \"" +
      std::string(value) + "\"");
}

bool valley_share_from_env() {
  return parse_valley_share(std::getenv("DRONGO_VALLEY_SHARE"));
}

struct ValleyStore::Stripe {
  mutable std::mutex mutex;
  /// cluster -> domain (canonical) -> pooled subnet aggregates.
  std::map<std::string, std::map<std::string, net::LpmTrie<Aggregate>>> clusters;
  ValleyStoreStats stats;
};

ValleyStore::ValleyStore(ValleyStoreParams params, std::size_t stripes)
    : params_(params) {
  if (params_.valley_threshold <= 0.0 || params_.valley_threshold > 1.0) {
    throw net::InvalidArgument("valley threshold must be in (0, 1]");
  }
  if (params_.min_valley_frequency < 0.0 || params_.min_valley_frequency > 1.0) {
    throw net::InvalidArgument("valley frequency must be in [0, 1]");
  }
  if (params_.min_observations == 0) {
    throw net::InvalidArgument("min_observations must be >= 1");
  }
  const std::size_t count = std::max<std::size_t>(1, stripes);
  stripes_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

ValleyStore::~ValleyStore() = default;

ValleyStore::Stripe& ValleyStore::stripe_of(const std::string& cluster) const {
  return *stripes_[static_cast<std::size_t>(stripe_hash(cluster) % stripes_.size())];
}

void ValleyStore::bump(std::uint64_t ValleyStoreStats::* field, const char* name,
                       ValleyStoreStats& stats, std::uint64_t delta) {
  stats.*field += delta;
  if (registry_ != nullptr && delta != 0) {
    registry_->add(obs::counter_name("core.valley_store.", name), delta);
  }
}

/// Bumps `field` on the (locked) stripe's stats and mirrors it.
#define DRONGO_STORE_BUMP(field, ...) \
  bump(&ValleyStoreStats::field, #field, stripe.stats, ##__VA_ARGS__)

void ValleyStore::contribute(const std::string& cluster,
                             const measure::TrialRecord& trial) {
  // Mirrors DecisionEngine::observe's evidence rules exactly (failed trials
  // carry nothing; only usable hops with a computable ratio teach), so the
  // store never learns from data an engine would reject.
  if (trial.failed()) return;
  Stripe& stripe = stripe_of(cluster);
  std::lock_guard lock(stripe.mutex);
  DRONGO_STORE_BUMP(contributions);
  auto& domain_tries = stripe.clusters[cluster][net::to_lower(trial.domain)];
  for (const auto& hop : trial.hops) {
    if (!hop.usable) continue;
    const auto ratio = latency_ratio(trial, hop, params_.convention);
    if (!ratio) continue;
    Aggregate* agg = domain_tries.find(hop.subnet);
    if (agg == nullptr) agg = domain_tries.insert(hop.subnet, Aggregate{});
    ++agg->observations;
    agg->ratio_ticks +=
        static_cast<std::uint64_t>(std::llround(*ratio * kRatioTick));
    if (is_valley(*ratio, params_.valley_threshold)) {
      ++agg->valleys;
      DRONGO_STORE_BUMP(valley_observations);
    }
  }
}

std::optional<net::Prefix> ValleyStore::choose(const std::string& cluster,
                                               const std::string& domain) {
  Stripe& stripe = stripe_of(cluster);
  std::lock_guard lock(stripe.mutex);
  DRONGO_STORE_BUMP(lookups);
  std::optional<net::Prefix> best;
  double best_vf = -1.0;
  const auto cit = stripe.clusters.find(cluster);
  if (cit != stripe.clusters.end()) {
    const auto dit = cit->second.find(net::to_lower(domain));
    if (dit != cit->second.end()) {
      // Strictly-greater keeps the FIRST walk-order subnet on ties: the
      // trie's canonical order stands in for DecisionEngine's RNG
      // tie-break, because shared knowledge must choose identically for
      // every cluster member on every thread.
      dit->second.walk([&](const net::Prefix& subnet, const Aggregate& agg) {
        if (agg.observations < params_.min_observations) return;
        const double vf = static_cast<double>(agg.valleys) /
                          static_cast<double>(agg.observations);
        if (vf < params_.min_valley_frequency || vf <= 0.0) return;
        if (vf > best_vf) {
          best_vf = vf;
          best = subnet;
        }
      });
    }
  }
  if (best) {
    DRONGO_STORE_BUMP(shared_hits);
  } else {
    DRONGO_STORE_BUMP(shared_misses);
  }
  return best;
}

std::vector<ValleyStore::Candidate> ValleyStore::candidates(
    const std::string& cluster, const std::string& domain) const {
  const Stripe& stripe = stripe_of(cluster);
  std::lock_guard lock(stripe.mutex);
  std::vector<Candidate> out;
  const auto cit = stripe.clusters.find(cluster);
  if (cit == stripe.clusters.end()) return out;
  const auto dit = cit->second.find(net::to_lower(domain));
  if (dit == cit->second.end()) return out;
  dit->second.walk([&](const net::Prefix& subnet, const Aggregate& agg) {
    Candidate c;
    c.subnet = subnet;
    c.observations = agg.observations;
    c.valleys = agg.valleys;
    c.valley_frequency = agg.observations == 0
                             ? 0.0
                             : static_cast<double>(agg.valleys) /
                                   static_cast<double>(agg.observations);
    c.mean_ratio = agg.observations == 0
                       ? 0.0
                       : static_cast<double>(agg.ratio_ticks) /
                             (kRatioTick * static_cast<double>(agg.observations));
    c.qualified = agg.observations >= params_.min_observations &&
                  c.valley_frequency >= params_.min_valley_frequency &&
                  c.valley_frequency > 0.0;
    out.push_back(c);
  });
  return out;
}

void ValleyStore::set_registry(obs::Registry* registry) { registry_ = registry; }

ValleyStoreStats ValleyStore::stats() const {
  ValleyStoreStats total;
  for (const auto& stripe : stripes_) {
    std::lock_guard lock(stripe->mutex);
    total += stripe->stats;
  }
  return total;
}

std::size_t ValleyStore::cluster_count() const {
  std::size_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard lock(stripe->mutex);
    total += stripe->clusters.size();
  }
  return total;
}

std::size_t ValleyStore::tracked_subnets() const {
  std::size_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard lock(stripe->mutex);
    for (const auto& [cluster, domains] : stripe->clusters) {
      for (const auto& [domain, trie] : domains) {
        total += trie.size();
      }
    }
  }
  return total;
}

#undef DRONGO_STORE_BUMP

}  // namespace drongo::core
