#include "core/zone_params.hpp"

namespace drongo::core {

ZoneParamsSelector::ZoneParamsSelector(DrongoParams default_params, std::uint64_t seed)
    : default_engine_(default_params, seed), next_seed_(seed + 1) {}

void ZoneParamsSelector::set_zone_params(const dns::DnsName& zone, DrongoParams params) {
  zones_[zone] = std::make_unique<DecisionEngine>(params, next_seed_++);
}

DecisionEngine& ZoneParamsSelector::engine_for(const dns::DnsName& domain) {
  DecisionEngine* best = &default_engine_;
  std::size_t best_labels = 0;
  for (auto& [zone, engine] : zones_) {
    if (domain.is_subdomain_of(zone) && zone.label_count() >= best_labels) {
      best = engine.get();
      best_labels = zone.label_count();
    }
  }
  return *best;
}

void ZoneParamsSelector::observe(const measure::TrialRecord& trial) {
  const auto domain = dns::DnsName::parse(trial.domain);
  if (!domain) return;
  engine_for(*domain).observe(trial);
}

std::optional<net::Prefix> ZoneParamsSelector::select_subnet(
    const dns::DnsName& domain, const net::Prefix& /*client_subnet*/) {
  return engine_for(domain).choose(domain.to_string());
}

}  // namespace drongo::core
