#include "core/peer_share.hpp"

#include <algorithm>

#include "net/error.hpp"

namespace drongo::core {

std::string share_group_key(const topology::World& world, net::Ipv4Addr client,
                            ShareScope scope) {
  switch (scope) {
    case ShareScope::kSlash24:
      return net::Prefix(client, 24).to_string();
    case ShareScope::kSlash16:
      return net::Prefix(client, 16).to_string();
    case ShareScope::kAsn:
      return world.asn_of(client).to_string();
  }
  throw net::InvalidArgument("unknown share scope");
}

void PeerSharePool::join(const std::string& group, DecisionEngine* engine) {
  if (engine == nullptr) throw net::InvalidArgument("null engine");
  // Remove from any previous group (an engine sits in one group).
  for (auto& [key, members] : groups_) {
    members.erase(std::remove(members.begin(), members.end(), engine), members.end());
  }
  groups_[group].push_back(engine);
}

std::size_t PeerSharePool::publish(const std::string& group,
                                   const measure::TrialRecord& trial) {
  if (store_ != nullptr) store_->contribute(group, trial);
  auto it = groups_.find(group);
  if (it == groups_.end()) return 0;
  for (DecisionEngine* engine : it->second) {
    engine->observe(trial);
    ++deliveries_;
  }
  ++published_;
  return it->second.size();
}

std::size_t PeerSharePool::group_size(const std::string& group) const {
  auto it = groups_.find(group);
  return it == groups_.end() ? 0 : it->second.size();
}

}  // namespace drongo::core
