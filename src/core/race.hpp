// Go-With-The-Winner replica racing: measure the front of the answer, then
// commit.
//
// Drongo's thesis (§2.4) is that *past* measurements can predictively pick
// a better ECS subnet, so resolution time costs nothing extra. The obvious
// rival — and the baseline several CDN-selection papers champion — is to
// race: take the first k replicas the CDN returned, probe them all, and go
// with the winner. Racing pays k-1 wasted probes per resolution but needs
// no history; assimilation pays a training campaign but resolves cold.
// ReplicaRacer implements the racing arm so the headline bench can put the
// two strategies next to each other under the same simulated network.
//
// Determinism: every RTT in a race is drawn through measure::ping_ms from
// an Rng the caller supplies, so a race is as reproducible as the trial or
// resolution that runs it. Ties go to the lowest index — the CDN's own
// preference — so a racer over identical latencies degrades to the
// paper-faithful "take the first replica".
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "measure/probes.hpp"
#include "net/rng.hpp"
#include "obs/metrics.hpp"
#include "topology/world.hpp"

namespace drongo::core {

/// Racing knobs.
struct RaceConfig {
  /// How many of the leading replicas enter the race (clamped to the
  /// answer size; values < 2 make racing a no-op that keeps replica 0).
  int k = 2;
  /// Ping burst per contestant (paper convention: average of 3).
  measure::PingConfig ping;
};

/// One race's outcome. `rtts_ms[i]` is contestant i's measured latency;
/// contestants keep the CDN's answer order.
struct RaceResult {
  std::vector<net::Ipv4Addr> contestants;
  std::vector<double> rtts_ms;
  std::size_t winner_index = 0;
  [[nodiscard]] net::Ipv4Addr winner() const { return contestants[winner_index]; }
  [[nodiscard]] double winner_rtt_ms() const { return rtts_ms[winner_index]; }
  /// True when the race overturned the CDN's first choice.
  [[nodiscard]] bool switched() const { return winner_index != 0; }
};

/// Races the first k replicas of an answer and picks the fastest.
///
/// Thread-safety: race() is const and draws only from the caller's rng;
/// the tallies are relaxed atomics, so concurrent races from independent
/// streams stay deterministic in the aggregate.
class ReplicaRacer {
 public:
  explicit ReplicaRacer(RaceConfig config = {});

  /// Probes the first min(k, replicas.size()) replicas from `client` and
  /// returns the full standings. `replicas` must be non-empty.
  RaceResult race(topology::World& world, net::Ipv4Addr client,
                  const std::vector<net::Ipv4Addr>& replicas, net::Rng& rng) const;

  [[nodiscard]] const RaceConfig& config() const { return config_; }

  // What the races decided, as order-independent sums.
  [[nodiscard]] std::uint64_t races() const { return races_.load(); }
  /// Races where a later replica beat the CDN's first choice.
  [[nodiscard]] std::uint64_t switched() const { return switched_.load(); }
  /// Races the CDN's first choice won outright (racing changed nothing).
  [[nodiscard]] std::uint64_t wins_first() const { return wins_first_.load(); }

  /// Attaches an obs registry (borrowed; nullptr detaches): races tally
  /// `core.gwtw.*` and winning RTTs feed `core.gwtw.winner_rtt_ms`.
  void set_registry(obs::Registry* registry) { registry_ = registry; }

 private:
  RaceConfig config_;
  mutable std::atomic<std::uint64_t> races_{0};
  mutable std::atomic<std::uint64_t> switched_{0};
  mutable std::atomic<std::uint64_t> wins_first_{0};
  obs::Registry* registry_ = nullptr;  // borrowed; optional telemetry mirror
};

}  // namespace drongo::core
