// Peer-to-peer trial sharing (the paper's §7 future-work extension).
//
// "To keep the number of measurements small while ensuring their freshness,
// a distributed, peer-to-peer component, where clients in the same subnet
// share trial data, could be incorporated into Drongo's design."
//
// This module implements that component for the simulated deployment: a
// process-local sharing pool where clients join a group (same /24, same
// /16, or same AS — the scope controls how congruent the members' network
// paths are) and every published trial trains every member's decision
// engine. Each member then needs only window_size / group_size trials of
// its own to fill a window.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/decision.hpp"
#include "core/valley_store.hpp"
#include "topology/world.hpp"

namespace drongo::core {

/// How widely trials are shared. Narrower scopes share less but guarantee
/// the peers see (nearly) the same routes; wider scopes save more
/// measurements at the cost of path congruence.
enum class ShareScope : std::uint8_t {
  kSlash24,  ///< same /24: practically the same vantage point
  kSlash16,  ///< same /16: same access network
  kAsn,      ///< same AS: same operator, possibly different metros
};

/// The group key a client belongs to under a scope.
std::string share_group_key(const topology::World& world, net::Ipv4Addr client,
                            ShareScope scope);

/// A sharing pool: members join groups; published trials train every member
/// engine in the publisher's group (including the publisher).
class PeerSharePool {
 public:
  /// Adds a member engine to `group`. Engines are borrowed and must outlive
  /// the pool. An engine may belong to one group only (re-joining moves it).
  void join(const std::string& group, DecisionEngine* engine);

  /// Publishes a trial into the publisher's group: all member engines
  /// observe it. Returns the number of engines trained. When a valley
  /// store is attached, the trial is also contributed to it under the
  /// group key, so the pool doubles as the store's ingestion seam.
  std::size_t publish(const std::string& group, const measure::TrialRecord& trial);

  /// Attaches a crowd-shared valley store (borrowed; nullptr detaches):
  /// every published trial is then also contributed under its group key,
  /// bridging subnet-scoped pools into cluster-scoped shared knowledge.
  void attach_store(ValleyStore* store) { store_ = store; }

  [[nodiscard]] std::size_t group_size(const std::string& group) const;
  [[nodiscard]] std::size_t group_count() const { return groups_.size(); }

  /// Total (trial, engine) deliveries — each delivery beyond the publisher
  /// is one full trial's worth of measurement a peer did not have to make.
  [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }
  [[nodiscard]] std::uint64_t published() const { return published_; }

  /// Measurements saved: deliveries to engines other than publishers.
  [[nodiscard]] std::uint64_t trials_saved() const {
    return deliveries_ - published_;
  }

 private:
  std::map<std::string, std::vector<DecisionEngine*>> groups_;
  ValleyStore* store_ = nullptr;  // borrowed; optional shared-knowledge bridge
  std::uint64_t deliveries_ = 0;
  std::uint64_t published_ = 0;
};

}  // namespace drongo::core
