#include "core/decision.hpp"

#include <istream>
#include <ostream>

#include "net/error.hpp"
#include "net/strings.hpp"

namespace drongo::core {

DecisionEngine::DecisionEngine(DrongoParams params, std::uint64_t seed)
    : params_(params), rng_(seed) {
  if (params_.valley_threshold <= 0.0 || params_.valley_threshold > 1.0) {
    throw net::InvalidArgument("valley threshold must be in (0, 1]");
  }
  if (params_.min_valley_frequency < 0.0 || params_.min_valley_frequency > 1.0) {
    throw net::InvalidArgument("valley frequency must be in [0, 1]");
  }
}

void DecisionEngine::observe(const measure::TrialRecord& trial) {
  const auto note = [this](const char* name) {
    if (registry_ != nullptr) registry_->add(name);
  };
  if (trial.failed()) {
    // A failed trial carries no measurements: nothing to learn, and it must
    // not perturb existing windows. Counted so operators can see how much
    // training signal a lossy campaign lost.
    ++skipped_trials_;
    note("core.engine.trials_skipped");
    return;
  }
  note("core.engine.trials_observed");
  auto& domain_windows = windows_[net::to_lower(trial.domain)];
  for (const auto& hop : trial.hops) {
    if (!hop.usable) continue;
    const auto ratio = latency_ratio(trial, hop, params_.convention);
    if (!ratio) {
      // Degraded trial for this hop (its HR resolution or measurement is
      // missing): an existing window records the miss but keeps its ratio
      // history intact — stale evidence beats fabricated evidence.
      auto it = domain_windows.find(hop.subnet);
      if (it != domain_windows.end()) {
        it->second.add_miss();
        note("core.engine.window_misses");
      }
      continue;
    }
    note("core.engine.ratios_observed");
    // A ratio below vt is the paper's "valley": the hop subnet beat the
    // client's own resolution on this trial.
    if (*ratio < params_.valley_threshold) note("core.engine.valleys_observed");
    auto [it, inserted] =
        domain_windows.try_emplace(hop.subnet, TrainingWindow(params_.window_size));
    it->second.add(*ratio);
  }
  if (registry_ != nullptr) {
    registry_->gauge("core.engine.tracked_windows",
                     static_cast<std::int64_t>(tracked_windows()));
  }
}

std::optional<net::Prefix> DecisionEngine::choose(const std::string& domain) {
  auto it = windows_.find(net::to_lower(domain));
  if (it == windows_.end()) {
    if (registry_ != nullptr) registry_->add("core.engine.choices.own_subnet");
    return std::nullopt;
  }

  double best_vf = -1.0;
  std::vector<net::Prefix> best;
  for (const auto& [subnet, window] : it->second) {
    if (!window.full()) continue;
    const double vf = window.valley_frequency(params_.valley_threshold);
    if (vf < params_.min_valley_frequency || vf <= 0.0) continue;
    if (vf > best_vf) {
      best_vf = vf;
      best.clear();
    }
    if (vf == best_vf) best.push_back(subnet);
  }
  if (best.empty()) {
    if (registry_ != nullptr) registry_->add("core.engine.choices.own_subnet");
    return std::nullopt;
  }
  // Highest valley frequency wins; ties are broken randomly (§4.3).
  if (registry_ != nullptr) registry_->add("core.engine.choices.assimilate");
  return best[rng_.index(best.size())];
}

std::vector<DecisionEngine::Candidate> DecisionEngine::candidates(
    const std::string& domain) const {
  std::vector<Candidate> out;
  auto it = windows_.find(net::to_lower(domain));
  if (it == windows_.end()) return out;
  for (const auto& [subnet, window] : it->second) {
    Candidate c;
    c.subnet = subnet;
    c.valley_frequency = window.valley_frequency(params_.valley_threshold);
    c.observations = window.size();
    c.qualified = window.full() && c.valley_frequency >= params_.min_valley_frequency &&
                  c.valley_frequency > 0.0;
    out.push_back(c);
  }
  return out;
}

std::size_t DecisionEngine::tracked_windows() const {
  std::size_t n = 0;
  for (const auto& [domain, subnets] : windows_) n += subnets.size();
  return n;
}

namespace {
constexpr const char* kStateMagic = "drongo-engine-v1";
}

void DecisionEngine::save(std::ostream& out) const {
  out.precision(17);
  out << kStateMagic << "\n";
  for (const auto& [domain, subnets] : windows_) {
    for (const auto& [subnet, window] : subnets) {
      out << "w|" << domain << "|" << subnet.to_string();
      for (double ratio : window.ratios()) {
        out << "|" << ratio;
      }
      out << "\n";
    }
  }
}

void DecisionEngine::load(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kStateMagic) {
    throw net::ParseError("engine state missing magic header");
  }
  decltype(windows_) restored;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto fields = net::split(line, '|');
    if (fields.size() < 3 || fields[0] != "w") {
      throw net::ParseError("bad engine state line: " + line);
    }
    const std::string& domain = fields[1];
    const net::Prefix subnet = net::Prefix::must_parse(fields[2]);
    auto [it, inserted] =
        restored[domain].try_emplace(subnet, TrainingWindow(params_.window_size));
    for (std::size_t i = 3; i < fields.size(); ++i) {
      try {
        std::size_t used = 0;
        const double ratio = std::stod(fields[i], &used);
        if (used != fields[i].size()) throw std::invalid_argument(fields[i]);
        it->second.add(ratio);  // window truncates to capacity by itself
      } catch (const std::exception&) {
        throw net::ParseError("bad ratio '" + fields[i] + "' in engine state");
      }
    }
  }
  windows_ = std::move(restored);
}

}  // namespace drongo::core
