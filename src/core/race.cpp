#include "core/race.hpp"

#include <algorithm>

#include "net/error.hpp"

namespace drongo::core {

ReplicaRacer::ReplicaRacer(RaceConfig config) : config_(config) {
  if (config_.k < 0) throw net::InvalidArgument("race k must be >= 0");
}

RaceResult ReplicaRacer::race(topology::World& world, net::Ipv4Addr client,
                              const std::vector<net::Ipv4Addr>& replicas,
                              net::Rng& rng) const {
  if (replicas.empty()) throw net::InvalidArgument("cannot race an empty answer");
  const std::size_t field_size =
      std::min(replicas.size(), static_cast<std::size_t>(std::max(config_.k, 1)));

  RaceResult result;
  result.contestants.assign(replicas.begin(),
                            replicas.begin() + static_cast<std::ptrdiff_t>(field_size));
  result.rtts_ms.reserve(field_size);
  for (net::Ipv4Addr replica : result.contestants) {
    result.rtts_ms.push_back(measure::ping_ms(world, client, replica, rng, config_.ping));
  }
  // Strict < keeps ties on the earliest (CDN-preferred) contestant.
  result.winner_index = static_cast<std::size_t>(
      std::min_element(result.rtts_ms.begin(), result.rtts_ms.end()) -
      result.rtts_ms.begin());

  races_.fetch_add(1, std::memory_order_relaxed);
  if (result.switched()) {
    switched_.fetch_add(1, std::memory_order_relaxed);
  } else {
    wins_first_.fetch_add(1, std::memory_order_relaxed);
  }
  if (registry_ != nullptr) {
    registry_->add("core.gwtw.races");
    registry_->add(result.switched() ? "core.gwtw.switched" : "core.gwtw.wins_first");
    registry_->observe_ms("core.gwtw.winner_rtt_ms", result.winner_rtt_ms());
  }
  return result;
}

}  // namespace drongo::core
