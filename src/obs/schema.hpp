// The one counter schema shared by every layer that tallies client health.
//
// Before obs existed, dns::ResolverStats and measure::HealthCounters each
// enumerated the same nine counters by hand — in their field lists, their
// add/operator+= bodies, the dataset writer, AND the dataset parser. One
// new counter meant five edits and four chances for a silent mismatch.
// These X-macro lists are now the single source of truth: the structs
// declare their fields from them, the merge operators fold from them, the
// dataset format iterates them, and the obs::Registry mirror names them.
// Order matters: it IS the dataset v2 `health|` line field order.
#pragma once

#include <cstdint>
#include <string>

namespace drongo::obs {

/// What a stub resolver endures: one X(field) per counter, in dataset
/// order. Extending this list automatically extends ResolverStats,
/// HealthCounters, their aggregation, and the obs metric names — but it
/// also appends a field to the dataset `health|` line, so bump the dataset
/// magic when you touch it.
#define DRONGO_OBS_RESOLVER_COUNTERS(X) \
  X(queries)                            \
  X(retries)                            \
  X(timeouts)                           \
  X(unreachable)                        \
  X(validation_failures)                \
  X(server_failures)                    \
  X(tcp_fallbacks)                      \
  X(deadline_exceeded)                  \
  X(failed_queries)

/// Trial-level health = resolver counters plus the trial's own tallies.
#define DRONGO_OBS_HEALTH_COUNTERS(X) \
  DRONGO_OBS_RESOLVER_COUNTERS(X)     \
  X(hop_resolution_failures)

/// What the serving-path answer cache tallies: one X(field) per counter.
/// dns::CacheStats declares its fields from this list, the sharded cache
/// aggregates over it, and the obs mirror names each `dns.cache.<field>`.
/// Unlike the resolver counters these never enter the dataset format, so
/// extending the list is free of format concerns.
#define DRONGO_OBS_CACHE_COUNTERS(X) \
  X(hits)                            \
  X(negative_hits)                   \
  X(misses)                          \
  X(inserts)                         \
  X(negative_inserts)                \
  X(evictions)                       \
  X(expired)                         \
  X(coalesced)                       \
  X(coalesce_leaders)                \
  X(foreign_family_drops)

/// What the radix LPM scope index underneath the answer cache tallies: one
/// X(field) per counter. dns::LpmStats declares its fields from this list
/// and the obs mirror names each `dns.lpm.<field>`. `node_visits` is the
/// cost currency of the index — total radix nodes touched across lookups —
/// so visits/lookup stays observable and a regression back toward a linear
/// scan shows up in telemetry, not just the bench.
#define DRONGO_OBS_LPM_COUNTERS(X) \
  X(lookups)                       \
  X(node_visits)                   \
  X(inserts)                       \
  X(erases)

/// What the crowd-shared valley knowledge base tallies: one X(field) per
/// counter. core::ValleyStoreStats declares its fields from this list and
/// the obs mirror names each `core.valley_store.<field>`. All counters are
/// commutative sums, so aggregation order (thread count) never shows.
#define DRONGO_OBS_VALLEY_STORE_COUNTERS(X) \
  X(contributions)                          \
  X(valley_observations)                    \
  X(lookups)                                \
  X(shared_hits)                            \
  X(shared_misses)

/// What the CoDel-style serving-path admission controller tallies: one
/// X(field) per counter. cdn::CodelStats declares its fields from this list
/// and the obs mirror names each `cdn.serving.codel.<field>`. `dropped`
/// counts every shed arrival; `sloughed` is the subset shed by the
/// overload rule (sojourn past 2x target) rather than the sqrt schedule.
#define DRONGO_OBS_CODEL_COUNTERS(X) \
  X(offered)                         \
  X(admitted)                        \
  X(dropped)                         \
  X(sloughed)

/// What a netio::EventLoop tallies: one X(field) per counter. The loop
/// names each `netio.<field>` in its registry mirror. `polls` counts
/// epoll_wait returns, `events` readiness callbacks dispatched, `timers`
/// deadline timers fired, `wakeups` eventfd cross-thread pokes drained,
/// and `tasks` posted closures executed on the loop thread.
#define DRONGO_OBS_NETIO_COUNTERS(X) \
  X(polls)                           \
  X(events)                          \
  X(timers)                          \
  X(wakeups)                         \
  X(tasks)

/// What the socket-facing DNS daemon tallies: one X(field) per counter.
/// dns::DaemonStats declares its fields from this list and the obs mirror
/// names each `dns.server.<field>`. `udp_batches` counts recvmmsg calls
/// that returned at least one datagram, so udp_queries/udp_batches is the
/// observable syscall-amortization ratio the batching exists to maximize;
/// pcache_hits/pcache_misses track the per-listener whole-packet cache
/// (hits never reach the resolver at all).
#define DRONGO_OBS_DNS_SERVER_COUNTERS(X) \
  X(udp_queries)                          \
  X(udp_responses)                        \
  X(udp_batches)                          \
  X(tcp_connections)                      \
  X(tcp_queries)                          \
  X(tcp_responses)                        \
  X(truncated)                            \
  X(malformed)                            \
  X(handler_failures)                     \
  X(pcache_hits)                          \
  X(pcache_misses)                        \
  X(drained)

/// Declares the schema fields inside a struct body.
#define DRONGO_OBS_DECLARE_FIELD(field) std::uint64_t field = 0;

/// Canonical metric name for a schema field under `prefix` (which should
/// end with '.'), e.g. counter_name("dns.resolver.", "retries").
inline std::string counter_name(const char* prefix, const char* field) {
  return std::string(prefix) + field;
}

}  // namespace drongo::obs
