#include "obs/export.hpp"

#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace drongo::obs {

namespace {

using jsonio::format_double;

std::string json_escape(const std::string& text) { return jsonio::escape(text); }

/// Prometheus metric name: `drongo_` prefix, [a-zA-Z0-9_] body.
std::string prom_name(const std::string& name) {
  std::string out = "drongo_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

void write_jsonl(std::ostream& out, const Snapshot& snapshot,
                 const ExportOptions& options) {
  for (const auto& [name, value] : snapshot.counters) {
    out << "{\"type\":\"counter\",\"name\":\"" << json_escape(name)
        << "\",\"value\":" << value << "}\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out << "{\"type\":\"gauge\",\"name\":\"" << json_escape(name)
        << "\",\"value\":" << value << "}\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    out << "{\"type\":\"histogram\",\"name\":\"" << json_escape(name)
        << "\",\"count\":" << h.count << ",\"sum_ms\":" << format_double(h.sum_ms())
        << ",\"min_ms\":" << format_double(h.min)
        << ",\"max_ms\":" << format_double(h.max)
        << ",\"p50_ms\":" << format_double(h.percentile(50.0))
        << ",\"p90_ms\":" << format_double(h.percentile(90.0))
        << ",\"p99_ms\":" << format_double(h.percentile(99.0)) << ",\"bounds_ms\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i != 0) out << ',';
      out << format_double(h.bounds[i]);
    }
    out << "],\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i != 0) out << ',';
      out << h.buckets[i];
    }
    out << "]}\n";
  }
  for (const auto& [name, s] : snapshot.spans) {
    out << "{\"type\":\"span\",\"name\":\"" << json_escape(name)
        << "\",\"count\":" << s.count << ",\"max_depth\":" << s.max_depth;
    if (options.include_span_timings) {
      out << ",\"total_ms\":"
          << format_double(static_cast<double>(s.total_ticks) / 1e6);
    }
    out << "}\n";
  }
}

void write_prometheus(std::ostream& out, const Snapshot& snapshot,
                      const ExportOptions& options) {
  for (const auto& [name, value] : snapshot.counters) {
    const std::string metric = prom_name(name);
    out << "# TYPE " << metric << " counter\n" << metric << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string metric = prom_name(name);
    out << "# TYPE " << metric << " gauge\n" << metric << ' ' << value << '\n';
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string metric = prom_name(name) + "_ms";
    out << "# TYPE " << metric << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      out << metric << "_bucket{le=\""
          << (i < h.bounds.size() ? format_double(h.bounds[i]) : "+Inf") << "\"} "
          << cumulative << '\n';
    }
    out << metric << "_sum " << format_double(h.sum_ms()) << '\n'
        << metric << "_count " << h.count << '\n';
  }
  for (const auto& [name, s] : snapshot.spans) {
    const std::string metric = prom_name(name) + "_span";
    out << "# TYPE " << metric << "_count counter\n"
        << metric << "_count " << s.count << '\n'
        << "# TYPE " << metric << "_max_depth gauge\n"
        << metric << "_max_depth " << s.max_depth << '\n';
    if (options.include_span_timings) {
      out << "# TYPE " << metric << "_total_ms gauge\n"
          << metric << "_total_ms "
          << format_double(static_cast<double>(s.total_ticks) / 1e6) << '\n';
    }
  }
}

std::string to_jsonl(const Snapshot& snapshot, const ExportOptions& options) {
  std::ostringstream out;
  write_jsonl(out, snapshot, options);
  return out.str();
}

}  // namespace drongo::obs
