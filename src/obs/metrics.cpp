#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "net/error.hpp"
#include "obs/span.hpp"

namespace drongo::obs {

namespace {

/// Monotonic registry id source; ids are never reused, so a thread-local
/// cache entry keyed on (pointer, id) cannot alias a successor registry
/// allocated at the same address.
std::atomic<std::uint64_t> g_next_registry_id{1};

std::uint64_t ticks_of_ms(double value_ms) {
  if (!(value_ms > 0.0)) return 0;  // NaN and negatives contribute nothing
  return static_cast<std::uint64_t>(std::llround(value_ms * 1000.0));
}

}  // namespace

const std::vector<double>& default_latency_bounds_ms() {
  static const std::vector<double> kBounds = {
      0.05, 0.1,  0.25, 0.5,  1.0,   2.5,   5.0,    10.0,
      25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0};
  return kBounds;
}

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(count - 1);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    const double first_rank = static_cast<double>(cumulative);
    const double last_rank = static_cast<double>(cumulative + in_bucket - 1);
    if (rank <= last_rank || cumulative + in_bucket == count) {
      // Values are assumed evenly spread across the bucket span; the
      // extreme buckets are clamped to the observed min/max so an outlier
      // cannot drag the estimate past real data.
      double lo = i == 0 ? min : bounds[i - 1];
      double hi = i < bounds.size() ? bounds[i] : max;
      lo = std::max(lo, min);
      hi = std::min(hi, max);
      if (hi <= lo || in_bucket == 1) return std::clamp((lo + hi) / 2.0, min, max);
      const double frac =
          std::clamp((rank - first_rank) / static_cast<double>(in_bucket - 1), 0.0, 1.0);
      return lo + (hi - lo) * frac;
    }
    cumulative += in_bucket;
  }
  return max;
}

Registry::Registry() : id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)) {}

Registry::~Registry() = default;

Registry::ThreadSink& Registry::local() {
  // One cache slot per thread: re-registering on registry switches is
  // harmless (sums merge), while the id check makes stale entries inert.
  struct Cache {
    const Registry* registry = nullptr;
    std::uint64_t id = 0;
    ThreadSink* sink = nullptr;
  };
  thread_local Cache cache;
  if (cache.registry == this && cache.id == id_) return *cache.sink;
  std::lock_guard lock(mutex_);
  sinks_.push_back(std::make_unique<ThreadSink>());
  cache = {this, id_, sinks_.back().get()};
  return *cache.sink;
}

void Registry::add(std::string_view name, std::uint64_t delta) {
  auto& counters = local().counters;
  auto it = counters.find(name);
  if (it == counters.end()) {
    counters.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void Registry::gauge(std::string_view name, std::int64_t value) {
  auto& gauges = local().gauges;
  auto it = gauges.find(name);
  if (it == gauges.end()) {
    gauges.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

const std::vector<double>& Registry::bounds_of(std::string_view name) const {
  std::lock_guard lock(mutex_);
  auto it = declared_bounds_.find(name);
  return it == declared_bounds_.end() ? default_latency_bounds_ms() : it->second;
}

void Registry::declare_histogram(std::string_view name, std::vector<double> bounds_ms) {
  if (bounds_ms.empty()) {
    throw net::InvalidArgument("histogram '" + std::string(name) + "' needs >= 1 bound");
  }
  if (!std::is_sorted(bounds_ms.begin(), bounds_ms.end())) {
    throw net::InvalidArgument("histogram '" + std::string(name) +
                               "' bounds must ascend");
  }
  std::lock_guard lock(mutex_);
  declared_bounds_.try_emplace(std::string(name), std::move(bounds_ms));
}

void Registry::observe_ms(std::string_view name, double value_ms) {
  auto& histograms = local().histograms;
  auto it = histograms.find(name);
  if (it == histograms.end()) {
    HistogramData data;
    data.bounds = &bounds_of(name);
    data.buckets.assign(data.bounds->size() + 1, 0);
    it = histograms.emplace(std::string(name), std::move(data)).first;
  }
  HistogramData& h = it->second;
  const auto bucket = static_cast<std::size_t>(
      std::upper_bound(h.bounds->begin(), h.bounds->end(), value_ms) -
      h.bounds->begin());
  ++h.buckets[bucket];
  h.sum_ticks += ticks_of_ms(value_ms);
  if (h.count == 0) {
    h.min = h.max = value_ms;
  } else {
    h.min = std::min(h.min, value_ms);
    h.max = std::max(h.max, value_ms);
  }
  ++h.count;
}

void Registry::set_span_clock(SpanClock* clock) {
  std::lock_guard lock(mutex_);
  span_clock_ = clock;
}

std::uint64_t Registry::span_now() const {
  SpanClock* clock = nullptr;
  {
    std::lock_guard lock(mutex_);
    clock = span_clock_;
  }
  if (clock != nullptr) return clock->now_ticks();
  return static_cast<std::uint64_t>(wall_.seconds() * 1e9);
}

std::uint64_t Registry::span_enter() { return local().open_spans++; }

void Registry::span_exit(const std::string& name, std::uint64_t start_ticks,
                         std::uint64_t depth) {
  ThreadSink& sink = local();
  if (sink.open_spans > 0) --sink.open_spans;
  const std::uint64_t now = span_now();
  SpanData& span = sink.spans[name];
  ++span.count;
  span.total_ticks += now >= start_ticks ? now - start_ticks : 0;
  span.max_depth = std::max(span.max_depth, depth);
}

Snapshot Registry::snapshot() const {
  std::lock_guard lock(mutex_);
  Snapshot merged;
  for (const auto& sink : sinks_) {
    for (const auto& [name, value] : sink->counters) {
      merged.counters[name] += value;
    }
    for (const auto& [name, value] : sink->gauges) {
      auto [it, fresh] = merged.gauges.try_emplace(name, value);
      if (!fresh) it->second = std::max(it->second, value);
    }
    for (const auto& [name, data] : sink->histograms) {
      auto [it, fresh] = merged.histograms.try_emplace(name);
      HistogramSnapshot& h = it->second;
      if (fresh) {
        h.bounds = *data.bounds;
        h.buckets.assign(data.buckets.size(), 0);
      }
      for (std::size_t i = 0; i < data.buckets.size(); ++i) {
        h.buckets[i] += data.buckets[i];
      }
      h.sum_ticks += data.sum_ticks;
      if (h.count == 0) {
        h.min = data.min;
        h.max = data.max;
      } else if (data.count > 0) {
        h.min = std::min(h.min, data.min);
        h.max = std::max(h.max, data.max);
      }
      h.count += data.count;
    }
    for (const auto& [name, data] : sink->spans) {
      SpanSnapshot& s = merged.spans[name];
      s.count += data.count;
      s.total_ticks += data.total_ticks;
      s.max_depth = std::max(s.max_depth, data.max_depth);
    }
  }
  return merged;
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  for (const auto& sink : sinks_) {
    sink->counters.clear();
    sink->gauges.clear();
    sink->histograms.clear();
    sink->spans.clear();
    sink->open_spans = 0;
  }
}

}  // namespace drongo::obs
