// Machine-readable bench reports: the BENCH_*.json perf trajectory files.
//
// A BenchReport is a flat string->value map (integers, doubles, strings,
// booleans) stamped with a schema version and the bench name, serialised
// as a single sorted-key JSON object. Benches fill one in alongside their
// human-readable output and write it next to the working directory (or
// wherever DRONGO_BENCH_OUT points), so CI can diff perf numbers across
// commits without scraping stdout.
//
// Unlike the metrics exports, a bench report MAY contain wall-clock
// figures — that is its whole point. Determinism here means only that the
// same field values serialise to the same bytes (sorted keys, shortest
// round-trip doubles).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace drongo::obs {

/// Current report schema identifier, embedded as the "schema" field.
inline constexpr const char* kBenchReportSchema = "drongo-bench-report-v1";

class BenchReport {
 public:
  /// `bench_name` becomes the "bench" field and the default file name
  /// (BENCH_<bench_name>.json).
  explicit BenchReport(std::string bench_name);

  void set_integer(std::string_view key, std::int64_t value);
  void set_number(std::string_view key, double value);
  void set_string(std::string_view key, std::string_view value);
  void set_bool(std::string_view key, bool value);

  /// The full report as one sorted-key JSON object (single line + '\n').
  [[nodiscard]] std::string to_json() const;

  /// Writes to_json() to `path`, replacing any existing file.
  void write_file(const std::string& path) const;

  /// Where this report should land: $DRONGO_BENCH_OUT if set (a file path,
  /// used verbatim), else BENCH_<bench_name>.json in the working directory.
  [[nodiscard]] std::string default_path() const;

 private:
  struct Value {
    enum class Kind { kInteger, kNumber, kString, kBool } kind;
    std::int64_t integer = 0;
    double number = 0.0;
    std::string text;
    bool flag = false;
  };

  std::string bench_name_;
  std::map<std::string, Value> fields_;
};

/// Checks that `path` holds a structurally valid report: one JSON object
/// with string keys, a "schema" field equal to kBenchReportSchema, and a
/// non-empty "bench" field. Returns an empty string on success, else a
/// human-readable description of the first problem found.
std::string validate_bench_report_file(const std::string& path);

/// As above, but additionally enforces per-bench key schemas: when the
/// report's "bench" field has an entry in `required_by_bench`, every listed
/// key must be present in the report. Benches without an entry validate
/// structurally only — the map is how check_bench_report knows, e.g., that
/// a BENCH_daemon.json without a `qps` field is trend-data rot, not just an
/// unusual run.
std::string validate_bench_report_file(
    const std::string& path,
    const std::map<std::string, std::vector<std::string>>& required_by_bench);

}  // namespace drongo::obs
