#include "obs/span.hpp"

namespace drongo::obs {

Span::Span(Registry* registry, std::string_view name)
    : registry_(registry), name_(name) {
  if (registry_ == nullptr) return;
  depth_ = registry_->span_enter();
  start_ticks_ = registry_->span_now();
}

Span::~Span() {
  if (registry_ == nullptr) return;
  registry_->span_exit(name_, start_ticks_, depth_);
}

}  // namespace drongo::obs
