// Lightweight trace spans over the obs::Registry.
//
// A Span is a RAII scope: construction records the start tick and nesting
// depth of the calling thread, destruction folds (count, elapsed ticks,
// max depth) into the thread's sink under the span's name. Names are FLAT
// ("measure.trial", not "campaign/trial"): a nested path would encode which
// thread happened to run the work — a serial campaign runs trials inside
// the campaign span, a parallel one runs them on workers with no ambient
// parent — and that must never leak into a deterministic report. Nesting
// is still visible through max_depth.
//
// Time source: a pluggable SpanClock. Production uses the registry's
// net::Stopwatch (wall time — real but nondeterministic, so exports omit
// span timings by default); tests install a ManualSpanClock to make
// timings exact. Ticks are opaque; by convention 1 tick = 1 nanosecond.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace drongo::obs {

/// Abstract monotonic tick source for span timing.
class SpanClock {
 public:
  virtual ~SpanClock() = default;
  [[nodiscard]] virtual std::uint64_t now_ticks() const = 0;
};

/// A hand-cranked clock for tests: time moves only when advance() is
/// called, so span durations are exact, not "roughly elapsed wall time".
class ManualSpanClock : public SpanClock {
 public:
  [[nodiscard]] std::uint64_t now_ticks() const override {
    return ticks_.load(std::memory_order_relaxed);
  }
  void advance(std::uint64_t ticks) { ticks_.fetch_add(ticks, std::memory_order_relaxed); }
  void set(std::uint64_t ticks) { ticks_.store(ticks, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> ticks_{0};
};

/// RAII timed scope. A null registry makes the span a no-op, so call sites
/// never need to branch on whether telemetry is attached.
class Span {
 public:
  Span(Registry* registry, std::string_view name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Registry* registry_;
  std::string name_;
  std::uint64_t start_ticks_ = 0;
  std::uint64_t depth_ = 0;
};

}  // namespace drongo::obs
