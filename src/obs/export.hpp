// Snapshot serialisation: JSON-lines (one metric object per line) and
// Prometheus text exposition format.
//
// Both writers emit metrics in the snapshot's canonical sorted order and
// format every number deterministically (integers as integers, doubles via
// shortest-round-trip std::to_chars), so two snapshots that compare equal
// serialise to byte-identical output — the property `drongo_sim
// --metrics-out` is tested on under DRONGO_THREADS=1 vs 8.
//
// Span wall timings are the one nondeterministic quantity the registry
// holds; ExportOptions excludes them by default so the default export is
// reproducible. Span counts and max nesting depth are deterministic and
// always included.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"

namespace drongo::obs {

struct ExportOptions {
  /// Include span total_ms in the output. Off by default: span totals are
  /// wall time unless a ManualSpanClock is installed, and wall time must
  /// never appear in an export that claims to be deterministic.
  bool include_span_timings = false;
};

/// Writes one JSON object per line: counters, then gauges, then histograms
/// (with bounds, buckets, and p50/p90/p99 estimates), then spans.
void write_jsonl(std::ostream& out, const Snapshot& snapshot,
                 const ExportOptions& options = {});

/// Writes Prometheus text exposition format. Metric names are the snapshot
/// names with '.' and '-' mapped to '_' and a `drongo_` prefix; histograms
/// expand to the conventional _bucket/_sum/_count series.
void write_prometheus(std::ostream& out, const Snapshot& snapshot,
                      const ExportOptions& options = {});

/// write_jsonl into a string (convenience for tests and snapshot diffing).
std::string to_jsonl(const Snapshot& snapshot, const ExportOptions& options = {});

}  // namespace drongo::obs
