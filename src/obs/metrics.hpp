// Deterministic telemetry: named counters, gauges, and fixed-bucket latency
// histograms, collected in per-thread sinks and merged in canonical order.
//
// The design target is the same property the campaign engine guarantees for
// trial records: a metrics snapshot taken after a campaign is byte-identical
// whether the campaign ran serially or on any number of workers. That falls
// out of three rules:
//
//   1. every recorded value is deterministic (simulated milliseconds,
//      event counts — never wall-clock durations; those live in spans and
//      are excluded from deterministic exports),
//   2. every merge is commutative and associative (integer sums, min/max;
//      histogram sums accumulate in integer microsecond ticks so floating
//      addition order can never change a bit),
//   3. the merged snapshot is emitted in sorted name order, never in sink
//      or thread order.
//
// Hot-path writes go to a lock-free-for-the-owner thread-local sink; the
// registry mutex is only taken to register a sink, declare a histogram, or
// snapshot. Snapshots require quiescence (join your workers first), exactly
// like reading the records vector of a ParallelCampaignRunner.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "net/clock.hpp"

namespace drongo::obs {

class SpanClock;

/// Default histogram buckets: latency-shaped upper bounds in milliseconds,
/// 50 us to 5 s, roughly 1-2.5-5 per decade. An implicit +inf bucket always
/// follows the last bound.
const std::vector<double>& default_latency_bounds_ms();

/// One merged histogram: counts per bucket plus order-independent scalars.
struct HistogramSnapshot {
  /// Upper bounds (ascending); buckets has bounds.size() + 1 entries, the
  /// last being the +inf overflow bucket.
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  /// Sum in integer microsecond ticks (value_ms * 1000, rounded): integer
  /// addition commutes, so parallel merges cannot perturb low bits.
  std::uint64_t sum_ticks = 0;
  double min = 0.0;
  double max = 0.0;

  [[nodiscard]] double sum_ms() const { return static_cast<double>(sum_ticks) / 1000.0; }
  [[nodiscard]] double mean_ms() const {
    return count == 0 ? 0.0 : sum_ms() / static_cast<double>(count);
  }

  /// Estimated percentile, p in [0, 100], using the same rank convention as
  /// measure::percentile (linear interpolation at rank p/100 * (n-1)) with
  /// values assumed evenly spread within their bucket and the extreme
  /// buckets clamped to the observed min/max. Agreement with the exact
  /// sorted-sample percentile is therefore bounded by one bucket width.
  [[nodiscard]] double percentile(double p) const;
};

/// One span aggregate: how often it ran, total ticks (clock-dependent; see
/// span.hpp), and the deepest nesting it was observed at.
struct SpanSnapshot {
  std::uint64_t count = 0;
  std::uint64_t total_ticks = 0;
  std::uint64_t max_depth = 0;
};

/// A merged, canonically ordered view of everything a Registry collected.
/// std::map keys give the sorted, stable order the exports rely on.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  std::map<std::string, SpanSnapshot> spans;
};

/// The collection hub. Layers hold a `Registry*` that may be null —
/// telemetry is always optional and a null registry costs one branch.
class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Adds `delta` to the named counter (creating it at zero).
  void add(std::string_view name, std::uint64_t delta = 1);

  /// Sets the named gauge for the calling thread. Threads' values merge by
  /// maximum — the only order-independent choice for a "last write wins"
  /// semantic that must not depend on scheduling.
  void gauge(std::string_view name, std::int64_t value);

  /// Records one observation (milliseconds) into the named histogram,
  /// using its declared bounds or default_latency_bounds_ms().
  void observe_ms(std::string_view name, double value_ms);

  /// Declares custom bucket bounds for a histogram. Must happen before any
  /// thread observes into it; ascending, non-empty. First declaration wins.
  void declare_histogram(std::string_view name, std::vector<double> bounds_ms);

  /// Overrides the span clock (borrowed; nullptr restores the wall clock).
  /// Tests install a ManualSpanClock to make span timing deterministic.
  void set_span_clock(SpanClock* clock);

  /// Merges every per-thread sink into one canonical snapshot. Requires
  /// quiescence: no concurrent writers (join campaign workers first).
  [[nodiscard]] Snapshot snapshot() const;

  /// Clears all collected data (sinks stay registered). Same quiescence
  /// requirement as snapshot().
  void reset();

 private:
  friend class Span;

  struct HistogramData {
    const std::vector<double>* bounds = nullptr;  // owned by the registry
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    std::uint64_t sum_ticks = 0;
    double min = 0.0;
    double max = 0.0;
  };
  struct SpanData {
    std::uint64_t count = 0;
    std::uint64_t total_ticks = 0;
    std::uint64_t max_depth = 0;
  };
  /// All the data one thread writes. Only its owner writes it; the registry
  /// reads it under quiescence. Ordered maps keep per-sink iteration (and
  /// thus merge input order) deterministic.
  struct ThreadSink {
    std::map<std::string, std::uint64_t, std::less<>> counters;
    std::map<std::string, std::int64_t, std::less<>> gauges;
    std::map<std::string, HistogramData, std::less<>> histograms;
    std::map<std::string, SpanData, std::less<>> spans;
    std::uint64_t open_spans = 0;  ///< current nesting depth on this thread
  };

  /// The calling thread's sink, registering one on first touch.
  ThreadSink& local();
  /// Bounds for `name`: declared ones or the default set.
  const std::vector<double>& bounds_of(std::string_view name) const;

  // Span plumbing (used by obs::Span).
  std::uint64_t span_now() const;
  std::uint64_t span_enter();
  void span_exit(const std::string& name, std::uint64_t start_ticks,
                 std::uint64_t depth);

  /// Process-unique id: thread-local caches key on it, so a stale cache
  /// entry for a destroyed registry can never alias a new one.
  const std::uint64_t id_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadSink>> sinks_;
  std::map<std::string, std::vector<double>, std::less<>> declared_bounds_;
  SpanClock* span_clock_ = nullptr;  // borrowed; nullptr = wall_
  net::Stopwatch wall_;
};

}  // namespace drongo::obs
