// Tiny shared JSON emission helpers for the obs writers. Not a JSON
// library — just the two primitives whose formatting must be identical
// everywhere for byte-stable output.
#pragma once

#include <charconv>
#include <cstdio>
#include <string>
#include <system_error>

namespace drongo::obs::jsonio {

/// Shortest round-trip decimal form of a double: deterministic for a given
/// bit pattern and immune to locale/stream precision settings.
inline std::string format_double(double value) {
  char buffer[64];
  auto [end, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
  if (ec != std::errc{}) return "0";
  return std::string(buffer, end);
}

/// Escapes a string for use inside JSON double quotes.
inline std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace drongo::obs::jsonio
