#include "obs/bench_report.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include "net/error.hpp"
#include "obs/json.hpp"

namespace drongo::obs {

BenchReport::BenchReport(std::string bench_name) : bench_name_(std::move(bench_name)) {
  if (bench_name_.empty()) {
    throw net::InvalidArgument("bench report needs a non-empty bench name");
  }
}

void BenchReport::set_integer(std::string_view key, std::int64_t value) {
  Value v;
  v.kind = Value::Kind::kInteger;
  v.integer = value;
  fields_[std::string(key)] = std::move(v);
}

void BenchReport::set_number(std::string_view key, double value) {
  Value v;
  v.kind = Value::Kind::kNumber;
  v.number = value;
  fields_[std::string(key)] = std::move(v);
}

void BenchReport::set_string(std::string_view key, std::string_view value) {
  Value v;
  v.kind = Value::Kind::kString;
  v.text = std::string(value);
  fields_[std::string(key)] = std::move(v);
}

void BenchReport::set_bool(std::string_view key, bool value) {
  Value v;
  v.kind = Value::Kind::kBool;
  v.flag = value;
  fields_[std::string(key)] = std::move(v);
}

std::string BenchReport::to_json() const {
  // "schema" and "bench" are emitted first so a human (or a stream tool
  // reading a prefix) can identify the file; user fields follow sorted.
  std::ostringstream out;
  out << "{\"schema\":\"" << jsonio::escape(kBenchReportSchema) << "\",\"bench\":\""
      << jsonio::escape(bench_name_) << '"';
  for (const auto& [key, value] : fields_) {
    if (key == "schema" || key == "bench") continue;
    out << ",\"" << jsonio::escape(key) << "\":";
    switch (value.kind) {
      case Value::Kind::kInteger: out << value.integer; break;
      case Value::Kind::kNumber: out << jsonio::format_double(value.number); break;
      case Value::Kind::kString: out << '"' << jsonio::escape(value.text) << '"'; break;
      case Value::Kind::kBool: out << (value.flag ? "true" : "false"); break;
    }
  }
  out << "}\n";
  return out.str();
}

void BenchReport::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw net::InvalidArgument("cannot open bench report path: " + path);
  out << to_json();
  if (!out.flush()) throw net::InvalidArgument("failed writing bench report: " + path);
}

std::string BenchReport::default_path() const {
  // drongo-lint: allow(env-knob-drift) — any non-empty string is a valid path; nothing to parse
  if (const char* env = std::getenv("DRONGO_BENCH_OUT"); env != nullptr && *env != '\0') {
    return env;
  }
  return "BENCH_" + bench_name_ + ".json";
}

namespace {

/// Minimal validating scanner for the flat JSON objects BenchReport emits.
/// Not a general parser: nested containers are rejected, which doubles as
/// schema enforcement (reports are flat by design).
class ReportScanner {
 public:
  explicit ReportScanner(const std::string& text) : text_(text) {}

  /// Returns "" on success, else the first problem. Fills schema/bench and,
  /// when `keys` is non-null, the full set of keys seen.
  std::string scan(std::string* schema, std::string* bench,
                   std::set<std::string>* keys = nullptr) {
    skip_ws();
    if (!eat('{')) return err("expected '{'");
    skip_ws();
    if (peek() == '}') {
      ++pos_;
    } else {
      while (true) {
        std::string key;
        if (!scan_string(&key)) return err("expected string key");
        skip_ws();
        if (!eat(':')) return err("expected ':' after key");
        skip_ws();
        std::string string_value;
        bool was_string = false;
        if (!scan_value(&string_value, &was_string)) {
          return err("bad value for key '" + key + "'");
        }
        if (keys != nullptr) keys->insert(key);
        if (was_string && key == "schema") *schema = string_value;
        if (was_string && key == "bench") *bench = string_value;
        skip_ws();
        if (eat(',')) {
          skip_ws();
          continue;
        }
        if (eat('}')) break;
        return err("expected ',' or '}'");
      }
    }
    skip_ws();
    if (pos_ != text_.size()) return err("trailing content after object");
    return "";
  }

 private:
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool scan_string(std::string* out) {
    if (!eat('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 't': *out += '\t'; break;
          case 'r': *out += '\r'; break;
          case 'u':
            if (pos_ + 4 > text_.size()) return false;
            pos_ += 4;  // validated as hex-ish, decoded value not needed
            *out += '?';
            break;
          default: return false;
        }
      } else {
        *out += c;
      }
    }
    return false;
  }
  bool scan_value(std::string* string_value, bool* was_string) {
    *was_string = false;
    const char c = peek();
    if (c == '"') {
      *was_string = true;
      return scan_string(string_value);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return true;
    }
    // Number: [-]digits[.digits][e[+-]digits]
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    return pos_ > start;
  }
  std::string err(const std::string& what) const {
    return what + " at offset " + std::to_string(pos_);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string validate_bench_report_file(const std::string& path) {
  return validate_bench_report_file(path, {});
}

std::string validate_bench_report_file(
    const std::string& path,
    const std::map<std::string, std::vector<std::string>>& required_by_bench) {
  std::ifstream in(path);
  if (!in) return "cannot open: " + path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  if (text.empty()) return "empty file: " + path;

  std::string schema;
  std::string bench;
  std::set<std::string> keys;
  ReportScanner scanner(text);
  if (std::string problem = scanner.scan(&schema, &bench, &keys); !problem.empty()) {
    return problem;
  }
  if (schema != kBenchReportSchema) {
    return "schema mismatch: expected '" + std::string(kBenchReportSchema) +
           "', got '" + schema + "'";
  }
  if (bench.empty()) return "missing or empty 'bench' field";
  if (const auto it = required_by_bench.find(bench); it != required_by_bench.end()) {
    for (const std::string& required : it->second) {
      if (keys.count(required) == 0) {
        return "bench '" + bench + "' report is missing required field '" + required +
               "'";
      }
    }
  }
  return "";
}

}  // namespace drongo::obs
