#include "dns/udp.hpp"

#include "dns/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/error.hpp"

namespace drongo::dns {

namespace {
constexpr std::size_t kMaxDatagram = 65535;

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}
}  // namespace

UdpSocket::UdpSocket(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) {
    throw net::Error(std::string("socket(): ") + std::strerror(errno));
  }
  sockaddr_in addr = loopback(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    throw net::Error(std::string("bind(): ") + std::strerror(saved));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    throw net::Error(std::string("getsockname(): ") + std::strerror(saved));
  }
  port_ = ntohs(addr.sin_port);
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

UdpSocket::UdpSocket(UdpSocket&& other) noexcept : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

void UdpSocket::set_receive_timeout(int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    throw net::Error(std::string("setsockopt(SO_RCVTIMEO): ") + std::strerror(errno));
  }
}

void UdpSocket::send_to(std::uint16_t dest_port, std::span<const std::uint8_t> data) {
  sockaddr_in addr = loopback(dest_port);
  const ssize_t sent = ::sendto(fd_, data.data(), data.size(), 0,
                                reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (sent < 0 || static_cast<std::size_t>(sent) != data.size()) {
    throw net::Error(std::string("sendto(): ") + std::strerror(errno));
  }
}

std::vector<std::uint8_t> UdpSocket::receive_from(std::uint16_t& from_port) {
  std::vector<std::uint8_t> buffer(kMaxDatagram);
  sockaddr_in from{};
  socklen_t from_len = sizeof(from);
  const ssize_t n = ::recvfrom(fd_, buffer.data(), buffer.size(), 0,
                               reinterpret_cast<sockaddr*>(&from), &from_len);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      return {};  // timeout
    }
    throw net::Error(std::string("recvfrom(): ") + std::strerror(errno));
  }
  from_port = ntohs(from.sin_port);
  buffer.resize(static_cast<std::size_t>(n));
  return buffer;
}

UdpDnsServer::UdpDnsServer(DnsServer* server, std::uint16_t port,
                           net::Ipv4Addr server_identity)
    : handler_(server), identity_(server_identity), socket_(port) {
  if (handler_ == nullptr) throw net::InvalidArgument("null DnsServer");
  socket_.set_receive_timeout(50);
  thread_ = std::thread([this] { serve_loop(); });
}

UdpDnsServer::~UdpDnsServer() { stop(); }

void UdpDnsServer::stop() {
  stopping_.store(true);
  if (thread_.joinable()) thread_.join();
}

void UdpDnsServer::serve_loop() {
  while (!stopping_.load()) {
    std::uint16_t peer_port = 0;
    std::vector<std::uint8_t> datagram = socket_.receive_from(peer_port);
    if (datagram.empty()) continue;  // timeout tick
    try {
      const Message query = Message::decode(datagram);
      Message reply = handler_->handle(query, identity_);
      // RFC 1035: a UDP answer must fit the client's advertised payload
      // size; otherwise send it truncated and let the client retry on TCP.
      truncate_to_fit(reply, max_udp_payload(query));
      // Count before sending: a client that has the reply must observe the
      // incremented counter.
      served_.fetch_add(1);
      socket_.send_to(peer_port, reply.encode());
    } catch (const net::Error&) {
      // Malformed datagram or handler failure: drop, as a real UDP DNS
      // server would (the client will time out and retry).
    }
  }
}

UdpDnsClient::UdpDnsClient(int timeout_ms, int attempts)
    : socket_(0), attempts_(attempts < 1 ? 1 : attempts) {
  socket_.set_receive_timeout(timeout_ms);
}

void UdpDnsClient::register_endpoint(net::Ipv4Addr server, std::uint16_t port) {
  endpoints_[server] = port;
}

std::vector<std::uint8_t> UdpDnsClient::exchange(net::Ipv4Addr /*source*/,
                                                 net::Ipv4Addr destination,
                                                 std::span<const std::uint8_t> query) {
  auto it = endpoints_.find(destination);
  if (it == endpoints_.end()) {
    throw net::InvalidArgument("no UDP endpoint registered for " +
                               destination.to_string());
  }
  for (int attempt = 0; attempt < attempts_; ++attempt) {
    socket_.send_to(it->second, query);
    std::uint16_t from_port = 0;
    std::vector<std::uint8_t> reply = socket_.receive_from(from_port);
    if (!reply.empty()) return reply;
  }
  throw net::TimeoutError("DNS query to " + destination.to_string() +
                          " timed out after " + std::to_string(attempts_) + " attempts");
}

}  // namespace drongo::dns
