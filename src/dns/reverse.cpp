#include "dns/reverse.hpp"

#include <charconv>

namespace drongo::dns {

DnsName reverse_pointer_name(net::Ipv4Addr address) {
  std::vector<std::string> labels;
  labels.reserve(6);
  for (int i = 3; i >= 0; --i) {
    labels.push_back(std::to_string(address.octet(i)));
  }
  labels.emplace_back("in-addr");
  labels.emplace_back("arpa");
  return DnsName(std::move(labels));
}

std::optional<net::Ipv4Addr> parse_reverse_pointer(const DnsName& name) {
  const auto& labels = name.labels();
  if (labels.size() != 6 || !name.is_subdomain_of(reverse_zone())) {
    return std::nullopt;
  }
  std::uint32_t bits = 0;
  for (int i = 0; i < 4; ++i) {
    const std::string& label = labels[static_cast<std::size_t>(i)];
    unsigned octet = 0;
    auto [ptr, ec] = std::from_chars(label.data(), label.data() + label.size(), octet);
    if (ec != std::errc{} || ptr != label.data() + label.size() || octet > 255) {
      return std::nullopt;
    }
    // Labels are least-significant octet first.
    bits |= octet << (8 * i);
  }
  return net::Ipv4Addr(bits);
}

const DnsName& reverse_zone() {
  static const DnsName zone = DnsName::must_parse("in-addr.arpa");
  return zone;
}

}  // namespace drongo::dns
