// LDNS proxy: the deployment shell Drongo runs in (paper §4).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "dns/server.hpp"
#include "net/prefix.hpp"
#include "net/rng.hpp"

namespace drongo::dns {

/// Policy hook that decides, per query, which subnet to announce via ECS.
///
/// Returning nullopt means "no assimilation": the proxy announces the
/// client's own /24. Returning a prefix performs subnet assimilation with
/// that prefix. Drongo's decision engine implements this interface.
class SubnetSelector {
 public:
  virtual ~SubnetSelector() = default;

  /// `domain` is the query name; `client_subnet` is the client's own /24.
  virtual std::optional<net::Prefix> select_subnet(const DnsName& domain,
                                                   const net::Prefix& client_subnet) = 0;
};

/// A local DNS proxy that forwards queries to an upstream recursive resolver
/// (the paper uses Google Public DNS), rewriting the ECS option according to
/// a SubnetSelector before forwarding.
///
/// The client configures this proxy as its default resolver ("Drongo sits on
/// top of a client's DNS system ... set by the client as its default local
/// DNS resolver, and acts as a middle party, reshaping outgoing DNS messages
/// via subnet assimilation"). Responses pass back with the upstream's answer
/// order preserved — the proxy never reorders replicas, respecting the CDN's
/// load-balancing decisions.
class LdnsProxy : public DnsServer {
 public:
  /// `upstream_transport` carries the forwarded queries; `upstream_address`
  /// is the recursive resolver to forward to. `selector` may be null, in
  /// which case the proxy is a transparent ECS-adding forwarder. Borrowed
  /// pointers must outlive the proxy.
  LdnsProxy(DnsTransport* upstream_transport, net::Ipv4Addr upstream_address,
            net::Ipv4Addr proxy_address, SubnetSelector* selector);

  Message handle(const Message& query, net::Ipv4Addr source) override;

  /// Counters for observability / tests.
  [[nodiscard]] std::uint64_t forwarded() const { return forwarded_; }
  [[nodiscard]] std::uint64_t assimilated() const { return assimilated_; }
  /// Forwards that failed transiently and were answered SERVFAIL instead.
  [[nodiscard]] std::uint64_t upstream_failures() const { return upstream_failures_; }

  void set_selector(SubnetSelector* selector) { selector_ = selector; }

 private:
  DnsTransport* upstream_;
  net::Ipv4Addr upstream_address_;
  net::Ipv4Addr proxy_address_;
  SubnetSelector* selector_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t assimilated_ = 0;
  std::uint64_t upstream_failures_ = 0;
};

}  // namespace drongo::dns
