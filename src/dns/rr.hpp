// Resource records with typed RDATA.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "dns/name.hpp"
#include "dns/types.hpp"
#include "net/ip.hpp"

namespace drongo::dns {

/// A record: one IPv4 address.
struct ARdata {
  net::Ipv4Addr address;
  friend bool operator==(const ARdata&, const ARdata&) = default;
};

/// CNAME record: canonical name target.
struct CnameRdata {
  DnsName target;
  friend bool operator==(const CnameRdata&, const CnameRdata&) = default;
};

/// NS record: authoritative name server for the owner.
struct NsRdata {
  DnsName nameserver;
  friend bool operator==(const NsRdata&, const NsRdata&) = default;
};

/// PTR record: reverse-DNS name (used by the simulated traceroute hop names).
struct PtrRdata {
  DnsName name;
  friend bool operator==(const PtrRdata&, const PtrRdata&) = default;
};

/// TXT record: one or more character strings.
struct TxtRdata {
  std::vector<std::string> strings;
  friend bool operator==(const TxtRdata&, const TxtRdata&) = default;
};

/// SOA record (minimal: enough to serve negative responses correctly).
struct SoaRdata {
  DnsName mname;
  DnsName rname;
  std::uint32_t serial = 1;
  std::uint32_t refresh = 3600;
  std::uint32_t retry = 600;
  std::uint32_t expire = 86400;
  std::uint32_t minimum = 60;
  friend bool operator==(const SoaRdata&, const SoaRdata&) = default;
};

/// Uninterpreted RDATA for types drongo does not model (round-trips intact).
struct RawRdata {
  std::vector<std::uint8_t> bytes;
  friend bool operator==(const RawRdata&, const RawRdata&) = default;
};

using Rdata = std::variant<ARdata, CnameRdata, NsRdata, PtrRdata, TxtRdata, SoaRdata, RawRdata>;

/// A resource record. The OPT pseudo-record is NOT represented here — the
/// message codec lifts it into `Message::edns` so application code never sees
/// it as a record.
struct ResourceRecord {
  DnsName name;
  RrType type = RrType::kA;
  RrClass klass = RrClass::kIn;
  std::uint32_t ttl = 60;
  Rdata rdata = ARdata{};

  /// Convenience builders for the records drongo serves.
  static ResourceRecord a(DnsName name, net::Ipv4Addr address, std::uint32_t ttl = 60);
  static ResourceRecord cname(DnsName name, DnsName target, std::uint32_t ttl = 60);
  static ResourceRecord ns(DnsName zone, DnsName nameserver, std::uint32_t ttl = 3600);
  static ResourceRecord ptr(DnsName name, DnsName target, std::uint32_t ttl = 3600);
  static ResourceRecord txt(DnsName name, std::vector<std::string> strings,
                            std::uint32_t ttl = 60);
  static ResourceRecord soa(DnsName zone, SoaRdata soa, std::uint32_t ttl = 3600);

  /// Encodes name, type, class, TTL, RDLENGTH, and RDATA. Names inside RDATA
  /// participate in compression via `offsets` (nullptr disables).
  void encode(net::ByteWriter& writer, NameOffsets* offsets) const;

  /// Decodes one record. For unknown types the RDATA is kept raw.
  static ResourceRecord decode(net::ByteReader& reader);

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const ResourceRecord&, const ResourceRecord&) = default;
};

}  // namespace drongo::dns
