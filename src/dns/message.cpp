#include "dns/message.hpp"

#include "net/error.hpp"

namespace drongo::dns {

namespace {

constexpr std::uint16_t kFlagQr = 0x8000;
constexpr std::uint16_t kFlagAa = 0x0400;
constexpr std::uint16_t kFlagTc = 0x0200;
constexpr std::uint16_t kFlagRd = 0x0100;
constexpr std::uint16_t kFlagRa = 0x0080;

std::uint16_t pack_flags(const Header& h) {
  std::uint16_t flags = 0;
  if (h.qr) flags |= kFlagQr;
  flags |= static_cast<std::uint16_t>((static_cast<std::uint16_t>(h.opcode) & 0xF) << 11);
  if (h.aa) flags |= kFlagAa;
  if (h.tc) flags |= kFlagTc;
  if (h.rd) flags |= kFlagRd;
  if (h.ra) flags |= kFlagRa;
  flags |= static_cast<std::uint16_t>(static_cast<std::uint16_t>(h.rcode) & 0xF);
  return flags;
}

Header unpack_flags(std::uint16_t id, std::uint16_t flags) {
  Header h;
  h.id = id;
  h.qr = (flags & kFlagQr) != 0;
  h.opcode = static_cast<Opcode>((flags >> 11) & 0xF);
  h.aa = (flags & kFlagAa) != 0;
  h.tc = (flags & kFlagTc) != 0;
  h.rd = (flags & kFlagRd) != 0;
  h.ra = (flags & kFlagRa) != 0;
  h.rcode = static_cast<Rcode>(flags & 0xF);
  return h;
}

/// Writes the OPT pseudo-record (RFC 6891) straight into the message
/// writer — byte-identical to encoding it as a ResourceRecord, without
/// materialising one (the serving hot path encodes an OPT per reply).
void write_opt_record(net::ByteWriter& w, const Edns& edns) {
  w.write_u8(0);  // root owner name
  w.write_u16(static_cast<std::uint16_t>(RrType::kOpt));
  w.write_u16(edns.udp_payload_size);  // CLASS carries the payload size
  w.write_u32((std::uint32_t{edns.extended_rcode} << 24) |
              (std::uint32_t{edns.version} << 16) | edns.flags);
  const std::size_t rdlength_at = w.size();
  w.write_u16(0);  // patched below
  const std::size_t rdata_start = w.size();
  if (edns.client_subnet) {
    w.write_u16(kOptionCodeClientSubnet);
    const std::size_t len_at = w.size();
    w.write_u16(0);
    const std::size_t start = w.size();
    edns.client_subnet->encode(w);
    w.patch_u16(len_at, static_cast<std::uint16_t>(w.size() - start));
  }
  for (const auto& opt : edns.other_options) {
    w.write_u16(opt.code);
    w.write_u16(static_cast<std::uint16_t>(opt.payload.size()));
    w.write_bytes(opt.payload);
  }
  w.patch_u16(rdlength_at, static_cast<std::uint16_t>(w.size() - rdata_start));
}

Edns parse_opt(const ResourceRecord& rr) {
  Edns edns;
  edns.udp_payload_size = static_cast<std::uint16_t>(rr.klass);
  edns.extended_rcode = static_cast<std::uint8_t>(rr.ttl >> 24);
  edns.version = static_cast<std::uint8_t>(rr.ttl >> 16);
  edns.flags = static_cast<std::uint16_t>(rr.ttl);
  const auto& raw = std::get<RawRdata>(rr.rdata).bytes;
  net::ByteReader r(raw);
  while (r.remaining() > 0) {
    const std::uint16_t code = r.read_u16();
    const std::uint16_t len = r.read_u16();
    if (code == kOptionCodeClientSubnet) {
      edns.client_subnet = ClientSubnet::decode(r, len);
    } else {
      edns.other_options.push_back({code, r.read_bytes(len)});
    }
  }
  return edns;
}

}  // namespace

Message Message::make_query(std::uint16_t id, const DnsName& name,
                            std::optional<net::IpPrefix> ecs_subnet, RrType type) {
  Message m;
  m.header.id = id;
  m.header.qr = false;
  m.header.rd = true;
  m.questions.push_back({name, type, RrClass::kIn});
  m.edns = Edns{};
  if (ecs_subnet) {
    m.edns->client_subnet = ClientSubnet::for_subnet(*ecs_subnet);
  }
  return m;
}

Message Message::make_response(const Message& query, Rcode rcode,
                               std::optional<int> ecs_scope) {
  Message m;
  m.header = query.header;
  m.header.qr = true;
  m.header.aa = true;
  m.header.ra = true;
  m.header.rcode = rcode;
  m.questions = query.questions;
  if (query.edns) {
    m.edns = Edns{};
    m.edns->udp_payload_size = 4096;
    if (query.edns->client_subnet) {
      ClientSubnet ecs = *query.edns->client_subnet;
      ecs.scope_prefix_length = static_cast<std::uint8_t>(
          ecs_scope.value_or(ecs.source_prefix_length));
      m.edns->client_subnet = ecs;
    }
  }
  return m;
}

const std::optional<ClientSubnet>& Message::client_subnet() const {
  static const std::optional<ClientSubnet> kNone;
  return edns ? edns->client_subnet : kNone;
}

void Message::set_client_subnet(const ClientSubnet& ecs) {
  if (!edns) edns = Edns{};
  edns->client_subnet = ecs;
}

void Message::clear_client_subnet() {
  if (edns) edns->client_subnet.reset();
}

std::vector<net::Ipv4Addr> Message::answer_addresses() const {
  std::vector<net::Ipv4Addr> out;
  for (const auto& rr : answers) {
    if (const auto* a = std::get_if<ARdata>(&rr.rdata)) {
      out.push_back(a->address);
    }
  }
  return out;
}

std::vector<std::uint8_t> Message::encode() const {
  std::vector<std::uint8_t> out;
  encode_to(out);
  return out;
}

void Message::encode_to(std::vector<std::uint8_t>& out) const {
  net::ByteWriter w(std::move(out));
  NameOffsets offsets;

  const std::size_t additional_count = additional.size() + (edns ? 1 : 0);
  w.write_u16(header.id);
  w.write_u16(pack_flags(header));
  w.write_u16(static_cast<std::uint16_t>(questions.size()));
  w.write_u16(static_cast<std::uint16_t>(answers.size()));
  w.write_u16(static_cast<std::uint16_t>(authority.size()));
  w.write_u16(static_cast<std::uint16_t>(additional_count));

  for (const auto& q : questions) {
    q.name.encode(w, &offsets);
    w.write_u16(static_cast<std::uint16_t>(q.type));
    w.write_u16(static_cast<std::uint16_t>(q.klass));
  }
  for (const auto& rr : answers) rr.encode(w, &offsets);
  for (const auto& rr : authority) rr.encode(w, &offsets);
  for (const auto& rr : additional) rr.encode(w, &offsets);
  if (edns) write_opt_record(w, *edns);
  out = w.take();
}

Message Message::decode(std::span<const std::uint8_t> wire) {
  net::ByteReader r(wire);
  Message m;
  const std::uint16_t id = r.read_u16();
  const std::uint16_t flags = r.read_u16();
  m.header = unpack_flags(id, flags);
  const std::uint16_t qdcount = r.read_u16();
  const std::uint16_t ancount = r.read_u16();
  const std::uint16_t nscount = r.read_u16();
  const std::uint16_t arcount = r.read_u16();

  for (int i = 0; i < qdcount; ++i) {
    Question q;
    q.name = DnsName::decode(r);
    q.type = static_cast<RrType>(r.read_u16());
    q.klass = static_cast<RrClass>(r.read_u16());
    m.questions.push_back(std::move(q));
  }
  for (int i = 0; i < ancount; ++i) m.answers.push_back(ResourceRecord::decode(r));
  for (int i = 0; i < nscount; ++i) m.authority.push_back(ResourceRecord::decode(r));
  for (int i = 0; i < arcount; ++i) {
    ResourceRecord rr = ResourceRecord::decode(r);
    if (rr.type == RrType::kOpt) {
      if (m.edns) throw net::ParseError("message carries more than one OPT record");
      if (!rr.name.is_root()) throw net::ParseError("OPT record owner must be root");
      m.edns = parse_opt(rr);
    } else {
      m.additional.push_back(std::move(rr));
    }
  }
  return m;
}

std::string Message::to_string() const {
  std::string out;
  out += ";; id " + std::to_string(header.id) + " " + (header.qr ? "response" : "query") +
         " rcode " + dns::to_string(header.rcode) + "\n";
  if (edns && edns->client_subnet) {
    out += ";; ECS " + edns->client_subnet->to_string() + "\n";
  }
  for (const auto& q : questions) {
    out += ";" + q.name.to_string() + " IN " + dns::to_string(q.type) + "\n";
  }
  for (const auto& rr : answers) out += rr.to_string() + "\n";
  for (const auto& rr : authority) out += rr.to_string() + "\n";
  for (const auto& rr : additional) out += rr.to_string() + "\n";
  return out;
}

}  // namespace drongo::dns
