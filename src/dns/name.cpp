#include "dns/name.hpp"

#include <algorithm>
#include <cctype>
#include <string_view>

#include "net/error.hpp"
#include "net/strings.hpp"

namespace drongo::dns {

namespace {
constexpr std::size_t kMaxLabel = 63;
constexpr std::size_t kMaxName = 255;
constexpr std::uint8_t kPointerTag = 0xC0;
}  // namespace

DnsName::DnsName(std::vector<std::string> labels) : labels_(std::move(labels)) {
  check_invariants();
}

void DnsName::check_invariants() const {
  std::size_t total = 1;  // terminating root byte
  for (const auto& label : labels_) {
    if (label.empty() || label.size() > kMaxLabel) {
      throw net::ParseError("DNS label '" + label + "' has bad length " +
                            std::to_string(label.size()));
    }
    total += 1 + label.size();
  }
  if (total > kMaxName) {
    throw net::ParseError("DNS name exceeds 255 bytes");
  }
}

std::optional<DnsName> DnsName::parse(std::string_view text) {
  if (text.empty()) return std::nullopt;
  if (text == ".") return DnsName();
  if (text.back() == '.') text.remove_suffix(1);
  std::vector<std::string> labels = net::split(text, '.');
  std::size_t total = 1;
  for (const auto& label : labels) {
    if (label.empty() || label.size() > kMaxLabel) return std::nullopt;
    total += 1 + label.size();
  }
  if (total > kMaxName) return std::nullopt;
  return DnsName(std::move(labels));
}

DnsName DnsName::must_parse(std::string_view text) {
  auto name = parse(text);
  if (!name) throw net::ParseError("bad DNS name '" + std::string(text) + "'");
  return *name;
}

DnsName DnsName::decode(net::ByteReader& reader) {
  std::vector<std::string> labels;
  std::size_t total = 1;
  // After the first pointer the cursor must not move; we continue decoding at
  // the pointer target via a secondary reader over the same buffer.
  bool jumped = false;
  net::ByteReader indirect(reader.buffer());
  net::ByteReader* r = &reader;
  int pointer_hops = 0;

  for (;;) {
    const std::uint8_t len = r->read_u8();
    if ((len & kPointerTag) == kPointerTag) {
      const std::uint8_t low = r->read_u8();
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3F) << 8) | low;
      // A pointer must reference earlier bytes; forward or self pointers can
      // only loop. Also cap total hops against crafted ping-pong chains.
      const std::size_t here = (r == &reader) ? reader.position() : indirect.position();
      if (target >= here) {
        throw net::ParseError("DNS compression pointer does not point backward");
      }
      if (++pointer_hops > 64) {
        throw net::ParseError("DNS compression pointer chain too long");
      }
      if (!jumped) {
        jumped = true;
        r = &indirect;
      }
      r->seek(target);
      continue;
    }
    if ((len & kPointerTag) != 0) {
      throw net::ParseError("reserved DNS label type");
    }
    if (len == 0) break;
    total += 1 + len;
    if (total > kMaxName) throw net::ParseError("decoded DNS name exceeds 255 bytes");
    labels.push_back(r->read_string(len));
  }
  return DnsName(std::move(labels));
}

void DnsName::encode(net::ByteWriter& writer, NameOffsets* offsets) const {
  if (offsets == nullptr) {
    for (const auto& label : labels_) {
      writer.write_u8(static_cast<std::uint8_t>(label.size()));
      writer.write_string(label);
    }
    writer.write_u8(0);
    return;
  }
  // Build the canonical (lowercase, dotted) form once; the suffix starting
  // at label i is then a view into it, so each map probe allocates nothing.
  // A key string is materialised only when a new suffix is recorded.
  std::string canonical;
  canonical.reserve(wire_length());
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (i != 0) canonical.push_back('.');
    for (const char c : labels_[i]) {
      canonical.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
  }
  std::size_t suffix_start = 0;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    const std::string_view suffix =
        std::string_view(canonical).substr(suffix_start);
    auto it = offsets->find(suffix);
    if (it != offsets->end()) {
      writer.write_u16(static_cast<std::uint16_t>(0xC000 | it->second));
      return;
    }
    if (writer.size() < 0x4000) {
      offsets->emplace(std::string(suffix),
                       static_cast<std::uint16_t>(writer.size()));
    }
    writer.write_u8(static_cast<std::uint8_t>(labels_[i].size()));
    writer.write_string(labels_[i]);
    suffix_start += labels_[i].size() + 1;  // past this label and its dot
  }
  writer.write_u8(0);
}

std::size_t DnsName::wire_length() const {
  std::size_t total = 1;
  for (const auto& label : labels_) total += 1 + label.size();
  return total;
}

std::string DnsName::to_string() const {
  if (labels_.empty()) return ".";
  std::string out;
  for (const auto& label : labels_) {
    if (!out.empty()) out.push_back('.');
    out += label;
  }
  return out;
}

std::string DnsName::canonical() const {
  return net::to_lower(to_string());
}

bool DnsName::is_subdomain_of(const DnsName& other) const {
  if (other.labels_.size() > labels_.size()) return false;
  auto mine = labels_.rbegin();
  for (auto theirs = other.labels_.rbegin(); theirs != other.labels_.rend();
       ++theirs, ++mine) {
    if (net::to_lower(*mine) != net::to_lower(*theirs)) return false;
  }
  return true;
}

DnsName DnsName::parent() const {
  if (labels_.empty()) {
    throw net::InvalidArgument("root name has no parent");
  }
  return DnsName(std::vector<std::string>(labels_.begin() + 1, labels_.end()));
}

bool operator==(const DnsName& a, const DnsName& b) {
  return (a <=> b) == std::strong_ordering::equal;
}

std::strong_ordering operator<=>(const DnsName& a, const DnsName& b) {
  const auto n = std::min(a.labels_.size(), b.labels_.size());
  for (std::size_t i = 0; i < n; ++i) {
    auto la = net::to_lower(a.labels_[i]);
    auto lb = net::to_lower(b.labels_[i]);
    if (auto cmp = la.compare(lb); cmp != 0) {
      return cmp < 0 ? std::strong_ordering::less : std::strong_ordering::greater;
    }
  }
  return a.labels_.size() <=> b.labels_.size();
}

}  // namespace drongo::dns
