#include "dns/proxy.hpp"

#include "net/error.hpp"

namespace drongo::dns {

LdnsProxy::LdnsProxy(DnsTransport* upstream_transport, net::Ipv4Addr upstream_address,
                     net::Ipv4Addr proxy_address, SubnetSelector* selector)
    : upstream_(upstream_transport),
      upstream_address_(upstream_address),
      proxy_address_(proxy_address),
      selector_(selector) {
  if (upstream_ == nullptr) throw net::InvalidArgument("null upstream transport");
}

Message LdnsProxy::handle(const Message& query, net::Ipv4Addr source) {
  if (query.questions.empty()) {
    return Message::make_response(query, Rcode::kFormErr);
  }

  // The client's own subnet: from an explicit ECS option if the stub sent
  // one, else from the transport source address, truncated to /24 per the
  // RFC's privacy guidance.
  net::Prefix client_subnet = net::Prefix(source, 24);
  if (query.edns && query.edns->client_subnet &&
      query.edns->client_subnet->is_representable()) {
    // Family 1 passes through; a family-2 subnet participates when it has a
    // v4 meaning (v4-mapped or the sim embedding), else the source /24
    // stands in — never a zeroed generic scope.
    if (const auto v4 = net::effective_v4_subnet(
            query.edns->client_subnet->source_prefix())) {
      client_subnet = *v4;
    }
  }

  net::Prefix announce = client_subnet;
  bool did_assimilate = false;
  if (selector_ != nullptr) {
    if (auto chosen = selector_->select_subnet(query.questions[0].name, client_subnet)) {
      announce = *chosen;
      did_assimilate = true;
    }
  }

  Message forwarded = query;
  forwarded.set_client_subnet(ClientSubnet::for_subnet(announce));

  ++forwarded_;
  if (did_assimilate) ++assimilated_;

  Message reply;
  try {
    const auto reply_wire =
        upstream_->exchange(proxy_address_, upstream_address_, forwarded.encode());
    reply = Message::decode(reply_wire);
  } catch (const net::TransientError&) {
    // The upstream recursive is unreachable or timing out. A proxy cannot
    // fix that; it answers SERVFAIL so the stub's own retry/backoff policy
    // decides what happens next (RFC 1035 rcode 2 semantics).
    ++upstream_failures_;
    return Message::make_response(query, Rcode::kServFail);
  }

  // Restore the client's view: the stub should see its own subnet echoed,
  // not the assimilated one (assimilation is invisible to applications).
  reply.header.id = query.header.id;
  if (query.edns && query.edns->client_subnet) {
    ClientSubnet echo = *query.edns->client_subnet;
    echo.scope_prefix_length =
        reply.edns && reply.edns->client_subnet
            ? reply.edns->client_subnet->scope_prefix_length
            : echo.source_prefix_length;
    reply.set_client_subnet(echo);
  } else if (reply.edns) {
    reply.clear_client_subnet();
  }
  return reply;
}

}  // namespace drongo::dns
