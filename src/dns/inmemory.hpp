// In-memory DNS "network": routes encoded queries to registered servers.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <unordered_map>

#include "dns/server.hpp"

namespace drongo::dns {

/// A process-local DNS fabric. Servers register under an IPv4 address;
/// exchanges serialize the query to wire bytes, decode them on the "server
/// side", and serialize/decode the response symmetrically — so the full
/// RFC 1035/7871 codec is on the hot path of every simulated lookup exactly
/// as it would be over a socket.
///
/// Registration is setup-phase and single-threaded; `exchange` may be
/// called concurrently once the server table is final (the registered
/// servers themselves must then also be thread-safe).
class InMemoryDnsNetwork : public DnsTransport {
 public:
  /// Registers (or replaces) the server reachable at `address`. The network
  /// keeps a non-owning reference; the server must outlive the network's use.
  void register_server(net::Ipv4Addr address, DnsServer* server);

  /// Removes a server.
  void unregister_server(net::Ipv4Addr address);

  [[nodiscard]] bool has_server(net::Ipv4Addr address) const;

  /// Number of exchanges performed (for measurement-overhead accounting).
  [[nodiscard]] std::uint64_t exchange_count() const {
    return exchanges_.load(std::memory_order_relaxed);
  }

  std::vector<std::uint8_t> exchange(net::Ipv4Addr source, net::Ipv4Addr destination,
                                     std::span<const std::uint8_t> query) override;

 private:
  std::unordered_map<net::Ipv4Addr, DnsServer*> servers_;
  std::atomic<std::uint64_t> exchanges_{0};
};

}  // namespace drongo::dns
