#include "dns/inmemory.hpp"

#include "net/error.hpp"

namespace drongo::dns {

void InMemoryDnsNetwork::register_server(net::Ipv4Addr address, DnsServer* server) {
  if (server == nullptr) throw net::InvalidArgument("null DnsServer");
  servers_[address] = server;
}

void InMemoryDnsNetwork::unregister_server(net::Ipv4Addr address) {
  servers_.erase(address);
}

bool InMemoryDnsNetwork::has_server(net::Ipv4Addr address) const {
  return servers_.contains(address);
}

std::vector<std::uint8_t> InMemoryDnsNetwork::exchange(
    net::Ipv4Addr source, net::Ipv4Addr destination, std::span<const std::uint8_t> query) {
  auto it = servers_.find(destination);
  if (it == servers_.end()) {
    // Transient by classification: servers get unregistered to simulate
    // outages, and an outage may end — retrying is the right response.
    throw net::UnreachableError("no DNS server at " + destination.to_string());
  }
  ++exchanges_;
  // Full round-trip through the codec, as over a real socket.
  const Message decoded = Message::decode(query);
  const Message response = it->second->handle(decoded, source);
  return response.encode();
}

}  // namespace drongo::dns
