// Sharded, query-coalescing front for the ECS answer cache.
//
// One DnsCache behind one mutex serializes every client of a busy resolver.
// This wrapper stripes the key space over N independently locked shards
// (keyed by a deterministic FNV-1a hash of the canonical qname, so a name's
// scope family always lands in one shard and the longest-match scan stays
// local), and adds singleflight coalescing: when many clients ask for the
// same (qname, ECS subnet) at once, exactly one — the leader — performs the
// upstream exchange while the rest block until the leader publishes, then
// reuse its answer. That is the classic thundering-herd defence a
// production recursive needs the moment a hot name's TTL lapses.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "dns/cache.hpp"
#include "dns/name.hpp"
#include "dns/types.hpp"
#include "net/prefix.hpp"
#include "obs/metrics.hpp"

namespace drongo::dns {

class ShardedDnsCache {
 public:
  /// What a flight's leader learned upstream, in just enough detail for a
  /// follower to synthesize its own response. `usable` is false when the
  /// leader failed before producing a shareable answer (transport error,
  /// exception): followers then resolve for themselves.
  struct FlightOutcome {
    Rcode rcode = Rcode::kServFail;
    std::vector<net::Ipv4Addr> addresses;
    int scope_length = 0;
    bool usable = false;
  };

  /// A singleflight membership for one (qname, ECS subnet) key. Exactly one
  /// live Flight per key is the leader; the rest are followers. The leader
  /// must publish() its outcome (the destructor publishes an unusable one
  /// on early exit, so followers can never block forever).
  class Flight {
   public:
    Flight(Flight&&) noexcept = default;
    Flight& operator=(Flight&&) = delete;
    Flight(const Flight&) = delete;
    Flight& operator=(const Flight&) = delete;
    ~Flight();

    [[nodiscard]] bool leader() const { return leader_; }

    /// Follower only: blocks until the leader publishes, then returns its
    /// outcome.
    [[nodiscard]] FlightOutcome wait() const;

    /// Leader only: removes the flight from the in-flight table and wakes
    /// every follower with `outcome`.
    void publish(FlightOutcome outcome);

   private:
    friend class ShardedDnsCache;
    struct State;
    Flight(ShardedDnsCache* owner, std::size_t shard_index, std::string key,
           std::shared_ptr<State> state, bool leader)
        : owner_(owner),
          shard_index_(shard_index),
          key_(std::move(key)),
          state_(std::move(state)),
          leader_(leader) {}

    ShardedDnsCache* owner_;
    std::size_t shard_index_;
    std::string key_;
    std::shared_ptr<State> state_;
    bool leader_;
    bool published_ = false;
  };

  /// `max_entries` is the whole cache's capacity, divided evenly across
  /// `shards` (each shard gets at least one slot). `shards` is clamped to
  /// at least 1.
  explicit ShardedDnsCache(std::size_t shards = 8, std::size_t max_entries = 4096);
  ~ShardedDnsCache();

  ShardedDnsCache(const ShardedDnsCache&) = delete;
  ShardedDnsCache& operator=(const ShardedDnsCache&) = delete;

  /// DnsCache::lookup under the owning shard's lock.
  std::optional<DnsCache::Entry> lookup(const DnsName& name,
                                        const net::IpPrefix& client_subnet,
                                        std::uint64_t now_ms);

  /// DnsCache::insert under the owning shard's lock.
  void insert(const DnsName& name, const net::IpPrefix& scope,
              std::vector<net::Ipv4Addr> addresses, std::uint32_t ttl_seconds,
              std::uint64_t now_ms);

  /// DnsCache::insert_negative under the owning shard's lock.
  void insert_negative(const DnsName& name, const net::IpPrefix& scope, Rcode rcode,
                       std::uint32_t ttl_seconds, std::uint64_t now_ms);

  /// Purges expired entries in every shard.
  void purge(std::uint64_t now_ms);

  /// Tallies an uncacheable foreign-family ECS scope for `name` (see
  /// DnsCache::note_foreign_family_drop) on the shard that owns the name.
  void note_foreign_family_drop(const DnsName& name);

  /// Joins the singleflight for (name, ecs). The first caller becomes the
  /// leader and must publish(); later callers become followers and wait().
  [[nodiscard]] Flight join(const DnsName& name, const net::IpPrefix& ecs);

  /// Attaches an obs registry to every shard and to the coalescing counters
  /// (borrowed; nullptr detaches). Setup-phase only, like register_zone.
  void set_registry(obs::Registry* registry);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// Aggregated counters over all shards plus the coalescing tallies.
  /// Takes every shard lock briefly; cheap at observation frequency.
  [[nodiscard]] CacheStats stats() const;

  /// Live entries across all shards (expired-but-unseen entries excluded
  /// only after a scan or purge passes them, as in DnsCache).
  [[nodiscard]] std::size_t size() const;

 private:
  struct Shard;

  Shard& shard_of(const std::string& canonical) const;
  std::size_t shard_index_of(const std::string& canonical) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  obs::Registry* registry_ = nullptr;  // borrowed; optional telemetry mirror
};

}  // namespace drongo::dns
