// DNS over TCP (RFC 1035 §4.2.2) and UDP-truncation fallback.
//
// UDP answers that exceed the client's advertised payload size come back
// truncated (TC=1); real stubs then retry the query over TCP, where
// messages are 2-byte-length-prefixed. This module provides the TCP server
// and client plus a transport that performs the fallback transparently.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_map>

#include "dns/server.hpp"

namespace drongo::dns {

/// Serves a DnsServer over loopback TCP in a background thread. Each
/// connection may carry multiple length-prefixed queries; connections are
/// handled sequentially (ample for a test/demo server).
class TcpDnsServer {
 public:
  /// Starts listening on `port` (0 = ephemeral). `server` is borrowed.
  TcpDnsServer(DnsServer* server, std::uint16_t port = 0,
               net::Ipv4Addr server_identity = net::Ipv4Addr(127, 0, 0, 1));
  ~TcpDnsServer();

  TcpDnsServer(const TcpDnsServer&) = delete;
  TcpDnsServer& operator=(const TcpDnsServer&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] std::uint64_t served() const { return served_.load(); }

  void stop();

 private:
  void serve_loop();
  void serve_connection(int fd);

  DnsServer* handler_;
  net::Ipv4Addr identity_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> served_{0};
  std::thread thread_;
};

/// DnsTransport over loopback TCP: connects per exchange, writes the
/// length-prefixed query, reads the length-prefixed response.
class TcpDnsClient : public DnsTransport {
 public:
  explicit TcpDnsClient(int timeout_ms = 2000);

  void register_endpoint(net::Ipv4Addr server, std::uint16_t port);

  std::vector<std::uint8_t> exchange(net::Ipv4Addr source, net::Ipv4Addr destination,
                                     std::span<const std::uint8_t> query) override;

 private:
  int timeout_ms_;
  std::unordered_map<net::Ipv4Addr, std::uint16_t> endpoints_;
};

/// UDP-first transport with automatic TCP retry on truncation: the stub
/// behaviour RFC 1035 prescribes. Wraps any two transports, so it also
/// composes with the in-memory fabric in tests.
class TruncationFallbackTransport : public DnsTransport {
 public:
  /// Both transports are borrowed and must outlive this object.
  TruncationFallbackTransport(DnsTransport* udp, DnsTransport* tcp);

  std::vector<std::uint8_t> exchange(net::Ipv4Addr source, net::Ipv4Addr destination,
                                     std::span<const std::uint8_t> query) override;

  /// How many exchanges fell back to TCP.
  [[nodiscard]] std::uint64_t fallbacks() const {
    return fallbacks_.load(std::memory_order_relaxed);
  }

 private:
  DnsTransport* udp_;
  DnsTransport* tcp_;
  /// Relaxed atomic: the transport may be shared across campaign workers.
  std::atomic<std::uint64_t> fallbacks_{0};
};

/// Truncates `response` to fit `max_bytes` when necessary: drops answer/
/// authority/additional records and sets TC, as a UDP server must. Returns
/// true when truncation occurred. EDNS (with the ECS echo) is preserved if
/// it fits.
bool truncate_to_fit(Message& response, std::size_t max_bytes);

/// The maximum UDP payload a query permits: its EDNS advertisement, or the
/// classic 512 bytes without EDNS.
std::size_t max_udp_payload(const Message& query);

}  // namespace drongo::dns
