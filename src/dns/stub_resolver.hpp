// Stub resolver: the client-side query API used by Drongo and the examples.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dns/message.hpp"
#include "dns/server.hpp"
#include "net/prefix.hpp"
#include "net/rng.hpp"

namespace drongo::dns {

/// Outcome of a resolution.
struct ResolutionResult {
  Rcode rcode = Rcode::kNoError;
  /// A-record addresses in server-given order. Callers that respect CDN load
  /// balancing (as Drongo does) must use addresses.front().
  std::vector<net::Ipv4Addr> addresses;
  /// Minimum TTL across answer records (0 when there are none).
  std::uint32_t ttl = 0;
  /// ECS scope returned by the server, when it echoed the option.
  std::optional<net::Prefix> ecs_scope;

  [[nodiscard]] bool ok() const { return rcode == Rcode::kNoError && !addresses.empty(); }
};

/// A minimal client resolver that speaks to one recursive/authoritative
/// server address over a DnsTransport.
///
/// The distinguishing feature is first-class ECS control: `resolve` takes an
/// optional subnet to announce. Passing the client's own /24 models ordinary
/// ECS resolution; passing a hop's /24 is subnet assimilation.
class StubResolver {
 public:
  /// `transport` is borrowed and must outlive the resolver.
  StubResolver(DnsTransport* transport, net::Ipv4Addr client_address,
               net::Ipv4Addr server_address, std::uint64_t seed = 1);

  /// Enables/disables DNS 0x20 case randomization (on by default): query
  /// names are sent with random letter casing and the response's echoed
  /// question must match byte-for-byte, hardening against off-path
  /// spoofing (draft-vixie-dnsext-dns0x20).
  void set_case_randomization(bool enabled) { randomize_case_ = enabled; }

  /// Resolves `name` to A records. `ecs_subnet` is announced verbatim when
  /// present; otherwise no ECS option is attached (the server then falls back
  /// to the transport source address).
  ResolutionResult resolve(const DnsName& name,
                           std::optional<net::Prefix> ecs_subnet = std::nullopt);

  /// Convenience overload for string names.
  ResolutionResult resolve(const std::string& name,
                           std::optional<net::Prefix> ecs_subnet = std::nullopt);

  /// Resolves announcing the client's own subnet truncated to /24, the
  /// default privacy-preserving behaviour of ECS (RFC 7871 §11.1).
  ResolutionResult resolve_with_own_subnet(const DnsName& name);

  /// Reverse lookup: the PTR name of `address`, or empty when no PTR
  /// record exists (private or unknown space).
  std::string resolve_ptr(net::Ipv4Addr address);

  [[nodiscard]] net::Ipv4Addr client_address() const { return client_; }
  [[nodiscard]] net::Ipv4Addr server_address() const { return server_; }

  /// Number of queries issued (measurement-overhead accounting).
  [[nodiscard]] std::uint64_t query_count() const { return queries_; }

 private:
  DnsTransport* transport_;
  net::Ipv4Addr client_;
  net::Ipv4Addr server_;
  net::Rng rng_;
  bool randomize_case_ = true;
  std::uint64_t queries_ = 0;
};

}  // namespace drongo::dns
