// Stub resolver: the client-side query API used by Drongo and the examples.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dns/message.hpp"
#include "dns/server.hpp"
#include "net/ipaddr.hpp"
#include "net/prefix.hpp"
#include "net/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/schema.hpp"

namespace drongo::dns {

/// Outcome of a resolution.
///
/// A non-throwing resolve always returns a typed result; callers must
/// distinguish the failure classes instead of collapsing them into !ok():
/// NXDOMAIN means the name does not exist (retrying or falling back to a
/// different subnet cannot help), SERVFAIL/REFUSED mean the server could
/// not or would not answer right now (a different server, subnet, or a
/// later retry may succeed), and NOERROR with no addresses is NODATA — a
/// healthy answer that simply carries no A records.
struct ResolutionResult {
  Rcode rcode = Rcode::kNoError;
  /// A-record addresses in server-given order. Callers that respect CDN load
  /// balancing (as Drongo does) must use addresses.front().
  std::vector<net::Ipv4Addr> addresses;
  /// Minimum TTL across answer records (0 when there are none).
  std::uint32_t ttl = 0;
  /// ECS scope returned by the server, when it echoed the option. Carries
  /// the reply's address family (a v6 announce comes back as a v6 scope).
  std::optional<net::IpPrefix> ecs_scope;
  /// How many attempts this resolution took (1 = first try succeeded).
  int attempts = 1;
  /// Whether the final answer came over the TCP fallback path.
  bool used_tcp = false;

  /// A usable positive answer: NOERROR with at least one address.
  [[nodiscard]] bool ok() const { return rcode == Rcode::kNoError && !addresses.empty(); }
  /// NOERROR with an empty answer section (NODATA): the name exists but has
  /// no A records. NOT a server failure.
  [[nodiscard]] bool nodata() const {
    return rcode == Rcode::kNoError && addresses.empty();
  }
  /// The name does not exist. Permanent for this name; never retried.
  [[nodiscard]] bool name_error() const { return rcode == Rcode::kNxDomain; }
  /// The server could not (SERVFAIL) or would not (REFUSED) answer —
  /// transient from the client's perspective.
  [[nodiscard]] bool server_failure() const {
    return rcode == Rcode::kServFail || rcode == Rcode::kRefused;
  }
};

/// Which address family a stub announces its ECS subnets in.
///
/// The dual-stack campaign flips this to family 2: every v4 subnet handed
/// to resolve() (the client's own /24 or an assimilation target) is first
/// mapped to its v6 face via the sim embedding and truncated to
/// `v6_source_length` — /56 reproduces the v4 /24 exactly, while the
/// coarser real-world /48 collapses to a v4 /16, which is the granularity
/// loss the paper's valley question must survive.
struct EcsFamilyPolicy {
  /// 1 = announce subnets as given (IPv4). 2 = announce the v6 embedding.
  std::uint16_t family = 1;
  /// Source prefix length cap for family-2 announcements (RFC 7871
  /// recommends /56 or shorter; real resolvers commonly use /48).
  int v6_source_length = net::default_ecs_scope(net::IpFamily::kV6);
};

/// Retry/deadline policy for a StubResolver.
///
/// There is no wall clock in the simulation, so the deadline is enforced
/// against *simulated* elapsed milliseconds: each retry's backoff is added
/// to a per-query budget, mirroring how a real stub's SIGALRM-style query
/// deadline interacts with its retransmission schedule.
struct ResolverConfig {
  /// Total send attempts per query (1 = no retries).
  int max_attempts = 3;
  /// First backoff before the second attempt, in simulated ms.
  double base_backoff_ms = 50.0;
  /// Exponential growth factor per retry.
  double backoff_factor = 2.0;
  /// Backoff ceiling in simulated ms.
  double max_backoff_ms = 2000.0;
  /// Uniform jitter fraction applied to each backoff: the actual wait is
  /// backoff * (1 + U[0, jitter_fraction)). Decorrelates retry storms.
  double jitter_fraction = 0.5;
  /// Per-query simulated deadline; once cumulative backoff strictly
  /// exceeds it the query gives up even if attempts remain. A retry whose
  /// backoff lands exactly on the deadline still runs — spending the whole
  /// budget is not overspending (pinned by retry_deadline_test.cpp).
  double query_deadline_ms = 5000.0;
  /// Retry on SERVFAIL/REFUSED answers (real stubs rotate/retry on these).
  bool retry_server_failure = true;
};

/// What the resolver endured: per-instance tallies of retries, fault kinds
/// seen, and fallbacks. Campaign layers fold these into per-trial health.
///
/// Fields come from the shared obs counter schema so that this struct, the
/// trial-level HealthCounters, their aggregation, and the dataset format can
/// never drift apart. Field semantics, in schema order:
///   queries              attempts actually sent
///   retries              attempts after the first
///   timeouts             attempts lost to timeouts
///   unreachable          attempts that found nobody home
///   validation_failures  mismatched id/question/0x20 replies
///   server_failures      SERVFAIL/REFUSED answers seen
///   tcp_fallbacks        TC=1 answers retried over TCP
///   deadline_exceeded    queries that ran out of budget
///   failed_queries       queries that exhausted all attempts
struct ResolverStats {
  DRONGO_OBS_RESOLVER_COUNTERS(DRONGO_OBS_DECLARE_FIELD)

  /// Element-wise accumulation, generated from the schema.
  ResolverStats& operator+=(const ResolverStats& other) {
#define DRONGO_OBS_FOLD(field) field += other.field;
    DRONGO_OBS_RESOLVER_COUNTERS(DRONGO_OBS_FOLD)
#undef DRONGO_OBS_FOLD
    return *this;
  }
};

/// A minimal client resolver that speaks to one recursive/authoritative
/// server address over a DnsTransport.
///
/// The distinguishing feature is first-class ECS control: `resolve` takes an
/// optional subnet to announce. Passing the client's own /24 models ordinary
/// ECS resolution; passing a hop's /24 is subnet assimilation.
///
/// Resilience: transient transport failures (timeouts, unreachable servers,
/// spoof-suspect replies) are retried with exponential backoff and jitter
/// under a simulated per-query deadline; truncated UDP answers retry over
/// the TCP fallback transport when one is set. Only after the retry budget
/// is exhausted does the last transient error propagate. Permanent errors
/// (bad configuration, malformed local input) propagate immediately.
class StubResolver {
 public:
  /// `transport` is borrowed and must outlive the resolver.
  StubResolver(DnsTransport* transport, net::Ipv4Addr client_address,
               net::Ipv4Addr server_address, std::uint64_t seed = 1,
               ResolverConfig config = {});

  /// Enables/disables DNS 0x20 case randomization (on by default): query
  /// names are sent with random letter casing and the response's echoed
  /// question must match byte-for-byte, hardening against off-path
  /// spoofing (draft-vixie-dnsext-dns0x20).
  void set_case_randomization(bool enabled) { randomize_case_ = enabled; }

  /// Sets the wire family policy for announced subnets (default: family 1,
  /// announce as given). See EcsFamilyPolicy.
  void set_ecs_family(EcsFamilyPolicy policy) { ecs_policy_ = policy; }

  [[nodiscard]] const EcsFamilyPolicy& ecs_family() const { return ecs_policy_; }

  /// Sets the transport used to retry truncated (TC=1) UDP answers, per
  /// RFC 1035 §4.2.2. Borrowed; nullptr disables the fallback (a truncated
  /// answer is then returned as-is, addresses empty).
  void set_fallback_transport(DnsTransport* tcp) { fallback_ = tcp; }

  /// Resolves `name` to A records. `ecs_subnet` is announced verbatim when
  /// present; otherwise no ECS option is attached (the server then falls back
  /// to the transport source address).
  ResolutionResult resolve(const DnsName& name,
                           std::optional<net::IpPrefix> ecs_subnet = std::nullopt);

  /// Convenience overload for string names.
  ResolutionResult resolve(const std::string& name,
                           std::optional<net::IpPrefix> ecs_subnet = std::nullopt);

  /// Resolves announcing the client's own subnet truncated to /24, the
  /// default privacy-preserving behaviour of ECS (RFC 7871 §11.1).
  ResolutionResult resolve_with_own_subnet(const DnsName& name);

  /// Reverse lookup: the PTR name of `address`, or empty when no PTR
  /// record exists (private or unknown space) — or when the lookup kept
  /// failing transiently; PTR data is best-effort by contract.
  std::string resolve_ptr(net::Ipv4Addr address);

  [[nodiscard]] net::Ipv4Addr client_address() const { return client_; }
  [[nodiscard]] net::Ipv4Addr server_address() const { return server_; }
  [[nodiscard]] const ResolverConfig& config() const { return config_; }

  /// Number of queries issued (measurement-overhead accounting); counts
  /// every attempt, including retries and TCP fallbacks.
  [[nodiscard]] std::uint64_t query_count() const { return stats_.queries; }

  /// Everything this resolver endured so far.
  [[nodiscard]] const ResolverStats& stats() const { return stats_; }

  /// Attaches an obs registry (borrowed; nullptr detaches). Every stats_
  /// increment is mirrored as a `dns.resolver.*` counter, rcode outcomes
  /// are tallied under `dns.resolver.outcome.*`, and retry backoff waits
  /// feed the `dns.resolver.backoff_ms` histogram. All mirrored values are
  /// simulated quantities, so they stay deterministic under parallelism.
  void set_registry(obs::Registry* registry) { registry_ = registry; }

 private:
  /// One send/validate round; throws net::TransientError subclasses on
  /// transport trouble or suspect replies.
  ResolutionResult attempt(const DnsName& name,
                           const std::optional<net::IpPrefix>& ecs_subnet);

  /// Applies the ECS family policy to a subnet about to go on the wire.
  [[nodiscard]] std::optional<net::IpPrefix> wire_announce(
      std::optional<net::IpPrefix> ecs_subnet) const;

  DnsTransport* transport_;
  DnsTransport* fallback_ = nullptr;
  net::Ipv4Addr client_;
  net::Ipv4Addr server_;
  net::Rng rng_;
  ResolverConfig config_;
  EcsFamilyPolicy ecs_policy_;
  bool randomize_case_ = true;
  ResolverStats stats_;
  obs::Registry* registry_ = nullptr;  // borrowed; optional telemetry mirror
};

}  // namespace drongo::dns
