// DNS message: header, sections, full wire codec, EDNS integration.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dns/edns.hpp"
#include "dns/name.hpp"
#include "dns/rr.hpp"
#include "dns/types.hpp"

namespace drongo::dns {

/// The 12-byte DNS header (RFC 1035 §4.1.1), flags broken out.
struct Header {
  std::uint16_t id = 0;
  bool qr = false;                  ///< false = query, true = response.
  Opcode opcode = Opcode::kQuery;
  bool aa = false;                  ///< authoritative answer.
  bool tc = false;                  ///< truncated.
  bool rd = true;                   ///< recursion desired.
  bool ra = false;                  ///< recursion available.
  Rcode rcode = Rcode::kNoError;

  friend bool operator==(const Header&, const Header&) = default;
};

/// A question-section entry.
struct Question {
  DnsName name;
  RrType type = RrType::kA;
  RrClass klass = RrClass::kIn;

  friend bool operator==(const Question&, const Question&) = default;
};

/// A full DNS message.
///
/// The OPT pseudo-record is lifted out of the additional section into `edns`
/// on decode and re-synthesized on encode, so callers manipulate ECS through
/// `Message::edns->client_subnet` and never touch OPT wire details.
struct Message {
  Header header;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authority;
  std::vector<ResourceRecord> additional;
  std::optional<Edns> edns;

  /// Builds an A-record query for `name`, optionally carrying an ECS subnet.
  /// This is the only query shape Drongo sends.
  static Message make_query(std::uint16_t id, const DnsName& name,
                            std::optional<net::IpPrefix> ecs_subnet = std::nullopt,
                            RrType type = RrType::kA);

  /// Builds a response skeleton echoing the query's id, question, and (per
  /// RFC 7871) its ECS option with `scope_prefix_length` set to `ecs_scope`.
  static Message make_response(const Message& query, Rcode rcode = Rcode::kNoError,
                               std::optional<int> ecs_scope = std::nullopt);

  /// The ECS option if present.
  [[nodiscard]] const std::optional<ClientSubnet>& client_subnet() const;

  /// Sets (or replaces) the ECS option, creating the EDNS block if needed.
  void set_client_subnet(const ClientSubnet& ecs);

  /// Removes the ECS option, leaving other EDNS state intact.
  void clear_client_subnet();

  /// All A-record addresses from the answer section, in order. Order matters:
  /// Drongo always takes the FIRST address, respecting CDN load balancing.
  [[nodiscard]] std::vector<net::Ipv4Addr> answer_addresses() const;

  /// Serializes to wire format with name compression.
  [[nodiscard]] std::vector<std::uint8_t> encode() const;

  /// encode() into `out`, reusing its capacity (the vector is cleared
  /// first). The serving hot path encodes every reply through one
  /// per-listener scratch vector so steady-state traffic allocates no
  /// fresh wire buffer per message.
  void encode_to(std::vector<std::uint8_t>& out) const;

  /// Parses wire format. Throws ParseError on malformed input.
  static Message decode(std::span<const std::uint8_t> wire);

  /// Multi-line human-readable dump (dig-like).
  [[nodiscard]] std::string to_string() const;
};

}  // namespace drongo::dns
