#include "dns/hedge.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <limits>
#include <string>

#include "net/error.hpp"
#include "net/rng.hpp"

namespace drongo::dns {

namespace {

/// FNV-1a over (source, destination, query bytes): the same per-exchange
/// stream selector scheme FaultyTransport uses, under a different seed, so
/// a hedge decision is a pure function of what was sent — never of which
/// thread sent it or when.
std::uint64_t exchange_hash(net::Ipv4Addr source, net::Ipv4Addr destination,
                            std::span<const std::uint8_t> query) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 1099511628211ULL;
  };
  for (int shift = 24; shift >= 0; shift -= 8) {
    mix(static_cast<std::uint8_t>(source.to_uint() >> shift));
    mix(static_cast<std::uint8_t>(destination.to_uint() >> shift));
  }
  for (std::uint8_t byte : query) mix(byte);
  return h;
}

/// One modelled upstream latency draw: base + jitter, with a tail stall.
double draw_latency_ms(const HedgeConfig& config, net::Rng& rng) {
  double ms = config.base_ms + rng.uniform_real(0.0, config.jitter_ms);
  if (rng.chance(config.slow_prob)) ms += config.slow_ms;
  return ms;
}

double parse_env_double(const char* value, double fallback, const std::string& knob,
                        double lo, double hi, bool lo_exclusive) {
  if (value == nullptr || value[0] == '\0') return fallback;
  const std::string v(value);
  std::size_t used = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(v, &used);
  } catch (const std::exception&) {
    used = std::string::npos;
  }
  const bool in_range =
      used == v.size() && (lo_exclusive ? parsed > lo : parsed >= lo) && parsed <= hi;
  if (!in_range) {
    throw net::InvalidArgument(knob + " must be a number in " +
                               (lo_exclusive ? "(" : "[") + std::to_string(lo) + ", " +
                               std::to_string(hi) + "], got \"" + v + "\"");
  }
  return parsed;
}

std::uint64_t parse_env_count(const char* value, std::uint64_t fallback,
                              const std::string& knob) {
  if (value == nullptr || value[0] == '\0') return fallback;
  const std::string v(value);
  std::size_t used = 0;
  long long parsed = 0;
  try {
    parsed = std::stoll(v, &used);
  } catch (const std::exception&) {
    used = std::string::npos;
  }
  if (used != v.size() || parsed < 1) {
    throw net::InvalidArgument(knob + " must be an integer >= 1, got \"" + v + "\"");
  }
  return static_cast<std::uint64_t>(parsed);
}

bool parse_env_switch(const char* value, bool fallback, const std::string& knob) {
  if (value == nullptr || value[0] == '\0') return fallback;
  const std::string v(value);
  if (v == "0" || v == "false" || v == "off") return false;
  if (v == "1" || v == "true" || v == "on") return true;
  throw net::InvalidArgument(knob + " must be 0/false/off or 1/true/on, got \"" + v +
                             "\"");
}

}  // namespace

HedgeConfig hedge_config_from_env(HedgeConfig base) {
  base.enabled =
      parse_env_switch(std::getenv("DRONGO_HEDGE_ENABLE"), base.enabled,
                       "DRONGO_HEDGE_ENABLE");
  base.threshold_ms =
      parse_env_double(std::getenv("DRONGO_HEDGE_THRESHOLD_MS"), base.threshold_ms,
                       "DRONGO_HEDGE_THRESHOLD_MS", 0.0, 1e9, /*lo_exclusive=*/false);
  base.quantile = parse_env_double(std::getenv("DRONGO_HEDGE_QUANTILE"), base.quantile,
                                   "DRONGO_HEDGE_QUANTILE", 0.0, 100.0,
                                   /*lo_exclusive=*/true);
  base.min_samples = parse_env_count(std::getenv("DRONGO_HEDGE_MIN_SAMPLES"),
                                     base.min_samples, "DRONGO_HEDGE_MIN_SAMPLES");
  return base;
}

HedgedTransport::HedgedTransport(DnsTransport* inner, HedgeConfig config)
    : inner_(inner), config_(config) {
  if (inner_ == nullptr) throw net::InvalidArgument("null inner DnsTransport");
  if (config_.threshold_ms < 0.0) {
    throw net::InvalidArgument("hedge threshold_ms must be >= 0");
  }
  if (!(config_.quantile > 0.0) || config_.quantile > 100.0) {
    throw net::InvalidArgument("hedge quantile must be in (0, 100]");
  }
  if (config_.min_samples < 1) {
    throw net::InvalidArgument("hedge min_samples must be >= 1");
  }
  if (config_.slow_prob < 0.0 || config_.slow_prob > 1.0) {
    throw net::InvalidArgument("hedge slow_prob must be in [0, 1]");
  }
}

void HedgedTransport::tally(std::atomic<std::uint64_t>& counter, const char* name) {
  counter.fetch_add(1, std::memory_order_relaxed);
  if (registry_ != nullptr) registry_->add(name);
}

double HedgedTransport::current_threshold_ms() const {
  if (config_.threshold_ms > 0.0) return config_.threshold_ms;
  if (latency_.count() < config_.min_samples) {
    return std::numeric_limits<double>::infinity();
  }
  return std::max(config_.min_threshold_ms, latency_.quantile(config_.quantile));
}

std::vector<std::uint8_t> HedgedTransport::exchange(net::Ipv4Addr source,
                                                    net::Ipv4Addr destination,
                                                    std::span<const std::uint8_t> query) {
  if (!config_.enabled) return inner_->exchange(source, destination, query);
  tally(exchanges_, "dns.resolver.hedge.exchanges");

  const std::uint64_t selector = exchange_hash(source, destination, query);
  net::Rng primary_rng = net::Rng::derive(config_.seed, selector, 0);
  double primary_ms = draw_latency_ms(config_, primary_rng);

  std::vector<std::uint8_t> primary_reply;
  std::exception_ptr primary_error;
  try {
    primary_reply = inner_->exchange(source, destination, query);
  } catch (const net::TransientError&) {
    // The caller would have sat out its full timeout on this attempt —
    // exactly the latency a hedge exists to cut short.
    primary_error = std::current_exception();
    primary_ms = config_.timeout_penalty_ms;
  }

  const auto settle = [this](double effective_ms) {
    latency_.observe(effective_ms);
    if (registry_ != nullptr) {
      registry_->observe_ms("dns.resolver.hedge.latency_ms", effective_ms);
    }
  };

  const double threshold_ms = current_threshold_ms();
  if (primary_ms <= threshold_ms || query.size() < 2) {
    settle(primary_ms);
    if (primary_error) std::rethrow_exception(primary_error);
    return primary_reply;
  }

  // The primary is past the threshold: launch the hedge at exactly the
  // threshold mark with a fresh query id, so the inner fabric — which
  // hashes the bytes — gives it an independent fate, like a real duplicate
  // datagram taking fresh network chances.
  tally(fired_, "dns.resolver.hedge.fired");
  std::vector<std::uint8_t> hedged_query(query.begin(), query.end());
  hedged_query[0] ^= 0xA5;
  hedged_query[1] ^= 0x3C;
  net::Rng hedge_rng = net::Rng::derive(config_.seed, selector, 1);
  double hedge_ms = threshold_ms + draw_latency_ms(config_, hedge_rng);

  std::vector<std::uint8_t> hedge_reply;
  bool hedge_failed = false;
  try {
    hedge_reply = inner_->exchange(source, destination, hedged_query);
  } catch (const net::TransientError&) {
    hedge_failed = true;
    hedge_ms = threshold_ms + config_.timeout_penalty_ms;
  }

  const bool primary_failed = primary_error != nullptr;
  if (primary_failed && hedge_failed) {
    tally(both_failed_, "dns.resolver.hedge.both_failed");
    settle(std::min(primary_ms, hedge_ms));
    std::rethrow_exception(primary_error);
  }

  const bool hedge_won = !hedge_failed && (primary_failed || hedge_ms < primary_ms);
  settle(hedge_won ? hedge_ms : primary_ms);
  if (!hedge_won) {
    // The primary answered first after all; the duplicate is abandoned
    // (its answer discarded, its failure — if any — swallowed).
    tally(losses_, "dns.resolver.hedge.losses");
    return primary_reply;
  }
  tally(primary_failed ? rescued_ : wins_,
        primary_failed ? "dns.resolver.hedge.rescued" : "dns.resolver.hedge.wins");
  // The winning hedge carries the rewritten id; patch it back to what the
  // caller sent so its id/0x20 validation sees the transaction it started.
  if (hedge_reply.size() >= 2) {
    hedge_reply[0] = query[0];
    hedge_reply[1] = query[1];
  }
  return hedge_reply;
}

}  // namespace drongo::dns
