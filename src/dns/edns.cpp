#include "dns/edns.hpp"

#include <array>

#include "net/error.hpp"

namespace drongo::dns {

namespace {

/// ceil(bits / 8): the RFC 7871 §6 address byte count, family-independent.
constexpr std::size_t address_bytes_for(int bits) {
  return (static_cast<std::size_t>(bits) + 7u) / 8u;
}

constexpr int family_max_bits(std::uint16_t family) {
  return family == 1 ? 32 : 128;
}

}  // namespace

ClientSubnet ClientSubnet::for_subnet(const net::IpPrefix& subnet) {
  ClientSubnet ecs;
  ecs.family = subnet.family() == net::IpFamily::kV4 ? 1 : 2;
  ecs.source_prefix_length = static_cast<std::uint8_t>(subnet.length());
  ecs.scope_prefix_length = 0;
  ecs.address = subnet.network();
  return ecs;
}

net::IpPrefix ClientSubnet::source_prefix() const {
  if (!is_representable()) {
    throw net::ParseError("ECS family " + std::to_string(family) +
                          " has no representable source prefix");
  }
  return net::IpPrefix(address, source_prefix_length);
}

net::IpPrefix ClientSubnet::scope_prefix() const {
  if (!is_representable()) {
    throw net::ParseError("ECS family " + std::to_string(family) +
                          " has no representable scope prefix");
  }
  return net::IpPrefix(address, scope_prefix_length);
}

void ClientSubnet::encode(net::ByteWriter& writer) const {
  writer.write_u16(family);
  writer.write_u8(source_prefix_length);
  writer.write_u8(scope_prefix_length);
  if (!is_representable()) {
    // Foreign family: replay the bytes we decoded, verbatim.
    for (const std::uint8_t b : opaque_address) writer.write_u8(b);
    return;
  }
  // RFC 7871 §6: address is truncated to the minimum bytes covering
  // source_prefix_length bits, with trailing bits zeroed. Constructing the
  // prefix re-canonicalizes, so a hand-built unmasked option encodes clean.
  const std::size_t bytes = address_bytes_for(source_prefix_length);
  const net::IpPrefix canonical = source_prefix();
  if (family == 1) {
    const std::uint32_t masked = canonical.network().v4().to_uint();
    for (std::size_t i = 0; i < bytes; ++i) {
      writer.write_u8(static_cast<std::uint8_t>(masked >> (8 * (3 - i))));
    }
  } else {
    const net::Ipv6Addr masked = canonical.network().v6();
    for (std::size_t i = 0; i < bytes; ++i) {
      writer.write_u8(masked.octet(static_cast<int>(i)));
    }
  }
}

ClientSubnet ClientSubnet::decode(net::ByteReader& reader, std::size_t length) {
  if (length < 4) throw net::ParseError("ECS option shorter than fixed header");
  ClientSubnet ecs;
  ecs.family = reader.read_u16();
  ecs.source_prefix_length = reader.read_u8();
  ecs.scope_prefix_length = reader.read_u8();
  const std::size_t addr_bytes = length - 4;
  // The minimal-encoding rule binds every family (RFC 7871 §6): an option
  // whose address bytes disagree with ceil(source/8) is malformed even when
  // we cannot interpret the family.
  const std::size_t expected = address_bytes_for(ecs.source_prefix_length);
  if (ecs.is_representable()) {
    const int max_bits = family_max_bits(ecs.family);
    if (ecs.source_prefix_length > max_bits) {
      throw net::ParseError("ECS family " + std::to_string(ecs.family) +
                            " source prefix length " +
                            std::to_string(ecs.source_prefix_length) + " > " +
                            std::to_string(max_bits));
    }
    if (ecs.scope_prefix_length > max_bits) {
      throw net::ParseError("ECS family " + std::to_string(ecs.family) +
                            " scope prefix length " +
                            std::to_string(ecs.scope_prefix_length) + " > " +
                            std::to_string(max_bits));
    }
    if (addr_bytes != expected) {
      throw net::ParseError("ECS address has " + std::to_string(addr_bytes) +
                            " bytes, expected " + std::to_string(expected));
    }
    if (ecs.family == 1) {
      std::uint32_t bits = 0;
      for (std::size_t i = 0; i < addr_bytes; ++i) {
        bits |= std::uint32_t{reader.read_u8()} << (8 * (3 - i));
      }
      // Mask any non-zero trailing bits rather than rejecting: be liberal in
      // what we accept (the prefix semantics are unchanged).
      ecs.address = net::IpAddr(
          net::Prefix(net::Ipv4Addr(bits), ecs.source_prefix_length).network());
    } else {
      std::array<std::uint8_t, 16> bytes{};
      for (std::size_t i = 0; i < addr_bytes; ++i) bytes[i] = reader.read_u8();
      ecs.address =
          net::IpAddr(net::IpPrefix(net::IpAddr(net::Ipv6Addr::from_bytes(bytes)),
                                    ecs.source_prefix_length)
                          .network());
    }
  } else {
    if (addr_bytes != expected) {
      throw net::ParseError("ECS address has " + std::to_string(addr_bytes) +
                            " bytes, expected " + std::to_string(expected));
    }
    // Unknown family: keep the raw bytes so the option round-trips; the
    // address stays unspecified and callers must check is_representable()
    // before interpreting it (the cache path treats these as uncacheable).
    ecs.opaque_address.reserve(addr_bytes);
    for (std::size_t i = 0; i < addr_bytes; ++i) {
      ecs.opaque_address.push_back(reader.read_u8());
    }
  }
  return ecs;
}

std::string ClientSubnet::to_string() const {
  if (!is_representable()) {
    return "family" + std::to_string(family) + "/" +
           std::to_string(source_prefix_length) + "/scope" +
           std::to_string(scope_prefix_length);
  }
  return source_prefix().to_string() + "/scope" +
         std::to_string(scope_prefix_length);
}

}  // namespace drongo::dns
