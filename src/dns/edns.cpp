#include "dns/edns.hpp"

#include "net/error.hpp"

namespace drongo::dns {

ClientSubnet ClientSubnet::for_subnet(const net::Prefix& subnet) {
  ClientSubnet ecs;
  ecs.family = 1;
  ecs.source_prefix_length = static_cast<std::uint8_t>(subnet.length());
  ecs.scope_prefix_length = 0;
  ecs.address = subnet.network();
  return ecs;
}

void ClientSubnet::encode(net::ByteWriter& writer) const {
  writer.write_u16(family);
  writer.write_u8(source_prefix_length);
  writer.write_u8(scope_prefix_length);
  // RFC 7871 §6: address is truncated to the minimum bytes covering
  // source_prefix_length bits, with trailing bits zeroed.
  const int bytes = (source_prefix_length + 7) / 8;
  const std::uint32_t masked =
      source_prefix_length == 0
          ? 0
          : address.to_uint() & (~std::uint32_t{0} << (32 - source_prefix_length));
  for (int i = 0; i < bytes; ++i) {
    writer.write_u8(static_cast<std::uint8_t>(masked >> (8 * (3 - i))));
  }
}

ClientSubnet ClientSubnet::decode(net::ByteReader& reader, std::size_t length) {
  if (length < 4) throw net::ParseError("ECS option shorter than fixed header");
  ClientSubnet ecs;
  ecs.family = reader.read_u16();
  ecs.source_prefix_length = reader.read_u8();
  ecs.scope_prefix_length = reader.read_u8();
  const std::size_t addr_bytes = length - 4;
  if (ecs.family == 1) {
    if (ecs.source_prefix_length > 32) {
      throw net::ParseError("ECS IPv4 source prefix length > 32");
    }
    const std::size_t expected = (ecs.source_prefix_length + 7u) / 8u;
    if (addr_bytes != expected) {
      throw net::ParseError("ECS IPv4 address has " + std::to_string(addr_bytes) +
                            " bytes, expected " + std::to_string(expected));
    }
    std::uint32_t bits = 0;
    for (std::size_t i = 0; i < addr_bytes; ++i) {
      bits |= std::uint32_t{reader.read_u8()} << (8 * (3 - i));
    }
    // Mask any non-zero trailing bits rather than rejecting: be liberal in
    // what we accept (the prefix semantics are unchanged).
    if (ecs.source_prefix_length < 32) {
      bits &= ecs.source_prefix_length == 0
                  ? 0
                  : ~std::uint32_t{0} << (32 - ecs.source_prefix_length);
    }
    ecs.address = net::Ipv4Addr(bits);
  } else {
    // Unknown family: consume the bytes so the reader stays aligned. The
    // address is not representable; leave it unspecified.
    reader.skip(addr_bytes);
    ecs.address = net::Ipv4Addr{};
  }
  return ecs;
}

std::string ClientSubnet::to_string() const {
  return source_prefix().to_string() + "/scope" + std::to_string(scope_prefix_length);
}

}  // namespace drongo::dns
