// Hedged DNS exchanges: a second request once the first looks slow.
//
// The tail-latency playbook ("The Tail at Scale") for a resolver talking to
// flaky upstreams: once a query has been in flight longer than a rolling
// p95 of past exchanges, issue one duplicate, keep whichever answer lands
// first, and abandon the loser. HedgedTransport decorates any DnsTransport
// with exactly that policy. The simulation's transports complete
// synchronously, so "in flight longer than" is judged against a modelled
// per-exchange upstream latency drawn from a derived RNG stream — the same
// trick the fault fabric uses, which keeps every hedging decision a pure
// function of (seed, exchange bytes) and campaigns byte-identical at any
// thread count when the threshold is pinned.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dns/server.hpp"
#include "net/quantile.hpp"
#include "obs/metrics.hpp"

namespace drongo::dns {

/// Policy and latency model for a HedgedTransport.
struct HedgeConfig {
  /// Master switch; disabled decorators pass exchanges straight through
  /// (no latency model, no telemetry — byte-for-byte the undecorated path).
  bool enabled = false;

  /// Pinned hedge threshold in simulated ms. When > 0, the hedge fires
  /// exactly when the primary's modelled latency exceeds this value — a
  /// pure per-exchange function, so results are byte-identical for any
  /// thread count. When 0, the threshold adapts: the rolling `quantile` of
  /// all effective latencies seen so far (order-dependent during warm-up,
  /// so use the pinned mode where cross-thread determinism is gated).
  double threshold_ms = 0.0;
  /// Percentile used in adaptive mode (paper convention: hedge past p95).
  double quantile = 95.0;
  /// Adaptive mode never hedges before this many samples are in.
  std::uint64_t min_samples = 50;
  /// Adaptive-mode floor: the threshold never drops below this.
  double min_threshold_ms = 1.0;

  // Modelled upstream latency: base + U[0, jitter), with a `slow_prob`
  // chance of an extra `slow_ms` stall (the tail hedging exists to cut).
  // A transport-level failure (timeout/unreachable) costs
  // `timeout_penalty_ms` — what the caller would have waited before giving
  // up — and is exactly what a hedge can rescue.
  double base_ms = 4.0;
  double jitter_ms = 2.0;
  double slow_prob = 0.03;
  double slow_ms = 120.0;
  double timeout_penalty_ms = 250.0;

  /// Stream seed for the latency draws (independent of fault seeds).
  std::uint64_t seed = 0x4ED6E;
};

/// Builds a HedgeConfig from the environment on top of `base`:
/// DRONGO_HEDGE_ENABLE (0/1), DRONGO_HEDGE_THRESHOLD_MS (>= 0),
/// DRONGO_HEDGE_QUANTILE ((0, 100]), DRONGO_HEDGE_MIN_SAMPLES (>= 1).
/// Malformed values throw net::InvalidArgument loudly — a typo in a batch
/// job must not silently run an unhedged (or differently hedged) campaign.
HedgeConfig hedge_config_from_env(HedgeConfig base = {});

/// Decorates a DnsTransport with hedged exchanges.
///
/// Each exchange models a primary latency from a stream derived from
/// (seed, hash of the exchange bytes). If that latency exceeds the hedge
/// threshold, a duplicate query is sent with a rewritten id — so the inner
/// fault fabric, which hashes the bytes, gives the hedge an independent
/// fate — and the faster of the two answers wins. The losing exchange is
/// abandoned (its answer discarded, its error swallowed when the winner
/// succeeded), and a winning hedge's response id is patched back so the
/// caller's id validation still matches what it sent.
///
/// Thread-safety: exchange() may be called concurrently. All tallies are
/// relaxed atomics and the latency estimator is commutative, so the final
/// telemetry is interleaving-independent; the hedging *decisions* are too
/// whenever the threshold is pinned (see HedgeConfig::threshold_ms).
class HedgedTransport : public DnsTransport {
 public:
  /// `inner` is borrowed and must outlive this object.
  HedgedTransport(DnsTransport* inner, HedgeConfig config);

  std::vector<std::uint8_t> exchange(net::Ipv4Addr source, net::Ipv4Addr destination,
                                     std::span<const std::uint8_t> query) override;

  [[nodiscard]] const HedgeConfig& config() const { return config_; }

  /// The hedge threshold an exchange would face right now, in ms.
  [[nodiscard]] double current_threshold_ms() const;

  /// Rolling estimator over effective (post-hedge) latencies.
  [[nodiscard]] const net::StreamingQuantile& latency() const { return latency_; }

  // What the hedging layer did, as order-independent sums.
  [[nodiscard]] std::uint64_t exchanges() const { return exchanges_.load(); }
  [[nodiscard]] std::uint64_t hedges_fired() const { return fired_.load(); }
  /// Hedges whose answer beat the (successful) primary.
  [[nodiscard]] std::uint64_t hedge_wins() const { return wins_.load(); }
  /// Hedges the primary beat anyway (wasted duplicate).
  [[nodiscard]] std::uint64_t hedge_losses() const { return losses_.load(); }
  /// Hedges that turned a failed primary into an answer.
  [[nodiscard]] std::uint64_t rescued() const { return rescued_.load(); }
  /// Exchanges where primary and hedge both failed.
  [[nodiscard]] std::uint64_t both_failed() const { return both_failed_.load(); }

  /// Attaches an obs registry (borrowed; nullptr detaches): tallies mirror
  /// as `dns.resolver.hedge.*` and effective latencies feed the
  /// `dns.resolver.hedge.latency_ms` histogram.
  void set_registry(obs::Registry* registry) { registry_ = registry; }

 private:
  void tally(std::atomic<std::uint64_t>& counter, const char* name);

  DnsTransport* inner_;
  HedgeConfig config_;
  net::StreamingQuantile latency_;

  std::atomic<std::uint64_t> exchanges_{0};
  std::atomic<std::uint64_t> fired_{0};
  std::atomic<std::uint64_t> wins_{0};
  std::atomic<std::uint64_t> losses_{0};
  std::atomic<std::uint64_t> rescued_{0};
  std::atomic<std::uint64_t> both_failed_{0};

  obs::Registry* registry_ = nullptr;  // borrowed; optional telemetry mirror
};

}  // namespace drongo::dns
