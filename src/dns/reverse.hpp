// Reverse-DNS (in-addr.arpa) name helpers.
#pragma once

#include <optional>

#include "dns/name.hpp"
#include "net/ip.hpp"

namespace drongo::dns {

/// The PTR owner name for an IPv4 address: 20.1.0.1 -> 1.0.1.20.in-addr.arpa.
DnsName reverse_pointer_name(net::Ipv4Addr address);

/// Parses a PTR owner name back to its address; nullopt when the name is
/// not a full 4-octet in-addr.arpa name.
std::optional<net::Ipv4Addr> parse_reverse_pointer(const DnsName& name);

/// The in-addr.arpa zone apex.
const DnsName& reverse_zone();

}  // namespace drongo::dns
