#include "dns/zonefile.hpp"

#include <charconv>
#include <istream>
#include <sstream>

#include "net/error.hpp"
#include "net/strings.hpp"

namespace drongo::dns {

namespace {

/// Tokenizes one zone-file line: whitespace-separated fields, `;` comment
/// stripping. Double-quoted strings (TXT data) become single tokens tagged
/// with a leading \x01 so empty strings and embedded spaces survive.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (c == ';') break;  // comment to end of line
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    if (c == '"') {
      std::string quoted(1, '\x01');
      ++i;
      while (i < line.size() && line[i] != '"') quoted.push_back(line[i++]);
      if (i >= line.size()) throw net::ParseError("unterminated quoted string");
      ++i;  // closing quote
      tokens.push_back(std::move(quoted));
      continue;
    }
    std::string token;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t' && line[i] != ';' &&
           line[i] != '\r') {
      token.push_back(line[i++]);
    }
    tokens.push_back(std::move(token));
  }
  return tokens;
}

bool parse_u32(const std::string& text, std::uint32_t& out) {
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

/// Resolves a zone-file name: "@" = origin; trailing dot = absolute;
/// otherwise relative to origin.
DnsName resolve_name(const std::string& token, const DnsName& origin) {
  if (token == "@") return origin;
  if (!token.empty() && token.back() == '.') {
    return DnsName::must_parse(token);
  }
  return DnsName::must_parse(token + "." + origin.to_string());
}

}  // namespace

Zone parse_zone(std::istream& in, const DnsName& default_origin) {
  Zone zone;
  zone.origin = default_origin;
  DnsName origin = default_origin;
  std::uint32_t default_ttl = 3600;
  std::optional<DnsName> previous_owner;

  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const bool continuation = !line.empty() && (line[0] == ' ' || line[0] == '\t');
    std::vector<std::string> tokens;
    try {
      tokens = tokenize(line);
    } catch (const net::ParseError& error) {
      throw net::ParseError("line " + std::to_string(line_number) + ": " + error.what());
    }
    if (tokens.empty()) continue;

    auto fail = [&](const std::string& what) -> void {
      throw net::ParseError("line " + std::to_string(line_number) + ": " + what);
    };

    if (tokens[0] == "$ORIGIN") {
      if (tokens.size() != 2) fail("$ORIGIN needs exactly one name");
      origin = DnsName::must_parse(tokens[1]);
      if (zone.records.empty()) zone.origin = origin;
      continue;
    }
    if (tokens[0] == "$TTL") {
      if (tokens.size() != 2 || !parse_u32(tokens[1], default_ttl)) {
        fail("$TTL needs one integer");
      }
      continue;
    }

    // Owner name: from the line, or carried over on a continuation line.
    std::size_t i = 0;
    DnsName owner;
    if (continuation) {
      if (!previous_owner) fail("continuation line before any record");
      owner = *previous_owner;
    } else {
      owner = resolve_name(tokens[i++], origin);
    }

    // Optional TTL and optional class.
    std::uint32_t ttl = default_ttl;
    if (i < tokens.size() && parse_u32(tokens[i], ttl)) ++i;
    if (i < tokens.size() && (tokens[i] == "IN" || tokens[i] == "in")) ++i;
    if (i >= tokens.size()) fail("record missing TYPE");
    const std::string type = net::to_lower(tokens[i++]);
    const std::vector<std::string> rdata(tokens.begin() + static_cast<std::ptrdiff_t>(i),
                                         tokens.end());

    try {
      if (type == "a") {
        if (rdata.size() != 1) fail("A needs one address");
        zone.records.push_back(
            ResourceRecord::a(owner, net::Ipv4Addr::must_parse(rdata[0]), ttl));
      } else if (type == "cname") {
        if (rdata.size() != 1) fail("CNAME needs one target");
        zone.records.push_back(
            ResourceRecord::cname(owner, resolve_name(rdata[0], origin), ttl));
      } else if (type == "ns") {
        if (rdata.size() != 1) fail("NS needs one nameserver");
        zone.records.push_back(
            ResourceRecord::ns(owner, resolve_name(rdata[0], origin), ttl));
      } else if (type == "ptr") {
        if (rdata.size() != 1) fail("PTR needs one target");
        zone.records.push_back(
            ResourceRecord::ptr(owner, resolve_name(rdata[0], origin), ttl));
      } else if (type == "txt") {
        if (rdata.empty()) fail("TXT needs at least one string");
        std::vector<std::string> strings;
        for (const auto& token : rdata) {
          // Quoted strings carry a \x01 marker prefix from the tokenizer.
          strings.push_back(!token.empty() && token[0] == '\x01' ? token.substr(1)
                                                                 : token);
        }
        zone.records.push_back(ResourceRecord::txt(owner, std::move(strings), ttl));
      } else if (type == "soa") {
        if (rdata.size() != 7) fail("SOA needs mname rname serial refresh retry expire minimum");
        SoaRdata soa;
        soa.mname = resolve_name(rdata[0], origin);
        soa.rname = resolve_name(rdata[1], origin);
        if (!parse_u32(rdata[2], soa.serial) || !parse_u32(rdata[3], soa.refresh) ||
            !parse_u32(rdata[4], soa.retry) || !parse_u32(rdata[5], soa.expire) ||
            !parse_u32(rdata[6], soa.minimum)) {
          fail("SOA numeric fields malformed");
        }
        zone.records.push_back(ResourceRecord::soa(owner, std::move(soa), ttl));
      } else {
        fail("unsupported record type '" + type + "'");
      }
    } catch (const net::ParseError& error) {
      const std::string what = error.what();
      if (what.find("line ") == std::string::npos) {
        fail(what);
      }
      throw;
    }
    previous_owner = owner;
  }
  return zone;
}

Zone parse_zone_text(const std::string& text, const DnsName& default_origin) {
  std::istringstream in(text);
  return parse_zone(in, default_origin);
}

StaticZoneServer::StaticZoneServer(Zone zone) : zone_(std::move(zone)) {
  for (std::size_t i = 0; i < zone_.records.size(); ++i) {
    by_name_.emplace(zone_.records[i].name, i);
  }
}

Message StaticZoneServer::handle(const Message& query, net::Ipv4Addr /*source*/) {
  if (query.questions.size() != 1) {
    return Message::make_response(query, Rcode::kFormErr);
  }
  const Question& q = query.questions[0];
  if (!q.name.is_subdomain_of(zone_.origin)) {
    return Message::make_response(query, Rcode::kRefused);
  }
  auto [begin, end] = by_name_.equal_range(q.name);
  if (begin == end) {
    return Message::make_response(query, Rcode::kNxDomain);
  }
  Message response = Message::make_response(query, Rcode::kNoError);
  for (auto it = begin; it != end; ++it) {
    const ResourceRecord& record = zone_.records[it->second];
    // Matching type answers directly; a CNAME at the name answers any type
    // (the resolver chases it).
    if (record.type == q.type || record.type == RrType::kCname) {
      response.answers.push_back(record);
    }
  }
  // Name exists but no data of this type: NOERROR with empty answers.
  return response;
}

}  // namespace drongo::dns
