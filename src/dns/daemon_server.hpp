// The socket-facing DNS daemon: batched UDP + framed TCP over an EventLoop.
//
// This is the serving front end the ROADMAP calls for — the piece that
// turns the in-process resolver core into something a real stub (or `dig`)
// can hit. Each listener thread owns a netio::EventLoop and a SO_REUSEPORT
// UDP socket, so the kernel spreads inbound flows across listeners and
// each listener can be pinned to a core (aligning with ShardedDnsCache's
// lock striping). Datagrams move in recvmmsg/sendmmsg batches through
// preallocated buffers, are decoded by the dns::message codec, answered by
// any DnsServer (in production: cdn::PublicResolver, so coalescing,
// negative caching, hedging, and CoDel shedding apply unchanged), and
// truncated to the client's advertised payload per RFC 1035 — with a TCP
// acceptor on listener 0 carrying the length-prefixed retry path.
//
// Naming note: this class is the *network* daemon. The older
// `core::DrongoDaemon` (src/core/daemon.hpp) is the in-process
// clock-driven *trial scheduler* on the client side of the paper's
// pipeline; the two share nothing but the word. Grep-friendly rule:
// `DaemonServer` listens on sockets, `DrongoDaemon` schedules trials.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "dns/server.hpp"
#include "obs/schema.hpp"

namespace drongo::obs {
class Registry;
}

namespace drongo::dns {

/// Tuning for the serving daemon; every field maps to a DRONGO_DAEMON_*
/// knob in tools/drongo_daemond.cpp.
struct DaemonServerConfig {
  /// UDP serving port; 0 picks an ephemeral port shared by all listeners.
  std::uint16_t udp_port = 0;
  /// TCP fallback port; 0 = ephemeral. Ignored when enable_tcp is false.
  std::uint16_t tcp_port = 0;
  /// Number of UDP listener threads sharing the port via SO_REUSEPORT.
  std::size_t listeners = 1;
  /// recvmmsg/sendmmsg batch size per syscall.
  std::size_t batch = 32;
  /// Per-datagram buffer bound; also caps the UDP payload the daemon will
  /// send even to clients advertising more (responses above it truncate).
  std::size_t max_datagram_bytes = 4096;
  /// Serve the TC→TCP retry path on listener 0.
  bool enable_tcp = true;
  /// Bind AF_INET6 sockets on [::] with IPV6_V6ONLY cleared instead of
  /// 127.0.0.1-only v4 sockets: v6 clients are answered natively (their
  /// family-2 ECS flows through the resolver unchanged) and v4 clients
  /// arrive v4-mapped on the same fd. Off by default — the historical
  /// loopback-v4 daemon.
  bool dual_stack = false;
  /// Pin listener i to CPU i (mod online CPUs); best-effort.
  bool pin_threads = false;
  /// Whole-packet cache capacity per listener; 0 disables it. The cache
  /// keys on the exact query wire (id zeroed), so a hit copies the cached
  /// reply and patches the id without touching the resolver — the standard
  /// front-end packet cache (cf. dnsdist). Only NOERROR answers are cached,
  /// so SERVFAIL shedding and error paths always re-consult the resolver.
  std::size_t packet_cache_entries = 8192;
  /// Packet-cache entry lifetime. Short by design: answer TTLs inside a
  /// cached reply are not decremented, so this bounds their staleness.
  std::uint32_t packet_cache_ttl_ms = 1'000;
  /// Idle TCP connections are reaped after this long.
  std::uint32_t tcp_idle_timeout_ms = 10'000;
  /// Drain bound: TCP connections get this long to flush pending writes
  /// after begin_drain() before being closed forcibly.
  std::uint32_t drain_grace_ms = 1'000;
};

/// Counter snapshot mirroring the `dns.server.*` schema fields.
struct DaemonStats {
  DRONGO_OBS_DNS_SERVER_COUNTERS(DRONGO_OBS_DECLARE_FIELD)
};

/// Serves a DnsServer over real loopback sockets, asynchronously.
///
/// Lifecycle: the constructor binds sockets and starts the listener
/// threads; begin_drain() (idempotent, thread-safe — wire it to SIGTERM)
/// stops intake, answers everything the kernel has already queued, and
/// flushes pending TCP writes before the loops exit; stop() drains and
/// joins. The handler is borrowed, must outlive the daemon, and must be
/// safe for concurrent handle() calls when listeners > 1.
class DaemonServer {
 public:
  DaemonServer(DnsServer* handler, DaemonServerConfig config = {},
               net::Ipv4Addr server_identity = net::Ipv4Addr(127, 0, 0, 1),
               obs::Registry* registry = nullptr);
  ~DaemonServer();

  DaemonServer(const DaemonServer&) = delete;
  DaemonServer& operator=(const DaemonServer&) = delete;

  /// The bound UDP serving port (after ephemeral resolution).
  [[nodiscard]] std::uint16_t udp_port() const { return udp_port_; }

  /// The bound TCP fallback port; 0 when TCP is disabled.
  [[nodiscard]] std::uint16_t tcp_port() const { return tcp_port_; }

  /// Responses actually handed to the kernel (UDP sent + TCP flushed).
  [[nodiscard]] std::uint64_t served() const {
    return served_.load(std::memory_order_relaxed);
  }

  /// Stops intake and answers/flushes all in-flight work. Thread- and
  /// signal-dispatch-safe (callable from a signalfd handler); idempotent.
  void begin_drain();

  /// begin_drain() plus join; after this the sockets are closed. Idempotent.
  void stop();

  /// Counter snapshot (relaxed reads; exact once stopped).
  [[nodiscard]] DaemonStats stats() const;

 private:
  struct AtomicStats {
#define DRONGO_DAEMON_ATOMIC_FIELD(field) std::atomic<std::uint64_t> field{0};
    DRONGO_OBS_DNS_SERVER_COUNTERS(DRONGO_DAEMON_ATOMIC_FIELD)
#undef DRONGO_DAEMON_ATOMIC_FIELD
  };

  struct Listener;
  struct TcpConnection;

  void on_udp_ready(Listener& listener);
  void process_datagrams(Listener& listener, std::size_t count);
  void on_tcp_accept(Listener& listener);
  void on_tcp_event(Listener& listener, int fd, std::uint32_t events);
  void process_tcp_frames(Listener& listener, TcpConnection& connection);
  bool flush_tcp(Listener& listener, TcpConnection& connection, int fd);
  void close_tcp(Listener& listener, int fd);
  void arm_idle_sweep(Listener& listener);
  void drain_listener(Listener& listener);
  void finish_drain_if_quiet(Listener& listener);
  void mirror_stats_to_registry();

  /// Decode + handle + encode for one wire query, writing the reply into
  /// `out` (cleared and reused — the hot path allocates nothing per query).
  /// Consults/feeds the listener's packet cache. Returns false on
  /// undecodable input (counted as malformed). Handler exceptions become
  /// SERVFAIL.
  bool answer_wire(Listener& listener, std::span<const std::uint8_t> wire,
                   bool udp, bool during_drain, std::vector<std::uint8_t>& out);

  DnsServer* handler_;
  net::Ipv4Addr identity_;
  DaemonServerConfig config_;
  obs::Registry* registry_;
  std::uint16_t udp_port_ = 0;
  std::uint16_t tcp_port_ = 0;
  std::vector<std::unique_ptr<Listener>> listeners_;
  std::atomic<bool> drain_started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> served_{0};
  AtomicStats stats_;
};

}  // namespace drongo::dns
