// RFC 1035 §5 master-file (zone file) parsing and a static authoritative.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "dns/server.hpp"

namespace drongo::dns {

/// A parsed zone: its apex and all records.
struct Zone {
  DnsName origin;
  std::vector<ResourceRecord> records;
};

/// Parses a master-file subset:
///   - `$ORIGIN name.` and `$TTL n` directives;
///   - records `name [ttl] [IN] TYPE rdata` for A, NS, CNAME, PTR, TXT, SOA;
///   - `@` for the origin, relative names (no trailing dot) under it;
///   - a bare leading space re-uses the previous owner name;
///   - `;` comments and blank lines.
/// Unsupported types or malformed lines throw net::ParseError with the line
/// number. `default_origin` seeds `@` until a $ORIGIN appears.
Zone parse_zone(std::istream& in, const DnsName& default_origin);
Zone parse_zone_text(const std::string& text, const DnsName& default_origin);

/// Serves a parsed zone: exact-name matches answer with every record of the
/// queried type (CNAMEs answer any type, as resolvers expect), other names
/// under the apex get NXDOMAIN, names outside get REFUSED. No ECS tailoring
/// — this is a plain static authoritative (useful for site zones, test
/// fixtures, and drongo_sim demos).
class StaticZoneServer : public DnsServer {
 public:
  explicit StaticZoneServer(Zone zone);

  [[nodiscard]] const Zone& zone() const { return zone_; }

  Message handle(const Message& query, net::Ipv4Addr source) override;

 private:
  Zone zone_;
  std::multimap<DnsName, std::size_t> by_name_;  // name -> record index
};

}  // namespace drongo::dns
