#include "dns/faults.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>

#include "dns/message.hpp"
#include "net/error.hpp"

namespace drongo::dns {

namespace {

/// FNV-1a over the whole exchange identity. Query bytes include the id and
/// the 0x20-randomized name, so every attempt — even of the same logical
/// question — selects its own fault stream.
std::uint64_t exchange_hash(net::Ipv4Addr source, net::Ipv4Addr destination,
                            std::span<const std::uint8_t> query) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  auto mix = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 0x100000001B3ULL;
  };
  for (int shift = 24; shift >= 0; shift -= 8) {
    mix(static_cast<std::uint8_t>(source.to_uint() >> shift));
    mix(static_cast<std::uint8_t>(destination.to_uint() >> shift));
  }
  for (std::uint8_t byte : query) mix(byte);
  return h;
}

thread_local double g_fault_time_hours = std::numeric_limits<double>::quiet_NaN();

}  // namespace

bool FaultProfile::active() const {
  return loss_prob > 0.0 || timeout_prob > 0.0 || servfail_prob > 0.0 ||
         refused_prob > 0.0 || truncate_prob > 0.0 || ecs_strip_prob > 0.0 ||
         scope_zero_prob > 0.0 || !outages.empty();
}

FaultProfile FaultProfile::lossy() {
  FaultProfile p;
  p.loss_prob = 0.10;
  p.truncate_prob = 0.05;
  return p;
}

FaultProfile FaultProfile::flaky() {
  FaultProfile p;
  p.servfail_prob = 0.10;
  p.refused_prob = 0.03;
  p.loss_prob = 0.02;
  return p;
}

FaultProfile FaultProfile::ecs_hostile() {
  FaultProfile p;
  p.ecs_strip_prob = 0.25;
  p.scope_zero_prob = 0.25;
  return p;
}

FaultProfile FaultProfile::chaos() {
  FaultProfile p;
  p.loss_prob = 0.08;
  p.timeout_prob = 0.03;
  p.servfail_prob = 0.05;
  p.refused_prob = 0.02;
  p.truncate_prob = 0.05;
  p.ecs_strip_prob = 0.15;
  p.scope_zero_prob = 0.10;
  return p;
}

FaultProfile parse_fault_profile(const std::string& name) {
  if (name.empty() || name == "none") return FaultProfile::none();
  if (name == "lossy") return FaultProfile::lossy();
  if (name == "flaky") return FaultProfile::flaky();
  if (name == "ecs-hostile") return FaultProfile::ecs_hostile();
  if (name == "chaos") return FaultProfile::chaos();
  throw net::InvalidArgument(
      "unknown fault profile \"" + name +
      "\" (expected none | lossy | flaky | ecs-hostile | chaos)");
}

double parse_fault_prob(const char* value, double fallback, const std::string& knob) {
  if (value == nullptr || value[0] == '\0') return fallback;
  const std::string v(value);
  std::size_t consumed = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(v, &consumed);
  } catch (const std::exception&) {
    throw net::InvalidArgument(knob + " must be a probability in [0, 1], got \"" + v +
                               "\"");
  }
  if (consumed != v.size() || !(parsed >= 0.0 && parsed <= 1.0)) {
    throw net::InvalidArgument(knob + " must be a probability in [0, 1], got \"" + v +
                               "\"");
  }
  return parsed;
}

namespace {

FaultProfile parse_profile_override(const char* name, FaultProfile base) {
  if (name == nullptr || name[0] == '\0') return base;
  return parse_fault_profile(name);
}

}  // namespace

FaultProfile fault_profile_from_env(FaultProfile base) {
  base = parse_profile_override(std::getenv("DRONGO_FAULT_PROFILE"), base);
  base.loss_prob = parse_fault_prob(std::getenv("DRONGO_FAULT_LOSS"), base.loss_prob,
                                    "DRONGO_FAULT_LOSS");
  base.timeout_prob = parse_fault_prob(std::getenv("DRONGO_FAULT_TIMEOUT"),
                                       base.timeout_prob, "DRONGO_FAULT_TIMEOUT");
  base.servfail_prob = parse_fault_prob(std::getenv("DRONGO_FAULT_SERVFAIL"),
                                        base.servfail_prob, "DRONGO_FAULT_SERVFAIL");
  base.refused_prob = parse_fault_prob(std::getenv("DRONGO_FAULT_REFUSED"),
                                       base.refused_prob, "DRONGO_FAULT_REFUSED");
  base.truncate_prob = parse_fault_prob(std::getenv("DRONGO_FAULT_TRUNCATE"),
                                        base.truncate_prob, "DRONGO_FAULT_TRUNCATE");
  base.ecs_strip_prob = parse_fault_prob(std::getenv("DRONGO_FAULT_ECS_STRIP"),
                                         base.ecs_strip_prob, "DRONGO_FAULT_ECS_STRIP");
  base.scope_zero_prob = parse_fault_prob(std::getenv("DRONGO_FAULT_SCOPE_ZERO"),
                                          base.scope_zero_prob,
                                          "DRONGO_FAULT_SCOPE_ZERO");
  return base;
}

ScopedFaultTime::ScopedFaultTime(double time_hours) : previous_(g_fault_time_hours) {
  g_fault_time_hours = time_hours;
}

ScopedFaultTime::~ScopedFaultTime() { g_fault_time_hours = previous_; }

double ScopedFaultTime::current() { return g_fault_time_hours; }

FaultyTransport::FaultyTransport(DnsTransport* inner, std::uint64_t seed,
                                 FaultProfile profile, Channel channel)
    : inner_(inner), seed_(seed), profile_(std::move(profile)), channel_(channel) {
  if (inner_ == nullptr) throw net::InvalidArgument("null inner DnsTransport");
}

void FaultyTransport::set_registry(obs::Registry* registry, std::string_view scope) {
  registry_ = registry;
  metric_prefix_ = "dns.fault." + std::string(scope) + ".";
}

void FaultyTransport::tally(std::atomic<std::uint64_t>& counter, const char* kind) {
  counter.fetch_add(1, std::memory_order_relaxed);
  if (registry_ != nullptr) registry_->add(metric_prefix_ + kind);
}

std::vector<std::uint8_t> FaultyTransport::exchange(net::Ipv4Addr source,
                                                    net::Ipv4Addr destination,
                                                    std::span<const std::uint8_t> query) {
  // One derived stream per exchange: every decision below is a pure
  // function of (seed, channel, exchange bytes). The rng is local, so
  // short-circuiting after an early fault cannot perturb any other
  // exchange's draws.
  net::Rng rng = net::Rng::derive(seed_, exchange_hash(source, destination, query),
                                  static_cast<std::uint64_t>(channel_));

  const double now = ScopedFaultTime::current();
  if (!std::isnan(now)) {
    for (const auto& outage : profile_.outages) {
      if (destination == outage.server && now >= outage.start_hours &&
          now < outage.end_hours) {
        tally(outage_hits_, "outage");
        throw net::UnreachableError("injected outage at " + destination.to_string());
      }
    }
  }

  if (rng.chance(profile_.loss_prob)) {
    tally(losses_, "loss");
    throw net::TimeoutError("injected loss toward " + destination.to_string());
  }

  bool touched = false;
  std::vector<std::uint8_t> forwarded_wire;
  std::span<const std::uint8_t> to_send = query;
  std::optional<Message> decoded_query;
  if (profile_.servfail_prob > 0.0 || profile_.refused_prob > 0.0 ||
      profile_.ecs_strip_prob > 0.0) {
    decoded_query = Message::decode(query);
  }

  if (decoded_query) {
    if (rng.chance(profile_.servfail_prob)) {
      tally(servfails_, "servfail");
      return Message::make_response(*decoded_query, Rcode::kServFail).encode();
    }
    if (rng.chance(profile_.refused_prob)) {
      tally(refusals_, "refused");
      return Message::make_response(*decoded_query, Rcode::kRefused).encode();
    }
    if (decoded_query->edns && decoded_query->edns->client_subnet &&
        rng.chance(profile_.ecs_strip_prob)) {
      // The recursive drops ECS before resolving: the answer will be
      // tailored to the transport source address instead — assimilation
      // silently neutralized, exactly the measured real-world pathology.
      tally(ecs_strips_, "ecs_strip");
      Message stripped = *decoded_query;
      stripped.clear_client_subnet();
      forwarded_wire = stripped.encode();
      to_send = forwarded_wire;
      touched = true;
    }
  }

  std::vector<std::uint8_t> reply = inner_->exchange(source, destination, to_send);

  if (rng.chance(profile_.timeout_prob)) {
    tally(timeouts_, "timeout");
    throw net::TimeoutError("injected reply loss from " + destination.to_string());
  }

  const bool truncate =
      channel_ == Channel::kUdp && rng.chance(profile_.truncate_prob);
  const bool scope_zero = rng.chance(profile_.scope_zero_prob);
  if (truncate || scope_zero) {
    Message response = Message::decode(reply);
    if (truncate) {
      tally(truncations_, "truncate");
      response.header.tc = true;
      response.answers.clear();
      response.authority.clear();
      response.additional.clear();
    }
    if (scope_zero && response.edns && response.edns->client_subnet) {
      tally(scope_zeros_, "scope_zero");
      response.edns->client_subnet->scope_prefix_length = 0;
    }
    reply = response.encode();
    touched = true;
  }

  if (!touched) tally(clean_, "clean");
  return reply;
}

}  // namespace drongo::dns
