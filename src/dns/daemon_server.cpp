#include "dns/daemon_server.hpp"

#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <string>
#include <unordered_map>

#include "dns/message.hpp"
#include "dns/tcp.hpp"
#include "net/clock.hpp"
#include "net/error.hpp"
#include "netio/event_loop.hpp"
#include "netio/socket.hpp"
#include "obs/metrics.hpp"

namespace drongo::dns {

struct DaemonServer::TcpConnection {
  std::vector<std::uint8_t> in;
  std::size_t in_off = 0;
  std::vector<std::uint8_t> out;
  std::size_t out_off = 0;
  bool want_write = false;
  bool peer_closed = false;
  std::uint64_t last_active_ms = 0;
};

/// One whole-packet cache entry: the final reply wire for one exact query
/// wire (post-truncation for UDP, so the key includes the protocol).
struct PacketCacheEntry {
  std::vector<std::uint8_t> wire;
  std::uint64_t stored_ms = 0;
};

struct DaemonServer::Listener {
  std::size_t index;
  netio::EventLoop loop;
  netio::UdpBatch batch;
  int udp_fd = -1;
  int tcp_listen_fd = -1;
  std::vector<std::uint8_t> scratch;  // reply wire buffer, reused per query
  // Per-listener (single-threaded, so lock-free) packet cache. The key is
  // the query wire with the id bytes zeroed plus one protocol byte; the id
  // is patched back in on a hit. key_scratch is reused so cache probes
  // allocate nothing once its capacity settles.
  std::unordered_map<std::string, PacketCacheEntry> packet_cache;
  std::string key_scratch;
  std::unordered_map<int, TcpConnection> connections;
  bool draining = false;  // loop-thread state, set by the posted drain task
  std::thread thread;

  Listener(std::size_t idx, std::size_t batch_size, std::size_t datagram_bytes)
      : index(idx), batch(batch_size, datagram_bytes) {}
};

DaemonServer::DaemonServer(DnsServer* handler, DaemonServerConfig config,
                           net::Ipv4Addr server_identity, obs::Registry* registry)
    : handler_(handler), identity_(server_identity), config_(config), registry_(registry) {
  if (handler_ == nullptr) throw net::InvalidArgument("null DnsServer");
  config_.listeners = std::max<std::size_t>(config_.listeners, 1);
  config_.batch = std::max<std::size_t>(config_.batch, 1);
  // 512 is the classic DNS floor; anything below it cannot carry answers.
  config_.max_datagram_bytes = std::max<std::size_t>(config_.max_datagram_bytes, 512);

  listeners_.reserve(config_.listeners);
  for (std::size_t i = 0; i < config_.listeners; ++i) {
    auto listener =
        std::make_unique<Listener>(i, config_.batch, config_.max_datagram_bytes);
    std::uint16_t bound = 0;
    // Listener 0 resolves an ephemeral request; the rest join its port.
    listener->udp_fd = netio::open_udp_reuseport(
        i == 0 ? config_.udp_port : udp_port_, &bound, config_.dual_stack);
    if (i == 0) udp_port_ = bound;
    listener->loop.set_registry(registry_);
    Listener* raw = listener.get();
    listener->loop.add_fd(listener->udp_fd, EPOLLIN,
                          [this, raw](std::uint32_t) { on_udp_ready(*raw); });
    listeners_.push_back(std::move(listener));
  }

  if (config_.enable_tcp) {
    Listener* first = listeners_.front().get();
    first->tcp_listen_fd = netio::open_tcp_listener(config_.tcp_port, &tcp_port_,
                                                    /*backlog=*/128, config_.dual_stack);
    first->loop.add_fd(first->tcp_listen_fd, EPOLLIN,
                       [this, first](std::uint32_t) { on_tcp_accept(*first); });
    arm_idle_sweep(*first);
  }

  for (auto& listener : listeners_) {
    Listener* raw = listener.get();
    raw->thread = std::thread([this, raw] {
      if (config_.pin_threads) {
        netio::pin_thread_to_cpu(static_cast<unsigned>(raw->index));
      }
      raw->loop.run();
    });
  }
}

DaemonServer::~DaemonServer() { stop(); }

void DaemonServer::begin_drain() {
  bool expected = false;
  if (!drain_started_.compare_exchange_strong(expected, true)) return;
  for (auto& listener : listeners_) {
    Listener* raw = listener.get();
    raw->loop.post([this, raw] { drain_listener(*raw); });
  }
}

void DaemonServer::stop() {
  begin_drain();
  for (auto& listener : listeners_) {
    if (listener->thread.joinable()) listener->thread.join();
  }
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) return;
  // The loops have exited; release anything the drain grace cut short.
  for (auto& listener : listeners_) {
    for (auto& [fd, conn] : listener->connections) ::close(fd);
    listener->connections.clear();
    if (listener->udp_fd >= 0) ::close(listener->udp_fd);
    if (listener->tcp_listen_fd >= 0) ::close(listener->tcp_listen_fd);
    listener->udp_fd = listener->tcp_listen_fd = -1;
  }
  mirror_stats_to_registry();
}

DaemonStats DaemonServer::stats() const {
  DaemonStats out;
#define DRONGO_DAEMON_LOAD_FIELD(field) \
  out.field = stats_.field.load(std::memory_order_relaxed);
  DRONGO_OBS_DNS_SERVER_COUNTERS(DRONGO_DAEMON_LOAD_FIELD)
#undef DRONGO_DAEMON_LOAD_FIELD
  return out;
}

void DaemonServer::mirror_stats_to_registry() {
  if (registry_ == nullptr) return;
#define DRONGO_DAEMON_MIRROR_FIELD(field)                  \
  registry_->add(obs::counter_name("dns.server.", #field), \
                 stats_.field.load(std::memory_order_relaxed));
  DRONGO_OBS_DNS_SERVER_COUNTERS(DRONGO_DAEMON_MIRROR_FIELD)
#undef DRONGO_DAEMON_MIRROR_FIELD
}

bool DaemonServer::answer_wire(Listener& listener, std::span<const std::uint8_t> wire,
                               bool udp, bool during_drain,
                               std::vector<std::uint8_t>& out) {
  // Packet-cache probe: identical query bytes (id aside) get identical reply
  // bytes, so a hit is a memcpy plus a 2-byte id patch — the resolver, the
  // codec, and every per-query allocation are skipped entirely.
  const bool cacheable = config_.packet_cache_entries > 0 && wire.size() >= 12;
  if (cacheable) {
    std::string& key = listener.key_scratch;
    key.assign(reinterpret_cast<const char*>(wire.data()), wire.size());
    key[0] = key[1] = '\0';  // the id must not split cache entries
    key.push_back(udp ? '\1' : '\0');
    const auto it = listener.packet_cache.find(key);
    if (it != listener.packet_cache.end()) {
      if (net::steady_now_ms() - it->second.stored_ms <=
          config_.packet_cache_ttl_ms) {
        out.assign(it->second.wire.begin(), it->second.wire.end());
        out[0] = wire[0];
        out[1] = wire[1];
        stats_.pcache_hits.fetch_add(1, std::memory_order_relaxed);
        if (during_drain) stats_.drained.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      listener.packet_cache.erase(it);
    }
    stats_.pcache_misses.fetch_add(1, std::memory_order_relaxed);
  }

  Message query;
  try {
    query = Message::decode(wire);
  } catch (const net::Error&) {
    stats_.malformed.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Message reply;
  bool handler_failed = false;
  try {
    reply = handler_->handle(query, identity_);
  } catch (const net::Error&) {
    // The resolver path signals overload/upstream failure via the error
    // taxonomy; a wire client must still get an answer.
    stats_.handler_failures.fetch_add(1, std::memory_order_relaxed);
    handler_failed = true;
    reply = Message::make_response(query, Rcode::kServFail);
  }
  // Encode straight into the caller's scratch, then truncate only when the
  // wire actually overflows the UDP limit — the fitting case (nearly every
  // reply) pays exactly one encode and zero allocations.
  reply.encode_to(out);
  if (udp) {
    const std::size_t limit =
        std::min(max_udp_payload(query), config_.max_datagram_bytes);
    if (out.size() > limit) {
      truncate_to_fit(reply, limit);
      stats_.truncated.fetch_add(1, std::memory_order_relaxed);
      reply.encode_to(out);
    }
  }
  // Only clean NOERROR answers are cached: SERVFAIL (including CoDel
  // shedding) and other error rcodes must re-consult the resolver so that
  // transient failure never sticks for a TTL.
  if (cacheable && !handler_failed && reply.header.rcode == Rcode::kNoError) {
    if (listener.packet_cache.size() >= config_.packet_cache_entries) {
      // Generation flush: crude but O(1) amortized and strictly bounded.
      listener.packet_cache.clear();
    }
    listener.packet_cache.emplace(
        listener.key_scratch,
        PacketCacheEntry{out, net::steady_now_ms()});
  }
  if (during_drain) stats_.drained.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void DaemonServer::on_udp_ready(Listener& listener) {
  if (listener.udp_fd < 0) return;
  // Edge-triggered: drain the socket to EAGAIN before returning.
  for (;;) {
    const std::size_t count = listener.batch.receive(listener.udp_fd);
    if (count == 0) break;
    stats_.udp_batches.fetch_add(1, std::memory_order_relaxed);
    process_datagrams(listener, count);
  }
}

void DaemonServer::process_datagrams(Listener& listener, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    if (!answer_wire(listener, listener.batch.payload(i), /*udp=*/true,
                     listener.draining, listener.scratch)) {
      continue;
    }
    stats_.udp_queries.fetch_add(1, std::memory_order_relaxed);
    if (listener.scratch.size() > listener.batch.datagram_capacity()) continue;
    if (listener.batch.staged() == listener.batch.batch_size()) {
      const std::size_t sent = listener.batch.flush(listener.udp_fd);
      stats_.udp_responses.fetch_add(sent, std::memory_order_relaxed);
      served_.fetch_add(sent, std::memory_order_relaxed);
    }
    listener.batch.stage(listener.batch.source(i), listener.batch.source_len(i),
                         listener.scratch);
  }
  const std::size_t sent = listener.batch.flush(listener.udp_fd);
  stats_.udp_responses.fetch_add(sent, std::memory_order_relaxed);
  served_.fetch_add(sent, std::memory_order_relaxed);
}

void DaemonServer::on_tcp_accept(Listener& listener) {
  if (listener.tcp_listen_fd < 0) return;
  for (;;) {
    const int fd = netio::accept_nonblocking(listener.tcp_listen_fd);
    if (fd < 0) break;
    stats_.tcp_connections.fetch_add(1, std::memory_order_relaxed);
    TcpConnection& conn = listener.connections[fd];
    conn.last_active_ms = net::steady_now_ms();
    listener.loop.add_fd(fd, EPOLLIN, [this, &listener, fd](std::uint32_t events) {
      on_tcp_event(listener, fd, events);
    });
  }
}

void DaemonServer::on_tcp_event(Listener& listener, int fd, std::uint32_t events) {
  auto it = listener.connections.find(fd);
  if (it == listener.connections.end()) return;
  TcpConnection& conn = it->second;
  conn.last_active_ms = net::steady_now_ms();
  bool ok = (events & (EPOLLHUP | EPOLLERR)) == 0;
  if (ok && (events & EPOLLIN) != 0) {
    std::uint8_t buffer[4096];
    for (;;) {
      const ssize_t n = ::read(fd, buffer, sizeof(buffer));
      if (n > 0) {
        conn.in.insert(conn.in.end(), buffer, buffer + n);
        continue;
      }
      if (n == 0) {
        conn.peer_closed = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
  }
  if (ok) {
    process_tcp_frames(listener, conn);
    ok = !conn.peer_closed || !conn.out.empty();  // keep only to finish writes
    if (!flush_tcp(listener, conn, fd)) ok = false;
  }
  const bool flushed = conn.out_off >= conn.out.size();
  if (!ok || (conn.peer_closed && flushed)) {
    close_tcp(listener, fd);
  }
  if (listener.draining) finish_drain_if_quiet(listener);
}

void DaemonServer::process_tcp_frames(Listener& listener, TcpConnection& conn) {
  for (;;) {
    const std::size_t avail = conn.in.size() - conn.in_off;
    if (avail < 2) break;
    const std::size_t frame_len =
        (static_cast<std::size_t>(conn.in[conn.in_off]) << 8) |
        static_cast<std::size_t>(conn.in[conn.in_off + 1]);
    if (avail < 2 + frame_len) break;
    const std::span<const std::uint8_t> wire(conn.in.data() + conn.in_off + 2,
                                             frame_len);
    conn.in_off += 2 + frame_len;
    if (!answer_wire(listener, wire, /*udp=*/false, listener.draining,
                     listener.scratch)) {
      // A garbage frame means the stream cannot be trusted to re-sync;
      // drop the connection, as for any framing violation.
      conn.peer_closed = true;
      conn.out.clear();
      conn.out_off = 0;
      break;
    }
    const std::vector<std::uint8_t>& reply = listener.scratch;
    stats_.tcp_queries.fetch_add(1, std::memory_order_relaxed);
    if (reply.size() > 0xFFFF) {
      stats_.handler_failures.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    conn.out.push_back(static_cast<std::uint8_t>(reply.size() >> 8));
    conn.out.push_back(static_cast<std::uint8_t>(reply.size() & 0xFF));
    conn.out.insert(conn.out.end(), reply.begin(), reply.end());
    // Counted at staging: the drain path guarantees staged bytes are
    // flushed (or the grace timer expires and the client sees a reset).
    stats_.tcp_responses.fetch_add(1, std::memory_order_relaxed);
    served_.fetch_add(1, std::memory_order_relaxed);
  }
  if (conn.in_off > 0) {
    conn.in.erase(conn.in.begin(),
                  conn.in.begin() + static_cast<std::ptrdiff_t>(conn.in_off));
    conn.in_off = 0;
  }
}

bool DaemonServer::flush_tcp(Listener& listener, TcpConnection& conn, int fd) {
  while (conn.out_off < conn.out.size()) {
    const ssize_t n = ::send(fd, conn.out.data() + conn.out_off,
                             conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!conn.want_write) {
        listener.loop.modify_fd(fd, EPOLLIN | EPOLLOUT);
        conn.want_write = true;
      }
      return true;
    }
    if (errno == EINTR) continue;
    return false;
  }
  conn.out.clear();
  conn.out_off = 0;
  if (conn.want_write) {
    listener.loop.modify_fd(fd, EPOLLIN);
    conn.want_write = false;
  }
  return true;
}

void DaemonServer::close_tcp(Listener& listener, int fd) {
  listener.loop.remove_fd(fd);
  ::close(fd);
  listener.connections.erase(fd);
}

void DaemonServer::arm_idle_sweep(Listener& listener) {
  if (config_.tcp_idle_timeout_ms == 0) return;
  Listener* raw = &listener;
  listener.loop.add_timer(config_.tcp_idle_timeout_ms / 2 + 1, [this, raw] {
    if (raw->draining) return;
    const std::uint64_t now = net::steady_now_ms();
    std::vector<int> idle;
    for (const auto& [fd, conn] : raw->connections) {
      if (now - conn.last_active_ms >= config_.tcp_idle_timeout_ms &&
          conn.out_off >= conn.out.size()) {
        idle.push_back(fd);
      }
    }
    for (const int fd : idle) close_tcp(*raw, fd);
    arm_idle_sweep(*raw);
  });
}

void DaemonServer::drain_listener(Listener& listener) {
  listener.draining = true;
  // Answer everything the kernel queued before intake stops: sweep the UDP
  // socket to EAGAIN, then close it so no new datagrams land.
  if (listener.udp_fd >= 0) {
    for (;;) {
      const std::size_t count = listener.batch.receive(listener.udp_fd);
      if (count == 0) break;
      stats_.udp_batches.fetch_add(1, std::memory_order_relaxed);
      process_datagrams(listener, count);
    }
    listener.loop.remove_fd(listener.udp_fd);
    ::close(listener.udp_fd);
    listener.udp_fd = -1;
  }
  if (listener.tcp_listen_fd >= 0) {
    listener.loop.remove_fd(listener.tcp_listen_fd);
    ::close(listener.tcp_listen_fd);
    listener.tcp_listen_fd = -1;
  }
  if (!listener.connections.empty()) {
    Listener* raw = &listener;
    listener.loop.add_timer(config_.drain_grace_ms, [this, raw] {
      std::vector<int> fds;
      fds.reserve(raw->connections.size());
      for (const auto& [fd, conn] : raw->connections) fds.push_back(fd);
      for (const int fd : fds) close_tcp(*raw, fd);
      raw->loop.stop();
    });
  }
  finish_drain_if_quiet(listener);
}

void DaemonServer::finish_drain_if_quiet(Listener& listener) {
  if (!listener.draining) return;
  for (const auto& [fd, conn] : listener.connections) {
    if (conn.out_off < conn.out.size()) return;  // still flushing a reply
  }
  std::vector<int> fds;
  fds.reserve(listener.connections.size());
  for (const auto& [fd, conn] : listener.connections) fds.push_back(fd);
  for (const int fd : fds) close_tcp(listener, fd);
  listener.loop.stop();
}

}  // namespace drongo::dns
