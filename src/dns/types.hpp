// DNS enumerations: record types, classes, opcodes, response codes.
#pragma once

#include <cstdint>
#include <string>

namespace drongo::dns {

/// Resource record types (RFC 1035 plus EDNS0 OPT and AAAA).
enum class RrType : std::uint16_t {
  kA = 1,
  kNs = 2,
  kCname = 5,
  kSoa = 6,
  kPtr = 12,
  kTxt = 16,
  kAaaa = 28,
  kOpt = 41,
};

/// Record classes. Only IN is used by drongo; the OPT pseudo-record reuses
/// the class field for the advertised UDP payload size.
enum class RrClass : std::uint16_t {
  kIn = 1,
  kCh = 3,
  kAny = 255,
};

/// Query opcodes.
enum class Opcode : std::uint8_t {
  kQuery = 0,
  kStatus = 2,
};

/// Response codes (RFC 1035 §4.1.1, plus RFC 6891 extended values that fit
/// in 4 bits).
enum class Rcode : std::uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNxDomain = 3,
  kNotImp = 4,
  kRefused = 5,
};

std::string to_string(RrType type);
std::string to_string(Rcode rcode);

}  // namespace drongo::dns
