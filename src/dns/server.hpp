// Abstract DNS server and transport interfaces.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "dns/message.hpp"
#include "net/ip.hpp"

namespace drongo::dns {

/// Anything that answers DNS queries: authoritative servers, recursives,
/// proxies. Implementations must be prepared for arbitrary (decoded) queries
/// and must not throw for merely unsupported ones — return REFUSED/NOTIMP.
class DnsServer {
 public:
  virtual ~DnsServer() = default;

  /// Produces a response for `query`. `source` is the transport-level source
  /// address of the query (what a resolver would fall back to without ECS).
  virtual Message handle(const Message& query, net::Ipv4Addr source) = 0;
};

/// A byte-level query/response channel to a named server address. Both the
/// in-memory network and the UDP client implement this, so everything above
/// (stub resolver, Drongo) is transport-agnostic and always exercises the
/// full wire codec.
class DnsTransport {
 public:
  virtual ~DnsTransport() = default;

  /// Sends encoded query bytes originating at `source` to the server at
  /// `destination`; returns the encoded response. Throws net::Error on
  /// unreachable servers or timeouts.
  virtual std::vector<std::uint8_t> exchange(net::Ipv4Addr source,
                                             net::Ipv4Addr destination,
                                             std::span<const std::uint8_t> query) = 0;
};

}  // namespace drongo::dns
