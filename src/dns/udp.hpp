// UDP transport: serve and query DNS over real sockets (loopback demos).
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_map>

#include "dns/server.hpp"

namespace drongo::dns {

/// RAII UDP socket bound to 127.0.0.1. Closes on destruction; moves only.
class UdpSocket {
 public:
  /// Binds to the given port on loopback; 0 picks an ephemeral port.
  /// Throws net::Error on socket/bind failure.
  explicit UdpSocket(std::uint16_t port = 0);
  ~UdpSocket();

  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  /// The bound port (useful after an ephemeral bind).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Sets the receive timeout in milliseconds (0 = blocking).
  void set_receive_timeout(int timeout_ms);

  /// Sends a datagram to 127.0.0.1:dest_port.
  void send_to(std::uint16_t dest_port, std::span<const std::uint8_t> data);

  /// Receives one datagram; returns the payload and fills `from_port`.
  /// Returns an empty vector on timeout.
  std::vector<std::uint8_t> receive_from(std::uint16_t& from_port);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Runs a DnsServer on a loopback UDP socket in a background thread.
///
/// Each datagram is decoded, handled, encoded, and sent back — the same
/// message path the in-memory network uses, but over the kernel. `dig` can
/// be pointed at it. The serving loop stops when the object is destroyed or
/// stop() is called.
class UdpDnsServer {
 public:
  /// Starts serving `server` on `port` (0 = ephemeral). The DnsServer is
  /// borrowed and must outlive this object. `server_identity` is passed to
  /// handlers as the transport source for queries (real peers are loopback,
  /// which carries no topology meaning).
  UdpDnsServer(DnsServer* server, std::uint16_t port = 0,
               net::Ipv4Addr server_identity = net::Ipv4Addr(127, 0, 0, 1));
  ~UdpDnsServer();

  UdpDnsServer(const UdpDnsServer&) = delete;
  UdpDnsServer& operator=(const UdpDnsServer&) = delete;

  [[nodiscard]] std::uint16_t port() const { return socket_.port(); }
  [[nodiscard]] std::uint64_t served() const { return served_.load(); }

  void stop();

 private:
  void serve_loop();

  DnsServer* handler_;
  net::Ipv4Addr identity_;
  UdpSocket socket_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> served_{0};
  std::thread thread_;
};

/// DnsTransport over loopback UDP. Simulated server addresses are mapped to
/// real localhost ports via register_endpoint, so code written against the
/// in-memory network runs unmodified over sockets.
class UdpDnsClient : public DnsTransport {
 public:
  /// `attempts` retransmissions-plus-one on timeout: UDP is lossy, real
  /// stubs retry.
  explicit UdpDnsClient(int timeout_ms = 2000, int attempts = 3);

  /// Maps a simulated server address to a localhost UDP port.
  void register_endpoint(net::Ipv4Addr server, std::uint16_t port);

  std::vector<std::uint8_t> exchange(net::Ipv4Addr source, net::Ipv4Addr destination,
                                     std::span<const std::uint8_t> query) override;

 private:
  UdpSocket socket_;
  std::unordered_map<net::Ipv4Addr, std::uint16_t> endpoints_;
  int attempts_;
};

}  // namespace drongo::dns
