#include "dns/types.hpp"

namespace drongo::dns {

std::string to_string(RrType type) {
  switch (type) {
    case RrType::kA: return "A";
    case RrType::kNs: return "NS";
    case RrType::kCname: return "CNAME";
    case RrType::kSoa: return "SOA";
    case RrType::kPtr: return "PTR";
    case RrType::kTxt: return "TXT";
    case RrType::kAaaa: return "AAAA";
    case RrType::kOpt: return "OPT";
  }
  return "TYPE" + std::to_string(static_cast<std::uint16_t>(type));
}

std::string to_string(Rcode rcode) {
  switch (rcode) {
    case Rcode::kNoError: return "NOERROR";
    case Rcode::kFormErr: return "FORMERR";
    case Rcode::kServFail: return "SERVFAIL";
    case Rcode::kNxDomain: return "NXDOMAIN";
    case Rcode::kNotImp: return "NOTIMP";
    case Rcode::kRefused: return "REFUSED";
  }
  return "RCODE" + std::to_string(static_cast<int>(rcode));
}

}  // namespace drongo::dns
