// Deterministic fault injection for DNS transports.
//
// The real Internet that Drongo must survive is lossy and flaky: recursives
// time out, return SERVFAIL in bursts, strip or ignore ECS, truncate over
// UDP; authoritatives go dark mid-campaign. `FaultyTransport` decorates any
// `DnsTransport` with exactly those pathologies, driven by a seeded RNG so a
// faulty campaign is as reproducible as a clean one: every fault decision is
// a pure function of (fault seed, channel, exchange bytes) — no shared
// mutable state — which keeps parallel campaign runs byte-identical to
// serial ones even while faults fire.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "dns/server.hpp"
#include "net/rng.hpp"
#include "obs/metrics.hpp"

namespace drongo::dns {

/// Fault policy: per-exchange probabilities plus timed outage windows.
/// All probabilities are independent draws in [0, 1].
struct FaultProfile {
  /// Query or response dropped in flight; the client observes a timeout.
  double loss_prob = 0.0;
  /// Server accepted the query but the reply never made it back in time.
  /// Observably identical to loss, counted separately (server-side fault).
  double timeout_prob = 0.0;
  /// The recursive answers SERVFAIL (overload, upstream trouble).
  double servfail_prob = 0.0;
  /// The recursive answers REFUSED (policy, lame delegation).
  double refused_prob = 0.0;
  /// UDP response comes back truncated (TC=1, answers dropped), forcing the
  /// client to retry over TCP. Never applied on the TCP channel.
  double truncate_prob = 0.0;
  /// The recursive strips the ECS option from the query before resolving —
  /// the "resolver ignores ECS" pathology that silently disables subnet
  /// assimilation (the answer falls back to the transport source address).
  double ecs_strip_prob = 0.0;
  /// The response's ECS scope is forced to /0 ("I did not tailor this"), as
  /// scope-zero recursives do.
  double scope_zero_prob = 0.0;

  /// A server that is dark for a window of simulated campaign time
  /// (mid-run authoritative or recursive outages). Matched against the
  /// exchange destination and the ScopedFaultTime clock; exchanges outside
  /// any trial (no clock set) never hit outage windows.
  struct Outage {
    net::Ipv4Addr server;
    double start_hours = 0.0;
    double end_hours = 0.0;
  };
  std::vector<Outage> outages;

  /// True when any fault can ever fire.
  [[nodiscard]] bool active() const;

  /// Named profiles for the CLI/env knobs.
  static FaultProfile none() { return {}; }
  /// 10% loss + occasional truncation: a congested last mile.
  static FaultProfile lossy();
  /// SERVFAIL/REFUSED bursts with light loss: an overloaded recursive.
  static FaultProfile flaky();
  /// ECS stripped or de-scoped: the resolver/CDN interplay pathologies.
  static FaultProfile ecs_hostile();
  /// Everything at once.
  static FaultProfile chaos();
};

/// Parses a profile name: none | lossy | flaky | ecs-hostile | chaos.
/// Throws net::InvalidArgument for anything else.
FaultProfile parse_fault_profile(const std::string& name);

/// Parses one probability knob value: "" keeps `fallback`, otherwise a
/// double in [0, 1]. Malformed values throw net::InvalidArgument loudly —
/// a typo in a batch-job environment must not silently run fault-free.
double parse_fault_prob(const char* value, double fallback, const std::string& knob);

/// Builds a profile from the environment on top of `base`:
/// DRONGO_FAULT_PROFILE names a base profile (overriding `base`), then
/// DRONGO_FAULT_LOSS / _TIMEOUT / _SERVFAIL / _REFUSED / _TRUNCATE /
/// _ECS_STRIP / _SCOPE_ZERO override individual probabilities.
FaultProfile fault_profile_from_env(FaultProfile base = {});

/// RAII simulated-clock context for outage windows. The trial runner sets
/// the executing task's simulated time around its queries; FaultyTransport
/// reads it. Thread-local, so concurrent workers see their own trial's
/// clock — the time an exchange observes is a property of the task, never
/// of scheduling.
class ScopedFaultTime {
 public:
  explicit ScopedFaultTime(double time_hours);
  ~ScopedFaultTime();
  ScopedFaultTime(const ScopedFaultTime&) = delete;
  ScopedFaultTime& operator=(const ScopedFaultTime&) = delete;

  /// The current simulated time, or NaN when no trial is executing.
  static double current();

 private:
  double previous_;
};

/// Decorates a DnsTransport with the fault profile.
///
/// Determinism: each exchange hashes (source, destination, query bytes)
/// into a stream selector and derives a fresh `net::Rng` from it — the same
/// counter-based scheme trials use. Retries re-encode with a fresh query id
/// (and 0x20 casing), so their bytes differ and they get independent fault
/// draws, exactly like real retransmissions taking fresh network chances.
/// The decorator keeps no per-exchange mutable state; observability
/// counters are relaxed atomics whose totals are order-independent sums of
/// per-exchange deterministic outcomes.
class FaultyTransport : public DnsTransport {
 public:
  /// Which personality this channel models: truncation only fires on kUdp.
  enum class Channel : std::uint8_t { kUdp, kTcp };

  /// `inner` is borrowed and must outlive this object.
  FaultyTransport(DnsTransport* inner, std::uint64_t seed, FaultProfile profile,
                  Channel channel = Channel::kUdp);

  std::vector<std::uint8_t> exchange(net::Ipv4Addr source, net::Ipv4Addr destination,
                                     std::span<const std::uint8_t> query) override;

  [[nodiscard]] const FaultProfile& profile() const { return profile_; }

  // Injected-fault tallies (what the fabric DID, as opposed to the client
  // health counters, which record what the client SAW and how it coped).
  [[nodiscard]] std::uint64_t losses() const { return losses_.load(); }
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_.load(); }
  [[nodiscard]] std::uint64_t servfails() const { return servfails_.load(); }
  [[nodiscard]] std::uint64_t refusals() const { return refusals_.load(); }
  [[nodiscard]] std::uint64_t truncations() const { return truncations_.load(); }
  [[nodiscard]] std::uint64_t ecs_strips() const { return ecs_strips_.load(); }
  [[nodiscard]] std::uint64_t scope_zeros() const { return scope_zeros_.load(); }
  [[nodiscard]] std::uint64_t outage_hits() const { return outage_hits_.load(); }
  /// Exchanges that passed through entirely clean.
  [[nodiscard]] std::uint64_t clean_exchanges() const { return clean_.load(); }

  /// Attaches an obs registry (borrowed; nullptr detaches). Every injected
  /// fault is mirrored as `dns.fault.<scope>.<kind>` — `scope` names the
  /// channel this decorator sits on (e.g. "client_udp", "resolver") so one
  /// registry can tell several fault fabrics apart. The per-instance atomic
  /// accessors above keep working either way.
  void set_registry(obs::Registry* registry, std::string_view scope);

 private:
  /// Bumps a per-instance counter and mirrors it into the registry.
  void tally(std::atomic<std::uint64_t>& counter, const char* kind);

  DnsTransport* inner_;
  std::uint64_t seed_;
  FaultProfile profile_;
  Channel channel_;

  std::atomic<std::uint64_t> losses_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> servfails_{0};
  std::atomic<std::uint64_t> refusals_{0};
  std::atomic<std::uint64_t> truncations_{0};
  std::atomic<std::uint64_t> ecs_strips_{0};
  std::atomic<std::uint64_t> scope_zeros_{0};
  std::atomic<std::uint64_t> outage_hits_{0};
  std::atomic<std::uint64_t> clean_{0};

  obs::Registry* registry_ = nullptr;  // borrowed; optional telemetry mirror
  std::string metric_prefix_;          // "dns.fault.<scope>."
};

}  // namespace drongo::dns
