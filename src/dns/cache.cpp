#include "dns/cache.hpp"

#include <utility>

namespace drongo::dns {

void DnsCache::bump(std::uint64_t CacheStats::* field, const char* name) {
  ++(stats_.*field);
  if (registry_ != nullptr) registry_->add(obs::counter_name("dns.cache.", name));
}

/// Bumps `field` and mirrors it into the registry under the same name.
#define DRONGO_CACHE_BUMP(field) bump(&CacheStats::field, #field)

std::map<DnsCache::Key, DnsCache::Stored>::iterator DnsCache::erase_entry(
    std::map<Key, Stored>::iterator it) {
  lru_.erase(it->second.lru_position);
  return entries_.erase(it);
}

std::optional<DnsCache::Entry> DnsCache::lookup(const DnsName& name,
                                                const net::Prefix& client_subnet,
                                                std::uint64_t now_ms) {
  const std::string canonical = name.canonical();
  // Scan entries for this name; usable when the client subnet falls within
  // the cached scope. Names have few scopes in practice so the range scan is
  // short. Dead entries are erased in passing so they stop counting toward
  // size() and eviction pressure; among live candidates the longest
  // (most specific) scope wins, per RFC 7871 §7.3.1 — a scope-zero answer
  // must never shadow a tailored one.
  auto it = entries_.lower_bound({canonical, net::Prefix()});
  auto best = entries_.end();
  while (it != entries_.end() && it->first.first == canonical) {
    const Entry& e = it->second.entry;
    if (e.expiry_ms <= now_ms) {
      DRONGO_CACHE_BUMP(expired);
      it = erase_entry(it);
      continue;
    }
    if (e.scope.contains(client_subnet.network()) &&
        (best == entries_.end() ||
         e.scope.length() > best->second.entry.scope.length())) {
      best = it;
    }
    ++it;
  }
  if (best == entries_.end()) {
    DRONGO_CACHE_BUMP(misses);
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, best->second.lru_position);
  if (best->second.entry.negative) {
    DRONGO_CACHE_BUMP(negative_hits);
  } else {
    DRONGO_CACHE_BUMP(hits);
  }
  return best->second.entry;
}

void DnsCache::store(Key key, Entry entry, std::uint64_t now_ms) {
  if (const auto existing = entries_.find(key); existing != entries_.end()) {
    // Refresh in place: newer answer wins, recency bumps.
    existing->second.entry = std::move(entry);
    lru_.splice(lru_.begin(), lru_, existing->second.lru_position);
    return;
  }
  if (entries_.size() >= max_entries_) purge(now_ms);
  while (entries_.size() >= max_entries_ && !lru_.empty()) {
    // Still full after dropping the dead: evict the least recently used.
    DRONGO_CACHE_BUMP(evictions);
    erase_entry(entries_.find(lru_.back()));
  }
  lru_.push_front(key);
  entries_.emplace(std::move(key), Stored{std::move(entry), lru_.begin()});
}

void DnsCache::insert(const DnsName& name, const net::Prefix& scope,
                      std::vector<net::Ipv4Addr> addresses, std::uint32_t ttl_seconds,
                      std::uint64_t now_ms) {
  Entry e;
  e.addresses = std::move(addresses);
  e.scope = scope;
  e.expiry_ms = now_ms + std::uint64_t{ttl_seconds} * 1000;
  DRONGO_CACHE_BUMP(inserts);
  store({name.canonical(), scope}, std::move(e), now_ms);
}

void DnsCache::insert_negative(const DnsName& name, const net::Prefix& scope,
                               Rcode rcode, std::uint32_t ttl_seconds,
                               std::uint64_t now_ms) {
  Entry e;
  e.scope = scope;
  e.expiry_ms = now_ms + std::uint64_t{ttl_seconds} * 1000;
  e.negative = true;
  e.rcode = rcode;
  DRONGO_CACHE_BUMP(negative_inserts);
  store({name.canonical(), scope}, std::move(e), now_ms);
}

void DnsCache::purge(std::uint64_t now_ms) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.entry.expiry_ms <= now_ms) {
      DRONGO_CACHE_BUMP(expired);
      it = erase_entry(it);
    } else {
      ++it;
    }
  }
}

#undef DRONGO_CACHE_BUMP

}  // namespace drongo::dns
