#include "dns/cache.hpp"

#include <utility>

namespace drongo::dns {

void DnsCache::bump(std::uint64_t CacheStats::* field, const char* name) {
  ++(stats_.*field);
  if (registry_ != nullptr) registry_->add(obs::counter_name("dns.cache.", name));
}

void DnsCache::bump_lpm(std::uint64_t LpmStats::* field, const char* name,
                        std::uint64_t delta) {
  stats_.lpm.*field += delta;
  if (registry_ != nullptr && delta != 0) {
    registry_->add(obs::counter_name("dns.lpm.", name), delta);
  }
}

/// Bumps `field` and mirrors it into the registry under the same name.
#define DRONGO_CACHE_BUMP(field) bump(&CacheStats::field, #field)
#define DRONGO_LPM_BUMP(field, ...) bump_lpm(&LpmStats::field, #field, ##__VA_ARGS__)

void DnsCache::erase_from_trie(const std::string& canonical_qname,
                               const net::IpPrefix& scope) {
  const auto it = names_.find(canonical_qname);
  it->second.erase(scope);
  DRONGO_LPM_BUMP(erases);
  if (it->second.empty()) names_.erase(it);
  --size_;
}

std::optional<DnsCache::Entry> DnsCache::lookup(const std::string& canonical_qname,
                                                const net::IpPrefix& client_subnet,
                                                std::uint64_t now_ms) {
  const auto nit = names_.find(canonical_qname);
  if (nit == names_.end()) {
    DRONGO_CACHE_BUMP(misses);
    return std::nullopt;
  }
  // One radix descent along the client subnet's bit path yields every cached
  // scope containing it, most specific first — the RFC 7871 §7.3.1 candidate
  // order, so the first live entry is the answer and a scope-zero answer can
  // never shadow a tailored one. Dead entries on the path are erased in
  // passing so they stop counting toward size() and eviction pressure.
  std::uint64_t visited = 0;
  const auto chain =
      nit->second.match_chain(client_subnet.network(), client_subnet.length(), &visited);
  DRONGO_LPM_BUMP(lookups);
  DRONGO_LPM_BUMP(node_visits, visited);
  for (const auto& match : chain) {
    if (match.value->entry.expiry_ms <= now_ms) {
      DRONGO_CACHE_BUMP(expired);
      lru_.erase(match.value->lru_position);
      erase_from_trie(canonical_qname, match.prefix);
      continue;
    }
    lru_.splice(lru_.begin(), lru_, match.value->lru_position);
    if (match.value->entry.negative) {
      DRONGO_CACHE_BUMP(negative_hits);
    } else {
      DRONGO_CACHE_BUMP(hits);
    }
    return match.value->entry;
  }
  DRONGO_CACHE_BUMP(misses);
  return std::nullopt;
}

void DnsCache::store(Key key, Entry entry, std::uint64_t now_ms) {
  if (const auto nit = names_.find(key.first); nit != names_.end()) {
    if (Stored* existing = nit->second.find(key.second); existing != nullptr) {
      // Refresh in place: newer answer wins, recency bumps.
      existing->entry = std::move(entry);
      lru_.splice(lru_.begin(), lru_, existing->lru_position);
      return;
    }
  }
  if (size_ >= max_entries_) purge(now_ms);
  while (size_ >= max_entries_ && !lru_.empty()) {
    // Still full after dropping the dead: evict the least recently used.
    DRONGO_CACHE_BUMP(evictions);
    const Key victim = lru_.back();
    lru_.pop_back();
    erase_from_trie(victim.first, victim.second);
  }
  // (Re-)resolve the trie only now: purge/evict above may have erased this
  // qname's (momentarily empty) trie from the map.
  ScopeTrie& trie = names_[key.first];
  lru_.push_front(key);
  trie.insert(key.second, Stored{std::move(entry), lru_.begin()});
  DRONGO_LPM_BUMP(inserts);
  ++size_;
}

void DnsCache::insert(std::string canonical_qname, const net::IpPrefix& scope,
                      std::vector<net::Ipv4Addr> addresses, std::uint32_t ttl_seconds,
                      std::uint64_t now_ms) {
  Entry e;
  e.addresses = std::move(addresses);
  e.scope = scope;
  e.expiry_ms = now_ms + std::uint64_t{ttl_seconds} * 1000;
  DRONGO_CACHE_BUMP(inserts);
  store({std::move(canonical_qname), scope}, std::move(e), now_ms);
}

void DnsCache::insert_negative(std::string canonical_qname, const net::IpPrefix& scope,
                               Rcode rcode, std::uint32_t ttl_seconds,
                               std::uint64_t now_ms) {
  Entry e;
  e.scope = scope;
  e.expiry_ms = now_ms + std::uint64_t{ttl_seconds} * 1000;
  e.negative = true;
  e.rcode = rcode;
  DRONGO_CACHE_BUMP(negative_inserts);
  store({std::move(canonical_qname), scope}, std::move(e), now_ms);
}

void DnsCache::note_foreign_family_drop() {
  DRONGO_CACHE_BUMP(foreign_family_drops);
}

void DnsCache::purge(std::uint64_t now_ms) {
  for (auto nit = names_.begin(); nit != names_.end();) {
    // Collect-then-erase: walk() iterates the trie, so erasing mid-walk is
    // off the table; the lru iterator is snapshotted alongside.
    std::vector<std::pair<net::IpPrefix, std::list<Key>::iterator>> dead;
    nit->second.walk([&](const net::IpPrefix& scope, const Stored& stored) {
      if (stored.entry.expiry_ms <= now_ms) dead.emplace_back(scope, stored.lru_position);
    });
    for (const auto& [scope, lru_position] : dead) {
      DRONGO_CACHE_BUMP(expired);
      DRONGO_LPM_BUMP(erases);
      lru_.erase(lru_position);
      nit->second.erase(scope);
      --size_;
    }
    if (nit->second.empty()) {
      nit = names_.erase(nit);
    } else {
      ++nit;
    }
  }
}

#undef DRONGO_LPM_BUMP
#undef DRONGO_CACHE_BUMP

}  // namespace drongo::dns
