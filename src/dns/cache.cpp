#include "dns/cache.hpp"

namespace drongo::dns {

std::optional<DnsCache::Entry> DnsCache::lookup(const DnsName& name,
                                                const net::Prefix& client_subnet,
                                                std::uint64_t now_ms) {
  const std::string canonical = name.canonical();
  // Scan entries for this name; usable when the client subnet falls within
  // the cached scope. Names have few scopes in practice so the range scan is
  // short.
  auto it = entries_.lower_bound({canonical, net::Prefix()});
  for (; it != entries_.end() && it->first.first == canonical; ++it) {
    const Entry& e = it->second;
    if (e.expiry_ms <= now_ms) continue;
    if (e.scope.contains(client_subnet.network())) {
      ++hits_;
      return e;
    }
  }
  ++misses_;
  return std::nullopt;
}

void DnsCache::insert(const DnsName& name, const net::Prefix& scope,
                      std::vector<net::Ipv4Addr> addresses, std::uint32_t ttl_seconds,
                      std::uint64_t now_ms) {
  if (entries_.size() >= max_entries_) purge(now_ms);
  if (entries_.size() >= max_entries_ && !entries_.empty()) {
    // Still full after purge: evict an arbitrary (first) entry. A production
    // resolver would use LRU; for simulation fairness any victim works.
    entries_.erase(entries_.begin());
  }
  Entry e;
  e.addresses = std::move(addresses);
  e.scope = scope;
  e.expiry_ms = now_ms + std::uint64_t{ttl_seconds} * 1000;
  entries_[{name.canonical(), scope}] = std::move(e);
}

void DnsCache::purge(std::uint64_t now_ms) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.expiry_ms <= now_ms) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace drongo::dns
