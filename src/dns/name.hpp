// DNS domain names: presentation format, wire format, compression.
#pragma once

#include <compare>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/bytes.hpp"

namespace drongo::dns {

/// Compression state threaded through one message encode: lowercased name
/// suffix -> wire offset where it was first written. The transparent
/// comparator lets the hot path probe with string_views (no key allocation
/// on lookup; a std::string key is built only when a new suffix is stored).
using NameOffsets = std::map<std::string, std::uint16_t, std::less<>>;

/// A DNS domain name: an ordered sequence of labels.
///
/// Invariants (enforced at construction): each label is 1..63 bytes, total
/// encoded length <= 255 bytes. Comparison and hashing are case-insensitive
/// per RFC 1035 §2.3.3; the original case is preserved for display.
class DnsName {
 public:
  /// The root name (zero labels).
  DnsName() = default;

  /// Builds from explicit labels. Throws ParseError on invariant violations.
  explicit DnsName(std::vector<std::string> labels);

  /// Parses presentation format ("www.example.com", trailing dot optional,
  /// "." is the root). Returns nullopt on malformed input (empty label,
  /// label > 63 bytes, name > 255 bytes).
  static std::optional<DnsName> parse(std::string_view text);

  /// Like parse() but throws ParseError.
  static DnsName must_parse(std::string_view text);

  /// Decodes a wire-format name starting at the reader's cursor, following
  /// compression pointers (RFC 1035 §4.1.4). The cursor advances past the
  /// in-place portion only. Throws ParseError on pointer loops, forward
  /// pointers, or truncation.
  static DnsName decode(net::ByteReader& reader);

  /// Encodes in wire format, compressing against names already written:
  /// `offsets` maps a lowercased suffix ("example.com") to the buffer offset
  /// where that suffix was previously encoded. Pass nullptr to disable
  /// compression. Newly encoded suffixes at offsets < 0x4000 are added to the
  /// map.
  void encode(net::ByteWriter& writer, NameOffsets* offsets = nullptr) const;

  [[nodiscard]] const std::vector<std::string>& labels() const { return labels_; }
  [[nodiscard]] bool is_root() const { return labels_.empty(); }
  [[nodiscard]] std::size_t label_count() const { return labels_.size(); }

  /// Encoded wire length in bytes (without compression).
  [[nodiscard]] std::size_t wire_length() const;

  /// Presentation format; the root renders as ".".
  [[nodiscard]] std::string to_string() const;

  /// True when this name equals `other` or is a subdomain of it
  /// (case-insensitive). Every name is under the root.
  [[nodiscard]] bool is_subdomain_of(const DnsName& other) const;

  /// The name with the first label removed ("www.example.com" ->
  /// "example.com"). Throws InvalidArgument on the root.
  [[nodiscard]] DnsName parent() const;

  /// Case-insensitive equality.
  friend bool operator==(const DnsName& a, const DnsName& b);
  friend std::strong_ordering operator<=>(const DnsName& a, const DnsName& b);

  /// Lowercased dotted form used as a canonical map key.
  [[nodiscard]] std::string canonical() const;

 private:
  void check_invariants() const;

  std::vector<std::string> labels_;
};

}  // namespace drongo::dns

template <>
struct std::hash<drongo::dns::DnsName> {
  std::size_t operator()(const drongo::dns::DnsName& n) const noexcept {
    return std::hash<std::string>{}(n.canonical());
  }
};
