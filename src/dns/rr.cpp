#include "dns/rr.hpp"

#include "net/error.hpp"

namespace drongo::dns {

ResourceRecord ResourceRecord::a(DnsName name, net::Ipv4Addr address, std::uint32_t ttl) {
  return {std::move(name), RrType::kA, RrClass::kIn, ttl, ARdata{address}};
}

ResourceRecord ResourceRecord::cname(DnsName name, DnsName target, std::uint32_t ttl) {
  return {std::move(name), RrType::kCname, RrClass::kIn, ttl, CnameRdata{std::move(target)}};
}

ResourceRecord ResourceRecord::ns(DnsName zone, DnsName nameserver, std::uint32_t ttl) {
  return {std::move(zone), RrType::kNs, RrClass::kIn, ttl, NsRdata{std::move(nameserver)}};
}

ResourceRecord ResourceRecord::ptr(DnsName name, DnsName target, std::uint32_t ttl) {
  return {std::move(name), RrType::kPtr, RrClass::kIn, ttl, PtrRdata{std::move(target)}};
}

ResourceRecord ResourceRecord::txt(DnsName name, std::vector<std::string> strings,
                                   std::uint32_t ttl) {
  return {std::move(name), RrType::kTxt, RrClass::kIn, ttl, TxtRdata{std::move(strings)}};
}

ResourceRecord ResourceRecord::soa(DnsName zone, SoaRdata soa, std::uint32_t ttl) {
  return {std::move(zone), RrType::kSoa, RrClass::kIn, ttl, std::move(soa)};
}

void ResourceRecord::encode(net::ByteWriter& writer, NameOffsets* offsets) const {
  name.encode(writer, offsets);
  writer.write_u16(static_cast<std::uint16_t>(type));
  writer.write_u16(static_cast<std::uint16_t>(klass));
  writer.write_u32(ttl);
  const std::size_t rdlength_at = writer.size();
  writer.write_u16(0);  // patched below
  const std::size_t rdata_start = writer.size();

  std::visit(
      [&](const auto& data) {
        using T = std::decay_t<decltype(data)>;
        if constexpr (std::is_same_v<T, ARdata>) {
          writer.write_u32(data.address.to_uint());
        } else if constexpr (std::is_same_v<T, CnameRdata>) {
          data.target.encode(writer, offsets);
        } else if constexpr (std::is_same_v<T, NsRdata>) {
          data.nameserver.encode(writer, offsets);
        } else if constexpr (std::is_same_v<T, PtrRdata>) {
          data.name.encode(writer, offsets);
        } else if constexpr (std::is_same_v<T, TxtRdata>) {
          for (const auto& s : data.strings) {
            if (s.size() > 255) throw net::InvalidArgument("TXT string exceeds 255 bytes");
            writer.write_u8(static_cast<std::uint8_t>(s.size()));
            writer.write_string(s);
          }
        } else if constexpr (std::is_same_v<T, SoaRdata>) {
          data.mname.encode(writer, offsets);
          data.rname.encode(writer, offsets);
          writer.write_u32(data.serial);
          writer.write_u32(data.refresh);
          writer.write_u32(data.retry);
          writer.write_u32(data.expire);
          writer.write_u32(data.minimum);
        } else if constexpr (std::is_same_v<T, RawRdata>) {
          writer.write_bytes(data.bytes);
        }
      },
      rdata);

  const std::size_t rdata_len = writer.size() - rdata_start;
  if (rdata_len > 0xFFFF) throw net::InvalidArgument("RDATA exceeds 65535 bytes");
  writer.patch_u16(rdlength_at, static_cast<std::uint16_t>(rdata_len));
}

ResourceRecord ResourceRecord::decode(net::ByteReader& reader) {
  ResourceRecord rr;
  rr.name = DnsName::decode(reader);
  rr.type = static_cast<RrType>(reader.read_u16());
  rr.klass = static_cast<RrClass>(reader.read_u16());
  rr.ttl = reader.read_u32();
  const std::uint16_t rdlength = reader.read_u16();
  const std::size_t rdata_end = reader.position() + rdlength;
  if (rdata_end > reader.buffer().size()) {
    throw net::ParseError("RDATA length overruns message");
  }

  switch (rr.type) {
    case RrType::kA: {
      if (rdlength != 4) throw net::ParseError("A RDATA must be 4 bytes");
      rr.rdata = ARdata{net::Ipv4Addr(reader.read_u32())};
      break;
    }
    case RrType::kCname:
      rr.rdata = CnameRdata{DnsName::decode(reader)};
      break;
    case RrType::kNs:
      rr.rdata = NsRdata{DnsName::decode(reader)};
      break;
    case RrType::kPtr:
      rr.rdata = PtrRdata{DnsName::decode(reader)};
      break;
    case RrType::kTxt: {
      TxtRdata txt;
      while (reader.position() < rdata_end) {
        const std::uint8_t len = reader.read_u8();
        txt.strings.push_back(reader.read_string(len));
      }
      rr.rdata = std::move(txt);
      break;
    }
    case RrType::kSoa: {
      SoaRdata soa;
      soa.mname = DnsName::decode(reader);
      soa.rname = DnsName::decode(reader);
      soa.serial = reader.read_u32();
      soa.refresh = reader.read_u32();
      soa.retry = reader.read_u32();
      soa.expire = reader.read_u32();
      soa.minimum = reader.read_u32();
      rr.rdata = std::move(soa);
      break;
    }
    default:
      rr.rdata = RawRdata{reader.read_bytes(rdlength)};
      break;
  }

  if (reader.position() != rdata_end) {
    throw net::ParseError("RDATA decode consumed " +
                          std::to_string(reader.position() - (rdata_end - rdlength)) +
                          " bytes, expected " + std::to_string(rdlength));
  }
  return rr;
}

std::string ResourceRecord::to_string() const {
  std::string out = name.to_string() + " " + std::to_string(ttl) + " IN " + dns::to_string(type) + " ";
  std::visit(
      [&](const auto& data) {
        using T = std::decay_t<decltype(data)>;
        if constexpr (std::is_same_v<T, ARdata>) {
          out += data.address.to_string();
        } else if constexpr (std::is_same_v<T, CnameRdata>) {
          out += data.target.to_string();
        } else if constexpr (std::is_same_v<T, NsRdata>) {
          out += data.nameserver.to_string();
        } else if constexpr (std::is_same_v<T, PtrRdata>) {
          out += data.name.to_string();
        } else if constexpr (std::is_same_v<T, TxtRdata>) {
          for (const auto& s : data.strings) out += "\"" + s + "\" ";
        } else if constexpr (std::is_same_v<T, SoaRdata>) {
          out += data.mname.to_string() + " " + data.rname.to_string() + " " +
                 std::to_string(data.serial);
        } else if constexpr (std::is_same_v<T, RawRdata>) {
          out += "\\# " + std::to_string(data.bytes.size());
        }
      },
      rdata);
  return out;
}

}  // namespace drongo::dns
