// ECS-aware DNS answer cache.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dns/name.hpp"
#include "net/ip.hpp"
#include "net/prefix.hpp"

namespace drongo::dns {

/// A positive-answer cache keyed by (qname, ECS scope network), per the
/// RFC 7871 §7.3.1 rule that answers tailored to a subnet may only be reused
/// for queries whose address falls inside the returned SCOPE prefix.
///
/// Time is injected by the caller (simulated milliseconds) so cache behaviour
/// is deterministic and testable.
class DnsCache {
 public:
  struct Entry {
    std::vector<net::Ipv4Addr> addresses;
    net::Prefix scope;       ///< scope prefix the server returned.
    std::uint64_t expiry_ms = 0;
  };

  explicit DnsCache(std::size_t max_entries = 4096) : max_entries_(max_entries) {}

  /// Looks up an answer usable for `client_subnet` at time `now_ms`.
  std::optional<Entry> lookup(const DnsName& name, const net::Prefix& client_subnet,
                              std::uint64_t now_ms);

  /// Inserts an answer with the server-provided scope and TTL.
  void insert(const DnsName& name, const net::Prefix& scope,
              std::vector<net::Ipv4Addr> addresses, std::uint32_t ttl_seconds,
              std::uint64_t now_ms);

  /// Drops expired entries (also invoked opportunistically on insert).
  void purge(std::uint64_t now_ms);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

 private:
  using Key = std::pair<std::string, net::Prefix>;  // canonical name + scope net

  std::map<Key, Entry> entries_;
  std::size_t max_entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace drongo::dns
