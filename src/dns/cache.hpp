// ECS-aware DNS answer cache.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dns/name.hpp"
#include "dns/types.hpp"
#include "net/ip.hpp"
#include "net/prefix.hpp"
#include "obs/metrics.hpp"
#include "obs/schema.hpp"

namespace drongo::dns {

/// Per-cache counter block generated from the shared X-macro schema
/// (src/obs/schema.hpp), so the struct fields, the shard aggregation, and
/// the `dns.cache.*` registry mirror can never drift apart.
struct CacheStats {
  DRONGO_OBS_CACHE_COUNTERS(DRONGO_OBS_DECLARE_FIELD)

  CacheStats& operator+=(const CacheStats& other) {
#define DRONGO_CACHE_FOLD(field) field += other.field;
    DRONGO_OBS_CACHE_COUNTERS(DRONGO_CACHE_FOLD)
#undef DRONGO_CACHE_FOLD
    return *this;
  }
};

/// An answer cache keyed by (qname, ECS scope network), per the RFC 7871
/// §7.3.1 rule that answers tailored to a subnet may only be reused for
/// queries whose address falls inside the returned SCOPE prefix — and when
/// several cached scopes contain the client, the *longest* (most specific)
/// match wins, so a scope-zero answer can never shadow a tailored one.
///
/// Entries may be negative (NXDOMAIN / NODATA, empty address set, the rcode
/// preserved) and are evicted strictly least-recently-used when the cache is
/// full. Expired entries are erased as lookups walk over them, so `size()`
/// counts live entries only.
///
/// Time is injected by the caller (simulated milliseconds) so cache
/// behaviour is deterministic and testable. Not internally synchronized:
/// callers (the shard wrapper, or single-threaded tests) provide locking.
class DnsCache {
 public:
  struct Entry {
    std::vector<net::Ipv4Addr> addresses;
    net::Prefix scope;              ///< scope prefix the server returned.
    std::uint64_t expiry_ms = 0;
    bool negative = false;          ///< NXDOMAIN/NODATA marker (addresses empty)
    Rcode rcode = Rcode::kNoError;  ///< kNxDomain, or kNoError for NODATA
  };

  explicit DnsCache(std::size_t max_entries = 4096) : max_entries_(max_entries) {}

  /// Looks up the most specific answer usable for `client_subnet` at time
  /// `now_ms`. Entries whose `expiry_ms <= now_ms` are dead: they miss (an
  /// entry expiring exactly now is already unusable) and are erased as the
  /// scan passes over them.
  std::optional<Entry> lookup(const DnsName& name, const net::Prefix& client_subnet,
                              std::uint64_t now_ms);

  /// Inserts a positive answer with the server-provided scope and TTL.
  void insert(const DnsName& name, const net::Prefix& scope,
              std::vector<net::Ipv4Addr> addresses, std::uint32_t ttl_seconds,
              std::uint64_t now_ms);

  /// Inserts a negative answer (NXDOMAIN, or NODATA via kNoError) under
  /// `scope` with its own TTL.
  void insert_negative(const DnsName& name, const net::Prefix& scope, Rcode rcode,
                       std::uint32_t ttl_seconds, std::uint64_t now_ms);

  /// Drops expired entries (also invoked opportunistically on insert).
  void purge(std::uint64_t now_ms);

  /// Attaches an obs registry (borrowed; nullptr detaches): every stats_
  /// bump is mirrored as a `dns.cache.<field>` counter.
  void set_registry(obs::Registry* registry) { registry_ = registry; }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t hits() const { return stats_.hits + stats_.negative_hits; }
  [[nodiscard]] std::uint64_t misses() const { return stats_.misses; }

 private:
  using Key = std::pair<std::string, net::Prefix>;  // canonical name + scope net

  struct Stored {
    Entry entry;
    /// Position in lru_ (most-recent at front), spliced on every touch.
    std::list<Key>::iterator lru_position;
  };

  void store(Key key, Entry entry, std::uint64_t now_ms);
  std::map<Key, Stored>::iterator erase_entry(std::map<Key, Stored>::iterator it);
  void bump(std::uint64_t CacheStats::* field, const char* name);

  std::map<Key, Stored> entries_;
  std::list<Key> lru_;  ///< recency order: front = most recently used
  std::size_t max_entries_;
  CacheStats stats_;
  obs::Registry* registry_ = nullptr;  // borrowed; optional telemetry mirror
};

}  // namespace drongo::dns
