// ECS-aware DNS answer cache.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dns/name.hpp"
#include "dns/types.hpp"
#include "net/ip.hpp"
#include "net/ipaddr.hpp"
#include "net/lpm.hpp"
#include "net/prefix.hpp"
#include "obs/metrics.hpp"
#include "obs/schema.hpp"

namespace drongo::dns {

/// Counters for the radix LPM scope index, generated from the shared
/// X-macro schema and mirrored as `dns.lpm.<field>`.
struct LpmStats {
  DRONGO_OBS_LPM_COUNTERS(DRONGO_OBS_DECLARE_FIELD)

  LpmStats& operator+=(const LpmStats& other) {
#define DRONGO_LPM_FOLD(field) field += other.field;
    DRONGO_OBS_LPM_COUNTERS(DRONGO_LPM_FOLD)
#undef DRONGO_LPM_FOLD
    return *this;
  }
};

/// Per-cache counter block generated from the shared X-macro schema
/// (src/obs/schema.hpp), so the struct fields, the shard aggregation, and
/// the `dns.cache.*` registry mirror can never drift apart. The embedded
/// `lpm` block rides along through the same operator+= fold, so the sharded
/// wrapper aggregates it for free.
struct CacheStats {
  DRONGO_OBS_CACHE_COUNTERS(DRONGO_OBS_DECLARE_FIELD)
  LpmStats lpm;

  CacheStats& operator+=(const CacheStats& other) {
#define DRONGO_CACHE_FOLD(field) field += other.field;
    DRONGO_OBS_CACHE_COUNTERS(DRONGO_CACHE_FOLD)
#undef DRONGO_CACHE_FOLD
    lpm += other.lpm;
    return *this;
  }
};

/// An answer cache keyed by (qname, ECS scope network), per the RFC 7871
/// §7.3.1 rule that answers tailored to a subnet may only be reused for
/// queries whose address falls inside the returned SCOPE prefix — and when
/// several cached scopes contain the client, the *longest* (most specific)
/// match wins, so a scope-zero answer can never shadow a tailored one.
///
/// Entries may be negative (NXDOMAIN / NODATA, empty address set, the rcode
/// preserved) and are evicted strictly least-recently-used when the cache is
/// full. Expired entries are erased as lookups walk over them, so `size()`
/// counts live entries only.
///
/// Scope matching is a radix LPM trie per qname (net::LpmTrie): a lookup
/// descends the client subnet's bit path once, collecting the containment
/// chain of cached scopes longest-first, so cost is O(prefix bits) in the
/// number of cached scopes for the name — not a linear scan. Expired chain
/// entries are erased as the descent passes over them; entries for the name
/// that don't lie on the client's bit path die at purge()/insert pressure
/// instead (they were never scanned, so there is nothing to walk over).
///
/// Qnames are canonicalized (DNS names are case-insensitive, RFC 1035) once
/// at the cache boundary: the DnsName overloads derive the canonical form,
/// and the string overloads accept a form the caller already canonicalized
/// — e.g. the sharded wrapper, which needs it for shard selection anyway —
/// so `Example.COM` and `example.com` share one entry without recomputing.
///
/// Time is injected by the caller (simulated milliseconds) so cache
/// behaviour is deterministic and testable. Not internally synchronized:
/// callers (the shard wrapper, or single-threaded tests) provide locking.
class DnsCache {
 public:
  struct Entry {
    std::vector<net::Ipv4Addr> addresses;
    net::IpPrefix scope;            ///< scope prefix the server returned.
    std::uint64_t expiry_ms = 0;
    bool negative = false;          ///< NXDOMAIN/NODATA marker (addresses empty)
    Rcode rcode = Rcode::kNoError;  ///< kNxDomain, or kNoError for NODATA
  };

  explicit DnsCache(std::size_t max_entries = 4096) : max_entries_(max_entries) {}

  /// Looks up the most specific answer usable for `client_subnet` at time
  /// `now_ms`. Entries whose `expiry_ms <= now_ms` are dead: they miss (an
  /// entry expiring exactly now is already unusable) and are erased as the
  /// descent passes over them.
  std::optional<Entry> lookup(const DnsName& name, const net::IpPrefix& client_subnet,
                              std::uint64_t now_ms) {
    return lookup(name.canonical(), client_subnet, now_ms);
  }
  /// As above for a qname already in DnsName::canonical() form (lowercase
  /// dotted); the boundary entry point for callers that canonicalize once.
  std::optional<Entry> lookup(const std::string& canonical_qname,
                              const net::IpPrefix& client_subnet, std::uint64_t now_ms);

  /// Inserts a positive answer with the server-provided scope and TTL.
  void insert(const DnsName& name, const net::IpPrefix& scope,
              std::vector<net::Ipv4Addr> addresses, std::uint32_t ttl_seconds,
              std::uint64_t now_ms) {
    insert(name.canonical(), scope, std::move(addresses), ttl_seconds, now_ms);
  }
  void insert(std::string canonical_qname, const net::IpPrefix& scope,
              std::vector<net::Ipv4Addr> addresses, std::uint32_t ttl_seconds,
              std::uint64_t now_ms);

  /// Inserts a negative answer (NXDOMAIN, or NODATA via kNoError) under
  /// `scope` with its own TTL.
  void insert_negative(const DnsName& name, const net::IpPrefix& scope, Rcode rcode,
                       std::uint32_t ttl_seconds, std::uint64_t now_ms) {
    insert_negative(name.canonical(), scope, rcode, ttl_seconds, now_ms);
  }
  void insert_negative(std::string canonical_qname, const net::IpPrefix& scope,
                       Rcode rcode, std::uint32_t ttl_seconds, std::uint64_t now_ms);

  /// Drops expired entries (also invoked opportunistically on insert).
  void purge(std::uint64_t now_ms);

  /// Tallies an ECS scope the cache cannot represent (a family other than
  /// IPv4/IPv6): the resolver bypasses the cache for such queries instead
  /// of mis-filing the tailored answer under a generic v4 scope.
  void note_foreign_family_drop();

  /// Attaches an obs registry (borrowed; nullptr detaches): every stats_
  /// bump is mirrored as a `dns.cache.<field>` counter.
  void set_registry(obs::Registry* registry) { registry_ = registry; }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t hits() const { return stats_.hits + stats_.negative_hits; }
  [[nodiscard]] std::uint64_t misses() const { return stats_.misses; }

 private:
  using Key = std::pair<std::string, net::IpPrefix>;  // canonical name + scope net

  struct Stored {
    Entry entry;
    /// Position in lru_ (most-recent at front), spliced on every touch.
    std::list<Key>::iterator lru_position;
  };
  /// One radix trie of cached scopes per canonical qname.
  using ScopeTrie = net::IpLpmTrie<Stored>;

  void store(Key key, Entry entry, std::uint64_t now_ms);
  /// Removes (name, scope) from its trie (erasing the trie when it empties)
  /// and decrements size_. The caller has already unlinked the lru node.
  void erase_from_trie(const std::string& canonical_qname, const net::IpPrefix& scope);
  void bump(std::uint64_t CacheStats::* field, const char* name);
  void bump_lpm(std::uint64_t LpmStats::* field, const char* name, std::uint64_t delta = 1);

  std::map<std::string, ScopeTrie> names_;
  std::size_t size_ = 0;  ///< live entries across all tries
  std::list<Key> lru_;    ///< recency order: front = most recently used
  std::size_t max_entries_;
  CacheStats stats_;
  obs::Registry* registry_ = nullptr;  // borrowed; optional telemetry mirror
};

}  // namespace drongo::dns
