#include "dns/stub_resolver.hpp"

#include "dns/reverse.hpp"

#include <algorithm>

#include "net/error.hpp"

namespace drongo::dns {

StubResolver::StubResolver(DnsTransport* transport, net::Ipv4Addr client_address,
                           net::Ipv4Addr server_address, std::uint64_t seed)
    : transport_(transport), client_(client_address), server_(server_address), rng_(seed) {
  if (transport_ == nullptr) throw net::InvalidArgument("null DnsTransport");
}

namespace {

/// DNS 0x20: randomize the case of every letter in the name. Servers echo
/// the question byte-for-byte, so an off-path spoofer must guess the casing
/// along with the id.
DnsName randomize_name_case(const DnsName& name, net::Rng& rng) {
  std::vector<std::string> labels = name.labels();
  for (auto& label : labels) {
    for (char& c : label) {
      if (c >= 'a' && c <= 'z' && rng.chance(0.5)) {
        c = static_cast<char>(c - 'a' + 'A');
      } else if (c >= 'A' && c <= 'Z' && rng.chance(0.5)) {
        c = static_cast<char>(c - 'A' + 'a');
      }
    }
  }
  return DnsName(std::move(labels));
}

/// Byte-exact name comparison (DnsName::operator== is case-insensitive).
bool same_bytes(const DnsName& a, const DnsName& b) {
  return a.labels() == b.labels();
}

}  // namespace

ResolutionResult StubResolver::resolve(const DnsName& name,
                                       std::optional<net::Prefix> ecs_subnet) {
  const auto id = static_cast<std::uint16_t>(rng_.uniform(0x10000));
  const DnsName sent_name =
      randomize_case_ ? randomize_name_case(name, rng_) : name;
  const Message query = Message::make_query(id, sent_name, ecs_subnet);
  ++queries_;

  const std::vector<std::uint8_t> wire = query.encode();
  const std::vector<std::uint8_t> reply_wire = transport_->exchange(client_, server_, wire);
  const Message reply = Message::decode(reply_wire);

  if (reply.header.id != id) {
    throw net::Error("DNS response id mismatch: sent " + std::to_string(id) + ", got " +
                     std::to_string(reply.header.id));
  }
  if (!reply.header.qr) {
    throw net::Error("DNS response QR bit not set");
  }
  if (reply.questions.size() != 1 || !(reply.questions[0].name == name)) {
    throw net::Error("DNS response question does not echo query");
  }
  if (randomize_case_ && !same_bytes(reply.questions[0].name, sent_name)) {
    throw net::Error("DNS response failed 0x20 case check (possible spoofing)");
  }

  ResolutionResult result;
  result.rcode = reply.header.rcode;
  result.addresses = reply.answer_addresses();
  std::uint32_t min_ttl = UINT32_MAX;
  for (const auto& rr : reply.answers) min_ttl = std::min(min_ttl, rr.ttl);
  result.ttl = reply.answers.empty() ? 0 : min_ttl;
  if (reply.edns && reply.edns->client_subnet) {
    result.ecs_scope = reply.edns->client_subnet->scope_prefix();
  }
  return result;
}

ResolutionResult StubResolver::resolve(const std::string& name,
                                       std::optional<net::Prefix> ecs_subnet) {
  return resolve(DnsName::must_parse(name), ecs_subnet);
}

ResolutionResult StubResolver::resolve_with_own_subnet(const DnsName& name) {
  return resolve(name, net::Prefix(client_, 24));
}

std::string StubResolver::resolve_ptr(net::Ipv4Addr address) {
  const auto id = static_cast<std::uint16_t>(rng_.uniform(0x10000));
  const Message query =
      Message::make_query(id, reverse_pointer_name(address), std::nullopt, RrType::kPtr);
  ++queries_;
  const auto reply_wire = transport_->exchange(client_, server_, query.encode());
  const Message reply = Message::decode(reply_wire);
  for (const auto& rr : reply.answers) {
    if (const auto* ptr = std::get_if<PtrRdata>(&rr.rdata)) {
      return ptr->name.to_string();
    }
  }
  return "";
}

}  // namespace drongo::dns
