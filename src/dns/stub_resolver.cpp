#include "dns/stub_resolver.hpp"

#include "dns/reverse.hpp"

#include <algorithm>
#include <exception>

#include "net/error.hpp"

namespace drongo::dns {

StubResolver::StubResolver(DnsTransport* transport, net::Ipv4Addr client_address,
                           net::Ipv4Addr server_address, std::uint64_t seed,
                           ResolverConfig config)
    : transport_(transport),
      client_(client_address),
      server_(server_address),
      rng_(seed),
      config_(config) {
  if (transport_ == nullptr) throw net::InvalidArgument("null DnsTransport");
  if (config_.max_attempts < 1) {
    throw net::InvalidArgument("max_attempts must be >= 1, got " +
                               std::to_string(config_.max_attempts));
  }
}

namespace {

/// DNS 0x20: randomize the case of every letter in the name. Servers echo
/// the question byte-for-byte, so an off-path spoofer must guess the casing
/// along with the id.
DnsName randomize_name_case(const DnsName& name, net::Rng& rng) {
  std::vector<std::string> labels = name.labels();
  for (auto& label : labels) {
    for (char& c : label) {
      if (c >= 'a' && c <= 'z' && rng.chance(0.5)) {
        c = static_cast<char>(c - 'a' + 'A');
      } else if (c >= 'A' && c <= 'Z' && rng.chance(0.5)) {
        c = static_cast<char>(c - 'A' + 'a');
      }
    }
  }
  return DnsName(std::move(labels));
}

/// Byte-exact name comparison (DnsName::operator== is case-insensitive).
bool same_bytes(const DnsName& a, const DnsName& b) {
  return a.labels() == b.labels();
}

/// Metric name for the rcode class a finished resolution ended in.
const char* outcome_metric(const ResolutionResult& result) {
  if (result.ok()) return "dns.resolver.outcome.ok";
  if (result.nodata()) return "dns.resolver.outcome.nodata";
  if (result.name_error()) return "dns.resolver.outcome.nxdomain";
  return "dns.resolver.outcome.server_failure";
}

}  // namespace

/// Bumps a ResolverStats field and mirrors it into the attached registry
/// under the matching `dns.resolver.<field>` name — the token is used for
/// both, so the struct and the metric catalog cannot drift apart.
#define DRONGO_RESOLVER_TALLY(field)                                  \
  do {                                                                \
    ++stats_.field;                                                   \
    if (registry_ != nullptr) registry_->add("dns.resolver." #field); \
  } while (0)

std::optional<net::IpPrefix> StubResolver::wire_announce(
    std::optional<net::IpPrefix> ecs_subnet) const {
  if (!ecs_subnet || ecs_policy_.family != 2 ||
      ecs_subnet->family() != net::IpFamily::kV4) {
    return ecs_subnet;
  }
  // Family-2 policy over a v4 subnet: announce its v6 embedding, capped at
  // the configured source length (a /24 becomes a /56; a /48 cap keeps only
  // the top 16 v4 bits).
  const net::IpPrefix embedded = net::embed_v4_prefix(*ecs_subnet->to_v4());
  return embedded.truncated(
      std::min(embedded.length(), ecs_policy_.v6_source_length));
}

ResolutionResult StubResolver::attempt(const DnsName& name,
                                       const std::optional<net::IpPrefix>& ecs_subnet) {
  const auto id = static_cast<std::uint16_t>(rng_.uniform(0x10000));
  const DnsName sent_name =
      randomize_case_ ? randomize_name_case(name, rng_) : name;
  const Message query = Message::make_query(id, sent_name, ecs_subnet);
  DRONGO_RESOLVER_TALLY(queries);

  const std::vector<std::uint8_t> wire = query.encode();
  std::vector<std::uint8_t> reply_wire = transport_->exchange(client_, server_, wire);
  Message reply = Message::decode(reply_wire);
  bool used_tcp = false;

  if (reply.header.tc && fallback_ != nullptr) {
    // RFC 1035 §4.2.2: a truncated UDP answer is retried over TCP with the
    // same query (same id, same casing — the transaction continues).
    DRONGO_RESOLVER_TALLY(tcp_fallbacks);
    DRONGO_RESOLVER_TALLY(queries);
    reply_wire = fallback_->exchange(client_, server_, wire);
    reply = Message::decode(reply_wire);
    used_tcp = true;
  }

  // Validation failures are classified transient: a reply that fails these
  // checks is what a late, duplicated, or spoofed datagram looks like, and
  // a real stub would discard it and keep listening — our retry (with a
  // fresh id and casing) is the closest synchronous equivalent.
  if (reply.header.id != id) {
    throw net::TransientError("DNS response id mismatch: sent " + std::to_string(id) +
                              ", got " + std::to_string(reply.header.id));
  }
  if (!reply.header.qr) {
    throw net::TransientError("DNS response QR bit not set");
  }
  if (reply.questions.size() != 1 || !(reply.questions[0].name == name)) {
    throw net::TransientError("DNS response question does not echo query");
  }
  if (randomize_case_ && !same_bytes(reply.questions[0].name, sent_name)) {
    throw net::TransientError("DNS response failed 0x20 case check (possible spoofing)");
  }

  ResolutionResult result;
  result.rcode = reply.header.rcode;
  result.addresses = reply.answer_addresses();
  result.used_tcp = used_tcp;
  std::uint32_t min_ttl = UINT32_MAX;
  for (const auto& rr : reply.answers) min_ttl = std::min(min_ttl, rr.ttl);
  result.ttl = reply.answers.empty() ? 0 : min_ttl;
  if (reply.edns && reply.edns->client_subnet) {
    result.ecs_scope = reply.edns->client_subnet->scope_prefix();
  }
  return result;
}

ResolutionResult StubResolver::resolve(const DnsName& name,
                                       std::optional<net::IpPrefix> ecs_subnet) {
  ecs_subnet = wire_announce(std::move(ecs_subnet));
  double elapsed_ms = 0.0;
  std::exception_ptr last_error;
  std::optional<ResolutionResult> last_failure;

  for (int attempt_no = 0; attempt_no < config_.max_attempts; ++attempt_no) {
    if (attempt_no > 0) {
      // Exponential backoff with jitter, charged against the simulated
      // per-query deadline. The jitter draw happens only on retries, so the
      // fault-free path consumes exactly the draws it always did.
      double backoff = config_.base_backoff_ms;
      for (int i = 1; i < attempt_no; ++i) backoff *= config_.backoff_factor;
      backoff = std::min(backoff, config_.max_backoff_ms);
      backoff *= 1.0 + rng_.uniform_real(0.0, config_.jitter_fraction);
      elapsed_ms += backoff;
      if (elapsed_ms > config_.query_deadline_ms) {
        DRONGO_RESOLVER_TALLY(deadline_exceeded);
        break;
      }
      DRONGO_RESOLVER_TALLY(retries);
      if (registry_ != nullptr) {
        registry_->observe_ms("dns.resolver.backoff_ms", backoff);
      }
    }
    try {
      ResolutionResult result = attempt(name, ecs_subnet);
      result.attempts = attempt_no + 1;
      if (result.server_failure()) {
        DRONGO_RESOLVER_TALLY(server_failures);
        if (config_.retry_server_failure && attempt_no + 1 < config_.max_attempts) {
          last_failure = std::move(result);
          continue;
        }
        DRONGO_RESOLVER_TALLY(failed_queries);  // no usable answer came out of this query
        if (registry_ != nullptr) registry_->add(outcome_metric(result));
        return result;  // typed failure: the caller decides
      }
      if (registry_ != nullptr) registry_->add(outcome_metric(result));
      return result;  // ok, NODATA, or NXDOMAIN — all final
    } catch (const net::TimeoutError&) {
      DRONGO_RESOLVER_TALLY(timeouts);
      last_error = std::current_exception();
    } catch (const net::UnreachableError&) {
      DRONGO_RESOLVER_TALLY(unreachable);
      last_error = std::current_exception();
    } catch (const net::TransientError&) {
      DRONGO_RESOLVER_TALLY(validation_failures);
      last_error = std::current_exception();
    }
    // net::PermanentError (and anything else) propagates immediately:
    // retrying a contract violation only hides bugs.
  }

  DRONGO_RESOLVER_TALLY(failed_queries);
  if (last_failure) {
    if (registry_ != nullptr) registry_->add(outcome_metric(*last_failure));
    return *last_failure;  // budget ended on a SERVFAIL/REFUSED
  }
  if (registry_ != nullptr) registry_->add("dns.resolver.outcome.transport_error");
  if (last_error) std::rethrow_exception(last_error);
  throw net::TimeoutError("query deadline exceeded before any attempt completed");
}

ResolutionResult StubResolver::resolve(const std::string& name,
                                       std::optional<net::IpPrefix> ecs_subnet) {
  return resolve(DnsName::must_parse(name), ecs_subnet);
}

ResolutionResult StubResolver::resolve_with_own_subnet(const DnsName& name) {
  return resolve(name, net::Prefix(client_, 24));
}

std::string StubResolver::resolve_ptr(net::Ipv4Addr address) {
  // PTR data is best-effort (real traceroutes show plenty of hops without
  // names): retry transient failures within the same budget, then degrade
  // to "no name" rather than failing the trial that asked.
  for (int attempt_no = 0; attempt_no < config_.max_attempts; ++attempt_no) {
    if (attempt_no > 0) DRONGO_RESOLVER_TALLY(retries);
    const auto id = static_cast<std::uint16_t>(rng_.uniform(0x10000));
    const Message query =
        Message::make_query(id, reverse_pointer_name(address), std::nullopt, RrType::kPtr);
    DRONGO_RESOLVER_TALLY(queries);
    try {
      const auto reply_wire = transport_->exchange(client_, server_, query.encode());
      const Message reply = Message::decode(reply_wire);
      for (const auto& rr : reply.answers) {
        if (const auto* ptr = std::get_if<PtrRdata>(&rr.rdata)) {
          return ptr->name.to_string();
        }
      }
      return "";
    } catch (const net::TimeoutError&) {
      DRONGO_RESOLVER_TALLY(timeouts);
    } catch (const net::UnreachableError&) {
      DRONGO_RESOLVER_TALLY(unreachable);
    } catch (const net::TransientError&) {
      DRONGO_RESOLVER_TALLY(validation_failures);
    }
  }
  DRONGO_RESOLVER_TALLY(failed_queries);
  return "";
}

#undef DRONGO_RESOLVER_TALLY

}  // namespace drongo::dns
