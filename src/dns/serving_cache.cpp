#include "dns/serving_cache.hpp"

#include <algorithm>
#include <utility>

namespace drongo::dns {

struct ShardedDnsCache::Flight::State {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  FlightOutcome outcome;
};

struct ShardedDnsCache::Shard {
  explicit Shard(std::size_t max_entries) : cache(max_entries) {}

  mutable std::mutex mutex;
  DnsCache cache;
  /// Open flights keyed by "canonical-qname|ecs-prefix".
  std::map<std::string, std::shared_ptr<Flight::State>> inflight;
  std::uint64_t coalesced = 0;
  std::uint64_t coalesce_leaders = 0;
};

ShardedDnsCache::ShardedDnsCache(std::size_t shards, std::size_t max_entries) {
  const std::size_t count = std::max<std::size_t>(1, shards);
  const std::size_t per_shard = std::max<std::size_t>(1, max_entries / count);
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>(per_shard));
  }
}

ShardedDnsCache::~ShardedDnsCache() = default;

std::size_t ShardedDnsCache::shard_index_of(const std::string& canonical) const {
  // FNV-1a: deterministic across runs and platforms, unlike std::hash.
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : canonical) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return static_cast<std::size_t>(h % shards_.size());
}

ShardedDnsCache::Shard& ShardedDnsCache::shard_of(const std::string& canonical) const {
  return *shards_[shard_index_of(canonical)];
}

std::optional<DnsCache::Entry> ShardedDnsCache::lookup(const DnsName& name,
                                                       const net::IpPrefix& client_subnet,
                                                       std::uint64_t now_ms) {
  // Canonicalize exactly once at the serving boundary: the same lowercase
  // form picks the shard AND keys the shard's cache, so mixed-case queries
  // can never land in (or populate) a different shard than their lowercase
  // twins.
  const std::string canonical = name.canonical();
  Shard& shard = shard_of(canonical);
  std::lock_guard lock(shard.mutex);
  return shard.cache.lookup(canonical, client_subnet, now_ms);
}

void ShardedDnsCache::insert(const DnsName& name, const net::IpPrefix& scope,
                             std::vector<net::Ipv4Addr> addresses,
                             std::uint32_t ttl_seconds, std::uint64_t now_ms) {
  std::string canonical = name.canonical();
  Shard& shard = shard_of(canonical);
  std::lock_guard lock(shard.mutex);
  shard.cache.insert(std::move(canonical), scope, std::move(addresses), ttl_seconds,
                     now_ms);
}

void ShardedDnsCache::insert_negative(const DnsName& name, const net::IpPrefix& scope,
                                      Rcode rcode, std::uint32_t ttl_seconds,
                                      std::uint64_t now_ms) {
  std::string canonical = name.canonical();
  Shard& shard = shard_of(canonical);
  std::lock_guard lock(shard.mutex);
  shard.cache.insert_negative(std::move(canonical), scope, rcode, ttl_seconds, now_ms);
}

void ShardedDnsCache::note_foreign_family_drop(const DnsName& name) {
  // Charged to the shard that would have owned the entry, so per-shard
  // stats stay meaningful under aggregation.
  Shard& shard = shard_of(name.canonical());
  std::lock_guard lock(shard.mutex);
  shard.cache.note_foreign_family_drop();
}

void ShardedDnsCache::purge(std::uint64_t now_ms) {
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    shard->cache.purge(now_ms);
  }
}

ShardedDnsCache::Flight ShardedDnsCache::join(const DnsName& name,
                                              const net::IpPrefix& ecs) {
  const std::string canonical = name.canonical();
  const std::size_t index = shard_index_of(canonical);
  Shard& shard = *shards_[index];
  std::string key = canonical + "|" + ecs.to_string();
  std::lock_guard lock(shard.mutex);
  if (const auto it = shard.inflight.find(key); it != shard.inflight.end()) {
    ++shard.coalesced;
    if (registry_ != nullptr) registry_->add("dns.cache.coalesced");
    return Flight(this, index, std::move(key), it->second, /*leader=*/false);
  }
  auto state = std::make_shared<Flight::State>();
  shard.inflight.emplace(key, state);
  ++shard.coalesce_leaders;
  if (registry_ != nullptr) registry_->add("dns.cache.coalesce_leaders");
  return Flight(this, index, std::move(key), std::move(state), /*leader=*/true);
}

void ShardedDnsCache::set_registry(obs::Registry* registry) {
  registry_ = registry;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    shard->cache.set_registry(registry);
  }
}

CacheStats ShardedDnsCache::stats() const {
  CacheStats total;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    total += shard->cache.stats();
    total.coalesced += shard->coalesced;
    total.coalesce_leaders += shard->coalesce_leaders;
  }
  return total;
}

std::size_t ShardedDnsCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    total += shard->cache.size();
  }
  return total;
}

ShardedDnsCache::Flight::~Flight() {
  // A leader that never published (upstream threw, early return) must not
  // strand its followers: resolve the flight with an unusable outcome so
  // each follower falls back to its own upstream exchange.
  if (leader_ && !published_ && state_ != nullptr) publish(FlightOutcome{});
}

ShardedDnsCache::FlightOutcome ShardedDnsCache::Flight::wait() const {
  std::unique_lock lock(state_->mutex);
  state_->cv.wait(lock, [&] { return state_->done; });
  return state_->outcome;
}

void ShardedDnsCache::Flight::publish(FlightOutcome outcome) {
  published_ = true;
  {
    Shard& shard = *owner_->shards_[shard_index_];
    std::lock_guard lock(shard.mutex);
    shard.inflight.erase(key_);
  }
  {
    std::lock_guard lock(state_->mutex);
    state_->outcome = std::move(outcome);
    state_->done = true;
  }
  state_->cv.notify_all();
}

}  // namespace drongo::dns
