// EDNS0 (RFC 6891) and the Client Subnet option (RFC 7871).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/bytes.hpp"
#include "net/ipaddr.hpp"
#include "net/prefix.hpp"

namespace drongo::dns {

/// EDNS0 Client Subnet option payload (RFC 7871 §6).
///
/// In a query, `source_prefix_length` announces how many leading bits of
/// the address are meaningful and `scope_prefix_length` must be 0. In a
/// response, the server echoes source and sets scope to the prefix length it
/// actually used for tailoring.
///
/// Families 1 (IPv4) and 2 (IPv6) decode into `address` with strict
/// family-specific length validation; any other family round-trips opaquely
/// through `opaque_address` and is flagged unrepresentable. Wire violations
/// always throw net::ParseError — never InvalidArgument, which the failure
/// taxonomy reserves for programming errors.
///
/// Subnet assimilation — the paper's core mechanism — is nothing more than
/// constructing this option with a prefix that is NOT the client's own.
struct ClientSubnet {
  /// Address family per the IANA registry; 1 = IPv4, 2 = IPv6.
  std::uint16_t family = 1;
  std::uint8_t source_prefix_length = 24;
  std::uint8_t scope_prefix_length = 0;
  /// The announced network, canonicalized to `source_prefix_length` bits.
  /// Meaningful only when is_representable(); unspecified otherwise.
  net::IpAddr address{};
  /// Raw address bytes of a foreign-family option, preserved verbatim so
  /// the option still round-trips through encode().
  std::vector<std::uint8_t> opaque_address;

  /// Builds a query-side option from a subnet (scope 0), e.g. from
  /// `Prefix::must_parse("203.0.113.0/24")` or an IpPrefix of either family.
  static ClientSubnet for_subnet(const net::IpPrefix& subnet);

  /// True when `address` carries the announced network (family 1 or 2).
  [[nodiscard]] bool is_representable() const {
    return family == 1 || family == 2;
  }

  /// The announced network as a dual-stack prefix. Throws net::ParseError
  /// for an unrepresentable family: the caller is looking at wire-supplied
  /// data it must not interpret, not at a programming error.
  [[nodiscard]] net::IpPrefix source_prefix() const;

  /// The scope network from a response (how broadly the answer may be
  /// cached/used). Throws net::ParseError for an unrepresentable family.
  [[nodiscard]] net::IpPrefix scope_prefix() const;

  /// Encodes the option payload (not including option code/length).
  /// Address bytes are truncated to ceil(source_prefix_length / 8) and the
  /// trailing partial byte is masked, as the RFC requires.
  void encode(net::ByteWriter& writer) const;

  /// Decodes an option payload of exactly `length` bytes from the reader.
  /// Validates family-specific prefix-length bounds (<=32 for family 1,
  /// <=128 for family 2) and the ceil(source/8) address-byte count (all
  /// families), throwing ParseError on violations; unmasked trailing bits
  /// are tolerated but masked.
  static ClientSubnet decode(net::ByteReader& reader, std::size_t length);

  /// Text form; never throws (foreign families print as "familyN/len").
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const ClientSubnet&, const ClientSubnet&) = default;
};

/// A raw EDNS option (code + payload) for options drongo does not interpret.
struct EdnsOption {
  std::uint16_t code = 0;
  std::vector<std::uint8_t> payload;

  friend bool operator==(const EdnsOption&, const EdnsOption&) = default;
};

/// Parsed form of the OPT pseudo-record (RFC 6891 §6.1).
struct Edns {
  /// Advertised maximum UDP payload size (the OPT record's CLASS field).
  std::uint16_t udp_payload_size = 1232;
  /// Extended RCODE high bits (TTL byte 0). Zero for all drongo traffic.
  std::uint8_t extended_rcode = 0;
  std::uint8_t version = 0;
  /// DO bit and flags (TTL bytes 2-3).
  std::uint16_t flags = 0;
  /// The client-subnet option, when present.
  std::optional<ClientSubnet> client_subnet;
  /// Options other than client-subnet, preserved for round-tripping.
  std::vector<EdnsOption> other_options;

  friend bool operator==(const Edns&, const Edns&) = default;
};

/// ECS option code in the EDNS option registry.
inline constexpr std::uint16_t kOptionCodeClientSubnet = 8;

}  // namespace drongo::dns
