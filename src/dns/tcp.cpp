#include "dns/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/error.hpp"

namespace drongo::dns {

namespace {

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

/// Reads exactly `n` bytes; returns false on EOF/timeout/error.
bool read_exact(int fd, std::uint8_t* out, std::size_t n, int timeout_ms) {
  std::size_t got = 0;
  while (got < n) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready <= 0) return false;
    const ssize_t r = ::recv(fd, out + got, n - got, 0);
    if (r <= 0) return false;
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool write_all(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (w <= 0) return false;
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

/// Reads one length-prefixed DNS message; empty on EOF or malformed.
std::vector<std::uint8_t> read_framed(int fd, int timeout_ms) {
  std::uint8_t length_bytes[2];
  if (!read_exact(fd, length_bytes, 2, timeout_ms)) return {};
  const std::size_t length = (std::size_t{length_bytes[0]} << 8) | length_bytes[1];
  if (length == 0) return {};
  std::vector<std::uint8_t> payload(length);
  if (!read_exact(fd, payload.data(), length, timeout_ms)) return {};
  return payload;
}

bool write_framed(int fd, std::span<const std::uint8_t> payload) {
  if (payload.size() > 0xFFFF) return false;
  std::uint8_t length_bytes[2] = {static_cast<std::uint8_t>(payload.size() >> 8),
                                  static_cast<std::uint8_t>(payload.size())};
  return write_all(fd, length_bytes, 2) && write_all(fd, payload.data(), payload.size());
}

}  // namespace

TcpDnsServer::TcpDnsServer(DnsServer* server, std::uint16_t port,
                           net::Ipv4Addr server_identity)
    : handler_(server), identity_(server_identity) {
  if (handler_ == nullptr) throw net::InvalidArgument("null DnsServer");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw net::Error(std::string("socket(): ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw net::Error(std::string("bind/listen(): ") + std::strerror(saved));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  thread_ = std::thread([this] { serve_loop(); });
}

TcpDnsServer::~TcpDnsServer() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void TcpDnsServer::stop() {
  stopping_.store(true);
  if (thread_.joinable()) thread_.join();
}

void TcpDnsServer::serve_loop() {
  while (!stopping_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 50);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    serve_connection(fd);
    ::close(fd);
  }
}

void TcpDnsServer::serve_connection(int fd) {
  // Serve queries until the peer closes or an error occurs.
  for (;;) {
    const auto wire = read_framed(fd, 500);
    if (wire.empty()) return;
    try {
      const Message query = Message::decode(wire);
      const Message reply = handler_->handle(query, identity_);
      served_.fetch_add(1);
      if (!write_framed(fd, reply.encode())) return;
    } catch (const net::Error&) {
      return;  // malformed: drop the connection, like a real server
    }
  }
}

TcpDnsClient::TcpDnsClient(int timeout_ms) : timeout_ms_(timeout_ms) {}

void TcpDnsClient::register_endpoint(net::Ipv4Addr server, std::uint16_t port) {
  endpoints_[server] = port;
}

std::vector<std::uint8_t> TcpDnsClient::exchange(net::Ipv4Addr /*source*/,
                                                 net::Ipv4Addr destination,
                                                 std::span<const std::uint8_t> query) {
  auto it = endpoints_.find(destination);
  if (it == endpoints_.end()) {
    throw net::InvalidArgument("no TCP endpoint registered for " +
                               destination.to_string());
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw net::Error(std::string("socket(): ") + std::strerror(errno));
  sockaddr_in addr = loopback(it->second);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    throw net::UnreachableError(std::string("connect(): ") + std::strerror(saved));
  }
  std::vector<std::uint8_t> reply;
  if (write_framed(fd, query)) {
    reply = read_framed(fd, timeout_ms_);
  }
  ::close(fd);
  if (reply.empty()) {
    throw net::TimeoutError("TCP DNS exchange with " + destination.to_string() +
                            " failed");
  }
  return reply;
}

TruncationFallbackTransport::TruncationFallbackTransport(DnsTransport* udp,
                                                         DnsTransport* tcp)
    : udp_(udp), tcp_(tcp) {
  if (udp_ == nullptr || tcp_ == nullptr) {
    throw net::InvalidArgument("null transport in fallback");
  }
}

std::vector<std::uint8_t> TruncationFallbackTransport::exchange(
    net::Ipv4Addr source, net::Ipv4Addr destination, std::span<const std::uint8_t> query) {
  auto reply = udp_->exchange(source, destination, query);
  const Message decoded = Message::decode(reply);
  if (!decoded.header.tc) return reply;
  fallbacks_.fetch_add(1, std::memory_order_relaxed);
  return tcp_->exchange(source, destination, query);
}

std::size_t max_udp_payload(const Message& query) {
  if (query.edns) {
    // Below 512 an advertisement is ignored (RFC 6891 §6.2.3).
    return std::max<std::size_t>(query.edns->udp_payload_size, 512);
  }
  return 512;
}

bool truncate_to_fit(Message& response, std::size_t max_bytes) {
  if (response.encode().size() <= max_bytes) return false;
  // Drop whole sections until it fits; the client will retry over TCP, so
  // partial answers only waste its time.
  response.additional.clear();
  response.authority.clear();
  response.answers.clear();
  response.header.tc = true;
  if (response.encode().size() > max_bytes && response.edns) {
    response.edns.reset();
  }
  return true;
}

}  // namespace drongo::dns
