#include "topology/as_gen.hpp"

#include <algorithm>
#include <set>

#include "net/error.hpp"

namespace drongo::topology {

namespace {

/// Places a PoP near a metro with a few km of positional jitter.
Pop make_pop(int metro_index, net::Rng& rng) {
  const Metro& metro = world_metros()[static_cast<std::size_t>(metro_index)];
  Pop pop;
  pop.metro_index = metro_index;
  pop.location = {metro.location.lat_deg + rng.uniform_real(-0.2, 0.2),
                  metro.location.lon_deg + rng.uniform_real(-0.2, 0.2)};
  return pop;
}

/// Weighted metro pick (by population weight).
int pick_metro(net::Rng& rng) {
  const auto& metros = world_metros();
  double total = 0.0;
  for (const auto& m : metros) total += m.weight;
  double x = rng.uniform_real(0.0, total);
  for (std::size_t i = 0; i < metros.size(); ++i) {
    x -= metros[i].weight;
    if (x <= 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(metros.size()) - 1;
}

/// Distinct metros for an AS's PoP footprint.
std::vector<int> pick_metros(int count, net::Rng& rng) {
  std::set<int> chosen;
  // Bounded retries; fall back to sequential fill for large counts.
  for (int tries = 0; static_cast<int>(chosen.size()) < count && tries < count * 20; ++tries) {
    chosen.insert(pick_metro(rng));
  }
  int next = 0;
  while (static_cast<int>(chosen.size()) < count &&
         next < static_cast<int>(world_metros().size())) {
    chosen.insert(next++);
  }
  return {chosen.begin(), chosen.end()};
}

/// Connects nodes `a` (customer/peer) and `b` at their closest PoP pair.
AsLink make_link(const AsGraph& g, std::size_t a, std::size_t b, LinkKind kind,
                 const AsGenConfig& cfg, net::Rng& rng) {
  const AsNode& na = g.node(a);
  const AsNode& nb = g.node(b);
  // Choose the geographically closest PoP pair — realistic interconnects
  // happen where both networks are present.
  int best_pa = 0;
  int best_pb = 0;
  double best_km = 1e18;
  for (std::size_t i = 0; i < na.pops.size(); ++i) {
    for (std::size_t j = 0; j < nb.pops.size(); ++j) {
      const double km = distance_km(na.pops[i].location, nb.pops[j].location);
      if (km < best_km) {
        best_km = km;
        best_pa = static_cast<int>(i);
        best_pb = static_cast<int>(j);
      }
    }
  }
  AsLink link;
  link.a = a;
  link.b = b;
  link.pop_a = best_pa;
  link.pop_b = best_pb;
  link.kind = kind;
  link.latency_ms =
      propagation_ms(na.pops[static_cast<std::size_t>(best_pa)].location,
                     nb.pops[static_cast<std::size_t>(best_pb)].location) +
      rng.uniform_real(cfg.link_overhead_ms_min, cfg.link_overhead_ms_max);
  return link;
}

bool shares_metro(const AsNode& a, const AsNode& b) {
  for (const auto& pa : a.pops) {
    for (const auto& pb : b.pops) {
      if (pa.metro_index == pb.metro_index) return true;
    }
  }
  return false;
}

/// Interconnects two ASes the way real networks do: one link per shared
/// metro (both present at the same IX location), falling back to the single
/// closest PoP pair when footprints don't overlap. Multiple interconnection
/// points are what keep intra-AS hauls short; a single global choke point
/// per AS pair would inflate every path by continental detours.
void add_interconnects(AsGraph& g, std::size_t a, std::size_t b, LinkKind kind,
                       const AsGenConfig& cfg, net::Rng& rng) {
  const AsNode& na = g.node(a);
  const AsNode& nb = g.node(b);
  bool any = false;
  for (std::size_t i = 0; i < na.pops.size(); ++i) {
    for (std::size_t j = 0; j < nb.pops.size(); ++j) {
      if (na.pops[i].metro_index != nb.pops[j].metro_index) continue;
      AsLink link;
      link.a = a;
      link.b = b;
      link.pop_a = static_cast<int>(i);
      link.pop_b = static_cast<int>(j);
      link.kind = kind;
      link.latency_ms =
          propagation_ms(na.pops[i].location, nb.pops[j].location) +
          rng.uniform_real(cfg.link_overhead_ms_min, cfg.link_overhead_ms_max);
      g.add_link(link);
      any = true;
    }
  }
  if (!any) {
    g.add_link(make_link(g, a, b, kind, cfg, rng));
  }
}

}  // namespace

AsGraph generate_as_graph(const AsGenConfig& cfg) {
  if (cfg.tier1_count < 2) throw net::InvalidArgument("need at least two tier-1 ASes");
  net::Rng rng(cfg.seed);
  AsGraph g;
  std::uint32_t next_asn = 100;

  std::vector<std::size_t> tier1s;
  std::vector<std::size_t> tier2s;
  std::vector<std::size_t> stubs;

  // --- Tier-1 backbones: global footprints.
  for (int i = 0; i < cfg.tier1_count; ++i) {
    AsNode node;
    node.asn = net::Asn(next_asn++);
    node.tier = AsTier::kTier1;
    node.domain = "bbone" + std::to_string(i) + ".net";
    for (int metro : pick_metros(cfg.t1_pops, rng)) {
      node.pops.push_back(make_pop(metro, rng));
    }
    tier1s.push_back(g.add_node(std::move(node)));
  }
  // Full settlement-free mesh between tier-1s (the defining property).
  for (std::size_t i = 0; i < tier1s.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1s.size(); ++j) {
      add_interconnects(g, tier1s[i], tier1s[j], LinkKind::kPeering, cfg, rng);
    }
  }

  // --- Tier-2 regionals.
  for (int i = 0; i < cfg.tier2_count; ++i) {
    AsNode node;
    node.asn = net::Asn(next_asn++);
    node.tier = AsTier::kTier2;
    node.domain = "regional" + std::to_string(i) + ".net";
    const int pops = static_cast<int>(
        rng.uniform_range(cfg.t2_pops_min, cfg.t2_pops_max));
    for (int metro : pick_metros(pops, rng)) {
      node.pops.push_back(make_pop(metro, rng));
    }
    tier2s.push_back(g.add_node(std::move(node)));
  }
  for (std::size_t t2 : tier2s) {
    const int providers = static_cast<int>(
        rng.uniform_range(cfg.t2_providers_min, cfg.t2_providers_max));
    std::vector<std::size_t> shuffled = tier1s;
    rng.shuffle(shuffled);
    for (int k = 0; k < providers && k < static_cast<int>(shuffled.size()); ++k) {
      add_interconnects(g, t2, shuffled[static_cast<std::size_t>(k)],
                        LinkKind::kTransit, cfg, rng);
    }
  }
  // Lateral tier-2 peering where footprints overlap; the *absence* of such
  // peerings elsewhere is what produces long valley-free detours.
  for (std::size_t i = 0; i < tier2s.size(); ++i) {
    for (std::size_t j = i + 1; j < tier2s.size(); ++j) {
      if (shares_metro(g.node(tier2s[i]), g.node(tier2s[j])) &&
          rng.chance(cfg.t2_peering_prob)) {
        add_interconnects(g, tier2s[i], tier2s[j], LinkKind::kPeering, cfg, rng);
      }
    }
  }

  // --- Stubs (eyeballs): one PoP, transit from nearby tier-2s (or a tier-1
  // with small probability, modelling direct enterprise transit).
  for (int i = 0; i < cfg.stub_count; ++i) {
    AsNode node;
    node.asn = net::Asn(next_asn++);
    node.tier = AsTier::kStub;
    node.domain = "eyeball" + std::to_string(i) + ".example";
    node.pops.push_back(make_pop(pick_metro(rng), rng));
    stubs.push_back(g.add_node(std::move(node)));
  }
  for (std::size_t stub : stubs) {
    const GeoPoint& here = g.node(stub).pops[0].location;
    // Rank candidate providers by distance; pick among the closest few so
    // access topology is geographically sensible but not deterministic.
    std::vector<std::pair<double, std::size_t>> candidates;
    for (std::size_t t2 : tier2s) {
      const AsNode& n = g.node(t2);
      candidates.emplace_back(
          distance_km(here, n.pops[static_cast<std::size_t>(n.closest_pop(here))].location),
          t2);
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    const int providers = static_cast<int>(
        rng.uniform_range(cfg.stub_providers_min, cfg.stub_providers_max));
    std::set<std::size_t> picked;
    for (int k = 0; k < providers; ++k) {
      if (rng.chance(0.08) && !tier1s.empty()) {
        picked.insert(tier1s[rng.index(tier1s.size())]);
      } else if (!candidates.empty()) {
        // Bias toward nearby tier-2s: geometric over the sorted ranks.
        std::size_t rank = 0;
        while (rank + 1 < candidates.size() && rng.chance(0.45)) ++rank;
        picked.insert(candidates[rank].second);
      }
    }
    if (picked.empty() && !tier1s.empty()) picked.insert(tier1s[0]);
    for (std::size_t provider : picked) {
      add_interconnects(g, stub, provider, LinkKind::kTransit, cfg, rng);
    }
  }
  // Occasional stub-stub IXP peering in shared metros.
  for (std::size_t i = 0; i < stubs.size(); ++i) {
    for (std::size_t j = i + 1; j < stubs.size(); ++j) {
      if (g.node(stubs[i]).pops[0].metro_index == g.node(stubs[j]).pops[0].metro_index &&
          rng.chance(cfg.stub_peering_prob)) {
        add_interconnects(g, stubs[i], stubs[j], LinkKind::kPeering, cfg, rng);
      }
    }
  }

  return g;
}

}  // namespace drongo::topology
