#include "topology/routing.hpp"

#include <limits>
#include <mutex>
#include <queue>
#include <tuple>

#include "net/error.hpp"

namespace drongo::topology {

namespace {

/// Selection key, lexicographic: route class dominates (LOCAL_PREF), then
/// AS-path length, then the latency of the best interconnect to the next
/// hop (multi-homed networks prefer the better-performing egress), then
/// lowest next-hop ASN for full determinism.
struct Key {
  int cls = static_cast<int>(RouteClass::kNone);
  int len = std::numeric_limits<int>::max();
  double tie_latency = std::numeric_limits<double>::infinity();
  std::uint32_t asn = 0xFFFFFFFF;

  friend bool operator<(const Key& a, const Key& b) {
    return std::tie(a.cls, a.len, a.tie_latency, a.asn) <
           std::tie(b.cls, b.len, b.tie_latency, b.asn);
  }
};

}  // namespace

BgpRouting::BgpRouting(const AsGraph* graph) : graph_(graph) {
  if (graph_ == nullptr) throw net::InvalidArgument("null AsGraph");
}

const std::vector<RouteEntry>& BgpRouting::table_for(std::size_t dst) {
  {
    std::shared_lock lock(mutex_);
    auto it = tables_.find(dst);
    if (it != tables_.end()) return it->second;
  }
  // Compute outside the lock: the table is a pure function of the immutable
  // graph, so two workers racing on the same destination produce identical
  // tables and try_emplace keeps whichever landed first. References to map
  // elements stay valid across rehashing, so returning one is safe even
  // while other destinations are being inserted.
  auto table = compute(dst);
  std::unique_lock lock(mutex_);
  return tables_.try_emplace(dst, std::move(table)).first->second;
}

std::size_t BgpRouting::cached_destinations() const {
  std::shared_lock lock(mutex_);
  return tables_.size();
}

std::vector<RouteEntry> BgpRouting::compute(std::size_t dst) const {
  const std::size_t n = graph_->node_count();
  if (dst >= n) throw net::InvalidArgument("destination node out of range");
  std::vector<RouteEntry> table(n);
  std::vector<Key> keys(n);

  auto min_latency_between = [&](std::size_t a, std::size_t b) {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t l : graph_->links_between(a, b)) {
      best = std::min(best, graph_->link(l).latency_ms);
    }
    return best;
  };
  auto candidate_key = [&](RouteClass cls, int len, std::size_t from, std::size_t next) {
    return Key{static_cast<int>(cls), len, min_latency_between(from, next),
               graph_->node(next).asn.value()};
  };
  auto adopt = [&](std::size_t v, RouteClass cls, const Key& key, std::size_t next,
                   std::size_t via) {
    table[v] = {cls, key.len, next, via};
    keys[v] = key;
  };

  // --- Phase 1: customer routes, BFS upward from the destination. Each
  // provider learns the route from its customer; only customer routes
  // propagate further upward.
  table[dst] = {RouteClass::kCustomer, 0, dst, 0};
  keys[dst] = {static_cast<int>(RouteClass::kCustomer), 0, 0.0, 0};
  std::vector<std::size_t> frontier{dst};
  while (!frontier.empty()) {
    std::vector<std::size_t> next_frontier;
    for (std::size_t v : frontier) {
      if (table[v].cls != RouteClass::kCustomer) continue;
      const int len = table[v].as_path_len;
      for (std::size_t l : graph_->provider_links(v)) {
        const std::size_t p = graph_->other_end(l, v);
        const Key key = candidate_key(RouteClass::kCustomer, len + 1, p, v);
        if (key < keys[p]) {
          const bool fresh = table[p].cls == RouteClass::kNone;
          adopt(p, RouteClass::kCustomer, key, v, l);
          if (fresh) next_frontier.push_back(p);
        }
      }
    }
    frontier = std::move(next_frontier);
  }

  // --- Phase 2: peer routes. Only customer routes cross peering links.
  std::vector<std::pair<Key, RouteEntry>> peer_candidates(
      n, {Key{}, RouteEntry{}});
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t l : graph_->peer_links(v)) {
      const std::size_t u = graph_->other_end(l, v);
      if (table[u].cls != RouteClass::kCustomer) continue;
      const Key key = candidate_key(RouteClass::kPeer, table[u].as_path_len + 1, v, u);
      if (key < peer_candidates[v].first) {
        peer_candidates[v] = {key, {RouteClass::kPeer, key.len, u, l}};
      }
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (peer_candidates[v].second.cls == RouteClass::kPeer &&
        peer_candidates[v].first < keys[v]) {
      table[v] = peer_candidates[v].second;
      keys[v] = peer_candidates[v].first;
    }
  }

  // --- Phase 3: provider routes. Providers export their selected route
  // (any class) to customers. Dijkstra over keys: pops are final because
  // every relaxation produces a strictly larger key.
  using HeapItem = std::pair<Key, std::size_t>;
  auto heap_greater = [](const HeapItem& a, const HeapItem& b) { return b.first < a.first; };
  std::priority_queue<HeapItem, std::vector<HeapItem>, decltype(heap_greater)> heap(
      heap_greater);
  for (std::size_t v = 0; v < n; ++v) {
    if (table[v].cls != RouteClass::kNone) heap.emplace(keys[v], v);
  }
  std::vector<bool> done(n, false);
  while (!heap.empty()) {
    const auto [key, v] = heap.top();
    heap.pop();
    if (done[v]) continue;
    if (keys[v] < key) continue;  // stale entry
    done[v] = true;
    for (std::size_t l : graph_->customer_links(v)) {
      const std::size_t c = graph_->other_end(l, v);
      if (done[c]) continue;
      Key ckey = candidate_key(RouteClass::kProvider, table[v].as_path_len + 1, c, v);
      if (ckey < keys[c]) {
        adopt(c, RouteClass::kProvider, ckey, v, l);
        heap.emplace(ckey, c);
      }
    }
  }

  return table;
}

std::vector<std::size_t> BgpRouting::as_path(std::size_t src, std::size_t dst) {
  const auto& table = table_for(dst);
  if (src >= table.size() || table[src].cls == RouteClass::kNone) return {};
  std::vector<std::size_t> path{src};
  std::size_t v = src;
  while (v != dst) {
    v = table[v].next_node;
    path.push_back(v);
    if (path.size() > table.size()) {
      throw net::Error("routing loop detected toward node " + std::to_string(dst));
    }
  }
  return path;
}

std::vector<std::size_t> BgpRouting::link_path(std::size_t src, std::size_t dst) {
  const auto& table = table_for(dst);
  if (src >= table.size() || table[src].cls == RouteClass::kNone) return {};
  std::vector<std::size_t> links;
  std::size_t v = src;
  while (v != dst) {
    links.push_back(table[v].via_link);
    v = table[v].next_node;
    if (links.size() > table.size()) {
      throw net::Error("routing loop detected toward node " + std::to_string(dst));
    }
  }
  return links;
}

bool BgpRouting::reachable(std::size_t src, std::size_t dst) {
  const auto& table = table_for(dst);
  return src < table.size() && table[src].cls != RouteClass::kNone;
}

}  // namespace drongo::topology
