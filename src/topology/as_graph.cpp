#include "topology/as_graph.hpp"

#include <limits>

#include "net/error.hpp"

namespace drongo::topology {

int AsNode::closest_pop(const GeoPoint& point) const {
  int best = 0;
  double best_km = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < pops.size(); ++i) {
    const double km = distance_km(pops[i].location, point);
    if (km < best_km) {
      best_km = km;
      best = static_cast<int>(i);
    }
  }
  return best;
}

std::size_t AsGraph::add_node(AsNode node) {
  if (node.pops.empty()) {
    throw net::InvalidArgument("AS " + node.asn.to_string() + " has no PoPs");
  }
  if (by_asn_.contains(node.asn.value())) {
    throw net::InvalidArgument("duplicate ASN " + node.asn.to_string());
  }
  const std::size_t index = nodes_.size();
  by_asn_[node.asn.value()] = index;
  nodes_.push_back(std::move(node));
  provider_links_.emplace_back();
  customer_links_.emplace_back();
  peer_links_.emplace_back();
  return index;
}

std::size_t AsGraph::add_link(AsLink link) {
  if (link.a >= nodes_.size() || link.b >= nodes_.size()) {
    throw net::InvalidArgument("link endpoint out of range");
  }
  if (link.a == link.b) {
    throw net::InvalidArgument("self-link on node " + std::to_string(link.a));
  }
  const std::size_t index = links_.size();
  links_.push_back(link);
  const std::uint64_t key = link.a < link.b
                                ? (std::uint64_t{link.a} << 32) | link.b
                                : (std::uint64_t{link.b} << 32) | link.a;
  by_pair_[key].push_back(index);
  if (link.kind == LinkKind::kTransit) {
    provider_links_[link.a].push_back(index);  // a buys from b
    customer_links_[link.b].push_back(index);  // b sells to a
  } else {
    peer_links_[link.a].push_back(index);
    peer_links_[link.b].push_back(index);
  }
  return index;
}

std::optional<std::size_t> AsGraph::index_of(net::Asn asn) const {
  auto it = by_asn_.find(asn.value());
  if (it == by_asn_.end()) return std::nullopt;
  return it->second;
}

const std::vector<std::size_t>& AsGraph::provider_links(std::size_t v) const {
  return provider_links_.at(v);
}

const std::vector<std::size_t>& AsGraph::customer_links(std::size_t v) const {
  return customer_links_.at(v);
}

const std::vector<std::size_t>& AsGraph::peer_links(std::size_t v) const {
  return peer_links_.at(v);
}

std::vector<std::size_t> AsGraph::links_between(std::size_t a, std::size_t b) const {
  const std::uint64_t key =
      a < b ? (std::uint64_t{a} << 32) | b : (std::uint64_t{b} << 32) | a;
  auto it = by_pair_.find(key);
  return it == by_pair_.end() ? std::vector<std::size_t>{} : it->second;
}

std::size_t AsGraph::other_end(std::size_t l, std::size_t v) const {
  const AsLink& link = links_.at(l);
  if (link.a == v) return link.b;
  if (link.b == v) return link.a;
  throw net::InvalidArgument("node " + std::to_string(v) + " not on link " + std::to_string(l));
}

}  // namespace drongo::topology
