// Synthetic AS-graph generator with a realistic tiered structure.
#pragma once

#include "net/rng.hpp"
#include "topology/as_graph.hpp"

namespace drongo::topology {

/// Parameters for the generator. Defaults produce an Internet small enough
/// to sweep quickly but rich enough to exhibit routing inflation: missing
/// peerings force geographically long valley-free detours, which is one of
/// the two root causes of latency valleys (the other is CDN mapping error).
struct AsGenConfig {
  int tier1_count = 8;
  int tier2_count = 36;
  int stub_count = 240;

  /// Providers per tier-2 AS (drawn in [min,max]).
  int t2_providers_min = 1;
  int t2_providers_max = 3;
  /// Probability that any two tier-2 ASes sharing a metro peer directly.
  double t2_peering_prob = 0.55;
  /// Providers per stub AS.
  int stub_providers_min = 1;
  int stub_providers_max = 2;
  /// Probability a stub pair in the same metro peers (IXP-style).
  double stub_peering_prob = 0.04;

  /// PoP counts per tier.
  int t1_pops = 12;
  int t2_pops_min = 2;
  int t2_pops_max = 6;

  /// Per-link extra latency beyond propagation (equipment, queuing), ms.
  double link_overhead_ms_min = 0.1;
  double link_overhead_ms_max = 0.8;

  std::uint64_t seed = 42;
};

/// Generates a tiered AS graph:
///  - tier-1 backbones with global PoPs and a full settlement-free mesh;
///  - tier-2 regionals buying transit from 1-3 tier-1s, peering laterally
///    where they share a metro;
///  - stubs (eyeball ISPs, campuses) buying from nearby tier-2s/tier-1s.
/// ASNs are assigned sequentially from 100. Operator domains are synthetic
/// ("bbone<i>.net", "regional<i>.net", "eyeball<i>.example").
AsGraph generate_as_graph(const AsGenConfig& config);

}  // namespace drongo::topology
