// Geographic embedding: coordinates, distances, propagation delay.
#pragma once

#include <string>
#include <vector>

namespace drongo::topology {

/// A point on the globe in degrees.
struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  friend bool operator==(const GeoPoint&, const GeoPoint&) = default;
};

/// Great-circle distance in kilometres (haversine).
double distance_km(const GeoPoint& a, const GeoPoint& b);

/// One-way propagation delay in milliseconds over fiber along the great
/// circle, using the standard 2/3-c propagation speed plus a path-stretch
/// factor for non-geodesic fiber routes (default 1.4, a common empirical
/// figure). Never returns less than 0.05 ms for distinct points.
double propagation_ms(const GeoPoint& a, const GeoPoint& b, double stretch = 1.4);

/// A named metropolitan area used to place PoPs, clients, and replicas.
struct Metro {
  std::string name;
  GeoPoint location;
  /// Relative weight for client population and CDN build-out decisions.
  double weight = 1.0;
};

/// A fixed catalogue of 24 metros across six continents. Ordering is stable;
/// generators index into it deterministically.
const std::vector<Metro>& world_metros();

}  // namespace drongo::topology
