// AS-level Internet graph: nodes (with PoPs), business-relationship links.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/types.hpp"
#include "topology/geo.hpp"

namespace drongo::topology {

/// Commercial tier of an AS. Determines which relationships the generator
/// creates and how many points of presence the AS gets.
enum class AsTier : std::uint8_t {
  kTier1,   ///< transit-free backbone, global PoPs, full T1 peering mesh
  kTier2,   ///< regional transit provider, buys from T1s, peers laterally
  kStub,    ///< eyeball/enterprise edge network, buys transit only
};

/// A point of presence: one location where an AS has routers.
struct Pop {
  int metro_index = 0;   ///< index into world_metros()
  GeoPoint location;     ///< jittered around the metro centre
};

/// One autonomous system.
struct AsNode {
  net::Asn asn;
  AsTier tier = AsTier::kStub;
  /// Operator domain used for router reverse-DNS ("r3.pop1.<domain>").
  std::string domain;
  std::vector<Pop> pops;

  /// PoP closest to `point` (index into pops). An AS always has >= 1 PoP.
  [[nodiscard]] int closest_pop(const GeoPoint& point) const;
};

/// Business relationship carried by a link.
enum class LinkKind : std::uint8_t {
  kTransit,   ///< a buys transit from b (a = customer, b = provider)
  kPeering,   ///< settlement-free peering between a and b
};

/// An inter-AS link between two specific PoPs.
struct AsLink {
  std::size_t a = 0;        ///< node index of the customer (transit) / first peer
  std::size_t b = 0;        ///< node index of the provider (transit) / second peer
  int pop_a = 0;            ///< PoP index on a's side
  int pop_b = 0;            ///< PoP index on b's side
  LinkKind kind = LinkKind::kTransit;
  double latency_ms = 1.0;  ///< one-way latency across the link
};

/// The AS graph: nodes, links, and adjacency with relationship semantics.
/// Node indices (size_t) are the primary handle; ASNs map 1:1 to indices.
class AsGraph {
 public:
  /// Adds a node; returns its index. ASNs must be unique.
  std::size_t add_node(AsNode node);

  /// Adds a link between existing nodes. For kTransit, `a` is the customer.
  /// Self-links are rejected.
  std::size_t add_link(AsLink link);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] const AsNode& node(std::size_t index) const { return nodes_.at(index); }
  [[nodiscard]] const AsLink& link(std::size_t index) const { return links_.at(index); }
  [[nodiscard]] const std::vector<AsNode>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<AsLink>& links() const { return links_; }

  /// Index lookup by ASN; nullopt when unknown.
  [[nodiscard]] std::optional<std::size_t> index_of(net::Asn asn) const;

  /// Link indices incident to node `v` where v is the CUSTOMER side
  /// (v buys transit over these links).
  [[nodiscard]] const std::vector<std::size_t>& provider_links(std::size_t v) const;

  /// Link indices incident to node `v` where v is the PROVIDER side.
  [[nodiscard]] const std::vector<std::size_t>& customer_links(std::size_t v) const;

  /// Peering link indices incident to node `v` (either side).
  [[nodiscard]] const std::vector<std::size_t>& peer_links(std::size_t v) const;

  /// The node on the far side of link `l` from `v`.
  [[nodiscard]] std::size_t other_end(std::size_t l, std::size_t v) const;

  /// All link indices directly connecting nodes `a` and `b` (either
  /// orientation, any kind). Real AS pairs interconnect at many locations;
  /// path stitching picks among these hot-potato style.
  [[nodiscard]] std::vector<std::size_t> links_between(std::size_t a, std::size_t b) const;

 private:
  std::vector<AsNode> nodes_;
  std::vector<AsLink> links_;
  std::unordered_map<std::uint32_t, std::size_t> by_asn_;
  std::vector<std::vector<std::size_t>> provider_links_;  // per node
  std::vector<std::vector<std::size_t>> customer_links_;  // per node
  std::vector<std::vector<std::size_t>> peer_links_;      // per node
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> by_pair_;
};

}  // namespace drongo::topology
