// Valley-free (Gao-Rexford) AS-level routing with BGP-style preferences.
#pragma once

#include <cstdint>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "topology/as_graph.hpp"

namespace drongo::topology {

/// Route class in decreasing BGP preference order. A route learned from a
/// customer is preferred over one learned from a peer, which beats one
/// learned from a provider — regardless of AS-path length. Length breaks
/// ties within a class.
enum class RouteClass : std::uint8_t {
  kCustomer = 0,
  kPeer = 1,
  kProvider = 2,
  kNone = 3,
};

/// One node's selected route toward a fixed destination.
struct RouteEntry {
  RouteClass cls = RouteClass::kNone;
  int as_path_len = -1;          ///< number of AS-level hops to the destination
  std::size_t next_node = 0;     ///< next AS on the selected path
  std::size_t via_link = 0;      ///< link index used to reach next_node
};

/// Computes and caches destination-rooted valley-free routing trees.
///
/// The standard export rules are enforced exactly:
///  - routes are always exported to customers;
///  - only customer-learned (or originated) routes are exported to peers
///    and providers.
/// Selection at each AS is lexicographic (class, path length, lowest
/// next-hop ASN), mirroring LOCAL_PREF dominance over AS-path length in
/// real BGP. The resulting paths exhibit the routing inflation the paper
/// identifies as a root cause of bad CDN choices: with peering missing, the
/// only valley-free path may detour far out of the geographic way.
class BgpRouting {
 public:
  /// The graph is borrowed and must outlive the router. The graph must not
  /// be mutated after construction (tables are cached).
  explicit BgpRouting(const AsGraph* graph);

  /// Full routing table toward `dst` (indexed by node). Computed on first
  /// use, cached thereafter. Safe to call from multiple threads: the cache
  /// is a pure acceleration, so concurrent misses recompute identical
  /// tables and the first insert wins.
  const std::vector<RouteEntry>& table_for(std::size_t dst);

  /// AS-level path src -> dst inclusive of both ends; empty when
  /// unreachable or src == dst is returned as {src}.
  std::vector<std::size_t> as_path(std::size_t src, std::size_t dst);

  /// The link indices traversed along as_path (size = path length - 1).
  std::vector<std::size_t> link_path(std::size_t src, std::size_t dst);

  [[nodiscard]] bool reachable(std::size_t src, std::size_t dst);

  /// Number of cached destination trees (observability).
  [[nodiscard]] std::size_t cached_destinations() const;

 private:
  std::vector<RouteEntry> compute(std::size_t dst) const;

  const AsGraph* graph_;
  mutable std::shared_mutex mutex_;  ///< guards tables_
  std::unordered_map<std::size_t, std::vector<RouteEntry>> tables_;
};

}  // namespace drongo::topology
