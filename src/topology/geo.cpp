#include "topology/geo.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace drongo::topology {

namespace {
constexpr double kEarthRadiusKm = 6371.0;
/// Light in fiber covers ~200 km per millisecond.
constexpr double kFiberKmPerMs = 200.0;

double radians(double deg) { return deg * std::numbers::pi / 180.0; }
}  // namespace

double distance_km(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = radians(a.lat_deg);
  const double lat2 = radians(b.lat_deg);
  const double dlat = radians(b.lat_deg - a.lat_deg);
  const double dlon = radians(b.lon_deg - a.lon_deg);
  const double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) * std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

double propagation_ms(const GeoPoint& a, const GeoPoint& b, double stretch) {
  const double km = distance_km(a, b);
  if (km <= 0.0) return 0.05;
  return std::max(0.05, km * stretch / kFiberKmPerMs);
}

const std::vector<Metro>& world_metros() {
  static const std::vector<Metro> metros = {
      // North America
      {"new-york", {40.71, -74.01}, 3.0},
      {"ashburn", {39.04, -77.49}, 2.5},
      {"chicago", {41.88, -87.63}, 2.0},
      {"dallas", {32.78, -96.80}, 1.8},
      {"los-angeles", {34.05, -118.24}, 2.5},
      {"seattle", {47.61, -122.33}, 1.5},
      {"toronto", {43.65, -79.38}, 1.2},
      // South America
      {"sao-paulo", {-23.55, -46.63}, 1.5},
      {"buenos-aires", {-34.60, -58.38}, 0.8},
      // Europe
      {"london", {51.51, -0.13}, 3.0},
      {"frankfurt", {50.11, 8.68}, 2.8},
      {"amsterdam", {52.37, 4.90}, 2.2},
      {"paris", {48.86, 2.35}, 2.0},
      {"madrid", {40.42, -3.70}, 1.2},
      {"stockholm", {59.33, 18.07}, 1.0},
      {"warsaw", {52.23, 21.01}, 0.9},
      // Middle East / Africa
      {"istanbul", {41.01, 28.98}, 1.2},
      {"johannesburg", {-26.20, 28.05}, 0.8},
      // Asia
      {"mumbai", {19.08, 72.88}, 1.8},
      {"singapore", {1.35, 103.82}, 2.2},
      {"hong-kong", {22.32, 114.17}, 2.0},
      {"tokyo", {35.68, 139.65}, 2.5},
      {"seoul", {37.57, 126.98}, 1.5},
      // Oceania
      {"sydney", {-33.87, 151.21}, 1.2},
  };
  return metros;
}

}  // namespace drongo::topology
