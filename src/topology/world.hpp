// World: the routable, measurable simulated Internet.
//
// Combines the AS graph, valley-free routing, IP address allocation, and a
// latency model into one queryable object: allocate hosts, compute RTTs,
// run traceroutes, look up who owns an address. Everything above this layer
// (CDN, measurement, Drongo itself) sees only IPs, RTTs, and hops — the same
// observables a real client has.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ip.hpp"
#include "net/ipaddr.hpp"
#include "net/prefix.hpp"
#include "net/rng.hpp"
#include "net/types.hpp"
#include "topology/as_graph.hpp"
#include "topology/routing.hpp"

namespace drongo::topology {

/// What a host is for; controls its last-mile latency draw.
enum class HostKind : std::uint8_t {
  kClient,  ///< eyeball: DSL/cable/fiber access latency (1-18 ms one-way)
  kServer,  ///< datacenter: sub-millisecond attachment
};

/// What kind of address space a /24 belongs to in the address plan.
enum class SubnetKind : std::uint8_t {
  kHost,     ///< end-host (eyeball/server) space — what CDNs map eagerly
  kRouter,   ///< infrastructure space (traceroute hops live here)
  kUnknown,  ///< outside the plan (private, unallocated)
};

/// Tuning for the latency and traceroute model.
struct WorldConfig {
  double client_access_ms_min = 1.0;   ///< one-way last-mile, clients
  double client_access_ms_max = 14.0;
  double server_access_ms_min = 0.1;   ///< one-way attachment, servers
  double server_access_ms_max = 0.8;
  double intra_as_hop_ms = 0.15;       ///< per-router forwarding overhead
  /// Multiplicative lognormal sigma applied to every RTT sample. Real
  /// Internet paths jitter far more than a few percent; this noise is what
  /// makes single-trial valley observations unreliable and training
  /// windows necessary.
  double rtt_noise_sigma = 0.08;
  /// Congestion spike: probability and magnitude (added ms, exp-drawn).
  double spike_prob = 0.02;
  double spike_mean_ms = 30.0;
  /// Emit a private-address first hop (home gateway) in traceroutes.
  bool first_hop_private = true;
  /// Probability a transit router doesn't answer traceroute probes.
  double unresponsive_hop_prob = 0.03;
  /// Anycast routing imperfection: probability that a given (source /24,
  /// VIP) pair is routed to a suboptimal front instead of the nearest one
  /// (BGP anycast is not latency-optimal). Deterministic per pair.
  double anycast_detour_prob = 0.55;
  std::uint64_t seed = 7;
};

/// One traceroute line.
struct TracerouteHop {
  net::Ipv4Addr ip;
  std::string rdns;        ///< reverse-DNS name ("r3.frankfurt.bbone1.net")
  net::Asn asn;            ///< AS0 for private/unresponsive hops
  double rtt_ms = 0.0;     ///< probe RTT to this hop
  bool is_private = false;
  bool responded = true;   ///< false renders as "* * *"
};

/// A registered end host.
struct Host {
  net::Ipv4Addr address;
  std::size_t as_index = 0;
  int pop_index = 0;
  GeoPoint location;
  double access_ms = 1.0;
  HostKind kind = HostKind::kClient;
};

class World {
 public:
  /// Takes ownership of the graph. The graph must be final: routing tables
  /// are cached against it.
  ///
  /// Thread-safety: construction and host/anycast allocation (`add_host`,
  /// `add_anycast`) are setup-phase operations and must be single-threaded.
  /// Once the world is built, all query paths (latency, traceroute,
  /// lookups) are safe to call concurrently — the RTT and routing caches
  /// are pure accelerations guarded internally.
  explicit World(AsGraph graph, WorldConfig config = {});

  [[nodiscard]] const AsGraph& graph() const { return graph_; }
  [[nodiscard]] BgpRouting& routing() { return routing_; }
  [[nodiscard]] const WorldConfig& config() const { return config_; }

  // ---- Address plan -------------------------------------------------------
  // Each AS node i owns the /16 starting at 20.0.0.0 + i*2^16. Within it,
  // third octets 0..31 hold router /24s (two per PoP: core and edge, so at
  // most 16 PoPs per AS), 32..255 hold host /24s (one per host — every host
  // is its own /24, the unit of ECS mapping). Anycast service addresses
  // live in 198.18.0.0/16.

  /// The /16 owned by AS node `as_index`.
  [[nodiscard]] net::Prefix block_of(std::size_t as_index) const;

  /// Allocates a new host in `as_index` at `pop_index` (-1 = random PoP).
  /// Each host receives a fresh /24 and a deterministic location near the
  /// PoP. Throws when the AS's host space (224 /24s) is exhausted.
  net::Ipv4Addr add_host(std::size_t as_index, HostKind kind, int pop_index = -1);

  /// Registers an anycast service address whose effective location, when
  /// measured from any source, is the instance with the lowest RTT — the
  /// routing-not-DNS selection the paper observes for CDNetworks.
  net::Ipv4Addr add_anycast(std::vector<net::Ipv4Addr> instances);

  [[nodiscard]] const Host& host(net::Ipv4Addr address) const;
  [[nodiscard]] bool is_host(net::Ipv4Addr address) const;
  [[nodiscard]] bool is_anycast(net::Ipv4Addr address) const;

  // ---- Identity lookups ---------------------------------------------------

  /// AS node index owning `ip` (host, router, or anycast instance owner);
  /// nullopt for addresses outside the plan.
  [[nodiscard]] std::optional<std::size_t> as_index_of(net::Ipv4Addr ip) const;

  /// ASN of `ip`; AS0 when unknown.
  [[nodiscard]] net::Asn asn_of(net::Ipv4Addr ip) const;

  /// Reverse-DNS name for hosts and routers; empty when unknown.
  [[nodiscard]] std::string rdns_of(net::Ipv4Addr ip) const;

  // ---- Dual-stack identity ------------------------------------------------
  // The world's address plan is v4; its v6 face is the sim embedding
  // (2001:db8::/32 with the v4 identity at bits 32..63). These overloads
  // resolve embedded and v4-mapped v6 addresses to their v4 identity; any
  // other v6 space is outside the plan (nullopt / AS0 / empty rdns).

  /// `ip`'s address in the sim's v6 embedding. Purely derived — no separate
  /// allocation, so every host is dual-homed for free.
  [[nodiscard]] static net::Ipv6Addr v6_of(net::Ipv4Addr ip) {
    return net::embed_v4(ip);
  }

  /// The v4 identity behind a dual-stack address: v4 as-is, embedded or
  /// v4-mapped v6 unwrapped, anything else nullopt.
  [[nodiscard]] static std::optional<net::Ipv4Addr> plan_v4_of(const net::IpAddr& ip);

  [[nodiscard]] std::optional<std::size_t> as_index_of(const net::IpAddr& ip) const;
  [[nodiscard]] net::Asn asn_of(const net::IpAddr& ip) const;
  [[nodiscard]] std::string rdns_of(const net::IpAddr& ip) const;

  /// Geographic location: hosts use their own spot, routers their PoP.
  /// For an anycast address this is the location of instance 0 (callers
  /// measuring latency get per-source nearest-instance behaviour instead).
  [[nodiscard]] std::optional<GeoPoint> location_of(net::Ipv4Addr ip) const;

  /// Representative location for an arbitrary /24 (used by the CDN mapping
  /// service to "geo-locate" an ECS subnet): router /24s map to their PoP,
  /// host /24s to the host. nullopt for unknown space.
  [[nodiscard]] std::optional<GeoPoint> subnet_location(const net::Prefix& subnet) const;

  /// Classifies a /24 as host space, router space, or unknown. CDNs use
  /// this to prioritize eyeball (host) space in their measurement coverage.
  [[nodiscard]] SubnetKind subnet_kind(const net::Prefix& subnet) const;

  // ---- Latency ------------------------------------------------------------

  /// Deterministic base one-way delay along the valley-free path (includes
  /// both endpoints' attachment latency). Endpoints may be hosts, anycast
  /// addresses, or router addresses (routers are measurable endpoints too —
  /// CDNs ping infrastructure when mapping subnets). Cached. Throws
  /// net::Error for unknown addresses or unreachable pairs.
  double one_way_base_ms(net::Ipv4Addr src, net::Ipv4Addr dst);

  /// 2x one-way.
  double rtt_base_ms(net::Ipv4Addr src, net::Ipv4Addr dst);

  /// One measured RTT sample: base with lognormal noise and rare spikes.
  double rtt_sample_ms(net::Ipv4Addr src, net::Ipv4Addr dst, net::Rng& rng);

  /// Traceroute from a client host toward a destination host: the router
  /// hops along the valley-free path, with the private-gateway first hop
  /// and occasional unresponsive hops per config. The destination itself is
  /// the final entry. Toward an anycast address, the trace follows the path
  /// to the nearest instance (as real anycast does).
  std::vector<TracerouteHop> traceroute(net::Ipv4Addr src, net::Ipv4Addr dst,
                                        net::Rng& rng);

  /// Total hosts allocated (observability).
  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }

 private:
  struct PathPoint {
    std::size_t as_index;
    int pop_index;
    double cumulative_one_way_ms;  ///< up to arrival at this PoP
  };

  /// Router address for (AS, PoP): two /24s per PoP (core at third octet
  /// 2*pop, edge at 2*pop+1), `slot` selecting the interface.
  [[nodiscard]] net::Ipv4Addr router_address(std::size_t as_index, int pop_index,
                                             int slot = 1, bool edge = false) const;

  /// Resolves anycast to the nearest instance for `src`; identity otherwise.
  net::Ipv4Addr resolve_anycast(net::Ipv4Addr src, net::Ipv4Addr dst);

  /// Resolves an address to a measurable endpoint: a registered host, or a
  /// synthetic endpoint at a router's PoP. Throws for unknown addresses.
  [[nodiscard]] Host endpoint_of(net::Ipv4Addr ip) const;

  /// PoP-level waypoints and cumulative delays from src host to dst host.
  std::vector<PathPoint> pop_path(const Host& src, const Host& dst);

  AsGraph graph_;
  WorldConfig config_;
  BgpRouting routing_;
  net::Rng alloc_rng_;
  std::unordered_map<net::Ipv4Addr, Host> hosts_;
  std::unordered_map<net::Ipv4Addr, std::vector<net::Ipv4Addr>> anycast_;
  std::vector<int> next_host_slot_;  // per AS node: next third octet (from 32)
  std::uint32_t next_anycast_ = 0;

  /// The one-way delay memo, sharded to keep parallel campaign workers from
  /// serializing on one lock. Values are deterministic, so a racing miss
  /// recomputes the same number; only the map structure needs guarding.
  struct CacheShard {
    mutable std::shared_mutex mutex;
    std::unordered_map<std::uint64_t, double> delays;
  };
  static constexpr std::size_t kCacheShards = 16;
  std::array<CacheShard, kCacheShards> one_way_cache_;
};

}  // namespace drongo::topology
