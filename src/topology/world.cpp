#include "topology/world.hpp"

#include <algorithm>
#include <limits>
#include <mutex>

#include "net/error.hpp"

namespace drongo::topology {

namespace {
/// First /16 block: 20.0.0.0. Avoids all reserved/private IPv4 space for
/// several thousand ASes.
constexpr std::uint32_t kBlockBase = (20u << 24);
constexpr int kRouterSlots = 32;   ///< third octets 0..31 reserved for routers
constexpr std::uint32_t kAnycastBase = (198u << 24) | (18u << 16);  // 198.18.0.0/16
}  // namespace

World::World(AsGraph graph, WorldConfig config)
    : graph_(std::move(graph)),
      config_(config),
      routing_(&graph_),
      alloc_rng_(config.seed),
      next_host_slot_(graph_.node_count(), kRouterSlots) {}

net::Prefix World::block_of(std::size_t as_index) const {
  if (as_index >= graph_.node_count()) {
    throw net::InvalidArgument("AS index out of range");
  }
  return net::Prefix(
      net::Ipv4Addr(kBlockBase + (static_cast<std::uint32_t>(as_index) << 16)), 16);
}

net::Ipv4Addr World::add_host(std::size_t as_index, HostKind kind, int pop_index) {
  const AsNode& node = graph_.node(as_index);
  if (pop_index < 0) {
    pop_index = static_cast<int>(alloc_rng_.index(node.pops.size()));
  }
  if (pop_index >= static_cast<int>(node.pops.size())) {
    throw net::InvalidArgument("PoP index out of range for " + node.asn.to_string());
  }
  int& slot = next_host_slot_[as_index];
  if (slot > 255) {
    throw net::Error("host space exhausted in " + node.asn.to_string());
  }
  Host host;
  host.address = net::Ipv4Addr(block_of(as_index).network().to_uint() |
                               (static_cast<std::uint32_t>(slot) << 8) | 10u);
  ++slot;
  host.as_index = as_index;
  host.pop_index = pop_index;
  const GeoPoint& pop = node.pops[static_cast<std::size_t>(pop_index)].location;
  // Clients sit within metro range of their PoP (tens of km); servers are
  // in the PoP's datacenter, so co-located servers are latency-identical.
  const double jitter = kind == HostKind::kClient ? 0.3 : 0.005;
  host.location = {pop.lat_deg + alloc_rng_.uniform_real(-jitter, jitter),
                   pop.lon_deg + alloc_rng_.uniform_real(-jitter, jitter)};
  host.kind = kind;
  host.access_ms = kind == HostKind::kClient
                       ? alloc_rng_.uniform_real(config_.client_access_ms_min,
                                                 config_.client_access_ms_max)
                       : alloc_rng_.uniform_real(config_.server_access_ms_min,
                                                 config_.server_access_ms_max);
  hosts_[host.address] = host;
  return host.address;
}

net::Ipv4Addr World::add_anycast(std::vector<net::Ipv4Addr> instances) {
  if (instances.empty()) throw net::InvalidArgument("anycast group needs instances");
  for (auto instance : instances) {
    if (!hosts_.contains(instance)) {
      throw net::InvalidArgument("anycast instance " + instance.to_string() +
                                 " is not a host");
    }
  }
  if (next_anycast_ > 0xFFFF) throw net::Error("anycast space exhausted");
  const net::Ipv4Addr address(kAnycastBase + next_anycast_++);
  anycast_[address] = std::move(instances);
  return address;
}

const Host& World::host(net::Ipv4Addr address) const {
  auto it = hosts_.find(address);
  if (it == hosts_.end()) {
    throw net::InvalidArgument("no host at " + address.to_string());
  }
  return it->second;
}

bool World::is_host(net::Ipv4Addr address) const { return hosts_.contains(address); }
bool World::is_anycast(net::Ipv4Addr address) const { return anycast_.contains(address); }

std::optional<std::size_t> World::as_index_of(net::Ipv4Addr ip) const {
  const std::uint32_t bits = ip.to_uint();
  if (bits < kBlockBase) return std::nullopt;
  const std::uint32_t index = (bits - kBlockBase) >> 16;
  if (index >= graph_.node_count()) return std::nullopt;
  return static_cast<std::size_t>(index);
}

net::Asn World::asn_of(net::Ipv4Addr ip) const {
  auto index = as_index_of(ip);
  return index ? graph_.node(*index).asn : net::Asn(0);
}

std::optional<net::Ipv4Addr> World::plan_v4_of(const net::IpAddr& ip) {
  if (ip.is_v4()) return ip.v4();
  const net::Ipv6Addr v6 = ip.v6();
  if (v6.is_v4_mapped()) return v6.mapped_v4();
  return net::extract_embedded_v4(v6);
}

std::optional<std::size_t> World::as_index_of(const net::IpAddr& ip) const {
  const auto v4 = plan_v4_of(ip);
  return v4 ? as_index_of(*v4) : std::nullopt;
}

net::Asn World::asn_of(const net::IpAddr& ip) const {
  const auto v4 = plan_v4_of(ip);
  return v4 ? asn_of(*v4) : net::Asn(0);
}

std::string World::rdns_of(const net::IpAddr& ip) const {
  const auto v4 = plan_v4_of(ip);
  return v4 ? rdns_of(*v4) : std::string();
}

std::string World::rdns_of(net::Ipv4Addr ip) const {
  if (auto it = hosts_.find(ip); it != hosts_.end()) {
    const Host& h = it->second;
    return "host" + std::to_string(ip.octet(2)) + "." +
           graph_.node(h.as_index).domain;
  }
  auto index = as_index_of(ip);
  if (!index) return "";
  const int third = ip.octet(2);
  const int slot = ip.octet(3);
  const AsNode& node = graph_.node(*index);
  // Router space: two /24s per PoP (core and edge router interfaces).
  const int pop = third / 2;
  if (third < kRouterSlots && pop < static_cast<int>(node.pops.size())) {
    const auto& metro =
        world_metros()[static_cast<std::size_t>(node.pops[static_cast<std::size_t>(pop)].metro_index)];
    const char* role = (third % 2 == 0) ? "core" : "edge";
    return role + std::to_string(slot) + "." + metro.name + "." + node.domain;
  }
  return "";
}

std::optional<GeoPoint> World::location_of(net::Ipv4Addr ip) const {
  if (auto it = hosts_.find(ip); it != hosts_.end()) return it->second.location;
  if (auto it = anycast_.find(ip); it != anycast_.end()) {
    return location_of(it->second.front());
  }
  auto index = as_index_of(ip);
  if (!index) return std::nullopt;
  const AsNode& node = graph_.node(*index);
  const int third = ip.octet(2);
  const int pop = third / 2;
  if (third < kRouterSlots && pop < static_cast<int>(node.pops.size())) {
    return node.pops[static_cast<std::size_t>(pop)].location;
  }
  return node.pops[0].location;
}

std::optional<GeoPoint> World::subnet_location(const net::Prefix& subnet) const {
  // A /24's representative is any address within it; router and host /24s
  // are homogeneous by construction.
  return location_of(net::Ipv4Addr(subnet.network().to_uint() | 10u));
}

SubnetKind World::subnet_kind(const net::Prefix& subnet) const {
  const auto index = as_index_of(subnet.network());
  if (!index) return SubnetKind::kUnknown;
  const int third = subnet.network().octet(2);
  if (third >= kRouterSlots) return SubnetKind::kHost;
  const AsNode& node = graph_.node(*index);
  return third / 2 < static_cast<int>(node.pops.size()) ? SubnetKind::kRouter
                                                        : SubnetKind::kUnknown;
}

net::Ipv4Addr World::router_address(std::size_t as_index, int pop_index, int slot,
                                    bool edge) const {
  const std::uint32_t third = static_cast<std::uint32_t>(pop_index) * 2 + (edge ? 1 : 0);
  return net::Ipv4Addr(block_of(as_index).network().to_uint() | (third << 8) |
                       static_cast<std::uint32_t>(slot));
}

namespace {
std::uint64_t stateless_mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}
}  // namespace

net::Ipv4Addr World::resolve_anycast(net::Ipv4Addr src, net::Ipv4Addr dst) {
  auto it = anycast_.find(dst);
  if (it == anycast_.end()) return dst;
  // Rank instances by base latency from the source.
  std::vector<std::pair<double, net::Ipv4Addr>> ranked;
  ranked.reserve(it->second.size());
  for (auto instance : it->second) {
    ranked.emplace_back(one_way_base_ms(src, instance), instance);
  }
  std::sort(ranked.begin(), ranked.end());
  // BGP anycast is not latency-optimal: a deterministic per-(source /24,
  // VIP) quirk sometimes routes to a runner-up front. Deterministic, so a
  // client's view of one VIP is stable across trials.
  const std::uint64_t h =
      stateless_mix((std::uint64_t{src.to_uint() >> 8} << 32) ^ dst.to_uint() ^
                    (config_.seed * 0x9E3779B97F4A7C15ULL));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  std::size_t pick = 0;
  if (u < config_.anycast_detour_prob && ranked.size() > 1) {
    // Geometric depth: mostly the second-nearest, occasionally deeper.
    pick = 1;
    std::uint64_t g = stateless_mix(h);
    while ((g & 3) == 0 && pick + 1 < ranked.size()) {  // 25% to go deeper
      ++pick;
      g = stateless_mix(g);
    }
  }
  return ranked[pick].second;
}

std::vector<World::PathPoint> World::pop_path(const Host& src, const Host& dst) {
  std::vector<PathPoint> points;
  double total = src.access_ms;
  std::size_t current_as = src.as_index;
  int current_pop = src.pop_index;
  GeoPoint current_loc =
      graph_.node(current_as).pops[static_cast<std::size_t>(current_pop)].location;
  points.push_back({current_as, current_pop, total});

  if (src.as_index != dst.as_index) {
    const auto as_path = routing_.as_path(src.as_index, dst.as_index);
    if (as_path.empty()) {
      throw net::Error("no route from " + graph_.node(src.as_index).asn.to_string() +
                       " to " + graph_.node(dst.as_index).asn.to_string());
    }
    for (std::size_t k = 0; k + 1 < as_path.size(); ++k) {
      const std::size_t next_as = as_path[k + 1];
      // Hot-potato link selection among the parallel interconnects of this
      // AS pair: hand the traffic off at the cheapest point from here.
      const auto candidates = graph_.links_between(current_as, next_as);
      if (candidates.empty()) {
        throw net::Error("routing step without a connecting link");
      }
      std::size_t best_link = candidates.front();
      double best_cost = std::numeric_limits<double>::infinity();
      for (std::size_t l : candidates) {
        const AsLink& link = graph_.link(l);
        const bool forward = link.a == current_as;
        const int exit_pop = forward ? link.pop_a : link.pop_b;
        const GeoPoint& exit_loc =
            graph_.node(current_as).pops[static_cast<std::size_t>(exit_pop)].location;
        const double cost = propagation_ms(current_loc, exit_loc) + link.latency_ms;
        if (cost < best_cost) {
          best_cost = cost;
          best_link = l;
        }
      }
      const AsLink& link = graph_.link(best_link);
      const bool forward = link.a == current_as;
      const int exit_pop = forward ? link.pop_a : link.pop_b;
      const int entry_pop = forward ? link.pop_b : link.pop_a;
      // Intra-AS carriage from the current PoP to the egress PoP.
      const GeoPoint exit_loc =
          graph_.node(current_as).pops[static_cast<std::size_t>(exit_pop)].location;
      total += propagation_ms(current_loc, exit_loc) + config_.intra_as_hop_ms;
      if (exit_pop != current_pop) {
        points.push_back({current_as, exit_pop, total});
      }
      // Cross the inter-AS link.
      total += link.latency_ms;
      current_as = next_as;
      current_pop = entry_pop;
      current_loc =
          graph_.node(current_as).pops[static_cast<std::size_t>(current_pop)].location;
      points.push_back({current_as, current_pop, total});
    }
  }

  // Final intra-AS leg to the destination host.
  total += propagation_ms(current_loc, dst.location) + config_.intra_as_hop_ms +
           dst.access_ms;
  points.push_back({dst.as_index, current_pop, total});
  return points;
}

Host World::endpoint_of(net::Ipv4Addr ip) const {
  if (auto it = hosts_.find(ip); it != hosts_.end()) return it->second;
  const auto index = as_index_of(ip);
  if (index && subnet_kind(net::Prefix(ip, 24)) == SubnetKind::kRouter) {
    // Synthesize an endpoint at the router's PoP: routers answer pings.
    Host h;
    h.address = ip;
    h.as_index = *index;
    h.pop_index = ip.octet(2) / 2;
    h.location =
        graph_.node(*index).pops[static_cast<std::size_t>(h.pop_index)].location;
    h.access_ms = 0.2;
    h.kind = HostKind::kServer;
    return h;
  }
  throw net::InvalidArgument("no measurable endpoint at " + ip.to_string());
}

double World::one_way_base_ms(net::Ipv4Addr src, net::Ipv4Addr dst) {
  const net::Ipv4Addr real_dst = resolve_anycast(src, dst);
  const std::uint64_t key =
      (std::uint64_t{src.to_uint()} << 32) | real_dst.to_uint();
  CacheShard& shard = one_way_cache_[stateless_mix(key) % kCacheShards];
  {
    std::shared_lock lock(shard.mutex);
    if (auto it = shard.delays.find(key); it != shard.delays.end()) {
      return it->second;
    }
  }
  // Compute outside the lock; the path is deterministic, so concurrent
  // misses on the same pair agree on the value.
  const auto points = pop_path(endpoint_of(src), endpoint_of(real_dst));
  const double ms = points.back().cumulative_one_way_ms;
  std::unique_lock lock(shard.mutex);
  shard.delays.try_emplace(key, ms);
  return ms;
}

double World::rtt_base_ms(net::Ipv4Addr src, net::Ipv4Addr dst) {
  return 2.0 * one_way_base_ms(src, dst);
}

double World::rtt_sample_ms(net::Ipv4Addr src, net::Ipv4Addr dst, net::Rng& rng) {
  double rtt = rtt_base_ms(src, dst) * rng.lognormal(0.0, config_.rtt_noise_sigma);
  if (rng.chance(config_.spike_prob)) {
    rtt += rng.exponential(1.0 / config_.spike_mean_ms);
  }
  return rtt;
}

std::vector<TracerouteHop> World::traceroute(net::Ipv4Addr src, net::Ipv4Addr dst,
                                             net::Rng& rng) {
  const net::Ipv4Addr real_dst = resolve_anycast(src, dst);
  const Host& s = host(src);
  const Host& d = host(real_dst);
  std::vector<TracerouteHop> hops;

  if (config_.first_hop_private) {
    TracerouteHop gw;
    gw.ip = net::Ipv4Addr(192, 168, 0, 1);
    gw.rdns = "gateway.local";
    gw.asn = net::Asn(0);
    gw.is_private = true;
    gw.rtt_ms = 2.0 * rng.uniform_real(0.3, 2.0);
    hops.push_back(gw);
  }

  const auto points = pop_path(s, d);
  // Every PoP waypoint (except the synthetic final host point) renders as
  // two router hops — the PoP's edge and core routers, which live in
  // separate /24s, as real traceroutes show multiple interfaces per site.
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    const PathPoint& p = points[i];
    const int slot = 1 + static_cast<int>(i % 3);
    for (int stage = 0; stage < 2; ++stage) {
      TracerouteHop hop;
      hop.ip = router_address(p.as_index, p.pop_index, slot, /*edge=*/stage == 0);
      hop.rdns = rdns_of(hop.ip);
      hop.asn = graph_.node(p.as_index).asn;
      hop.rtt_ms = (2.0 * p.cumulative_one_way_ms + stage * 0.2) *
                   rng.lognormal(0.0, config_.rtt_noise_sigma);
      hop.responded = !rng.chance(config_.unresponsive_hop_prob);
      hops.push_back(hop);
    }
  }

  TracerouteHop last;
  last.ip = real_dst;
  last.rdns = rdns_of(real_dst);
  last.asn = graph_.node(d.as_index).asn;
  last.rtt_ms = 2.0 * points.back().cumulative_one_way_ms *
                rng.lognormal(0.0, config_.rtt_noise_sigma);
  hops.push_back(last);
  return hops;
}

}  // namespace drongo::topology
