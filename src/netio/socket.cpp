#include "netio/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <pthread.h>
#include <sched.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "net/error.hpp"

namespace drongo::netio {

namespace {

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

sockaddr_in6 any6(std::uint16_t port) {
  sockaddr_in6 addr{};
  addr.sin6_family = AF_INET6;
  addr.sin6_port = htons(port);
  addr.sin6_addr = in6addr_any;  // [::] — only a wildcard bind is dual-stack
  return addr;
}

[[noreturn]] void throw_errno(const char* what, int err) {
  throw net::Error(std::string(what) + ": " + std::strerror(err));
}

std::uint16_t bound_port_of(int fd) {
  sockaddr_storage addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const int saved = errno;
    ::close(fd);
    throw_errno("getsockname()", saved);
  }
  if (addr.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<const sockaddr_in6&>(addr).sin6_port);
  }
  return ntohs(reinterpret_cast<const sockaddr_in&>(addr).sin_port);
}

/// Creates the socket and (for dual-stack) clears IPV6_V6ONLY so v4
/// clients arrive v4-mapped. Throws (closing nothing) on socket(),
/// closes + throws on setsockopt failure.
int open_socket(int type, bool dual_stack) {
  const int fd = ::socket(dual_stack ? AF_INET6 : AF_INET, type | SOCK_NONBLOCK, 0);
  if (fd < 0) throw_errno("socket()", errno);
  if (dual_stack) {
    const int zero = 0;
    if (::setsockopt(fd, IPPROTO_IPV6, IPV6_V6ONLY, &zero, sizeof(zero)) != 0) {
      const int saved = errno;
      ::close(fd);
      throw_errno("setsockopt(IPV6_V6ONLY)", saved);
    }
  }
  return fd;
}

/// Binds `fd` to loopback v4 or [::] according to `dual_stack`.
void bind_serving_address(int fd, std::uint16_t port, bool dual_stack) {
  int rc = 0;
  if (dual_stack) {
    sockaddr_in6 addr = any6(port);
    rc = ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } else {
    sockaddr_in addr = loopback(port);
    rc = ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  }
  if (rc != 0) {
    const int saved = errno;
    ::close(fd);
    throw_errno("bind()", saved);
  }
}

}  // namespace

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    throw_errno("fcntl(O_NONBLOCK)", errno);
  }
}

int open_udp_reuseport(std::uint16_t port, std::uint16_t* bound_port, bool dual_stack) {
  const int fd = open_socket(SOCK_DGRAM, dual_stack);
  const int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
    const int saved = errno;
    ::close(fd);
    throw_errno("setsockopt(SO_REUSEPORT)", saved);
  }
  bind_serving_address(fd, port, dual_stack);
  if (bound_port != nullptr) *bound_port = bound_port_of(fd);
  return fd;
}

int open_tcp_listener(std::uint16_t port, std::uint16_t* bound_port, int backlog,
                      bool dual_stack) {
  const int fd = open_socket(SOCK_STREAM, dual_stack);
  const int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
    const int saved = errno;
    ::close(fd);
    throw_errno("setsockopt(SO_REUSEADDR)", saved);
  }
  bind_serving_address(fd, port, dual_stack);
  if (::listen(fd, backlog) != 0) {
    const int saved = errno;
    ::close(fd);
    throw_errno("listen()", saved);
  }
  if (bound_port != nullptr) *bound_port = bound_port_of(fd);
  return fd;
}

int accept_nonblocking(int listener_fd) {
  for (;;) {
    const int fd = ::accept4(listener_fd, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd >= 0) return fd;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    if (errno == ECONNABORTED || errno == EINTR) continue;
    throw_errno("accept4()", errno);
  }
}

bool pin_thread_to_cpu(unsigned cpu) {
  const long online = ::sysconf(_SC_NPROCESSORS_ONLN);
  if (online <= 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % static_cast<unsigned>(online), &set);
  return ::pthread_setaffinity_np(::pthread_self(), sizeof(set), &set) == 0;
}

UdpBatch::UdpBatch(std::size_t batch_size, std::size_t datagram_capacity)
    : batch_(batch_size),
      capacity_(datagram_capacity),
      recv_arena_(batch_size * datagram_capacity),
      recv_iov_(batch_size),
      recv_msgs_(batch_size),
      recv_addrs_(batch_size),
      send_arena_(batch_size * datagram_capacity),
      send_iov_(batch_size),
      send_msgs_(batch_size),
      send_addrs_(batch_size) {
  if (batch_ == 0 || capacity_ == 0) {
    throw net::InvalidArgument("UdpBatch needs batch_size >= 1 and capacity >= 1");
  }
  for (std::size_t i = 0; i < batch_; ++i) {
    recv_iov_[i].iov_base = recv_arena_.data() + i * capacity_;
    recv_msgs_[i].msg_hdr.msg_iov = &recv_iov_[i];
    recv_msgs_[i].msg_hdr.msg_iovlen = 1;
    recv_msgs_[i].msg_hdr.msg_name = &recv_addrs_[i];
    send_iov_[i].iov_base = send_arena_.data() + i * capacity_;
    send_msgs_[i].msg_hdr.msg_iov = &send_iov_[i];
    send_msgs_[i].msg_hdr.msg_iovlen = 1;
    send_msgs_[i].msg_hdr.msg_name = &send_addrs_[i];
    send_msgs_[i].msg_hdr.msg_namelen = sizeof(sockaddr_storage);
  }
}

std::size_t UdpBatch::receive(int fd, bool wait_for_one) {
  // The kernel rewrites iov_len/namelen per call, so re-arm every slot.
  for (std::size_t i = 0; i < batch_; ++i) {
    recv_iov_[i].iov_len = capacity_;
    recv_msgs_[i].msg_hdr.msg_namelen = sizeof(sockaddr_storage);
  }
  const int n = ::recvmmsg(fd, recv_msgs_.data(), static_cast<unsigned>(batch_),
                           wait_for_one ? MSG_WAITFORONE : MSG_DONTWAIT, nullptr);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return 0;
    throw net::Error(std::string("recvmmsg(): ") + std::strerror(errno));
  }
  return static_cast<std::size_t>(n);
}

std::span<const std::uint8_t> UdpBatch::payload(std::size_t i) const {
  return {recv_arena_.data() + i * capacity_, recv_msgs_[i].msg_len};
}

const sockaddr_storage& UdpBatch::source(std::size_t i) const { return recv_addrs_[i]; }

socklen_t UdpBatch::source_len(std::size_t i) const {
  return recv_msgs_[i].msg_hdr.msg_namelen;
}

void UdpBatch::stage(const sockaddr_storage& destination, socklen_t destination_len,
                     std::span<const std::uint8_t> data) {
  if (staged_ >= batch_) throw net::BoundsError("UdpBatch::stage: batch full");
  if (data.size() > capacity_) {
    throw net::BoundsError("UdpBatch::stage: datagram exceeds capacity");
  }
  send_addrs_[staged_] = destination;
  send_msgs_[staged_].msg_hdr.msg_namelen = destination_len;
  std::memcpy(send_arena_.data() + staged_ * capacity_, data.data(), data.size());
  send_iov_[staged_].iov_len = data.size();
  ++staged_;
}

void UdpBatch::stage(const sockaddr_in& destination, std::span<const std::uint8_t> data) {
  sockaddr_storage storage{};
  std::memcpy(&storage, &destination, sizeof(destination));
  stage(storage, sizeof(destination), data);
}

std::size_t UdpBatch::flush(int fd) {
  std::size_t sent = 0;
  while (sent < staged_) {
    const int n = ::sendmmsg(fd, send_msgs_.data() + sent,
                             static_cast<unsigned>(staged_ - sent), MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      staged_ = 0;
      throw net::Error(std::string("sendmmsg(): ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  staged_ = 0;
  return sent;
}

}  // namespace drongo::netio
