// Nonblocking socket helpers and recvmmsg/sendmmsg batch buffers.
//
// Everything here is loopback-oriented plumbing for the serving front end:
// SO_REUSEPORT UDP sockets so several listener threads can share one port
// (the kernel hashes flows across them), a nonblocking TCP listener for
// truncation fallback, and `UdpBatch` — preallocated scatter/gather state
// that turns one syscall into up to `batch_size` datagrams in either
// direction. On a single core the batch is where the daemon's throughput
// comes from: syscall count per query drops by the batch fill factor, and
// no buffer is allocated (or zeroed) per datagram.
#pragma once

#include <netinet/in.h>
#include <sys/socket.h>

#include <cstdint>
#include <span>
#include <vector>

namespace drongo::netio {

/// Switches an fd to O_NONBLOCK. Throws net::Error on fcntl failure.
void set_nonblocking(int fd);

/// Opens a nonblocking UDP socket with SO_REUSEPORT set, so multiple
/// listeners can bind the same port and split inbound load kernel-side.
/// Default (`dual_stack` false): bound to 127.0.0.1:`port`, exactly the
/// historical v4 behaviour. With `dual_stack` true: an AF_INET6 socket
/// with IPV6_V6ONLY cleared bound to [::]:`port`, so v6 clients reach it
/// natively and v4 clients arrive as ::ffff:a.b.c.d — one fd, both
/// families. Port 0 picks an ephemeral port; the chosen port is written
/// to `bound_port`. Returns the fd (caller owns).
int open_udp_reuseport(std::uint16_t port, std::uint16_t* bound_port,
                       bool dual_stack = false);

/// Opens a nonblocking TCP listener (SO_REUSEADDR, `backlog`); same
/// address semantics as open_udp_reuseport (`dual_stack` false = loopback
/// v4, true = [::] with IPV6_V6ONLY cleared). Port 0 picks an ephemeral
/// port, written to `bound_port`.
int open_tcp_listener(std::uint16_t port, std::uint16_t* bound_port, int backlog = 128,
                      bool dual_stack = false);

/// Accepts one pending connection as a nonblocking fd, or returns -1 when
/// the accept queue is drained (EAGAIN). Transient kernel hiccups
/// (ECONNABORTED, EINTR) are retried internally; real failures throw.
int accept_nonblocking(int listener_fd);

/// Best-effort pin of the calling thread to `cpu` (mod the online count).
/// Returns false (without throwing) where affinity is unsupported.
bool pin_thread_to_cpu(unsigned cpu);

/// Preallocated state for batched UDP I/O via recvmmsg/sendmmsg.
///
/// One instance serves one direction at a time on one thread: `receive()`
/// fills up to `batch_size` inbound datagrams in a single syscall; then
/// replies are `stage()`d and `flush()`ed out in a single syscall. All
/// buffers are allocated once at construction and reused — the receive
/// path performs zero allocations per datagram.
class UdpBatch {
 public:
  /// `datagram_capacity` bounds each datagram; inbound bytes beyond it are
  /// truncated by the kernel, so keep it at or above the EDNS payload
  /// ceiling the daemon advertises.
  explicit UdpBatch(std::size_t batch_size, std::size_t datagram_capacity = 4096);

  [[nodiscard]] std::size_t batch_size() const { return batch_; }
  [[nodiscard]] std::size_t datagram_capacity() const { return capacity_; }

  /// One recvmmsg: returns the number of datagrams read (0 when the socket
  /// is drained). Throws net::Error on real socket failures.
  ///
  /// With `wait_for_one` on a *blocking* socket, the call parks until at
  /// least one datagram arrives (MSG_WAITFORONE) and then grabs whatever
  /// else is queued — the right shape for a load-generator client that
  /// must yield the core to the server between bursts. A receive timeout
  /// on the socket still bounds the wait (returns 0 on expiry).
  std::size_t receive(int fd, bool wait_for_one = false);

  /// Payload and source address of received datagram `i` (valid until the
  /// next receive()). Addresses are sockaddr_storage so one batch serves
  /// v4 and v6 sockets alike; `source_len` is the kernel-reported length
  /// (sizeof(sockaddr_in) or sizeof(sockaddr_in6)).
  [[nodiscard]] std::span<const std::uint8_t> payload(std::size_t i) const;
  [[nodiscard]] const sockaddr_storage& source(std::size_t i) const;
  [[nodiscard]] socklen_t source_len(std::size_t i) const;

  /// Queues one outbound datagram. Throws net::BoundsError if the batch is
  /// already full (callers flush() when staged() == batch_size()) or the
  /// payload exceeds the datagram capacity.
  void stage(const sockaddr_storage& destination, socklen_t destination_len,
             std::span<const std::uint8_t> data);
  /// v4 convenience overload (load generators that build sockaddr_in).
  void stage(const sockaddr_in& destination, std::span<const std::uint8_t> data);

  [[nodiscard]] std::size_t staged() const { return staged_; }

  /// Sends every staged datagram via sendmmsg, looping over partial sends.
  /// Returns the number actually sent; on EAGAIN the remainder is dropped
  /// (UDP semantics: under backpressure the client retries). Resets the
  /// staging area either way.
  std::size_t flush(int fd);

 private:
  std::size_t batch_;
  std::size_t capacity_;
  // Receive side: one contiguous arena, one iovec/mmsghdr/sockaddr per slot.
  std::vector<std::uint8_t> recv_arena_;
  std::vector<iovec> recv_iov_;
  std::vector<mmsghdr> recv_msgs_;
  std::vector<sockaddr_storage> recv_addrs_;
  // Send side mirrors it, plus per-slot staged lengths.
  std::vector<std::uint8_t> send_arena_;
  std::vector<iovec> send_iov_;
  std::vector<mmsghdr> send_msgs_;
  std::vector<sockaddr_storage> send_addrs_;
  std::size_t staged_ = 0;
};

}  // namespace drongo::netio
