#include "netio/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <climits>
#include <cstring>
#include <string>
#include <utility>

#include "net/clock.hpp"
#include "net/error.hpp"

namespace drongo::netio {

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    throw net::Error(std::string("epoll_create1(): ") + std::strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    const int saved = errno;
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    throw net::Error(std::string("eventfd(): ") + std::strerror(saved));
  }
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    const int saved = errno;
    ::close(wake_fd_);
    ::close(epoll_fd_);
    wake_fd_ = epoll_fd_ = -1;
    throw net::Error(std::string("epoll_ctl(ADD wakeup)): ") + std::strerror(saved));
  }
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::add_fd(int fd, std::uint32_t events, FdCallback callback) {
  if (!callback) throw net::InvalidArgument("EventLoop::add_fd: empty callback");
  epoll_event ev{};
  ev.events = events | EPOLLET;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw net::Error(std::string("epoll_ctl(ADD): ") + std::strerror(errno));
  }
  callbacks_[fd] = std::move(callback);
}

void EventLoop::modify_fd(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events | EPOLLET;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw net::Error(std::string("epoll_ctl(MOD): ") + std::strerror(errno));
  }
}

void EventLoop::remove_fd(int fd) {
  // The fd may already be closed by the caller; ENOENT/EBADF are then fine.
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

std::uint64_t EventLoop::add_timer(std::uint64_t delay_ms,
                                   std::function<void()> callback) {
  if (!callback) throw net::InvalidArgument("EventLoop::add_timer: empty callback");
  const std::uint64_t id = next_timer_id_++;
  timer_heap_.push(TimerEntry{net::steady_now_ms() + delay_ms, id});
  timer_callbacks_[id] = std::move(callback);
  return id;
}

void EventLoop::cancel_timer(std::uint64_t timer_id) {
  // The heap entry stays behind as a tombstone; dispatch skips ids with no
  // surviving callback.
  timer_callbacks_.erase(timer_id);
}

void EventLoop::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    pending_.push_back(std::move(task));
  }
  wakeup();
}

void EventLoop::wakeup() {
  const std::uint64_t one = 1;
  // EAGAIN means the counter is saturated — the loop is already signalled.
  (void)::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::stop() {
  post([this] { stop_requested_ = true; });
}

void EventLoop::run() {
  stop_requested_ = false;
  std::vector<epoll_event> events(64);
  while (true) {
    run_posted_tasks();
    if (stop_requested_) break;
    fire_due_timers(net::steady_now_ms());
    if (stop_requested_) break;
    const int timeout = next_timeout_ms(net::steady_now_ms());
    const int ready =
        ::epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()), timeout);
    if (registry_ != nullptr) registry_->add("netio.polls", 1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw net::Error(std::string("epoll_wait(): ") + std::strerror(errno));
    }
    for (int i = 0; i < ready; ++i) {
      const int fd = events[static_cast<std::size_t>(i)].data.fd;
      if (fd == wake_fd_) {
        drain_wakeup_fd();
        continue;
      }
      auto it = callbacks_.find(fd);
      if (it == callbacks_.end()) continue;  // removed by an earlier callback
      if (registry_ != nullptr) registry_->add("netio.events", 1);
      // Dispatch through a copy so a callback may remove_fd() itself.
      FdCallback callback = it->second;
      callback(events[static_cast<std::size_t>(i)].events);
    }
  }
}

void EventLoop::drain_wakeup_fd() {
  std::uint64_t value = 0;
  while (::read(wake_fd_, &value, sizeof(value)) > 0) {
    if (registry_ != nullptr) registry_->add("netio.wakeups", 1);
  }
}

void EventLoop::run_posted_tasks() {
  std::vector<std::function<void()>> local;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    local.swap(pending_);
  }
  for (auto& task : local) {
    if (registry_ != nullptr) registry_->add("netio.tasks", 1);
    task();
  }
}

void EventLoop::fire_due_timers(std::uint64_t now_ms) {
  while (!timer_heap_.empty()) {
    const TimerEntry top = timer_heap_.top();
    auto it = timer_callbacks_.find(top.id);
    if (it == timer_callbacks_.end()) {
      timer_heap_.pop();  // cancelled tombstone
      continue;
    }
    if (top.deadline_ms > now_ms) break;
    timer_heap_.pop();
    std::function<void()> callback = std::move(it->second);
    timer_callbacks_.erase(it);
    if (registry_ != nullptr) registry_->add("netio.timers", 1);
    callback();
  }
}

int EventLoop::next_timeout_ms(std::uint64_t now_ms) const {
  if (timer_heap_.empty()) return -1;
  const std::uint64_t deadline = timer_heap_.top().deadline_ms;
  if (deadline <= now_ms) return 0;
  const std::uint64_t delta = deadline - now_ms;
  return delta > static_cast<std::uint64_t>(INT_MAX) ? INT_MAX : static_cast<int>(delta);
}

}  // namespace drongo::netio
