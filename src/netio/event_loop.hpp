// Per-core epoll event loop: edge-triggered fds, deadline timers, wakeups.
//
// One EventLoop runs on one thread. Readiness callbacks are registered per
// fd with EPOLLET semantics — a callback must drain its fd to EAGAIN before
// returning, or it will not be called again. Deadline timers ride the
// epoll_wait timeout (no timerfd per timer), keyed off net::steady_now_ms()
// so the nondeterminism lint's clock ban stays intact. Cross-thread input
// arrives only through post()/wakeup()/stop(), which poke an eventfd; all
// other methods belong to the loop thread (or to setup before run()).
//
// The lock discipline the concurrency lint now enforces repo-wide is
// visible in the implementation: the pending-task mutex is held only to
// swap the queue, never across epoll_wait, recvmmsg/sendmmsg, accept, or a
// user callback.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"

namespace drongo::netio {

/// Readiness callback; receives the epoll event mask (EPOLLIN|EPOLLOUT|...).
using FdCallback = std::function<void(std::uint32_t)>;

class EventLoop {
 public:
  /// Creates the epoll instance and its wakeup eventfd. Throws net::Error
  /// if the kernel refuses either.
  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` edge-triggered for `events`. The fd is borrowed: the
  /// caller still owns and closes it (after remove_fd). Loop thread or
  /// pre-run only.
  void add_fd(int fd, std::uint32_t events, FdCallback callback);

  /// Re-arms `fd` with a new interest mask (e.g. adding EPOLLOUT while a
  /// write is short). Loop thread only.
  void modify_fd(int fd, std::uint32_t events);

  /// Deregisters `fd`. Safe to call from inside its own callback. Loop
  /// thread only.
  void remove_fd(int fd);

  /// Arms a one-shot timer `delay_ms` from now; returns an id for
  /// cancel_timer(). Timers fire on the loop thread between fd dispatches.
  /// Loop thread or pre-run only.
  std::uint64_t add_timer(std::uint64_t delay_ms, std::function<void()> callback);

  /// Cancels a pending timer; firing an unknown/expired id is a no-op.
  void cancel_timer(std::uint64_t timer_id);

  /// Enqueues `task` to run on the loop thread and wakes the loop.
  /// Thread-safe; the only sanctioned way to reach a running loop from
  /// another thread.
  void post(std::function<void()> task);

  /// Pokes the wakeup eventfd so a blocked epoll_wait returns. Thread-safe.
  void wakeup();

  /// Runs until stop(). Dispatch order within one iteration: posted tasks,
  /// due timers, then fd readiness callbacks.
  void run();

  /// Asks the loop to exit after the current iteration. Thread-safe.
  void stop();

  /// Mirrors loop activity into `netio.*` counters (may be null).
  void set_registry(obs::Registry* registry) { registry_ = registry; }

  /// Number of registered fds (loop thread only; for tests/drain logic).
  [[nodiscard]] std::size_t fd_count() const { return callbacks_.size(); }

 private:
  struct TimerEntry {
    std::uint64_t deadline_ms;
    std::uint64_t id;
    bool operator>(const TimerEntry& other) const {
      return deadline_ms != other.deadline_ms ? deadline_ms > other.deadline_ms
                                              : id > other.id;
    }
  };

  void drain_wakeup_fd();
  void run_posted_tasks();
  void fire_due_timers(std::uint64_t now_ms);
  [[nodiscard]] int next_timeout_ms(std::uint64_t now_ms) const;
  void count(const char* name, std::uint64_t delta);

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  bool stop_requested_ = false;  // loop thread reads; set via posted task
  std::unordered_map<int, FdCallback> callbacks_;

  std::uint64_t next_timer_id_ = 1;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>, std::greater<TimerEntry>>
      timer_heap_;
  std::unordered_map<std::uint64_t, std::function<void()>> timer_callbacks_;

  std::mutex pending_mutex_;  // guards pending_ only — never held across I/O
  std::vector<std::function<void()>> pending_;

  obs::Registry* registry_ = nullptr;
};

}  // namespace drongo::netio
