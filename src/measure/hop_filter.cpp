#include "measure/hop_filter.hpp"

#include "net/bogon.hpp"
#include "net/strings.hpp"

namespace drongo::measure {

namespace {

bool is_bogon_ip(const net::IpAddr& ip) {
  return ip.is_v4() ? net::is_bogon(ip.v4()) : net::is_bogon(ip.v6());
}

/// Condition (i)'s site prefix: /16 for v4 (the paper's rule), /32 for v6
/// (the conventional per-site allocation at the same operational grain).
int site_bits(net::IpFamily family) {
  return family == net::IpFamily::kV4 ? 16 : 32;
}

}  // namespace

std::vector<bool> usable_hops(const topology::World& world, const net::IpAddr& client,
                              const std::vector<IpHop>& hops,
                              const HopFilterConfig& config) {
  const net::IpPrefix client_site(client, site_bits(client.family()));
  const net::Asn client_asn = world.asn_of(client);
  const std::string client_domain = net::registrable_domain(world.rdns_of(client));

  std::vector<bool> usable(hops.size(), false);
  bool past_filter = false;
  for (std::size_t i = 0; i < hops.size(); ++i) {
    const auto& hop = hops[i];
    // Hard conditions that hold everywhere on the route: the hop must be a
    // responding, globally routable address, or ECS for it is meaningless.
    // Bogon space (either family) is the v6-capable spelling of the old
    // v4-only !is_global_unicast() rejection.
    if (!hop.responded || hop.is_private || is_bogon_ip(hop.ip)) {
      continue;
    }
    if (past_filter && config.stop_after_first_usable) {
      usable[i] = true;
      continue;
    }
    bool passes = true;
    // contains() is family-checked: a hop in the other family trivially
    // lives outside the client's site prefix.
    if (config.require_different_slash16 && client_site.contains(hop.ip)) {
      passes = false;
    }
    if (passes && config.require_different_asn && hop.asn == client_asn) {
      passes = false;
    }
    if (passes && config.require_different_domain) {
      const std::string hop_domain = net::registrable_domain(hop.rdns);
      if (!hop_domain.empty() && hop_domain == client_domain) passes = false;
    }
    if (passes) {
      usable[i] = true;
      past_filter = true;
    }
  }
  return usable;
}

std::vector<bool> usable_hops(const topology::World& world, net::Ipv4Addr client,
                              const std::vector<topology::TracerouteHop>& hops,
                              const HopFilterConfig& config) {
  std::vector<IpHop> views;
  views.reserve(hops.size());
  for (const auto& hop : hops) {
    views.push_back(IpHop{net::IpAddr(hop.ip), hop.rdns, hop.asn, hop.is_private,
                          hop.responded});
  }
  return usable_hops(world, net::IpAddr(client), views, config);
}

}  // namespace drongo::measure
