#include "measure/hop_filter.hpp"

#include "net/strings.hpp"

namespace drongo::measure {

std::vector<bool> usable_hops(const topology::World& world, net::Ipv4Addr client,
                              const std::vector<topology::TracerouteHop>& hops,
                              const HopFilterConfig& config) {
  const net::Prefix client_slash16(client, 16);
  const net::Asn client_asn = world.asn_of(client);
  const std::string client_domain = net::registrable_domain(world.rdns_of(client));

  std::vector<bool> usable(hops.size(), false);
  bool past_filter = false;
  for (std::size_t i = 0; i < hops.size(); ++i) {
    const auto& hop = hops[i];
    // Hard conditions that hold everywhere on the route: the hop must be a
    // responding, globally routable address, or ECS for it is meaningless.
    if (!hop.responded || hop.is_private || !hop.ip.is_global_unicast()) {
      continue;
    }
    if (past_filter && config.stop_after_first_usable) {
      usable[i] = true;
      continue;
    }
    bool passes = true;
    if (config.require_different_slash16 && client_slash16.contains(hop.ip)) {
      passes = false;
    }
    if (passes && config.require_different_asn && hop.asn == client_asn) {
      passes = false;
    }
    if (passes && config.require_different_domain) {
      const std::string hop_domain = net::registrable_domain(hop.rdns);
      if (!hop_domain.empty() && hop_domain == client_domain) passes = false;
    }
    if (passes) {
      usable[i] = true;
      past_filter = true;
    }
  }
  return usable;
}

}  // namespace drongo::measure
