#include "measure/probes.hpp"

#include <cmath>

#include "net/error.hpp"

namespace drongo::measure {

double ping_ms(topology::World& world, net::Ipv4Addr src, net::Ipv4Addr dst,
               net::Rng& rng, const PingConfig& config) {
  if (config.burst <= 0) throw net::InvalidArgument("ping burst must be positive");
  double sum = 0.0;
  for (int i = 0; i < config.burst; ++i) {
    sum += world.rtt_sample_ms(src, dst, rng);
  }
  return sum / config.burst;
}

double download_ms(topology::World& world, net::Ipv4Addr client, net::Ipv4Addr replica,
                   std::uint64_t object_bytes, bool repeat_request, net::Rng& rng,
                   const DownloadModel& model) {
  const double rtt = world.rtt_sample_ms(client, replica, rng);

  // TCP handshake, then slow-start delivery rounds: cwnd doubles each RTT
  // from the initial window until the object is fully delivered.
  const double window_bytes = model.initial_cwnd_segments * model.mss_bytes;
  const double rounds =
      std::ceil(std::log2(static_cast<double>(object_bytes) / window_bytes + 1.0));
  const double transfer_ms = static_cast<double>(object_bytes) * 8.0 /
                             (model.client_bandwidth_mbps * 1000.0);

  const bool cached = repeat_request || rng.chance(model.first_request_hit_prob);
  const double server_ms =
      cached ? rng.exponential(1.0 / model.server_cached_ms_mean)
             : rng.exponential(1.0 / model.server_first_ms_mean);

  return rtt /* handshake */ + std::max(0.0, rounds) * rtt + transfer_ms + server_ms;
}

}  // namespace drongo::measure
