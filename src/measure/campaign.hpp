// Parallel campaign execution: many (client, provider, trial) cells, one
// thread pool, byte-identical output to a serial run.
//
// Trials are embarrassingly parallel once their randomness is derived per
// task (see TrialRunner::run_task): the testbed's query paths are const or
// internally guarded, so workers only share read-mostly state. Each task
// writes its record into its own pre-assigned slot, which makes the merged
// output order a property of the task list — not of thread scheduling.
#pragma once

#include <vector>

#include "measure/schedule.hpp"
#include "measure/trial.hpp"

namespace drongo::measure {

/// Parallelism knobs.
struct CampaignOptions {
  /// Worker threads. 0 = hardware concurrency, 1 = serial in the calling
  /// thread (no pool), N = exactly N workers.
  int threads = 0;
};

/// Resolves a thread-count knob: 0 -> hardware concurrency (at least 1),
/// negative -> net::InvalidArgument, otherwise the value itself.
int resolve_thread_count(int requested);

/// Parses a DRONGO_THREADS-style value: nullptr/"" means 1 (serial —
/// campaign outputs are reproducibility artifacts first); otherwise a
/// base-10 integer >= 0 where 0 selects hardware concurrency. Trailing
/// junk, negatives, and non-numeric input throw net::InvalidArgument
/// loudly — a typo in a batch-job environment must not silently run
/// serial.
int parse_thread_count(const char* value);

/// The campaign worker-thread environment knob: DRONGO_THREADS through
/// parse_thread_count.
int thread_count_from_env();

/// Executes campaign task lists across a thread pool.
///
/// Work is sharded by client: a worker claims an entire client's tasks at
/// once, so the per-trial state a client touches (its stub resolutions, its
/// RTT cache keys) stays mostly core-local. Records land in the slot of
/// their task's position; the returned vector is therefore field-for-field
/// identical for any thread count, including 1.
class ParallelCampaignRunner {
 public:
  /// `runner` is borrowed and must outlive this object. Its testbed must be
  /// fully built (setup is single-threaded; see Testbed docs).
  ParallelCampaignRunner(const TrialRunner* runner, CampaignOptions options = {});

  /// Runs every task, in `tasks` order in the output. Tasks are grouped by
  /// client for sharding; the grouping does not affect results. Exceptions
  /// thrown by any trial are rethrown in the calling thread.
  [[nodiscard]] std::vector<TrialRecord> run(const std::vector<CampaignTask>& tasks) const;

  /// Parallel equivalent of TrialRunner::run_campaign — same records, same
  /// order.
  [[nodiscard]] std::vector<TrialRecord> run_campaign(int trials_per_client,
                                                      double spacing_hours) const;

  /// Parallel equivalent of TrialRunner::run_campaign_sporadic.
  [[nodiscard]] std::vector<TrialRecord> run_campaign_sporadic(
      int trials_per_client, const SporadicScheduleConfig& schedule = {}) const;

  /// The resolved worker count this runner uses.
  [[nodiscard]] int threads() const { return threads_; }

 private:
  const TrialRunner* runner_;
  int threads_;
};

}  // namespace drongo::measure
