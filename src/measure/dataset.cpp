#include "measure/dataset.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>

#include "net/error.hpp"
#include "net/strings.hpp"

namespace drongo::measure {

namespace {

// v2 added per-trial outcome/failure fields and the health line; v1 files
// (all trials implicitly ok, no health) still load. v3 added `race|` lines
// (GWTW standings) and is emitted only when a record carries race data, so
// racing-free campaigns keep producing v2 files older tooling reads.
constexpr const char* kMagicV1 = "drongo-dataset-v1";
constexpr const char* kMagicV2 = "drongo-dataset-v2";
constexpr const char* kMagicV3 = "drongo-dataset-v3";

/// Counter count of a v2 `health|` line, derived from the same schema that
/// declares HealthCounters — growing the schema keeps writer, parser, and
/// this check in lockstep (and is the cue to bump the magic).
constexpr std::size_t kHealthFieldCount = [] {
  std::size_t n = 0;
#define DRONGO_OBS_COUNT_FIELD(field) ++n;
  DRONGO_OBS_HEALTH_COUNTERS(DRONGO_OBS_COUNT_FIELD)
#undef DRONGO_OBS_COUNT_FIELD
  return n;
}();

/// '|' is the field separator, so it must not appear inside a free-text
/// failure message (they never do today; this guards future messages).
std::string sanitize_field(std::string s) {
  for (char& c : s) {
    if (c == '|' || c == '\n') c = '/';
  }
  return s;
}

double parse_double(const std::string& s) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(s, &used);
  } catch (const std::exception&) {
    used = std::string::npos;  // flag failure; report through the taxonomy below
  }
  if (used != s.size()) throw net::ParseError("bad number '" + s + "' in dataset");
  return v;
}

std::uint64_t parse_u64(const std::string& s) {
  std::uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw net::ParseError("bad integer '" + s + "' in dataset");
  }
  return v;
}

}  // namespace

void save_dataset(std::ostream& out, const std::vector<TrialRecord>& records) {
  // Full round-trip precision for the measurement values.
  out.precision(17);
  const bool any_race =
      std::any_of(records.begin(), records.end(),
                  [](const TrialRecord& r) { return !r.race.empty(); });
  out << (any_race ? kMagicV3 : kMagicV2) << "\n";
  for (const auto& r : records) {
    out << "trial|" << r.provider << "|" << r.domain << "|" << r.client_index << "|"
        << r.client.to_string() << "|" << r.time_hours << "|" << to_string(r.outcome)
        << "|" << sanitize_field(r.failure) << "\n";
    // Field order is the obs schema order — the same list that declares the
    // struct. Byte-compatible with the hand-written v2 writer it replaced.
    const HealthCounters& h = r.health;
    out << "health";
#define DRONGO_OBS_WRITE_FIELD(field) out << "|" << h.field;
    DRONGO_OBS_HEALTH_COUNTERS(DRONGO_OBS_WRITE_FIELD)
#undef DRONGO_OBS_WRITE_FIELD
    out << "\n";
    for (const auto& m : r.cr) {
      out << "cr|" << m.replica.to_string() << "|" << m.rtt_ms << "|"
          << m.download_first_ms << "|" << m.download_cached_ms << "\n";
    }
    for (const auto& m : r.race) {
      out << "race|" << m.replica.to_string() << "|" << m.rtt_ms << "|"
          << m.download_first_ms << "|" << m.download_cached_ms << "\n";
    }
    for (const auto& hop : r.hops) {
      out << "hop|" << hop.ip.to_string() << "|" << hop.subnet.to_string() << "|"
          << hop.rdns << "|" << hop.asn.value() << "|" << (hop.usable ? 1 : 0) << "\n";
      for (const auto& m : hop.hr) {
        out << "hr|" << m.replica.to_string() << "|" << m.rtt_ms << "|"
            << m.download_first_ms << "|" << m.download_cached_ms << "\n";
      }
    }
  }
}

void save_dataset_file(const std::string& path, const std::vector<TrialRecord>& records) {
  std::ofstream out(path);
  if (!out) throw net::Error("cannot open '" + path + "' for writing");
  save_dataset(out, records);
}

std::vector<TrialRecord> load_dataset(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) ||
      (line != kMagicV1 && line != kMagicV2 && line != kMagicV3)) {
    throw net::ParseError("dataset missing magic header");
  }
  std::vector<TrialRecord> records;
  HopRecord* current_hop = nullptr;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto fields = net::split(line, '|');
    const std::string& kind = fields[0];
    if (kind == "trial") {
      // 6 fields = v1 (implicitly ok), 8 = v2 with outcome + failure.
      if (fields.size() != 6 && fields.size() != 8) {
        throw net::ParseError("bad trial line: " + line);
      }
      TrialRecord r;
      r.provider = fields[1];
      r.domain = fields[2];
      r.client_index = parse_u64(fields[3]);
      r.client = net::Ipv4Addr::must_parse(fields[4]);
      r.time_hours = parse_double(fields[5]);
      if (fields.size() == 8) {
        r.outcome = trial_outcome_from_string(fields[6]);
        r.failure = fields[7];
      }
      records.push_back(std::move(r));
      current_hop = nullptr;
    } else if (kind == "health") {
      if (fields.size() != kHealthFieldCount + 1 || records.empty()) {
        throw net::ParseError("bad health line: " + line);
      }
      HealthCounters& h = records.back().health;
      std::size_t next_field = 1;
#define DRONGO_OBS_READ_FIELD(field) h.field = parse_u64(fields[next_field++]);
      DRONGO_OBS_HEALTH_COUNTERS(DRONGO_OBS_READ_FIELD)
#undef DRONGO_OBS_READ_FIELD
    } else if (kind == "cr") {
      if (fields.size() != 5 || records.empty()) {
        throw net::ParseError("bad cr line: " + line);
      }
      records.back().cr.push_back({net::Ipv4Addr::must_parse(fields[1]),
                                   parse_double(fields[2]), parse_double(fields[3]),
                                   parse_double(fields[4])});
    } else if (kind == "race") {
      if (fields.size() != 5 || records.empty()) {
        throw net::ParseError("bad race line: " + line);
      }
      records.back().race.push_back({net::Ipv4Addr::must_parse(fields[1]),
                                     parse_double(fields[2]), parse_double(fields[3]),
                                     parse_double(fields[4])});
    } else if (kind == "hop") {
      if (fields.size() != 6 || records.empty()) {
        throw net::ParseError("bad hop line: " + line);
      }
      HopRecord h;
      h.ip = net::Ipv4Addr::must_parse(fields[1]);
      h.subnet = net::Prefix::must_parse(fields[2]);
      h.rdns = fields[3];
      h.asn = net::Asn(static_cast<std::uint32_t>(parse_u64(fields[4])));
      h.usable = fields[5] == "1";
      records.back().hops.push_back(std::move(h));
      current_hop = &records.back().hops.back();
    } else if (kind == "hr") {
      if (fields.size() != 5 || current_hop == nullptr) {
        throw net::ParseError("bad hr line: " + line);
      }
      current_hop->hr.push_back({net::Ipv4Addr::must_parse(fields[1]),
                                 parse_double(fields[2]), parse_double(fields[3]),
                                 parse_double(fields[4])});
    } else {
      throw net::ParseError("unknown dataset line kind: " + kind);
    }
  }
  return records;
}

std::vector<TrialRecord> load_dataset_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw net::Error("cannot open '" + path + "' for reading");
  return load_dataset(in);
}

}  // namespace drongo::measure
