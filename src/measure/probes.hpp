// Active measurement primitives: ping bursts and model-based downloads.
#pragma once

#include "net/rng.hpp"
#include "topology/world.hpp"

namespace drongo::measure {

/// Ping measurement configuration. The paper computes every latency as the
/// average of three back-to-back pings (§2.4).
struct PingConfig {
  int burst = 3;
};

/// Average RTT of a burst of pings from `src` to `dst`, milliseconds.
double ping_ms(topology::World& world, net::Ipv4Addr src, net::Ipv4Addr dst,
               net::Rng& rng, const PingConfig& config = {});

/// TCP-flavoured download-time model, used for Figures 4b/4c. Captures what
/// the experiment needs: total time is monotone in RTT (handshake plus
/// slow-start rounds), plus a transfer term and a server term that shrinks
/// dramatically when the object is already cached at the replica.
struct DownloadModel {
  double client_bandwidth_mbps = 25.0;
  int initial_cwnd_segments = 10;
  double mss_bytes = 1460.0;
  /// Server time on a cache miss (origin fetch) vs a primed cache.
  double server_first_ms_mean = 35.0;
  double server_cached_ms_mean = 2.0;
  /// Probability the first request already finds the object cached at the
  /// edge (popular objects).
  double first_request_hit_prob = 0.35;
};

/// Total time to fetch `object_bytes` from `replica`, milliseconds.
/// `repeat_request` models the paper's back-to-back second download
/// (Fig. 4c): the edge cache is then primed.
double download_ms(topology::World& world, net::Ipv4Addr client, net::Ipv4Addr replica,
                   std::uint64_t object_bytes, bool repeat_request, net::Rng& rng,
                   const DownloadModel& model = {});

}  // namespace drongo::measure
