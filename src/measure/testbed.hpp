// Testbed: one self-contained simulated Internet with CDNs, DNS, clients.
//
// This is the experiment stage: it wires together the AS graph, the world,
// the six CDN deployments, their authoritative servers, a public ECS
// resolver, and a population of clients, all behind the in-memory DNS
// fabric. PlanetLab-style (95 clients) and RIPE-style (429 clients) setups
// differ only in TestbedConfig.
#pragma once

#include <memory>
#include <vector>

#include "cdn/authoritative.hpp"
#include "cdn/deploy.hpp"
#include "cdn/resolver.hpp"
#include "cdn/reverse_dns.hpp"
#include "cdn/sites.hpp"
#include "dns/faults.hpp"
#include "dns/hedge.hpp"
#include "dns/inmemory.hpp"
#include "dns/stub_resolver.hpp"
#include "measure/probes.hpp"
#include "topology/as_gen.hpp"
#include "topology/world.hpp"

namespace drongo::measure {

struct TestbedConfig {
  topology::AsGenConfig as_config;
  topology::WorldConfig world_config;
  /// Providers to deploy; defaults to the paper's six.
  std::vector<cdn::CdnProfile> profiles;
  int client_count = 95;
  /// CDN-fronted web sites (CNAME into the CDNs); 0 disables the layer.
  int site_count = 12;
  std::uint64_t seed = 42;
  /// Fault injection on the DNS paths (client<->resolver and
  /// resolver<->authoritative). Defaults to no faults — the pristine
  /// network every existing experiment assumes.
  dns::FaultProfile fault_profile;
  /// Seed for fault draws, independent of the topology seed so the same
  /// world can be measured under different fault realizations.
  std::uint64_t fault_seed = 0xFA17;
  /// Retry/backoff policy handed to every stub this testbed creates.
  dns::ResolverConfig resolver_config;
  /// Serving-path knobs for the public resolver (sharded scoped cache,
  /// singleflight coalescing). Defaults to cache off — the pass-through
  /// resolver every pre-serving experiment assumes, which also keeps
  /// campaign telemetry independent of thread interleaving.
  cdn::ServingConfig serving;
  /// Hedged exchanges on the resolver's upstream path: when enabled, the
  /// resolver's transport toward authoritatives is wrapped in a
  /// dns::HedgedTransport (second exchange past the hedge threshold, first
  /// answer wins). Defaults off — the un-hedged upstream every existing
  /// experiment assumes.
  dns::HedgeConfig hedge;
  /// Wire family every stub announces ECS in (family 1 = the historical
  /// v4-only behaviour; family 2 announces the same subnets through the
  /// sim's v4-in-v6 embedding at ecs_policy.v6_source_length bits). Handed
  /// to every stub this testbed creates.
  dns::EcsFamilyPolicy ecs_policy;

  /// PlanetLab-scale setup (95 nodes, §3.1).
  static TestbedConfig planetlab();
  /// RIPE-Atlas-scale setup (429 probes, §5) — more stubs, more clients.
  static TestbedConfig ripe_atlas();
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config);

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  [[nodiscard]] topology::World& world() { return world_; }
  [[nodiscard]] dns::InMemoryDnsNetwork& dns_network() { return network_; }
  [[nodiscard]] const TestbedConfig& config() const { return config_; }

  [[nodiscard]] std::size_t provider_count() const { return providers_.size(); }
  [[nodiscard]] cdn::CdnProvider& provider(std::size_t index) {
    return *providers_.at(index);
  }
  [[nodiscard]] const cdn::CdnProfile& profile(std::size_t index) const {
    return providers_.at(index)->profile();
  }

  /// Content hostnames served by provider `index`.
  [[nodiscard]] std::vector<dns::DnsName> content_names(std::size_t index) const;

  /// CDN-fronted sites (resolve their `host` through the resolver and the
  /// CNAME chase lands on CDN replicas).
  [[nodiscard]] const std::vector<cdn::Site>& sites() const { return site_auth_->sites(); }

  [[nodiscard]] const std::vector<net::Ipv4Addr>& clients() const { return clients_; }
  [[nodiscard]] net::Ipv4Addr resolver_address() const { return resolver_address_; }
  [[nodiscard]] cdn::PublicResolver& resolver() { return *resolver_; }
  /// Authoritative server addresses, in provider order (outage targets).
  [[nodiscard]] const std::vector<net::Ipv4Addr>& authoritative_addresses() const {
    return auth_addresses_;
  }

  /// The fault decorator on the client's UDP path (stub -> resolver).
  [[nodiscard]] dns::FaultyTransport& client_faults() { return *client_faults_; }
  /// The fault decorator on the resolver's upstream path (-> authoritatives).
  [[nodiscard]] dns::FaultyTransport& resolver_faults() { return *resolver_faults_; }
  /// The hedging decorator on the resolver's upstream path, or nullptr when
  /// TestbedConfig::hedge is disabled.
  [[nodiscard]] dns::HedgedTransport* hedged_upstream() { return hedged_upstream_.get(); }

  /// A stub resolver for one client, pointed at the public resolver through
  /// the fault fabric, with the TCP fallback channel attached (so injected
  /// truncation exercises the RFC 1035 TCP retry path).
  dns::StubResolver make_stub(net::Ipv4Addr client, std::uint64_t seed = 1);

  /// Attaches an obs registry to all three fault fabrics and the public
  /// resolver (borrowed; nullptr detaches). Injected faults then appear as
  /// `dns.fault.<scope>.*` with scopes client_udp, client_tcp, and
  /// resolver; the resolver's serving path as `dns.cache.*` and
  /// `cdn.resolver.*`.
  void set_registry(obs::Registry* registry) {
    client_faults_->set_registry(registry, "client_udp");
    client_tcp_faults_->set_registry(registry, "client_tcp");
    resolver_faults_->set_registry(registry, "resolver");
    if (hedged_upstream_ != nullptr) hedged_upstream_->set_registry(registry);
    resolver_->set_registry(registry);
  }

 private:
  static topology::AsGraph build_graph(TestbedConfig& config,
                                       std::vector<cdn::CdnPlan>& plans_out);

  TestbedConfig config_;
  std::vector<cdn::CdnPlan> plans_;
  topology::World world_;
  dns::InMemoryDnsNetwork network_;
  std::vector<std::unique_ptr<cdn::CdnProvider>> providers_;
  std::vector<std::unique_ptr<cdn::CdnAuthoritative>> authoritatives_;
  std::vector<net::Ipv4Addr> auth_addresses_;
  /// Fault decorators over the in-memory fabric: the client's UDP and TCP
  /// channels and the resolver's upstream channel each draw from their own
  /// stream, so one path's faults never perturb another's.
  std::unique_ptr<dns::FaultyTransport> client_faults_;
  std::unique_ptr<dns::FaultyTransport> client_tcp_faults_;
  std::unique_ptr<dns::FaultyTransport> resolver_faults_;
  /// Hedging decorator over resolver_faults_; non-null only when enabled.
  std::unique_ptr<dns::HedgedTransport> hedged_upstream_;
  std::unique_ptr<cdn::PublicResolver> resolver_;
  std::unique_ptr<cdn::SiteAuthoritative> site_auth_;
  std::unique_ptr<cdn::ReverseDnsAuthoritative> reverse_dns_;
  net::Ipv4Addr resolver_address_;
  std::vector<net::Ipv4Addr> clients_;
};

}  // namespace drongo::measure
