// Sporadic trial scheduling (§4.2).
//
// "We perform our trials at randomly sampled intervals; our trial spacing
// varies from minutes to days, with a tendency toward being near an hour
// apart. This sporadic spacing parallels the variety of timings we expect
// to happen on a real client."
#pragma once

#include <vector>

#include "net/rng.hpp"

namespace drongo::measure {

/// Spacing distribution knobs: lognormal inter-trial gaps whose median is
/// `median_gap_hours`, clamped to [min, max].
struct SporadicScheduleConfig {
  double median_gap_hours = 1.0;
  /// Lognormal sigma; 1.2 spans "minutes to days" around an hour median.
  double sigma = 1.2;
  double min_gap_hours = 2.0 / 60.0;
  double max_gap_hours = 72.0;
};

/// `count` strictly increasing trial times starting at `start_hours`.
std::vector<double> sporadic_trial_times(int count, net::Rng& rng,
                                         double start_hours = 0.0,
                                         const SporadicScheduleConfig& config = {});

}  // namespace drongo::measure
