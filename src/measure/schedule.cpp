#include "measure/schedule.hpp"

#include <algorithm>
#include <cmath>

#include "net/error.hpp"

namespace drongo::measure {

std::vector<double> sporadic_trial_times(int count, net::Rng& rng, double start_hours,
                                         const SporadicScheduleConfig& config) {
  if (count < 0) throw net::InvalidArgument("negative trial count");
  if (config.min_gap_hours <= 0.0 || config.max_gap_hours < config.min_gap_hours) {
    throw net::InvalidArgument("bad sporadic gap bounds");
  }
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(count));
  double t = start_hours;
  for (int i = 0; i < count; ++i) {
    times.push_back(t);
    const double gap = std::clamp(
        config.median_gap_hours * rng.lognormal(0.0, config.sigma),
        config.min_gap_hours, config.max_gap_hours);
    t += gap;
  }
  return times;
}

}  // namespace drongo::measure
