// Trials: the measurement unit of the whole paper (§3.1.2).
//
// One trial = resolve the client replica set, traceroute toward each client
// replica, retrieve the hop replica set for every usable hop via subnet
// assimilation, and ping every replica seen. TrialRecord is the data model
// every analysis (Figures 2-11, Table 1) and Drongo's decision engine
// consume.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "measure/hop_filter.hpp"
#include "measure/probes.hpp"
#include "measure/schedule.hpp"
#include "measure/testbed.hpp"
#include "net/prefix.hpp"

namespace drongo::measure {

/// One replica and its measured latency from the client. Download fields
/// are filled only when TrialConfig::measure_downloads is set (Fig. 4b/4c):
/// a first-attempt fetch and an immediate repeat against a primed cache.
struct ReplicaMeasurement {
  net::Ipv4Addr replica;
  double rtt_ms = 0.0;
  double download_first_ms = 0.0;
  double download_cached_ms = 0.0;
};

/// One traceroute hop with its assimilation results.
struct HopRecord {
  net::Ipv4Addr ip;
  net::Prefix subnet;   ///< the hop's /24, the assimilation candidate
  std::string rdns;
  net::Asn asn;
  bool usable = false;  ///< passed the §3.1 filter
  /// HR-set (server order) with HRMs, populated for usable hops only.
  std::vector<ReplicaMeasurement> hr;
};

/// One complete trial.
struct TrialRecord {
  std::string provider;
  std::string domain;
  std::size_t client_index = 0;
  net::Ipv4Addr client;
  double time_hours = 0.0;  ///< simulated wall-clock of the trial
  /// CR-set (server order) with CRMs.
  std::vector<ReplicaMeasurement> cr;
  std::vector<HopRecord> hops;

  /// Lowest CRM (the "best client replica" of §3.2); +inf when empty.
  [[nodiscard]] double min_crm() const;
  /// CRM of the FIRST replica (the §5 real-world convention).
  [[nodiscard]] double first_crm() const;
  /// Usable hops only.
  [[nodiscard]] std::vector<const HopRecord*> usable() const;
};

/// Trial execution knobs.
struct TrialConfig {
  PingConfig ping;
  HopFilterConfig filter;
  /// Deduplicate hops by /24 across the traceroutes of one trial (a subnet
  /// appearing on several routes is assimilated once).
  bool dedupe_hop_subnets = true;
  /// Resolve hop reverse-DNS names through real PTR queries (the tooling
  /// path a real traceroute takes) instead of reading the simulator's
  /// registry. The hop filter's "different domain" condition then operates
  /// on genuinely looked-up names.
  bool resolve_hop_names_via_dns = true;
  /// Also measure curl-style downloads per replica (first + repeat), as in
  /// Figures 4b/4c. Off by default — the paper reverts to pings too.
  bool measure_downloads = false;
  DownloadModel download_model;
  /// Object size range for download measurements (paper: 1 kB - 1 MB).
  std::uint64_t object_bytes_min = 1024;
  std::uint64_t object_bytes_max = 1024 * 1024;
};

/// Executes trials against a testbed.
class TrialRunner {
 public:
  TrialRunner(Testbed* testbed, std::uint64_t seed, TrialConfig config = {});

  /// Runs one §3.1.2 trial for (client, provider) at simulated time
  /// `time_hours`. The content URL is chosen at random unless `label_index`
  /// pins one of the provider's content names (evaluation campaigns pin the
  /// domain so training windows accumulate on it).
  TrialRecord run(std::size_t client_index, std::size_t provider_index,
                  double time_hours,
                  std::optional<std::size_t> label_index = std::nullopt);

  /// Runs `trials_per_client` trials for every (client, provider) pair,
  /// spaced `spacing_hours` apart (paper: 45 trials, 1-2h apart). Returns
  /// records grouped in execution order.
  std::vector<TrialRecord> run_campaign(int trials_per_client, double spacing_hours);

  /// Like run_campaign but with the §4.2 sporadic spacing: every client
  /// follows its own randomly sampled schedule ("minutes to days, with a
  /// tendency toward being near an hour apart").
  std::vector<TrialRecord> run_campaign_sporadic(
      int trials_per_client, const SporadicScheduleConfig& schedule = {});

 private:
  Testbed* testbed_;
  net::Rng rng_;
  TrialConfig config_;
};

}  // namespace drongo::measure
