// Trials: the measurement unit of the whole paper (§3.1.2).
//
// One trial = resolve the client replica set, traceroute toward each client
// replica, retrieve the hop replica set for every usable hop via subnet
// assimilation, and ping every replica seen. TrialRecord is the data model
// every analysis (Figures 2-11, Table 1) and Drongo's decision engine
// consume.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "measure/hop_filter.hpp"
#include "measure/probes.hpp"
#include "measure/schedule.hpp"
#include "measure/testbed.hpp"
#include "net/prefix.hpp"
#include "net/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/schema.hpp"

namespace drongo::measure {

/// One replica and its measured latency from the client. Download fields
/// are filled only when TrialConfig::measure_downloads is set (Fig. 4b/4c):
/// a first-attempt fetch and an immediate repeat against a primed cache.
struct ReplicaMeasurement {
  net::Ipv4Addr replica;
  double rtt_ms = 0.0;
  double download_first_ms = 0.0;
  double download_cached_ms = 0.0;
};

/// How a trial ended.
enum class TrialOutcome : std::uint8_t {
  kOk = 0,        ///< everything measured
  kDegraded = 1,  ///< CR-set measured, but some hop assimilations failed
  kFailed = 2,    ///< no CR-set: the trial produced no measurements
};

/// Resilience bookkeeping for one trial (or, summed, a whole campaign):
/// what the client path endured and how it coped. The resolver-facing
/// fields are generated from the same obs schema as dns::ResolverStats —
/// there is exactly one counter list, and it also fixes the dataset
/// `health|` field order. The one extra field, hop_resolution_failures
/// (usable hops whose assimilated HR resolution never succeeded), is
/// appended by the health variant of the schema list.
struct HealthCounters {
  DRONGO_OBS_HEALTH_COUNTERS(DRONGO_OBS_DECLARE_FIELD)

  /// Folds a resolver's tallies into this trial's health (schema-generated:
  /// every resolver counter, nothing else).
  void add(const dns::ResolverStats& stats) {
#define DRONGO_OBS_FOLD(field) field += stats.field;
    DRONGO_OBS_RESOLVER_COUNTERS(DRONGO_OBS_FOLD)
#undef DRONGO_OBS_FOLD
  }

  HealthCounters& operator+=(const HealthCounters& other) {
#define DRONGO_OBS_FOLD(field) field += other.field;
    DRONGO_OBS_HEALTH_COUNTERS(DRONGO_OBS_FOLD)
#undef DRONGO_OBS_FOLD
    return *this;
  }

  bool operator==(const HealthCounters&) const = default;
};

/// Campaign-level health: summed trial counters plus outcome tallies.
struct CampaignHealth {
  HealthCounters totals;
  std::uint64_t ok_trials = 0;
  std::uint64_t degraded_trials = 0;
  std::uint64_t failed_trials = 0;
  bool operator==(const CampaignHealth&) const = default;
};

/// One traceroute hop with its assimilation results.
struct HopRecord {
  net::Ipv4Addr ip;
  net::Prefix subnet;   ///< the hop's /24, the assimilation candidate
  std::string rdns;
  net::Asn asn;
  bool usable = false;  ///< passed the §3.1 filter
  /// HR-set (server order) with HRMs, populated for usable hops only.
  std::vector<ReplicaMeasurement> hr;
};

/// One complete trial.
struct TrialRecord {
  std::string provider;
  std::string domain;
  std::size_t client_index = 0;
  net::Ipv4Addr client;
  double time_hours = 0.0;  ///< simulated wall-clock of the trial
  /// CR-set (server order) with CRMs.
  std::vector<ReplicaMeasurement> cr;
  std::vector<HopRecord> hops;
  /// Go-With-The-Winner standings (TrialConfig::gwtw_k >= 2 only): the
  /// first k CR replicas re-probed with fresh draws at resolution time, as
  /// a racing client would before committing. Answer order preserved.
  std::vector<ReplicaMeasurement> race;
  /// How the trial ended. Failed trials carry no measurements but ARE
  /// returned (and persisted): a real campaign keeps its gaps on record.
  TrialOutcome outcome = TrialOutcome::kOk;
  /// Human-readable cause, set when outcome != kOk.
  std::string failure;
  /// What the client path endured during this trial.
  HealthCounters health;

  /// Lowest CRM (the "best client replica" of §3.2); +inf when empty.
  [[nodiscard]] double min_crm() const;
  /// CRM of the FIRST replica (the §5 real-world convention).
  [[nodiscard]] double first_crm() const;
  /// Usable hops only.
  [[nodiscard]] std::vector<const HopRecord*> usable() const;
  /// True when the trial produced no measurements at all.
  [[nodiscard]] bool failed() const { return outcome == TrialOutcome::kFailed; }
  /// Index of the race's fastest contestant (ties to the earliest, i.e. the
  /// CDN's own preference); 0 when no race ran.
  [[nodiscard]] std::size_t race_winner() const;
  /// The winning contestant's RTT; +inf when no race ran.
  [[nodiscard]] double race_winner_rtt_ms() const;
};

/// Sums per-trial health across a campaign. Order-independent, so serial
/// and parallel runs of the same task list aggregate identically.
CampaignHealth aggregate_health(const std::vector<TrialRecord>& records);

/// Dataset/CLI spelling of an outcome: ok | degraded | failed.
const char* to_string(TrialOutcome outcome);
/// Inverse of to_string; throws net::ParseError on unknown spellings.
TrialOutcome trial_outcome_from_string(const std::string& s);

/// Trial execution knobs.
struct TrialConfig {
  PingConfig ping;
  HopFilterConfig filter;
  /// Deduplicate hops by /24 across the traceroutes of one trial (a subnet
  /// appearing on several routes is assimilated once).
  bool dedupe_hop_subnets = true;
  /// Resolve hop reverse-DNS names through real PTR queries (the tooling
  /// path a real traceroute takes) instead of reading the simulator's
  /// registry. The hop filter's "different domain" condition then operates
  /// on genuinely looked-up names.
  bool resolve_hop_names_via_dns = true;
  /// Also measure curl-style downloads per replica (first + repeat), as in
  /// Figures 4b/4c. Off by default — the paper reverts to pings too.
  bool measure_downloads = false;
  /// Go-With-The-Winner racing: when >= 2, each trial re-probes the first
  /// k CR replicas with fresh draws (the racing client's view) and records
  /// the standings in TrialRecord::race. The race runs after every baseline
  /// draw, so k = 0 campaigns are byte-identical to pre-racing ones.
  int gwtw_k = 0;
  DownloadModel download_model;
  /// Object size range for download measurements (paper: 1 kB - 1 MB).
  std::uint64_t object_bytes_min = 1024;
  std::uint64_t object_bytes_max = 1024 * 1024;
};

/// One cell of a campaign: which client measures which provider, its
/// per-(client,provider) trial ordinal, and when. The trial ordinal — not
/// the position in any work queue — selects the RNG stream, so a task's
/// result is a pure function of (runner seed, task), independent of which
/// thread executes it or in what order.
struct CampaignTask {
  std::size_t client_index = 0;
  std::size_t provider_index = 0;
  std::uint64_t trial_index = 0;  ///< ordinal within this (client, provider)
  double time_hours = 0.0;
  std::optional<std::size_t> label_index;  ///< pinned content name, if any
};

/// Executes trials against a testbed.
///
/// Every trial draws all of its randomness (domain pick, stub query ids,
/// traceroute noise, object size, ping/download noise) from the stream
/// `Rng::derive(seed, client, trial, provider)`. That makes `run_task`
/// const, thread-safe, and execution-order-independent: a campaign run on
/// one thread and on N threads yields byte-identical records.
class TrialRunner {
 public:
  TrialRunner(Testbed* testbed, std::uint64_t seed, TrialConfig config = {});

  /// Runs one §3.1.2 trial for (client, provider) at simulated time
  /// `time_hours`. The content URL is chosen at random unless `label_index`
  /// pins one of the provider's content names (evaluation campaigns pin the
  /// domain so training windows accumulate on it).
  ///
  /// Stateful convenience wrapper: each call advances this (client,
  /// provider) pair's trial ordinal, so repeated calls produce distinct
  /// trials while the same seed and call sequence reproduce exactly.
  TrialRecord run(std::size_t client_index, std::size_t provider_index,
                  double time_hours,
                  std::optional<std::size_t> label_index = std::nullopt);

  /// Runs one fully-specified campaign cell. Pure in the derived-stream
  /// sense: the result depends only on the runner's seed, its config, and
  /// the task — never on other tasks or threads. Safe to call concurrently.
  [[nodiscard]] TrialRecord run_task(const CampaignTask& task) const;

  /// The task list run_campaign executes: trials_per_client rounds over
  /// every (client, provider) pair, round t at `t * spacing_hours` plus a
  /// derived jitter (paper §3.1.2: trials 1-2 hours apart).
  [[nodiscard]] std::vector<CampaignTask> campaign_tasks(int trials_per_client,
                                                         double spacing_hours) const;

  /// The task list run_campaign_sporadic executes: every client follows its
  /// own randomly sampled §4.2 schedule ("minutes to days, with a tendency
  /// toward being near an hour apart"), derived per client.
  [[nodiscard]] std::vector<CampaignTask> sporadic_tasks(
      int trials_per_client, const SporadicScheduleConfig& schedule = {}) const;

  /// Runs `trials_per_client` trials for every (client, provider) pair,
  /// spaced `spacing_hours` apart (paper: 45 trials, 1-2h apart). Returns
  /// records grouped in execution order. Equals running campaign_tasks()
  /// in order — ParallelCampaignRunner produces the identical vector.
  std::vector<TrialRecord> run_campaign(int trials_per_client, double spacing_hours);

  /// Like run_campaign but with the §4.2 sporadic spacing.
  std::vector<TrialRecord> run_campaign_sporadic(
      int trials_per_client, const SporadicScheduleConfig& schedule = {});

  [[nodiscard]] Testbed* testbed() const { return testbed_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] const TrialConfig& config() const { return config_; }

  /// Attaches an obs registry (borrowed; nullptr detaches). Each trial then
  /// emits `measure.trial.*` outcome counters, the `measure.trial.crm_ms` /
  /// `measure.trial.hrm_ms` latency histograms (simulated milliseconds, so
  /// deterministic), per-trial resolver counters via the trial's stub, and
  /// a `measure.trial` span with nested per-phase spans (resolve_cr,
  /// traceroute, assimilate, measure). Spans nest within one task on one
  /// thread only, so their counts and depths are identical no matter how
  /// the campaign is scheduled.
  void set_registry(obs::Registry* registry) { registry_ = registry; }
  [[nodiscard]] obs::Registry* registry() const { return registry_; }

 private:
  /// The trial body; all randomness comes from `rng`.
  TrialRecord run_with_rng(std::size_t client_index, std::size_t provider_index,
                           double time_hours, std::optional<std::size_t> label_index,
                           net::Rng& rng) const;

  Testbed* testbed_;
  std::uint64_t seed_;
  TrialConfig config_;
  obs::Registry* registry_ = nullptr;  // borrowed; optional telemetry
  /// Next trial ordinal per (client, provider) for the stateful run().
  std::map<std::pair<std::size_t, std::size_t>, std::uint64_t> next_trial_;
};

}  // namespace drongo::measure
