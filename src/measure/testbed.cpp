#include "measure/testbed.hpp"

#include "dns/reverse.hpp"

#include <algorithm>

#include "net/error.hpp"

namespace drongo::measure {

TestbedConfig TestbedConfig::planetlab() {
  TestbedConfig config;
  config.as_config.stub_count = 220;
  config.profiles = cdn::paper_providers();
  config.client_count = 95;
  config.seed = 42;
  return config;
}

TestbedConfig TestbedConfig::ripe_atlas() {
  TestbedConfig config;
  config.as_config.stub_count = 480;
  config.as_config.tier2_count = 48;
  config.profiles = cdn::paper_providers();
  config.client_count = 429;
  config.seed = 1729;
  return config;
}

topology::AsGraph Testbed::build_graph(TestbedConfig& config,
                                       std::vector<cdn::CdnPlan>& plans_out) {
  if (config.profiles.empty()) config.profiles = cdn::paper_providers();
  config.as_config.seed = config.seed;
  config.world_config.seed = config.seed ^ 0x5EEDFACE;
  topology::AsGraph graph = topology::generate_as_graph(config.as_config);
  net::Rng rng(config.seed ^ 0xCD4);
  plans_out.clear();
  plans_out.reserve(config.profiles.size());
  for (const auto& profile : config.profiles) {
    plans_out.push_back(cdn::plan_cdn(graph, profile, rng));
  }
  return graph;
}

Testbed::Testbed(TestbedConfig config)
    : config_(std::move(config)),
      world_(build_graph(config_, plans_), config_.world_config) {
  net::Rng rng(config_.seed ^ 0x7E57BED);

  // Deploy CDNs: replica hosts, anycast VIPs, authoritative servers.
  for (const auto& plan : plans_) {
    providers_.push_back(std::make_unique<cdn::CdnProvider>(cdn::deploy_cdn(world_, plan)));
  }
  for (auto& provider : providers_) {
    authoritatives_.push_back(std::make_unique<cdn::CdnAuthoritative>(provider.get()));
    // The authoritative listens at a host inside the CDN's own AS.
    const net::Ipv4Addr auth_addr =
        world_.add_host(provider->as_index(), topology::HostKind::kServer, 0);
    network_.register_server(auth_addr, authoritatives_.back().get());
    // Bind the zone at the public resolver once it exists (below); remember
    // the address via the plan order.
    auth_addresses_.push_back(auth_addr);
  }

  // The public recursive resolver lives in a tier-1 backbone.
  std::size_t t1_index = 0;
  for (std::size_t v = 0; v < world_.graph().node_count(); ++v) {
    if (world_.graph().node(v).tier == topology::AsTier::kTier1) {
      t1_index = v;
      break;
    }
  }
  resolver_address_ = world_.add_host(t1_index, topology::HostKind::kServer, 0);
  // Fault decorators sit on every DNS path. With the default (inactive)
  // profile they are transparent; with faults configured, the client path
  // and the resolver's upstream path draw from distinct seeds so the two
  // hops fail independently, as distinct network segments do.
  client_faults_ = std::make_unique<dns::FaultyTransport>(
      &network_, config_.fault_seed, config_.fault_profile,
      dns::FaultyTransport::Channel::kUdp);
  client_tcp_faults_ = std::make_unique<dns::FaultyTransport>(
      &network_, config_.fault_seed, config_.fault_profile,
      dns::FaultyTransport::Channel::kTcp);
  // The resolver's upstream path uses the kTcp personality: a real
  // recursive performs its own UDP->TCP fallback when an authoritative
  // truncates, invisibly to the client, so injected truncation must not
  // fire on this segment (every other fault still does).
  resolver_faults_ = std::make_unique<dns::FaultyTransport>(
      &network_, config_.fault_seed ^ 0xA07D, config_.fault_profile,
      dns::FaultyTransport::Channel::kTcp);
  // Hedging wraps the faulty upstream: the hedge's duplicate exchange goes
  // through the same fault fabric (with fresh fault draws, since its bytes
  // differ), exactly the path a real second datagram would take.
  dns::DnsTransport* upstream = resolver_faults_.get();
  if (config_.hedge.enabled) {
    hedged_upstream_ =
        std::make_unique<dns::HedgedTransport>(resolver_faults_.get(), config_.hedge);
    upstream = hedged_upstream_.get();
  }
  resolver_ = std::make_unique<cdn::PublicResolver>(upstream, resolver_address_,
                                                    config_.serving);
  network_.register_server(resolver_address_, resolver_.get());
  for (std::size_t i = 0; i < providers_.size(); ++i) {
    resolver_->register_zone(dns::DnsName::must_parse(providers_[i]->profile().zone),
                             auth_addresses_[i]);
  }

  // CDN-fronted web sites: one authoritative carries all the small site
  // zones; their answers are CNAMEs the resolver chases into the CDNs.
  site_auth_ = std::make_unique<cdn::SiteAuthoritative>();
  if (config_.site_count > 0) {
    std::vector<std::vector<dns::DnsName>> per_provider_names;
    for (std::size_t i = 0; i < providers_.size(); ++i) {
      per_provider_names.push_back(content_names(i));
    }
    net::Rng site_rng(config_.seed ^ 0x517E5);
    for (auto& site : cdn::make_sites(config_.site_count, per_provider_names, site_rng)) {
      site_auth_->add_site(site);
    }
    const net::Ipv4Addr site_dns = world_.add_host(t1_index, topology::HostKind::kServer, 0);
    network_.register_server(site_dns, site_auth_.get());
    for (const auto& site : site_auth_->sites()) {
      resolver_->register_zone(site.zone, site_dns);
    }
  }

  // Reverse DNS for the whole world: hop names are looked up through the
  // DNS path (PTR), not read out of the simulator.
  reverse_dns_ = std::make_unique<cdn::ReverseDnsAuthoritative>(&world_);
  const net::Ipv4Addr reverse_addr =
      world_.add_host(t1_index, topology::HostKind::kServer, 0);
  network_.register_server(reverse_addr, reverse_dns_.get());
  resolver_->register_zone(dns::reverse_zone(), reverse_addr);

  // Clients: spread across stub ASes (round-robin over a shuffled list so a
  // large client population reuses ASes but never a /24).
  std::vector<std::size_t> stubs;
  for (std::size_t v = 0; v < world_.graph().node_count(); ++v) {
    if (world_.graph().node(v).tier == topology::AsTier::kStub) stubs.push_back(v);
  }
  if (stubs.empty()) throw net::Error("testbed graph has no stub ASes for clients");
  rng.shuffle(stubs);
  for (int c = 0; c < config_.client_count; ++c) {
    const std::size_t as_index = stubs[static_cast<std::size_t>(c) % stubs.size()];
    clients_.push_back(world_.add_host(as_index, topology::HostKind::kClient));
  }
}

std::vector<dns::DnsName> Testbed::content_names(std::size_t index) const {
  return authoritatives_.at(index)->content_names();
}

dns::StubResolver Testbed::make_stub(net::Ipv4Addr client, std::uint64_t seed) {
  dns::StubResolver stub(client_faults_.get(), client, resolver_address_, seed,
                         config_.resolver_config);
  stub.set_fallback_transport(client_tcp_faults_.get());
  stub.set_ecs_family(config_.ecs_policy);
  return stub;
}

}  // namespace drongo::measure
