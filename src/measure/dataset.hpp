// Trial dataset persistence: save and reload measurement campaigns.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "measure/trial.hpp"

namespace drongo::measure {

/// Writes records in a line-oriented text format (one `trial` line followed
/// by its `cr` and `hop`/`hr` lines; '|'-separated fields). The format is
/// versioned and self-describing enough to survive tooling: a real Drongo
/// deployment stores exactly this — past trials consulted at decision time.
void save_dataset(std::ostream& out, const std::vector<TrialRecord>& records);
void save_dataset_file(const std::string& path, const std::vector<TrialRecord>& records);

/// Parses a dataset written by save_dataset. Throws net::ParseError on
/// malformed input.
std::vector<TrialRecord> load_dataset(std::istream& in);
std::vector<TrialRecord> load_dataset_file(const std::string& path);

}  // namespace drongo::measure
