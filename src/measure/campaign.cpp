#include "measure/campaign.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "net/error.hpp"

namespace drongo::measure {

int resolve_thread_count(int requested) {
  if (requested < 0) {
    throw net::InvalidArgument("thread count must be >= 0, got " +
                               std::to_string(requested));
  }
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int parse_thread_count(const char* value) {
  if (value == nullptr || value[0] == '\0') return 1;
  const std::string v(value);
  std::size_t consumed = 0;
  int parsed = 0;
  try {
    parsed = std::stoi(v, &consumed);
  } catch (const std::exception&) {
    throw net::InvalidArgument("DRONGO_THREADS must be an integer >= 0, got \"" + v +
                               "\"");
  }
  if (consumed != v.size() || parsed < 0) {
    throw net::InvalidArgument("DRONGO_THREADS must be an integer >= 0, got \"" + v +
                               "\"");
  }
  return parsed;
}

int thread_count_from_env() {
  return parse_thread_count(std::getenv("DRONGO_THREADS"));
}

ParallelCampaignRunner::ParallelCampaignRunner(const TrialRunner* runner,
                                               CampaignOptions options)
    : runner_(runner), threads_(resolve_thread_count(options.threads)) {
  if (runner_ == nullptr) throw net::InvalidArgument("null TrialRunner");
}

std::vector<TrialRecord> ParallelCampaignRunner::run(
    const std::vector<CampaignTask>& tasks) const {
  std::vector<TrialRecord> records(tasks.size());
  if (tasks.empty()) return records;

  if (threads_ <= 1) {
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      records[i] = runner_->run_task(tasks[i]);
    }
    return records;
  }

  // Shard by client: shards[s] holds the task-list positions of one
  // client's tasks, in list order. A worker owns a whole shard at a time,
  // which keeps a client's working set (stub state, cache keys) on one
  // core and bounds contention on the shared memo caches.
  std::vector<std::vector<std::size_t>> shards;
  {
    std::unordered_map<std::size_t, std::size_t> shard_of_client;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      auto [it, fresh] =
          shard_of_client.try_emplace(tasks[i].client_index, shards.size());
      if (fresh) shards.emplace_back();
      shards[it->second].push_back(i);
    }
  }

  std::atomic<std::size_t> next_shard{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto worker = [&]() {
    while (true) {
      const std::size_t s = next_shard.fetch_add(1, std::memory_order_relaxed);
      if (s >= shards.size()) return;
      {
        std::lock_guard lock(error_mutex);
        if (first_error) return;  // a sibling already failed; drain quickly
      }
      try {
        for (std::size_t i : shards[s]) {
          records[i] = runner_->run_task(tasks[i]);
        }
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  const int n = std::min<int>(threads_, static_cast<int>(shards.size()));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return records;
}

std::vector<TrialRecord> ParallelCampaignRunner::run_campaign(
    int trials_per_client, double spacing_hours) const {
  return run(runner_->campaign_tasks(trials_per_client, spacing_hours));
}

std::vector<TrialRecord> ParallelCampaignRunner::run_campaign_sporadic(
    int trials_per_client, const SporadicScheduleConfig& schedule) const {
  return run(runner_->sporadic_tasks(trials_per_client, schedule));
}

}  // namespace drongo::measure
