#include "measure/trial.hpp"

#include <limits>
#include <map>
#include <set>

#include "net/error.hpp"

namespace drongo::measure {

double TrialRecord::min_crm() const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& m : cr) best = std::min(best, m.rtt_ms);
  return best;
}

double TrialRecord::first_crm() const {
  return cr.empty() ? std::numeric_limits<double>::infinity() : cr.front().rtt_ms;
}

std::vector<const HopRecord*> TrialRecord::usable() const {
  std::vector<const HopRecord*> out;
  for (const auto& hop : hops) {
    if (hop.usable) out.push_back(&hop);
  }
  return out;
}

TrialRunner::TrialRunner(Testbed* testbed, std::uint64_t seed, TrialConfig config)
    : testbed_(testbed), rng_(seed), config_(config) {
  if (testbed_ == nullptr) throw net::InvalidArgument("null Testbed");
}

TrialRecord TrialRunner::run(std::size_t client_index, std::size_t provider_index,
                             double time_hours, std::optional<std::size_t> label_index) {
  auto& world = testbed_->world();
  const net::Ipv4Addr client = testbed_->clients().at(client_index);

  TrialRecord record;
  record.provider = testbed_->profile(provider_index).name;
  record.client_index = client_index;
  record.client = client;
  record.time_hours = time_hours;

  // Step 1: a URL of this provider (random unless pinned).
  const auto names = testbed_->content_names(provider_index);
  const dns::DnsName domain =
      names[label_index ? *label_index % names.size() : rng_.index(names.size())];
  record.domain = domain.to_string();

  // Step 2: CR-set via an ordinary ECS resolution (client's own /24).
  dns::StubResolver stub = testbed_->make_stub(client, rng_.next_u64());
  const auto cr_result = stub.resolve_with_own_subnet(domain);
  if (!cr_result.ok()) {
    // An unreachable CDN is a configuration error in the testbed, not a
    // measurable condition.
    throw net::Error("CR resolution failed for " + domain.to_string());
  }

  // Step 3: traceroute toward each CR; collect hops (dedupe by /24). Hop
  // names come from PTR lookups over the DNS path when configured, exactly
  // as traceroute tooling obtains them.
  std::set<net::Prefix> seen_subnets;
  std::map<net::Ipv4Addr, std::string> ptr_cache;
  for (net::Ipv4Addr cr_addr : cr_result.addresses) {
    auto hops = world.traceroute(client, cr_addr, rng_);
    if (config_.resolve_hop_names_via_dns) {
      for (auto& hop : hops) {
        if (hop.is_private || !hop.responded) {
          hop.rdns.clear();
          continue;
        }
        auto it = ptr_cache.find(hop.ip);
        if (it == ptr_cache.end()) {
          it = ptr_cache.emplace(hop.ip, stub.resolve_ptr(hop.ip)).first;
        }
        hop.rdns = it->second;
      }
    }
    const auto usable = usable_hops(world, client, hops, config_.filter);
    for (std::size_t i = 0; i < hops.size(); ++i) {
      // The destination replica itself is the last hop; it is not an
      // upstream router, so skip it as an assimilation candidate.
      if (hops[i].ip == cr_addr || world.is_host(hops[i].ip)) continue;
      const net::Prefix subnet(hops[i].ip, 24);
      if (config_.dedupe_hop_subnets && !seen_subnets.insert(subnet).second) continue;
      HopRecord hop;
      hop.ip = hops[i].ip;
      hop.subnet = subnet;
      hop.rdns = hops[i].rdns;
      hop.asn = hops[i].asn;
      hop.usable = usable[i];
      record.hops.push_back(std::move(hop));
    }
  }

  // Step 4: HR-set per usable hop via subnet assimilation.
  for (auto& hop : record.hops) {
    if (!hop.usable) continue;
    const auto hr_result = stub.resolve(domain, hop.subnet);
    if (!hr_result.ok()) continue;
    for (net::Ipv4Addr hr_addr : hr_result.addresses) {
      hop.hr.push_back({hr_addr, 0.0});
    }
  }

  // Step 5: measure CRMs and HRMs — all from the client (footnote 1: no
  // measurements are ever performed from upstream nodes). A replica seen
  // several times in the trial is measured once and the value reused.
  const std::uint64_t object_bytes =
      config_.object_bytes_min +
      rng_.uniform(config_.object_bytes_max - config_.object_bytes_min + 1);
  std::map<net::Ipv4Addr, ReplicaMeasurement> measured;
  auto measure = [&](net::Ipv4Addr replica) {
    auto it = measured.find(replica);
    if (it != measured.end()) return it->second;
    ReplicaMeasurement m;
    m.replica = replica;
    m.rtt_ms = ping_ms(world, client, replica, rng_, config_.ping);
    if (config_.measure_downloads) {
      // Back-to-back downloads (Fig. 4b/4c): the second finds a warm cache.
      m.download_first_ms = download_ms(world, client, replica, object_bytes,
                                        /*repeat_request=*/false, rng_,
                                        config_.download_model);
      m.download_cached_ms = download_ms(world, client, replica, object_bytes,
                                         /*repeat_request=*/true, rng_,
                                         config_.download_model);
    }
    measured[replica] = m;
    return m;
  };
  for (net::Ipv4Addr cr_addr : cr_result.addresses) {
    record.cr.push_back(measure(cr_addr));
  }
  for (auto& hop : record.hops) {
    for (auto& hr : hop.hr) {
      hr = measure(hr.replica);
    }
  }
  return record;
}

std::vector<TrialRecord> TrialRunner::run_campaign(int trials_per_client,
                                                   double spacing_hours) {
  std::vector<TrialRecord> records;
  const std::size_t clients = testbed_->clients().size();
  const std::size_t providers = testbed_->provider_count();
  records.reserve(clients * providers * static_cast<std::size_t>(trials_per_client));
  for (int t = 0; t < trials_per_client; ++t) {
    // Trials are spaced 1-2 hours apart (paper §3.1.2) with jitter.
    const double when = t * spacing_hours + rng_.uniform_real(0.0, spacing_hours / 2);
    for (std::size_t c = 0; c < clients; ++c) {
      for (std::size_t p = 0; p < providers; ++p) {
        records.push_back(run(c, p, when));
      }
    }
  }
  return records;
}

std::vector<TrialRecord> TrialRunner::run_campaign_sporadic(
    int trials_per_client, const SporadicScheduleConfig& schedule) {
  std::vector<TrialRecord> records;
  const std::size_t clients = testbed_->clients().size();
  const std::size_t providers = testbed_->provider_count();
  records.reserve(clients * providers * static_cast<std::size_t>(trials_per_client));
  for (std::size_t c = 0; c < clients; ++c) {
    // Each client is online at its own unpredictable times.
    const auto times = sporadic_trial_times(trials_per_client, rng_, 0.0, schedule);
    for (std::size_t p = 0; p < providers; ++p) {
      for (double when : times) {
        records.push_back(run(c, p, when));
      }
    }
  }
  return records;
}

}  // namespace drongo::measure
