#include "measure/trial.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

#include "dns/faults.hpp"
#include "net/error.hpp"
#include "obs/span.hpp"

namespace drongo::measure {

namespace {

/// Stream selector for schedule randomness (trial times), kept far away
/// from the client-index streams trials themselves draw from.
constexpr std::uint64_t kScheduleStream = 0x5C4ED01EULL;

}  // namespace

CampaignHealth aggregate_health(const std::vector<TrialRecord>& records) {
  CampaignHealth health;
  for (const auto& r : records) {
    health.totals += r.health;
    switch (r.outcome) {
      case TrialOutcome::kOk: ++health.ok_trials; break;
      case TrialOutcome::kDegraded: ++health.degraded_trials; break;
      case TrialOutcome::kFailed: ++health.failed_trials; break;
    }
  }
  return health;
}

const char* to_string(TrialOutcome outcome) {
  switch (outcome) {
    case TrialOutcome::kOk: return "ok";
    case TrialOutcome::kDegraded: return "degraded";
    case TrialOutcome::kFailed: return "failed";
  }
  return "ok";
}

TrialOutcome trial_outcome_from_string(const std::string& s) {
  if (s == "ok") return TrialOutcome::kOk;
  if (s == "degraded") return TrialOutcome::kDegraded;
  if (s == "failed") return TrialOutcome::kFailed;
  throw net::ParseError("unknown trial outcome '" + s + "'");
}

double TrialRecord::min_crm() const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& m : cr) best = std::min(best, m.rtt_ms);
  return best;
}

double TrialRecord::first_crm() const {
  return cr.empty() ? std::numeric_limits<double>::infinity() : cr.front().rtt_ms;
}

std::size_t TrialRecord::race_winner() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < race.size(); ++i) {
    // Strict < keeps ties on the earliest (CDN-preferred) contestant.
    if (race[i].rtt_ms < race[best].rtt_ms) best = i;
  }
  return best;
}

double TrialRecord::race_winner_rtt_ms() const {
  return race.empty() ? std::numeric_limits<double>::infinity()
                      : race[race_winner()].rtt_ms;
}

std::vector<const HopRecord*> TrialRecord::usable() const {
  std::vector<const HopRecord*> out;
  for (const auto& hop : hops) {
    if (hop.usable) out.push_back(&hop);
  }
  return out;
}

TrialRunner::TrialRunner(Testbed* testbed, std::uint64_t seed, TrialConfig config)
    : testbed_(testbed), seed_(seed), config_(config) {
  if (testbed_ == nullptr) throw net::InvalidArgument("null Testbed");
  if (config_.gwtw_k < 0) throw net::InvalidArgument("gwtw_k must be >= 0");
}

TrialRecord TrialRunner::run(std::size_t client_index, std::size_t provider_index,
                             double time_hours, std::optional<std::size_t> label_index) {
  const std::uint64_t trial = next_trial_[{client_index, provider_index}]++;
  return run_task({client_index, provider_index, trial, time_hours, label_index});
}

TrialRecord TrialRunner::run_task(const CampaignTask& task) const {
  net::Rng rng =
      net::Rng::derive(seed_, task.client_index, task.trial_index, task.provider_index);
  return run_with_rng(task.client_index, task.provider_index, task.time_hours,
                      task.label_index, rng);
}

TrialRecord TrialRunner::run_with_rng(std::size_t client_index,
                                      std::size_t provider_index, double time_hours,
                                      std::optional<std::size_t> label_index,
                                      net::Rng& rng) const {
  auto& world = testbed_->world();
  const net::Ipv4Addr client = testbed_->clients().at(client_index);

  // Fault outage windows are matched against the trial's simulated time;
  // thread-local, so concurrent workers each see their own trial's clock.
  const dns::ScopedFaultTime fault_time(time_hours);

  // The trial span is the taxonomy root: phase spans below nest inside it
  // on the executing thread, so their counts and depths cannot depend on
  // which thread (or how many) ran the campaign.
  const obs::Span trial_span(registry_, "measure.trial");
  const auto note = [this](const char* name) {
    if (registry_ != nullptr) registry_->add(name);
  };

  TrialRecord record;
  record.provider = testbed_->profile(provider_index).name;
  record.client_index = client_index;
  record.client = client;
  record.time_hours = time_hours;

  // Step 1: a URL of this provider (random unless pinned).
  const auto names = testbed_->content_names(provider_index);
  const dns::DnsName domain =
      names[label_index ? *label_index % names.size() : rng.index(names.size())];
  record.domain = domain.to_string();

  // Step 2: CR-set via an ordinary ECS resolution (client's own /24).
  // Without a CR-set there is nothing to traceroute toward and nothing to
  // compare against, so the trial is recorded as failed — not thrown: one
  // bad trial must not abort a 45-trial campaign (a real vantage point
  // simply has a gap in its data for that round).
  dns::StubResolver stub = testbed_->make_stub(client, rng.next_u64());
  stub.set_registry(registry_);
  dns::ResolutionResult cr_result;
  try {
    const obs::Span phase(registry_, "measure.trial.resolve_cr");
    cr_result = stub.resolve_with_own_subnet(domain);
  } catch (const net::TransientError& e) {
    record.outcome = TrialOutcome::kFailed;
    record.failure = e.what();
    record.health.add(stub.stats());
    note("measure.trial.outcome.failed");
    return record;
  }
  if (!cr_result.ok()) {
    record.outcome = TrialOutcome::kFailed;
    record.failure = std::string("CR resolution for ") + domain.to_string() +
                     " answered " + dns::to_string(cr_result.rcode) +
                     (cr_result.nodata() ? " with no addresses" : "");
    record.health.add(stub.stats());
    note("measure.trial.outcome.failed");
    return record;
  }

  // Step 3: traceroute toward each CR; collect hops (dedupe by /24). Hop
  // names come from PTR lookups over the DNS path when configured, exactly
  // as traceroute tooling obtains them.
  std::set<net::Prefix> seen_subnets;
  std::map<net::Ipv4Addr, std::string> ptr_cache;
  // One phase span at a time; emplace closes the previous phase before
  // opening the next, all nested inside the trial span.
  std::optional<obs::Span> phase;
  phase.emplace(registry_, "measure.trial.traceroute");
  for (net::Ipv4Addr cr_addr : cr_result.addresses) {
    auto hops = world.traceroute(client, cr_addr, rng);
    if (config_.resolve_hop_names_via_dns) {
      for (auto& hop : hops) {
        if (hop.is_private || !hop.responded) {
          hop.rdns.clear();
          continue;
        }
        auto it = ptr_cache.find(hop.ip);
        if (it == ptr_cache.end()) {
          it = ptr_cache.emplace(hop.ip, stub.resolve_ptr(hop.ip)).first;
        }
        hop.rdns = it->second;
      }
    }
    const auto usable = usable_hops(world, client, hops, config_.filter);
    for (std::size_t i = 0; i < hops.size(); ++i) {
      // The destination replica itself is the last hop; it is not an
      // upstream router, so skip it as an assimilation candidate.
      if (hops[i].ip == cr_addr || world.is_host(hops[i].ip)) continue;
      const net::Prefix subnet(hops[i].ip, 24);
      if (config_.dedupe_hop_subnets && !seen_subnets.insert(subnet).second) continue;
      HopRecord hop;
      hop.ip = hops[i].ip;
      hop.subnet = subnet;
      hop.rdns = hops[i].rdns;
      hop.asn = hops[i].asn;
      hop.usable = usable[i];
      record.hops.push_back(std::move(hop));
    }
  }

  // Step 4: HR-set per usable hop via subnet assimilation. A hop whose
  // resolution keeps failing degrades the trial (that hop yields no HR-set
  // this round — downstream layers fall back to the client's own subnet)
  // but never fails it: the CR measurements remain valid.
  phase.emplace(registry_, "measure.trial.assimilate");
  for (auto& hop : record.hops) {
    if (!hop.usable) continue;
    try {
      const auto hr_result = stub.resolve(domain, hop.subnet);
      if (!hr_result.ok()) {
        if (hr_result.server_failure()) {
          ++record.health.hop_resolution_failures;
          note("measure.trial.hop_resolution_failures");
          record.outcome = TrialOutcome::kDegraded;
        }
        continue;
      }
      for (net::Ipv4Addr hr_addr : hr_result.addresses) {
        hop.hr.push_back({hr_addr, 0.0});
      }
    } catch (const net::TransientError&) {
      ++record.health.hop_resolution_failures;
      note("measure.trial.hop_resolution_failures");
      record.outcome = TrialOutcome::kDegraded;
    }
  }

  // Step 5: measure CRMs and HRMs — all from the client (footnote 1: no
  // measurements are ever performed from upstream nodes). A replica seen
  // several times in the trial is measured once and the value reused.
  phase.emplace(registry_, "measure.trial.measure");
  const std::uint64_t object_bytes =
      config_.object_bytes_min +
      rng.uniform(config_.object_bytes_max - config_.object_bytes_min + 1);
  std::map<net::Ipv4Addr, ReplicaMeasurement> measured;
  auto measure = [&](net::Ipv4Addr replica) {
    auto it = measured.find(replica);
    if (it != measured.end()) return it->second;
    ReplicaMeasurement m;
    m.replica = replica;
    m.rtt_ms = ping_ms(world, client, replica, rng, config_.ping);
    if (config_.measure_downloads) {
      // Back-to-back downloads (Fig. 4b/4c): the second finds a warm cache.
      m.download_first_ms = download_ms(world, client, replica, object_bytes,
                                        /*repeat_request=*/false, rng,
                                        config_.download_model);
      m.download_cached_ms = download_ms(world, client, replica, object_bytes,
                                         /*repeat_request=*/true, rng,
                                         config_.download_model);
    }
    measured[replica] = m;
    return m;
  };
  for (net::Ipv4Addr cr_addr : cr_result.addresses) {
    record.cr.push_back(measure(cr_addr));
  }
  for (auto& hop : record.hops) {
    for (auto& hr : hop.hr) {
      hr = measure(hr.replica);
    }
  }
  if (record.outcome == TrialOutcome::kDegraded) {
    record.failure = std::to_string(record.health.hop_resolution_failures) +
                     " hop resolution(s) failed";
  }
  record.health.add(stub.stats());
  phase.reset();

  // Step 6 (optional): Go-With-The-Winner racing — re-probe the first k CR
  // replicas with fresh draws, exactly what a client that measures at
  // resolution time before committing would see. Runs strictly after every
  // baseline draw, so a gwtw_k = 0 campaign is byte-identical to one from
  // before racing existed.
  if (config_.gwtw_k >= 2 && !record.cr.empty()) {
    const obs::Span race_span(registry_, "measure.trial.race");
    const std::size_t field_size =
        std::min(record.cr.size(), static_cast<std::size_t>(config_.gwtw_k));
    for (std::size_t i = 0; i < field_size; ++i) {
      ReplicaMeasurement m;
      m.replica = record.cr[i].replica;
      m.rtt_ms = ping_ms(world, client, m.replica, rng, config_.ping);
      record.race.push_back(m);
    }
    note("measure.trial.races");
    if (registry_ != nullptr) {
      registry_->observe_ms("measure.trial.race_winner_rtt_ms",
                            record.race_winner_rtt_ms());
    }
  }

  note(record.outcome == TrialOutcome::kDegraded ? "measure.trial.outcome.degraded"
                                                 : "measure.trial.outcome.ok");
  if (registry_ != nullptr) {
    // Simulated latencies (pure functions of the task), so these histograms
    // are as deterministic as the records themselves. First-replica CRM is
    // the §5 convention; HRMs cover every assimilated replica measured.
    if (!record.cr.empty()) {
      registry_->observe_ms("measure.trial.crm_ms", record.first_crm());
    }
    for (const auto& hop : record.hops) {
      for (const auto& hr : hop.hr) {
        registry_->observe_ms("measure.trial.hrm_ms", hr.rtt_ms);
      }
    }
  }
  return record;
}

std::vector<CampaignTask> TrialRunner::campaign_tasks(int trials_per_client,
                                                      double spacing_hours) const {
  const std::size_t clients = testbed_->clients().size();
  const std::size_t providers = testbed_->provider_count();
  std::vector<CampaignTask> tasks;
  tasks.reserve(clients * providers * static_cast<std::size_t>(trials_per_client));
  // Schedule jitter comes from its own derived stream, so the task list —
  // built serially here — is identical no matter how it is later executed.
  net::Rng schedule_rng = net::Rng::derive(seed_, kScheduleStream);
  for (int t = 0; t < trials_per_client; ++t) {
    // Trials are spaced 1-2 hours apart (paper §3.1.2) with jitter.
    const double when =
        t * spacing_hours + schedule_rng.uniform_real(0.0, spacing_hours / 2);
    for (std::size_t c = 0; c < clients; ++c) {
      for (std::size_t p = 0; p < providers; ++p) {
        tasks.push_back({c, p, static_cast<std::uint64_t>(t), when, std::nullopt});
      }
    }
  }
  return tasks;
}

std::vector<CampaignTask> TrialRunner::sporadic_tasks(
    int trials_per_client, const SporadicScheduleConfig& schedule) const {
  const std::size_t clients = testbed_->clients().size();
  const std::size_t providers = testbed_->provider_count();
  std::vector<CampaignTask> tasks;
  tasks.reserve(clients * providers * static_cast<std::size_t>(trials_per_client));
  for (std::size_t c = 0; c < clients; ++c) {
    // Each client is online at its own unpredictable times, drawn from a
    // per-client derived stream.
    net::Rng schedule_rng = net::Rng::derive(seed_, kScheduleStream, c + 1);
    const auto times = sporadic_trial_times(trials_per_client, schedule_rng, 0.0, schedule);
    for (std::size_t p = 0; p < providers; ++p) {
      for (std::size_t t = 0; t < times.size(); ++t) {
        tasks.push_back({c, p, static_cast<std::uint64_t>(t), times[t], std::nullopt});
      }
    }
  }
  return tasks;
}

std::vector<TrialRecord> TrialRunner::run_campaign(int trials_per_client,
                                                   double spacing_hours) {
  const auto tasks = campaign_tasks(trials_per_client, spacing_hours);
  std::vector<TrialRecord> records;
  records.reserve(tasks.size());
  for (const auto& task : tasks) records.push_back(run_task(task));
  return records;
}

std::vector<TrialRecord> TrialRunner::run_campaign_sporadic(
    int trials_per_client, const SporadicScheduleConfig& schedule) {
  const auto tasks = sporadic_tasks(trials_per_client, schedule);
  std::vector<TrialRecord> records;
  records.reserve(tasks.size());
  for (const auto& task : tasks) records.push_back(run_task(task));
  return records;
}

}  // namespace drongo::measure
