#include "measure/stats.hpp"

#include <algorithm>
#include <cmath>

#include "net/rng.hpp"

namespace drongo::measure {

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - m) * (v - m);
  return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double median(std::vector<double> values) { return percentile(std::move(values), 50.0); }

BoxStats box_stats(std::vector<double> values) {
  BoxStats box;
  box.count = values.size();
  if (values.empty()) return box;
  std::sort(values.begin(), values.end());
  box.p25 = percentile(values, 25.0);
  box.median = percentile(values, 50.0);
  box.p75 = percentile(values, 75.0);
  const double iqr = box.p75 - box.p25;
  const double lo_fence = box.p25 - 1.5 * iqr;
  const double hi_fence = box.p75 + 1.5 * iqr;
  box.whisker_low = box.p25;
  box.whisker_high = box.p75;
  for (double v : values) {
    if (v >= lo_fence) {
      box.whisker_low = v;
      break;
    }
  }
  for (auto it = values.rbegin(); it != values.rend(); ++it) {
    if (*it <= hi_fence) {
      box.whisker_high = *it;
      break;
    }
  }
  return box;
}

Interval bootstrap_mean_ci(const std::vector<double>& values, double confidence,
                           int resamples, std::uint64_t seed) {
  if (values.size() < 2) {
    const double m = mean(values);
    return {m, m};
  }
  net::Rng rng(seed);
  std::vector<double> means;
  means.reserve(static_cast<std::size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      sum += values[rng.index(values.size())];
    }
    means.push_back(sum / static_cast<double>(values.size()));
  }
  const double tail = (1.0 - confidence) / 2.0 * 100.0;
  return {percentile(means, tail), percentile(means, 100.0 - tail)};
}

std::vector<CdfPoint> cdf(std::vector<double> values) {
  std::vector<CdfPoint> out;
  if (values.empty()) return out;
  std::sort(values.begin(), values.end());
  const double n = static_cast<double>(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    // Collapse runs of equal values to their final (highest) fraction.
    if (i + 1 < values.size() && values[i + 1] == values[i]) continue;
    out.push_back({values[i], static_cast<double>(i + 1) / n});
  }
  return out;
}

double cdf_at(const std::vector<double>& values, double threshold) {
  if (values.empty()) return 0.0;
  std::size_t count = 0;
  for (double v : values) {
    if (v <= threshold) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(values.size());
}

}  // namespace drongo::measure
