// Usable-hop filtering (paper §3.1).
#pragma once

#include <vector>

#include "topology/world.hpp"

namespace drongo::measure {

/// The three usability conditions of §3.1 — a hop must
///  (i)   belong to a different /16 than the client,
///  (ii)  have a different (registrable) domain than the client,
///  (iii) belong to a different ASN than the client —
/// applied with the paper's prefix rule: hops failing the conditions are
/// filtered only at the BEGINNING of the route; once one hop passes, the
/// remainder of the route is kept. Private, unresponsive, and otherwise
/// unidentifiable hops are never usable (their ECS answers are generic).
struct HopFilterConfig {
  bool require_different_slash16 = true;
  bool require_different_domain = true;
  bool require_different_asn = true;
  /// Apply the "stop filtering after the first usable hop" rule. Disabling
  /// it (filter every hop) is the stricter ablation variant.
  bool stop_after_first_usable = true;
};

/// Per-hop usability flags for a traceroute, relative to the client.
std::vector<bool> usable_hops(const topology::World& world, net::Ipv4Addr client,
                              const std::vector<topology::TracerouteHop>& hops,
                              const HopFilterConfig& config = {});

}  // namespace drongo::measure
