// Usable-hop filtering (paper §3.1).
#pragma once

#include <string>
#include <vector>

#include "net/ipaddr.hpp"
#include "topology/world.hpp"

namespace drongo::measure {

/// The three usability conditions of §3.1 — a hop must
///  (i)   belong to a different /16 than the client,
///  (ii)  have a different (registrable) domain than the client,
///  (iii) belong to a different ASN than the client —
/// applied with the paper's prefix rule: hops failing the conditions are
/// filtered only at the BEGINNING of the route; once one hop passes, the
/// remainder of the route is kept. Private, unresponsive, and otherwise
/// unidentifiable hops are never usable (their ECS answers are generic).
struct HopFilterConfig {
  bool require_different_slash16 = true;
  bool require_different_domain = true;
  bool require_different_asn = true;
  /// Apply the "stop filtering after the first usable hop" rule. Disabling
  /// it (filter every hop) is the stricter ablation variant.
  bool stop_after_first_usable = true;
};

/// A traceroute hop in either address family — the dual-stack view the
/// filter core works on. v4 traceroutes are adapted into this shape by the
/// legacy overload below.
struct IpHop {
  net::IpAddr ip;
  std::string rdns;
  net::Asn asn;
  bool is_private = false;
  bool responded = true;
};

/// Per-hop usability flags for a traceroute, relative to the client.
/// Family-aware: condition (i)'s "/16" is the client's /16 for v4 and /32
/// for v6 (the conventional per-site allocation); a hop in the other family
/// trivially satisfies it. Bogon space (both families, from the constexpr
/// range tables in net/bogon.hpp) is never usable.
std::vector<bool> usable_hops(const topology::World& world, const net::IpAddr& client,
                              const std::vector<IpHop>& hops,
                              const HopFilterConfig& config = {});

/// v4 adapter preserving the original signature: wraps each TracerouteHop
/// in an IpHop view and runs the family-aware core.
std::vector<bool> usable_hops(const topology::World& world, net::Ipv4Addr client,
                              const std::vector<topology::TracerouteHop>& hops,
                              const HopFilterConfig& config = {});

}  // namespace drongo::measure
