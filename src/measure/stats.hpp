// Summary statistics used by the experiment analyses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace drongo::measure {

/// Arithmetic mean; 0 for empty input.
double mean(const std::vector<double>& values);

/// Sample standard deviation; 0 for fewer than two values.
double stddev(const std::vector<double>& values);

/// Linear-interpolated percentile, p in [0,100]. Sorts a copy. 0 for empty.
double percentile(std::vector<double> values, double p);

/// Median (50th percentile).
double median(std::vector<double> values);

/// Five-number summary for a box-and-whisker plot, matching the paper's
/// Fig. 6/11 convention: box at the quartiles, whiskers at the last data
/// point within 1.5 IQR of the box.
struct BoxStats {
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double whisker_low = 0.0;
  double whisker_high = 0.0;
  std::size_t count = 0;
};

BoxStats box_stats(std::vector<double> values);

/// A two-sided confidence interval.
struct Interval {
  double low = 0.0;
  double high = 0.0;
};

/// Percentile-bootstrap confidence interval for the mean: resample with
/// replacement `resamples` times and take the (1-confidence)/2 tails.
/// Deterministic for a given seed. Degenerates to [mean, mean] for fewer
/// than two values.
Interval bootstrap_mean_ci(const std::vector<double>& values, double confidence = 0.95,
                           int resamples = 1000, std::uint64_t seed = 1);

/// One point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;
  double fraction = 0.0;  ///< P(X <= value)
};

/// Empirical CDF evaluated at every distinct data value.
std::vector<CdfPoint> cdf(std::vector<double> values);

/// Fraction of X <= threshold.
double cdf_at(const std::vector<double>& values, double threshold);

}  // namespace drongo::measure
