// Wall-clock sampling shim — the ONLY file allowed to touch real clocks.
#pragma once

#include <chrono>
#include <cstdint>

namespace drongo::net {

/// Monotonic stopwatch for *reporting* elapsed wall-clock time (bench
/// timings, progress lines). Nothing behavioural may depend on it: every
/// simulated timestamp flows from campaign schedules and derived `Rng`
/// streams so runs stay byte-identical across machines and thread counts.
///
/// This header/impl pair is the allowlisted clock shim for `drongo_lint`'s
/// `nondeterminism` rule — `std::chrono::*_clock::now()` anywhere else in
/// src/, tools/, or bench/ is an error-severity finding. Route new timing
/// needs through here so the ban stays enforceable.
class Stopwatch {
 public:
  /// Starts timing at construction.
  Stopwatch();

  /// Restarts the stopwatch.
  void reset();

  /// Elapsed wall-clock seconds since construction or the last reset().
  [[nodiscard]] double seconds() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Monotonic milliseconds since an arbitrary epoch, for *operational*
/// deadlines only: event-loop timers, connection idle timeouts, drain
/// grace periods. Like Stopwatch, nothing simulated may depend on it —
/// simulated time still flows from campaign schedules. Lives here so the
/// nondeterminism lint ban on raw clock reads stays enforceable.
[[nodiscard]] std::uint64_t steady_now_ms();

}  // namespace drongo::net
