#include "net/lpm.hpp"

#include <algorithm>
#include <string>

#include "net/error.hpp"

namespace drongo::net::detail {

namespace {

constexpr std::uint64_t word_mask(int length) {
  return length <= 0 ? 0
         : length >= 64 ? ~std::uint64_t{0}
                        : ~std::uint64_t{0} << (64 - length);
}

constexpr LpmBits canonical(LpmBits bits, int length) {
  return {bits.hi & word_mask(length), bits.lo & word_mask(length - 64)};
}

/// Bit `i` of `bits`, counting from the most significant (i in [0, 128)).
constexpr int bit_at(LpmBits bits, int i) {
  return static_cast<int>(
      i < 64 ? (bits.hi >> (63 - i)) & 1U : (bits.lo >> (127 - i)) & 1U);
}

constexpr int clz64(std::uint64_t value) {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_clzll(value);
#else
  int count = 0;
  for (std::uint64_t probe = std::uint64_t{1} << 63; probe != 0 && (value & probe) == 0;
       probe >>= 1) {
    ++count;
  }
  return count;
#endif
}

/// Length of the common prefix of `a` and `b`, capped at `cap`.
int common_prefix_length(LpmBits a, LpmBits b, int cap) {
  const std::uint64_t diff_hi = a.hi ^ b.hi;
  if (diff_hi != 0) return std::min(cap, clz64(diff_hi));
  const std::uint64_t diff_lo = a.lo ^ b.lo;
  if (diff_lo != 0) return std::min(cap, 64 + clz64(diff_lo));
  return cap;
}

void check_length(int length) {
  if (length < 0 || length > LpmCore::kMaxBits) {
    throw InvalidArgument("prefix length out of range: " + std::to_string(length));
  }
}

}  // namespace

std::uint32_t LpmCore::find(LpmBits bits, int length,
                            std::uint64_t* visited) const {
  check_length(length);
  bits = canonical(bits, length);
  std::int32_t cur = root_;
  while (cur != kNil) {
    if (visited != nullptr) ++*visited;
    const Node& node = nodes_[static_cast<std::size_t>(cur)];
    if (node.length > length ||
        canonical(bits, node.length) != node.bits) {
      return kNoSlot;
    }
    if (node.length == length) {
      return bits == node.bits ? node.slot : kNoSlot;
    }
    cur = node.child[bit_at(bits, node.length)];
  }
  return kNoSlot;
}

std::uint32_t LpmCore::insert(LpmBits bits, int length, std::uint32_t slot) {
  check_length(length);
  bits = canonical(bits, length);
  if (root_ == kNil) {
    root_ = new_node(bits, length);
    nodes_[static_cast<std::size_t>(root_)].slot = slot;
    ++size_;
    return kNoSlot;
  }
  std::int32_t cur = root_;
  while (true) {
    Node& node = nodes_[static_cast<std::size_t>(cur)];
    const int cap = std::min(length, static_cast<int>(node.length));
    const int cpl = common_prefix_length(bits, node.bits, cap);
    if (cpl < static_cast<int>(node.length)) {
      // The new prefix diverges from (or is a proper prefix of) this node's
      // prefix: split the edge above it at `cpl`.
      const std::int32_t split = new_node(canonical(bits, cpl), cpl);
      Node& split_node = nodes_[static_cast<std::size_t>(split)];
      Node& cur_node = nodes_[static_cast<std::size_t>(cur)];  // re-fetch: new_node may reallocate
      split_node.parent = cur_node.parent;
      if (cur_node.parent == kNil) {
        root_ = split;
      } else {
        replace_child(cur_node.parent, cur, split);
      }
      split_node.child[bit_at(cur_node.bits, cpl)] = cur;
      cur_node.parent = split;
      if (cpl == length) {
        // The new prefix IS the split point.
        split_node.slot = slot;
      } else {
        const std::int32_t leaf = new_node(bits, length);
        Node& split_again = nodes_[static_cast<std::size_t>(split)];
        Node& leaf_node = nodes_[static_cast<std::size_t>(leaf)];
        leaf_node.slot = slot;
        leaf_node.parent = split;
        split_again.child[bit_at(bits, cpl)] = leaf;
      }
      ++size_;
      return kNoSlot;
    }
    // node.length <= length and node's prefix contains the new one.
    if (static_cast<int>(node.length) == length) {
      if (node.slot != kNoSlot) return node.slot;
      node.slot = slot;
      ++size_;
      return kNoSlot;
    }
    const int branch = bit_at(bits, node.length);
    if (node.child[branch] == kNil) {
      const std::int32_t leaf = new_node(bits, length);
      Node& parent_node = nodes_[static_cast<std::size_t>(cur)];
      Node& leaf_node = nodes_[static_cast<std::size_t>(leaf)];
      leaf_node.slot = slot;
      leaf_node.parent = cur;
      parent_node.child[branch] = leaf;
      ++size_;
      return kNoSlot;
    }
    cur = node.child[branch];
  }
}

std::uint32_t LpmCore::erase(LpmBits bits, int length) {
  check_length(length);
  bits = canonical(bits, length);
  std::int32_t cur = root_;
  while (cur != kNil) {
    Node& node = nodes_[static_cast<std::size_t>(cur)];
    if (node.length > length || canonical(bits, node.length) != node.bits) {
      return kNoSlot;
    }
    if (node.length == length) {
      if (bits != node.bits || node.slot == kNoSlot) return kNoSlot;
      const std::uint32_t freed = node.slot;
      node.slot = kNoSlot;
      --size_;
      compress(cur);
      return freed;
    }
    cur = node.child[bit_at(bits, node.length)];
  }
  return kNoSlot;
}

std::optional<LpmCore::Match> LpmCore::longest_match(LpmBits bits, int max_length,
                                                     std::uint64_t* visited) const {
  check_length(max_length);
  std::optional<Match> best;
  std::int32_t cur = root_;
  while (cur != kNil) {
    if (visited != nullptr) ++*visited;
    const Node& node = nodes_[static_cast<std::size_t>(cur)];
    if (node.length > max_length || canonical(bits, node.length) != node.bits) {
      break;
    }
    if (node.slot != kNoSlot) {
      best = Match{node.bits, node.length, node.slot};
    }
    if (node.length == kMaxBits) break;
    cur = node.child[bit_at(bits, node.length)];
  }
  return best;
}

void LpmCore::match_chain(LpmBits bits, int max_length, std::vector<Match>& out,
                          std::uint64_t* visited) const {
  check_length(max_length);
  const std::size_t first = out.size();
  std::int32_t cur = root_;
  while (cur != kNil) {
    if (visited != nullptr) ++*visited;
    const Node& node = nodes_[static_cast<std::size_t>(cur)];
    if (node.length > max_length || canonical(bits, node.length) != node.bits) {
      break;
    }
    if (node.slot != kNoSlot) {
      out.push_back(Match{node.bits, node.length, node.slot});
    }
    if (node.length == kMaxBits) break;
    cur = node.child[bit_at(bits, node.length)];
  }
  std::reverse(out.begin() + static_cast<std::ptrdiff_t>(first), out.end());
}

void LpmCore::walk(const std::function<void(LpmBits, int, std::uint32_t)>& fn) const {
  // Iterative pre-order with an explicit stack (depth is bounded by 129 but
  // the iterative form keeps walk() usable from any stack budget). Pushing
  // the one-branch before the zero-branch pops zero first, giving ascending
  // network order with shorter prefixes ahead of their subtrees.
  std::vector<std::int32_t> stack;
  if (root_ != kNil) stack.push_back(root_);
  while (!stack.empty()) {
    const std::int32_t cur = stack.back();
    stack.pop_back();
    const Node& node = nodes_[static_cast<std::size_t>(cur)];
    if (node.slot != kNoSlot) fn(node.bits, node.length, node.slot);
    if (node.child[1] != kNil) stack.push_back(node.child[1]);
    if (node.child[0] != kNil) stack.push_back(node.child[0]);
  }
}

std::size_t LpmCore::node_count() const { return nodes_.size() - free_.size(); }

void LpmCore::clear() {
  nodes_.clear();
  free_.clear();
  root_ = kNil;
  size_ = 0;
}

std::int32_t LpmCore::new_node(LpmBits bits, int length) {
  std::int32_t index;
  if (!free_.empty()) {
    index = free_.back();
    free_.pop_back();
  } else {
    index = static_cast<std::int32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  Node& node = nodes_[static_cast<std::size_t>(index)];
  node = Node{};
  node.bits = bits;
  node.length = static_cast<std::uint8_t>(length);
  node.in_use = true;
  return index;
}

void LpmCore::free_node(std::int32_t index) {
  nodes_[static_cast<std::size_t>(index)].in_use = false;
  free_.push_back(index);
}

void LpmCore::replace_child(std::int32_t parent, std::int32_t was, std::int32_t now) {
  Node& node = nodes_[static_cast<std::size_t>(parent)];
  if (node.child[0] == was) {
    node.child[0] = now;
  } else {
    node.child[1] = now;
  }
}

void LpmCore::compress(std::int32_t index) {
  // Restores the path-compression invariant at `index` after its slot was
  // cleared, then re-checks the parent (which may itself have become a
  // slot-less single-child node).
  while (index != kNil) {
    Node& node = nodes_[static_cast<std::size_t>(index)];
    if (node.slot != kNoSlot) return;
    const int child_count = (node.child[0] != kNil ? 1 : 0) + (node.child[1] != kNil ? 1 : 0);
    if (child_count >= 2) return;
    const std::int32_t parent = node.parent;
    if (child_count == 0) {
      if (parent == kNil) {
        root_ = kNil;
      } else {
        replace_child(parent, index, kNil);
      }
      free_node(index);
    } else {
      const std::int32_t child = node.child[0] != kNil ? node.child[0] : node.child[1];
      nodes_[static_cast<std::size_t>(child)].parent = parent;
      if (parent == kNil) {
        root_ = child;
      } else {
        replace_child(parent, index, child);
      }
      free_node(index);
      return;  // the spliced child is intact; only the removal above matters upward
    }
    index = parent;
  }
}

}  // namespace drongo::net::detail
