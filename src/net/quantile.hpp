// Streaming quantile estimation for rolling latency thresholds.
//
// Hedged exchanges (dns::HedgedTransport) need "the p95 of everything this
// channel has seen so far" answered in O(1) per observation, from many
// threads at once, without ever making the answer depend on which thread
// observed first. A sorted-sample percentile cannot do that; this fixed
// log-spaced bucket sketch can: observations only increment relaxed atomic
// counters (plus CAS min/max), every merge of per-thread effects is a
// commutative integer sum, so the final state after N observations is the
// same for any interleaving — the same property obs::Registry histograms
// guarantee, available below the obs layer where dns transports live.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace drongo::net {

/// A fixed-bucket streaming quantile sketch over positive millisecond
/// values. Buckets are geometrically spaced between `min_value_ms` and
/// `max_value_ms` (values outside are clamped into the edge buckets), so
/// relative resolution is constant across the range.
///
/// quantile() uses the same rank convention as measure::percentile (linear
/// interpolation at rank p/100 * (n-1)), with values assumed evenly spread
/// within their bucket and the extreme buckets clamped to the observed
/// min/max — agreement with the exact sorted-sample percentile is bounded
/// by one bucket width.
///
/// Thread-safety: observe() may be called concurrently; it touches only
/// relaxed atomics, so the post-quiescence state is independent of
/// interleaving. quantile()/count() require quiescence for an exact answer
/// (mid-flight reads are a consistent-enough snapshot for a threshold).
class StreamingQuantile {
 public:
  /// `buckets_per_decade` controls resolution (default: ~5% relative error).
  explicit StreamingQuantile(double min_value_ms = 0.05, double max_value_ms = 60000.0,
                             int buckets_per_decade = 48);

  StreamingQuantile(const StreamingQuantile&) = delete;
  StreamingQuantile& operator=(const StreamingQuantile&) = delete;

  /// Records one observation. Negative values clamp to zero.
  void observe(double value_ms);

  /// Estimated percentile, p in [0, 100]; 0 when nothing was observed.
  [[nodiscard]] double quantile(double p) const;

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  /// Smallest / largest observed value (0 when empty).
  [[nodiscard]] double observed_min() const;
  [[nodiscard]] double observed_max() const;

  /// Bucket upper bounds (ascending; one fewer than the bucket count — the
  /// final bucket is the +inf overflow). Exposed for tests.
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }

 private:
  /// Index of the bucket holding `value_ms`.
  [[nodiscard]] std::size_t bucket_of(double value_ms) const;

  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  /// Observed extremes as CAS-updated bit patterns of doubles: min/max are
  /// commutative, so concurrent updates land on the same final value.
  std::atomic<std::uint64_t> min_bits_;
  std::atomic<std::uint64_t> max_bits_;
};

}  // namespace drongo::net
