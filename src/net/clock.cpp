#include "net/clock.hpp"

// This translation unit is the allowlisted clock shim: drongo_lint's
// `nondeterminism` rule skips src/net/clock.* by construction, so the raw
// steady_clock reads below are legal here and nowhere else.

namespace drongo::net {

Stopwatch::Stopwatch() : start_(std::chrono::steady_clock::now()) {}

void Stopwatch::reset() { start_ = std::chrono::steady_clock::now(); }

double Stopwatch::seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
}

std::uint64_t steady_now_ms() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

}  // namespace drongo::net
