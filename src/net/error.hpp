// Error types shared by all drongo libraries.
#pragma once

#include <stdexcept>
#include <string>

namespace drongo::net {

/// Base class for all errors raised by the drongo libraries.
///
/// Every library-specific error derives from this so callers can catch one
/// type at an API boundary. Errors are exceptional: malformed wire data, bad
/// configuration, violated preconditions — not ordinary control flow.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when parsing text or wire-format data fails.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// Raised when a bounds-checked read or write would overrun a buffer.
class BoundsError : public Error {
 public:
  explicit BoundsError(const std::string& what) : Error("bounds error: " + what) {}
};

/// Raised when an API is used with arguments that violate its contract.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error("invalid argument: " + what) {}
};

}  // namespace drongo::net
