// Error types shared by all drongo libraries.
#pragma once

#include <stdexcept>
#include <string>

namespace drongo::net {

/// Base class for all errors raised by the drongo libraries.
///
/// Every library-specific error derives from this so callers can catch one
/// type at an API boundary. Errors are exceptional: malformed wire data, bad
/// configuration, violated preconditions — not ordinary control flow.
///
/// The hierarchy splits into two branches so callers on the resolution path
/// can make retry decisions by type alone:
///
///   Error
///   ├── TransientError        retrying may succeed
///   │   ├── TimeoutError      a query or reply was lost / arrived too late
///   │   └── UnreachableError  the peer is down or unroutable right now
///   └── PermanentError        retrying the same operation cannot succeed
///       ├── ParseError
///       ├── BoundsError
///       └── InvalidArgument
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A failure that a retry (possibly after a backoff) may resolve: packet
/// loss, slow or flaky peers, servers restarting. Resolvers retry these
/// within their budget; campaign layers record them as per-trial outcomes.
class TransientError : public Error {
 public:
  explicit TransientError(const std::string& what) : Error(what) {}
};

/// A query or reply was lost, or the reply arrived after the deadline.
class TimeoutError : public TransientError {
 public:
  explicit TimeoutError(const std::string& what) : TransientError("timeout: " + what) {}
};

/// The destination is down or unroutable at the moment (server outage,
/// nothing listening at the address). Distinct from TimeoutError so health
/// accounting can tell loss from dead peers.
class UnreachableError : public TransientError {
 public:
  explicit UnreachableError(const std::string& what)
      : TransientError("unreachable: " + what) {}
};

/// A failure no retry can fix: bad input, bad configuration, violated API
/// contracts. Callers should propagate these, not spend retry budget.
class PermanentError : public Error {
 public:
  explicit PermanentError(const std::string& what) : Error(what) {}
};

/// Raised when parsing text or wire-format data fails.
class ParseError : public PermanentError {
 public:
  explicit ParseError(const std::string& what) : PermanentError("parse error: " + what) {}
};

/// Raised when a bounds-checked read or write would overrun a buffer.
class BoundsError : public PermanentError {
 public:
  explicit BoundsError(const std::string& what)
      : PermanentError("bounds error: " + what) {}
};

/// Raised when an API is used with arguments that violate its contract.
class InvalidArgument : public PermanentError {
 public:
  explicit InvalidArgument(const std::string& what)
      : PermanentError("invalid argument: " + what) {}
};

}  // namespace drongo::net
