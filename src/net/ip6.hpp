// IPv6 address value type.
//
// Same philosophy as Ipv4Addr: a tiny value type with canonical text forms
// and classification predicates, no socket headers. The 128 bits live in two
// host-order words (hi = groups 0..3, lo = groups 4..7), so comparison,
// masking, and the LPM trie's bit arithmetic are plain integer ops.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "net/ip.hpp"

namespace drongo::net {

class Ipv6Addr {
 public:
  /// The unspecified address `::`.
  constexpr Ipv6Addr() = default;

  /// From the two big-endian 64-bit halves (host-order words).
  constexpr Ipv6Addr(std::uint64_t hi, std::uint64_t lo) : hi_(hi), lo_(lo) {}

  /// From 16 network-order bytes.
  static constexpr Ipv6Addr from_bytes(const std::array<std::uint8_t, 16>& b) {
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;
    for (int i = 0; i < 8; ++i) hi = hi << 8 | b[static_cast<std::size_t>(i)];
    for (int i = 8; i < 16; ++i) lo = lo << 8 | b[static_cast<std::size_t>(i)];
    return {hi, lo};
  }

  /// The v4-mapped form `::ffff:a.b.c.d` (RFC 4291 §2.5.5.2).
  static constexpr Ipv6Addr v4_mapped(Ipv4Addr v4) {
    return {0, (std::uint64_t{0xFFFF} << 32) | v4.to_uint()};
  }

  /// Parses RFC 4291 text (full, `::`-compressed, optional dotted-quad
  /// tail). Returns nullopt on malformed input.
  static std::optional<Ipv6Addr> parse(std::string_view text);

  /// Like parse() but throws ParseError.
  static Ipv6Addr must_parse(std::string_view text);

  [[nodiscard]] constexpr std::uint64_t hi() const { return hi_; }
  [[nodiscard]] constexpr std::uint64_t lo() const { return lo_; }

  /// Byte `i` (0 = most significant) of the network-order representation.
  [[nodiscard]] constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(
        i < 8 ? hi_ >> (8 * (7 - i)) : lo_ >> (8 * (15 - i)));
  }

  /// 16-bit group `i` (0..7) as written in colon-hex text.
  [[nodiscard]] constexpr std::uint16_t group(int i) const {
    return static_cast<std::uint16_t>(
        i < 4 ? hi_ >> (16 * (3 - i)) : lo_ >> (16 * (7 - i)));
  }

  [[nodiscard]] constexpr std::array<std::uint8_t, 16> to_bytes() const {
    std::array<std::uint8_t, 16> b{};
    for (int i = 0; i < 16; ++i) b[static_cast<std::size_t>(i)] = octet(i);
    return b;
  }

  [[nodiscard]] constexpr bool is_unspecified() const { return hi_ == 0 && lo_ == 0; }
  [[nodiscard]] constexpr bool is_loopback() const { return hi_ == 0 && lo_ == 1; }
  /// `::ffff:0:0/96` (RFC 4291 §2.5.5.2).
  [[nodiscard]] constexpr bool is_v4_mapped() const {
    return hi_ == 0 && (lo_ >> 32) == 0xFFFF;
  }
  /// The embedded IPv4 address of a v4-mapped address (callers check
  /// is_v4_mapped() first; for other addresses this is just the low word).
  [[nodiscard]] constexpr Ipv4Addr mapped_v4() const {
    return Ipv4Addr(static_cast<std::uint32_t>(lo_));
  }
  /// `fe80::/10`.
  [[nodiscard]] constexpr bool is_link_local() const { return (hi_ >> 54) == 0x3FA; }
  /// `fc00::/7` (RFC 4193 unique local).
  [[nodiscard]] constexpr bool is_unique_local() const { return (hi_ >> 57) == 0x7E; }
  /// `ff00::/8`.
  [[nodiscard]] constexpr bool is_multicast() const { return (hi_ >> 56) == 0xFF; }
  /// `2001:db8::/32` (RFC 3849 documentation space — where drongo's
  /// simulated dual-stack world lives, mirroring the v4 plan's use of the
  /// 198.18.0.0/15 benchmark range).
  [[nodiscard]] constexpr bool is_documentation() const {
    return (hi_ >> 32) == 0x20010DB8;
  }

  /// RFC 5952 canonical text (lowercase, longest zero run compressed,
  /// v4-mapped printed with a dotted-quad tail).
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Ipv6Addr&, const Ipv6Addr&) = default;

 private:
  std::uint64_t hi_ = 0;
  std::uint64_t lo_ = 0;
};

}  // namespace drongo::net

template <>
struct std::hash<drongo::net::Ipv6Addr> {
  std::size_t operator()(const drongo::net::Ipv6Addr& a) const noexcept {
    const std::uint64_t h = a.hi() * 0x9E3779B97F4A7C15ULL;
    return static_cast<std::size_t>(h ^ (a.lo() + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2)));
  }
};
