#include "net/strings.hpp"

#include <algorithm>
#include <cctype>

namespace drongo::net {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool domain_has_suffix(std::string_view name, std::string_view suffix) {
  if (suffix.empty()) return true;
  std::string n = to_lower(name);
  std::string s = to_lower(suffix);
  if (n == s) return true;
  if (n.size() <= s.size()) return false;
  return n.ends_with(s) && n[n.size() - s.size() - 1] == '.';
}

std::string registrable_domain(std::string_view name) {
  auto labels = split(name, '.');
  // Drop a trailing empty label from a fully-qualified "name." form.
  if (!labels.empty() && labels.back().empty()) labels.pop_back();
  if (labels.size() <= 2) return to_lower(name);
  return to_lower(labels[labels.size() - 2] + "." + labels[labels.size() - 1]);
}

}  // namespace drongo::net
