// Small string helpers shared across libraries.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace drongo::net {

/// Splits on a single character; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char sep);

/// ASCII lowercase copy (DNS names compare case-insensitively).
std::string to_lower(std::string_view text);

/// True when `name` equals `suffix` or ends with "." + suffix, compared
/// case-insensitively. This is the "same domain" test used by the hop filter:
/// e.g. "r1.isp.example" is under suffix "isp.example".
bool domain_has_suffix(std::string_view name, std::string_view suffix);

/// Registrable-domain heuristic: last two labels of a dotted name
/// ("r7.core.att.net" -> "att.net"). Used to compare hop vs client "domain"
/// per the paper's hop filter; our simulated reverse-DNS names have
/// two-label operator domains, so the heuristic is exact here.
std::string registrable_domain(std::string_view name);

}  // namespace drongo::net
