// IPv4 CIDR prefix value type.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "net/ip.hpp"

namespace drongo::net {

/// An IPv4 CIDR prefix: a network address plus a prefix length (0..32).
///
/// The stored address is always canonical — host bits are cleared on
/// construction — so two prefixes covering the same network compare equal.
/// This is the unit of "subnet" throughout drongo: ECS scopes, hop subnets,
/// CDN mapping granularity, and assimilation targets are all `Prefix`es.
class Prefix {
 public:
  /// The default prefix 0.0.0.0/0 (covers everything).
  constexpr Prefix() = default;

  /// Builds a canonical prefix from any address inside the network.
  /// Throws InvalidArgument if `length > 32` (checked in the .cpp).
  Prefix(Ipv4Addr addr, int length);

  /// Parses "a.b.c.d/len" text. Returns nullopt on malformed input.
  static std::optional<Prefix> parse(std::string_view text);

  /// Like parse() but throws ParseError.
  static Prefix must_parse(std::string_view text);

  /// Network (lowest) address of the prefix.
  [[nodiscard]] constexpr Ipv4Addr network() const { return network_; }

  /// Prefix length in bits.
  [[nodiscard]] constexpr int length() const { return length_; }

  /// Netmask as an address (e.g. /24 -> 255.255.255.0).
  [[nodiscard]] constexpr Ipv4Addr netmask() const { return Ipv4Addr(mask(length_)); }

  /// Number of addresses covered (2^(32-length)), saturating at 2^32-1 for /0.
  [[nodiscard]] std::uint64_t size() const;

  /// True when `addr` falls inside this prefix.
  [[nodiscard]] constexpr bool contains(Ipv4Addr addr) const {
    return (addr.to_uint() & mask(length_)) == network_.to_uint();
  }

  /// True when `other` is fully contained in this prefix.
  [[nodiscard]] constexpr bool contains(const Prefix& other) const {
    return other.length_ >= length_ && contains(other.network_);
  }

  /// The /`new_length` prefix containing this one's network address.
  /// Truncation to a shorter length widens the prefix (this is the RFC 7871
  /// source-prefix truncation operation: a client /32 becomes a /24).
  [[nodiscard]] Prefix truncated(int new_length) const;

  /// The address at `offset` from the network address. Throws BoundsError if
  /// the offset runs past the prefix.
  [[nodiscard]] Ipv4Addr at(std::uint64_t offset) const;

  /// "a.b.c.d/len" form.
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  static constexpr std::uint32_t mask(int length) {
    return length == 0 ? 0U : ~std::uint32_t{0} << (32 - length);
  }

  Ipv4Addr network_{};
  int length_ = 0;
};

}  // namespace drongo::net

template <>
struct std::hash<drongo::net::Prefix> {
  std::size_t operator()(const drongo::net::Prefix& p) const noexcept {
    std::size_t h = std::hash<drongo::net::Ipv4Addr>{}(p.network());
    return h ^ (static_cast<std::size_t>(p.length()) * 0xFF51AFD7ED558CCDULL);
  }
};
