// Dual-stack address and prefix value types.
//
// `IpAddr`/`IpPrefix` are the compact family-tagged counterparts of
// Ipv4Addr/Prefix: one word of family plus 128 bits of address, with v4
// stored internally in v4-mapped form so comparison and masking are shared
// integer ops. Both convert implicitly FROM the v4 types — existing v4 call
// sites keep compiling as the dual-stack plumbing replaces `Prefix`
// parameters — but conversion back to v4 is always explicit and checked.
//
// Canonicalization follows the nano-node subnet-mapping idiom: a v4-mapped
// v6 address (`::ffff:a.b.c.d`) canonicalizes to family v4, and the default
// ECS scope is /24 for v4 and /56 for v6.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "net/ip.hpp"
#include "net/ip6.hpp"
#include "net/prefix.hpp"

namespace drongo::net {

/// Address family tag. The enumerator values deliberately match the IANA
/// address-family numbers used on the ECS wire (RFC 7871 §6).
enum class IpFamily : std::uint8_t { kV4 = 1, kV6 = 2 };

[[nodiscard]] constexpr int family_bits(IpFamily family) {
  return family == IpFamily::kV4 ? 32 : 128;
}

/// Default ECS announce scope per family (/24 v4, /56 v6), per the
/// nano-node mapping idiom and RFC 7871 operational practice.
[[nodiscard]] constexpr int default_ecs_scope(IpFamily family) {
  return family == IpFamily::kV4 ? 24 : 56;
}

/// A dual-stack address: family tag + 128 bits (v4 held v4-mapped).
class IpAddr {
 public:
  /// Defaults to IPv4 0.0.0.0 — the same "generic" value net::Prefix()
  /// defaults to, so zero-scope semantics carry over unchanged.
  constexpr IpAddr() : bits_(Ipv6Addr::v4_mapped(Ipv4Addr{})) {}

  // NOLINTNEXTLINE(google-explicit-constructor): v4 call sites convert freely.
  constexpr IpAddr(Ipv4Addr v4) : bits_(Ipv6Addr::v4_mapped(v4)) {}

  // NOLINTNEXTLINE(google-explicit-constructor)
  constexpr IpAddr(const Ipv6Addr& v6) : family_(IpFamily::kV6), bits_(v6) {}

  [[nodiscard]] constexpr IpFamily family() const { return family_; }
  [[nodiscard]] constexpr bool is_v4() const { return family_ == IpFamily::kV4; }
  [[nodiscard]] constexpr bool is_v6() const { return family_ == IpFamily::kV6; }

  /// The v4 address; throws InvalidArgument when family is v6 (a programming
  /// error — wire-facing code goes through checked conversions instead).
  [[nodiscard]] Ipv4Addr v4() const;

  /// The v6 address; for a v4 IpAddr this is the v4-mapped form.
  [[nodiscard]] constexpr Ipv6Addr v6() const { return bits_; }

  /// Folds a v4-mapped v6 address into family v4; identity otherwise.
  [[nodiscard]] constexpr IpAddr canonical() const {
    if (family_ == IpFamily::kV6 && bits_.is_v4_mapped()) {
      return IpAddr(bits_.mapped_v4());
    }
    return *this;
  }

  [[nodiscard]] constexpr bool is_unspecified() const {
    return is_v4() ? bits_.mapped_v4().is_unspecified() : bits_.is_unspecified();
  }
  [[nodiscard]] constexpr bool is_loopback() const {
    return is_v4() ? bits_.mapped_v4().is_loopback() : bits_.is_loopback();
  }

  /// Parses either dotted-quad (family v4) or colon-hex (family v6) text.
  static std::optional<IpAddr> parse(std::string_view text);

  /// Like parse() but throws ParseError.
  static IpAddr must_parse(std::string_view text);

  [[nodiscard]] std::string to_string() const {
    return is_v4() ? bits_.mapped_v4().to_string() : bits_.to_string();
  }

  /// Orders by (family, address): every v4 sorts before every v6, and
  /// within a family by numeric address — IpPrefix map order depends on it.
  friend constexpr auto operator<=>(const IpAddr&, const IpAddr&) = default;

 private:
  IpFamily family_ = IpFamily::kV4;
  Ipv6Addr bits_;
};

/// A dual-stack CIDR prefix: IpAddr + length (0..32 v4, 0..128 v6), with
/// host bits cleared on construction, mirroring net::Prefix.
class IpPrefix {
 public:
  /// The default prefix: IPv4 0.0.0.0/0 — identical in meaning to
  /// net::Prefix{} so existing zero-scope call sites translate directly.
  constexpr IpPrefix() = default;

  /// Canonical prefix from any address in the network. Throws
  /// InvalidArgument when `length` is outside the family's bit width (a
  /// programming error; wire decoding validates lengths itself and throws
  /// ParseError before ever constructing one of these).
  IpPrefix(const IpAddr& addr, int length);

  // NOLINTNEXTLINE(google-explicit-constructor): v4 call sites convert freely.
  IpPrefix(const Prefix& v4) : IpPrefix(IpAddr(v4.network()), v4.length()) {}

  /// The family's zero-length "generic" prefix (::/0 or 0.0.0.0/0).
  static IpPrefix zero(IpFamily family) {
    return family == IpFamily::kV4 ? IpPrefix(IpAddr(Ipv4Addr{}), 0)
                                   : IpPrefix(IpAddr(Ipv6Addr{}), 0);
  }

  [[nodiscard]] constexpr IpFamily family() const { return network_.family(); }
  [[nodiscard]] constexpr IpAddr network() const { return network_; }
  [[nodiscard]] constexpr int length() const { return length_; }

  /// True when `addr` is the same family and falls inside this prefix.
  [[nodiscard]] bool contains(const IpAddr& addr) const;

  /// True when `other` is the same family and fully contained here.
  [[nodiscard]] bool contains(const IpPrefix& other) const {
    return other.family() == family() && other.length_ >= length_ &&
           contains(other.network_);
  }

  /// The /`new_length` prefix containing this network (RFC 7871 source
  /// truncation). Throws InvalidArgument when out of family range.
  [[nodiscard]] IpPrefix truncated(int new_length) const {
    return IpPrefix(network_, new_length);
  }

  /// The v4 view; nullopt when family is v6.
  [[nodiscard]] std::optional<Prefix> to_v4() const {
    if (family() != IpFamily::kV4) return std::nullopt;
    return Prefix(network_.v4(), length_);
  }

  /// Parses "a.b.c.d/len" or "h:h::h/len". Returns nullopt when malformed
  /// (including a length outside the family's range).
  static std::optional<IpPrefix> parse(std::string_view text);

  /// Like parse() but throws ParseError.
  static IpPrefix must_parse(std::string_view text);

  [[nodiscard]] std::string to_string() const {
    return network_.to_string() + "/" + std::to_string(length_);
  }

  /// Orders by (family, network, length) — the canonical walk order the
  /// dual-stack LPM trie reproduces (all v4 entries before all v6).
  friend constexpr auto operator<=>(const IpPrefix&, const IpPrefix&) = default;

 private:
  IpAddr network_{};
  int length_ = 0;
};

// --- Simulated-world dual-stack address plan -------------------------------
//
// The topology's address plan is IPv4 (AS i owns a /16 under 20.0.0.0/8).
// Its v6 face embeds that v4 address into documentation space 2001:db8::/32
// at bits 32..63:
//
//   20.1.2.3  ->  2001:db8:1401:203::
//
// so a v4 /n corresponds to a v6 /(n+32): the default v6 announce /56 is
// exactly the v4 /24, and the coarser real-world v6 granularity /48 maps to
// a v4 /16 — the granularity question the dual-stack campaign measures.

inline constexpr std::uint32_t kSimV6PrefixHi32 = 0x20010DB8;

/// The v6 face of a simulated v4 host.
[[nodiscard]] constexpr Ipv6Addr embed_v4(Ipv4Addr v4) {
  return Ipv6Addr((std::uint64_t{kSimV6PrefixHi32} << 32) | v4.to_uint(), 0);
}

/// True when `v6` lies in the sim's embedding space.
[[nodiscard]] constexpr bool is_embedded_v4(const Ipv6Addr& v6) {
  return (v6.hi() >> 32) == kSimV6PrefixHi32;
}

/// Recovers the embedded v4 address; nullopt outside the embedding space.
[[nodiscard]] constexpr std::optional<Ipv4Addr> extract_embedded_v4(
    const Ipv6Addr& v6) {
  if (!is_embedded_v4(v6)) return std::nullopt;
  return Ipv4Addr(static_cast<std::uint32_t>(v6.hi()));
}

/// The v6 prefix corresponding to a sim v4 prefix (length shifts by 32).
[[nodiscard]] IpPrefix embed_v4_prefix(const Prefix& v4);

/// The v4 subnet a dual-stack prefix effectively selects: identity for v4,
/// the mapped tail for v4-mapped prefixes at /96 or longer, the embedded
/// prefix for sim-space v6 at /32 or longer (lengths clamp to /32).
/// nullopt for v6 prefixes with no v4 meaning.
[[nodiscard]] std::optional<Prefix> effective_v4_subnet(const IpPrefix& prefix);

}  // namespace drongo::net

template <>
struct std::hash<drongo::net::IpAddr> {
  std::size_t operator()(const drongo::net::IpAddr& a) const noexcept {
    const std::size_t h = std::hash<drongo::net::Ipv6Addr>{}(a.v6());
    return h ^ (static_cast<std::size_t>(a.family()) * 0xFF51AFD7ED558CCDULL);
  }
};

template <>
struct std::hash<drongo::net::IpPrefix> {
  std::size_t operator()(const drongo::net::IpPrefix& p) const noexcept {
    const std::size_t h = std::hash<drongo::net::IpAddr>{}(p.network());
    return h ^ (static_cast<std::size_t>(p.length()) * 0xFF51AFD7ED558CCDULL);
  }
};
