#include "net/quantile.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "net/error.hpp"

namespace drongo::net {

namespace {

std::uint64_t bits_of(double value) { return std::bit_cast<std::uint64_t>(value); }
double double_of(std::uint64_t bits) { return std::bit_cast<double>(bits); }

/// Folds `value` into an atomic extreme with a relaxed CAS loop. `Better`
/// decides whether `value` should replace the current extreme; min and max
/// both commute, so the final value is interleaving-independent.
template <typename Better>
void fold_extreme(std::atomic<std::uint64_t>& slot, double value, Better better) {
  std::uint64_t current = slot.load(std::memory_order_relaxed);
  while (better(value, double_of(current))) {
    if (slot.compare_exchange_weak(current, bits_of(value), std::memory_order_relaxed,
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace

StreamingQuantile::StreamingQuantile(double min_value_ms, double max_value_ms,
                                     int buckets_per_decade)
    : min_bits_(bits_of(std::numeric_limits<double>::infinity())),
      max_bits_(bits_of(-std::numeric_limits<double>::infinity())) {
  if (!(min_value_ms > 0.0) || !(max_value_ms > min_value_ms)) {
    throw InvalidArgument("StreamingQuantile needs 0 < min_value_ms < max_value_ms");
  }
  if (buckets_per_decade < 1) {
    throw InvalidArgument("StreamingQuantile needs buckets_per_decade >= 1");
  }
  const double ratio = std::pow(10.0, 1.0 / buckets_per_decade);
  for (double bound = min_value_ms; bound < max_value_ms; bound *= ratio) {
    bounds_.push_back(bound);
  }
  bounds_.push_back(max_value_ms);
  buckets_ = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
}

std::size_t StreamingQuantile::bucket_of(double value_ms) const {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value_ms);
  return static_cast<std::size_t>(it - bounds_.begin());
}

void StreamingQuantile::observe(double value_ms) {
  if (value_ms < 0.0 || std::isnan(value_ms)) value_ms = 0.0;
  buckets_[bucket_of(value_ms)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  fold_extreme(min_bits_, value_ms, [](double a, double b) { return a < b; });
  fold_extreme(max_bits_, value_ms, [](double a, double b) { return a > b; });
}

double StreamingQuantile::observed_min() const {
  const double v = double_of(min_bits_.load(std::memory_order_relaxed));
  return std::isinf(v) ? 0.0 : v;
}

double StreamingQuantile::observed_max() const {
  const double v = double_of(max_bits_.load(std::memory_order_relaxed));
  return std::isinf(v) ? 0.0 : v;
}

double StreamingQuantile::quantile(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  const double lo_clamp = observed_min();
  const double hi_clamp = observed_max();
  p = std::clamp(p, 0.0, 100.0);
  // Same convention as measure::percentile and obs::HistogramSnapshot:
  // rank p/100 * (n-1), values evenly spread within a bucket, extreme
  // buckets clamped to the observed min/max.
  const double rank = p / 100.0 * static_cast<double>(n - 1);
  // The extreme ranks are known exactly — the atomics track true min/max —
  // so p0/p100 report them rather than a bucket interpolation.
  if (rank <= 0.0) return lo_clamp;
  if (rank >= static_cast<double>(n - 1)) return hi_clamp;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    const double first_rank = static_cast<double>(cumulative);
    const double last_rank = static_cast<double>(cumulative + in_bucket - 1);
    if (rank <= last_rank || cumulative + in_bucket == n) {
      double lo = i == 0 ? lo_clamp : bounds_[i - 1];
      double hi = i < bounds_.size() ? bounds_[i] : hi_clamp;
      lo = std::max(lo, lo_clamp);
      hi = std::min(hi, hi_clamp);
      if (hi <= lo || in_bucket == 1) return std::clamp((lo + hi) / 2.0, lo_clamp, hi_clamp);
      const double frac =
          std::clamp((rank - first_rank) / static_cast<double>(in_bucket - 1), 0.0, 1.0);
      return lo + (hi - lo) * frac;
    }
    cumulative += in_bucket;
  }
  return hi_clamp;
}

}  // namespace drongo::net
