#include "net/rng.hpp"

#include <cmath>
#include <numbers>

#include "net/error.hpp"

namespace drongo::net {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

/// SplitMix64 finalizer (stateless variant of splitmix64 above).
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  if (bound == 0) throw InvalidArgument("Rng::uniform bound must be > 0");
  // Rejection sampling: discard the biased tail of the 64-bit range.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw InvalidArgument("Rng::uniform_range lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform01() {
  // 53 top bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

double Rng::normal(double mean, double stddev) {
  // Box-Muller; u1 is nudged away from 0 so log() is finite.
  const double u1 = uniform01() + 0x1.0p-60;
  const double u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) {
  if (rate <= 0) throw InvalidArgument("Rng::exponential rate must be > 0");
  return -std::log(1.0 - uniform01()) / rate;
}

bool Rng::chance(double p) {
  return uniform01() < p;
}

std::size_t Rng::index(std::size_t size) {
  return static_cast<std::size_t>(uniform(size));
}

Rng Rng::fork() {
  return Rng(next_u64());
}

Rng Rng::derive(std::uint64_t seed, std::uint64_t stream, std::uint64_t substream,
                std::uint64_t lane) {
  // Each coordinate is offset by a distinct constant (first 64-bit chunks of
  // pi) before mixing, so the absorption is position-sensitive; folding the
  // coordinates sequentially through the finalizer keeps every intermediate
  // fully diffused before the next one lands.
  std::uint64_t h = mix64(seed ^ 0x9E3779B97F4A7C15ULL);
  h = mix64(h ^ mix64(stream + 0x243F6A8885A308D3ULL));
  h = mix64(h ^ mix64(substream + 0x13198A2E03707344ULL));
  h = mix64(h ^ mix64(lane + 0xA4093822299F31D0ULL));
  return Rng(h);
}

}  // namespace drongo::net
