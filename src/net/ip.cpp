#include "net/ip.hpp"

#include <array>
#include <charconv>

#include "net/error.hpp"

namespace drongo::net {

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  std::array<std::uint32_t, 4> octets{};
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    if (pos >= text.size()) return std::nullopt;
    const char* begin = text.data() + pos;
    const char* end = text.data() + text.size();
    // std::from_chars rejects leading '+', whitespace, and empty input, which
    // gives us strict dotted-quad parsing for free.
    auto [ptr, ec] = std::from_chars(begin, end, octets[static_cast<std::size_t>(i)]);
    if (ec != std::errc{} || ptr == begin) return std::nullopt;
    if (octets[static_cast<std::size_t>(i)] > 255) return std::nullopt;
    pos = static_cast<std::size_t>(ptr - text.data());
    if (i < 3) {
      if (pos >= text.size() || text[pos] != '.') return std::nullopt;
      ++pos;
    }
  }
  if (pos != text.size()) return std::nullopt;
  return Ipv4Addr(static_cast<std::uint8_t>(octets[0]), static_cast<std::uint8_t>(octets[1]),
                  static_cast<std::uint8_t>(octets[2]), static_cast<std::uint8_t>(octets[3]));
}

Ipv4Addr Ipv4Addr::must_parse(std::string_view text) {
  auto addr = parse(text);
  if (!addr) throw ParseError("bad IPv4 address '" + std::string(text) + "'");
  return *addr;
}

std::string Ipv4Addr::to_string() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(octet(i));
  }
  return out;
}

}  // namespace drongo::net
