// Longest-prefix-match radix (Patricia) trie over IP prefixes, dual stack.
//
// The unit of "subnet" throughout drongo is net::Prefix (and, since the
// dual-stack work, net::IpPrefix); everything that has to answer "which
// stored subnet covers this address, most specifically?" — RFC 7871 §7.3.1
// scope matching in the DNS answer cache, the crowd-shared valley knowledge
// base — was a linear scan before this index existed. The trie answers
// exact-match, longest-match, and the full containment chain of an address
// in O(prefix bits) node visits with path compression, so a 10k-scope table
// costs ~a dozen comparisons instead of 10k.
//
// Layering: this lives in net/ (below dns/ and core/), so it carries no obs
// dependency. Callers that want `dns.lpm.*`-style telemetry read the visit
// counts the calls return and mirror them into their own registries.
//
// Structure: `detail::LpmCore` (lpm.cpp) implements the bit-level radix
// machinery over 128-bit keys (v4 keys are left-aligned in the top 32 bits,
// which preserves the v4 walk order bit-for-bit) and opaque value slots;
// `LpmTrie<T>` is the v4-typed wrapper, `IpLpmTrie<T>` the dual-stack one
// holding one core per family so a v6 scope can never answer for a v4
// client. Not internally synchronized — callers provide locking, exactly
// like DnsCache.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "net/error.hpp"
#include "net/ip.hpp"
#include "net/ip6.hpp"
#include "net/ipaddr.hpp"
#include "net/prefix.hpp"

namespace drongo::net {

namespace detail {

/// A 128-bit radix key: the big-endian address bits, MSB first.
struct LpmBits {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend constexpr bool operator==(const LpmBits&, const LpmBits&) = default;

  static constexpr LpmBits from_v4(std::uint32_t bits) {
    return {std::uint64_t{bits} << 32, 0};
  }
  static constexpr LpmBits from_v6(const Ipv6Addr& addr) {
    return {addr.hi(), addr.lo()};
  }
  [[nodiscard]] constexpr std::uint32_t to_v4() const {
    return static_cast<std::uint32_t>(hi >> 32);
  }
  [[nodiscard]] constexpr Ipv6Addr to_v6() const { return {hi, lo}; }
};

/// The untyped radix core: prefixes (network bits + length 0..128) mapped to
/// 32-bit value slots managed by the typed wrapper. Nodes live in one
/// contiguous pool with free-list reuse; erased paths are pruned and
/// re-compressed so the node count stays proportional to the live prefix
/// count.
class LpmCore {
 public:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
  static constexpr int kMaxBits = 128;

  struct Match {
    LpmBits bits;
    int length = 0;
    std::uint32_t slot = kNoSlot;
  };

  LpmCore() = default;

  /// Finds the slot bound to exactly (bits, length); kNoSlot when absent.
  /// Adds the nodes visited to `*visited` when non-null.
  [[nodiscard]] std::uint32_t find(LpmBits bits, int length,
                                   std::uint64_t* visited = nullptr) const;

  /// Binds (bits, length) to `slot`. Returns kNoSlot when the prefix was
  /// newly inserted, else the previously bound slot (unchanged — the caller
  /// decides whether to overwrite the value in place via find()).
  std::uint32_t insert(LpmBits bits, int length, std::uint32_t slot);

  /// Unbinds (bits, length); returns the freed slot, or kNoSlot if absent.
  std::uint32_t erase(LpmBits bits, int length);

  /// The longest stored prefix containing `bits` whose length is at most
  /// `max_length`. Adds nodes visited to `*visited` when non-null.
  [[nodiscard]] std::optional<Match> longest_match(
      LpmBits bits, int max_length, std::uint64_t* visited = nullptr) const;

  /// Every stored prefix containing `bits` with length <= max_length,
  /// ordered longest (most specific) first. Appends to `out`.
  void match_chain(LpmBits bits, int max_length, std::vector<Match>& out,
                   std::uint64_t* visited = nullptr) const;

  /// Visits every stored prefix in canonical order (shorter prefix before
  /// its subtree, zero branch before one branch — i.e. ascending network,
  /// ascending length).
  void walk(const std::function<void(LpmBits bits, int length,
                                     std::uint32_t slot)>& fn) const;

  [[nodiscard]] std::size_t size() const { return size_; }
  /// Live node count, branch-only nodes included (observability: the path
  /// compression invariant keeps this < 2 * size()).
  [[nodiscard]] std::size_t node_count() const;
  void clear();

 private:
  static constexpr std::int32_t kNil = -1;

  struct Node {
    LpmBits bits;                    ///< canonical network bits
    std::int32_t child[2] = {kNil, kNil};
    std::int32_t parent = kNil;
    std::uint32_t slot = kNoSlot;    ///< kNoSlot = branch-only node
    std::uint8_t length = 0;
    bool in_use = false;
  };

  std::int32_t new_node(LpmBits bits, int length);
  void free_node(std::int32_t index);
  /// Re-establishes path compression around a node whose slot was cleared:
  /// removes it if childless, merges it with a single child.
  void compress(std::int32_t index);
  void replace_child(std::int32_t parent, std::int32_t was, std::int32_t now);

  std::vector<Node> nodes_;
  std::vector<std::int32_t> free_;
  std::int32_t root_ = kNil;
  std::size_t size_ = 0;
};

}  // namespace detail

/// A map from IPv4 prefix to T with longest-prefix-match lookup.
///
/// Values live in a slot vector (stable across erases; insertion may grow
/// it), so pointers returned by find()/longest_match()/match_chain() stay
/// valid until the next insert() or clear().
template <typename T>
class LpmTrie {
 public:
  struct Match {
    Prefix prefix;
    T* value = nullptr;
  };
  struct ConstMatch {
    Prefix prefix;
    const T* value = nullptr;
  };

  /// Inserts or replaces the value at `prefix`; returns a pointer to the
  /// stored value.
  T* insert(const Prefix& prefix, T value) {
    const auto key = detail::LpmBits::from_v4(prefix.network().to_uint());
    const std::uint32_t existing = core_.find(key, prefix.length());
    if (existing != detail::LpmCore::kNoSlot) {
      slots_[existing] = std::move(value);
      return &*slots_[existing];
    }
    const std::uint32_t slot = allocate_slot(std::move(value));
    core_.insert(key, prefix.length(), slot);
    return &*slots_[slot];
  }

  /// Exact-match lookup; nullptr when `prefix` itself is not stored.
  [[nodiscard]] T* find(const Prefix& prefix, std::uint64_t* visited = nullptr) {
    const std::uint32_t slot =
        core_.find(detail::LpmBits::from_v4(prefix.network().to_uint()),
                   prefix.length(), visited);
    return slot == detail::LpmCore::kNoSlot ? nullptr : &*slots_[slot];
  }
  [[nodiscard]] const T* find(const Prefix& prefix,
                              std::uint64_t* visited = nullptr) const {
    const std::uint32_t slot =
        core_.find(detail::LpmBits::from_v4(prefix.network().to_uint()),
                   prefix.length(), visited);
    return slot == detail::LpmCore::kNoSlot ? nullptr : &*slots_[slot];
  }

  /// Removes `prefix`; false when absent.
  bool erase(const Prefix& prefix) {
    const std::uint32_t slot = core_.erase(
        detail::LpmBits::from_v4(prefix.network().to_uint()), prefix.length());
    if (slot == detail::LpmCore::kNoSlot) return false;
    slots_[slot].reset();
    free_slots_.push_back(slot);
    return true;
  }

  /// The most specific stored prefix containing `addr`, restricted to
  /// lengths <= max_length (RFC 7871: a cached scope may only serve clients
  /// whose source prefix it contains, so pass the client subnet's length).
  [[nodiscard]] std::optional<Match> longest_match(Ipv4Addr addr, int max_length = 32,
                                                   std::uint64_t* visited = nullptr) {
    check_v4_length(max_length);
    const auto m = core_.longest_match(detail::LpmBits::from_v4(addr.to_uint()),
                                       max_length, visited);
    if (!m) return std::nullopt;
    return Match{Prefix(Ipv4Addr(m->bits.to_v4()), m->length), &*slots_[m->slot]};
  }
  [[nodiscard]] std::optional<ConstMatch> longest_match(
      Ipv4Addr addr, int max_length = 32, std::uint64_t* visited = nullptr) const {
    check_v4_length(max_length);
    const auto m = core_.longest_match(detail::LpmBits::from_v4(addr.to_uint()),
                                       max_length, visited);
    if (!m) return std::nullopt;
    return ConstMatch{Prefix(Ipv4Addr(m->bits.to_v4()), m->length), &*slots_[m->slot]};
  }

  /// Every stored prefix containing `addr` with length <= max_length,
  /// longest first — the RFC 7871 candidate chain, so a caller can skip
  /// dead (expired) entries and fall back to the next-most-specific scope.
  [[nodiscard]] std::vector<Match> match_chain(Ipv4Addr addr, int max_length = 32,
                                               std::uint64_t* visited = nullptr) {
    check_v4_length(max_length);
    chain_scratch_.clear();
    core_.match_chain(detail::LpmBits::from_v4(addr.to_uint()), max_length,
                      chain_scratch_, visited);
    std::vector<Match> out;
    out.reserve(chain_scratch_.size());
    for (const auto& m : chain_scratch_) {
      out.push_back({Prefix(Ipv4Addr(m.bits.to_v4()), m.length), &*slots_[m.slot]});
    }
    return out;
  }

  /// Visits (Prefix, T&) for every entry in canonical order (ascending
  /// network address, shorter prefixes before their subtrees).
  template <typename Fn>
  void walk(Fn&& fn) const {
    core_.walk([&](detail::LpmBits bits, int length, std::uint32_t slot) {
      fn(Prefix(Ipv4Addr(bits.to_v4()), length), *slots_[slot]);
    });
  }

  [[nodiscard]] std::size_t size() const { return core_.size(); }
  [[nodiscard]] bool empty() const { return core_.size() == 0; }
  [[nodiscard]] std::size_t node_count() const { return core_.node_count(); }

  void clear() {
    core_.clear();
    slots_.clear();
    free_slots_.clear();
  }

 private:
  /// The v4 façade keeps the historical 0..32 bound even though the shared
  /// core now spans 128 bits — an out-of-range max_length here is a caller
  /// bug, not a wider key space.
  static void check_v4_length(int length) {
    if (length < 0 || length > 32) {
      throw InvalidArgument("IPv4 prefix length out of range: " +
                            std::to_string(length));
    }
  }

  std::uint32_t allocate_slot(T value) {
    if (!free_slots_.empty()) {
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      slots_[slot] = std::move(value);
      return slot;
    }
    slots_.emplace_back(std::move(value));
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  detail::LpmCore core_;
  std::vector<std::optional<T>> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<detail::LpmCore::Match> chain_scratch_;
};

/// A map from dual-stack IpPrefix to T with longest-prefix-match lookup.
///
/// One radix core per family: family separation is structural, so ::/0 can
/// never cover a v4 client and 0.0.0.0/0 never covers a v6 one — exactly
/// the RFC 7871 rule that a scope only serves clients of its own family.
/// Walk order is all v4 entries (canonical v4 order) followed by all v6
/// entries, matching std::map<IpPrefix> ordering.
template <typename T>
class IpLpmTrie {
 public:
  struct Match {
    IpPrefix prefix;
    T* value = nullptr;
  };
  struct ConstMatch {
    IpPrefix prefix;
    const T* value = nullptr;
  };

  /// Inserts or replaces the value at `prefix`; returns a pointer to the
  /// stored value.
  T* insert(const IpPrefix& prefix, T value) {
    detail::LpmCore& core = core_for(prefix.family());
    const auto key = key_of(prefix);
    const std::uint32_t existing = core.find(key, prefix.length());
    if (existing != detail::LpmCore::kNoSlot) {
      slots_[existing] = std::move(value);
      return &*slots_[existing];
    }
    const std::uint32_t slot = allocate_slot(std::move(value));
    core.insert(key, prefix.length(), slot);
    return &*slots_[slot];
  }

  /// Exact-match lookup; nullptr when `prefix` itself is not stored.
  [[nodiscard]] T* find(const IpPrefix& prefix, std::uint64_t* visited = nullptr) {
    const std::uint32_t slot =
        core_for(prefix.family()).find(key_of(prefix), prefix.length(), visited);
    return slot == detail::LpmCore::kNoSlot ? nullptr : &*slots_[slot];
  }
  [[nodiscard]] const T* find(const IpPrefix& prefix,
                              std::uint64_t* visited = nullptr) const {
    const std::uint32_t slot =
        core_for(prefix.family()).find(key_of(prefix), prefix.length(), visited);
    return slot == detail::LpmCore::kNoSlot ? nullptr : &*slots_[slot];
  }

  /// Removes `prefix`; false when absent.
  bool erase(const IpPrefix& prefix) {
    const std::uint32_t slot =
        core_for(prefix.family()).erase(key_of(prefix), prefix.length());
    if (slot == detail::LpmCore::kNoSlot) return false;
    slots_[slot].reset();
    free_slots_.push_back(slot);
    return true;
  }

  /// The most specific stored same-family prefix containing `addr`,
  /// restricted to lengths <= max_length.
  [[nodiscard]] std::optional<Match> longest_match(
      const IpAddr& addr, int max_length, std::uint64_t* visited = nullptr) {
    const auto m =
        core_for(addr.family()).longest_match(key_of(addr), max_length, visited);
    if (!m) return std::nullopt;
    return Match{prefix_of(addr.family(), *m), &*slots_[m->slot]};
  }

  /// Every stored same-family prefix containing `addr` with length <=
  /// max_length, longest first — the RFC 7871 candidate chain.
  [[nodiscard]] std::vector<Match> match_chain(const IpAddr& addr, int max_length,
                                               std::uint64_t* visited = nullptr) {
    chain_scratch_.clear();
    core_for(addr.family())
        .match_chain(key_of(addr), max_length, chain_scratch_, visited);
    std::vector<Match> out;
    out.reserve(chain_scratch_.size());
    for (const auto& m : chain_scratch_) {
      out.push_back({prefix_of(addr.family(), m), &*slots_[m.slot]});
    }
    return out;
  }

  /// Visits (IpPrefix, T&) for every entry: v4 entries in canonical order,
  /// then v6 entries likewise (== std::map<IpPrefix> iteration order).
  template <typename Fn>
  void walk(Fn&& fn) const {
    core4_.walk([&](detail::LpmBits bits, int length, std::uint32_t slot) {
      fn(IpPrefix(IpAddr(Ipv4Addr(bits.to_v4())), length), *slots_[slot]);
    });
    core6_.walk([&](detail::LpmBits bits, int length, std::uint32_t slot) {
      fn(IpPrefix(IpAddr(bits.to_v6()), length), *slots_[slot]);
    });
  }

  [[nodiscard]] std::size_t size() const { return core4_.size() + core6_.size(); }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] std::size_t node_count() const {
    return core4_.node_count() + core6_.node_count();
  }

  void clear() {
    core4_.clear();
    core6_.clear();
    slots_.clear();
    free_slots_.clear();
  }

 private:
  [[nodiscard]] detail::LpmCore& core_for(IpFamily family) {
    return family == IpFamily::kV4 ? core4_ : core6_;
  }
  [[nodiscard]] const detail::LpmCore& core_for(IpFamily family) const {
    return family == IpFamily::kV4 ? core4_ : core6_;
  }

  static detail::LpmBits key_of(const IpPrefix& prefix) {
    return key_of(prefix.network());
  }
  static detail::LpmBits key_of(const IpAddr& addr) {
    return addr.is_v4() ? detail::LpmBits::from_v4(addr.v4().to_uint())
                        : detail::LpmBits::from_v6(addr.v6());
  }
  static IpPrefix prefix_of(IpFamily family, const detail::LpmCore::Match& m) {
    return family == IpFamily::kV4
               ? IpPrefix(IpAddr(Ipv4Addr(m.bits.to_v4())), m.length)
               : IpPrefix(IpAddr(m.bits.to_v6()), m.length);
  }

  std::uint32_t allocate_slot(T value) {
    if (!free_slots_.empty()) {
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      slots_[slot] = std::move(value);
      return slot;
    }
    slots_.emplace_back(std::move(value));
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  detail::LpmCore core4_;
  detail::LpmCore core6_;
  std::vector<std::optional<T>> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<detail::LpmCore::Match> chain_scratch_;
};

}  // namespace drongo::net
