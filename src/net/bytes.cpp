#include "net/bytes.hpp"

#include "net/error.hpp"

namespace drongo::net {

void ByteReader::require(std::size_t n) const {
  if (remaining() < n) {
    throw BoundsError("read of " + std::to_string(n) + " bytes at offset " +
                      std::to_string(pos_) + " overruns buffer of " +
                      std::to_string(data_.size()));
  }
}

void ByteReader::seek(std::size_t offset) {
  if (offset > data_.size()) {
    throw BoundsError("seek to " + std::to_string(offset) + " outside buffer of " +
                      std::to_string(data_.size()));
  }
  pos_ = offset;
}

void ByteReader::skip(std::size_t n) {
  require(n);
  pos_ += n;
}

std::uint8_t ByteReader::read_u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::read_u16() {
  require(2);
  auto v = static_cast<std::uint16_t>((std::uint16_t{data_[pos_]} << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::read_u32() {
  require(4);
  std::uint32_t v = (std::uint32_t{data_[pos_]} << 24) | (std::uint32_t{data_[pos_ + 1]} << 16) |
                    (std::uint32_t{data_[pos_ + 2]} << 8) | std::uint32_t{data_[pos_ + 3]};
  pos_ += 4;
  return v;
}

std::vector<std::uint8_t> ByteReader::read_bytes(std::size_t n) {
  require(n);
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::string ByteReader::read_string(std::size_t n) {
  require(n);
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return out;
}

void ByteWriter::write_u8(std::uint8_t v) { out_.push_back(v); }

void ByteWriter::write_u16(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
  out_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::write_u32(std::uint32_t v) {
  out_.push_back(static_cast<std::uint8_t>(v >> 24));
  out_.push_back(static_cast<std::uint8_t>(v >> 16));
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
  out_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::write_bytes(std::span<const std::uint8_t> data) {
  out_.insert(out_.end(), data.begin(), data.end());
}

void ByteWriter::write_string(std::string_view s) {
  out_.insert(out_.end(), s.begin(), s.end());
}

void ByteWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  if (offset + 2 > out_.size()) {
    throw BoundsError("patch_u16 at " + std::to_string(offset) + " outside buffer of " +
                      std::to_string(out_.size()));
  }
  out_[offset] = static_cast<std::uint8_t>(v >> 8);
  out_[offset + 1] = static_cast<std::uint8_t>(v);
}

}  // namespace drongo::net
