// IPv4 address value type.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace drongo::net {

/// An IPv4 address held in host byte order.
///
/// This is a regular value type: cheap to copy, totally ordered, hashable.
/// All drongo libraries address hosts with `Ipv4Addr`; conversion to and from
/// dotted-quad text and to network-order wire bytes happens at the edges.
class Ipv4Addr {
 public:
  /// The unspecified address 0.0.0.0.
  constexpr Ipv4Addr() = default;

  /// Constructs from a host-byte-order 32-bit value.
  constexpr explicit Ipv4Addr(std::uint32_t host_order) : bits_(host_order) {}

  /// Constructs from four octets, most significant first (a.b.c.d).
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : bits_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parses dotted-quad text ("192.0.2.1"). Returns nullopt on any deviation
  /// from strict dotted-quad form (no leading '+', no octet > 255, exactly
  /// four parts).
  static std::optional<Ipv4Addr> parse(std::string_view text);

  /// Like parse() but throws ParseError, for call sites where a bad address
  /// is a programming or configuration error.
  static Ipv4Addr must_parse(std::string_view text);

  /// Host-byte-order value.
  [[nodiscard]] constexpr std::uint32_t to_uint() const { return bits_; }

  /// Octet `i` (0 = most significant, i.e. the "a" in a.b.c.d).
  [[nodiscard]] constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(bits_ >> (8 * (3 - i)));
  }

  /// Dotted-quad representation.
  [[nodiscard]] std::string to_string() const;

  /// True for 10/8, 172.16/12, 192.168/16 (RFC 1918).
  [[nodiscard]] constexpr bool is_private() const {
    return (bits_ >> 24) == 10 || (bits_ >> 20) == 0xAC1 ||
           (bits_ >> 16) == 0xC0A8;
  }

  /// True for 127/8.
  [[nodiscard]] constexpr bool is_loopback() const { return (bits_ >> 24) == 127; }

  /// True for 0.0.0.0.
  [[nodiscard]] constexpr bool is_unspecified() const { return bits_ == 0; }

  /// True for 224/4 (multicast) or 240/4 (reserved).
  [[nodiscard]] constexpr bool is_multicast_or_reserved() const {
    return (bits_ >> 28) >= 0xE;
  }

  /// True for 169.254/16 (link local).
  [[nodiscard]] constexpr bool is_link_local() const { return (bits_ >> 16) == 0xA9FE; }

  /// True when the address is usable as a public unicast host address in the
  /// simulated Internet (not private, loopback, link-local, multicast,
  /// reserved, or unspecified).
  [[nodiscard]] constexpr bool is_global_unicast() const {
    return !is_private() && !is_loopback() && !is_unspecified() &&
           !is_multicast_or_reserved() && !is_link_local();
  }

  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) = default;

 private:
  std::uint32_t bits_ = 0;
};

}  // namespace drongo::net

template <>
struct std::hash<drongo::net::Ipv4Addr> {
  std::size_t operator()(drongo::net::Ipv4Addr a) const noexcept {
    // Fibonacci hashing spreads sequential addresses across buckets.
    return static_cast<std::size_t>(a.to_uint()) * 0x9E3779B97F4A7C15ULL;
  }
};
