#include "net/ip6.hpp"

#include <vector>

#include "net/error.hpp"

namespace drongo::net {

namespace {

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Parses one side of a `::` split into 16-bit groups. A dotted-quad tail
/// (two groups) is only legal as the final token when `allow_v4_tail`.
bool parse_groups(std::string_view part, bool allow_v4_tail,
                  std::vector<std::uint16_t>& out) {
  if (part.empty()) return true;
  std::size_t pos = 0;
  while (true) {
    const std::size_t colon = part.find(':', pos);
    const std::string_view token =
        part.substr(pos, colon == std::string_view::npos ? std::string_view::npos
                                                         : colon - pos);
    if (token.empty()) return false;
    if (colon == std::string_view::npos &&
        token.find('.') != std::string_view::npos) {
      if (!allow_v4_tail) return false;
      const auto v4 = Ipv4Addr::parse(token);
      if (!v4) return false;
      out.push_back(static_cast<std::uint16_t>(v4->to_uint() >> 16));
      out.push_back(static_cast<std::uint16_t>(v4->to_uint()));
      return true;
    }
    if (token.size() > 4) return false;
    std::uint32_t value = 0;
    for (const char c : token) {
      const int digit = hex_value(c);
      if (digit < 0) return false;
      value = value * 16 + static_cast<std::uint32_t>(digit);
    }
    out.push_back(static_cast<std::uint16_t>(value));
    if (colon == std::string_view::npos) return true;
    pos = colon + 1;
    if (pos >= part.size()) return false;  // trailing single ':'
  }
}

void append_hex(std::string& out, std::uint16_t group) {
  static constexpr char kDigits[] = "0123456789abcdef";
  bool started = false;
  for (int shift = 12; shift >= 0; shift -= 4) {
    const int nibble = (group >> shift) & 0xF;
    if (nibble != 0 || started || shift == 0) {
      out.push_back(kDigits[nibble]);
      started = true;
    }
  }
}

}  // namespace

std::optional<Ipv6Addr> Ipv6Addr::parse(std::string_view text) {
  if (text.size() < 2 || text.size() > 45) return std::nullopt;
  const std::size_t compress = text.find("::");
  std::vector<std::uint16_t> left;
  std::vector<std::uint16_t> right;
  if (compress == std::string_view::npos) {
    if (!parse_groups(text, /*allow_v4_tail=*/true, left)) return std::nullopt;
    if (left.size() != 8) return std::nullopt;
  } else {
    const std::string_view lpart = text.substr(0, compress);
    const std::string_view rpart = text.substr(compress + 2);
    if (rpart.find("::") != std::string_view::npos) return std::nullopt;
    if (!parse_groups(lpart, /*allow_v4_tail=*/false, left) ||
        !parse_groups(rpart, /*allow_v4_tail=*/true, right)) {
      return std::nullopt;
    }
    // `::` stands for at least one zero group.
    if (left.size() + right.size() > 7) return std::nullopt;
  }
  std::array<std::uint16_t, 8> groups{};
  for (std::size_t i = 0; i < left.size(); ++i) groups[i] = left[i];
  for (std::size_t i = 0; i < right.size(); ++i) {
    groups[8 - right.size() + i] = right[i];
  }
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  for (int i = 0; i < 4; ++i) hi = hi << 16 | groups[static_cast<std::size_t>(i)];
  for (int i = 4; i < 8; ++i) lo = lo << 16 | groups[static_cast<std::size_t>(i)];
  return Ipv6Addr(hi, lo);
}

Ipv6Addr Ipv6Addr::must_parse(std::string_view text) {
  const auto addr = parse(text);
  if (!addr) throw ParseError("bad IPv6 address: " + std::string(text));
  return *addr;
}

std::string Ipv6Addr::to_string() const {
  if (is_v4_mapped()) return "::ffff:" + mapped_v4().to_string();
  // RFC 5952: compress the longest run of two-or-more zero groups
  // (leftmost on ties).
  int best_start = -1;
  int best_length = 0;
  int run_start = -1;
  for (int i = 0; i <= 8; ++i) {
    if (i < 8 && group(i) == 0) {
      if (run_start < 0) run_start = i;
    } else if (run_start >= 0) {
      const int run_length = i - run_start;
      if (run_length >= 2 && run_length > best_length) {
        best_start = run_start;
        best_length = run_length;
      }
      run_start = -1;
    }
  }
  std::string out;
  out.reserve(39);
  for (int i = 0; i < 8; ++i) {
    if (i == best_start) {
      out.append("::");
      i += best_length - 1;
      continue;
    }
    if (!out.empty() && out.back() != ':') out.push_back(':');
    append_hex(out, group(i));
  }
  if (out.empty()) out = "::";
  return out;
}

}  // namespace drongo::net
