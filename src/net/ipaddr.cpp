#include "net/ipaddr.hpp"

#include <algorithm>

#include "net/error.hpp"

namespace drongo::net {

namespace {

/// Clears everything past the first `length` bits of a 128-bit value.
constexpr Ipv6Addr mask_v6(const Ipv6Addr& bits, int length) {
  const std::uint64_t hi_mask =
      length >= 64 ? ~std::uint64_t{0}
                   : (length == 0 ? 0 : ~std::uint64_t{0} << (64 - length));
  const std::uint64_t lo_mask =
      length <= 64 ? 0
                   : (length >= 128 ? ~std::uint64_t{0}
                                    : ~std::uint64_t{0} << (128 - length));
  return {bits.hi() & hi_mask, bits.lo() & lo_mask};
}

}  // namespace

Ipv4Addr IpAddr::v4() const {
  if (!is_v4()) {
    throw InvalidArgument("v4() on IPv6 address " + bits_.to_string());
  }
  return bits_.mapped_v4();
}

std::optional<IpAddr> IpAddr::parse(std::string_view text) {
  if (text.find(':') != std::string_view::npos) {
    const auto v6 = Ipv6Addr::parse(text);
    if (!v6) return std::nullopt;
    return IpAddr(*v6);
  }
  const auto v4 = Ipv4Addr::parse(text);
  if (!v4) return std::nullopt;
  return IpAddr(*v4);
}

IpAddr IpAddr::must_parse(std::string_view text) {
  const auto addr = parse(text);
  if (!addr) throw ParseError("bad IP address: " + std::string(text));
  return *addr;
}

IpPrefix::IpPrefix(const IpAddr& addr, int length) : length_(length) {
  if (length < 0 || length > family_bits(addr.family())) {
    throw InvalidArgument("prefix length out of range for family: " +
                          std::to_string(length));
  }
  if (addr.is_v4()) {
    // Reuse Prefix's canonicalization so v4 semantics match bit-for-bit.
    network_ = IpAddr(Prefix(addr.v4(), length).network());
  } else {
    network_ = IpAddr(mask_v6(addr.v6(), length));
  }
}

bool IpPrefix::contains(const IpAddr& addr) const {
  if (addr.family() != family()) return false;
  const int effective =
      family() == IpFamily::kV4 ? 96 + length_ : length_;  // v4 is mapped
  return mask_v6(addr.v6(), effective) == network_.v6();
}

std::optional<IpPrefix> IpPrefix::parse(std::string_view text) {
  const std::size_t slash = text.rfind('/');
  if (slash == std::string_view::npos || slash + 1 >= text.size()) {
    return std::nullopt;
  }
  const auto addr = IpAddr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  int length = 0;
  for (const char c : text.substr(slash + 1)) {
    if (c < '0' || c > '9') return std::nullopt;
    length = length * 10 + (c - '0');
    if (length > 128) return std::nullopt;
  }
  if (length > family_bits(addr->family())) return std::nullopt;
  return IpPrefix(*addr, length);
}

IpPrefix IpPrefix::must_parse(std::string_view text) {
  const auto prefix = parse(text);
  if (!prefix) throw ParseError("bad IP prefix: " + std::string(text));
  return *prefix;
}

IpPrefix embed_v4_prefix(const Prefix& v4) {
  return IpPrefix(IpAddr(embed_v4(v4.network())), v4.length() + 32);
}

std::optional<Prefix> effective_v4_subnet(const IpPrefix& prefix) {
  if (prefix.family() == IpFamily::kV4) return prefix.to_v4();
  const Ipv6Addr v6 = prefix.network().v6();
  if (v6.is_v4_mapped() && prefix.length() >= 96) {
    return Prefix(v6.mapped_v4(), prefix.length() - 96);
  }
  if (is_embedded_v4(v6) && prefix.length() >= 32) {
    return Prefix(*extract_embedded_v4(v6), std::min(32, prefix.length() - 32));
  }
  return std::nullopt;
}

}  // namespace drongo::net
