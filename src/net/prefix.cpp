#include "net/prefix.hpp"

#include <charconv>

#include "net/error.hpp"

namespace drongo::net {

Prefix::Prefix(Ipv4Addr addr, int length) : length_(length) {
  if (length < 0 || length > 32) {
    throw InvalidArgument("prefix length " + std::to_string(length) + " out of [0,32]");
  }
  network_ = Ipv4Addr(addr.to_uint() & mask(length));
}

std::optional<Prefix> Prefix::parse(std::string_view text) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = Ipv4Addr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  auto len_text = text.substr(slash + 1);
  int length = 0;
  auto [ptr, ec] = std::from_chars(len_text.data(), len_text.data() + len_text.size(), length);
  if (ec != std::errc{} || ptr != len_text.data() + len_text.size()) return std::nullopt;
  if (length < 0 || length > 32) return std::nullopt;
  return Prefix(*addr, length);
}

Prefix Prefix::must_parse(std::string_view text) {
  auto p = parse(text);
  if (!p) throw ParseError("bad prefix '" + std::string(text) + "'");
  return *p;
}

std::uint64_t Prefix::size() const {
  return std::uint64_t{1} << (32 - length_);
}

Prefix Prefix::truncated(int new_length) const {
  return Prefix(network_, new_length);
}

Ipv4Addr Prefix::at(std::uint64_t offset) const {
  if (offset >= size()) {
    throw BoundsError("offset " + std::to_string(offset) + " outside " + to_string());
  }
  return Ipv4Addr(network_.to_uint() + static_cast<std::uint32_t>(offset));
}

std::string Prefix::to_string() const {
  return network_.to_string() + "/" + std::to_string(length_);
}

}  // namespace drongo::net
