// Constexpr bogon/private-range tables for both address families.
//
// The §3.1 hop filter must reject hops that cannot be public-path routers.
// For v4 this predicate has always been Ipv4Addr::is_global_unicast(); the
// table below spells the same ranges out data-style (lokinet
// net/bogon_ranges.hpp idiom) so the v6 side can share the mechanism, and a
// test pins the v4 table to the predicate it mirrors.
//
// Deliberate omissions, mirroring the v4 policy: the simulated world lives
// in plausible-but-synthetic global space (20.0.0.0/8, anycast in
// 198.18.0.0/16, v6 embedding in documentation space 2001:db8::/32), so
// benchmark/documentation ranges are NOT treated as bogons — only ranges
// that can never appear as a public traceroute hop are.
#pragma once

#include <cstdint>

#include "net/ip.hpp"
#include "net/ip6.hpp"

namespace drongo::net {

struct BogonRangeV4 {
  std::uint32_t bits;
  int length;
};

struct BogonRangeV6 {
  std::uint64_t hi;
  std::uint64_t lo;
  int length;
};

inline constexpr BogonRangeV4 kBogonRangesV4[] = {
    {0x00000000u, 32},  // 0.0.0.0/32 unspecified
    {0x0A000000u, 8},   // 10.0.0.0/8 RFC 1918
    {0x7F000000u, 8},   // 127.0.0.0/8 loopback
    {0xA9FE0000u, 16},  // 169.254.0.0/16 link-local
    {0xAC100000u, 12},  // 172.16.0.0/12 RFC 1918
    {0xC0A80000u, 16},  // 192.168.0.0/16 RFC 1918
    {0xE0000000u, 3},   // 224.0.0.0/3 multicast + class E reserved
};

inline constexpr BogonRangeV6 kBogonRangesV6[] = {
    {0, 0, 127},                              // ::/127 unspecified + loopback
    {0, std::uint64_t{0xFFFF} << 32, 96},     // ::ffff:0:0/96 v4-mapped
    {std::uint64_t{0x0100} << 48, 0, 64},     // 100::/64 discard-only
    {std::uint64_t{0xFC00} << 48, 0, 7},      // fc00::/7 unique local
    {std::uint64_t{0xFE80} << 48, 0, 10},     // fe80::/10 link-local
    {std::uint64_t{0xFF00} << 48, 0, 8},      // ff00::/8 multicast
};

[[nodiscard]] constexpr bool is_bogon(Ipv4Addr addr) {
  for (const auto& range : kBogonRangesV4) {
    const std::uint32_t mask =
        range.length == 0 ? 0 : ~std::uint32_t{0} << (32 - range.length);
    if ((addr.to_uint() & mask) == range.bits) return true;
  }
  return false;
}

[[nodiscard]] constexpr bool is_bogon(const Ipv6Addr& addr) {
  for (const auto& range : kBogonRangesV6) {
    const std::uint64_t hi_mask =
        range.length >= 64
            ? ~std::uint64_t{0}
            : (range.length == 0 ? 0 : ~std::uint64_t{0} << (64 - range.length));
    const std::uint64_t lo_mask =
        range.length <= 64 ? 0
        : range.length >= 128
            ? ~std::uint64_t{0}
            : ~std::uint64_t{0} << (128 - range.length);
    if ((addr.hi() & hi_mask) == range.hi && (addr.lo() & lo_mask) == range.lo) {
      return true;
    }
  }
  return false;
}

}  // namespace drongo::net
