// Small shared identifier types used across the drongo libraries.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace drongo::net {

/// An autonomous system number. Strongly typed so ASNs can't be confused
/// with router ids, client ids, or port numbers at call sites.
class Asn {
 public:
  constexpr Asn() = default;
  constexpr explicit Asn(std::uint32_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] std::string to_string() const { return "AS" + std::to_string(value_); }

  friend constexpr auto operator<=>(Asn, Asn) = default;

 private:
  std::uint32_t value_ = 0;
};

}  // namespace drongo::net

template <>
struct std::hash<drongo::net::Asn> {
  std::size_t operator()(drongo::net::Asn a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
