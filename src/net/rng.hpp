// Deterministic random number generation for reproducible simulation.
#pragma once

#include <cstdint>
#include <vector>

namespace drongo::net {

/// xoshiro256** seeded via SplitMix64.
///
/// Every stochastic component in drongo draws from an `Rng` owned by its
/// caller, so a whole experiment is a pure function of its seed: identical
/// seeds reproduce identical topologies, replica mappings, RTT jitter, and
/// therefore identical experiment output. The generator is small, fast, and
/// has no global state.
class Rng {
 public:
  /// Seeds the four-word state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). `bound` must be > 0; uses rejection
  /// sampling so the distribution is exactly uniform.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Standard normal via Box-Muller (no cached spare: keeps state minimal).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Exponential with the given rate (lambda).
  double exponential(double rate);

  /// Bernoulli trial with probability `p` of true.
  bool chance(double p);

  /// Uniformly chosen element index for a container of `size` elements.
  std::size_t index(std::size_t size);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator; used to give each simulated
  /// component its own stream so adding draws in one place does not perturb
  /// another.
  Rng fork();

  /// Counter-based stream derivation: a pure function of
  /// (seed, stream, substream, lane) with no hidden state, so any caller —
  /// on any thread, in any order — reconstructs exactly the same generator.
  /// This is what makes parallel campaigns bit-identical to serial ones:
  /// trial (client c, trial t, provider p) always draws from
  /// `derive(seed, c, t, p)` no matter which worker runs it.
  ///
  /// The three coordinates are absorbed through a SplitMix64 finalizer with
  /// a distinct per-position offset, so permuting coordinate values yields
  /// unrelated streams (derive(s,1,2) != derive(s,2,1)).
  static Rng derive(std::uint64_t seed, std::uint64_t stream,
                    std::uint64_t substream = 0, std::uint64_t lane = 0);

 private:
  std::uint64_t state_[4];
};

}  // namespace drongo::net
