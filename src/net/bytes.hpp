// Bounds-checked big-endian byte buffer reader/writer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace drongo::net {

/// Sequential bounds-checked reader over a byte span (network byte order).
///
/// All multi-byte reads are big-endian, matching DNS wire format. Reads past
/// the end throw `BoundsError` — malformed network input must never become
/// out-of-bounds memory access.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Bytes remaining from the cursor to the end.
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

  /// Current cursor position from the start of the buffer.
  [[nodiscard]] std::size_t position() const { return pos_; }

  /// Whole underlying buffer (used by DNS name decompression, which must
  /// follow pointers to earlier offsets).
  [[nodiscard]] std::span<const std::uint8_t> buffer() const { return data_; }

  /// Moves the cursor to an absolute offset. Throws BoundsError if outside
  /// the buffer.
  void seek(std::size_t offset);

  /// Skips `n` bytes.
  void skip(std::size_t n);

  std::uint8_t read_u8();
  std::uint16_t read_u16();
  std::uint32_t read_u32();

  /// Reads `n` raw bytes.
  std::vector<std::uint8_t> read_bytes(std::size_t n);

  /// Reads `n` bytes as a string.
  std::string read_string(std::size_t n);

 private:
  void require(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Append-only big-endian writer backed by a growable vector.
class ByteWriter {
 public:
  ByteWriter() = default;

  /// Adopts `reuse` as the backing store, clearing its contents but keeping
  /// its capacity — hot encode paths hand the same vector back and forth via
  /// take() so steady-state serving allocates nothing per message.
  explicit ByteWriter(std::vector<std::uint8_t> reuse) : out_(std::move(reuse)) {
    out_.clear();
  }

  [[nodiscard]] std::size_t size() const { return out_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return out_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(out_); }

  void write_u8(std::uint8_t v);
  void write_u16(std::uint16_t v);
  void write_u32(std::uint32_t v);
  void write_bytes(std::span<const std::uint8_t> data);
  void write_string(std::string_view s);

  /// Overwrites a previously written u16 at `offset` (e.g. to patch an RDATA
  /// length after writing the RDATA). Throws BoundsError if out of range.
  void patch_u16(std::size_t offset, std::uint16_t v);

 private:
  std::vector<std::uint8_t> out_;
};

}  // namespace drongo::net
