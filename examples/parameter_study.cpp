// Parameter study: how (vf, vt) shape Drongo's gains on a chosen provider
// mix — the §5.1 methodology as a reusable tool.
//
//   $ ./parameter_study [clients] [seed] [provider-name ...]
//
// With provider names (Google CloudFront Alibaba CDNetworks ChinaNetCtr
// CubeCDN), only those are deployed; default is all six.
#include <cstdlib>
#include <iostream>

#include "analysis/evaluation.hpp"
#include "analysis/render.hpp"
#include "measure/testbed.hpp"

using namespace drongo;

int main(int argc, char** argv) {
  const int clients = argc > 1 ? std::atoi(argv[1]) : 60;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1729;

  std::vector<cdn::CdnProfile> profiles;
  for (int i = 3; i < argc; ++i) {
    for (const auto& profile : cdn::paper_providers()) {
      if (profile.name == argv[i]) profiles.push_back(profile);
    }
  }
  if (profiles.empty()) profiles = cdn::paper_providers();

  measure::TestbedConfig config = measure::TestbedConfig::ripe_atlas();
  config.client_count = clients;
  config.seed = seed;
  config.profiles = profiles;
  measure::Testbed testbed(config);
  std::cout << "Deployed providers:";
  for (const auto& p : profiles) std::cout << " " << p.name;
  std::cout << "; " << clients << " clients\n\n";

  analysis::Evaluation evaluation(&testbed, seed ^ 0x90);
  const std::vector<double> vf_values{0.2, 0.4, 0.6, 0.8, 1.0};
  const std::vector<double> vt_values{0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 1.0};
  const auto sweep = analysis::parameter_sweep(evaluation, vf_values, vt_values);

  std::vector<std::string> headers{"vt"};
  for (double vf : vf_values) headers.push_back("vf>=" + analysis::fmt(vf, 1));
  std::vector<std::vector<std::string>> overall_cells;
  std::vector<std::vector<std::string>> affected_cells;
  for (double vt : vt_values) {
    std::vector<std::string> overall_row{analysis::fmt(vt, 2)};
    std::vector<std::string> affected_row{analysis::fmt(vt, 2)};
    for (double vf : vf_values) {
      for (const auto& p : sweep) {
        if (p.vf == vf && p.vt == vt) {
          overall_row.push_back(analysis::fmt(p.overall_ratio, 4));
          affected_row.push_back(analysis::fmt(p.clients_affected, 2));
        }
      }
    }
    overall_cells.push_back(std::move(overall_row));
    affected_cells.push_back(std::move(affected_row));
  }
  std::cout << analysis::render_table("Overall latency ratio (lower is better)", headers,
                                      overall_cells);
  std::cout << "\n"
            << analysis::render_table("Fraction of clients affected", headers,
                                      affected_cells);

  const auto best = analysis::best_point(sweep);
  std::cout << "\noptimum: vf=" << analysis::fmt(best.vf, 1) << " vt="
            << analysis::fmt(best.vt, 2) << " -> ratio "
            << analysis::fmt(best.overall_ratio, 4) << " ("
            << analysis::fmt((1.0 - best.overall_ratio) * 100.0) << "% gain), affecting "
            << analysis::fmt(best.clients_affected * 100.0) << "% of clients\n";

  std::cout << "\nPer-provider optima:\n";
  for (const auto& opt : analysis::per_provider_optimum(evaluation, vf_values, vt_values)) {
    std::cout << "  " << opt.provider << ": vf=" << analysis::fmt(opt.best_vf, 1)
              << " vt=" << analysis::fmt(opt.best_vt, 2) << " ratio "
              << analysis::fmt(opt.best_ratio, 4) << "\n";
  }
  return 0;
}
