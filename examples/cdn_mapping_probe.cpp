// CDN mapping probe: provider selection and footprint reverse-engineering
// via ECS (§2.2, §3.1.1 — and the reason Akamai restricts ECS).
//
//   $ ./cdn_mapping_probe [seed]
//
// First, probes every deployed provider (including an Akamai-like,
// ECS-restricted control) for UNRESTRICTED ECS support, replicating the
// paper's provider-selection step. Then, for one open provider, performs a
// Streibelt-style footprint scan: announce every /24 in the world and count
// the distinct replica /24s observed — measuring a CDN's scale "without
// significant infrastructural resources".
#include <cstdlib>
#include <iostream>
#include <map>
#include <set>

#include "analysis/render.hpp"
#include "core/probe.hpp"
#include "measure/testbed.hpp"

using namespace drongo;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  measure::TestbedConfig config = measure::TestbedConfig::planetlab();
  config.client_count = 4;
  config.seed = seed;
  auto profiles = cdn::paper_providers();
  profiles.push_back(cdn::akamai_like_restricted());  // the negative control
  config.profiles = profiles;
  measure::Testbed testbed(config);
  auto& world = testbed.world();

  // --- Step 1: which providers implement unrestricted ECS? ---------------
  std::vector<net::Prefix> probe_subnets;
  for (std::size_t i = 0; i < 8; ++i) {
    const auto block = world.block_of(i * 13 % world.graph().node_count());
    probe_subnets.emplace_back(net::Ipv4Addr(block.network().to_uint() | (40u << 8)), 24);
  }
  core::EcsProber prober(probe_subnets);
  auto stub = testbed.make_stub(testbed.clients()[0], seed ^ 0x21);

  std::cout << "== Provider selection: unrestricted ECS probe (paper §3.1.1) ==\n";
  std::vector<std::vector<std::string>> cells;
  for (std::size_t p = 0; p < testbed.provider_count(); ++p) {
    const auto result = prober.probe(stub, testbed.content_names(p)[0]);
    cells.push_back({testbed.profile(p).name,
                     result.resolvable ? "yes" : "no",
                     result.ecs_unrestricted ? "UNRESTRICTED" : "restricted",
                     std::to_string(result.distinct_answers)});
  }
  std::cout << analysis::render_table(
      "", {"Provider", "resolvable", "ECS mode", "distinct answers"}, cells);
  std::cout << "Expected: the six paper providers unrestricted; Akamai restricted\n"
               "(it keys on the resolver address, so assimilation cannot steer it).\n\n";

  // --- Step 2: footprint scan of one open provider -----------------------
  const std::size_t target = 0;  // Google-like
  std::cout << "== Footprint scan of " << testbed.profile(target).name
            << " via exhaustive ECS announcements ==\n";
  const auto domain = testbed.content_names(target)[0];
  std::set<net::Prefix> replica_subnets;
  std::set<net::Ipv4Addr> replicas;
  std::map<int, int> scope_histogram;
  int queries = 0;
  for (std::size_t as = 0; as < world.graph().node_count(); ++as) {
    // Announce one host /24 per AS (an attacker scans coarsely first).
    const auto block = world.block_of(as);
    const net::Prefix announce(net::Ipv4Addr(block.network().to_uint() | (40u << 8)), 24);
    const auto result = stub.resolve(domain, announce);
    ++queries;
    if (!result.ok()) continue;
    if (result.ecs_scope) ++scope_histogram[result.ecs_scope->length()];
    for (auto addr : result.addresses) {
      replicas.insert(addr);
      replica_subnets.insert(net::Prefix(addr, 24));
    }
  }
  const auto& provider = testbed.provider(target);
  std::size_t true_replicas = 0;
  for (const auto& cluster : provider.clusters()) true_replicas += cluster.replicas.size();

  std::cout << queries << " ECS queries -> " << replicas.size()
            << " distinct replica addresses in " << replica_subnets.size()
            << " /24s (ground truth: " << true_replicas << " replicas in "
            << provider.clusters().size() << " clusters)\n";
  std::cout << "ECS scopes returned:";
  for (const auto& [scope, count] : scope_histogram) {
    std::cout << " /" << scope << " x" << count;
  }
  std::cout << "\n\nThis is why a CDN might restrict ECS (§2.2): a weekend of queries\n"
               "maps a footprint. The paper argues the client-performance upside of\n"
               "unrestricted ECS outweighs this exposure.\n";
  return 0;
}
