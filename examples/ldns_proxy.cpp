// Drongo as a real local DNS proxy over UDP (the §4 deployment shape).
//
//   $ ./ldns_proxy [--serve seconds] [seed]
//
// Builds the simulated Internet, trains a Drongo client, then serves it as
// an LDNS proxy on a real loopback UDP socket. By default the example
// queries itself through the socket and prints a dig-style transcript; with
// --serve N it stays up so you can point dig at it:
//
//   dig @127.0.0.1 -p <port> img.googlecdn.sim
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <thread>

#include "core/drongo.hpp"
#include "dns/proxy.hpp"
#include "dns/udp.hpp"
#include "measure/testbed.hpp"

using namespace drongo;

int main(int argc, char** argv) {
  int serve_seconds = 0;
  std::uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serve") == 0 && i + 1 < argc) {
      serve_seconds = std::atoi(argv[++i]);
    } else {
      seed = std::strtoull(argv[i], nullptr, 10);
    }
  }

  measure::TestbedConfig config = measure::TestbedConfig::planetlab();
  config.client_count = 8;
  config.seed = seed;
  measure::Testbed testbed(config);

  // Train Drongo for client 0 against every provider (idle-time trials).
  measure::TrialRunner runner(&testbed, seed ^ 0x11);
  core::DrongoParams params;
  params.min_valley_frequency = 0.6;
  params.valley_threshold = 0.95;
  core::DrongoClient drongo(params, seed ^ 0x12);
  for (std::size_t p = 0; p < testbed.provider_count(); ++p) {
    drongo.train(runner, /*client=*/0, p, /*trials=*/5, /*spacing_hours=*/12.0);
  }
  std::cout << "Trained on " << testbed.provider_count() << " providers; tracking "
            << drongo.engine().tracked_windows() << " (domain, subnet) windows\n";

  // Mount Drongo in the proxy and serve it over a real UDP socket.
  dns::LdnsProxy proxy(&testbed.dns_network(), testbed.resolver_address(),
                       net::Ipv4Addr(127, 0, 0, 53), &drongo);
  dns::UdpDnsServer server(&proxy, 0);
  std::cout << "Drongo LDNS proxy listening on 127.0.0.1:" << server.port() << "\n";
  std::cout << "  try: dig @127.0.0.1 -p " << server.port() << " img.googlecdn.sim\n\n";

  // Self-demo: resolve every provider's first content name through the
  // socket and report where assimilation kicked in.
  dns::UdpDnsClient udp(2000);
  const net::Ipv4Addr proxy_identity(198, 18, 250, 1);
  udp.register_endpoint(proxy_identity, server.port());
  dns::StubResolver stub(&udp, testbed.clients()[0], proxy_identity, seed ^ 0x13);
  for (std::size_t p = 0; p < testbed.provider_count(); ++p) {
    const auto domain = testbed.content_names(p)[0];
    const auto before = proxy.assimilated();
    const auto result = stub.resolve_with_own_subnet(domain);
    const bool assimilated = proxy.assimilated() > before;
    std::cout << testbed.profile(p).name << "  " << domain.to_string() << " -> ";
    if (result.ok()) {
      std::cout << result.addresses.front().to_string()
                << (assimilated ? "   [subnet assimilation applied]" : "");
    } else {
      std::cout << dns::to_string(result.rcode);
    }
    std::cout << "\n";
  }
  std::cout << "\nproxy stats: " << proxy.forwarded() << " forwarded, "
            << proxy.assimilated() << " assimilated, " << server.served()
            << " datagrams served\n";

  if (serve_seconds > 0) {
    std::cout << "serving for " << serve_seconds << "s...\n";
    std::this_thread::sleep_for(std::chrono::seconds(serve_seconds));
  }
  return 0;
}
