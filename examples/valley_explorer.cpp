// Valley explorer: a PlanetLab-style measurement study (§3) on a custom
// simulated Internet.
//
//   $ ./valley_explorer [clients] [trials] [seed]
//
// Runs the full trial campaign, then reports everything §3 derives from it:
// usable route lengths, divergence, valley prevalence (Table 1), valley
// depth (Figure 6), and window-to-window stability (Figure 5's flat-curve
// property) — a working tour of the measurement methodology.
#include <cstdlib>
#include <iostream>

#include "analysis/prevalence.hpp"
#include "analysis/render.hpp"
#include "analysis/stability.hpp"
#include "measure/trial.hpp"

using namespace drongo;

int main(int argc, char** argv) {
  const int clients = argc > 1 ? std::atoi(argv[1]) : 24;
  const int trials = argc > 2 ? std::atoi(argv[2]) : 16;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  measure::TestbedConfig config = measure::TestbedConfig::planetlab();
  config.client_count = clients;
  config.seed = seed;
  measure::Testbed testbed(config);
  std::cout << "World: " << testbed.world().graph().node_count() << " ASes, "
            << testbed.world().graph().link_count() << " links; " << clients
            << " clients x " << testbed.provider_count() << " providers x " << trials
            << " trials\n\n";

  measure::TrialRunner runner(&testbed, seed ^ 0xE0);
  const auto records = runner.run_campaign(trials, /*spacing_hours=*/1.5);
  std::cout << records.size() << " trials collected\n\n";

  // --- Divergence (Figure 2's question: do hops see different replicas?)
  std::vector<std::vector<std::string>> divergence_cells;
  for (const auto& row : analysis::figure2(records)) {
    divergence_cells.push_back({row.provider, analysis::fmt(row.mean_divergence),
                                analysis::fmt(row.mean_usable_route_length)});
  }
  std::cout << analysis::render_table("Hop divergence",
                                      {"Provider", "divergence", "usable hops/route"},
                                      divergence_cells);

  // --- Valley prevalence (Table 1).
  std::cout << "\n";
  std::vector<std::vector<std::string>> prevalence_cells;
  for (const auto& row : analysis::table1(records)) {
    prevalence_cells.push_back({row.provider, analysis::fmt(row.pct_valleys_overall) + "%",
                                analysis::fmt(row.pct_routes_with_valley) + "%",
                                analysis::fmt(row.pct_pairs_vf_above_half) + "%"});
  }
  std::cout << analysis::render_table(
      "Valley prevalence", {"Provider", "% valleys", "% routes w/ valley", "% pairs vf>0.5"},
      prevalence_cells);

  // --- Valley depth (Figure 6).
  std::cout << "\nValley depth (latency ratio of valley occurrences, 0..1):\n";
  for (const auto& row : analysis::figure6(records)) {
    std::cout << analysis::render_box(row.provider, row.box, 0.0, 1.0);
  }

  // --- Stability (Figure 5's property, summarized as first-vs-last drift).
  std::cout << "\nPredictability (drift of window median ratios with time distance):\n";
  for (bool valley_only : {false, true}) {
    analysis::StabilityConfig stability;
    stability.valley_pairs_only = valley_only;
    stability.window_sizes = {1, 5};
    const auto series = analysis::figure5(records, stability);
    for (const auto& s : series) {
      if (s.points.size() < 2) continue;
      std::cout << "  " << (valley_only ? "valley pairs" : "all pairs    ") << " window "
                << s.window_size << ": near=" << analysis::fmt(s.points.front().mean_ratio_difference, 3)
                << " far=" << analysis::fmt(s.points.back().mean_ratio_difference, 3) << "\n";
    }
  }
  std::cout << "\nReading guide: valley-pair curves should be flatter and lower than\n"
               "all-pair curves, and window 5 flatter than window 1 — that stability\n"
               "is what lets Drongo predict valleys from a 5-trial window (§3.2.2).\n";
  return 0;
}
