// Quickstart: build a simulated Internet, find latency valleys, train
// Drongo, and watch it pick better CDN replicas — all in one file.
//
//   $ ./quickstart [seed]
//
// Walks through the paper's pipeline for a single client: ordinary ECS
// resolution, traceroute + hop filtering, subnet assimilation to discover
// hop replica sets, valley detection, and finally Drongo's trained decision
// applied to fresh queries.
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <memory>

#include "core/drongo.hpp"
#include "measure/testbed.hpp"
#include "measure/trial.hpp"

using namespace drongo;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // A small world: 6 CDNs, ~280 ASes, 12 clients.
  measure::TestbedConfig config = measure::TestbedConfig::planetlab();
  config.client_count = 12;
  config.seed = seed;
  measure::Testbed testbed(config);
  std::cout << "Simulated Internet: " << testbed.world().graph().node_count()
            << " ASes, " << testbed.world().graph().link_count() << " links, "
            << testbed.clients().size() << " clients, " << testbed.provider_count()
            << " CDNs\n\n";

  // --- One trial, narrated (paper §3.1.2) -------------------------------
  measure::TrialRunner runner(&testbed, seed ^ 0xABC);
  const std::size_t client = 0;
  const std::size_t provider = 0;  // Google-like
  auto trial = runner.run(client, provider, /*time_hours=*/0.0, /*label_index=*/0);

  std::cout << "Client " << trial.client.to_string() << " asks "
            << testbed.profile(provider).name << " for " << trial.domain << "\n";
  std::cout << "  CR-set (client replica set), CRMs:\n";
  for (const auto& m : trial.cr) {
    std::cout << "    " << m.replica.to_string() << "  " << std::fixed
              << std::setprecision(1) << m.rtt_ms << " ms\n";
  }
  std::cout << "  usable hops and their HR-sets (via subnet assimilation):\n";
  int valleys = 0;
  for (const auto* hop : trial.usable()) {
    const auto ratio = core::latency_ratio(trial, *hop, core::RatioConvention::deployment());
    std::cout << "    hop " << hop->ip.to_string() << " (" << hop->rdns << ", "
              << hop->asn.to_string() << ")";
    if (ratio) {
      std::cout << "  ratio HRM/CRM = " << std::setprecision(2) << *ratio
                << (core::is_valley(*ratio, 1.0) ? "   <-- latency valley" : "");
      if (core::is_valley(*ratio, 1.0)) ++valleys;
    }
    std::cout << "\n";
  }
  std::cout << "  " << valleys << " valley(s) in this trial\n\n";

  // --- Train Drongo, then see what it does ------------------------------
  // Scan the clients for one whose training window qualifies a subnet (a
  // well-served client legitimately has nothing to assimilate — the paper's
  // optimum affects ~70% of clients, not all).
  core::DrongoParams params;  // vf = 1.0, vt = 0.95, window 5: the optimum
  std::size_t chosen_client = client;
  auto drongo = std::make_unique<core::DrongoClient>(params, seed ^ 0xD0);
  for (std::size_t c = 0; c < testbed.clients().size(); ++c) {
    auto candidate = std::make_unique<core::DrongoClient>(params, seed ^ 0xD0 ^ c);
    const auto records = candidate->train(runner, c, provider, /*trials=*/5,
                                          /*spacing_hours=*/1.5,
                                          /*start_time_hours=*/1.0, /*label_index=*/0);
    const auto name = dns::DnsName::must_parse(records.front().domain);
    bool qualified = false;
    for (const auto& cand : candidate->engine().candidates(name.to_string())) {
      qualified |= cand.qualified;
    }
    drongo = std::move(candidate);
    chosen_client = c;
    if (qualified) break;
  }
  if (chosen_client != client) {
    std::cout << "(client " << chosen_client
              << " has a qualified valley-prone subnet; demonstrating with it)\n";
  }

  auto stub = testbed.make_stub(testbed.clients()[chosen_client], seed ^ 0x57AB);
  const auto domain = dns::DnsName::must_parse(trial.domain);

  // Baseline: ordinary resolution, first replica (respecting CDN order).
  const auto plain = stub.resolve_with_own_subnet(domain);
  // Drongo: assimilated resolution when a subnet qualified.
  const auto smart = drongo->resolve(stub, domain);

  auto& world = testbed.world();
  const auto client_ip = testbed.clients()[chosen_client];
  const double plain_ms = world.rtt_base_ms(client_ip, plain.addresses.front());
  const double smart_ms = world.rtt_base_ms(client_ip, smart.addresses.front());

  std::cout << "After a 5-trial training window:\n";
  std::cout << "  ordinary resolution -> " << plain.addresses.front().to_string() << "  "
            << std::setprecision(1) << plain_ms << " ms\n";
  std::cout << "  Drongo resolution   -> " << smart.addresses.front().to_string() << "  "
            << smart_ms << " ms"
            << (drongo->assimilated_queries() > 0 ? "  (subnet assimilation applied)"
                                                 : "  (no qualified subnet; client subnet used)")
            << "\n";
  if (smart_ms < plain_ms) {
    std::cout << "  improvement: " << std::setprecision(1)
              << (1.0 - smart_ms / plain_ms) * 100.0 << "%\n";
  }
  return 0;
}
