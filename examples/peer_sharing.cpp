// Peer-to-peer trial sharing (§7): splitting Drongo's measurement cost
// across clients that share a subnet.
//
//   $ ./peer_sharing [devices] [seed]
//
// Simulates a household/office /24 with several devices. One device runs
// the idle-time trials; every device's Drongo fills its windows from the
// shared pool. The output compares measurement cost and decisions with and
// without sharing.
#include <cstdlib>
#include <iostream>

#include "core/drongo.hpp"
#include "core/peer_share.hpp"
#include "measure/testbed.hpp"

using namespace drongo;

int main(int argc, char** argv) {
  const int devices = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  measure::TestbedConfig config = measure::TestbedConfig::planetlab();
  config.client_count = 4;
  config.seed = seed;
  measure::Testbed testbed(config);
  measure::TrialRunner runner(&testbed, seed ^ 0x31);

  // Lenient parameters for the demo: one training valley qualifies.
  core::DrongoParams params;
  params.min_valley_frequency = 0.2;
  params.valley_threshold = 1.0;

  // Without sharing: every device measures its own full window.
  const int window = static_cast<int>(params.window_size);
  const auto& network = testbed.dns_network();
  const auto queries_before_solo = network.exchange_count();
  std::vector<std::unique_ptr<core::DecisionEngine>> solo_engines;
  std::string domain;
  for (int d = 0; d < devices; ++d) {
    solo_engines.push_back(std::make_unique<core::DecisionEngine>(params, seed + d));
    for (int t = 0; t < window; ++t) {
      const auto trial = runner.run(0, 0, t * 12.0, 0);
      domain = trial.domain;
      solo_engines.back()->observe(trial);
    }
  }
  const auto solo_queries = network.exchange_count() - queries_before_solo;

  // With sharing: one device measures, all observe.
  const auto queries_before_shared = network.exchange_count();
  core::PeerSharePool pool;
  const auto group = core::share_group_key(testbed.world(), testbed.clients()[0],
                                           core::ShareScope::kSlash24);
  std::vector<std::unique_ptr<core::DecisionEngine>> shared_engines;
  for (int d = 0; d < devices; ++d) {
    shared_engines.push_back(std::make_unique<core::DecisionEngine>(params, seed + d));
    pool.join(group, shared_engines.back().get());
  }
  for (int t = 0; t < window; ++t) {
    pool.publish(group, runner.run(0, 0, 100.0 + t * 12.0, 0));
  }
  const auto shared_queries = network.exchange_count() - queries_before_shared;

  std::cout << devices << " devices in " << group << ", window " << window << ":\n";
  std::cout << "  without sharing: " << solo_queries << " DNS exchanges\n";
  std::cout << "  with sharing:    " << shared_queries << " DNS exchanges ("
            << pool.trials_saved() << " peer trials saved)\n";
  std::cout << "  reduction:       "
            << (solo_queries == 0
                    ? 0.0
                    : (1.0 - static_cast<double>(shared_queries) /
                                 static_cast<double>(solo_queries)) *
                          100.0)
            << "%\n\n";

  // Decisions agree across shared devices.
  int decided = 0;
  for (auto& engine : shared_engines) {
    if (engine->choose(domain)) ++decided;
  }
  std::cout << decided << "/" << devices
            << " shared devices hold a qualified assimilation subnet for " << domain
            << "\n";
  std::cout << "\nThe paper leaves this component as future work (§7); here it is the\n"
               "natural answer to its mass-deployment measurement-traffic concern.\n";
  return 0;
}
