# Applied after gtest test discovery (see TEST_INCLUDE_FILES in
# CMakeLists.txt): gives every fault_campaign test BOTH the concurrency and
# faults labels, which gtest_discover_tests(PROPERTIES LABELS ...) cannot
# express because its script writer flattens the semicolon.
if(fault_campaign_test_names)
  set_tests_properties(${fault_campaign_test_names}
    PROPERTIES LABELS "concurrency;faults")
endif()
