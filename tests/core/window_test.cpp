#include "core/window.hpp"

#include <gtest/gtest.h>

#include "net/error.hpp"

namespace drongo::core {
namespace {

TEST(TrainingWindowTest, FillsToCapacityThenSlides) {
  TrainingWindow w(3);
  EXPECT_FALSE(w.full());
  w.add(0.5);
  w.add(0.6);
  EXPECT_FALSE(w.full());
  w.add(0.7);
  EXPECT_TRUE(w.full());
  w.add(0.8);  // evicts 0.5
  EXPECT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.ratios().front(), 0.6);
  EXPECT_DOUBLE_EQ(w.ratios().back(), 0.8);
}

TEST(TrainingWindowTest, ZeroCapacityRejected) {
  EXPECT_THROW(TrainingWindow(0), net::InvalidArgument);
}

TEST(TrainingWindowTest, ValleyFrequencyCountsStrictlyBelowThreshold) {
  TrainingWindow w(5);
  w.add(0.5);   // valley at vt=1.0
  w.add(0.94);  // valley at vt=0.95 too
  w.add(0.95);  // NOT a valley at vt=0.95 (strict <)
  w.add(1.0);   // never a valley
  w.add(1.3);
  EXPECT_DOUBLE_EQ(w.valley_frequency(1.0), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(w.valley_frequency(0.95), 2.0 / 5.0);
  EXPECT_DOUBLE_EQ(w.valley_frequency(0.5), 0.0);
}

TEST(TrainingWindowTest, EmptyWindowHasZeroFrequency) {
  TrainingWindow w(5);
  EXPECT_DOUBLE_EQ(w.valley_frequency(1.0), 0.0);
  EXPECT_FALSE(w.any_valley(1.0));
}

TEST(TrainingWindowTest, AnyValleyMatchesFrequency) {
  TrainingWindow w(5);
  w.add(1.1);
  w.add(1.2);
  EXPECT_FALSE(w.any_valley(1.0));
  w.add(0.99);
  EXPECT_TRUE(w.any_valley(1.0));
  EXPECT_FALSE(w.any_valley(0.9));
}

TEST(TrainingWindowTest, FrequencyTracksSlidingContents) {
  TrainingWindow w(2);
  w.add(0.5);
  w.add(0.5);
  EXPECT_DOUBLE_EQ(w.valley_frequency(1.0), 1.0);
  w.add(1.5);
  w.add(1.5);
  EXPECT_DOUBLE_EQ(w.valley_frequency(1.0), 0.0);
}

}  // namespace
}  // namespace drongo::core
