#include "core/valley.hpp"

#include <gtest/gtest.h>

namespace drongo::core {
namespace {

measure::TrialRecord trial_with_crms(std::vector<double> crms) {
  measure::TrialRecord trial;
  for (std::size_t i = 0; i < crms.size(); ++i) {
    trial.cr.push_back({net::Ipv4Addr(21, 0, 0, static_cast<std::uint8_t>(i)), crms[i]});
  }
  return trial;
}

measure::HopRecord hop_with_hrms(std::vector<double> hrms) {
  measure::HopRecord hop;
  hop.usable = true;
  for (std::size_t i = 0; i < hrms.size(); ++i) {
    hop.hr.push_back({net::Ipv4Addr(22, 0, 0, static_cast<std::uint8_t>(i)), hrms[i]});
  }
  return hop;
}

TEST(ValleyTest, CrmConventions) {
  const auto trial = trial_with_crms({120.0, 80.0, 100.0});
  EXPECT_DOUBLE_EQ(*crm_value(trial, CrmPick::kMin), 80.0);
  EXPECT_DOUBLE_EQ(*crm_value(trial, CrmPick::kFirst), 120.0);
  EXPECT_FALSE(crm_value(measure::TrialRecord{}, CrmPick::kMin).has_value());
}

TEST(ValleyTest, HrmConventions) {
  const auto hop = hop_with_hrms({50.0, 90.0, 70.0});
  EXPECT_DOUBLE_EQ(*hrm_value(hop, HrmPick::kFirst), 50.0);
  EXPECT_DOUBLE_EQ(*hrm_value(hop, HrmPick::kMin), 50.0);
  EXPECT_DOUBLE_EQ(*hrm_value(hop, HrmPick::kMedian), 70.0);
  EXPECT_FALSE(hrm_value(measure::HopRecord{}, HrmPick::kMedian).has_value());
}

TEST(ValleyTest, MedianOfEvenSetInterpolates) {
  const auto hop = hop_with_hrms({40.0, 60.0});
  EXPECT_DOUBLE_EQ(*hrm_value(hop, HrmPick::kMedian), 50.0);
}

TEST(ValleyTest, LatencyRatioCombinesConventions) {
  const auto trial = trial_with_crms({120.0, 80.0});
  const auto hop = hop_with_hrms({40.0, 60.0});
  // PlanetLab: median HRM / min CRM = 50 / 80.
  EXPECT_DOUBLE_EQ(*latency_ratio(trial, hop, RatioConvention::planetlab()), 50.0 / 80.0);
  // Deployment: first HR / first CR = 40 / 120.
  EXPECT_DOUBLE_EQ(*latency_ratio(trial, hop, RatioConvention::deployment()), 40.0 / 120.0);
}

TEST(ValleyTest, RatioMissingWhenEitherSideEmpty) {
  const auto trial = trial_with_crms({100.0});
  EXPECT_FALSE(latency_ratio(trial, measure::HopRecord{}, RatioConvention::deployment())
                   .has_value());
  EXPECT_FALSE(latency_ratio(measure::TrialRecord{}, hop_with_hrms({50.0}),
                             RatioConvention::deployment())
                   .has_value());
}

TEST(ValleyTest, ValleyPredicateIsStrict) {
  EXPECT_TRUE(is_valley(0.94, 0.95));
  EXPECT_FALSE(is_valley(0.95, 0.95));
  EXPECT_FALSE(is_valley(1.0, 1.0));
  EXPECT_TRUE(is_valley(0.999, 1.0));
}

}  // namespace
}  // namespace drongo::core
