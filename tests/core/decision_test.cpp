// DecisionEngine: the §4.3 rules.
#include <gtest/gtest.h>

#include "core/decision.hpp"
#include "net/error.hpp"

namespace drongo::core {
namespace {

/// Builds a trial for `domain` where one usable hop with `subnet` observed
/// the given latency ratio (CRM fixed at 100 ms, deployment convention).
measure::TrialRecord trial(const std::string& domain, const net::Prefix& subnet,
                           double ratio) {
  measure::TrialRecord t;
  t.provider = "Test";
  t.domain = domain;
  t.cr.push_back({net::Ipv4Addr(21, 0, 0, 1), 100.0});
  measure::HopRecord hop;
  hop.subnet = subnet;
  hop.usable = true;
  hop.hr.push_back({net::Ipv4Addr(22, 0, 0, 1), ratio * 100.0});
  t.hops.push_back(std::move(hop));
  return t;
}

/// A trial with several hops at once.
measure::TrialRecord trial_multi(const std::string& domain,
                                 const std::vector<std::pair<net::Prefix, double>>& hops) {
  measure::TrialRecord t;
  t.provider = "Test";
  t.domain = domain;
  t.cr.push_back({net::Ipv4Addr(21, 0, 0, 1), 100.0});
  for (const auto& [subnet, ratio] : hops) {
    measure::HopRecord hop;
    hop.subnet = subnet;
    hop.usable = true;
    hop.hr.push_back({net::Ipv4Addr(22, 0, 0, 1), ratio * 100.0});
    t.hops.push_back(std::move(hop));
  }
  return t;
}

const net::Prefix kSubnetA = net::Prefix::must_parse("20.1.0.0/24");
const net::Prefix kSubnetB = net::Prefix::must_parse("20.2.0.0/24");

DrongoParams params(double vf, double vt, std::size_t window = 5) {
  DrongoParams p;
  p.min_valley_frequency = vf;
  p.valley_threshold = vt;
  p.window_size = window;
  return p;
}

TEST(DecisionEngineTest, NoDataMeansNoAssimilation) {
  DecisionEngine engine(params(1.0, 0.95));
  EXPECT_FALSE(engine.choose("img.cdn.sim").has_value());
}

TEST(DecisionEngineTest, PartialWindowIsInsufficientData) {
  DecisionEngine engine(params(1.0, 0.95));
  for (int i = 0; i < 4; ++i) {
    engine.observe(trial("img.cdn.sim", kSubnetA, 0.5));
  }
  // Four perfect valleys but the window holds five: not enough.
  EXPECT_FALSE(engine.choose("img.cdn.sim").has_value());
  engine.observe(trial("img.cdn.sim", kSubnetA, 0.5));
  EXPECT_EQ(engine.choose("img.cdn.sim"), kSubnetA);
}

TEST(DecisionEngineTest, FrequencyThresholdGates) {
  // vf = 1.0 requires a valley in every window trial.
  DecisionEngine strict(params(1.0, 0.95));
  for (int i = 0; i < 4; ++i) strict.observe(trial("d.sim", kSubnetA, 0.5));
  strict.observe(trial("d.sim", kSubnetA, 1.2));  // one miss
  EXPECT_FALSE(strict.choose("d.sim").has_value());

  // vf = 0.8 tolerates exactly that.
  DecisionEngine lenient(params(0.8, 0.95));
  for (int i = 0; i < 4; ++i) lenient.observe(trial("d.sim", kSubnetA, 0.5));
  lenient.observe(trial("d.sim", kSubnetA, 1.2));
  EXPECT_EQ(lenient.choose("d.sim"), kSubnetA);
}

TEST(DecisionEngineTest, ValleyThresholdGates) {
  // Ratios of 0.9: valleys at vt 0.95 but not at vt 0.85.
  DecisionEngine strict(params(1.0, 0.85));
  DecisionEngine loose(params(1.0, 0.95));
  for (int i = 0; i < 5; ++i) {
    strict.observe(trial("d.sim", kSubnetA, 0.9));
    loose.observe(trial("d.sim", kSubnetA, 0.9));
  }
  EXPECT_FALSE(strict.choose("d.sim").has_value());
  EXPECT_EQ(loose.choose("d.sim"), kSubnetA);
}

TEST(DecisionEngineTest, HighestFrequencyWins) {
  DecisionEngine engine(params(0.2, 1.0));
  for (int i = 0; i < 5; ++i) {
    // A valleys every time; B only twice.
    engine.observe(trial_multi("d.sim", {{kSubnetA, 0.8}, {kSubnetB, i < 2 ? 0.7 : 1.1}}));
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(engine.choose("d.sim"), kSubnetA);
  }
}

TEST(DecisionEngineTest, TiesBrokenAcrossBothCandidates) {
  DecisionEngine engine(params(1.0, 1.0), /*seed=*/12345);
  for (int i = 0; i < 5; ++i) {
    engine.observe(trial_multi("d.sim", {{kSubnetA, 0.8}, {kSubnetB, 0.8}}));
  }
  std::set<net::Prefix> chosen;
  for (int i = 0; i < 50; ++i) {
    chosen.insert(*engine.choose("d.sim"));
  }
  EXPECT_EQ(chosen.size(), 2u);  // random tie-break hits both eventually
}

TEST(DecisionEngineTest, DomainsAreIsolated) {
  DecisionEngine engine(params(1.0, 0.95));
  for (int i = 0; i < 5; ++i) {
    engine.observe(trial("one.sim", kSubnetA, 0.5));
  }
  EXPECT_TRUE(engine.choose("one.sim").has_value());
  EXPECT_FALSE(engine.choose("other.sim").has_value());
  // Domain matching is case-insensitive.
  EXPECT_TRUE(engine.choose("ONE.sim").has_value());
}

TEST(DecisionEngineTest, UnusableHopsAreNotTracked) {
  DecisionEngine engine(params(0.2, 1.0));
  auto t = trial("d.sim", kSubnetA, 0.5);
  t.hops[0].usable = false;
  for (int i = 0; i < 5; ++i) engine.observe(t);
  EXPECT_FALSE(engine.choose("d.sim").has_value());
  EXPECT_EQ(engine.tracked_windows(), 0u);
}

TEST(DecisionEngineTest, ZeroFrequencyCandidateNeverChosen) {
  // Even at min_valley_frequency = 0, a subnet with no valleys must not be
  // picked (assimilation needs evidence of benefit).
  DecisionEngine engine(params(0.0, 1.0));
  for (int i = 0; i < 5; ++i) engine.observe(trial("d.sim", kSubnetA, 1.2));
  EXPECT_FALSE(engine.choose("d.sim").has_value());
}

TEST(DecisionEngineTest, CandidatesIntrospection) {
  DecisionEngine engine(params(0.6, 1.0));
  for (int i = 0; i < 5; ++i) {
    engine.observe(trial_multi("d.sim", {{kSubnetA, 0.8}, {kSubnetB, i < 2 ? 0.7 : 1.1}}));
  }
  const auto candidates = engine.candidates("d.sim");
  ASSERT_EQ(candidates.size(), 2u);
  for (const auto& c : candidates) {
    if (c.subnet == kSubnetA) {
      EXPECT_DOUBLE_EQ(c.valley_frequency, 1.0);
      EXPECT_TRUE(c.qualified);
    } else {
      EXPECT_DOUBLE_EQ(c.valley_frequency, 0.4);
      EXPECT_FALSE(c.qualified);
    }
  }
  EXPECT_TRUE(engine.candidates("unknown.sim").empty());
}

TEST(DecisionEngineTest, WindowSlidesWithNewEvidence) {
  DecisionEngine engine(params(1.0, 0.95));
  for (int i = 0; i < 5; ++i) engine.observe(trial("d.sim", kSubnetA, 0.5));
  EXPECT_TRUE(engine.choose("d.sim").has_value());
  // Five non-valleys push the old evidence out.
  for (int i = 0; i < 5; ++i) engine.observe(trial("d.sim", kSubnetA, 1.5));
  EXPECT_FALSE(engine.choose("d.sim").has_value());
}

TEST(DecisionEngineTest, ParameterValidation) {
  EXPECT_THROW(DecisionEngine(params(1.0, 0.0)), net::InvalidArgument);
  EXPECT_THROW(DecisionEngine(params(1.0, 1.5)), net::InvalidArgument);
  EXPECT_THROW(DecisionEngine(params(-0.1, 0.95)), net::InvalidArgument);
  EXPECT_THROW(DecisionEngine(params(1.1, 0.95)), net::InvalidArgument);
  EXPECT_NO_THROW(DecisionEngine(params(0.0, 1.0)));
}

}  // namespace
}  // namespace drongo::core
