// ReplicaRacer and DrongoClient Go-With-The-Winner tests: determinism,
// winner/tie conventions, k clamping, tallies, and the racing resolution
// path end to end on a small testbed.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/drongo.hpp"
#include "core/race.hpp"
#include "measure/testbed.hpp"
#include "net/error.hpp"
#include "obs/metrics.hpp"

namespace drongo::core {
namespace {

measure::TestbedConfig tiny_config(std::uint64_t seed = 61) {
  measure::TestbedConfig config;
  config.as_config.tier1_count = 4;
  config.as_config.tier2_count = 10;
  config.as_config.stub_count = 40;
  config.client_count = 8;
  config.seed = seed;
  return config;
}

class RaceFixture : public ::testing::Test {
 protected:
  RaceFixture() : testbed_(tiny_config()) {}

  /// One replica from each of the first `n` clusters of provider 0.
  std::vector<net::Ipv4Addr> replicas(std::size_t n) {
    std::vector<net::Ipv4Addr> out;
    const auto& clusters = testbed_.provider(0).clusters();
    for (std::size_t i = 0; i < clusters.size() && out.size() < n; ++i) {
      out.push_back(clusters[i].replicas[0]);
    }
    return out;
  }

  measure::Testbed testbed_;
};

TEST_F(RaceFixture, SameRngSameRace) {
  ReplicaRacer racer(RaceConfig{.k = 3});
  const auto field = replicas(4);
  const auto client = testbed_.clients()[0];
  net::Rng rng_a(5);
  net::Rng rng_b(5);
  const RaceResult a = racer.race(testbed_.world(), client, field, rng_a);
  const RaceResult b = racer.race(testbed_.world(), client, field, rng_b);
  EXPECT_EQ(a.contestants, b.contestants);
  EXPECT_EQ(a.rtts_ms, b.rtts_ms);
  EXPECT_EQ(a.winner_index, b.winner_index);
}

TEST_F(RaceFixture, WinnerHasTheMinimumRtt) {
  ReplicaRacer racer(RaceConfig{.k = 4});
  const auto field = replicas(4);
  net::Rng rng(9);
  const RaceResult result = racer.race(testbed_.world(), testbed_.clients()[1], field, rng);
  ASSERT_EQ(result.contestants.size(), std::min<std::size_t>(4, field.size()));
  const auto min_it = std::min_element(result.rtts_ms.begin(), result.rtts_ms.end());
  EXPECT_EQ(result.winner_index,
            static_cast<std::size_t>(min_it - result.rtts_ms.begin()));
  EXPECT_DOUBLE_EQ(result.winner_rtt_ms(), *min_it);
  EXPECT_EQ(result.winner(), result.contestants[result.winner_index]);
}

TEST_F(RaceFixture, FieldIsClampedToTheAnswer) {
  ReplicaRacer racer(RaceConfig{.k = 16});
  auto field = replicas(2);
  ASSERT_EQ(field.size(), 2u);
  net::Rng rng(9);
  const RaceResult result = racer.race(testbed_.world(), testbed_.clients()[0], field, rng);
  EXPECT_EQ(result.contestants.size(), 2u);
}

TEST_F(RaceFixture, SubTwoKDegeneratesToFirstReplica) {
  // k < 2 still probes one contestant (the CDN's choice) but can never
  // switch — the paper-faithful baseline.
  for (int k : {0, 1}) {
    ReplicaRacer racer(RaceConfig{.k = k});
    net::Rng rng(9);
    const RaceResult result =
        racer.race(testbed_.world(), testbed_.clients()[0], replicas(4), rng);
    EXPECT_EQ(result.contestants.size(), 1u) << "k=" << k;
    EXPECT_EQ(result.winner_index, 0u);
    EXPECT_FALSE(result.switched());
  }
}

TEST_F(RaceFixture, EmptyFieldAndNegativeKAreRejected) {
  EXPECT_THROW(ReplicaRacer(RaceConfig{.k = -1}), net::InvalidArgument);
  ReplicaRacer racer;
  net::Rng rng(9);
  const std::vector<net::Ipv4Addr> empty;
  EXPECT_THROW((void)racer.race(testbed_.world(), testbed_.clients()[0], empty, rng),
               net::InvalidArgument);
}

TEST_F(RaceFixture, TalliesPartitionTheRaces) {
  ReplicaRacer racer(RaceConfig{.k = 3});
  net::Rng rng(17);
  const auto field = replicas(3);
  for (int i = 0; i < 32; ++i) {
    (void)racer.race(testbed_.world(), testbed_.clients()[i % 4], field, rng);
  }
  EXPECT_EQ(racer.races(), 32u);
  EXPECT_EQ(racer.switched() + racer.wins_first(), 32u);
}

TEST_F(RaceFixture, RegistryMirrorsTheTallies) {
  obs::Registry registry;
  ReplicaRacer racer(RaceConfig{.k = 2});
  racer.set_registry(&registry);
  net::Rng rng(23);
  for (int i = 0; i < 8; ++i) {
    (void)racer.race(testbed_.world(), testbed_.clients()[0], replicas(3), rng);
  }
  const obs::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("core.gwtw.races"), 8u);
  EXPECT_EQ(snap.histograms.at("core.gwtw.winner_rtt_ms").count, 8u);
}

TEST_F(RaceFixture, ResolveRacingCommitsToTheWinner) {
  DrongoClient drongo;
  drongo.enable_gwtw(2);
  ASSERT_NE(drongo.racer(), nullptr);
  auto stub = testbed_.make_stub(testbed_.clients()[0], 5);
  const dns::DnsName domain = testbed_.content_names(0)[0];
  net::Rng rng(31);
  const RacedResolution raced =
      drongo.resolve_racing(stub, domain, testbed_.world(), rng);
  ASSERT_TRUE(raced.resolution.ok());
  ASSERT_TRUE(raced.chosen.has_value());
  if (raced.resolution.addresses.size() > 1) {
    ASSERT_TRUE(raced.race.has_value());
    EXPECT_EQ(*raced.chosen, raced.race->winner());
  } else {
    EXPECT_EQ(*raced.chosen, raced.resolution.addresses.front());
  }
}

TEST_F(RaceFixture, GwtwDisabledKeepsTheCdnsOrder) {
  DrongoClient drongo;
  drongo.enable_gwtw(1);  // < 2: racing is a no-op
  EXPECT_EQ(drongo.racer(), nullptr);
  auto stub = testbed_.make_stub(testbed_.clients()[2], 5);
  const dns::DnsName domain = testbed_.content_names(1)[0];
  net::Rng rng(37);
  const RacedResolution raced =
      drongo.resolve_racing(stub, domain, testbed_.world(), rng);
  ASSERT_TRUE(raced.resolution.ok());
  EXPECT_FALSE(raced.race.has_value());
  ASSERT_TRUE(raced.chosen.has_value());
  EXPECT_EQ(*raced.chosen, raced.resolution.addresses.front());
}

TEST_F(RaceFixture, NegativeGwtwKThrows) {
  DrongoClient drongo;
  EXPECT_THROW(drongo.enable_gwtw(-1), net::InvalidArgument);
}

}  // namespace
}  // namespace drongo::core
