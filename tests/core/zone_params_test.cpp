#include "core/zone_params.hpp"

#include <gtest/gtest.h>

namespace drongo::core {
namespace {

measure::TrialRecord trial(const std::string& domain, double ratio) {
  measure::TrialRecord t;
  t.provider = "P";
  t.domain = domain;
  t.cr.push_back({net::Ipv4Addr(21, 0, 0, 1), 100.0});
  measure::HopRecord hop;
  hop.subnet = net::Prefix::must_parse("20.9.0.0/24");
  hop.usable = true;
  hop.hr.push_back({net::Ipv4Addr(22, 0, 0, 1), ratio * 100.0});
  t.hops.push_back(std::move(hop));
  return t;
}

TEST(ZoneParamsTest, RoutesDomainsToTheirZoneEngines) {
  ZoneParamsSelector selector;
  DrongoParams lenient;
  lenient.min_valley_frequency = 0.2;
  lenient.valley_threshold = 1.0;
  selector.set_zone_params(dns::DnsName::must_parse("alicdn.sim"), lenient);
  EXPECT_EQ(selector.zone_count(), 1u);

  // Ratios of 0.97: valleys at vt=1.0 (lenient zone) but NOT at the default
  // vt=0.95 — so only the configured zone ends up assimilating.
  for (int i = 0; i < 5; ++i) {
    selector.observe(trial("img.alicdn.sim", 0.97));
    selector.observe(trial("img.googlecdn.sim", 0.97));
  }
  const net::Prefix client = net::Prefix::must_parse("20.0.40.0/24");
  EXPECT_TRUE(selector.select_subnet(dns::DnsName::must_parse("img.alicdn.sim"), client)
                  .has_value());
  EXPECT_FALSE(
      selector.select_subnet(dns::DnsName::must_parse("img.googlecdn.sim"), client)
          .has_value());
}

TEST(ZoneParamsTest, MostSpecificZoneWins) {
  ZoneParamsSelector selector;
  DrongoParams strict;  // vf=1.0, vt=0.95
  DrongoParams lenient;
  lenient.min_valley_frequency = 0.2;
  lenient.valley_threshold = 1.0;
  selector.set_zone_params(dns::DnsName::must_parse("sim"), strict);
  selector.set_zone_params(dns::DnsName::must_parse("alicdn.sim"), lenient);

  // 0.97 ratios qualify only under the lenient (more specific) zone.
  for (int i = 0; i < 5; ++i) {
    selector.observe(trial("img.alicdn.sim", 0.97));
    selector.observe(trial("img.other.sim", 0.97));
  }
  const net::Prefix client = net::Prefix::must_parse("20.0.40.0/24");
  EXPECT_TRUE(selector.select_subnet(dns::DnsName::must_parse("img.alicdn.sim"), client)
                  .has_value());
  EXPECT_FALSE(selector.select_subnet(dns::DnsName::must_parse("img.other.sim"), client)
                   .has_value());
}

TEST(ZoneParamsTest, DefaultEngineHandlesUnconfiguredZones) {
  ZoneParamsSelector selector;  // default params vf=1.0, vt=0.95
  for (int i = 0; i < 5; ++i) {
    selector.observe(trial("img.any.sim", 0.5));
  }
  const net::Prefix client = net::Prefix::must_parse("20.0.40.0/24");
  EXPECT_TRUE(selector.select_subnet(dns::DnsName::must_parse("img.any.sim"), client)
                  .has_value());
}

TEST(ZoneParamsTest, ReconfiguringAZoneResetsItsWindows) {
  ZoneParamsSelector selector;
  DrongoParams lenient;
  lenient.min_valley_frequency = 0.2;
  lenient.valley_threshold = 1.0;
  selector.set_zone_params(dns::DnsName::must_parse("alicdn.sim"), lenient);
  for (int i = 0; i < 5; ++i) selector.observe(trial("img.alicdn.sim", 0.5));
  const net::Prefix client = net::Prefix::must_parse("20.0.40.0/24");
  ASSERT_TRUE(selector.select_subnet(dns::DnsName::must_parse("img.alicdn.sim"), client)
                  .has_value());
  selector.set_zone_params(dns::DnsName::must_parse("alicdn.sim"), lenient);
  EXPECT_FALSE(selector.select_subnet(dns::DnsName::must_parse("img.alicdn.sim"), client)
                   .has_value());
}

}  // namespace
}  // namespace drongo::core
