// Crowd-shared valley store: semantics, routing clusters, and the
// determinism contract (any contribution interleaving, any thread count ->
// identical state). The threaded stress test runs under the `sharing` CTest
// label, which the analysis matrix includes in its TSan stage.
#include "core/valley_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "core/drongo.hpp"
#include "core/peer_share.hpp"
#include "measure/testbed.hpp"
#include "net/error.hpp"
#include "obs/metrics.hpp"

namespace drongo::core {
namespace {

/// A hand-built trial with one usable hop at `subnet` whose ratio is
/// hr / cr under the deployment (first/first) convention.
measure::TrialRecord make_trial(const std::string& domain, const net::Prefix& subnet,
                                double cr_ms, double hr_ms) {
  measure::TrialRecord trial;
  trial.domain = domain;
  trial.cr.push_back({net::Ipv4Addr(198, 18, 0, 1), cr_ms});
  measure::HopRecord hop;
  hop.subnet = subnet;
  hop.usable = true;
  hop.hr.push_back({net::Ipv4Addr(198, 18, 0, 2), hr_ms});
  trial.hops.push_back(hop);
  return trial;
}

const net::Prefix kValleySubnet = net::Prefix::must_parse("10.7.0.0/16");
const net::Prefix kFlatSubnet = net::Prefix::must_parse("10.9.0.0/16");

ValleyStoreParams quick_params() {
  ValleyStoreParams params;
  params.min_observations = 3;
  return params;
}

TEST(ValleyStoreTest, QualifiesOnlyWithEnoughPooledValleyObservations) {
  ValleyStore store(quick_params());
  // Two contributions: below min_observations, nothing qualifies.
  store.contribute("c1", make_trial("img.cdn", kValleySubnet, 100.0, 50.0));
  store.contribute("c1", make_trial("img.cdn", kValleySubnet, 100.0, 60.0));
  EXPECT_FALSE(store.choose("c1", "img.cdn").has_value());
  // Third valley observation crosses the threshold.
  store.contribute("c1", make_trial("img.cdn", kValleySubnet, 100.0, 70.0));
  const auto choice = store.choose("c1", "img.cdn");
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(*choice, kValleySubnet);
}

TEST(ValleyStoreTest, NonValleyRatiosDisqualifyUnderFullValleyFrequency) {
  ValleyStore store(quick_params());  // vf = 1.0: every ratio must be a valley
  store.contribute("c1", make_trial("img.cdn", kFlatSubnet, 100.0, 50.0));
  store.contribute("c1", make_trial("img.cdn", kFlatSubnet, 100.0, 60.0));
  store.contribute("c1", make_trial("img.cdn", kFlatSubnet, 100.0, 120.0));  // not a valley
  EXPECT_FALSE(store.choose("c1", "img.cdn").has_value());
  const auto cands = store.candidates("c1", "img.cdn");
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].observations, 3u);
  EXPECT_EQ(cands[0].valleys, 2u);
  EXPECT_FALSE(cands[0].qualified);
}

TEST(ValleyStoreTest, ClustersAndDomainsAreIsolated) {
  ValleyStore store(quick_params());
  for (int i = 0; i < 3; ++i) {
    store.contribute("c1", make_trial("img.cdn", kValleySubnet, 100.0, 50.0));
  }
  EXPECT_TRUE(store.choose("c1", "img.cdn").has_value());
  EXPECT_FALSE(store.choose("c2", "img.cdn").has_value());
  EXPECT_FALSE(store.choose("c1", "video.cdn").has_value());
  // Domains are case-insensitive, like DecisionEngine's windows.
  EXPECT_TRUE(store.choose("c1", "IMG.cdn").has_value());
}

TEST(ValleyStoreTest, FailedTrialsTeachNothing) {
  ValleyStore store(quick_params());
  for (int i = 0; i < 5; ++i) {
    auto trial = make_trial("img.cdn", kValleySubnet, 100.0, 50.0);
    trial.outcome = measure::TrialOutcome::kFailed;
    store.contribute("c1", trial);
  }
  EXPECT_FALSE(store.choose("c1", "img.cdn").has_value());
  EXPECT_EQ(store.stats().contributions, 0u);
}

TEST(ValleyStoreTest, HighestValleyFrequencyWinsTiesGoToWalkOrder) {
  ValleyStoreParams params;
  params.min_observations = 2;
  params.min_valley_frequency = 0.5;
  ValleyStore store(params);
  // kFlatSubnet: vf 1/2. kValleySubnet: vf 2/2 -> wins despite later walk
  // position (10.7 < 10.9 so kValleySubnet walks first anyway; also check
  // a true tie below).
  store.contribute("c1", make_trial("img.cdn", kFlatSubnet, 100.0, 50.0));
  store.contribute("c1", make_trial("img.cdn", kFlatSubnet, 100.0, 120.0));
  store.contribute("c1", make_trial("img.cdn", kValleySubnet, 100.0, 50.0));
  store.contribute("c1", make_trial("img.cdn", kValleySubnet, 100.0, 60.0));
  auto choice = store.choose("c1", "img.cdn");
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(*choice, kValleySubnet);

  // A true tie (both vf = 1.0): the first subnet in canonical trie walk
  // order wins, deterministically.
  ValleyStore tied(params);
  tied.contribute("c1", make_trial("img.cdn", kFlatSubnet, 100.0, 50.0));
  tied.contribute("c1", make_trial("img.cdn", kFlatSubnet, 100.0, 50.0));
  tied.contribute("c1", make_trial("img.cdn", kValleySubnet, 100.0, 50.0));
  tied.contribute("c1", make_trial("img.cdn", kValleySubnet, 100.0, 50.0));
  choice = tied.choose("c1", "img.cdn");
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(*choice, kValleySubnet);  // 10.7.0.0/16 < 10.9.0.0/16
}

TEST(ValleyStoreTest, RegistryMirrorsCounters) {
  obs::Registry registry;
  ValleyStore store(quick_params());
  store.set_registry(&registry);
  for (int i = 0; i < 3; ++i) {
    store.contribute("c1", make_trial("img.cdn", kValleySubnet, 100.0, 50.0));
  }
  EXPECT_TRUE(store.choose("c1", "img.cdn").has_value());
  EXPECT_FALSE(store.choose("c2", "img.cdn").has_value());
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counters.at("core.valley_store.contributions"), 3u);
  EXPECT_EQ(snapshot.counters.at("core.valley_store.valley_observations"), 3u);
  EXPECT_EQ(snapshot.counters.at("core.valley_store.lookups"), 2u);
  EXPECT_EQ(snapshot.counters.at("core.valley_store.shared_hits"), 1u);
  EXPECT_EQ(snapshot.counters.at("core.valley_store.shared_misses"), 1u);
}

TEST(ValleyStoreTest, RejectsDegenerateParams) {
  ValleyStoreParams bad = quick_params();
  bad.min_observations = 0;
  EXPECT_THROW(ValleyStore{bad}, net::InvalidArgument);
  bad = quick_params();
  bad.valley_threshold = 0.0;
  EXPECT_THROW(ValleyStore{bad}, net::InvalidArgument);
  bad = quick_params();
  bad.min_valley_frequency = 1.5;
  EXPECT_THROW(ValleyStore{bad}, net::InvalidArgument);
}

TEST(ValleyStoreTest, DrongoClientFallsBackToCrowdKnowledge) {
  ValleyStore store(quick_params());
  for (int i = 0; i < 3; ++i) {
    store.contribute("cluster-a", make_trial("img.cdn", kValleySubnet, 100.0, 50.0));
  }
  DrongoClient fresh;  // empty engine: no private windows at all
  fresh.share_via(&store, "cluster-a");
  const auto subnet = fresh.select_subnet(dns::DnsName::must_parse("img.cdn"),
                                          net::Prefix::must_parse("10.50.0.0/24"));
  ASSERT_TRUE(subnet.has_value());
  EXPECT_EQ(*subnet, kValleySubnet);
  EXPECT_EQ(fresh.shared_assimilations(), 1u);

  DrongoClient loner;  // not sharing: same engine state, no crowd, no subnet
  EXPECT_FALSE(loner
                   .select_subnet(dns::DnsName::must_parse("img.cdn"),
                                  net::Prefix::must_parse("10.50.0.0/24"))
                   .has_value());
}

TEST(ValleyStoreTest, PeerSharePoolBridgesIntoStore) {
  ValleyStore store(quick_params());
  PeerSharePool pool;
  pool.attach_store(&store);
  // Publishing into an empty group still feeds the shared store: the pool
  // is the ingestion seam even when no engine joined the group yet.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(pool.publish("group-1", make_trial("img.cdn", kValleySubnet, 100.0, 50.0)),
              0u);
  }
  EXPECT_TRUE(store.choose("group-1", "img.cdn").has_value());
}

TEST(ValleyStoreTest, RoutingClusterKeyGroupsByTransitPath) {
  measure::TestbedConfig config;
  config.as_config.tier1_count = 4;
  config.as_config.tier2_count = 10;
  config.as_config.stub_count = 40;
  config.client_count = 8;
  config.seed = 61;
  measure::Testbed testbed(config);
  topology::World& world = testbed.world();
  const auto& clients = testbed.clients();
  ASSERT_GE(clients.size(), 2u);
  const std::vector<std::size_t> landmarks = {testbed.provider(0).as_index()};

  // Same client, same landmarks -> identical key (pure function).
  const std::string key_a = routing_cluster_key(world, clients[0], landmarks);
  EXPECT_EQ(key_a, routing_cluster_key(world, clients[0], landmarks));
  EXPECT_FALSE(key_a.empty());

  // A client in the same AS routes identically: same cluster.
  std::size_t sibling = clients.size();
  for (std::size_t i = 1; i < clients.size(); ++i) {
    if (world.as_index_of(clients[i]) == world.as_index_of(clients[0])) {
      sibling = i;
      break;
    }
  }
  if (sibling < clients.size()) {
    EXPECT_EQ(key_a, routing_cluster_key(world, clients[sibling], landmarks));
  }

  EXPECT_THROW(routing_cluster_key(world, clients[0], landmarks, 0),
               net::InvalidArgument);
  EXPECT_THROW(routing_cluster_key(world, net::Ipv4Addr(203, 0, 113, 9), landmarks),
               net::InvalidArgument);
}

// --- Concurrency: the determinism contract under real threads. -----------

/// Builds the deterministic corpus every thread plan must reduce to the
/// same store state: trials spread over clusters, domains, subnets, with a
/// mix of valley and non-valley ratios.
std::vector<std::pair<std::string, measure::TrialRecord>> shared_corpus() {
  std::vector<std::pair<std::string, measure::TrialRecord>> corpus;
  const std::vector<std::string> clusters = {"alpha", "beta", "gamma", "delta"};
  const std::vector<std::string> domains = {"img.cdn", "video.cdn"};
  for (int i = 0; i < 240; ++i) {
    const auto& cluster = clusters[static_cast<std::size_t>(i) % clusters.size()];
    const auto& domain = domains[static_cast<std::size_t>(i / 4) % domains.size()];
    const net::Prefix subnet(net::Ipv4Addr(10, static_cast<std::uint8_t>(i % 6), 0, 0),
                             16);
    const double hr = (i % 5 == 0) ? 120.0 : 40.0 + (i % 7);
    corpus.emplace_back(cluster, make_trial(domain, subnet, 100.0, hr));
  }
  return corpus;
}

/// Serializes everything observable about a store for equality checks.
std::string fingerprint(ValleyStore& store) {
  std::string out;
  const auto stats = store.stats();
#define DRONGO_FP_FIELD(field) \
  out += #field "=" + std::to_string(stats.field) + "\n";
  DRONGO_OBS_VALLEY_STORE_COUNTERS(DRONGO_FP_FIELD)
#undef DRONGO_FP_FIELD
  for (const std::string cluster : {"alpha", "beta", "gamma", "delta"}) {
    for (const std::string domain : {"img.cdn", "video.cdn"}) {
      const auto choice = store.choose(cluster, domain);
      out += cluster + "/" + domain + " -> " +
             (choice ? choice->to_string() : "none") + "\n";
      for (const auto& c : store.candidates(cluster, domain)) {
        out += "  " + c.subnet.to_string() + " obs=" + std::to_string(c.observations) +
               " valleys=" + std::to_string(c.valleys) +
               " qualified=" + std::to_string(c.qualified) + "\n";
      }
    }
  }
  return out;
}

TEST(ValleyShareEnvTest, ParsesOnOffSpellingsAndRejectsGarbage) {
  EXPECT_FALSE(parse_valley_share(nullptr));
  EXPECT_FALSE(parse_valley_share(""));
  EXPECT_FALSE(parse_valley_share("0"));
  EXPECT_FALSE(parse_valley_share("off"));
  EXPECT_FALSE(parse_valley_share("False"));
  EXPECT_TRUE(parse_valley_share("1"));
  EXPECT_TRUE(parse_valley_share("ON"));
  EXPECT_TRUE(parse_valley_share("true"));
  EXPECT_THROW(parse_valley_share("banana"), net::InvalidArgument);
  EXPECT_THROW(parse_valley_share("2"), net::InvalidArgument);
}

TEST(ValleyStoreConcurrencyTest, ThreadedContributionMatchesSerialByteForByte) {
  ValleyStoreParams params;
  params.min_observations = 4;
  params.min_valley_frequency = 0.6;
  const auto corpus = shared_corpus();

  ValleyStore serial(params);
  for (const auto& [cluster, trial] : corpus) serial.contribute(cluster, trial);
  const std::string expected = fingerprint(serial);

  for (const unsigned threads : {2u, 4u, 8u}) {
    ValleyStore parallel(params);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned w = 0; w < threads; ++w) {
      workers.emplace_back([&, w] {
        // Strided split: every thread touches every cluster, maximizing
        // stripe contention (the TSan-interesting schedule).
        for (std::size_t i = w; i < corpus.size(); i += threads) {
          parallel.contribute(corpus[i].first, corpus[i].second);
        }
      });
    }
    for (auto& worker : workers) worker.join();
    EXPECT_EQ(fingerprint(parallel), expected) << threads << " threads";
  }
}

TEST(ValleyStoreConcurrencyTest, ConcurrentReadersAndWritersKeepCountsExact) {
  ValleyStoreParams params;
  params.min_observations = 1;
  params.min_valley_frequency = 0.0;
  ValleyStore store(params, /*stripes=*/4);
  constexpr int kWriters = 4;
  constexpr int kReaders = 3;
  constexpr int kTrialsPerWriter = 150;

  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      const std::string cluster = "cluster-" + std::to_string(w % 2);
      for (int i = 0; i < kTrialsPerWriter; ++i) {
        store.contribute(cluster, make_trial("img.cdn", kValleySubnet, 100.0, 50.0));
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      for (int i = 0; i < 60; ++i) {
        (void)store.choose("cluster-" + std::to_string(r % 2), "img.cdn");
        (void)store.candidates("cluster-" + std::to_string(r % 2), "img.cdn");
        (void)store.stats();
        (void)store.tracked_subnets();
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const auto stats = store.stats();
  EXPECT_EQ(stats.contributions,
            static_cast<std::uint64_t>(kWriters) * kTrialsPerWriter);
  EXPECT_EQ(stats.valley_observations,
            static_cast<std::uint64_t>(kWriters) * kTrialsPerWriter);
  EXPECT_EQ(store.cluster_count(), 2u);
  const auto choice = store.choose("cluster-0", "img.cdn");
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(*choice, kValleySubnet);
}

}  // namespace
}  // namespace drongo::core
