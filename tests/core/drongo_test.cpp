// DrongoClient end-to-end on a small testbed, including LdnsProxy wiring.
#include <gtest/gtest.h>

#include <set>

#include "core/drongo.hpp"
#include "dns/proxy.hpp"
#include "measure/testbed.hpp"

namespace drongo::core {
namespace {

measure::TestbedConfig tiny_config(std::uint64_t seed = 61) {
  measure::TestbedConfig config;
  config.as_config.tier1_count = 4;
  config.as_config.tier2_count = 10;
  config.as_config.stub_count = 40;
  config.client_count = 8;
  config.seed = seed;
  return config;
}

class DrongoFixture : public ::testing::Test {
 protected:
  DrongoFixture() : testbed_(tiny_config()), runner_(&testbed_, 71) {}

  measure::Testbed testbed_;
  measure::TrialRunner runner_;
};

TEST_F(DrongoFixture, TrainFillsEngineWindows) {
  DrongoClient drongo;
  const auto records = drongo.train(runner_, 0, 0, /*trials=*/5, /*spacing_hours=*/24.0);
  EXPECT_EQ(records.size(), 5u);
  EXPECT_GT(drongo.engine().tracked_windows(), 0u);
}

TEST_F(DrongoFixture, ResolveRespectsFirstReplica) {
  DrongoClient drongo;
  auto stub = testbed_.make_stub(testbed_.clients()[0], 5);
  const auto domain = testbed_.content_names(0)[0];
  const auto result = drongo.resolve(stub, domain);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(drongo.total_queries(), 1u);
  // Untrained: never assimilates.
  EXPECT_EQ(drongo.assimilated_queries(), 0u);
}

TEST_F(DrongoFixture, AssimilationOnlyAfterQualifiedWindow) {
  // Find a (client, provider) pair where training produces a qualified
  // subnet; verify the selector fires for it and only for its domain.
  DrongoParams params;
  params.min_valley_frequency = 0.6;  // moderately strict
  params.valley_threshold = 0.95;
  for (std::size_t c = 0; c < testbed_.clients().size(); ++c) {
    for (std::size_t p = 0; p < testbed_.provider_count(); ++p) {
      DrongoClient drongo(params, c * 17 + p);
      auto records = drongo.train(runner_, c, p, 5, 24.0, /*start=*/0.0);
      const auto domain = dns::DnsName::must_parse(records.front().domain);
      const auto choice =
          drongo.select_subnet(domain, net::Prefix(testbed_.clients()[c], 24));
      if (!choice) continue;
      // Found one: the chosen subnet was a usable hop subnet in training.
      std::set<net::Prefix> seen;
      for (const auto& r : records) {
        for (const auto* hop : r.usable()) seen.insert(hop->subnet);
      }
      EXPECT_TRUE(seen.contains(*choice));
      // A domain never trained: no assimilation.
      EXPECT_FALSE(drongo
                       .select_subnet(dns::DnsName::must_parse("untrained.example"),
                                      net::Prefix(testbed_.clients()[c], 24))
                       .has_value());
      return;  // one positive case is enough
    }
  }
  FAIL() << "no (client, provider) pair produced a qualified subnet";
}

TEST_F(DrongoFixture, ProxyIntegrationServesAssimilatedAnswers) {
  // Train Drongo for client 0 / provider 0, mount it in an LdnsProxy, and
  // resolve through the proxy: the proxy must report assimilation whenever
  // the engine holds a qualified subnet for the trained domain.
  DrongoParams params;
  params.min_valley_frequency = 0.2;  // lenient so qualification is likely
  params.valley_threshold = 1.0;
  DrongoClient drongo(params, 3);
  const auto records = drongo.train(runner_, 0, 0, 5, 24.0);
  const auto domain = dns::DnsName::must_parse(records.front().domain);

  dns::LdnsProxy proxy(&testbed_.dns_network(), testbed_.resolver_address(),
                       net::Ipv4Addr(127, 0, 0, 53), &drongo);
  const net::Ipv4Addr proxy_addr(198, 18, 128, 1);
  testbed_.dns_network().register_server(proxy_addr, &proxy);

  dns::StubResolver stub(&testbed_.dns_network(), testbed_.clients()[0], proxy_addr, 7);
  const auto result = stub.resolve_with_own_subnet(domain);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(proxy.forwarded(), 1u);
  const bool engine_qualified = [&] {
    for (const auto& c : drongo.engine().candidates(domain.to_string())) {
      if (c.qualified) return true;
    }
    return false;
  }();
  EXPECT_EQ(proxy.assimilated() == 1u, engine_qualified);
}

TEST_F(DrongoFixture, TrainedDrongoNeverWorseOnAverage) {
  // Across every (client, provider) pair, train on the pinned domain and
  // compare several fresh Drongo resolutions against baseline first-CR
  // resolutions: Drongo's mean base-RTT must not be worse than baseline's
  // beyond noise. Aggregated widely because individual assimilations can
  // legitimately lose (Fig. 11 shows boxes crossing 1).
  auto& world = testbed_.world();
  double drongo_sum = 0.0;
  double baseline_sum = 0.0;
  int n = 0;
  for (std::size_t c = 0; c < testbed_.clients().size(); ++c) {
    for (std::size_t p = 0; p < testbed_.provider_count(); ++p) {
      DrongoClient drongo({}, c * 31 + p);  // default optimal params
      drongo.train(runner_, c, p, 5, 24.0, 0.0, /*label_index=*/0);
      auto stub = testbed_.make_stub(testbed_.clients()[c], c * 7 + p);
      const auto domain = testbed_.content_names(p)[0];
      for (int q = 0; q < 3; ++q) {
        const auto baseline = stub.resolve_with_own_subnet(domain);
        const auto smart = drongo.resolve(stub, domain);
        if (!baseline.ok() || !smart.ok()) continue;
        baseline_sum +=
            world.rtt_base_ms(testbed_.clients()[c], baseline.addresses.front());
        drongo_sum += world.rtt_base_ms(testbed_.clients()[c], smart.addresses.front());
        ++n;
      }
    }
  }
  ASSERT_GT(n, 50);
  EXPECT_LE(drongo_sum / n, baseline_sum / n * 1.05);
}

}  // namespace
}  // namespace drongo::core
