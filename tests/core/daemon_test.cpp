#include "core/daemon.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "measure/testbed.hpp"
#include "net/error.hpp"

namespace drongo::core {
namespace {

class DaemonFixture : public ::testing::Test {
 protected:
  DaemonFixture() : testbed_(config()), runner_(&testbed_, 131) {}

  static measure::TestbedConfig config() {
    measure::TestbedConfig c;
    c.as_config.tier1_count = 4;
    c.as_config.tier2_count = 8;
    c.as_config.stub_count = 30;
    c.client_count = 3;
    c.seed = 131;
    return c;
  }

  measure::Testbed testbed_;
  measure::TrialRunner runner_;
};

TEST_F(DaemonFixture, RunsScheduledTrialsAsClockAdvances) {
  DrongoDaemon daemon(&runner_, 0, {}, 7);
  daemon.watch({0, 0});
  EXPECT_TRUE(std::isfinite(daemon.next_wakeup_hours()));
  EXPECT_EQ(daemon.trials_run(), 0u);

  const int ran = daemon.advance_to(24.0);
  EXPECT_GT(ran, 0);
  EXPECT_EQ(daemon.trials_run(), static_cast<std::uint64_t>(ran));
  EXPECT_GT(daemon.engine().tracked_windows(), 0u);
}

TEST_F(DaemonFixture, HorizonIsToppedUpIndefinitely) {
  DaemonConfig config;
  config.horizon_trials = 4;
  DrongoDaemon daemon(&runner_, 0, config, 7);
  daemon.watch({0, 0});
  // Far beyond the initial horizon: the daemon must keep rescheduling.
  daemon.advance_to(24.0 * 30);
  EXPECT_GT(daemon.trials_run(), 8u);
  EXPECT_TRUE(std::isfinite(daemon.next_wakeup_hours()));
  EXPECT_GT(daemon.next_wakeup_hours(), 24.0 * 30 - 72.0);
}

TEST_F(DaemonFixture, MultipleWatchedDomainsInterleave) {
  DrongoDaemon daemon(&runner_, 0, {}, 7);
  daemon.watch({0, 0});
  daemon.watch({1, 0});
  daemon.advance_to(24.0 * 7);
  // Both providers' domains end up with windows.
  const auto d0 = testbed_.content_names(0)[0].to_string();
  const auto d1 = testbed_.content_names(1)[0].to_string();
  EXPECT_FALSE(daemon.engine().candidates(d0).empty());
  EXPECT_FALSE(daemon.engine().candidates(d1).empty());
}

TEST_F(DaemonFixture, DuplicateWatchDoesNotDoubleSchedule) {
  // Regression: a second watch() for the same domain used to append a whole
  // second trial schedule, doubling the cadence (and re-doubling at every
  // horizon top-up). Two daemons with identical seeds must run the same
  // number of trials whether the domain was registered once or three times.
  DrongoDaemon once(&runner_, 0, {}, 7);
  once.watch({0, 0});
  DrongoDaemon thrice(&runner_, 0, {}, 7);
  thrice.watch({0, 0});
  thrice.watch({0, 0});
  thrice.watch({0, 0}, /*now_hours=*/12.0);
  EXPECT_EQ(thrice.watched_count(), 1u);

  once.advance_to(24.0 * 7);
  thrice.advance_to(24.0 * 7);
  EXPECT_EQ(thrice.trials_run(), once.trials_run());

  // A genuinely different domain still registers.
  thrice.watch({1, 0});
  EXPECT_EQ(thrice.watched_count(), 2u);
}

TEST_F(DaemonFixture, SelectorAnswersFromLearnedState) {
  DaemonConfig config;
  config.params.min_valley_frequency = 0.2;
  config.params.valley_threshold = 1.0;
  DrongoDaemon daemon(&runner_, 0, config, 7);
  daemon.watch({0, 0});
  daemon.advance_to(24.0 * 7);
  const auto domain = testbed_.content_names(0)[0];
  // With a week of trials and lenient parameters, some candidate usually
  // qualifies; either way the call must be well-formed (no throw).
  EXPECT_NO_THROW(daemon.select_subnet(domain, net::Prefix(testbed_.clients()[0], 24)));
}

TEST_F(DaemonFixture, ClockCannotMoveBackwards) {
  DrongoDaemon daemon(&runner_, 0, {}, 7);
  daemon.watch({0, 0});
  daemon.advance_to(10.0);
  EXPECT_THROW(daemon.advance_to(5.0), net::InvalidArgument);
}

TEST_F(DaemonFixture, StateSurvivesRestart) {
  DaemonConfig config;
  config.params.min_valley_frequency = 0.2;
  config.params.valley_threshold = 1.0;
  DrongoDaemon first(&runner_, 0, config, 7);
  first.watch({0, 0});
  first.advance_to(24.0 * 7);
  std::stringstream state;
  first.save(state);

  DrongoDaemon second(&runner_, 0, config, 8);
  second.load(state);
  const auto domain = testbed_.content_names(0)[0].to_string();
  const auto a = first.engine().candidates(domain);
  const auto b = second.engine().candidates(domain);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].subnet, b[i].subnet);
    EXPECT_DOUBLE_EQ(a[i].valley_frequency, b[i].valley_frequency);
  }
}

TEST_F(DaemonFixture, ConstructionValidation) {
  EXPECT_THROW(DrongoDaemon(nullptr, 0), net::InvalidArgument);
  DaemonConfig bad;
  bad.horizon_trials = 0;
  EXPECT_THROW(DrongoDaemon(&runner_, 0, bad), net::InvalidArgument);
}

}  // namespace
}  // namespace drongo::core
