// DecisionEngine save/load: deployment persistence across restarts.
#include <gtest/gtest.h>

#include <sstream>

#include "core/decision.hpp"
#include "net/error.hpp"

namespace drongo::core {
namespace {

measure::TrialRecord trial(const std::string& domain, const char* subnet, double ratio) {
  measure::TrialRecord t;
  t.provider = "P";
  t.domain = domain;
  t.cr.push_back({net::Ipv4Addr(21, 0, 0, 1), 100.0});
  measure::HopRecord hop;
  hop.subnet = net::Prefix::must_parse(subnet);
  hop.usable = true;
  hop.hr.push_back({net::Ipv4Addr(22, 0, 0, 1), ratio * 100.0});
  t.hops.push_back(std::move(hop));
  return t;
}

TEST(PersistenceTest, SaveLoadRoundTripPreservesDecisions) {
  DecisionEngine original;
  for (int i = 0; i < 5; ++i) {
    original.observe(trial("img.p.sim", "20.1.0.0/24", 0.5));
    original.observe(trial("img.p.sim", "20.2.0.0/24", 1.3));
    original.observe(trial("other.p.sim", "20.3.0.0/24", 0.8));
  }
  std::stringstream buffer;
  original.save(buffer);

  DecisionEngine restored;
  restored.load(buffer);
  EXPECT_EQ(restored.tracked_windows(), original.tracked_windows());
  EXPECT_EQ(restored.choose("img.p.sim"), original.choose("img.p.sim"));
  // Candidate state identical in detail.
  const auto a = original.candidates("img.p.sim");
  const auto b = restored.candidates("img.p.sim");
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].subnet, b[i].subnet);
    EXPECT_DOUBLE_EQ(a[i].valley_frequency, b[i].valley_frequency);
    EXPECT_EQ(a[i].observations, b[i].observations);
    EXPECT_EQ(a[i].qualified, b[i].qualified);
  }
}

TEST(PersistenceTest, LoadReplacesExistingState) {
  DecisionEngine donor;
  for (int i = 0; i < 5; ++i) donor.observe(trial("a.sim", "20.1.0.0/24", 0.5));
  std::stringstream buffer;
  donor.save(buffer);

  DecisionEngine target;
  for (int i = 0; i < 5; ++i) target.observe(trial("b.sim", "20.2.0.0/24", 0.5));
  target.load(buffer);
  EXPECT_TRUE(target.choose("a.sim").has_value());
  EXPECT_FALSE(target.choose("b.sim").has_value());
}

TEST(PersistenceTest, LoadTruncatesToWindowCapacity) {
  // State written by an 8-window engine loads into a 5-window engine,
  // keeping the most recent ratios.
  DrongoParams wide;
  wide.window_size = 8;
  wide.min_valley_frequency = 0.2;
  wide.valley_threshold = 1.0;
  DecisionEngine donor(wide);
  for (int i = 0; i < 8; ++i) {
    // Oldest 3 are valleys; newest 5 are not.
    donor.observe(trial("a.sim", "20.1.0.0/24", i < 3 ? 0.5 : 1.5));
  }
  std::stringstream buffer;
  donor.save(buffer);

  DrongoParams narrow;
  narrow.window_size = 5;
  narrow.min_valley_frequency = 0.2;
  narrow.valley_threshold = 1.0;
  DecisionEngine target(narrow);
  target.load(buffer);
  const auto candidates = target.candidates("a.sim");
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].observations, 5u);
  // Only the newest 5 survive: no valleys among them.
  EXPECT_DOUBLE_EQ(candidates[0].valley_frequency, 0.0);
}

TEST(PersistenceTest, EmptyEngineRoundTrips) {
  DecisionEngine empty;
  std::stringstream buffer;
  empty.save(buffer);
  DecisionEngine restored;
  restored.load(buffer);
  EXPECT_EQ(restored.tracked_windows(), 0u);
}

TEST(PersistenceTest, MalformedStateRejected) {
  DecisionEngine engine;
  std::stringstream no_magic("w|a.sim|20.1.0.0/24|0.5\n");
  EXPECT_THROW(engine.load(no_magic), net::ParseError);

  std::stringstream bad_kind("drongo-engine-v1\nx|a.sim|20.1.0.0/24\n");
  EXPECT_THROW(engine.load(bad_kind), net::ParseError);

  std::stringstream bad_subnet("drongo-engine-v1\nw|a.sim|nonsense|0.5\n");
  EXPECT_THROW(engine.load(bad_subnet), net::ParseError);

  std::stringstream bad_ratio("drongo-engine-v1\nw|a.sim|20.1.0.0/24|abc\n");
  EXPECT_THROW(engine.load(bad_ratio), net::ParseError);
}

TEST(PersistenceTest, WindowWithNoRatiosIsLegal) {
  // A "w|domain|subnet" line with zero ratios restores an empty window.
  std::stringstream state("drongo-engine-v1\nw|a.sim|20.1.0.0/24\n");
  DecisionEngine engine;
  engine.load(state);
  EXPECT_EQ(engine.tracked_windows(), 1u);
  EXPECT_FALSE(engine.choose("a.sim").has_value());
}

}  // namespace
}  // namespace drongo::core
