// EcsProber: §3.1.1 provider selection on restricted vs unrestricted CDNs.
#include <gtest/gtest.h>

#include "cdn/authoritative.hpp"
#include "cdn/deploy.hpp"
#include "cdn/resolver.hpp"
#include "core/probe.hpp"
#include "dns/inmemory.hpp"
#include "net/error.hpp"
#include "topology/as_gen.hpp"

namespace drongo::core {
namespace {

class ProbeFixture : public ::testing::Test {
 protected:
  ProbeFixture() {
    topology::AsGenConfig as_config;
    as_config.tier1_count = 4;
    as_config.tier2_count = 8;
    as_config.stub_count = 20;
    as_config.seed = 71;
    auto graph = topology::generate_as_graph(as_config);
    net::Rng rng(72);
    open_plan_ = cdn::plan_cdn(graph, cdn::google_like(), rng);
    cdn::CdnProfile restricted_profile = cdn::akamai_like_restricted();
    restricted_profile.lb_spill_prob = 0.0;
    restricted_plan_ = cdn::plan_cdn(graph, restricted_profile, rng);
    world_ = std::make_unique<topology::World>(std::move(graph));
    open_ = std::make_unique<cdn::CdnProvider>(cdn::deploy_cdn(*world_, open_plan_));
    restricted_ =
        std::make_unique<cdn::CdnProvider>(cdn::deploy_cdn(*world_, restricted_plan_));
    open_auth_ = std::make_unique<cdn::CdnAuthoritative>(open_.get());
    restricted_auth_ = std::make_unique<cdn::CdnAuthoritative>(restricted_.get());

    const auto open_addr = world_->add_host(open_->as_index(), topology::HostKind::kServer, 0);
    const auto restricted_addr =
        world_->add_host(restricted_->as_index(), topology::HostKind::kServer, 0);
    network_.register_server(open_addr, open_auth_.get());
    network_.register_server(restricted_addr, restricted_auth_.get());

    std::size_t t1 = 0;
    for (std::size_t v = 0; v < world_->graph().node_count(); ++v) {
      if (world_->graph().node(v).tier == topology::AsTier::kTier1) {
        t1 = v;
        break;
      }
    }
    resolver_addr_ = world_->add_host(t1, topology::HostKind::kServer, 0);
    resolver_ = std::make_unique<cdn::PublicResolver>(&network_, resolver_addr_);
    resolver_->register_zone(dns::DnsName::must_parse(open_->profile().zone), open_addr);
    resolver_->register_zone(dns::DnsName::must_parse(restricted_->profile().zone),
                             restricted_addr);
    network_.register_server(resolver_addr_, resolver_.get());

    for (std::size_t v = 0; v < world_->graph().node_count(); ++v) {
      if (world_->graph().node(v).tier == topology::AsTier::kStub) {
        client_ = world_->add_host(v, topology::HostKind::kClient);
        break;
      }
    }
  }

  /// Geographically spread probe subnets: host /24s in several AS blocks.
  std::vector<net::Prefix> spread_subnets(int count) {
    std::vector<net::Prefix> subnets;
    for (int i = 0; i < count; ++i) {
      const auto block = world_->block_of(static_cast<std::size_t>(i * 7 % 20));
      subnets.emplace_back(net::Ipv4Addr(block.network().to_uint() | (40u << 8)), 24);
    }
    return subnets;
  }

  cdn::CdnPlan open_plan_;
  cdn::CdnPlan restricted_plan_;
  std::unique_ptr<topology::World> world_;
  std::unique_ptr<cdn::CdnProvider> open_;
  std::unique_ptr<cdn::CdnProvider> restricted_;
  std::unique_ptr<cdn::CdnAuthoritative> open_auth_;
  std::unique_ptr<cdn::CdnAuthoritative> restricted_auth_;
  dns::InMemoryDnsNetwork network_;
  std::unique_ptr<cdn::PublicResolver> resolver_;
  net::Ipv4Addr resolver_addr_;
  net::Ipv4Addr client_;
};

TEST_F(ProbeFixture, DetectsUnrestrictedEcs) {
  EcsProber prober(spread_subnets(5));
  dns::StubResolver stub(&network_, client_, resolver_addr_, 3);
  const auto result =
      prober.probe(stub, dns::DnsName::must_parse("img." + open_->profile().zone));
  EXPECT_TRUE(result.resolvable);
  EXPECT_TRUE(result.ecs_honored);
  EXPECT_TRUE(result.ecs_unrestricted);
  EXPECT_GT(result.distinct_answers, 1u);
}

TEST_F(ProbeFixture, DetectsRestrictedEcs) {
  EcsProber prober(spread_subnets(5));
  dns::StubResolver stub(&network_, client_, resolver_addr_, 3);
  const auto result =
      prober.probe(stub, dns::DnsName::must_parse("img." + restricted_->profile().zone));
  EXPECT_TRUE(result.resolvable);
  EXPECT_FALSE(result.ecs_unrestricted) << "Akamai-like provider must be rejected";
}

TEST_F(ProbeFixture, UnresolvableDomainReported) {
  EcsProber prober(spread_subnets(3));
  dns::StubResolver stub(&network_, client_, resolver_addr_, 3);
  const auto result = prober.probe(stub, dns::DnsName::must_parse("img.nonexistent.sim"));
  EXPECT_FALSE(result.resolvable);
  EXPECT_FALSE(result.ecs_unrestricted);
}

TEST_F(ProbeFixture, UsableDomainsFiltersLikeThePaper) {
  EcsProber prober(spread_subnets(5));
  dns::StubResolver stub(&network_, client_, resolver_addr_, 3);
  const std::vector<dns::DnsName> candidates = {
      dns::DnsName::must_parse("img." + open_->profile().zone),
      dns::DnsName::must_parse("img." + restricted_->profile().zone),
      dns::DnsName::must_parse("img.unknown.sim"),
  };
  const auto usable = prober.usable_domains(stub, candidates);
  ASSERT_EQ(usable.size(), 1u);
  EXPECT_EQ(usable[0], candidates[0]);
}

TEST(ProbeValidationTest, RequiresTwoSubnetsAndPositiveQueries) {
  EXPECT_THROW(EcsProber({net::Prefix::must_parse("20.0.40.0/24")}), net::InvalidArgument);
  EXPECT_THROW(EcsProber({net::Prefix::must_parse("20.0.40.0/24"),
                          net::Prefix::must_parse("20.1.40.0/24")},
                         0),
               net::InvalidArgument);
}

}  // namespace
}  // namespace drongo::core
