// PeerSharePool: the §7 trial-sharing extension.
#include <gtest/gtest.h>

#include "core/peer_share.hpp"
#include "measure/testbed.hpp"
#include "net/error.hpp"

namespace drongo::core {
namespace {

measure::TrialRecord shared_trial(const std::string& domain, double ratio) {
  measure::TrialRecord t;
  t.provider = "P";
  t.domain = domain;
  t.cr.push_back({net::Ipv4Addr(21, 0, 0, 1), 100.0});
  measure::HopRecord hop;
  hop.subnet = net::Prefix::must_parse("20.9.0.0/24");
  hop.usable = true;
  hop.hr.push_back({net::Ipv4Addr(22, 0, 0, 1), ratio * 100.0});
  t.hops.push_back(std::move(hop));
  return t;
}

TEST(PeerShareTest, PublishTrainsEveryGroupMember) {
  DecisionEngine alice;
  DecisionEngine bob;
  PeerSharePool pool;
  pool.join("20.1.36.0/24", &alice);
  pool.join("20.1.36.0/24", &bob);
  EXPECT_EQ(pool.group_size("20.1.36.0/24"), 2u);

  // Alice alone measures; Bob's window fills from her published trials.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(pool.publish("20.1.36.0/24", shared_trial("img.p.sim", 0.5)), 2u);
  }
  EXPECT_TRUE(alice.choose("img.p.sim").has_value());
  EXPECT_TRUE(bob.choose("img.p.sim").has_value());
  EXPECT_EQ(pool.published(), 5u);
  EXPECT_EQ(pool.deliveries(), 10u);
  EXPECT_EQ(pool.trials_saved(), 5u);
}

TEST(PeerShareTest, GroupsAreIsolated) {
  DecisionEngine alice;
  DecisionEngine carol;
  PeerSharePool pool;
  pool.join("group-a", &alice);
  pool.join("group-b", &carol);
  for (int i = 0; i < 5; ++i) {
    pool.publish("group-a", shared_trial("img.p.sim", 0.5));
  }
  EXPECT_TRUE(alice.choose("img.p.sim").has_value());
  EXPECT_FALSE(carol.choose("img.p.sim").has_value());
}

TEST(PeerShareTest, PublishToUnknownGroupIsNoop) {
  PeerSharePool pool;
  EXPECT_EQ(pool.publish("nobody", shared_trial("img.p.sim", 0.5)), 0u);
  EXPECT_EQ(pool.deliveries(), 0u);
}

TEST(PeerShareTest, RejoiningMovesTheEngine) {
  DecisionEngine engine;
  PeerSharePool pool;
  pool.join("old", &engine);
  pool.join("new", &engine);
  EXPECT_EQ(pool.group_size("old"), 0u);
  EXPECT_EQ(pool.group_size("new"), 1u);
  EXPECT_THROW(pool.join("x", nullptr), net::InvalidArgument);
}

TEST(PeerShareTest, HouseholdSharingFillsTheIdleDeviceForFree) {
  // Two devices behind one /24 (the paper's "clients in the same subnet"):
  // device A runs the trials; device B's engine fills entirely from the
  // shared pool and reaches the same decision without measuring once.
  measure::TestbedConfig config;
  config.as_config.tier1_count = 4;
  config.as_config.tier2_count = 8;
  config.as_config.stub_count = 30;
  config.client_count = 2;
  config.seed = 73;
  measure::Testbed testbed(config);
  measure::TrialRunner runner(&testbed, 74);
  DecisionEngine device_a(DrongoParams{}, 1);
  DecisionEngine device_b(DrongoParams{}, 1);
  PeerSharePool pool;
  const auto key =
      share_group_key(testbed.world(), testbed.clients()[0], ShareScope::kSlash24);
  pool.join(key, &device_a);
  pool.join(key, &device_b);

  std::string domain;
  for (int t = 0; t < 5; ++t) {
    auto trial = runner.run(/*client=*/0, /*provider=*/0, t * 12.0, /*label_index=*/0);
    domain = trial.domain;
    pool.publish(key, trial);
  }
  // Device B holds the same full windows as A despite running no trials.
  const auto a_candidates = device_a.candidates(domain);
  const auto b_candidates = device_b.candidates(domain);
  ASSERT_FALSE(a_candidates.empty());
  ASSERT_EQ(a_candidates.size(), b_candidates.size());
  bool any_full = false;
  for (std::size_t i = 0; i < a_candidates.size(); ++i) {
    EXPECT_EQ(a_candidates[i].subnet, b_candidates[i].subnet);
    EXPECT_DOUBLE_EQ(a_candidates[i].valley_frequency, b_candidates[i].valley_frequency);
    any_full |= a_candidates[i].observations == 5;
  }
  EXPECT_TRUE(any_full);
  EXPECT_EQ(pool.trials_saved(), 5u);
}

TEST(PeerShareTest, ScopeKeysAreDistinct) {
  measure::TestbedConfig config;
  config.as_config.tier1_count = 4;
  config.as_config.tier2_count = 8;
  config.as_config.stub_count = 30;
  config.client_count = 2;
  config.seed = 75;
  measure::Testbed testbed(config);
  const auto client = testbed.clients()[0];
  const auto& world = testbed.world();
  const auto k24 = share_group_key(world, client, ShareScope::kSlash24);
  const auto k16 = share_group_key(world, client, ShareScope::kSlash16);
  const auto kas = share_group_key(world, client, ShareScope::kAsn);
  EXPECT_NE(k24, k16);
  EXPECT_NE(k16, kas);
  EXPECT_NE(k24, kas);
  EXPECT_NE(k24.find("/24"), std::string::npos);
  EXPECT_NE(kas.find("AS"), std::string::npos);
}

}  // namespace
}  // namespace drongo::core
