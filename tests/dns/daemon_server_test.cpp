// Loopback integration tests for the epoll serving front end: the
// netio::EventLoop primitives, then dns::DaemonServer over real sockets —
// batched UDP round trips, the TC→TCP retry path, malformed-input
// survival, the whole-packet cache, graceful drain, and the full
// cdn::PublicResolver behind the daemon.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "cdn/authoritative.hpp"
#include "cdn/deploy.hpp"
#include "cdn/resolver.hpp"
#include "dns/daemon_server.hpp"
#include "dns/inmemory.hpp"
#include "dns/tcp.hpp"
#include "dns/udp.hpp"
#include "net/error.hpp"
#include "netio/event_loop.hpp"
#include "topology/as_gen.hpp"
#include "topology/world.hpp"

namespace drongo::dns {
namespace {

// ---- netio::EventLoop primitives -------------------------------------------

TEST(EventLoopTest, PostedTaskRunsOnLoopThread) {
  netio::EventLoop loop;
  std::thread runner([&] { loop.run(); });
  std::atomic<bool> ran{false};
  loop.post([&] { ran = true; });
  while (!ran) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  loop.stop();
  runner.join();
  EXPECT_TRUE(ran);
}

TEST(EventLoopTest, TimerFiresAndCanStopTheLoop) {
  netio::EventLoop loop;
  bool fired = false;
  loop.add_timer(5, [&] {
    fired = true;
    loop.stop();
  });
  loop.run();  // returns only if the timer fired and stopped the loop
  EXPECT_TRUE(fired);
}

TEST(EventLoopTest, CancelledTimerNeverFires) {
  netio::EventLoop loop;
  bool cancelled_fired = false;
  const auto id = loop.add_timer(1, [&] { cancelled_fired = true; });
  loop.cancel_timer(id);
  loop.add_timer(20, [&] { loop.stop(); });
  loop.run();
  EXPECT_FALSE(cancelled_fired);
}

TEST(EventLoopTest, StopFromAnotherThreadUnblocksRun) {
  netio::EventLoop loop;
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    loop.stop();
  });
  loop.run();  // must return once stop() pokes the eventfd
  stopper.join();
}

// ---- DaemonServer over real sockets ----------------------------------------

/// Answers every query with one A record and the RFC 7871 ECS echo at
/// scope /24 — enough surface to verify the full codec round trip.
class EchoServer : public DnsServer {
 public:
  Message handle(const Message& query, net::Ipv4Addr /*source*/) override {
    Message response = Message::make_response(query, Rcode::kNoError, 24);
    response.answers.push_back(
        ResourceRecord::a(query.questions[0].name, net::Ipv4Addr(21, 7, 7, 7), 30));
    return response;
  }
};

/// BigAnswerServer's shape: names starting with "big" get an answer far
/// beyond any UDP payload advertisement, forcing TC and the TCP retry.
class SometimesBigServer : public DnsServer {
 public:
  Message handle(const Message& query, net::Ipv4Addr /*source*/) override {
    Message response = Message::make_response(query, Rcode::kNoError, 24);
    const auto& name = query.questions[0].name;
    response.answers.push_back(ResourceRecord::a(name, net::Ipv4Addr(21, 1, 1, 1), 30));
    if (name.labels().front() == "big") {
      for (int i = 0; i < 40; ++i) {
        response.answers.push_back(
            ResourceRecord::txt(name, {std::string(120, static_cast<char>('a' + i % 26))}));
      }
    }
    return response;
  }
};

/// Always throws: every query becomes a handler-failure SERVFAIL.
class FailingServer : public DnsServer {
 public:
  Message handle(const Message& /*query*/, net::Ipv4Addr /*source*/) override {
    throw net::Error("backend on fire");
  }
};

Message exchange_udp(UdpSocket& socket, std::uint16_t port, const Message& query) {
  const auto wire = query.encode();
  socket.send_to(port, wire);
  std::uint16_t from = 0;
  const auto reply = socket.receive_from(from);
  if (reply.empty()) throw net::Error("daemon did not answer within the timeout");
  return Message::decode(reply);
}

TEST(DaemonServerTest, UdpRoundTripEchoesEcs) {
  EchoServer handler;
  DaemonServerConfig config;
  config.listeners = 1;
  config.enable_tcp = false;
  DaemonServer daemon(&handler, config);
  ASSERT_NE(daemon.udp_port(), 0);

  UdpSocket client(0);
  client.set_receive_timeout(2000);
  const auto query = Message::make_query(0x4242, DnsName::must_parse("img.cdn.sim"),
                                         net::Prefix::must_parse("10.1.2.0/24"));
  const auto reply = exchange_udp(client, daemon.udp_port(), query);
  EXPECT_EQ(reply.header.id, 0x4242);
  EXPECT_TRUE(reply.header.qr);
  EXPECT_EQ(reply.header.rcode, Rcode::kNoError);
  ASSERT_EQ(reply.answers.size(), 1u);
  ASSERT_TRUE(reply.edns.has_value());
  ASSERT_TRUE(reply.edns->client_subnet.has_value());
  EXPECT_EQ(reply.edns->client_subnet->scope_prefix_length, 24);

  daemon.stop();
  const auto stats = daemon.stats();
  EXPECT_EQ(stats.udp_queries, 1u);
  EXPECT_EQ(stats.udp_responses, 1u);
  EXPECT_EQ(stats.malformed, 0u);
}

TEST(DaemonServerTest, PipelinedQueriesAllAnsweredAndBatched) {
  EchoServer handler;
  DaemonServerConfig config;
  config.listeners = 1;
  config.batch = 16;
  config.enable_tcp = false;
  config.packet_cache_entries = 0;  // every query must reach the handler
  DaemonServer daemon(&handler, config);

  UdpSocket client(0);
  client.set_receive_timeout(2000);
  constexpr int kQueries = 200;
  for (int i = 0; i < kQueries; ++i) {
    const auto query =
        Message::make_query(static_cast<std::uint16_t>(i),
                            DnsName::must_parse("img.cdn.sim"),
                            net::Prefix(net::Ipv4Addr(10, 0, static_cast<std::uint8_t>(i), 0), 24));
    client.send_to(daemon.udp_port(), query.encode());
  }
  std::vector<bool> seen(kQueries, false);
  for (int i = 0; i < kQueries; ++i) {
    std::uint16_t from = 0;
    const auto wire = client.receive_from(from);
    ASSERT_FALSE(wire.empty()) << "reply " << i << " missing";
    const auto reply = Message::decode(wire);
    ASSERT_LT(reply.header.id, kQueries);
    EXPECT_FALSE(seen[reply.header.id]) << "duplicate reply " << reply.header.id;
    seen[reply.header.id] = true;
  }

  daemon.stop();
  const auto stats = daemon.stats();
  EXPECT_EQ(stats.udp_queries, static_cast<std::uint64_t>(kQueries));
  EXPECT_EQ(stats.udp_responses, static_cast<std::uint64_t>(kQueries));
  // 200 datagrams blasted before the first read must not take 200 syscalls.
  EXPECT_LT(stats.udp_batches, static_cast<std::uint64_t>(kQueries));
}

TEST(DaemonServerTest, TruncationFallsBackToTcp) {
  SometimesBigServer handler;
  DaemonServerConfig config;
  config.listeners = 1;
  config.enable_tcp = true;
  DaemonServer daemon(&handler, config);
  ASSERT_NE(daemon.tcp_port(), 0);

  UdpDnsClient udp_client(2000);
  TcpDnsClient tcp_client(2000);
  const net::Ipv4Addr virtual_server(9, 9, 9, 9);
  udp_client.register_endpoint(virtual_server, daemon.udp_port());
  tcp_client.register_endpoint(virtual_server, daemon.tcp_port());
  TruncationFallbackTransport transport(&udp_client, &tcp_client);

  const auto big = Message::make_query(7, DnsName::must_parse("big.cdn.sim"),
                                       net::Prefix::must_parse("10.0.0.0/24"));
  const auto reply = Message::decode(
      transport.exchange(net::Ipv4Addr(10, 0, 0, 1), virtual_server, big.encode()));
  EXPECT_FALSE(reply.header.tc);
  EXPECT_EQ(reply.answers.size(), 41u);
  EXPECT_EQ(transport.fallbacks(), 1u);

  daemon.stop();
  const auto stats = daemon.stats();
  EXPECT_GE(stats.truncated, 1u);
  EXPECT_EQ(stats.tcp_queries, 1u);
  EXPECT_EQ(stats.tcp_responses, 1u);
}

TEST(DaemonServerTest, MalformedDatagramDoesNotKillTheListener) {
  EchoServer handler;
  DaemonServerConfig config;
  config.listeners = 1;
  config.enable_tcp = false;
  DaemonServer daemon(&handler, config);

  UdpSocket client(0);
  client.set_receive_timeout(2000);
  const std::uint8_t junk[] = {0xDE, 0xAD, 0xBE};
  client.send_to(daemon.udp_port(), junk);

  // The listener must survive and answer the next well-formed query.
  const auto query = Message::make_query(3, DnsName::must_parse("img.cdn.sim"),
                                         net::Prefix::must_parse("10.1.2.0/24"));
  const auto reply = exchange_udp(client, daemon.udp_port(), query);
  EXPECT_EQ(reply.header.id, 3);

  daemon.stop();
  EXPECT_GE(daemon.stats().malformed, 1u);
}

TEST(DaemonServerTest, HandlerFailureBecomesServfailAndIsNeverCached) {
  FailingServer handler;
  DaemonServerConfig config;
  config.listeners = 1;
  config.enable_tcp = false;
  config.packet_cache_entries = 1024;
  DaemonServer daemon(&handler, config);

  UdpSocket client(0);
  client.set_receive_timeout(2000);
  const auto query = Message::make_query(11, DnsName::must_parse("img.cdn.sim"),
                                         net::Prefix::must_parse("10.1.2.0/24"));
  for (int i = 0; i < 2; ++i) {
    const auto reply = exchange_udp(client, daemon.udp_port(), query);
    EXPECT_EQ(reply.header.rcode, Rcode::kServFail);
  }

  daemon.stop();
  const auto stats = daemon.stats();
  EXPECT_EQ(stats.handler_failures, 2u);
  // SERVFAIL must re-consult the handler every time: no hits, two misses.
  EXPECT_EQ(stats.pcache_hits, 0u);
  EXPECT_EQ(stats.pcache_misses, 2u);
}

TEST(DaemonServerTest, PacketCacheHitPatchesTheId) {
  EchoServer handler;
  DaemonServerConfig config;
  config.listeners = 1;
  config.enable_tcp = false;
  config.packet_cache_entries = 1024;
  config.packet_cache_ttl_ms = 60'000;
  DaemonServer daemon(&handler, config);

  UdpSocket client(0);
  client.set_receive_timeout(2000);
  // Same question, different ids: the second answer must come from the
  // packet cache byte-for-byte, with only the id patched.
  const auto first = exchange_udp(
      client, daemon.udp_port(),
      Message::make_query(100, DnsName::must_parse("img.cdn.sim"),
                          net::Prefix::must_parse("10.1.2.0/24")));
  const auto second = exchange_udp(
      client, daemon.udp_port(),
      Message::make_query(200, DnsName::must_parse("img.cdn.sim"),
                          net::Prefix::must_parse("10.1.2.0/24")));
  EXPECT_EQ(first.header.id, 100);
  EXPECT_EQ(second.header.id, 200);
  ASSERT_EQ(second.answers.size(), 1u);
  EXPECT_EQ(first.to_string().substr(first.to_string().find('\n')),
            second.to_string().substr(second.to_string().find('\n')));

  daemon.stop();
  const auto stats = daemon.stats();
  EXPECT_EQ(stats.pcache_hits, 1u);
  EXPECT_EQ(stats.pcache_misses, 1u);
}

TEST(DaemonServerTest, PacketCacheExpiresByTtl) {
  EchoServer handler;
  DaemonServerConfig config;
  config.listeners = 1;
  config.enable_tcp = false;
  config.packet_cache_entries = 1024;
  config.packet_cache_ttl_ms = 30;
  DaemonServer daemon(&handler, config);

  UdpSocket client(0);
  client.set_receive_timeout(2000);
  const auto query = Message::make_query(1, DnsName::must_parse("img.cdn.sim"),
                                         net::Prefix::must_parse("10.1.2.0/24"));
  exchange_udp(client, daemon.udp_port(), query);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  exchange_udp(client, daemon.udp_port(), query);

  daemon.stop();
  const auto stats = daemon.stats();
  EXPECT_EQ(stats.pcache_hits, 0u);
  EXPECT_EQ(stats.pcache_misses, 2u);
}

TEST(DaemonServerTest, PacketCacheDisabledNeverCounts) {
  EchoServer handler;
  DaemonServerConfig config;
  config.listeners = 1;
  config.enable_tcp = false;
  config.packet_cache_entries = 0;
  DaemonServer daemon(&handler, config);

  UdpSocket client(0);
  client.set_receive_timeout(2000);
  const auto query = Message::make_query(1, DnsName::must_parse("img.cdn.sim"),
                                         net::Prefix::must_parse("10.1.2.0/24"));
  exchange_udp(client, daemon.udp_port(), query);
  exchange_udp(client, daemon.udp_port(), query);

  daemon.stop();
  const auto stats = daemon.stats();
  EXPECT_EQ(stats.pcache_hits, 0u);
  EXPECT_EQ(stats.pcache_misses, 0u);
}

TEST(DaemonServerTest, DrainAnswersEverythingAlreadyQueued) {
  EchoServer handler;
  DaemonServerConfig config;
  config.listeners = 1;
  config.enable_tcp = false;
  DaemonServer daemon(&handler, config);

  UdpSocket client(0);
  client.set_receive_timeout(2000);
  constexpr int kQueries = 50;
  for (int i = 0; i < kQueries; ++i) {
    const auto query = Message::make_query(static_cast<std::uint16_t>(i),
                                           DnsName::must_parse("img.cdn.sim"),
                                           net::Prefix::must_parse("10.1.2.0/24"));
    // Loopback send_to is synchronous: once it returns, the datagram sits
    // in the daemon's socket buffer, so drain must answer it.
    client.send_to(daemon.udp_port(), query.encode());
  }
  daemon.begin_drain();
  int answered = 0;
  for (int i = 0; i < kQueries; ++i) {
    std::uint16_t from = 0;
    if (!client.receive_from(from).empty()) ++answered;
  }
  EXPECT_EQ(answered, kQueries);
  daemon.stop();
  EXPECT_EQ(daemon.served(), static_cast<std::uint64_t>(kQueries));
}

TEST(DaemonServerTest, MultipleListenersShareThePort) {
  EchoServer handler;
  DaemonServerConfig config;
  config.listeners = 3;
  config.enable_tcp = false;
  config.packet_cache_entries = 0;
  DaemonServer daemon(&handler, config);

  // Distinct client sockets hash to different listeners kernel-side; every
  // flow must get its answers regardless of which listener it lands on.
  constexpr int kClients = 8;
  std::vector<UdpSocket> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back(0);
    clients.back().set_receive_timeout(2000);
  }
  for (int c = 0; c < kClients; ++c) {
    const auto query = Message::make_query(static_cast<std::uint16_t>(c),
                                           DnsName::must_parse("img.cdn.sim"),
                                           net::Prefix::must_parse("10.1.2.0/24"));
    clients[c].send_to(daemon.udp_port(), query.encode());
  }
  for (int c = 0; c < kClients; ++c) {
    std::uint16_t from = 0;
    const auto wire = clients[c].receive_from(from);
    ASSERT_FALSE(wire.empty()) << "client " << c << " unanswered";
    EXPECT_EQ(Message::decode(wire).header.id, c);
  }
  daemon.stop();
  EXPECT_EQ(daemon.stats().udp_queries, static_cast<std::uint64_t>(kClients));
}

// ---- The full serving stack behind the daemon ------------------------------

/// A miniature CDN world: seeded AS graph, google_like deployment, and a
/// PublicResolver with the sharded cache + coalescing — the daemon bench's
/// backend, shrunk to test size.
struct MiniWorld {
  MiniWorld() {
    topology::AsGenConfig as_config;
    as_config.tier1_count = 2;
    as_config.tier2_count = 4;
    as_config.stub_count = 10;
    as_config.seed = 2026;
    auto graph = topology::generate_as_graph(as_config);
    net::Rng rng(2027);
    const auto plan = cdn::plan_cdn(graph, cdn::google_like(), rng);
    world = std::make_unique<topology::World>(std::move(graph));
    provider = std::make_unique<cdn::CdnProvider>(cdn::deploy_cdn(*world, plan));
    auth = std::make_unique<cdn::CdnAuthoritative>(provider.get());
    const auto auth_addr =
        world->add_host(provider->as_index(), topology::HostKind::kServer, 0);
    network.register_server(auth_addr, auth.get());

    std::size_t t1 = 0;
    for (std::size_t v = 0; v < world->graph().node_count(); ++v) {
      if (world->graph().node(v).tier == topology::AsTier::kTier1) {
        t1 = v;
        break;
      }
    }
    const auto resolver_addr = world->add_host(t1, topology::HostKind::kServer, 0);
    cdn::ServingConfig serving;
    serving.enable_cache = true;
    serving.shards = 4;
    serving.coalesce = true;
    resolver = std::make_unique<cdn::PublicResolver>(&network, resolver_addr, serving);
    resolver->register_zone(dns::DnsName::must_parse(provider->profile().zone),
                            auth_addr);
    resolver->set_time_ms(0);  // frozen before any socket traffic
  }

  std::unique_ptr<topology::World> world;
  std::unique_ptr<cdn::CdnProvider> provider;
  std::unique_ptr<cdn::CdnAuthoritative> auth;
  dns::InMemoryDnsNetwork network;
  std::unique_ptr<cdn::PublicResolver> resolver;
};

TEST(DaemonServerTest, PublicResolverServesEcsTailoredAnswersOverSockets) {
  MiniWorld env;
  DaemonServerConfig config;
  config.listeners = 1;
  config.enable_tcp = false;
  DaemonServer daemon(env.resolver.get(), config);

  UdpSocket client(0);
  client.set_receive_timeout(5000);
  const auto names = env.auth->content_names();
  ASSERT_FALSE(names.empty());
  std::uint16_t id = 1;
  for (const auto& name : names) {
    const auto query = Message::make_query(
        id, name, net::Prefix(net::Ipv4Addr(20, 0, static_cast<std::uint8_t>(id), 0), 24));
    const auto reply = exchange_udp(client, daemon.udp_port(), query);
    EXPECT_EQ(reply.header.id, id);
    EXPECT_EQ(reply.header.rcode, Rcode::kNoError);
    EXPECT_FALSE(reply.answers.empty()) << name.to_string();
    ASSERT_TRUE(reply.edns.has_value());
    EXPECT_TRUE(reply.edns->client_subnet.has_value());
    ++id;
  }
  daemon.stop();
}

}  // namespace
}  // namespace drongo::dns
