#include "dns/name.hpp"

#include <gtest/gtest.h>

#include "net/error.hpp"

namespace drongo::dns {
namespace {

TEST(DnsNameTest, ParsePresentation) {
  auto name = DnsName::parse("www.example.com");
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(name->label_count(), 3u);
  EXPECT_EQ(name->to_string(), "www.example.com");
}

TEST(DnsNameTest, TrailingDotIsOptional) {
  EXPECT_EQ(DnsName::must_parse("example.com."), DnsName::must_parse("example.com"));
}

TEST(DnsNameTest, RootName) {
  auto root = DnsName::parse(".");
  ASSERT_TRUE(root.has_value());
  EXPECT_TRUE(root->is_root());
  EXPECT_EQ(root->to_string(), ".");
  EXPECT_EQ(root->wire_length(), 1u);
}

TEST(DnsNameTest, RejectsMalformed) {
  EXPECT_FALSE(DnsName::parse("").has_value());
  EXPECT_FALSE(DnsName::parse("a..b").has_value());
  EXPECT_FALSE(DnsName::parse(std::string(64, 'x') + ".com").has_value());  // label > 63
  // Total name > 255 bytes.
  std::string long_name;
  for (int i = 0; i < 50; ++i) long_name += "abcde.";
  long_name += "com";
  EXPECT_FALSE(DnsName::parse(long_name).has_value());
}

TEST(DnsNameTest, MaxLabelLengthAccepted) {
  const std::string label(63, 'a');
  EXPECT_TRUE(DnsName::parse(label + ".com").has_value());
}

TEST(DnsNameTest, CaseInsensitiveEqualityAndHash) {
  const DnsName a = DnsName::must_parse("WWW.Example.COM");
  const DnsName b = DnsName::must_parse("www.example.com");
  EXPECT_EQ(a, b);
  EXPECT_EQ(std::hash<DnsName>{}(a), std::hash<DnsName>{}(b));
  // Original case preserved for display.
  EXPECT_EQ(a.to_string(), "WWW.Example.COM");
}

TEST(DnsNameTest, WireRoundTripWithoutCompression) {
  const DnsName name = DnsName::must_parse("img.googlecdn.sim");
  net::ByteWriter w;
  name.encode(w, nullptr);
  EXPECT_EQ(w.size(), name.wire_length());

  const auto bytes = w.take();
  net::ByteReader r(bytes);
  EXPECT_EQ(DnsName::decode(r), name);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(DnsNameTest, CompressionReusesSuffixes) {
  NameOffsets offsets;
  net::ByteWriter w;
  DnsName::must_parse("www.example.com").encode(w, &offsets);
  const std::size_t first = w.size();
  DnsName::must_parse("mail.example.com").encode(w, &offsets);
  // The second name writes "mail" (5 bytes) plus a 2-byte pointer.
  EXPECT_EQ(w.size() - first, 5u + 2u);

  // Both decode correctly from the shared buffer.
  const auto bytes = w.bytes();
  net::ByteReader r(bytes);
  EXPECT_EQ(DnsName::decode(r).to_string(), "www.example.com");
  EXPECT_EQ(DnsName::decode(r).to_string(), "mail.example.com");
}

TEST(DnsNameTest, CompressionIsCaseInsensitive) {
  NameOffsets offsets;
  net::ByteWriter w;
  DnsName::must_parse("a.EXAMPLE.com").encode(w, &offsets);
  const std::size_t first = w.size();
  DnsName::must_parse("b.example.COM").encode(w, &offsets);
  EXPECT_EQ(w.size() - first, 2u + 2u);  // "b" + pointer
}

TEST(DnsNameTest, DecodeRejectsForwardPointer) {
  // Pointer to offset 4 from offset 0 — forward, must be rejected.
  const std::uint8_t wire[] = {0xC0, 0x04, 0x00, 0x00, 0x01, 'x', 0x00};
  net::ByteReader r(wire);
  EXPECT_THROW(DnsName::decode(r), net::ParseError);
}

TEST(DnsNameTest, DecodeRejectsSelfPointerLoop) {
  // Name at offset 2 pointing to itself.
  const std::uint8_t wire[] = {0x00, 0x00, 0xC0, 0x02};
  net::ByteReader r(wire);
  r.seek(2);
  EXPECT_THROW(DnsName::decode(r), net::ParseError);
}

TEST(DnsNameTest, DecodeRejectsTruncatedLabel) {
  const std::uint8_t wire[] = {5, 'a', 'b'};  // label claims 5 bytes, has 2
  net::ByteReader r(wire);
  // Truncation surfaces as a bounds violation (both are net::Error).
  EXPECT_THROW(DnsName::decode(r), net::Error);
}

TEST(DnsNameTest, DecodeRejectsReservedLabelType) {
  const std::uint8_t wire[] = {0x80, 'a', 0x00};  // 10xxxxxx is reserved
  net::ByteReader r(wire);
  EXPECT_THROW(DnsName::decode(r), net::ParseError);
}

TEST(DnsNameTest, SubdomainRelation) {
  const DnsName zone = DnsName::must_parse("cdn.example");
  EXPECT_TRUE(DnsName::must_parse("img.cdn.example").is_subdomain_of(zone));
  EXPECT_TRUE(zone.is_subdomain_of(zone));
  EXPECT_TRUE(zone.is_subdomain_of(DnsName()));  // everything under root
  EXPECT_FALSE(DnsName::must_parse("cdn.other").is_subdomain_of(zone));
  EXPECT_FALSE(DnsName::must_parse("xcdn.example").is_subdomain_of(zone));
  EXPECT_TRUE(DnsName::must_parse("IMG.CDN.Example").is_subdomain_of(zone));
}

TEST(DnsNameTest, ParentStripsFirstLabel) {
  EXPECT_EQ(DnsName::must_parse("a.b.c").parent().to_string(), "b.c");
  EXPECT_THROW(DnsName().parent(), net::InvalidArgument);
}

TEST(DnsNameTest, OrderingIsCaseInsensitiveLexicographic) {
  EXPECT_LT(DnsName::must_parse("aaa.com"), DnsName::must_parse("bbb.com"));
  EXPECT_EQ(DnsName::must_parse("AAA.com") <=> DnsName::must_parse("aaa.COM"),
            std::strong_ordering::equal);
  EXPECT_LT(DnsName::must_parse("a.com"), DnsName::must_parse("a.com.extra"));
}

class NameRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(NameRoundTrip, PresentationWireAndBack) {
  const DnsName name = DnsName::must_parse(GetParam());
  net::ByteWriter w;
  name.encode(w);
  const auto bytes = w.take();
  net::ByteReader r(bytes);
  EXPECT_EQ(DnsName::decode(r), name);
  EXPECT_EQ(DnsName::must_parse(name.to_string()), name);
}

INSTANTIATE_TEST_SUITE_P(Various, NameRoundTrip,
                         ::testing::Values("a", "a.b", "img.static.cdn.example.com",
                                           "xn--idn.example", "123.456.test",
                                           "UPPER.lower.MiXeD"));

}  // namespace
}  // namespace drongo::dns
