// Real-socket loopback tests for the UDP transport.
#include <gtest/gtest.h>

#include "dns/udp.hpp"
#include "net/error.hpp"

namespace drongo::dns {
namespace {

class StaticServer : public DnsServer {
 public:
  Message handle(const Message& query, net::Ipv4Addr /*source*/) override {
    Message response = Message::make_response(query, Rcode::kNoError, 24);
    response.answers.push_back(
        ResourceRecord::a(query.questions[0].name, net::Ipv4Addr(21, 7, 7, 7), 30));
    return response;
  }
};

TEST(UdpSocketTest, EphemeralBindPicksPort) {
  UdpSocket a(0);
  UdpSocket b(0);
  EXPECT_NE(a.port(), 0);
  EXPECT_NE(b.port(), 0);
  EXPECT_NE(a.port(), b.port());
}

TEST(UdpSocketTest, MoveTransfersOwnership) {
  UdpSocket a(0);
  const auto port = a.port();
  UdpSocket b(std::move(a));
  EXPECT_EQ(b.port(), port);
  EXPECT_EQ(a.port(), 0);
  EXPECT_LT(a.fd(), 0);
}

TEST(UdpSocketTest, SendReceiveRoundTrip) {
  UdpSocket sender(0);
  UdpSocket receiver(0);
  receiver.set_receive_timeout(1000);
  const std::uint8_t payload[] = {1, 2, 3, 4};
  sender.send_to(receiver.port(), payload);
  std::uint16_t from = 0;
  const auto got = receiver.receive_from(from);
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(from, sender.port());
}

TEST(UdpSocketTest, ReceiveTimesOutEmpty) {
  UdpSocket s(0);
  s.set_receive_timeout(50);
  std::uint16_t from = 0;
  EXPECT_TRUE(s.receive_from(from).empty());
}

TEST(UdpDnsTest, QueryOverRealSockets) {
  StaticServer handler;
  UdpDnsServer server(&handler, 0);
  ASSERT_NE(server.port(), 0);

  UdpDnsClient client(2000);
  const net::Ipv4Addr virtual_server(9, 9, 9, 9);
  client.register_endpoint(virtual_server, server.port());

  const auto query = Message::make_query(0x77, DnsName::must_parse("img.cdn.sim"),
                                         net::Prefix::must_parse("20.1.2.0/24"));
  const auto reply_wire =
      client.exchange(net::Ipv4Addr(10, 0, 0, 1), virtual_server, query.encode());
  const auto reply = Message::decode(reply_wire);
  EXPECT_EQ(reply.header.id, 0x77);
  ASSERT_EQ(reply.answer_addresses().size(), 1u);
  EXPECT_EQ(reply.answer_addresses()[0], net::Ipv4Addr(21, 7, 7, 7));
  EXPECT_GE(server.served(), 1u);
}

TEST(UdpDnsTest, UnregisteredEndpointThrows) {
  UdpDnsClient client(100);
  const auto query = Message::make_query(1, DnsName::must_parse("x.y"));
  EXPECT_THROW(client.exchange(net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2),
                               query.encode()),
               net::Error);
}

TEST(UdpDnsTest, MalformedDatagramIsDroppedServerSurvives) {
  StaticServer handler;
  UdpDnsServer server(&handler, 0);

  UdpSocket raw(0);
  const std::uint8_t garbage[] = {0xFF, 0xEE};
  raw.send_to(server.port(), garbage);

  // Server must still answer a valid query afterwards.
  UdpDnsClient client(2000);
  const net::Ipv4Addr virtual_server(9, 9, 9, 9);
  client.register_endpoint(virtual_server, server.port());
  const auto query = Message::make_query(3, DnsName::must_parse("img.cdn.sim"));
  const auto reply = Message::decode(
      client.exchange(net::Ipv4Addr(10, 0, 0, 1), virtual_server, query.encode()));
  EXPECT_EQ(reply.header.id, 3);
}

TEST(UdpDnsTest, StopIsIdempotent) {
  StaticServer handler;
  UdpDnsServer server(&handler, 0);
  server.stop();
  server.stop();  // second stop is a no-op
}

}  // namespace
}  // namespace drongo::dns
