// HedgedTransport tests: pass-through, firing, rescue, dual failure, id
// patch-back, determinism, adaptive warm-up, and strict env parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>

#include "dns/faults.hpp"
#include "dns/hedge.hpp"
#include "dns/inmemory.hpp"
#include "dns/message.hpp"
#include "net/error.hpp"

namespace drongo::dns {
namespace {

/// Answers every A query with one fixed address.
class FixedServer : public DnsServer {
 public:
  Message handle(const Message& query, net::Ipv4Addr /*source*/) override {
    ++queries;
    Message response = Message::make_response(query, Rcode::kNoError, 24);
    response.answers.push_back(
        ResourceRecord::a(query.questions[0].name, net::Ipv4Addr(21, 0, 0, 1), 30));
    return response;
  }

  int queries = 0;
};

class HedgeFixture : public ::testing::Test {
 protected:
  void SetUp() override { network.register_server(server_addr, &server); }

  std::vector<std::uint8_t> query_wire(std::uint16_t id) const {
    return Message::make_query(id, DnsName::must_parse("img.cdn.sim"), std::nullopt)
        .encode();
  }

  /// Enabled config whose pinned threshold every primary draw exceeds
  /// (base_ms = 4 > 1), so the hedge fires on every exchange.
  static HedgeConfig always_fires() {
    HedgeConfig config;
    config.enabled = true;
    config.threshold_ms = 1.0;
    return config;
  }

  InMemoryDnsNetwork network;
  FixedServer server;
  const net::Ipv4Addr server_addr{net::Ipv4Addr(9, 9, 9, 9)};
  const net::Ipv4Addr client{net::Ipv4Addr(20, 1, 36, 10)};
};

TEST_F(HedgeFixture, DisabledPassesThroughUntouched) {
  HedgedTransport hedged(&network, HedgeConfig{});
  const auto wire = query_wire(42);
  const auto direct = network.exchange(client, server_addr, wire);
  const auto through = hedged.exchange(client, server_addr, wire);
  EXPECT_EQ(direct, through);
  EXPECT_EQ(hedged.exchanges(), 0u);
  EXPECT_EQ(hedged.latency().count(), 0u);
}

TEST_F(HedgeFixture, UnreachableThresholdNeverFires) {
  HedgeConfig config;
  config.enabled = true;
  config.threshold_ms = 1e9;
  HedgedTransport hedged(&network, config);
  for (std::uint16_t id = 0; id < 32; ++id) {
    const auto wire = query_wire(id);
    EXPECT_EQ(hedged.exchange(client, server_addr, wire),
              network.exchange(client, server_addr, wire));
  }
  EXPECT_EQ(hedged.exchanges(), 32u);
  EXPECT_EQ(hedged.hedges_fired(), 0u);
  EXPECT_EQ(hedged.latency().count(), 32u);
}

TEST_F(HedgeFixture, WinnerIdIsAlwaysTheCallersId) {
  // Threshold 1 ms: every exchange hedges, and the winner alternates between
  // primary and duplicate across ids. Whatever wins, the reply's id bytes
  // must match what the caller sent — a winning hedge is patched back.
  HedgedTransport hedged(&network, always_fires());
  for (std::uint16_t id = 0; id < 64; ++id) {
    const auto wire = query_wire(id);
    const auto reply = hedged.exchange(client, server_addr, wire);
    ASSERT_GE(reply.size(), 2u);
    EXPECT_EQ(reply[0], wire[0]) << "id " << id;
    EXPECT_EQ(reply[1], wire[1]) << "id " << id;
  }
  EXPECT_EQ(hedged.hedges_fired(), 64u);
  // Hedge pays threshold + a fresh draw, so both outcomes occur over 64 ids.
  EXPECT_GT(hedged.hedge_wins(), 0u);
  EXPECT_GT(hedged.hedge_losses(), 0u);
  EXPECT_EQ(hedged.hedge_wins() + hedged.hedge_losses(), 64u);
}

TEST_F(HedgeFixture, HedgeRescuesFailedPrimaries) {
  // The duplicate carries rewritten id bytes, so the fault fabric — a pure
  // function of the bytes — gives it an independent fate: some primaries
  // that time out are rescued by a duplicate that does not.
  FaultProfile profile;
  profile.timeout_prob = 0.5;
  FaultyTransport faulty(&network, 7, profile);
  HedgedTransport hedged(&faulty, always_fires());
  int answered = 0;
  int failed = 0;
  for (std::uint16_t id = 0; id < 128; ++id) {
    try {
      const auto reply = hedged.exchange(client, server_addr, query_wire(id));
      EXPECT_FALSE(reply.empty());
      ++answered;
    } catch (const net::TransientError&) {
      ++failed;
    }
  }
  EXPECT_GT(hedged.rescued(), 0u);
  EXPECT_GT(hedged.both_failed(), 0u);
  EXPECT_EQ(hedged.both_failed(), static_cast<std::uint64_t>(failed));
  EXPECT_GT(answered, failed) << "hedging should beat a 50% timeout rate";
}

TEST_F(HedgeFixture, DualFailureRethrowsThePrimarysError) {
  FaultProfile profile;
  profile.timeout_prob = 1.0;
  FaultyTransport faulty(&network, 7, profile);
  HedgedTransport hedged(&faulty, always_fires());
  EXPECT_THROW((void)hedged.exchange(client, server_addr, query_wire(5)),
               net::TimeoutError);
  EXPECT_EQ(hedged.hedges_fired(), 1u);
  EXPECT_EQ(hedged.both_failed(), 1u);
  EXPECT_EQ(hedged.rescued(), 0u);
}

TEST_F(HedgeFixture, SameBytesSameFate) {
  // Hedging decisions are pure functions of (seed, exchange bytes): two
  // decorators over identical fabrics agree on every tally.
  FaultProfile profile;
  profile.timeout_prob = 0.3;
  FaultyTransport faulty_a(&network, 7, profile);
  FaultyTransport faulty_b(&network, 7, profile);
  HedgedTransport a(&faulty_a, always_fires());
  HedgedTransport b(&faulty_b, always_fires());
  for (std::uint16_t id = 0; id < 96; ++id) {
    const auto wire = query_wire(id);
    std::vector<std::uint8_t> ra;
    std::vector<std::uint8_t> rb;
    bool ea = false;
    bool eb = false;
    try {
      ra = a.exchange(client, server_addr, wire);
    } catch (const net::TransientError&) {
      ea = true;
    }
    try {
      rb = b.exchange(client, server_addr, wire);
    } catch (const net::TransientError&) {
      eb = true;
    }
    EXPECT_EQ(ea, eb) << "diverged at id " << id;
    EXPECT_EQ(ra, rb) << "diverged at id " << id;
  }
  EXPECT_EQ(a.hedges_fired(), b.hedges_fired());
  EXPECT_EQ(a.hedge_wins(), b.hedge_wins());
  EXPECT_EQ(a.hedge_losses(), b.hedge_losses());
  EXPECT_EQ(a.rescued(), b.rescued());
  EXPECT_EQ(a.both_failed(), b.both_failed());
  EXPECT_DOUBLE_EQ(a.latency().quantile(95.0), b.latency().quantile(95.0));
}

TEST_F(HedgeFixture, AdaptiveModeWarmsUpBeforeHedging) {
  HedgeConfig config;
  config.enabled = true;
  config.threshold_ms = 0.0;  // adaptive
  config.min_samples = 8;
  HedgedTransport hedged(&network, config);
  EXPECT_TRUE(std::isinf(hedged.current_threshold_ms()));
  for (std::uint16_t id = 0; id < 8; ++id) {
    (void)hedged.exchange(client, server_addr, query_wire(id));
  }
  EXPECT_EQ(hedged.hedges_fired(), 0u) << "no hedges during warm-up";
  const double threshold = hedged.current_threshold_ms();
  EXPECT_TRUE(std::isfinite(threshold));
  EXPECT_GE(threshold, config.min_threshold_ms);
}

TEST_F(HedgeFixture, ConstructionRejectsBadArguments) {
  EXPECT_THROW(HedgedTransport(nullptr, HedgeConfig{}), net::InvalidArgument);
  HedgeConfig bad = always_fires();
  bad.threshold_ms = -1.0;
  EXPECT_THROW(HedgedTransport(&network, bad), net::InvalidArgument);
  bad = always_fires();
  bad.quantile = 0.0;
  EXPECT_THROW(HedgedTransport(&network, bad), net::InvalidArgument);
  bad = always_fires();
  bad.min_samples = 0;
  EXPECT_THROW(HedgedTransport(&network, bad), net::InvalidArgument);
  bad = always_fires();
  bad.slow_prob = 1.5;
  EXPECT_THROW(HedgedTransport(&network, bad), net::InvalidArgument);
}

/// setenv/unsetenv scope guard so a throwing assertion cannot leak a knob
/// into later tests.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~EnvGuard() { ::unsetenv(name_); }

 private:
  const char* name_;
};

TEST(HedgeEnv, WellFormedKnobsOverrideTheBase) {
  const EnvGuard enable("DRONGO_HEDGE_ENABLE", "1");
  const EnvGuard threshold("DRONGO_HEDGE_THRESHOLD_MS", "12.5");
  const EnvGuard quantile("DRONGO_HEDGE_QUANTILE", "90");
  const EnvGuard samples("DRONGO_HEDGE_MIN_SAMPLES", "25");
  const HedgeConfig config = hedge_config_from_env();
  EXPECT_TRUE(config.enabled);
  EXPECT_DOUBLE_EQ(config.threshold_ms, 12.5);
  EXPECT_DOUBLE_EQ(config.quantile, 90.0);
  EXPECT_EQ(config.min_samples, 25u);
}

TEST(HedgeEnv, MalformedKnobsFailLoudly) {
  {
    const EnvGuard g("DRONGO_HEDGE_ENABLE", "maybe");
    EXPECT_THROW((void)hedge_config_from_env(), net::InvalidArgument);
  }
  {
    const EnvGuard g("DRONGO_HEDGE_THRESHOLD_MS", "-3");
    EXPECT_THROW((void)hedge_config_from_env(), net::InvalidArgument);
  }
  {
    const EnvGuard g("DRONGO_HEDGE_QUANTILE", "banana");
    EXPECT_THROW((void)hedge_config_from_env(), net::InvalidArgument);
  }
  {
    const EnvGuard g("DRONGO_HEDGE_QUANTILE", "0");
    EXPECT_THROW((void)hedge_config_from_env(), net::InvalidArgument);
  }
  {
    const EnvGuard g("DRONGO_HEDGE_QUANTILE", "101");
    EXPECT_THROW((void)hedge_config_from_env(), net::InvalidArgument);
  }
  {
    const EnvGuard g("DRONGO_HEDGE_MIN_SAMPLES", "0");
    EXPECT_THROW((void)hedge_config_from_env(), net::InvalidArgument);
  }
  {
    const EnvGuard g("DRONGO_HEDGE_MIN_SAMPLES", "7.5");
    EXPECT_THROW((void)hedge_config_from_env(), net::InvalidArgument);
  }
}

}  // namespace
}  // namespace drongo::dns
