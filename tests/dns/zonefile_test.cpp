#include "dns/zonefile.hpp"

#include <gtest/gtest.h>

#include "cdn/resolver.hpp"
#include "dns/inmemory.hpp"
#include "net/error.hpp"

namespace drongo::dns {
namespace {

const DnsName kOrigin = DnsName::must_parse("shop.sim");

TEST(ZoneFileTest, ParsesBasicRecords) {
  const auto zone = parse_zone_text(R"(
$TTL 600
@       IN SOA ns1 hostmaster 2024010101 3600 600 86400 60
@       IN NS  ns1
ns1     IN A   20.1.40.53
www     300 IN CNAME cdn.example.
img     IN A   20.1.40.80
)",
                                    kOrigin);
  ASSERT_EQ(zone.records.size(), 5u);
  EXPECT_EQ(zone.origin, kOrigin);

  EXPECT_EQ(zone.records[0].type, RrType::kSoa);
  EXPECT_EQ(std::get<SoaRdata>(zone.records[0].rdata).serial, 2024010101u);
  EXPECT_EQ(zone.records[0].ttl, 600u);  // $TTL applied

  EXPECT_EQ(zone.records[1].type, RrType::kNs);
  EXPECT_EQ(std::get<NsRdata>(zone.records[1].rdata).nameserver.to_string(),
            "ns1.shop.sim");

  EXPECT_EQ(zone.records[2].name.to_string(), "ns1.shop.sim");
  EXPECT_EQ(std::get<ARdata>(zone.records[2].rdata).address.to_string(), "20.1.40.53");

  // Absolute target keeps its dot-resolved form; explicit TTL wins.
  EXPECT_EQ(zone.records[3].ttl, 300u);
  EXPECT_EQ(std::get<CnameRdata>(zone.records[3].rdata).target.to_string(),
            "cdn.example");
}

TEST(ZoneFileTest, OriginDirectiveSwitchesContext) {
  const auto zone = parse_zone_text(R"(
$ORIGIN other.sim.
www IN A 20.2.40.1
)",
                                    kOrigin);
  ASSERT_EQ(zone.records.size(), 1u);
  EXPECT_EQ(zone.origin.to_string(), "other.sim");
  EXPECT_EQ(zone.records[0].name.to_string(), "www.other.sim");
}

TEST(ZoneFileTest, ContinuationLinesReuseOwner) {
  const auto zone = parse_zone_text(
      "www IN A 20.1.40.1\n"
      "    IN A 20.1.40.2\n",
      kOrigin);
  ASSERT_EQ(zone.records.size(), 2u);
  EXPECT_EQ(zone.records[0].name, zone.records[1].name);
}

TEST(ZoneFileTest, TxtQuotedStrings) {
  const auto zone = parse_zone_text(
      "meta IN TXT \"hello world\" \"\" token\n", kOrigin);
  ASSERT_EQ(zone.records.size(), 1u);
  const auto& txt = std::get<TxtRdata>(zone.records[0].rdata);
  ASSERT_EQ(txt.strings.size(), 3u);
  EXPECT_EQ(txt.strings[0], "hello world");
  EXPECT_EQ(txt.strings[1], "");
  EXPECT_EQ(txt.strings[2], "token");
}

TEST(ZoneFileTest, CommentsAndBlanksIgnored) {
  const auto zone = parse_zone_text(R"(
; a full-line comment

www IN A 20.1.40.1 ; trailing comment
)",
                                    kOrigin);
  EXPECT_EQ(zone.records.size(), 1u);
}

TEST(ZoneFileTest, ErrorsCarryLineNumbers) {
  try {
    parse_zone_text("www IN A 20.1.40.1\nbad IN WAT x\n", kOrigin);
    FAIL() << "expected ParseError";
  } catch (const net::ParseError& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(parse_zone_text("www IN A\n", kOrigin), net::ParseError);
  EXPECT_THROW(parse_zone_text("www IN A 999.1.1.1\n", kOrigin), net::ParseError);
  EXPECT_THROW(parse_zone_text("www IN TXT \"unterminated\n", kOrigin), net::ParseError);
  EXPECT_THROW(parse_zone_text("$TTL abc\n", kOrigin), net::ParseError);
  EXPECT_THROW(parse_zone_text("    IN A 1.2.3.4\n", kOrigin), net::ParseError);
}

TEST(StaticZoneServerTest, ServesParsedZone) {
  StaticZoneServer server(parse_zone_text(R"(
www IN CNAME img
img IN A 20.1.40.80
img IN A 20.1.40.81
meta IN TXT "v=1"
)",
                                          kOrigin));

  // A query for img: both addresses.
  auto response = server.handle(
      Message::make_query(1, DnsName::must_parse("img.shop.sim")), net::Ipv4Addr());
  EXPECT_EQ(response.header.rcode, Rcode::kNoError);
  EXPECT_EQ(response.answer_addresses().size(), 2u);

  // A query for www: the CNAME comes back for chasing.
  response = server.handle(Message::make_query(2, DnsName::must_parse("www.shop.sim")),
                           net::Ipv4Addr());
  ASSERT_EQ(response.answers.size(), 1u);
  EXPECT_EQ(response.answers[0].type, RrType::kCname);

  // TXT name queried for A: NOERROR, empty.
  response = server.handle(Message::make_query(3, DnsName::must_parse("meta.shop.sim")),
                           net::Ipv4Addr());
  EXPECT_EQ(response.header.rcode, Rcode::kNoError);
  EXPECT_TRUE(response.answers.empty());

  // Unknown name in zone / outside zone.
  EXPECT_EQ(server
                .handle(Message::make_query(4, DnsName::must_parse("nope.shop.sim")),
                        net::Ipv4Addr())
                .header.rcode,
            Rcode::kNxDomain);
  EXPECT_EQ(server
                .handle(Message::make_query(5, DnsName::must_parse("www.example.com")),
                        net::Ipv4Addr())
                .header.rcode,
            Rcode::kRefused);
}

TEST(StaticZoneServerTest, IntegratesWithResolverChase) {
  // Static zone CNAMEs into itself; the resolver assembles the chain.
  StaticZoneServer server(parse_zone_text(R"(
www IN CNAME img
img IN A 20.1.40.80
)",
                                          kOrigin));
  InMemoryDnsNetwork network;
  const net::Ipv4Addr addr(9, 9, 9, 9);
  network.register_server(addr, &server);
  cdn::PublicResolver resolver(&network, net::Ipv4Addr(8, 8, 8, 8));
  resolver.register_zone(kOrigin, addr);
  const auto response = resolver.handle(
      Message::make_query(6, DnsName::must_parse("www.shop.sim")), net::Ipv4Addr(1, 1, 1, 1));
  EXPECT_EQ(response.header.rcode, Rcode::kNoError);
  ASSERT_EQ(response.answer_addresses().size(), 1u);
  EXPECT_EQ(response.answer_addresses()[0].to_string(), "20.1.40.80");
}

}  // namespace
}  // namespace drongo::dns
