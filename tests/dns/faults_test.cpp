// FaultyTransport and fault-profile tests: every injected pathology, its
// determinism guarantee, and the strict knob parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "dns/faults.hpp"
#include "dns/inmemory.hpp"
#include "dns/message.hpp"
#include "net/error.hpp"

namespace drongo::dns {
namespace {

/// Answers every A query with one fixed address, echoing ECS with scope 24;
/// records what the query carried so tests can observe strips.
class RecordingServer : public DnsServer {
 public:
  Message handle(const Message& query, net::Ipv4Addr /*source*/) override {
    ++queries;
    saw_ecs = query.edns && query.edns->client_subnet;
    Message response = Message::make_response(query, Rcode::kNoError, 24);
    response.answers.push_back(
        ResourceRecord::a(query.questions[0].name, net::Ipv4Addr(21, 0, 0, 1), 30));
    return response;
  }

  int queries = 0;
  bool saw_ecs = false;
};

class FaultyTransportFixture : public ::testing::Test {
 protected:
  void SetUp() override { network.register_server(server_addr, &server); }

  std::vector<std::uint8_t> query_wire(std::uint16_t id,
                                       bool with_ecs = false) const {
    return Message::make_query(id, DnsName::must_parse("img.cdn.sim"),
                               with_ecs ? std::make_optional(net::Prefix(client, 24))
                                        : std::nullopt)
        .encode();
  }

  InMemoryDnsNetwork network;
  RecordingServer server;
  const net::Ipv4Addr server_addr{net::Ipv4Addr(9, 9, 9, 9)};
  const net::Ipv4Addr client{net::Ipv4Addr(20, 1, 36, 10)};
};

TEST_F(FaultyTransportFixture, InactiveProfileIsTransparent) {
  FaultyTransport faulty(&network, 1, FaultProfile::none());
  const auto wire = query_wire(100);
  const auto direct = network.exchange(client, server_addr, wire);
  const auto through = faulty.exchange(client, server_addr, wire);
  EXPECT_EQ(direct, through);
  EXPECT_EQ(faulty.clean_exchanges(), 1u);
}

TEST_F(FaultyTransportFixture, SameSeedSameBytesSameFate) {
  // The headline determinism contract: fault decisions are a pure function
  // of (seed, channel, exchange bytes). Two decorators with the same seed
  // must agree on every exchange — including which ones they kill.
  FaultProfile profile;
  profile.loss_prob = 0.5;
  FaultyTransport a(&network, 7, profile);
  FaultyTransport b(&network, 7, profile);
  int losses = 0;
  int passes = 0;
  for (std::uint16_t id = 0; id < 64; ++id) {
    const auto wire = query_wire(id);
    bool a_lost = false;
    bool b_lost = false;
    try {
      (void)a.exchange(client, server_addr, wire);
    } catch (const net::TimeoutError&) {
      a_lost = true;
    }
    try {
      (void)b.exchange(client, server_addr, wire);
    } catch (const net::TimeoutError&) {
      b_lost = true;
    }
    EXPECT_EQ(a_lost, b_lost) << "diverged at id " << id;
    (a_lost ? losses : passes) += 1;
  }
  // At p=0.5 over 64 draws both outcomes must occur.
  EXPECT_GT(losses, 0);
  EXPECT_GT(passes, 0);
  EXPECT_EQ(a.losses(), b.losses());
}

TEST_F(FaultyTransportFixture, DifferentSeedsDisagreeSomewhere) {
  FaultProfile profile;
  profile.loss_prob = 0.5;
  FaultyTransport a(&network, 7, profile);
  FaultyTransport b(&network, 8, profile);
  bool diverged = false;
  for (std::uint16_t id = 0; id < 64 && !diverged; ++id) {
    const auto wire = query_wire(id);
    bool a_lost = false;
    bool b_lost = false;
    try {
      (void)a.exchange(client, server_addr, wire);
    } catch (const net::TimeoutError&) {
      a_lost = true;
    }
    try {
      (void)b.exchange(client, server_addr, wire);
    } catch (const net::TimeoutError&) {
      b_lost = true;
    }
    diverged = a_lost != b_lost;
  }
  EXPECT_TRUE(diverged);
}

TEST_F(FaultyTransportFixture, CertainLossAlwaysTimesOut) {
  FaultProfile profile;
  profile.loss_prob = 1.0;
  FaultyTransport faulty(&network, 3, profile);
  EXPECT_THROW((void)faulty.exchange(client, server_addr, query_wire(1)),
               net::TimeoutError);
  EXPECT_EQ(faulty.losses(), 1u);
  EXPECT_EQ(server.queries, 0);  // dropped before the server ever saw it
}

TEST_F(FaultyTransportFixture, ServfailAnswersWithoutReachingServer) {
  FaultProfile profile;
  profile.servfail_prob = 1.0;
  FaultyTransport faulty(&network, 3, profile);
  const auto reply = Message::decode(faulty.exchange(client, server_addr, query_wire(42)));
  EXPECT_EQ(reply.header.rcode, Rcode::kServFail);
  EXPECT_EQ(reply.header.id, 42);  // still a valid answer to THIS query
  ASSERT_EQ(reply.questions.size(), 1u);
  EXPECT_EQ(server.queries, 0);
  EXPECT_EQ(faulty.servfails(), 1u);
}

TEST_F(FaultyTransportFixture, RefusedAnswersWithRefusedRcode) {
  FaultProfile profile;
  profile.refused_prob = 1.0;
  FaultyTransport faulty(&network, 3, profile);
  const auto reply = Message::decode(faulty.exchange(client, server_addr, query_wire(42)));
  EXPECT_EQ(reply.header.rcode, Rcode::kRefused);
  EXPECT_EQ(faulty.refusals(), 1u);
}

TEST_F(FaultyTransportFixture, EcsStripHidesSubnetFromServer) {
  FaultProfile profile;
  profile.ecs_strip_prob = 1.0;
  FaultyTransport faulty(&network, 3, profile);
  (void)faulty.exchange(client, server_addr, query_wire(5, /*with_ecs=*/true));
  EXPECT_EQ(server.queries, 1);
  EXPECT_FALSE(server.saw_ecs);  // the recursive dropped the option
  EXPECT_EQ(faulty.ecs_strips(), 1u);

  // A query without ECS has nothing to strip — no count, no touch.
  (void)faulty.exchange(client, server_addr, query_wire(6, /*with_ecs=*/false));
  EXPECT_EQ(faulty.ecs_strips(), 1u);
}

TEST_F(FaultyTransportFixture, ScopeZeroRewritesResponseScope) {
  FaultProfile profile;
  profile.scope_zero_prob = 1.0;
  FaultyTransport faulty(&network, 3, profile);
  const auto reply =
      Message::decode(faulty.exchange(client, server_addr, query_wire(5, true)));
  ASSERT_TRUE(reply.edns && reply.edns->client_subnet);
  EXPECT_EQ(reply.edns->client_subnet->scope_prefix_length, 0);
  EXPECT_EQ(faulty.scope_zeros(), 1u);
}

TEST_F(FaultyTransportFixture, TruncationFiresOnUdpOnly) {
  FaultProfile profile;
  profile.truncate_prob = 1.0;
  FaultyTransport udp(&network, 3, profile, FaultyTransport::Channel::kUdp);
  FaultyTransport tcp(&network, 3, profile, FaultyTransport::Channel::kTcp);

  const auto udp_reply = Message::decode(udp.exchange(client, server_addr, query_wire(5)));
  EXPECT_TRUE(udp_reply.header.tc);
  EXPECT_TRUE(udp_reply.answers.empty());
  EXPECT_EQ(udp.truncations(), 1u);

  const auto tcp_reply = Message::decode(tcp.exchange(client, server_addr, query_wire(5)));
  EXPECT_FALSE(tcp_reply.header.tc);
  EXPECT_FALSE(tcp_reply.answers.empty());
  EXPECT_EQ(tcp.truncations(), 0u);
}

TEST_F(FaultyTransportFixture, OutageWindowMatchesSimulatedTimeOnly) {
  FaultProfile profile;
  profile.outages.push_back({server_addr, 2.0, 4.0});
  FaultyTransport faulty(&network, 3, profile);

  // No trial clock: outages cannot fire.
  EXPECT_NO_THROW((void)faulty.exchange(client, server_addr, query_wire(1)));

  {
    ScopedFaultTime at(3.0);  // inside the window
    EXPECT_THROW((void)faulty.exchange(client, server_addr, query_wire(2)),
                 net::UnreachableError);
  }
  {
    ScopedFaultTime at(4.0);  // window end is exclusive
    EXPECT_NO_THROW((void)faulty.exchange(client, server_addr, query_wire(3)));
  }
  {
    // Another destination is unaffected even inside the window.
    ScopedFaultTime at(3.0);
    network.register_server(net::Ipv4Addr(9, 9, 9, 10), &server);
    EXPECT_NO_THROW(
        (void)faulty.exchange(client, net::Ipv4Addr(9, 9, 9, 10), query_wire(4)));
  }
  EXPECT_EQ(faulty.outage_hits(), 1u);
  // The clock restored to "no trial" after the scopes closed.
  EXPECT_TRUE(std::isnan(ScopedFaultTime::current()));
}

TEST(FaultProfileTest, NamedProfiles) {
  EXPECT_FALSE(parse_fault_profile("none").active());
  EXPECT_FALSE(parse_fault_profile("").active());
  EXPECT_DOUBLE_EQ(parse_fault_profile("lossy").loss_prob, 0.10);
  EXPECT_DOUBLE_EQ(parse_fault_profile("flaky").servfail_prob, 0.10);
  EXPECT_DOUBLE_EQ(parse_fault_profile("ecs-hostile").ecs_strip_prob, 0.25);
  EXPECT_TRUE(parse_fault_profile("chaos").active());
  EXPECT_THROW(parse_fault_profile("mayhem"), net::InvalidArgument);
}

TEST(FaultProfileTest, ProbabilityKnobParsingIsStrict) {
  EXPECT_DOUBLE_EQ(parse_fault_prob("0.25", 0.0, "K"), 0.25);
  EXPECT_DOUBLE_EQ(parse_fault_prob(nullptr, 0.1, "K"), 0.1);
  EXPECT_DOUBLE_EQ(parse_fault_prob("", 0.1, "K"), 0.1);
  EXPECT_THROW(parse_fault_prob("banana", 0.0, "K"), net::InvalidArgument);
  EXPECT_THROW(parse_fault_prob("1.5", 0.0, "K"), net::InvalidArgument);
  EXPECT_THROW(parse_fault_prob("-0.1", 0.0, "K"), net::InvalidArgument);
  EXPECT_THROW(parse_fault_prob("0.5x", 0.0, "K"), net::InvalidArgument);
}

TEST(FaultProfileTest, EnvKnobsLayerOverBase) {
  ::setenv("DRONGO_FAULT_PROFILE", "flaky", 1);
  ::setenv("DRONGO_FAULT_LOSS", "0.33", 1);
  const auto profile = fault_profile_from_env();
  ::unsetenv("DRONGO_FAULT_PROFILE");
  ::unsetenv("DRONGO_FAULT_LOSS");
  EXPECT_DOUBLE_EQ(profile.servfail_prob, 0.10);  // from the named base
  EXPECT_DOUBLE_EQ(profile.loss_prob, 0.33);      // the env override
}

TEST(FaultProfileTest, MalformedEnvThrowsLoudly) {
  ::setenv("DRONGO_FAULT_LOSS", "lots", 1);
  EXPECT_THROW(fault_profile_from_env(), net::InvalidArgument);
  ::unsetenv("DRONGO_FAULT_LOSS");
}

TEST(ErrorTaxonomyTest, TransientAndPermanentSubtypeNetError) {
  // Every typed error stays catchable as net::Error (existing handlers keep
  // working), while the transient/permanent split is what retry loops key on.
  EXPECT_THROW(throw net::TimeoutError("x"), net::TransientError);
  EXPECT_THROW(throw net::UnreachableError("x"), net::TransientError);
  EXPECT_THROW(throw net::TimeoutError("x"), net::Error);
  EXPECT_THROW(throw net::ParseError("x"), net::PermanentError);
  EXPECT_THROW(throw net::BoundsError("x"), net::PermanentError);
  EXPECT_THROW(throw net::InvalidArgument("x"), net::PermanentError);
  EXPECT_THROW(throw net::InvalidArgument("x"), net::Error);
  try {
    throw net::TimeoutError("query lost");
  } catch (const net::PermanentError&) {
    FAIL() << "a timeout must not be permanent";
  } catch (const net::TransientError& e) {
    EXPECT_STREQ(e.what(), "timeout: query lost");
  }
}

}  // namespace
}  // namespace drongo::dns
