// Regression (PR 7 satellite): outage windows crossed with TC→TCP fallback.
// A truncated UDP answer forces the stub onto TCP; when the TCP path is
// inside an injected outage window the attempt must surface as a typed
// transient error (UnreachableError) and be retried/budgeted like any other
// transient — never hang, never escape as an untyped failure.
#include <gtest/gtest.h>

#include <memory>

#include "dns/faults.hpp"
#include "dns/inmemory.hpp"
#include "dns/stub_resolver.hpp"
#include "net/error.hpp"

namespace drongo::dns {
namespace {

/// Answers every A query with one fixed address.
class FixedServer : public DnsServer {
 public:
  Message handle(const Message& query, net::Ipv4Addr /*source*/) override {
    Message response = Message::make_response(query, Rcode::kNoError, 24);
    response.answers.push_back(
        ResourceRecord::a(query.questions[0].name, net::Ipv4Addr(21, 0, 0, 1), 30));
    return response;
  }
};

class OutageFallbackFixture : public ::testing::Test {
 protected:
  void SetUp() override { network.register_server(server_addr, &server); }

  /// UDP always truncates; the server's TCP listener is dark for simulated
  /// hours [1, 4). Every resolution is forced through the fallback, so the
  /// outage window decides its fate.
  StubResolver make_resolver() {
    FaultProfile udp_profile;
    udp_profile.truncate_prob = 1.0;
    udp_ = std::make_unique<FaultyTransport>(&network, 11, udp_profile,
                                             FaultyTransport::Channel::kUdp);
    FaultProfile tcp_profile;
    tcp_profile.outages.push_back({server_addr, 1.0, 4.0});
    tcp_ = std::make_unique<FaultyTransport>(&network, 12, tcp_profile,
                                             FaultyTransport::Channel::kTcp);
    ResolverConfig config;
    config.jitter_fraction = 0.0;
    StubResolver resolver(udp_.get(), client, server_addr, /*seed=*/1, config);
    resolver.set_fallback_transport(tcp_.get());
    return resolver;
  }

  InMemoryDnsNetwork network;
  FixedServer server;
  std::unique_ptr<FaultyTransport> udp_;
  std::unique_ptr<FaultyTransport> tcp_;
  const net::Ipv4Addr server_addr{net::Ipv4Addr(9, 9, 9, 9)};
  const net::Ipv4Addr client{net::Ipv4Addr(20, 1, 36, 10)};
};

TEST_F(OutageFallbackFixture, TruncationBeforeTheWindowFallsBackAndSucceeds) {
  StubResolver resolver = make_resolver();
  const ScopedFaultTime clock(0.5);
  const ResolutionResult result = resolver.resolve("img.cdn.sim");
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.used_tcp);
  EXPECT_EQ(resolver.stats().tcp_fallbacks, 1u);
  EXPECT_EQ(udp_->truncations(), 1u);
  EXPECT_EQ(tcp_->outage_hits(), 0u);
}

TEST_F(OutageFallbackFixture, TruncationInsideTheWindowIsATypedTransientFailure) {
  StubResolver resolver = make_resolver();
  const ScopedFaultTime clock(2.0);
  EXPECT_THROW((void)resolver.resolve("img.cdn.sim"), net::UnreachableError);
  // Every attempt ran the full TC→TCP→outage gauntlet and was counted as a
  // transient, so the retry budget — not a hang or an untyped error — ended
  // the query.
  EXPECT_EQ(resolver.stats().tcp_fallbacks, 3u);
  EXPECT_EQ(resolver.stats().unreachable, 3u);
  EXPECT_EQ(resolver.stats().failed_queries, 1u);
  EXPECT_EQ(udp_->truncations(), 3u);
  EXPECT_EQ(tcp_->outage_hits(), 3u);
}

TEST_F(OutageFallbackFixture, AfterTheWindowServiceRecovers) {
  StubResolver resolver = make_resolver();
  const ScopedFaultTime clock(4.0);  // end_hours is exclusive
  const ResolutionResult result = resolver.resolve("img.cdn.sim");
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.used_tcp);
  EXPECT_EQ(tcp_->outage_hits(), 0u);
}

TEST_F(OutageFallbackFixture, NoTrialClockMeansNoOutage) {
  // Outside any trial (no ScopedFaultTime) the clock reads NaN and outage
  // windows never match — setup traffic is exempt by design.
  StubResolver resolver = make_resolver();
  const ResolutionResult result = resolver.resolve("img.cdn.sim");
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(tcp_->outage_hits(), 0u);
}

}  // namespace
}  // namespace drongo::dns
