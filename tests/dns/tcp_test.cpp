// DNS over TCP, truncation, and the UDP->TCP fallback path.
#include <gtest/gtest.h>

#include "dns/tcp.hpp"
#include "dns/udp.hpp"
#include "net/error.hpp"

namespace drongo::dns {
namespace {

/// Answers A queries normally and "big" queries with a response far larger
/// than any UDP advertisement.
class BigAnswerServer : public DnsServer {
 public:
  Message handle(const Message& query, net::Ipv4Addr /*source*/) override {
    Message response = Message::make_response(query, Rcode::kNoError, 24);
    const auto& name = query.questions[0].name;
    response.answers.push_back(ResourceRecord::a(name, net::Ipv4Addr(21, 1, 1, 1), 30));
    if (name.labels().front() == "big") {
      for (int i = 0; i < 40; ++i) {
        response.answers.push_back(
            ResourceRecord::txt(name, {std::string(120, static_cast<char>('a' + i % 26))}));
      }
    }
    return response;
  }
};

TEST(TruncationTest, MaxPayloadRules) {
  Message no_edns;
  EXPECT_EQ(max_udp_payload(no_edns), 512u);
  Message with_edns;
  with_edns.edns = Edns{};
  with_edns.edns->udp_payload_size = 4096;
  EXPECT_EQ(max_udp_payload(with_edns), 4096u);
  // Sub-512 advertisements are clamped up per RFC 6891.
  with_edns.edns->udp_payload_size = 100;
  EXPECT_EQ(max_udp_payload(with_edns), 512u);
}

TEST(TruncationTest, SmallMessagesUntouched) {
  auto query = Message::make_query(1, DnsName::must_parse("a.b"));
  auto response = Message::make_response(query, Rcode::kNoError);
  response.answers.push_back(
      ResourceRecord::a(DnsName::must_parse("a.b"), net::Ipv4Addr(1, 1, 1, 1)));
  EXPECT_FALSE(truncate_to_fit(response, 512));
  EXPECT_FALSE(response.header.tc);
  EXPECT_EQ(response.answers.size(), 1u);
}

TEST(TruncationTest, OversizeMessagesTruncatedWithTc) {
  auto query = Message::make_query(1, DnsName::must_parse("a.b"));
  auto response = Message::make_response(query, Rcode::kNoError);
  for (int i = 0; i < 40; ++i) {
    response.answers.push_back(
        ResourceRecord::txt(DnsName::must_parse("a.b"), {std::string(100, 'x')}));
  }
  EXPECT_TRUE(truncate_to_fit(response, 512));
  EXPECT_TRUE(response.header.tc);
  EXPECT_TRUE(response.answers.empty());
  EXPECT_LE(response.encode().size(), 512u);
}

TEST(TcpDnsTest, QueryOverTcp) {
  BigAnswerServer handler;
  TcpDnsServer server(&handler, 0);
  ASSERT_NE(server.port(), 0);

  TcpDnsClient client(2000);
  const net::Ipv4Addr virtual_server(9, 9, 9, 9);
  client.register_endpoint(virtual_server, server.port());

  const auto query = Message::make_query(0x42, DnsName::must_parse("img.cdn.sim"));
  const auto reply = Message::decode(
      client.exchange(net::Ipv4Addr(10, 0, 0, 1), virtual_server, query.encode()));
  EXPECT_EQ(reply.header.id, 0x42);
  ASSERT_EQ(reply.answer_addresses().size(), 1u);
  EXPECT_GE(server.served(), 1u);
}

TEST(TcpDnsTest, LargeAnswerIntactOverTcp) {
  BigAnswerServer handler;
  TcpDnsServer server(&handler, 0);
  TcpDnsClient client(2000);
  const net::Ipv4Addr virtual_server(9, 9, 9, 9);
  client.register_endpoint(virtual_server, server.port());

  const auto query = Message::make_query(7, DnsName::must_parse("big.cdn.sim"));
  const auto reply = Message::decode(
      client.exchange(net::Ipv4Addr(10, 0, 0, 1), virtual_server, query.encode()));
  EXPECT_FALSE(reply.header.tc);
  EXPECT_EQ(reply.answers.size(), 41u);  // A + 40 TXT
  EXPECT_GT(reply.encode().size(), 4096u);
}

TEST(TcpDnsTest, UnknownEndpointThrows) {
  TcpDnsClient client(100);
  const auto query = Message::make_query(1, DnsName::must_parse("x.y"));
  EXPECT_THROW(client.exchange(net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2),
                               query.encode()),
               net::Error);
}

TEST(TcpDnsTest, UdpTruncatesOversizeAnswers) {
  BigAnswerServer handler;
  UdpDnsServer udp_server(&handler, 0);
  UdpDnsClient udp_client(2000);
  const net::Ipv4Addr virtual_server(9, 9, 9, 9);
  udp_client.register_endpoint(virtual_server, udp_server.port());

  // EDNS advertisement of 1232 bytes: the ~5 kB answer cannot fit.
  auto query = Message::make_query(9, DnsName::must_parse("big.cdn.sim"),
                                   net::Prefix::must_parse("10.0.0.0/24"));
  const auto reply = Message::decode(
      udp_client.exchange(net::Ipv4Addr(10, 0, 0, 1), virtual_server, query.encode()));
  EXPECT_TRUE(reply.header.tc);
  EXPECT_TRUE(reply.answers.empty());
}

TEST(TcpDnsTest, FallbackTransportRetriesOverTcp) {
  BigAnswerServer handler;
  UdpDnsServer udp_server(&handler, 0);
  TcpDnsServer tcp_server(&handler, 0);
  UdpDnsClient udp_client(2000);
  TcpDnsClient tcp_client(2000);
  const net::Ipv4Addr virtual_server(9, 9, 9, 9);
  udp_client.register_endpoint(virtual_server, udp_server.port());
  tcp_client.register_endpoint(virtual_server, tcp_server.port());

  TruncationFallbackTransport transport(&udp_client, &tcp_client);

  // Small answer: stays on UDP.
  auto small = Message::make_query(1, DnsName::must_parse("img.cdn.sim"),
                                   net::Prefix::must_parse("10.0.0.0/24"));
  auto small_reply = Message::decode(
      transport.exchange(net::Ipv4Addr(10, 0, 0, 1), virtual_server, small.encode()));
  EXPECT_FALSE(small_reply.header.tc);
  EXPECT_EQ(transport.fallbacks(), 0u);

  // Big answer: transparently completed over TCP.
  auto big = Message::make_query(2, DnsName::must_parse("big.cdn.sim"),
                                 net::Prefix::must_parse("10.0.0.0/24"));
  auto big_reply = Message::decode(
      transport.exchange(net::Ipv4Addr(10, 0, 0, 1), virtual_server, big.encode()));
  EXPECT_FALSE(big_reply.header.tc);
  EXPECT_EQ(big_reply.answers.size(), 41u);
  EXPECT_EQ(transport.fallbacks(), 1u);
}

TEST(TcpDnsTest, GarbageConnectionDoesNotKillServer) {
  BigAnswerServer handler;
  TcpDnsServer server(&handler, 0);
  // Open a raw connection, send garbage framing, close.
  TcpDnsClient garbage(200);
  const net::Ipv4Addr virtual_server(9, 9, 9, 9);
  garbage.register_endpoint(virtual_server, server.port());
  const std::uint8_t junk[] = {0xFF, 0xFE, 0xFD};
  try {
    garbage.exchange(net::Ipv4Addr(1, 1, 1, 1), virtual_server, junk);
  } catch (const net::Error&) {
  }
  // Server still answers a valid query afterwards.
  TcpDnsClient client(2000);
  client.register_endpoint(virtual_server, server.port());
  const auto query = Message::make_query(3, DnsName::must_parse("img.cdn.sim"));
  const auto reply = Message::decode(
      client.exchange(net::Ipv4Addr(10, 0, 0, 1), virtual_server, query.encode()));
  EXPECT_EQ(reply.header.id, 3);
}

}  // namespace
}  // namespace drongo::dns
