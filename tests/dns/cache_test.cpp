// DnsCache scope-matching and lifecycle semantics.
//
// Two of these are regression tests for real bugs the serving-path PR
// fixed: (1) lookup returned the FIRST map-order entry whose scope
// contained the client, so a scope-zero answer shadowed a /24-tailored one
// (RFC 7871 §7.3.1 wants the most specific match); (2) lookup skipped
// expired entries but never erased them, so size() and eviction pressure
// counted dead entries forever.
#include "dns/cache.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"

namespace drongo::dns {
namespace {

const DnsName kName = DnsName::must_parse("img.cdn.sim");

net::Prefix P(const std::string& text) { return net::Prefix::must_parse(text); }

TEST(DnsCacheScopeTest, LongestMatchingScopeWinsOverScopeZero) {
  DnsCache cache;
  // A scope-zero answer (sorts first in the map) and a /24-tailored answer
  // coexist for the same qname. A client inside the /24 must get the
  // tailored entry, never the scope-zero one.
  cache.insert(kName, P("0.0.0.0/0"), {net::Ipv4Addr(9, 9, 9, 9)}, 60, 0);
  cache.insert(kName, P("10.1.2.0/24"), {net::Ipv4Addr(7, 7, 7, 7)}, 60, 0);

  const auto tailored = cache.lookup(kName, P("10.1.2.0/24"), 10);
  ASSERT_TRUE(tailored.has_value());
  EXPECT_EQ(tailored->scope, P("10.1.2.0/24"));
  EXPECT_EQ(tailored->addresses.front(), net::Ipv4Addr(7, 7, 7, 7));

  // A client outside the tailored /24 still gets the scope-zero answer.
  const auto generic = cache.lookup(kName, P("10.9.9.0/24"), 10);
  ASSERT_TRUE(generic.has_value());
  EXPECT_EQ(generic->addresses.front(), net::Ipv4Addr(9, 9, 9, 9));
}

TEST(DnsCacheScopeTest, LongestMatchIndependentOfInsertionOrder) {
  DnsCache cache;
  cache.insert(kName, P("10.1.2.0/24"), {net::Ipv4Addr(7, 7, 7, 7)}, 60, 0);
  cache.insert(kName, P("0.0.0.0/0"), {net::Ipv4Addr(9, 9, 9, 9)}, 60, 0);
  const auto hit = cache.lookup(kName, P("10.1.2.0/24"), 10);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->addresses.front(), net::Ipv4Addr(7, 7, 7, 7));
}

TEST(DnsCacheScopeTest, NestedScopesResolveToMostSpecific) {
  DnsCache cache;
  cache.insert(kName, P("10.0.0.0/8"), {net::Ipv4Addr(1, 0, 0, 8)}, 60, 0);
  cache.insert(kName, P("10.1.0.0/16"), {net::Ipv4Addr(1, 0, 0, 16)}, 60, 0);
  cache.insert(kName, P("10.1.2.0/24"), {net::Ipv4Addr(1, 0, 0, 24)}, 60, 0);

  const auto in24 = cache.lookup(kName, P("10.1.2.0/24"), 1);
  ASSERT_TRUE(in24.has_value());
  EXPECT_EQ(in24->addresses.front(), net::Ipv4Addr(1, 0, 0, 24));

  const auto in16 = cache.lookup(kName, P("10.1.77.0/24"), 1);
  ASSERT_TRUE(in16.has_value());
  EXPECT_EQ(in16->addresses.front(), net::Ipv4Addr(1, 0, 0, 16));

  const auto in8 = cache.lookup(kName, P("10.200.0.0/24"), 1);
  ASSERT_TRUE(in8.has_value());
  EXPECT_EQ(in8->addresses.front(), net::Ipv4Addr(1, 0, 0, 8));

  EXPECT_FALSE(cache.lookup(kName, P("11.0.0.0/24"), 1).has_value());
}

TEST(DnsCacheScopeTest, ScopesServeOnlyTheirOwnFamily) {
  DnsCache cache;
  // A v6 scope — even ::/0, which "contains" every v6 client — must never
  // answer a v4 subnet, and vice versa (RFC 7871 scopes are per-family).
  cache.insert(kName, net::IpPrefix::must_parse("::/0"), {net::Ipv4Addr(6, 6, 6, 6)},
               60, 0);
  EXPECT_FALSE(cache.lookup(kName, P("10.1.2.0/24"), 1).has_value());
  cache.insert(kName, P("0.0.0.0/0"), {net::Ipv4Addr(4, 4, 4, 4)}, 60, 0);
  const auto v4 = cache.lookup(kName, P("10.1.2.0/24"), 1);
  ASSERT_TRUE(v4.has_value());
  EXPECT_EQ(v4->addresses.front(), net::Ipv4Addr(4, 4, 4, 4));
  const auto v6 = cache.lookup(kName, net::IpPrefix::must_parse("2001:db8::/56"), 1);
  ASSERT_TRUE(v6.has_value());
  EXPECT_EQ(v6->addresses.front(), net::Ipv4Addr(6, 6, 6, 6));
}

TEST(DnsCacheScopeTest, V6ScopesNestLikeV4Ones) {
  DnsCache cache;
  const auto wide = net::IpPrefix::must_parse("2001:db8::/32");
  const auto site = net::IpPrefix::must_parse("2001:db8:1401:200::/56");
  cache.insert(kName, wide, {net::Ipv4Addr(1, 0, 0, 32)}, 60, 0);
  cache.insert(kName, site, {net::Ipv4Addr(1, 0, 0, 56)}, 60, 0);

  const auto tailored =
      cache.lookup(kName, net::IpPrefix::must_parse("2001:db8:1401:200::/64"), 1);
  ASSERT_TRUE(tailored.has_value());
  EXPECT_EQ(tailored->addresses.front(), net::Ipv4Addr(1, 0, 0, 56));

  const auto generic =
      cache.lookup(kName, net::IpPrefix::must_parse("2001:db8:9999::/56"), 1);
  ASSERT_TRUE(generic.has_value());
  EXPECT_EQ(generic->addresses.front(), net::Ipv4Addr(1, 0, 0, 32));
}

TEST(DnsCacheScopeTest, V6ScopeLongerThanClientSourceNeverServes) {
  DnsCache cache;
  // Same §7.3.1 rule as v4 at v6 widths: an answer tailored to a /56 may
  // not be reused for a client announcing only a /48.
  cache.insert(kName, net::IpPrefix::must_parse("2001:db8:1401:200::/56"),
               {net::Ipv4Addr(1, 0, 0, 56)}, 60, 0);
  EXPECT_FALSE(
      cache.lookup(kName, net::IpPrefix::must_parse("2001:db8:1401::/48"), 1)
          .has_value());
  EXPECT_TRUE(
      cache.lookup(kName, net::IpPrefix::must_parse("2001:db8:1401:200::/64"), 1)
          .has_value());
}

TEST(DnsCacheStatsTest, ForeignFamilyDropsAreCounted) {
  obs::Registry registry;
  DnsCache cache;
  cache.set_registry(&registry);
  cache.note_foreign_family_drop();
  cache.note_foreign_family_drop();
  EXPECT_EQ(cache.stats().foreign_family_drops, 2u);
  EXPECT_EQ(registry.snapshot().counters.at("dns.cache.foreign_family_drops"), 2u);
}

TEST(DnsCacheLifecycleTest, ExpiryBoundaryMisses) {
  DnsCache cache;
  cache.insert(kName, P("0.0.0.0/0"), {net::Ipv4Addr(1, 1, 1, 1)}, 30, /*now_ms=*/0);
  EXPECT_TRUE(cache.lookup(kName, P("9.9.9.0/24"), 29'999).has_value());
  // expiry_ms == now_ms is already dead, not "one last hit".
  EXPECT_FALSE(cache.lookup(kName, P("9.9.9.0/24"), 30'000).has_value());
}

TEST(DnsCacheLifecycleTest, TtlZeroIsNeverServed) {
  DnsCache cache;
  cache.insert(kName, P("0.0.0.0/0"), {net::Ipv4Addr(1, 1, 1, 1)}, 0, /*now_ms=*/5000);
  EXPECT_FALSE(cache.lookup(kName, P("9.9.9.0/24"), 5000).has_value());
  EXPECT_EQ(cache.size(), 0u);  // erased by the scan, not lingering
}

TEST(DnsCacheLifecycleTest, LookupErasesExpiredEntriesInPassing) {
  DnsCache cache;
  cache.insert(kName, P("10.1.2.0/24"), {net::Ipv4Addr(1, 1, 1, 1)}, 10, 0);
  cache.insert(kName, P("0.0.0.0/0"), {net::Ipv4Addr(2, 2, 2, 2)}, 1000, 0);
  ASSERT_EQ(cache.size(), 2u);
  // Past the /24 entry's TTL, any lookup scanning the name must erase the
  // dead entry — size() counts live entries only, without an explicit
  // purge() call.
  const auto hit = cache.lookup(kName, P("10.1.2.0/24"), 20'000);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->addresses.front(), net::Ipv4Addr(2, 2, 2, 2));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().expired, 1u);
}

TEST(DnsCacheLifecycleTest, EvictionIsLeastRecentlyUsed) {
  DnsCache cache(/*max_entries=*/3);
  const auto n1 = DnsName::must_parse("n1.x");
  const auto n2 = DnsName::must_parse("n2.x");
  const auto n3 = DnsName::must_parse("n3.x");
  const auto n4 = DnsName::must_parse("n4.x");
  cache.insert(n1, P("0.0.0.0/0"), {net::Ipv4Addr(1, 1, 1, 1)}, 1000, 0);
  cache.insert(n2, P("0.0.0.0/0"), {net::Ipv4Addr(2, 2, 2, 2)}, 1000, 0);
  cache.insert(n3, P("0.0.0.0/0"), {net::Ipv4Addr(3, 3, 3, 3)}, 1000, 0);
  // Touch n1: it becomes most-recent, so the LRU victim is n2.
  ASSERT_TRUE(cache.lookup(n1, P("9.9.9.0/24"), 1).has_value());
  cache.insert(n4, P("0.0.0.0/0"), {net::Ipv4Addr(4, 4, 4, 4)}, 1000, 1);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.lookup(n1, P("9.9.9.0/24"), 2).has_value());
  EXPECT_FALSE(cache.lookup(n2, P("9.9.9.0/24"), 2).has_value());
  EXPECT_TRUE(cache.lookup(n3, P("9.9.9.0/24"), 2).has_value());
  EXPECT_TRUE(cache.lookup(n4, P("9.9.9.0/24"), 2).has_value());
}

TEST(DnsCacheLifecycleTest, EvictionPrefersDroppingExpiredFirst) {
  DnsCache cache(/*max_entries=*/2);
  cache.insert(DnsName::must_parse("a.x"), P("0.0.0.0/0"), {net::Ipv4Addr(1, 1, 1, 1)},
               1, 0);  // expires at 1000
  cache.insert(DnsName::must_parse("b.x"), P("0.0.0.0/0"), {net::Ipv4Addr(2, 2, 2, 2)},
               1000, 0);
  // At insert time the expired entry is purged; the live one survives.
  cache.insert(DnsName::must_parse("c.x"), P("0.0.0.0/0"), {net::Ipv4Addr(3, 3, 3, 3)},
               1000, 2000);
  EXPECT_TRUE(cache.lookup(DnsName::must_parse("b.x"), P("9.9.9.0/24"), 2001).has_value());
  EXPECT_TRUE(cache.lookup(DnsName::must_parse("c.x"), P("9.9.9.0/24"), 2001).has_value());
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(DnsCacheLifecycleTest, ReinsertRefreshesInsteadOfDuplicating) {
  DnsCache cache;
  cache.insert(kName, P("10.1.2.0/24"), {net::Ipv4Addr(1, 1, 1, 1)}, 30, 0);
  cache.insert(kName, P("10.1.2.0/24"), {net::Ipv4Addr(5, 5, 5, 5)}, 30, 10'000);
  EXPECT_EQ(cache.size(), 1u);
  const auto hit = cache.lookup(kName, P("10.1.2.0/24"), 35'000);
  ASSERT_TRUE(hit.has_value());  // refreshed TTL outlives the first insert's
  EXPECT_EQ(hit->addresses.front(), net::Ipv4Addr(5, 5, 5, 5));
}

TEST(DnsCacheNegativeTest, NegativeEntriesRoundTrip) {
  DnsCache cache;
  cache.insert_negative(kName, P("0.0.0.0/0"), Rcode::kNxDomain, 30, 0);
  const auto hit = cache.lookup(kName, P("9.9.9.0/24"), 10);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->negative);
  EXPECT_EQ(hit->rcode, Rcode::kNxDomain);
  EXPECT_TRUE(hit->addresses.empty());
  EXPECT_EQ(cache.stats().negative_hits, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
  // Negative entries expire like positive ones.
  EXPECT_FALSE(cache.lookup(kName, P("9.9.9.0/24"), 30'000).has_value());
}

TEST(DnsCacheNegativeTest, TailoredPositiveBeatsScopeZeroNegative) {
  DnsCache cache;
  cache.insert_negative(kName, P("0.0.0.0/0"), Rcode::kNxDomain, 60, 0);
  cache.insert(kName, P("10.1.2.0/24"), {net::Ipv4Addr(7, 7, 7, 7)}, 60, 0);
  const auto inside = cache.lookup(kName, P("10.1.2.0/24"), 1);
  ASSERT_TRUE(inside.has_value());
  EXPECT_FALSE(inside->negative);
  const auto outside = cache.lookup(kName, P("10.9.9.0/24"), 1);
  ASSERT_TRUE(outside.has_value());
  EXPECT_TRUE(outside->negative);
}

TEST(DnsCacheCanonicalTest, MixedCaseQnamesShareOneEntry) {
  DnsCache cache;
  // DNS names are case-insensitive (RFC 1035): an answer cached under a
  // mixed-case spelling must serve (and refresh) the lowercase spelling.
  cache.insert(DnsName::must_parse("Img.CDN.Sim"), P("0.0.0.0/0"),
               {net::Ipv4Addr(1, 1, 1, 1)}, 60, 0);
  EXPECT_EQ(cache.size(), 1u);
  const auto lower = cache.lookup(DnsName::must_parse("img.cdn.sim"),
                                  P("9.9.9.0/24"), 1);
  ASSERT_TRUE(lower.has_value());
  EXPECT_EQ(lower->addresses.front(), net::Ipv4Addr(1, 1, 1, 1));
  const auto upper = cache.lookup(DnsName::must_parse("IMG.CDN.SIM"),
                                  P("9.9.9.0/24"), 1);
  ASSERT_TRUE(upper.has_value());
  EXPECT_EQ(cache.stats().misses, 0u);
  // Re-inserting under yet another casing refreshes instead of duplicating.
  cache.insert(DnsName::must_parse("iMg.cDn.siM"), P("0.0.0.0/0"),
               {net::Ipv4Addr(2, 2, 2, 2)}, 60, 10);
  EXPECT_EQ(cache.size(), 1u);
  const auto refreshed = cache.lookup(kName, P("9.9.9.0/24"), 11);
  ASSERT_TRUE(refreshed.has_value());
  EXPECT_EQ(refreshed->addresses.front(), net::Ipv4Addr(2, 2, 2, 2));
}

TEST(DnsCacheLpmTest, LpmCountersTrackTheRadixIndex) {
  obs::Registry registry;
  DnsCache cache;
  cache.set_registry(&registry);
  cache.insert(kName, P("10.0.0.0/8"), {net::Ipv4Addr(1, 1, 1, 1)}, 60, 0);
  cache.insert(kName, P("10.1.2.0/24"), {net::Ipv4Addr(2, 2, 2, 2)}, 60, 0);
  EXPECT_EQ(cache.stats().lpm.inserts, 2u);
  ASSERT_TRUE(cache.lookup(kName, P("10.1.2.0/24"), 1).has_value());
  EXPECT_EQ(cache.stats().lpm.lookups, 1u);
  // The descent touched at least the two chain nodes, and node visits are
  // bounded by the trie depth — not the entry count.
  EXPECT_GE(cache.stats().lpm.node_visits, 2u);
  EXPECT_LE(cache.stats().lpm.node_visits, 33u);
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counters.at("dns.lpm.inserts"), 2u);
  EXPECT_EQ(snapshot.counters.at("dns.lpm.lookups"), 1u);
  EXPECT_EQ(snapshot.counters.at("dns.lpm.node_visits"),
            cache.stats().lpm.node_visits);
}

TEST(DnsCacheStatsTest, CountersMirrorIntoRegistry) {
  obs::Registry registry;
  DnsCache cache;
  cache.set_registry(&registry);
  cache.insert(kName, P("0.0.0.0/0"), {net::Ipv4Addr(1, 1, 1, 1)}, 30, 0);
  EXPECT_TRUE(cache.lookup(kName, P("9.9.9.0/24"), 1).has_value());
  EXPECT_FALSE(cache.lookup(DnsName::must_parse("other.x"), P("9.9.9.0/24"), 1)
                   .has_value());
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counters.at("dns.cache.inserts"), 1u);
  EXPECT_EQ(snapshot.counters.at("dns.cache.hits"), 1u);
  EXPECT_EQ(snapshot.counters.at("dns.cache.misses"), 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

}  // namespace
}  // namespace drongo::dns
