#include "dns/rr.hpp"

#include <gtest/gtest.h>

#include "net/error.hpp"

namespace drongo::dns {
namespace {

ResourceRecord round_trip(const ResourceRecord& rr) {
  net::ByteWriter w;
  NameOffsets offsets;
  rr.encode(w, &offsets);
  const auto bytes = w.take();
  net::ByteReader r(bytes);
  return ResourceRecord::decode(r);
}

TEST(ResourceRecordTest, ARecordRoundTrip) {
  const auto rr = ResourceRecord::a(DnsName::must_parse("img.cdn.sim"),
                                    net::Ipv4Addr(21, 8, 84, 10), 30);
  const auto back = round_trip(rr);
  EXPECT_EQ(back, rr);
  EXPECT_EQ(std::get<ARdata>(back.rdata).address.to_string(), "21.8.84.10");
}

TEST(ResourceRecordTest, CnameRoundTrip) {
  const auto rr = ResourceRecord::cname(DnsName::must_parse("www.site.example"),
                                        DnsName::must_parse("site.cdn.example"));
  EXPECT_EQ(round_trip(rr), rr);
}

TEST(ResourceRecordTest, NsAndPtrRoundTrip) {
  EXPECT_EQ(round_trip(ResourceRecord::ns(DnsName::must_parse("cdn.sim"),
                                          DnsName::must_parse("ns1.cdn.sim"))),
            ResourceRecord::ns(DnsName::must_parse("cdn.sim"),
                               DnsName::must_parse("ns1.cdn.sim")));
  const auto ptr = ResourceRecord::ptr(DnsName::must_parse("1.0.8.21.in-addr.arpa"),
                                       DnsName::must_parse("edge1.istanbul.cdn.net"));
  EXPECT_EQ(round_trip(ptr), ptr);
}

TEST(ResourceRecordTest, TxtRoundTripMultipleStrings) {
  const auto rr = ResourceRecord::txt(DnsName::must_parse("meta.cdn.sim"),
                                      {"first string", "", "third"});
  const auto back = round_trip(rr);
  const auto& txt = std::get<TxtRdata>(back.rdata);
  ASSERT_EQ(txt.strings.size(), 3u);
  EXPECT_EQ(txt.strings[0], "first string");
  EXPECT_EQ(txt.strings[1], "");
}

TEST(ResourceRecordTest, TxtRejectsOverlongString) {
  const auto rr =
      ResourceRecord::txt(DnsName::must_parse("x.y"), {std::string(256, 'a')});
  net::ByteWriter w;
  EXPECT_THROW(rr.encode(w, nullptr), net::InvalidArgument);
}

TEST(ResourceRecordTest, SoaRoundTrip) {
  SoaRdata soa;
  soa.mname = DnsName::must_parse("ns1.cdn.sim");
  soa.rname = DnsName::must_parse("hostmaster.cdn.sim");
  soa.serial = 2024010100;
  const auto rr = ResourceRecord::soa(DnsName::must_parse("cdn.sim"), soa);
  const auto back = round_trip(rr);
  EXPECT_EQ(std::get<SoaRdata>(back.rdata).serial, 2024010100u);
  EXPECT_EQ(back, rr);
}

TEST(ResourceRecordTest, UnknownTypeKeptRaw) {
  ResourceRecord rr;
  rr.name = DnsName::must_parse("odd.example");
  rr.type = static_cast<RrType>(99);
  rr.rdata = RawRdata{{1, 2, 3, 4, 5}};
  const auto back = round_trip(rr);
  EXPECT_EQ(std::get<RawRdata>(back.rdata).bytes.size(), 5u);
  EXPECT_EQ(back, rr);
}

TEST(ResourceRecordTest, DecodeRejectsBadALength) {
  // A record with RDLENGTH 3.
  net::ByteWriter w;
  DnsName::must_parse("x.y").encode(w);
  w.write_u16(1);   // type A
  w.write_u16(1);   // class IN
  w.write_u32(60);  // ttl
  w.write_u16(3);   // bad rdlength
  w.write_u8(1);
  w.write_u8(2);
  w.write_u8(3);
  const auto bytes = w.take();
  net::ByteReader r(bytes);
  EXPECT_THROW(ResourceRecord::decode(r), net::ParseError);
}

TEST(ResourceRecordTest, DecodeRejectsRdataOverrunningMessage) {
  net::ByteWriter w;
  DnsName::must_parse("x.y").encode(w);
  w.write_u16(16);    // TXT
  w.write_u16(1);
  w.write_u32(60);
  w.write_u16(200);  // claims 200 bytes, buffer ends
  w.write_u8(3);
  const auto bytes = w.take();
  net::ByteReader r(bytes);
  EXPECT_THROW(ResourceRecord::decode(r), net::ParseError);
}

TEST(ResourceRecordTest, ToStringIsHumanReadable) {
  const auto rr = ResourceRecord::a(DnsName::must_parse("img.cdn.sim"),
                                    net::Ipv4Addr(1, 2, 3, 4), 30);
  const std::string text = rr.to_string();
  EXPECT_NE(text.find("img.cdn.sim"), std::string::npos);
  EXPECT_NE(text.find("IN A"), std::string::npos);
  EXPECT_NE(text.find("1.2.3.4"), std::string::npos);
}

TEST(ResourceRecordTest, CompressionInsideRdata) {
  // Owner and CNAME target share a suffix; RDATA should use a pointer.
  net::ByteWriter w;
  NameOffsets offsets;
  const auto rr = ResourceRecord::cname(DnsName::must_parse("a.example.com"),
                                        DnsName::must_parse("b.example.com"));
  rr.encode(w, &offsets);
  // Without compression: owner 15 + fixed 10 + target 15 = 40.
  // With: target is "b" + pointer = 4 -> total 29.
  EXPECT_LT(w.size(), 40u);
  const auto bytes = w.take();
  net::ByteReader r(bytes);
  EXPECT_EQ(ResourceRecord::decode(r), rr);
}

}  // namespace
}  // namespace drongo::dns
