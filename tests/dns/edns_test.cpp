#include "dns/edns.hpp"

#include <gtest/gtest.h>

#include "net/error.hpp"

namespace drongo::dns {
namespace {

ClientSubnet round_trip(const ClientSubnet& ecs) {
  net::ByteWriter w;
  ecs.encode(w);
  const auto bytes = w.take();
  net::ByteReader r(bytes);
  return ClientSubnet::decode(r, bytes.size());
}

TEST(ClientSubnetTest, ForSubnetBuildsQueryOption) {
  const auto ecs = ClientSubnet::for_subnet(net::Prefix::must_parse("203.0.113.0/24"));
  EXPECT_EQ(ecs.family, 1);
  EXPECT_EQ(ecs.source_prefix_length, 24);
  EXPECT_EQ(ecs.scope_prefix_length, 0);
  EXPECT_EQ(ecs.address, net::Ipv4Addr(203, 0, 113, 0));
  EXPECT_EQ(ecs.source_prefix().to_string(), "203.0.113.0/24");
}

class EcsPrefixLengths : public ::testing::TestWithParam<int> {};

TEST_P(EcsPrefixLengths, RoundTripsAtEveryLength) {
  const int length = GetParam();
  ClientSubnet ecs;
  ecs.family = 1;
  ecs.source_prefix_length = static_cast<std::uint8_t>(length);
  ecs.address = net::Prefix(net::Ipv4Addr(198, 51, 100, 201), length).network();
  const auto back = round_trip(ecs);
  EXPECT_EQ(back, ecs);
}

INSTANTIATE_TEST_SUITE_P(Lengths, EcsPrefixLengths,
                         ::testing::Values(0, 1, 7, 8, 9, 15, 16, 17, 20, 24, 25, 31, 32));

TEST(ClientSubnetTest, EncodingTruncatesAddressBytes) {
  ClientSubnet ecs;
  ecs.source_prefix_length = 24;
  ecs.address = net::Ipv4Addr(10, 20, 30, 0);
  net::ByteWriter w;
  ecs.encode(w);
  // family(2) + source(1) + scope(1) + 3 address bytes for /24.
  EXPECT_EQ(w.size(), 7u);
  EXPECT_EQ(w.bytes()[4], 10);
  EXPECT_EQ(w.bytes()[5], 20);
  EXPECT_EQ(w.bytes()[6], 30);
}

TEST(ClientSubnetTest, ZeroLengthEncodesNoAddress) {
  ClientSubnet ecs;
  ecs.source_prefix_length = 0;
  ecs.address = net::Ipv4Addr(1, 2, 3, 4);
  net::ByteWriter w;
  ecs.encode(w);
  EXPECT_EQ(w.size(), 4u);
}

TEST(ClientSubnetTest, DecodeMasksStrayTrailingBits) {
  // /20 with nonzero bits past bit 20 in the third byte: liberal decode
  // masks them rather than rejecting.
  const std::uint8_t wire[] = {0x00, 0x01, 20, 0, 0xC6, 0x33, 0xFF};
  net::ByteReader r(wire);
  const auto ecs = ClientSubnet::decode(r, sizeof(wire));
  EXPECT_EQ(ecs.source_prefix_length, 20);
  EXPECT_EQ(ecs.address, net::Ipv4Addr(0xC6, 0x33, 0xF0, 0));
}

TEST(ClientSubnetTest, DecodeRejectsShortOption) {
  const std::uint8_t wire[] = {0x00, 0x01, 24};
  net::ByteReader r(wire);
  EXPECT_THROW(ClientSubnet::decode(r, 3), net::ParseError);
}

TEST(ClientSubnetTest, DecodeRejectsWrongAddressByteCount) {
  // /24 requires exactly 3 address bytes; 4 supplied.
  const std::uint8_t wire[] = {0x00, 0x01, 24, 0, 1, 2, 3, 4};
  net::ByteReader r(wire);
  EXPECT_THROW(ClientSubnet::decode(r, sizeof(wire)), net::ParseError);
}

TEST(ClientSubnetTest, DecodeRejectsOverlongPrefix) {
  const std::uint8_t wire[] = {0x00, 0x01, 33, 0, 1, 2, 3, 4, 5};
  net::ByteReader r(wire);
  EXPECT_THROW(ClientSubnet::decode(r, sizeof(wire)), net::ParseError);
}

TEST(ClientSubnetTest, Family2DecodesIntoAddress) {
  // Regression: family 2 used to decode with a zeroed address, making
  // source_prefix() throw InvalidArgument on attacker-suppliable bytes.
  const std::uint8_t wire[] = {0x00, 0x02, 16, 0, 0x20, 0x01};
  net::ByteReader r(wire);
  const auto ecs = ClientSubnet::decode(r, sizeof(wire));
  EXPECT_EQ(ecs.family, 2);
  EXPECT_EQ(ecs.source_prefix_length, 16);
  EXPECT_TRUE(ecs.is_representable());
  EXPECT_FALSE(ecs.address.is_unspecified());
  EXPECT_EQ(ecs.source_prefix().to_string(), "2001::/16");
  EXPECT_EQ(r.remaining(), 0u);
}

class EcsV6PrefixLengths : public ::testing::TestWithParam<int> {};

TEST_P(EcsV6PrefixLengths, Family2RoundTripsAtEveryLength) {
  const int length = GetParam();
  const net::IpAddr addr = net::IpAddr::must_parse("2001:db8:cafe:f00d:8000::1");
  ClientSubnet ecs = ClientSubnet::for_subnet(net::IpPrefix(addr, length));
  EXPECT_EQ(ecs.family, 2);
  const auto back = round_trip(ecs);
  EXPECT_EQ(back, ecs);
  EXPECT_EQ(back.source_prefix(), net::IpPrefix(addr, length));
}

INSTANTIATE_TEST_SUITE_P(Lengths, EcsV6PrefixLengths,
                         ::testing::Values(0, 1, 7, 8, 9, 32, 48, 55, 56, 57, 63, 64,
                                           65, 96, 120, 127, 128));

TEST(ClientSubnetTest, V4MappedV6RoundTrips) {
  const auto subnet = net::IpPrefix::must_parse("::ffff:192.0.2.0/120");
  const auto ecs = ClientSubnet::for_subnet(subnet);
  EXPECT_EQ(ecs.family, 2);
  const auto back = round_trip(ecs);
  EXPECT_EQ(back.source_prefix(), subnet);
}

TEST(ClientSubnetTest, Family2DecodeMasksStrayTrailingBits) {
  // /52 needs 7 address bytes; bits past bit 52 are masked, not rejected.
  const std::uint8_t wire[] = {0x00, 0x02, 52,   0,    0x20, 0x01,
                               0x0d, 0xb8, 0xca, 0xff, 0xff};
  net::ByteReader r(wire);
  const auto ecs = ClientSubnet::decode(r, sizeof(wire));
  EXPECT_EQ(ecs.source_prefix().to_string(), "2001:db8:caff:f000::/52");
}

TEST(ClientSubnetTest, Family2DecodeRejectsMalformed) {
  // Source prefix longer than 128 bits.
  const std::uint8_t overlong_source[] = {0x00, 0x02, 129, 0};
  net::ByteReader r1(overlong_source);
  EXPECT_THROW(ClientSubnet::decode(r1, sizeof(overlong_source)), net::ParseError);
  // Scope longer than 128 bits.
  const std::uint8_t overlong_scope[] = {0x00, 0x02, 16, 129, 0x20, 0x01};
  net::ByteReader r2(overlong_scope);
  EXPECT_THROW(ClientSubnet::decode(r2, sizeof(overlong_scope)), net::ParseError);
  // /56 requires exactly 7 address bytes; 8 supplied.
  const std::uint8_t overlong_addr[] = {0x00, 0x02, 56, 0, 1, 2, 3, 4, 5, 6, 7, 8};
  net::ByteReader r3(overlong_addr);
  EXPECT_THROW(ClientSubnet::decode(r3, sizeof(overlong_addr)), net::ParseError);
}

TEST(ClientSubnetTest, Family1RejectsV6SizedPrefix) {
  // A family-1 option claiming 56 source bits is malformed wire, not a
  // programming error: ParseError, never InvalidArgument.
  const std::uint8_t wire[] = {0x00, 0x01, 56, 0, 1, 2, 3, 4, 5, 6, 7};
  net::ByteReader r(wire);
  try {
    ClientSubnet::decode(r, sizeof(wire));
    FAIL() << "overlong family-1 prefix must not decode";
  } catch (const net::ParseError&) {
  } catch (const net::InvalidArgument& e) {
    FAIL() << "wire data surfaced InvalidArgument: " << e.what();
  }
}

TEST(ClientSubnetTest, UnknownFamilyRoundTripsOpaquely) {
  // Family 3 is foreign: raw bytes are preserved so encode() reproduces the
  // wire, but the option is flagged unrepresentable and every interpreting
  // accessor throws ParseError (wire data — never InvalidArgument).
  const std::uint8_t wire[] = {0x00, 0x03, 16, 0, 0x20, 0x01};
  net::ByteReader r(wire);
  const auto ecs = ClientSubnet::decode(r, sizeof(wire));
  EXPECT_EQ(ecs.family, 3);
  EXPECT_EQ(ecs.source_prefix_length, 16);
  EXPECT_FALSE(ecs.is_representable());
  EXPECT_TRUE(ecs.address.is_unspecified());
  EXPECT_EQ(ecs.opaque_address, (std::vector<std::uint8_t>{0x20, 0x01}));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_THROW((void)ecs.source_prefix(), net::ParseError);
  EXPECT_THROW((void)ecs.scope_prefix(), net::ParseError);
  EXPECT_EQ(ecs.to_string(), "family3/16/scope0");

  net::ByteWriter w;
  ecs.encode(w);
  EXPECT_EQ(std::vector<std::uint8_t>(wire, wire + sizeof(wire)), w.take());
}

TEST(ClientSubnetTest, UnknownFamilyStillBoundByMinimalEncoding) {
  // ceil(source/8) binds every family, interpretable or not.
  const std::uint8_t wire[] = {0x00, 0x03, 16, 0, 0x20, 0x01, 0xFF};
  net::ByteReader r(wire);
  EXPECT_THROW(ClientSubnet::decode(r, sizeof(wire)), net::ParseError);
}

TEST(ClientSubnetTest, MalformedWireNeverSurfacesInvalidArgument) {
  // The satellite regression pin: a hostile resolver controls every byte of
  // this option, so whatever happens must stay inside the wire-error branch
  // of the failure taxonomy. Silent scope-zero v4 decodes are equally
  // forbidden — family 2 must stay family 2.
  const std::vector<std::vector<std::uint8_t>> corpus = {
      {},                                  // empty option
      {0x00},                              // truncated family
      {0x00, 0x02},                        // no prefix lengths
      {0x00, 0x02, 64},                    // missing scope byte
      {0x00, 0x01, 33, 0, 1, 2, 3, 4, 5},  // v4 source > 32
      {0x00, 0x01, 24, 40, 1, 2, 3},       // v4 scope > 32
      {0x00, 0x02, 129, 0},                // v6 source > 128
      {0x00, 0x02, 24, 0, 1, 2},           // one address byte short
      {0x00, 0x02, 24, 0, 1, 2, 3, 4},     // one address byte long
      {0x00, 0xFF, 8, 0},                  // foreign family, short address
  };
  for (const auto& wire : corpus) {
    net::ByteReader r(wire);
    try {
      const auto ecs = ClientSubnet::decode(r, wire.size());
      // A successful decode must preserve the family: the old code folded
      // family 2 into an unusable zero v4 address.
      EXPECT_EQ(ecs.family, wire.size() >= 2
                                ? (std::uint16_t{wire[0]} << 8 | wire[1])
                                : ecs.family);
      if (ecs.is_representable()) EXPECT_NO_THROW((void)ecs.source_prefix());
    } catch (const net::ParseError&) {
      // The only acceptable failure for wire-supplied bytes.
    } catch (const net::InvalidArgument& e) {
      FAIL() << "wire data surfaced InvalidArgument: " << e.what();
    }
  }
}

TEST(ClientSubnetTest, ScopePrefixReflectsResponse) {
  ClientSubnet ecs = ClientSubnet::for_subnet(net::Prefix::must_parse("20.1.36.0/24"));
  ecs.scope_prefix_length = 16;
  EXPECT_EQ(ecs.scope_prefix().to_string(), "20.1.0.0/16");
  EXPECT_EQ(round_trip(ecs).scope_prefix_length, 16);
}

}  // namespace
}  // namespace drongo::dns
