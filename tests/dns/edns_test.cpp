#include "dns/edns.hpp"

#include <gtest/gtest.h>

#include "net/error.hpp"

namespace drongo::dns {
namespace {

ClientSubnet round_trip(const ClientSubnet& ecs) {
  net::ByteWriter w;
  ecs.encode(w);
  const auto bytes = w.take();
  net::ByteReader r(bytes);
  return ClientSubnet::decode(r, bytes.size());
}

TEST(ClientSubnetTest, ForSubnetBuildsQueryOption) {
  const auto ecs = ClientSubnet::for_subnet(net::Prefix::must_parse("203.0.113.0/24"));
  EXPECT_EQ(ecs.family, 1);
  EXPECT_EQ(ecs.source_prefix_length, 24);
  EXPECT_EQ(ecs.scope_prefix_length, 0);
  EXPECT_EQ(ecs.address, net::Ipv4Addr(203, 0, 113, 0));
  EXPECT_EQ(ecs.source_prefix().to_string(), "203.0.113.0/24");
}

class EcsPrefixLengths : public ::testing::TestWithParam<int> {};

TEST_P(EcsPrefixLengths, RoundTripsAtEveryLength) {
  const int length = GetParam();
  ClientSubnet ecs;
  ecs.family = 1;
  ecs.source_prefix_length = static_cast<std::uint8_t>(length);
  ecs.address = net::Prefix(net::Ipv4Addr(198, 51, 100, 201), length).network();
  const auto back = round_trip(ecs);
  EXPECT_EQ(back, ecs);
}

INSTANTIATE_TEST_SUITE_P(Lengths, EcsPrefixLengths,
                         ::testing::Values(0, 1, 7, 8, 9, 15, 16, 17, 20, 24, 25, 31, 32));

TEST(ClientSubnetTest, EncodingTruncatesAddressBytes) {
  ClientSubnet ecs;
  ecs.source_prefix_length = 24;
  ecs.address = net::Ipv4Addr(10, 20, 30, 0);
  net::ByteWriter w;
  ecs.encode(w);
  // family(2) + source(1) + scope(1) + 3 address bytes for /24.
  EXPECT_EQ(w.size(), 7u);
  EXPECT_EQ(w.bytes()[4], 10);
  EXPECT_EQ(w.bytes()[5], 20);
  EXPECT_EQ(w.bytes()[6], 30);
}

TEST(ClientSubnetTest, ZeroLengthEncodesNoAddress) {
  ClientSubnet ecs;
  ecs.source_prefix_length = 0;
  ecs.address = net::Ipv4Addr(1, 2, 3, 4);
  net::ByteWriter w;
  ecs.encode(w);
  EXPECT_EQ(w.size(), 4u);
}

TEST(ClientSubnetTest, DecodeMasksStrayTrailingBits) {
  // /20 with nonzero bits past bit 20 in the third byte: liberal decode
  // masks them rather than rejecting.
  const std::uint8_t wire[] = {0x00, 0x01, 20, 0, 0xC6, 0x33, 0xFF};
  net::ByteReader r(wire);
  const auto ecs = ClientSubnet::decode(r, sizeof(wire));
  EXPECT_EQ(ecs.source_prefix_length, 20);
  EXPECT_EQ(ecs.address, net::Ipv4Addr(0xC6, 0x33, 0xF0, 0));
}

TEST(ClientSubnetTest, DecodeRejectsShortOption) {
  const std::uint8_t wire[] = {0x00, 0x01, 24};
  net::ByteReader r(wire);
  EXPECT_THROW(ClientSubnet::decode(r, 3), net::ParseError);
}

TEST(ClientSubnetTest, DecodeRejectsWrongAddressByteCount) {
  // /24 requires exactly 3 address bytes; 4 supplied.
  const std::uint8_t wire[] = {0x00, 0x01, 24, 0, 1, 2, 3, 4};
  net::ByteReader r(wire);
  EXPECT_THROW(ClientSubnet::decode(r, sizeof(wire)), net::ParseError);
}

TEST(ClientSubnetTest, DecodeRejectsOverlongPrefix) {
  const std::uint8_t wire[] = {0x00, 0x01, 33, 0, 1, 2, 3, 4, 5};
  net::ByteReader r(wire);
  EXPECT_THROW(ClientSubnet::decode(r, sizeof(wire)), net::ParseError);
}

TEST(ClientSubnetTest, UnknownFamilyRoundTripsOpaquely) {
  // IPv6 (family 2) option: bytes are consumed, address left unspecified.
  const std::uint8_t wire[] = {0x00, 0x02, 16, 0, 0x20, 0x01};
  net::ByteReader r(wire);
  const auto ecs = ClientSubnet::decode(r, sizeof(wire));
  EXPECT_EQ(ecs.family, 2);
  EXPECT_EQ(ecs.source_prefix_length, 16);
  EXPECT_TRUE(ecs.address.is_unspecified());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ClientSubnetTest, ScopePrefixReflectsResponse) {
  ClientSubnet ecs = ClientSubnet::for_subnet(net::Prefix::must_parse("20.1.36.0/24"));
  ecs.scope_prefix_length = 16;
  EXPECT_EQ(ecs.scope_prefix().to_string(), "20.1.0.0/16");
  EXPECT_EQ(round_trip(ecs).scope_prefix_length, 16);
}

}  // namespace
}  // namespace drongo::dns
