#include "dns/message.hpp"

#include <gtest/gtest.h>

#include "net/error.hpp"

namespace drongo::dns {
namespace {

TEST(MessageTest, QueryBuilderSetsEcs) {
  const auto query = Message::make_query(0x1234, DnsName::must_parse("img.cdn.sim"),
                                         net::Prefix::must_parse("20.1.36.0/24"));
  EXPECT_EQ(query.header.id, 0x1234);
  EXPECT_FALSE(query.header.qr);
  EXPECT_TRUE(query.header.rd);
  ASSERT_EQ(query.questions.size(), 1u);
  EXPECT_EQ(query.questions[0].type, RrType::kA);
  ASSERT_TRUE(query.client_subnet().has_value());
  EXPECT_EQ(query.client_subnet()->source_prefix().to_string(), "20.1.36.0/24");
}

TEST(MessageTest, QueryWithoutEcsHasEdnsButNoOption) {
  const auto query = Message::make_query(7, DnsName::must_parse("a.b"));
  ASSERT_TRUE(query.edns.has_value());
  EXPECT_FALSE(query.client_subnet().has_value());
}

TEST(MessageTest, WireRoundTripFullMessage) {
  auto query = Message::make_query(42, DnsName::must_parse("img.cdn.sim"),
                                   net::Prefix::must_parse("198.51.100.0/24"));
  auto response = Message::make_response(query, Rcode::kNoError, /*ecs_scope=*/20);
  response.answers.push_back(
      ResourceRecord::a(query.questions[0].name, net::Ipv4Addr(21, 8, 84, 10), 30));
  response.answers.push_back(
      ResourceRecord::a(query.questions[0].name, net::Ipv4Addr(21, 8, 85, 10), 30));
  response.authority.push_back(ResourceRecord::ns(DnsName::must_parse("cdn.sim"),
                                                  DnsName::must_parse("ns1.cdn.sim")));

  const auto wire = response.encode();
  const auto decoded = Message::decode(wire);

  EXPECT_EQ(decoded.header.id, 42);
  EXPECT_TRUE(decoded.header.qr);
  EXPECT_TRUE(decoded.header.aa);
  EXPECT_EQ(decoded.header.rcode, Rcode::kNoError);
  ASSERT_EQ(decoded.questions.size(), 1u);
  ASSERT_EQ(decoded.answers.size(), 2u);
  ASSERT_EQ(decoded.authority.size(), 1u);
  ASSERT_TRUE(decoded.edns.has_value());
  ASSERT_TRUE(decoded.client_subnet().has_value());
  EXPECT_EQ(decoded.client_subnet()->scope_prefix_length, 20);
  EXPECT_EQ(decoded.client_subnet()->source_prefix_length, 24);
}

TEST(MessageTest, OptRecordIsLiftedNotListed) {
  const auto query = Message::make_query(1, DnsName::must_parse("x.y"),
                                         net::Prefix::must_parse("10.0.0.0/24"));
  const auto wire = query.encode();
  // Wire carries ARCOUNT = 1 (the OPT record)...
  EXPECT_EQ(wire[11], 1);
  // ...but the decoded message exposes it as `edns`, not `additional`.
  const auto decoded = Message::decode(wire);
  EXPECT_TRUE(decoded.additional.empty());
  EXPECT_TRUE(decoded.edns.has_value());
}

TEST(MessageTest, AnswerAddressesPreservesServerOrder) {
  Message m;
  const auto name = DnsName::must_parse("a.b");
  m.answers.push_back(ResourceRecord::a(name, net::Ipv4Addr(1, 1, 1, 3)));
  m.answers.push_back(ResourceRecord::a(name, net::Ipv4Addr(1, 1, 1, 1)));
  m.answers.push_back(ResourceRecord::cname(name, DnsName::must_parse("c.d")));
  m.answers.push_back(ResourceRecord::a(name, net::Ipv4Addr(1, 1, 1, 2)));
  const auto addrs = m.answer_addresses();
  ASSERT_EQ(addrs.size(), 3u);
  EXPECT_EQ(addrs[0], net::Ipv4Addr(1, 1, 1, 3));  // order kept, CNAME skipped
  EXPECT_EQ(addrs[1], net::Ipv4Addr(1, 1, 1, 1));
  EXPECT_EQ(addrs[2], net::Ipv4Addr(1, 1, 1, 2));
}

TEST(MessageTest, ResponseEchoesQuestionAndEcsWithScope) {
  const auto query = Message::make_query(9, DnsName::must_parse("q.r"),
                                         net::Prefix::must_parse("20.5.40.0/24"));
  const auto response = Message::make_response(query, Rcode::kNxDomain, 24);
  EXPECT_TRUE(response.header.qr);
  EXPECT_EQ(response.header.rcode, Rcode::kNxDomain);
  EXPECT_EQ(response.questions, query.questions);
  ASSERT_TRUE(response.client_subnet().has_value());
  EXPECT_EQ(response.client_subnet()->scope_prefix_length, 24);
}

TEST(MessageTest, SetAndClearClientSubnet) {
  Message m;
  EXPECT_FALSE(m.client_subnet().has_value());
  m.set_client_subnet(ClientSubnet::for_subnet(net::Prefix::must_parse("20.0.36.0/24")));
  ASSERT_TRUE(m.client_subnet().has_value());
  m.clear_client_subnet();
  EXPECT_FALSE(m.client_subnet().has_value());
  EXPECT_TRUE(m.edns.has_value());  // EDNS block survives
}

TEST(MessageTest, DecodeRejectsTwoOptRecords) {
  auto query = Message::make_query(1, DnsName::must_parse("x.y"),
                                   net::Prefix::must_parse("10.0.0.0/24"));
  auto wire = query.encode();
  // Duplicate the OPT record bytes by re-encoding with an extra additional
  // OPT: craft by patching ARCOUNT and appending a minimal OPT record.
  wire[11] = 2;
  const std::uint8_t opt[] = {0x00, 0x00, 0x29, 0x04, 0xD0, 0, 0, 0, 0, 0x00, 0x00};
  wire.insert(wire.end(), std::begin(opt), std::end(opt));
  EXPECT_THROW(Message::decode(wire), net::ParseError);
}

TEST(MessageTest, DecodeRejectsNonRootOpt) {
  auto query = Message::make_query(1, DnsName::must_parse("x.y"));
  auto wire = query.encode();
  // The OPT owner is the root (one zero byte) right after the question.
  // Find the OPT: last 11 bytes of our encoding (root + fixed OPT header).
  const std::size_t opt_at = wire.size() - 11;
  ASSERT_EQ(wire[opt_at], 0x00);
  ASSERT_EQ(wire[opt_at + 1], 0x00);
  ASSERT_EQ(wire[opt_at + 2], 0x29);
  // Rewrite owner as a pointer to the question name (offset 12) instead of
  // root: replace 1 byte with 2 — rebuild the tail.
  std::vector<std::uint8_t> patched(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(opt_at));
  patched.push_back(0xC0);
  patched.push_back(12);
  patched.insert(patched.end(), wire.begin() + static_cast<std::ptrdiff_t>(opt_at) + 1, wire.end());
  EXPECT_THROW(Message::decode(patched), net::ParseError);
}

TEST(MessageTest, DecodeRejectsTruncatedHeader) {
  const std::uint8_t tiny[] = {0x00, 0x01, 0x00};
  EXPECT_THROW(Message::decode(tiny), net::Error);
}

TEST(MessageTest, EmptyMessageRoundTrips) {
  Message m;
  const auto decoded = Message::decode(m.encode());
  EXPECT_EQ(decoded.questions.size(), 0u);
  EXPECT_EQ(decoded.answers.size(), 0u);
  EXPECT_FALSE(decoded.edns.has_value());
}

TEST(MessageTest, OtherEdnsOptionsSurviveRoundTrip) {
  Message m = Message::make_query(5, DnsName::must_parse("x.y"),
                                  net::Prefix::must_parse("10.0.0.0/24"));
  m.edns->other_options.push_back({10 /* COOKIE */, {1, 2, 3, 4, 5, 6, 7, 8}});
  const auto decoded = Message::decode(m.encode());
  ASSERT_TRUE(decoded.edns.has_value());
  ASSERT_EQ(decoded.edns->other_options.size(), 1u);
  EXPECT_EQ(decoded.edns->other_options[0].code, 10);
  EXPECT_EQ(decoded.edns->other_options[0].payload.size(), 8u);
  EXPECT_TRUE(decoded.client_subnet().has_value());
}

TEST(MessageTest, FlagsRoundTripExactly) {
  Message m;
  m.header.id = 0xBEEF;
  m.header.qr = true;
  m.header.aa = true;
  m.header.tc = true;
  m.header.rd = false;
  m.header.ra = true;
  m.header.rcode = Rcode::kRefused;
  const auto decoded = Message::decode(m.encode());
  EXPECT_EQ(decoded.header, m.header);
}

}  // namespace
}  // namespace drongo::dns
