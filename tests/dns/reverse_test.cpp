// Reverse-DNS helpers and the PTR authoritative.
#include <gtest/gtest.h>

#include "cdn/reverse_dns.hpp"
#include "dns/reverse.hpp"
#include "measure/testbed.hpp"
#include "measure/trial.hpp"

namespace drongo::dns {
namespace {

TEST(ReverseNameTest, BuildsInAddrArpa) {
  EXPECT_EQ(reverse_pointer_name(net::Ipv4Addr(20, 1, 0, 3)).to_string(),
            "3.0.1.20.in-addr.arpa");
  EXPECT_EQ(reverse_pointer_name(net::Ipv4Addr(255, 0, 255, 0)).to_string(),
            "0.255.0.255.in-addr.arpa");
}

TEST(ReverseNameTest, ParseRoundTrip) {
  for (std::uint32_t bits : {0x14010003u, 0x01020304u, 0xFFFFFFFFu, 0x00000000u}) {
    const net::Ipv4Addr addr(bits);
    const auto parsed = parse_reverse_pointer(reverse_pointer_name(addr));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, addr);
  }
}

TEST(ReverseNameTest, ParseRejectsBadNames) {
  EXPECT_FALSE(parse_reverse_pointer(DnsName::must_parse("example.com")).has_value());
  EXPECT_FALSE(parse_reverse_pointer(DnsName::must_parse("1.2.3.in-addr.arpa")).has_value());
  EXPECT_FALSE(
      parse_reverse_pointer(DnsName::must_parse("x.2.3.4.in-addr.arpa")).has_value());
  EXPECT_FALSE(
      parse_reverse_pointer(DnsName::must_parse("300.2.3.4.in-addr.arpa")).has_value());
  EXPECT_FALSE(
      parse_reverse_pointer(DnsName::must_parse("1.2.3.4.in-addr.example")).has_value());
}

class ReverseDnsFixture : public ::testing::Test {
 protected:
  ReverseDnsFixture() {
    measure::TestbedConfig config;
    config.as_config.tier1_count = 4;
    config.as_config.tier2_count = 8;
    config.as_config.stub_count = 20;
    config.client_count = 2;
    config.seed = 121;
    testbed_ = std::make_unique<measure::Testbed>(config);
  }
  std::unique_ptr<measure::Testbed> testbed_;
};

TEST_F(ReverseDnsFixture, PtrLookupThroughTheResolverChain) {
  auto stub = testbed_->make_stub(testbed_->clients()[0], 1);
  // A router address: PTR name matches the world registry.
  const net::Ipv4Addr router(testbed_->world().block_of(0).network().to_uint() | 1u);
  const std::string expected = testbed_->world().rdns_of(router);
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(stub.resolve_ptr(router), expected);
  // A host address resolves too.
  EXPECT_EQ(stub.resolve_ptr(testbed_->clients()[0]),
            testbed_->world().rdns_of(testbed_->clients()[0]));
}

TEST_F(ReverseDnsFixture, PrivateAndUnknownSpaceHaveNoPtr) {
  auto stub = testbed_->make_stub(testbed_->clients()[0], 2);
  EXPECT_EQ(stub.resolve_ptr(net::Ipv4Addr(192, 168, 0, 1)), "");
  EXPECT_EQ(stub.resolve_ptr(net::Ipv4Addr(8, 8, 8, 8)), "");
}

TEST_F(ReverseDnsFixture, AuthoritativeRejectsForeignZones) {
  cdn::ReverseDnsAuthoritative auth(&testbed_->world());
  const auto refused = auth.handle(
      Message::make_query(1, DnsName::must_parse("www.example.com"), std::nullopt,
                          RrType::kPtr),
      net::Ipv4Addr(1, 1, 1, 1));
  EXPECT_EQ(refused.header.rcode, Rcode::kRefused);
  const auto nxdomain = auth.handle(
      Message::make_query(2, DnsName::must_parse("foo.in-addr.arpa"), std::nullopt,
                          RrType::kPtr),
      net::Ipv4Addr(1, 1, 1, 1));
  EXPECT_EQ(nxdomain.header.rcode, Rcode::kNxDomain);
}

TEST_F(ReverseDnsFixture, TrialHopNamesComeFromPtr) {
  // With PTR resolution enabled (default), hop records carry the PTR names;
  // disabling it falls back to the simulator registry — both agree here,
  // which is itself the property worth checking.
  measure::TrialRunner via_dns(testbed_.get(), 5);
  auto trial = via_dns.run(0, 0, 0.0, 0);
  std::size_t named = 0;
  for (const auto& hop : trial.hops) {
    // Unresponsive hops ("* * *") legitimately carry no name; every hop
    // that was named must agree with the registry the PTR zone serves.
    if (hop.rdns.empty()) continue;
    ++named;
    EXPECT_EQ(hop.rdns, testbed_->world().rdns_of(hop.ip)) << hop.ip.to_string();
  }
  EXPECT_GT(named, 0u);
}

}  // namespace
}  // namespace drongo::dns
