// In-memory transport, stub resolver, cache, and LDNS proxy tests.
#include <gtest/gtest.h>

#include "dns/cache.hpp"
#include "dns/inmemory.hpp"
#include "dns/proxy.hpp"
#include "dns/stub_resolver.hpp"
#include "net/error.hpp"

namespace drongo::dns {
namespace {

/// A scripted authoritative: answers A queries with addresses derived from
/// the announced ECS subnet so tests can observe which subnet arrived.
class EchoingServer : public DnsServer {
 public:
  Message handle(const Message& query, net::Ipv4Addr source) override {
    last_source = source;
    last_ecs.reset();
    net::Prefix subnet(source, 24);
    if (query.edns && query.edns->client_subnet) {
      last_ecs = *query.edns->client_subnet->source_prefix().to_v4();
      subnet = *last_ecs;
    }
    Message response = Message::make_response(query, Rcode::kNoError, 24);
    // Answer encodes the subnet's first octet so callers can tell subnets
    // apart: 21.x.0.10 for subnet x.*.
    response.answers.push_back(ResourceRecord::a(
        query.questions[0].name,
        net::Ipv4Addr(21, subnet.network().octet(0), subnet.network().octet(1), 10), 30));
    ++queries;
    return response;
  }

  std::optional<net::Prefix> last_ecs;
  net::Ipv4Addr last_source;
  int queries = 0;
};

class ResolverFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    network.register_server(server_addr, &server);
  }

  InMemoryDnsNetwork network;
  EchoingServer server;
  const net::Ipv4Addr server_addr{net::Ipv4Addr(9, 9, 9, 9)};
  const net::Ipv4Addr client_addr{net::Ipv4Addr(20, 1, 36, 10)};
};

TEST_F(ResolverFixture, ExchangeRoutesToRegisteredServer) {
  StubResolver stub(&network, client_addr, server_addr);
  const auto result = stub.resolve("img.cdn.sim");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(server.queries, 1);
  EXPECT_EQ(network.exchange_count(), 1u);
  EXPECT_EQ(server.last_source, client_addr);
}

TEST_F(ResolverFixture, UnknownServerThrows) {
  StubResolver stub(&network, client_addr, net::Ipv4Addr(8, 8, 4, 4));
  EXPECT_THROW(stub.resolve("img.cdn.sim"), net::Error);
}

TEST_F(ResolverFixture, ResolveWithOwnSubnetAnnouncesSlash24) {
  StubResolver stub(&network, client_addr, server_addr);
  const auto result = stub.resolve_with_own_subnet(DnsName::must_parse("img.cdn.sim"));
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(server.last_ecs.has_value());
  EXPECT_EQ(server.last_ecs->to_string(), "20.1.36.0/24");
}

TEST_F(ResolverFixture, SubnetAssimilationAnnouncesForeignSubnet) {
  StubResolver stub(&network, client_addr, server_addr);
  const auto hop_subnet = net::Prefix::must_parse("20.7.2.0/24");
  const auto result = stub.resolve(DnsName::must_parse("img.cdn.sim"), hop_subnet);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(server.last_ecs.has_value());
  EXPECT_EQ(*server.last_ecs, hop_subnet);
  // The answer depended on the assimilated subnet, not the client's.
  EXPECT_EQ(result.addresses.front().octet(1), 20);
  EXPECT_EQ(result.addresses.front().octet(2), 7);
}

TEST_F(ResolverFixture, ResolutionResultCarriesScopeAndTtl) {
  StubResolver stub(&network, client_addr, server_addr);
  const auto result = stub.resolve_with_own_subnet(DnsName::must_parse("img.cdn.sim"));
  ASSERT_TRUE(result.ecs_scope.has_value());
  EXPECT_EQ(result.ecs_scope->length(), 24);
  EXPECT_EQ(result.ttl, 30u);
}

// ---- LdnsProxy ------------------------------------------------------------

/// A selector scripted to assimilate one fixed subnet for one domain.
class FixedSelector : public SubnetSelector {
 public:
  std::optional<net::Prefix> select_subnet(const DnsName& domain,
                                           const net::Prefix& client_subnet) override {
    last_client_subnet = client_subnet;
    if (domain == DnsName::must_parse("img.cdn.sim")) {
      return net::Prefix::must_parse("20.99.5.0/24");
    }
    return std::nullopt;
  }
  net::Prefix last_client_subnet;
};

TEST_F(ResolverFixture, ProxyForwardsAndRewritesEcs) {
  FixedSelector selector;
  LdnsProxy proxy(&network, server_addr, net::Ipv4Addr(127, 5, 5, 5), &selector);
  const net::Ipv4Addr proxy_addr(10, 0, 0, 53);
  network.register_server(proxy_addr, &proxy);

  StubResolver stub(&network, client_addr, proxy_addr);
  const auto result = stub.resolve_with_own_subnet(DnsName::must_parse("img.cdn.sim"));
  ASSERT_TRUE(result.ok());
  // Upstream saw the assimilated subnet...
  ASSERT_TRUE(server.last_ecs.has_value());
  EXPECT_EQ(server.last_ecs->to_string(), "20.99.5.0/24");
  // ...the selector saw the client's own subnet...
  EXPECT_EQ(selector.last_client_subnet.to_string(), "20.1.36.0/24");
  // ...and the client's response shows its OWN subnet echoed (assimilation
  // is invisible to applications).
  EXPECT_EQ(proxy.assimilated(), 1u);
  EXPECT_EQ(proxy.forwarded(), 1u);
}

TEST_F(ResolverFixture, ProxyPassesThroughWhenSelectorDeclines) {
  FixedSelector selector;
  LdnsProxy proxy(&network, server_addr, net::Ipv4Addr(127, 5, 5, 5), &selector);
  const net::Ipv4Addr proxy_addr(10, 0, 0, 53);
  network.register_server(proxy_addr, &proxy);

  StubResolver stub(&network, client_addr, proxy_addr);
  const auto result = stub.resolve_with_own_subnet(DnsName::must_parse("other.cdn.sim"));
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(server.last_ecs.has_value());
  EXPECT_EQ(server.last_ecs->to_string(), "20.1.36.0/24");
  EXPECT_EQ(proxy.assimilated(), 0u);
}

TEST_F(ResolverFixture, ProxyDerivesSubnetFromSourceWithoutEcs) {
  LdnsProxy proxy(&network, server_addr, net::Ipv4Addr(127, 5, 5, 5), nullptr);
  const net::Ipv4Addr proxy_addr(10, 0, 0, 53);
  network.register_server(proxy_addr, &proxy);

  StubResolver stub(&network, client_addr, proxy_addr);
  const auto result = stub.resolve(DnsName::must_parse("img.cdn.sim"));  // no ECS
  ASSERT_TRUE(result.ok());
  // The proxy filled in the client's /24 on its behalf.
  ASSERT_TRUE(server.last_ecs.has_value());
  EXPECT_EQ(server.last_ecs->to_string(), "20.1.36.0/24");
}

TEST_F(ResolverFixture, ProxyRejectsEmptyQuestion) {
  LdnsProxy proxy(&network, server_addr, net::Ipv4Addr(127, 5, 5, 5), nullptr);
  Message empty;
  const auto response = proxy.handle(empty, client_addr);
  EXPECT_EQ(response.header.rcode, Rcode::kFormErr);
}

// ---- Rcode semantics & retry policy ----------------------------------------

/// Answers every query with one fixed rcode (and no answer records).
class RcodeServer : public DnsServer {
 public:
  explicit RcodeServer(Rcode rcode) : rcode_(rcode) {}
  Message handle(const Message& query, net::Ipv4Addr) override {
    ++queries;
    return Message::make_response(query, rcode_);
  }
  Rcode rcode_;
  int queries = 0;
};

/// Throws a scripted transient error for the first `failures` exchanges,
/// then delegates — a network that recovers.
class FailNTimesTransport : public DnsTransport {
 public:
  FailNTimesTransport(DnsTransport* inner, int failures)
      : inner_(inner), remaining_(failures) {}
  std::vector<std::uint8_t> exchange(net::Ipv4Addr source, net::Ipv4Addr destination,
                                     std::span<const std::uint8_t> query) override {
    ++exchanges;
    if (remaining_ > 0) {
      --remaining_;
      throw net::TimeoutError("scripted loss");
    }
    return inner_->exchange(source, destination, query);
  }
  DnsTransport* inner_;
  int remaining_;
  int exchanges = 0;
};

/// Truncates every reply (TC=1, answers dropped), as an over-UDP answer
/// that did not fit would be.
class TruncatingTransport : public DnsTransport {
 public:
  explicit TruncatingTransport(DnsTransport* inner) : inner_(inner) {}
  std::vector<std::uint8_t> exchange(net::Ipv4Addr source, net::Ipv4Addr destination,
                                     std::span<const std::uint8_t> query) override {
    Message reply = Message::decode(inner_->exchange(source, destination, query));
    reply.header.tc = true;
    reply.answers.clear();
    return reply.encode();
  }
  DnsTransport* inner_;
};

/// Returns bytes that are not a DNS message at all.
class GarbageTransport : public DnsTransport {
 public:
  std::vector<std::uint8_t> exchange(net::Ipv4Addr, net::Ipv4Addr,
                                     std::span<const std::uint8_t>) override {
    ++exchanges;
    return {0xde, 0xad};
  }
  int exchanges = 0;
};

TEST_F(ResolverFixture, NxDomainIsPermanentAndNeverRetried) {
  RcodeServer nx(Rcode::kNxDomain);
  const net::Ipv4Addr nx_addr(9, 9, 9, 10);
  network.register_server(nx_addr, &nx);
  StubResolver stub(&network, client_addr, nx_addr);
  const auto result = stub.resolve("gone.cdn.sim");
  EXPECT_TRUE(result.name_error());
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.server_failure());
  EXPECT_EQ(result.attempts, 1);  // retrying a nonexistent name cannot help
  EXPECT_EQ(nx.queries, 1);
  EXPECT_EQ(stub.stats().retries, 0u);
}

TEST_F(ResolverFixture, NoDataIsAHealthyAnswerNotAFailure) {
  RcodeServer empty(Rcode::kNoError);
  const net::Ipv4Addr empty_addr(9, 9, 9, 11);
  network.register_server(empty_addr, &empty);
  StubResolver stub(&network, client_addr, empty_addr);
  const auto result = stub.resolve("aaaa-only.cdn.sim");
  EXPECT_TRUE(result.nodata());
  EXPECT_FALSE(result.ok());          // no addresses to use...
  EXPECT_FALSE(result.server_failure());  // ...but nothing failed
  EXPECT_EQ(result.attempts, 1);
  EXPECT_EQ(stub.stats().failed_queries, 0u);
}

TEST_F(ResolverFixture, ServfailIsRetriedThenReturnedTyped) {
  RcodeServer sick(Rcode::kServFail);
  const net::Ipv4Addr sick_addr(9, 9, 9, 12);
  network.register_server(sick_addr, &sick);
  StubResolver stub(&network, client_addr, sick_addr);
  const auto result = stub.resolve("img.cdn.sim");
  EXPECT_TRUE(result.server_failure());
  EXPECT_EQ(result.rcode, Rcode::kServFail);
  EXPECT_EQ(result.attempts, stub.config().max_attempts);
  EXPECT_EQ(sick.queries, stub.config().max_attempts);
  EXPECT_EQ(stub.stats().server_failures,
            static_cast<std::uint64_t>(stub.config().max_attempts));
  EXPECT_EQ(stub.stats().failed_queries, 1u);
}

TEST_F(ResolverFixture, RefusedIsTransientLikeServfail) {
  RcodeServer refusing(Rcode::kRefused);
  const net::Ipv4Addr ref_addr(9, 9, 9, 13);
  network.register_server(ref_addr, &refusing);
  StubResolver stub(&network, client_addr, ref_addr);
  const auto result = stub.resolve("img.cdn.sim");
  EXPECT_TRUE(result.server_failure());
  EXPECT_EQ(result.rcode, Rcode::kRefused);
  EXPECT_EQ(result.attempts, stub.config().max_attempts);
}

TEST_F(ResolverFixture, ServerFailureRetryCanBeDisabled) {
  RcodeServer sick(Rcode::kServFail);
  const net::Ipv4Addr sick_addr(9, 9, 9, 14);
  network.register_server(sick_addr, &sick);
  ResolverConfig config;
  config.retry_server_failure = false;
  StubResolver stub(&network, client_addr, sick_addr, 1, config);
  const auto result = stub.resolve("img.cdn.sim");
  EXPECT_TRUE(result.server_failure());
  EXPECT_EQ(result.attempts, 1);
  EXPECT_EQ(sick.queries, 1);
}

TEST_F(ResolverFixture, TransientTimeoutRecoversOnRetry) {
  FailNTimesTransport flaky(&network, /*failures=*/1);
  StubResolver stub(&flaky, client_addr, server_addr);
  const auto result = stub.resolve("img.cdn.sim");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.attempts, 2);
  EXPECT_EQ(stub.stats().retries, 1u);
  EXPECT_EQ(stub.stats().timeouts, 1u);
  EXPECT_EQ(stub.stats().queries, 2u);
  EXPECT_EQ(stub.stats().failed_queries, 0u);
}

TEST_F(ResolverFixture, ExhaustedRetriesRethrowTheLastTransientError) {
  FailNTimesTransport dead(&network, /*failures=*/1000);
  StubResolver stub(&dead, client_addr, server_addr);
  EXPECT_THROW(stub.resolve("img.cdn.sim"), net::TimeoutError);
  EXPECT_EQ(stub.stats().timeouts,
            static_cast<std::uint64_t>(stub.config().max_attempts));
  EXPECT_EQ(stub.stats().failed_queries, 1u);
}

TEST_F(ResolverFixture, SimulatedDeadlineBoundsTheRetrySchedule) {
  FailNTimesTransport dead(&network, /*failures=*/1000);
  ResolverConfig config;
  config.max_attempts = 10;
  config.base_backoff_ms = 3000.0;
  config.backoff_factor = 2.0;
  config.max_backoff_ms = 100000.0;
  config.query_deadline_ms = 5000.0;
  config.jitter_fraction = 0.0;  // exact schedule: 3000, then 6000 > deadline
  StubResolver impatient(&dead, client_addr, server_addr, 1, config);
  EXPECT_THROW(impatient.resolve("img.cdn.sim"), net::TimeoutError);
  EXPECT_EQ(impatient.stats().queries, 2u);  // deadline cut 8 attempts short
  EXPECT_EQ(impatient.stats().deadline_exceeded, 1u);
}

TEST_F(ResolverFixture, TruncatedUdpAnswerRetriesOverTcp) {
  TruncatingTransport udp(&network);
  StubResolver stub(&udp, client_addr, server_addr);
  stub.set_fallback_transport(&network);  // the "TCP" channel is clean
  const auto result = stub.resolve_with_own_subnet(DnsName::must_parse("img.cdn.sim"));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.used_tcp);
  EXPECT_EQ(stub.stats().tcp_fallbacks, 1u);
  EXPECT_EQ(stub.stats().queries, 2u);  // UDP attempt + TCP re-send
}

TEST_F(ResolverFixture, TruncationWithoutFallbackReturnsEmptyAnswer) {
  TruncatingTransport udp(&network);
  StubResolver stub(&udp, client_addr, server_addr);  // no fallback configured
  const auto result = stub.resolve("img.cdn.sim");
  EXPECT_TRUE(result.nodata());
  EXPECT_FALSE(result.used_tcp);
  EXPECT_EQ(stub.stats().tcp_fallbacks, 0u);
}

TEST_F(ResolverFixture, PermanentDecodeErrorPropagatesWithoutRetry) {
  GarbageTransport garbage;
  StubResolver stub(&garbage, client_addr, server_addr);
  // Two stray bytes can't even hold a header: decoding fails with a
  // PermanentError subtype (here BoundsError), which must not be retried.
  EXPECT_THROW(stub.resolve("img.cdn.sim"), net::PermanentError);
  EXPECT_EQ(garbage.exchanges, 1);  // permanent: retrying cannot help
  EXPECT_EQ(stub.stats().retries, 0u);
}

// ---- DnsCache ---------------------------------------------------------------

TEST(DnsCacheTest, ScopeGatesReuse) {
  DnsCache cache;
  const auto name = DnsName::must_parse("img.cdn.sim");
  cache.insert(name, net::Prefix::must_parse("20.1.0.0/16"),
               {net::Ipv4Addr(21, 0, 0, 1)}, 60, /*now_ms=*/0);
  // A client inside the scope hits...
  EXPECT_TRUE(cache.lookup(name, net::Prefix::must_parse("20.1.36.0/24"), 10).has_value());
  // ...one outside misses.
  EXPECT_FALSE(cache.lookup(name, net::Prefix::must_parse("20.2.36.0/24"), 10).has_value());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(DnsCacheTest, TtlExpires) {
  DnsCache cache;
  const auto name = DnsName::must_parse("img.cdn.sim");
  cache.insert(name, net::Prefix::must_parse("0.0.0.0/0"), {net::Ipv4Addr(1, 1, 1, 1)},
               30, /*now_ms=*/0);
  EXPECT_TRUE(cache.lookup(name, net::Prefix::must_parse("9.9.9.0/24"), 29'999).has_value());
  EXPECT_FALSE(cache.lookup(name, net::Prefix::must_parse("9.9.9.0/24"), 30'000).has_value());
}

TEST(DnsCacheTest, PurgeDropsExpiredOnly) {
  DnsCache cache;
  cache.insert(DnsName::must_parse("a.b"), net::Prefix::must_parse("0.0.0.0/0"),
               {net::Ipv4Addr(1, 1, 1, 1)}, 10, 0);
  cache.insert(DnsName::must_parse("c.d"), net::Prefix::must_parse("0.0.0.0/0"),
               {net::Ipv4Addr(2, 2, 2, 2)}, 100, 0);
  cache.purge(50'000);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(DnsCacheTest, CapacityEvicts) {
  DnsCache cache(/*max_entries=*/4);
  for (int i = 0; i < 10; ++i) {
    cache.insert(DnsName::must_parse("n" + std::to_string(i) + ".x"),
                 net::Prefix::must_parse("0.0.0.0/0"), {net::Ipv4Addr(1, 1, 1, 1)},
                 1000, 0);
  }
  EXPECT_LE(cache.size(), 5u);  // bounded, not growing without limit
}

TEST(DnsCacheTest, DistinctScopesCoexistPerName) {
  DnsCache cache;
  const auto name = DnsName::must_parse("img.cdn.sim");
  cache.insert(name, net::Prefix::must_parse("20.1.0.0/16"), {net::Ipv4Addr(21, 1, 1, 1)},
               60, 0);
  cache.insert(name, net::Prefix::must_parse("20.2.0.0/16"), {net::Ipv4Addr(21, 2, 2, 2)},
               60, 0);
  const auto a = cache.lookup(name, net::Prefix::must_parse("20.1.5.0/24"), 1);
  const auto b = cache.lookup(name, net::Prefix::must_parse("20.2.5.0/24"), 1);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(a->addresses.front(), b->addresses.front());
}

}  // namespace
}  // namespace drongo::dns
