// In-memory transport, stub resolver, cache, and LDNS proxy tests.
#include <gtest/gtest.h>

#include "dns/cache.hpp"
#include "dns/inmemory.hpp"
#include "dns/proxy.hpp"
#include "dns/stub_resolver.hpp"
#include "net/error.hpp"

namespace drongo::dns {
namespace {

/// A scripted authoritative: answers A queries with addresses derived from
/// the announced ECS subnet so tests can observe which subnet arrived.
class EchoingServer : public DnsServer {
 public:
  Message handle(const Message& query, net::Ipv4Addr source) override {
    last_source = source;
    last_ecs.reset();
    net::Prefix subnet(source, 24);
    if (query.edns && query.edns->client_subnet) {
      last_ecs = query.edns->client_subnet->source_prefix();
      subnet = *last_ecs;
    }
    Message response = Message::make_response(query, Rcode::kNoError, 24);
    // Answer encodes the subnet's first octet so callers can tell subnets
    // apart: 21.x.0.10 for subnet x.*.
    response.answers.push_back(ResourceRecord::a(
        query.questions[0].name,
        net::Ipv4Addr(21, subnet.network().octet(0), subnet.network().octet(1), 10), 30));
    ++queries;
    return response;
  }

  std::optional<net::Prefix> last_ecs;
  net::Ipv4Addr last_source;
  int queries = 0;
};

class ResolverFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    network.register_server(server_addr, &server);
  }

  InMemoryDnsNetwork network;
  EchoingServer server;
  const net::Ipv4Addr server_addr{net::Ipv4Addr(9, 9, 9, 9)};
  const net::Ipv4Addr client_addr{net::Ipv4Addr(20, 1, 36, 10)};
};

TEST_F(ResolverFixture, ExchangeRoutesToRegisteredServer) {
  StubResolver stub(&network, client_addr, server_addr);
  const auto result = stub.resolve("img.cdn.sim");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(server.queries, 1);
  EXPECT_EQ(network.exchange_count(), 1u);
  EXPECT_EQ(server.last_source, client_addr);
}

TEST_F(ResolverFixture, UnknownServerThrows) {
  StubResolver stub(&network, client_addr, net::Ipv4Addr(8, 8, 4, 4));
  EXPECT_THROW(stub.resolve("img.cdn.sim"), net::Error);
}

TEST_F(ResolverFixture, ResolveWithOwnSubnetAnnouncesSlash24) {
  StubResolver stub(&network, client_addr, server_addr);
  const auto result = stub.resolve_with_own_subnet(DnsName::must_parse("img.cdn.sim"));
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(server.last_ecs.has_value());
  EXPECT_EQ(server.last_ecs->to_string(), "20.1.36.0/24");
}

TEST_F(ResolverFixture, SubnetAssimilationAnnouncesForeignSubnet) {
  StubResolver stub(&network, client_addr, server_addr);
  const auto hop_subnet = net::Prefix::must_parse("20.7.2.0/24");
  const auto result = stub.resolve(DnsName::must_parse("img.cdn.sim"), hop_subnet);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(server.last_ecs.has_value());
  EXPECT_EQ(*server.last_ecs, hop_subnet);
  // The answer depended on the assimilated subnet, not the client's.
  EXPECT_EQ(result.addresses.front().octet(1), 20);
  EXPECT_EQ(result.addresses.front().octet(2), 7);
}

TEST_F(ResolverFixture, ResolutionResultCarriesScopeAndTtl) {
  StubResolver stub(&network, client_addr, server_addr);
  const auto result = stub.resolve_with_own_subnet(DnsName::must_parse("img.cdn.sim"));
  ASSERT_TRUE(result.ecs_scope.has_value());
  EXPECT_EQ(result.ecs_scope->length(), 24);
  EXPECT_EQ(result.ttl, 30u);
}

// ---- LdnsProxy ------------------------------------------------------------

/// A selector scripted to assimilate one fixed subnet for one domain.
class FixedSelector : public SubnetSelector {
 public:
  std::optional<net::Prefix> select_subnet(const DnsName& domain,
                                           const net::Prefix& client_subnet) override {
    last_client_subnet = client_subnet;
    if (domain == DnsName::must_parse("img.cdn.sim")) {
      return net::Prefix::must_parse("20.99.5.0/24");
    }
    return std::nullopt;
  }
  net::Prefix last_client_subnet;
};

TEST_F(ResolverFixture, ProxyForwardsAndRewritesEcs) {
  FixedSelector selector;
  LdnsProxy proxy(&network, server_addr, net::Ipv4Addr(127, 5, 5, 5), &selector);
  const net::Ipv4Addr proxy_addr(10, 0, 0, 53);
  network.register_server(proxy_addr, &proxy);

  StubResolver stub(&network, client_addr, proxy_addr);
  const auto result = stub.resolve_with_own_subnet(DnsName::must_parse("img.cdn.sim"));
  ASSERT_TRUE(result.ok());
  // Upstream saw the assimilated subnet...
  ASSERT_TRUE(server.last_ecs.has_value());
  EXPECT_EQ(server.last_ecs->to_string(), "20.99.5.0/24");
  // ...the selector saw the client's own subnet...
  EXPECT_EQ(selector.last_client_subnet.to_string(), "20.1.36.0/24");
  // ...and the client's response shows its OWN subnet echoed (assimilation
  // is invisible to applications).
  EXPECT_EQ(proxy.assimilated(), 1u);
  EXPECT_EQ(proxy.forwarded(), 1u);
}

TEST_F(ResolverFixture, ProxyPassesThroughWhenSelectorDeclines) {
  FixedSelector selector;
  LdnsProxy proxy(&network, server_addr, net::Ipv4Addr(127, 5, 5, 5), &selector);
  const net::Ipv4Addr proxy_addr(10, 0, 0, 53);
  network.register_server(proxy_addr, &proxy);

  StubResolver stub(&network, client_addr, proxy_addr);
  const auto result = stub.resolve_with_own_subnet(DnsName::must_parse("other.cdn.sim"));
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(server.last_ecs.has_value());
  EXPECT_EQ(server.last_ecs->to_string(), "20.1.36.0/24");
  EXPECT_EQ(proxy.assimilated(), 0u);
}

TEST_F(ResolverFixture, ProxyDerivesSubnetFromSourceWithoutEcs) {
  LdnsProxy proxy(&network, server_addr, net::Ipv4Addr(127, 5, 5, 5), nullptr);
  const net::Ipv4Addr proxy_addr(10, 0, 0, 53);
  network.register_server(proxy_addr, &proxy);

  StubResolver stub(&network, client_addr, proxy_addr);
  const auto result = stub.resolve(DnsName::must_parse("img.cdn.sim"));  // no ECS
  ASSERT_TRUE(result.ok());
  // The proxy filled in the client's /24 on its behalf.
  ASSERT_TRUE(server.last_ecs.has_value());
  EXPECT_EQ(server.last_ecs->to_string(), "20.1.36.0/24");
}

TEST_F(ResolverFixture, ProxyRejectsEmptyQuestion) {
  LdnsProxy proxy(&network, server_addr, net::Ipv4Addr(127, 5, 5, 5), nullptr);
  Message empty;
  const auto response = proxy.handle(empty, client_addr);
  EXPECT_EQ(response.header.rcode, Rcode::kFormErr);
}

// ---- DnsCache ---------------------------------------------------------------

TEST(DnsCacheTest, ScopeGatesReuse) {
  DnsCache cache;
  const auto name = DnsName::must_parse("img.cdn.sim");
  cache.insert(name, net::Prefix::must_parse("20.1.0.0/16"),
               {net::Ipv4Addr(21, 0, 0, 1)}, 60, /*now_ms=*/0);
  // A client inside the scope hits...
  EXPECT_TRUE(cache.lookup(name, net::Prefix::must_parse("20.1.36.0/24"), 10).has_value());
  // ...one outside misses.
  EXPECT_FALSE(cache.lookup(name, net::Prefix::must_parse("20.2.36.0/24"), 10).has_value());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(DnsCacheTest, TtlExpires) {
  DnsCache cache;
  const auto name = DnsName::must_parse("img.cdn.sim");
  cache.insert(name, net::Prefix::must_parse("0.0.0.0/0"), {net::Ipv4Addr(1, 1, 1, 1)},
               30, /*now_ms=*/0);
  EXPECT_TRUE(cache.lookup(name, net::Prefix::must_parse("9.9.9.0/24"), 29'999).has_value());
  EXPECT_FALSE(cache.lookup(name, net::Prefix::must_parse("9.9.9.0/24"), 30'000).has_value());
}

TEST(DnsCacheTest, PurgeDropsExpiredOnly) {
  DnsCache cache;
  cache.insert(DnsName::must_parse("a.b"), net::Prefix::must_parse("0.0.0.0/0"),
               {net::Ipv4Addr(1, 1, 1, 1)}, 10, 0);
  cache.insert(DnsName::must_parse("c.d"), net::Prefix::must_parse("0.0.0.0/0"),
               {net::Ipv4Addr(2, 2, 2, 2)}, 100, 0);
  cache.purge(50'000);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(DnsCacheTest, CapacityEvicts) {
  DnsCache cache(/*max_entries=*/4);
  for (int i = 0; i < 10; ++i) {
    cache.insert(DnsName::must_parse("n" + std::to_string(i) + ".x"),
                 net::Prefix::must_parse("0.0.0.0/0"), {net::Ipv4Addr(1, 1, 1, 1)},
                 1000, 0);
  }
  EXPECT_LE(cache.size(), 5u);  // bounded, not growing without limit
}

TEST(DnsCacheTest, DistinctScopesCoexistPerName) {
  DnsCache cache;
  const auto name = DnsName::must_parse("img.cdn.sim");
  cache.insert(name, net::Prefix::must_parse("20.1.0.0/16"), {net::Ipv4Addr(21, 1, 1, 1)},
               60, 0);
  cache.insert(name, net::Prefix::must_parse("20.2.0.0/16"), {net::Ipv4Addr(21, 2, 2, 2)},
               60, 0);
  const auto a = cache.lookup(name, net::Prefix::must_parse("20.1.5.0/24"), 1);
  const auto b = cache.lookup(name, net::Prefix::must_parse("20.2.5.0/24"), 1);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(a->addresses.front(), b->addresses.front());
}

}  // namespace
}  // namespace drongo::dns
