// Pins the retry-deadline edge semantics (PR 7 satellite): the deadline
// check is strict — a retry whose cumulative backoff lands EXACTLY on
// query_deadline_ms is still allowed; only exceeding the deadline trips
// deadline_exceeded. With jitter_fraction = 0 the backoff sequence is
// exact, so the boundary is testable to the last bit.
#include <gtest/gtest.h>

#include "dns/faults.hpp"
#include "dns/inmemory.hpp"
#include "dns/stub_resolver.hpp"
#include "net/error.hpp"

namespace drongo::dns {
namespace {

class RetryDeadlineFixture : public ::testing::Test {
 protected:
  /// A resolver over a 100%-loss transport: every attempt times out, so the
  /// retry/backoff/deadline ladder is the only control flow exercised.
  StubResolver lossy_resolver(double deadline_ms) {
    ResolverConfig config;
    config.max_attempts = 3;
    config.base_backoff_ms = 100.0;
    config.backoff_factor = 2.0;
    config.jitter_fraction = 0.0;  // exact backoffs: 100, then 200
    config.query_deadline_ms = deadline_ms;
    return StubResolver(&faulty, client, server_addr, /*seed=*/1, config);
  }

  InMemoryDnsNetwork network;
  FaultyTransport faulty{&network, 3, [] {
                           FaultProfile profile;
                           profile.loss_prob = 1.0;
                           return profile;
                         }()};
  const net::Ipv4Addr server_addr{net::Ipv4Addr(9, 9, 9, 9)};
  const net::Ipv4Addr client{net::Ipv4Addr(20, 1, 36, 10)};
};

TEST_F(RetryDeadlineFixture, BackoffExactlyAtDeadlineStillRetries) {
  // First retry charges exactly 100 ms against a 100 ms deadline. The check
  // is strict (>), so "spent the whole budget" is not "over budget": the
  // retry proceeds. The second retry would charge 200 more (300 > 100) and
  // is correctly refused.
  StubResolver resolver = lossy_resolver(100.0);
  EXPECT_THROW((void)resolver.resolve("img.cdn.sim"), net::TimeoutError);
  EXPECT_EQ(resolver.stats().queries, 2u);
  EXPECT_EQ(resolver.stats().retries, 1u);
  EXPECT_EQ(resolver.stats().timeouts, 2u);
  EXPECT_EQ(resolver.stats().deadline_exceeded, 1u);
  EXPECT_EQ(resolver.stats().failed_queries, 1u);
}

TEST_F(RetryDeadlineFixture, BackoffJustPastDeadlineIsRefused) {
  StubResolver resolver = lossy_resolver(99.9);
  EXPECT_THROW((void)resolver.resolve("img.cdn.sim"), net::TimeoutError);
  EXPECT_EQ(resolver.stats().queries, 1u);
  EXPECT_EQ(resolver.stats().retries, 0u);
  EXPECT_EQ(resolver.stats().timeouts, 1u);
  EXPECT_EQ(resolver.stats().deadline_exceeded, 1u);
}

TEST_F(RetryDeadlineFixture, CumulativeBudgetCoversTheWholeLadder) {
  // 100 + 200 = 300: the second retry lands exactly on the deadline too,
  // so all max_attempts run and the deadline counter never trips.
  StubResolver resolver = lossy_resolver(300.0);
  EXPECT_THROW((void)resolver.resolve("img.cdn.sim"), net::TimeoutError);
  EXPECT_EQ(resolver.stats().queries, 3u);
  EXPECT_EQ(resolver.stats().retries, 2u);
  EXPECT_EQ(resolver.stats().timeouts, 3u);
  EXPECT_EQ(resolver.stats().deadline_exceeded, 0u);
}

}  // namespace
}  // namespace drongo::dns
