// DNS 0x20 case randomization in the stub resolver.
#include <gtest/gtest.h>

#include <set>

#include "dns/inmemory.hpp"
#include "dns/stub_resolver.hpp"
#include "net/strings.hpp"
#include "net/error.hpp"

namespace drongo::dns {
namespace {

/// Records the exact casing of arriving questions; optionally answers with
/// a LOWERCASED question echo to simulate a spoofer/broken middlebox.
class CaseObservingServer : public DnsServer {
 public:
  Message handle(const Message& query, net::Ipv4Addr /*source*/) override {
    last_seen = query.questions[0].name;
    Message response = Message::make_response(query, Rcode::kNoError);
    if (break_echo) {
      response.questions[0].name = DnsName::must_parse(
          net::to_lower(query.questions[0].name.to_string()));
    }
    response.answers.push_back(
        ResourceRecord::a(response.questions[0].name, net::Ipv4Addr(21, 1, 1, 1), 30));
    return response;
  }

  DnsName last_seen;
  bool break_echo = false;
};

TEST(Dns0x20Test, QueriesCarryRandomizedCase) {
  InMemoryDnsNetwork network;
  CaseObservingServer server;
  const net::Ipv4Addr addr(9, 9, 9, 9);
  network.register_server(addr, &server);
  StubResolver stub(&network, net::Ipv4Addr(20, 0, 40, 10), addr, 7);

  const auto name = DnsName::must_parse("img.googlecdn.sim");
  std::set<std::string> casings;
  for (int i = 0; i < 24; ++i) {
    ASSERT_TRUE(stub.resolve(name).ok());
    // Case-insensitively the same name...
    EXPECT_EQ(server.last_seen, name);
    casings.insert(server.last_seen.to_string());
  }
  // ...but with many distinct casings over 24 queries (16 letters -> 2^16
  // possibilities; collisions across all 24 draws are implausible).
  EXPECT_GT(casings.size(), 16u);
}

TEST(Dns0x20Test, BrokenCaseEchoIsRejected) {
  InMemoryDnsNetwork network;
  CaseObservingServer server;
  server.break_echo = true;
  const net::Ipv4Addr addr(9, 9, 9, 9);
  network.register_server(addr, &server);
  StubResolver stub(&network, net::Ipv4Addr(20, 0, 40, 10), addr, 7);

  // Virtually every randomized query contains at least one uppercase letter,
  // so the lowercased echo must fail the 0x20 check.
  bool rejected = false;
  for (int i = 0; i < 16 && !rejected; ++i) {
    try {
      stub.resolve(DnsName::must_parse("img.googlecdn.sim"));
    } catch (const net::Error& error) {
      rejected = std::string(error.what()).find("0x20") != std::string::npos;
    }
  }
  EXPECT_TRUE(rejected);
}

TEST(Dns0x20Test, CanBeDisabledForLegacyServers) {
  InMemoryDnsNetwork network;
  CaseObservingServer server;
  server.break_echo = true;  // mangles case, but without 0x20 nobody cares
  const net::Ipv4Addr addr(9, 9, 9, 9);
  network.register_server(addr, &server);
  StubResolver stub(&network, net::Ipv4Addr(20, 0, 40, 10), addr, 7);
  stub.set_case_randomization(false);
  const auto name = DnsName::must_parse("img.googlecdn.sim");
  EXPECT_TRUE(stub.resolve(name).ok());
  EXPECT_EQ(server.last_seen.to_string(), name.to_string());  // sent verbatim
}

}  // namespace
}  // namespace drongo::dns
