// ShardedDnsCache: shard routing, stat aggregation, and singleflight
// coalescing semantics (serial protocol tests plus a threaded smoke that
// the TSan CI stage exercises via the `serving` label).
#include "dns/serving_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace drongo::dns {
namespace {

net::Prefix P(const std::string& text) { return net::Prefix::must_parse(text); }

DnsName name_for(std::size_t i) {
  return DnsName::must_parse("host" + std::to_string(i) + ".cdn.sim");
}

TEST(ShardedDnsCacheTest, InsertAndLookupAcrossManyShards) {
  ShardedDnsCache cache(/*shards=*/4, /*max_entries=*/1024);
  ASSERT_EQ(cache.shard_count(), 4u);
  constexpr std::size_t kNames = 64;
  for (std::size_t i = 0; i < kNames; ++i) {
    cache.insert(name_for(i), P("0.0.0.0/0"),
                 {net::Ipv4Addr(10, 0, static_cast<std::uint8_t>(i), 1)}, 300, 0);
  }
  EXPECT_EQ(cache.size(), kNames);
  EXPECT_EQ(cache.stats().inserts, kNames);
  for (std::size_t i = 0; i < kNames; ++i) {
    const auto hit = cache.lookup(name_for(i), P("9.9.9.0/24"), 1);
    ASSERT_TRUE(hit.has_value()) << "name " << i;
    EXPECT_EQ(hit->addresses.front(),
              net::Ipv4Addr(10, 0, static_cast<std::uint8_t>(i), 1));
  }
  EXPECT_EQ(cache.stats().hits, kNames);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(ShardedDnsCacheTest, ScopeMatchingIsPerName) {
  ShardedDnsCache cache(/*shards=*/8);
  cache.insert(name_for(1), P("10.1.2.0/24"), {net::Ipv4Addr(7, 7, 7, 7)}, 60, 0);
  cache.insert(name_for(1), P("0.0.0.0/0"), {net::Ipv4Addr(9, 9, 9, 9)}, 60, 0);
  const auto hit = cache.lookup(name_for(1), P("10.1.2.0/24"), 1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->addresses.front(), net::Ipv4Addr(7, 7, 7, 7));
  EXPECT_FALSE(cache.lookup(name_for(2), P("10.1.2.0/24"), 1).has_value());
}

TEST(ShardedDnsCacheTest, SingleShardStillWorks) {
  ShardedDnsCache cache(/*shards=*/1, /*max_entries=*/2);
  cache.insert(name_for(1), P("0.0.0.0/0"), {net::Ipv4Addr(1, 1, 1, 1)}, 60, 0);
  cache.insert(name_for(2), P("0.0.0.0/0"), {net::Ipv4Addr(2, 2, 2, 2)}, 60, 0);
  cache.insert(name_for(3), P("0.0.0.0/0"), {net::Ipv4Addr(3, 3, 3, 3)}, 60, 0);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ShardedDnsCacheTest, MixedCaseQnamesLandInOneShardEntry) {
  ShardedDnsCache cache(/*shards=*/8);
  // Qnames are canonicalized (lowercased) once at the sharded boundary, so a
  // mixed-case spelling routes to the same shard AND the same cache entry as
  // the lowercase one — never a duplicate in another shard.
  cache.insert(DnsName::must_parse("Host1.CDN.Sim"), P("0.0.0.0/0"),
               {net::Ipv4Addr(7, 7, 7, 7)}, 60, 0);
  EXPECT_EQ(cache.size(), 1u);
  const auto lower = cache.lookup(name_for(1), P("9.9.9.0/24"), 1);
  ASSERT_TRUE(lower.has_value());
  EXPECT_EQ(lower->addresses.front(), net::Ipv4Addr(7, 7, 7, 7));
  const auto upper = cache.lookup(DnsName::must_parse("HOST1.CDN.SIM"),
                                  P("9.9.9.0/24"), 1);
  ASSERT_TRUE(upper.has_value());
  EXPECT_EQ(cache.stats().misses, 0u);
  // Refreshing under another casing must not grow the cache.
  cache.insert(DnsName::must_parse("hOsT1.cdn.SIM"), P("0.0.0.0/0"),
               {net::Ipv4Addr(8, 8, 8, 8)}, 60, 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SingleflightTest, JoinCoalescesAcrossCaseVariants) {
  ShardedDnsCache cache(4);
  auto leader = cache.join(DnsName::must_parse("Host1.CDN.Sim"), P("10.1.2.0/24"));
  EXPECT_TRUE(leader.leader());
  auto follower = cache.join(name_for(1), P("10.1.2.0/24"));
  EXPECT_FALSE(follower.leader());
  ShardedDnsCache::FlightOutcome outcome;
  outcome.rcode = Rcode::kNoError;
  outcome.addresses = {net::Ipv4Addr(6, 6, 6, 6)};
  outcome.usable = true;
  leader.publish(outcome);
  const auto got = follower.wait();
  EXPECT_TRUE(got.usable);
  EXPECT_EQ(cache.stats().coalesced, 1u);
}

TEST(SingleflightTest, FirstJoinerLeadsLaterJoinersFollow) {
  ShardedDnsCache cache(4);
  auto leader = cache.join(name_for(1), P("10.1.2.0/24"));
  EXPECT_TRUE(leader.leader());
  auto follower = cache.join(name_for(1), P("10.1.2.0/24"));
  EXPECT_FALSE(follower.leader());

  ShardedDnsCache::FlightOutcome outcome;
  outcome.rcode = Rcode::kNoError;
  outcome.addresses = {net::Ipv4Addr(5, 5, 5, 5)};
  outcome.scope_length = 24;
  outcome.usable = true;
  leader.publish(outcome);

  const auto got = follower.wait();
  EXPECT_TRUE(got.usable);
  EXPECT_EQ(got.rcode, Rcode::kNoError);
  ASSERT_EQ(got.addresses.size(), 1u);
  EXPECT_EQ(got.addresses.front(), net::Ipv4Addr(5, 5, 5, 5));
  EXPECT_EQ(got.scope_length, 24);
  EXPECT_EQ(cache.stats().coalesce_leaders, 1u);
  EXPECT_EQ(cache.stats().coalesced, 1u);
}

TEST(SingleflightTest, DistinctKeysGetDistinctLeaders) {
  ShardedDnsCache cache(4);
  auto a = cache.join(name_for(1), P("10.1.2.0/24"));
  auto b = cache.join(name_for(2), P("10.1.2.0/24"));       // different qname
  auto c = cache.join(name_for(1), P("10.99.0.0/24"));      // different subnet
  EXPECT_TRUE(a.leader());
  EXPECT_TRUE(b.leader());
  EXPECT_TRUE(c.leader());
  a.publish({});
  b.publish({});
  c.publish({});
}

TEST(SingleflightTest, KeyIsFreeAgainAfterPublish) {
  ShardedDnsCache cache(4);
  {
    auto first = cache.join(name_for(1), P("10.1.2.0/24"));
    ASSERT_TRUE(first.leader());
    first.publish({});
  }
  auto second = cache.join(name_for(1), P("10.1.2.0/24"));
  EXPECT_TRUE(second.leader());
  second.publish({});
}

TEST(SingleflightTest, AbandonedLeaderReleasesFollowersAsUnusable) {
  ShardedDnsCache cache(4);
  auto follower = [&] {
    auto leader = cache.join(name_for(1), P("10.1.2.0/24"));
    EXPECT_TRUE(leader.leader());
    auto f = cache.join(name_for(1), P("10.1.2.0/24"));
    EXPECT_FALSE(f.leader());
    return f;
    // `leader` dies here without publish() — e.g. the upstream exchange
    // threw. Its destructor must publish an unusable outcome.
  }();
  const auto got = follower.wait();
  EXPECT_FALSE(got.usable);
  // And the key must be free for a retry leader.
  auto retry = cache.join(name_for(1), P("10.1.2.0/24"));
  EXPECT_TRUE(retry.leader());
  retry.publish({});
}

TEST(SingleflightTest, ConcurrentJoinersElectExactlyOneLeader) {
  ShardedDnsCache cache(8);
  constexpr int kThreads = 8;
  std::atomic<int> leaders{0};
  std::atomic<int> usable_followers{0};
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      auto flight = cache.join(name_for(1), P("10.1.2.0/24"));
      if (flight.leader()) {
        leaders.fetch_add(1);
        // Give followers a moment to pile up before publishing.
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        ShardedDnsCache::FlightOutcome outcome;
        outcome.rcode = Rcode::kNoError;
        outcome.addresses = {net::Ipv4Addr(5, 5, 5, 5)};
        outcome.usable = true;
        flight.publish(outcome);
      } else {
        const auto got = flight.wait();
        if (got.usable && got.addresses.size() == 1) usable_followers.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // Followers that joined before the first publish share its answer; any
  // late joiner becomes a fresh leader. At least one coalesced follower is
  // guaranteed by the publish delay above in practice, but the hard
  // invariant is leaders + usable followers == every thread resolved.
  EXPECT_GE(leaders.load(), 1);
  EXPECT_EQ(leaders.load() + usable_followers.load(), kThreads);
  EXPECT_EQ(cache.stats().coalesce_leaders,
            static_cast<std::uint64_t>(leaders.load()));
}

TEST(ShardedDnsCacheTest, ConcurrentMixedOperationsStayConsistent) {
  ShardedDnsCache cache(/*shards=*/4, /*max_entries=*/256);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const auto name = name_for(static_cast<std::size_t>(i % 16));
        if (i % 3 == 0) {
          cache.insert(name, P("0.0.0.0/0"),
                       {net::Ipv4Addr(10, static_cast<std::uint8_t>(t), 0, 1)},
                       300, static_cast<std::uint64_t>(i));
        } else {
          (void)cache.lookup(name, P("9.9.9.0/24"), static_cast<std::uint64_t>(i));
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto stats = cache.stats();
  // Per thread, i % 3 != 0 for 133 of the 200 iterations.
  EXPECT_EQ(stats.hits + stats.negative_hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * 133u);
  EXPECT_LE(cache.size(), 16u);
}

TEST(ShardedDnsCacheTest, RegistryMirrorsCoalescingCounters) {
  obs::Registry registry;
  ShardedDnsCache cache(4);
  cache.set_registry(&registry);
  auto leader = cache.join(name_for(1), P("10.1.2.0/24"));
  auto follower = cache.join(name_for(1), P("10.1.2.0/24"));
  ShardedDnsCache::FlightOutcome outcome;
  outcome.usable = true;
  outcome.rcode = Rcode::kNoError;
  leader.publish(outcome);
  (void)follower.wait();
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counters.at("dns.cache.coalesce_leaders"), 1u);
  EXPECT_EQ(snapshot.counters.at("dns.cache.coalesced"), 1u);
}

}  // namespace
}  // namespace drongo::dns
