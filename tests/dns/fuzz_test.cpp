// Robustness properties of the DNS codec: arbitrary bytes never crash the
// decoder, and randomly generated valid messages always round-trip.
#include <gtest/gtest.h>

#include "dns/message.hpp"
#include "net/error.hpp"
#include "net/rng.hpp"

namespace drongo::dns {
namespace {

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, RandomBytesEitherDecodeOrThrowCleanly) {
  net::Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    std::vector<std::uint8_t> bytes(rng.index(160));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform(256));
    try {
      const Message m = Message::decode(bytes);
      // Decoded: re-encoding must not throw either.
      (void)m.encode();
    } catch (const net::Error&) {
      // Clean rejection is the expected outcome for garbage.
    }
  }
}

TEST_P(FuzzSeeds, BitFlippedValidMessagesNeverCrash) {
  net::Rng rng(GetParam() ^ 0xF11);
  auto query = Message::make_query(1234, DnsName::must_parse("img.googlecdn.sim"),
                                   net::Prefix::must_parse("203.0.113.0/24"));
  auto response = Message::make_response(query, Rcode::kNoError, 24);
  response.answers.push_back(
      ResourceRecord::a(query.questions[0].name, net::Ipv4Addr(21, 1, 1, 1), 30));
  response.answers.push_back(ResourceRecord::cname(
      query.questions[0].name, DnsName::must_parse("alias.googlecdn.sim")));
  const auto wire = response.encode();

  for (int i = 0; i < 800; ++i) {
    auto mutated = wire;
    const int flips = 1 + static_cast<int>(rng.uniform(4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.index(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.uniform(8));
    }
    try {
      (void)Message::decode(mutated);
    } catch (const net::Error&) {
    }
  }
}

TEST_P(FuzzSeeds, RandomValidMessagesRoundTrip) {
  net::Rng rng(GetParam() ^ 0x600D);
  for (int i = 0; i < 200; ++i) {
    Message m;
    m.header.id = static_cast<std::uint16_t>(rng.uniform(0x10000));
    m.header.qr = rng.chance(0.5);
    m.header.rd = rng.chance(0.5);
    m.header.rcode = static_cast<Rcode>(rng.uniform(6));
    const auto name = DnsName::must_parse(
        "l" + std::to_string(rng.uniform(1000)) + ".zone" +
        std::to_string(rng.uniform(100)) + ".sim");
    m.questions.push_back({name, RrType::kA, RrClass::kIn});
    const int answers = static_cast<int>(rng.uniform(5));
    for (int a = 0; a < answers; ++a) {
      switch (rng.uniform(4)) {
        case 0:
          m.answers.push_back(ResourceRecord::a(
              name, net::Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())),
              static_cast<std::uint32_t>(rng.uniform(86400))));
          break;
        case 1:
          m.answers.push_back(ResourceRecord::cname(
              name, DnsName::must_parse("t" + std::to_string(rng.uniform(100)) + ".sim")));
          break;
        case 2:
          m.answers.push_back(
              ResourceRecord::txt(name, {std::string(rng.index(40), 'x')}));
          break;
        default:
          m.answers.push_back(ResourceRecord::ptr(
              name, DnsName::must_parse("p" + std::to_string(rng.uniform(100)) + ".sim")));
          break;
      }
    }
    if (rng.chance(0.7)) {
      m.edns = Edns{};
      if (rng.chance(0.8)) {
        const int length = static_cast<int>(rng.uniform(33));
        m.edns->client_subnet = ClientSubnet::for_subnet(
            net::Prefix(net::Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())), length));
        m.edns->client_subnet->scope_prefix_length =
            static_cast<std::uint8_t>(rng.uniform(static_cast<std::uint64_t>(length) + 1));
      }
    }

    const auto decoded = Message::decode(m.encode());
    EXPECT_EQ(decoded.header, m.header);
    EXPECT_EQ(decoded.questions, m.questions);
    ASSERT_EQ(decoded.answers.size(), m.answers.size());
    for (std::size_t a = 0; a < m.answers.size(); ++a) {
      EXPECT_EQ(decoded.answers[a], m.answers[a]);
    }
    EXPECT_EQ(decoded.edns.has_value(), m.edns.has_value());
    if (m.edns) {
      EXPECT_EQ(decoded.edns->client_subnet, m.edns->client_subnet);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace drongo::dns
