// Snapshot exports: JSON-lines and Prometheus shapes, deterministic number
// formatting, and the headline guarantee — a campaign's metrics export is
// byte-identical between a serial and a multi-worker run of the same seed.
#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "measure/campaign.hpp"
#include "measure/testbed.hpp"
#include "measure/trial.hpp"
#include "obs/metrics.hpp"

namespace obs = drongo::obs;
using drongo::measure::CampaignOptions;
using drongo::measure::ParallelCampaignRunner;
using drongo::measure::Testbed;
using drongo::measure::TestbedConfig;
using drongo::measure::TrialRunner;

namespace {

TEST(Jsonl, EmitsSortedTypedLines) {
  obs::Registry registry;
  registry.add("z.last", 2);
  registry.add("a.first", 1);
  registry.gauge("g.depth", -3);
  registry.declare_histogram("lat", {1.0, 10.0});
  registry.observe_ms("lat", 0.5);
  registry.observe_ms("lat", 5.0);
  const std::string text = obs::to_jsonl(registry.snapshot());
  const std::string expected =
      "{\"type\":\"counter\",\"name\":\"a.first\",\"value\":1}\n"
      "{\"type\":\"counter\",\"name\":\"z.last\",\"value\":2}\n"
      "{\"type\":\"gauge\",\"name\":\"g.depth\",\"value\":-3}\n"
      // Both samples land in single-occupancy buckets, so every percentile
      // above rank 0 is the upper bucket's clamped midpoint (1..5 -> 3).
      "{\"type\":\"histogram\",\"name\":\"lat\",\"count\":2,\"sum_ms\":5.5,"
      "\"min_ms\":0.5,\"max_ms\":5,\"p50_ms\":3,\"p90_ms\":3,"
      "\"p99_ms\":3,\"bounds_ms\":[1,10],\"buckets\":[1,1,0]}\n";
  EXPECT_EQ(text, expected);
}

TEST(Jsonl, SpanTimingsAreExcludedByDefault) {
  obs::Snapshot snapshot;
  snapshot.spans["s"] = {3, 1234567, 1};
  const std::string without = obs::to_jsonl(snapshot);
  EXPECT_NE(without.find("{\"type\":\"span\",\"name\":\"s\",\"count\":3,"
                         "\"max_depth\":1}\n"),
            std::string::npos);
  EXPECT_EQ(without.find("total_ms"), std::string::npos);

  obs::ExportOptions options;
  options.include_span_timings = true;
  const std::string with = obs::to_jsonl(snapshot, options);
  EXPECT_NE(with.find("\"total_ms\":1.234567"), std::string::npos);
}

TEST(Prometheus, ExpandsHistogramsCumulatively) {
  obs::Registry registry;
  registry.declare_histogram("lat", {1.0, 10.0});
  registry.observe_ms("lat", 0.5);
  registry.observe_ms("lat", 5.0);
  registry.observe_ms("lat", 50.0);
  registry.add("dns.resolver.queries", 7);
  std::ostringstream out;
  obs::write_prometheus(out, registry.snapshot());
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE drongo_dns_resolver_queries counter\n"
                      "drongo_dns_resolver_queries 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("drongo_lat_ms_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("drongo_lat_ms_bucket{le=\"10\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("drongo_lat_ms_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("drongo_lat_ms_count 3\n"), std::string::npos);
}

obs::Snapshot run_campaign_with_threads(int threads) {
  TestbedConfig config = TestbedConfig::planetlab();
  config.client_count = 6;
  config.fault_profile = drongo::dns::parse_fault_profile("flaky");
  Testbed testbed(config);
  obs::Registry registry;
  testbed.set_registry(&registry);
  TrialRunner runner(&testbed, 0xC0FFEE);
  runner.set_registry(&registry);
  const ParallelCampaignRunner parallel(&runner, CampaignOptions{.threads = threads});
  const auto records = parallel.run_campaign(/*trials_per_client=*/2,
                                             /*spacing_hours=*/1.5);
  EXPECT_FALSE(records.empty());
  return registry.snapshot();
}

// The subsystem's acceptance test: same seed, same faults, 1 worker vs 8
// workers — the default (deterministic) export must be byte-identical.
TEST(Determinism, SerialAndParallelCampaignExportIdenticalBytes) {
  const std::string serial = obs::to_jsonl(run_campaign_with_threads(1));
  const std::string parallel = obs::to_jsonl(run_campaign_with_threads(8));
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
  // Sanity: the campaign actually exercised the wired layers.
  EXPECT_NE(serial.find("dns.resolver.queries"), std::string::npos);
  EXPECT_NE(serial.find("measure.trial.outcome"), std::string::npos);
  EXPECT_NE(serial.find("\"type\":\"span\",\"name\":\"measure.trial\""),
            std::string::npos);
}

}  // namespace
