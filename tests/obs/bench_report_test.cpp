// obs::BenchReport: canonical serialisation (schema+bench first, sorted
// user fields, deterministic doubles) and the file validator CI runs over
// BENCH_*.json artifacts.
#include "obs/bench_report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "net/error.hpp"

namespace obs = drongo::obs;

namespace {

/// Writes `content` to a unique temp file; removed in the destructor.
class TempFile {
 public:
  explicit TempFile(const std::string& content) {
    path_ = std::string(::testing::TempDir()) + "bench_report_test_" +
            std::to_string(counter()++) + ".json";
    std::ofstream out(path_, std::ios::trunc);
    out << content;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static int& counter() {
    static int n = 0;
    return n;
  }
  std::string path_;
};

TEST(BenchReport, SerialisesSchemaFirstThenSortedFields) {
  obs::BenchReport report("headline");
  report.set_number("zeta", 0.5);
  report.set_integer("alpha", 42);
  report.set_bool("ok", true);
  report.set_string("note", "fast");
  EXPECT_EQ(report.to_json(),
            "{\"schema\":\"drongo-bench-report-v1\",\"bench\":\"headline\","
            "\"alpha\":42,\"note\":\"fast\",\"ok\":true,\"zeta\":0.5}\n");
}

TEST(BenchReport, UserFieldsCannotShadowSchemaOrBench) {
  obs::BenchReport report("b");
  report.set_string("schema", "fake");
  report.set_string("bench", "fake");
  const std::string json = report.to_json();
  EXPECT_EQ(json.find("fake"), std::string::npos);
  EXPECT_NE(json.find("\"schema\":\"drongo-bench-report-v1\""), std::string::npos);
}

TEST(BenchReport, EmptyBenchNameThrows) {
  EXPECT_THROW(obs::BenchReport(""), drongo::net::InvalidArgument);
}

TEST(BenchReport, DefaultPathHonoursEnvOverride) {
  obs::BenchReport report("micro");
  ::unsetenv("DRONGO_BENCH_OUT");
  EXPECT_EQ(report.default_path(), "BENCH_micro.json");
  ::setenv("DRONGO_BENCH_OUT", "/tmp/custom.json", 1);
  EXPECT_EQ(report.default_path(), "/tmp/custom.json");
  ::unsetenv("DRONGO_BENCH_OUT");
}

TEST(BenchReport, WriteFileRoundTripsThroughValidator) {
  obs::BenchReport report("roundtrip");
  report.set_number("speedup", 3.25);
  report.set_bool("identical_to_serial", true);
  const TempFile placeholder("");  // reserve a unique path
  report.write_file(placeholder.path());
  EXPECT_EQ(obs::validate_bench_report_file(placeholder.path()), "");
}

TEST(Validator, AcceptsAHandWrittenFlatReport) {
  const TempFile file(
      "{\"schema\":\"drongo-bench-report-v1\",\"bench\":\"x\",\"n\":-1.5e3}\n");
  EXPECT_EQ(obs::validate_bench_report_file(file.path()), "");
}

TEST(Validator, RejectsBadInputs) {
  EXPECT_NE(obs::validate_bench_report_file("/no/such/file.json"), "");

  const TempFile empty("");
  EXPECT_NE(obs::validate_bench_report_file(empty.path()), "");

  const TempFile not_object("[1, 2]\n");
  EXPECT_NE(obs::validate_bench_report_file(not_object.path()), "");

  const TempFile wrong_schema(
      "{\"schema\":\"drongo-bench-report-v999\",\"bench\":\"x\"}\n");
  EXPECT_NE(obs::validate_bench_report_file(wrong_schema.path()),
            "");

  const TempFile missing_bench("{\"schema\":\"drongo-bench-report-v1\"}\n");
  EXPECT_NE(obs::validate_bench_report_file(missing_bench.path()), "");

  const TempFile nested(
      "{\"schema\":\"drongo-bench-report-v1\",\"bench\":\"x\",\"deep\":{\"a\":1}}\n");
  EXPECT_NE(obs::validate_bench_report_file(nested.path()), "");

  const TempFile trailing(
      "{\"schema\":\"drongo-bench-report-v1\",\"bench\":\"x\"}\nextra\n");
  EXPECT_NE(obs::validate_bench_report_file(trailing.path()), "");
}

TEST(Validator, EnforcesPerBenchRequiredFields) {
  const std::map<std::string, std::vector<std::string>> required = {
      {"daemon", {"qps", "p99_ms"}}};

  const TempFile complete(
      "{\"schema\":\"drongo-bench-report-v1\",\"bench\":\"daemon\","
      "\"p99_ms\":0.4,\"qps\":120000}\n");
  EXPECT_EQ(obs::validate_bench_report_file(complete.path(), required), "");

  const TempFile missing_qps(
      "{\"schema\":\"drongo-bench-report-v1\",\"bench\":\"daemon\","
      "\"p99_ms\":0.4}\n");
  const std::string error =
      obs::validate_bench_report_file(missing_qps.path(), required);
  EXPECT_NE(error.find("qps"), std::string::npos) << error;

  // Benches without a schema entry still validate structurally only.
  const TempFile other_bench(
      "{\"schema\":\"drongo-bench-report-v1\",\"bench\":\"unlisted\"}\n");
  EXPECT_EQ(obs::validate_bench_report_file(other_bench.path(), required), "");
}

}  // namespace
