// obs::Span: RAII timing against a ManualSpanClock, per-thread nesting
// depth, and the null-registry no-op contract.
#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace obs = drongo::obs;

namespace {

TEST(Span, NullRegistryIsANoOp) {
  const obs::Span span(nullptr, "anything");  // must not crash or allocate sinks
}

TEST(Span, CountsAndTimesUnderManualClock) {
  obs::Registry registry;
  obs::ManualSpanClock clock;
  registry.set_span_clock(&clock);
  {
    const obs::Span span(&registry, "work");
    clock.advance(250);
  }
  {
    const obs::Span span(&registry, "work");
    clock.advance(750);
  }
  const auto s = registry.snapshot().spans.at("work");
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.total_ticks, 1000u);
  EXPECT_EQ(s.max_depth, 0u);
}

TEST(Span, NestingDepthIsRecordedPerName) {
  obs::Registry registry;
  obs::ManualSpanClock clock;
  registry.set_span_clock(&clock);
  {
    const obs::Span outer(&registry, "trial");
    clock.advance(10);
    {
      const obs::Span inner(&registry, "trial.phase");
      clock.advance(5);
      {
        const obs::Span innermost(&registry, "trial.phase.step");
        clock.advance(1);
      }
    }
    {
      const obs::Span sibling(&registry, "trial.phase");
      clock.advance(2);
    }
  }
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.spans.at("trial").max_depth, 0u);
  EXPECT_EQ(snapshot.spans.at("trial").count, 1u);
  EXPECT_EQ(snapshot.spans.at("trial.phase").max_depth, 1u);
  EXPECT_EQ(snapshot.spans.at("trial.phase").count, 2u);
  EXPECT_EQ(snapshot.spans.at("trial.phase.step").max_depth, 2u);
}

TEST(Span, OuterSpanIncludesNestedTime) {
  obs::Registry registry;
  obs::ManualSpanClock clock;
  registry.set_span_clock(&clock);
  {
    const obs::Span outer(&registry, "outer");
    clock.advance(100);
    {
      const obs::Span inner(&registry, "inner");
      clock.advance(40);
    }
    clock.advance(60);
  }
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.spans.at("outer").total_ticks, 200u);
  EXPECT_EQ(snapshot.spans.at("inner").total_ticks, 40u);
}

TEST(Span, DepthIsPerThreadNotGlobal) {
  // Two threads each open a root span concurrently; neither must see the
  // other's open span as a parent — depth stays 0 on both.
  obs::Registry registry;
  obs::ManualSpanClock clock;
  registry.set_span_clock(&clock);
  std::vector<std::thread> workers;
  for (int w = 0; w < 2; ++w) {
    workers.emplace_back([&registry] {
      for (int i = 0; i < 50; ++i) {
        const obs::Span span(&registry, "root");
      }
    });
  }
  for (auto& t : workers) t.join();
  const auto s = registry.snapshot().spans.at("root");
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.max_depth, 0u);
}

TEST(Span, WallClockIsRestoredWithNullptr) {
  obs::Registry registry;
  obs::ManualSpanClock clock;
  clock.set(5);
  registry.set_span_clock(&clock);
  registry.set_span_clock(nullptr);
  // Wall clock ticks are nondeterministic; just assert the span records.
  {
    const obs::Span span(&registry, "walled");
  }
  EXPECT_EQ(registry.snapshot().spans.at("walled").count, 1u);
}

}  // namespace
